(* Engine-layer tests: the shared Step/Stage/Pipeline machinery that every
   executor drives PINT's treap workers through. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* A synthetic stage: emits [work] productive steps (visits = 10, records =
   [records_per_step]), interleaving [idles] idle and [stalls] stalled
   steps first, then reports done. *)
let synthetic ~name ?(records_per_step = 1) ~idles ~stalls ~work () =
  let i = ref idles and s = ref stalls and w = ref work in
  Stage.make ~name
    ~cost:(fun ~records ~visits -> (100 * records) + visits)
    (fun () ->
      if !i > 0 then begin
        decr i;
        Step.idle
      end
      else if !s > 0 then begin
        decr s;
        Step.stalled
      end
      else if !w > 0 then begin
        decr w;
        Step.worked ~records:records_per_step 10
      end
      else Step.finished)

let test_step_helpers () =
  let w = Step.worked ~records:4 7 in
  check_bool "worked progressed" true (Step.progressed w);
  check_int "worked visits" 7 (Step.visits w);
  check_int "worked records" 4 (Step.records w);
  check_bool "worked not done" false (Step.is_done w);
  check_bool "idle blocked" true (Step.blocked Step.idle);
  check_bool "stalled blocked" true (Step.blocked Step.stalled);
  check_bool "done is done" true (Step.is_done Step.finished);
  check_int "default records" 1 (Step.records (Step.worked 3))

let test_stage_metrics () =
  let st = synthetic ~name:"x" ~records_per_step:8 ~idles:3 ~stalls:2 ~work:5 () in
  Stage.run st;
  let m = Stage.metrics st in
  check_int "steps" 5 m.Stage.steps;
  check_int "records" 40 m.Stage.records;
  check_int "visits" 50 m.Stage.visits;
  check_int "idles" 3 m.Stage.idles;
  check_int "stalls" 2 m.Stage.stalls;
  check_int "cost hook" 210 (Stage.cost st ~records:2 ~visits:10);
  Stage.reset_metrics st;
  check_int "reset" 0 (Stage.metrics st).Stage.steps

let test_stage_diagnostics_keys () =
  let st = synthetic ~name:"writer" ~idles:1 ~stalls:1 ~work:2 () in
  Stage.run st;
  let d = Stage.diagnostics st in
  List.iter
    (fun k -> check_bool (k ^ " present") true (List.mem_assoc k d))
    [ "stage.writer.steps"; "stage.writer.records"; "stage.writer.visits";
      "stage.writer.idle"; "stage.writer.stalls" ];
  check_bool "stall counted" true (List.assoc "stage.writer.stalls" d = 1.)

let test_pipeline_drive_completes () =
  let a = synthetic ~name:"a" ~idles:10 ~stalls:0 ~work:7 () in
  let b = synthetic ~name:"b" ~idles:0 ~stalls:4 ~work:3 () in
  let p = Pipeline.create () in
  Pipeline.register p a;
  Pipeline.register p b;
  check_int "two stages" 2 (List.length (Pipeline.stages p));
  Pipeline.drive p;
  check_int "a drained" 7 (Stage.metrics a).Stage.steps;
  check_int "b drained" 3 (Stage.metrics b).Stage.steps;
  (* driving again only retires the already-done stages *)
  Pipeline.drive p;
  check_int "no double work" 7 (Stage.metrics a).Stage.steps

let test_pipeline_producer_consumer () =
  (* a queue between two stages: the producer stalls when it is full, the
     consumer drains it — drive must interleave them to completion *)
  let q = Queue.create () in
  let cap = 4 in
  let to_produce = ref 50 in
  let producer =
    Stage.make ~name:"prod" (fun () ->
        if !to_produce = 0 then Step.finished
        else if Queue.length q >= cap then Step.stalled
        else begin
          Queue.push !to_produce q;
          decr to_produce;
          Step.worked 1
        end)
  in
  let eaten = ref 0 in
  let tick = ref 0 in
  let consumer =
    (* half-rate consumer: pops only every other turn, so the queue fills and
       the producer is guaranteed to hit backpressure *)
    Stage.make ~name:"cons" (fun () ->
        incr tick;
        if Queue.is_empty q then if !to_produce = 0 then Step.finished else Step.idle
        else if !tick mod 2 = 1 && !to_produce > 0 then Step.idle
        else begin
          ignore (Queue.pop q);
          incr eaten;
          Step.worked 1
        end)
  in
  Pipeline.drive (Pipeline.of_stages [ producer; consumer ]);
  check_int "all consumed" 50 !eaten;
  check_bool "producer stalled on backpressure" true ((Stage.metrics producer).Stage.stalls > 0)

let test_pipeline_diagnostics () =
  let a = synthetic ~name:"a" ~idles:1 ~stalls:0 ~work:2 () in
  let b = synthetic ~name:"b" ~idles:0 ~stalls:1 ~work:1 () in
  let p = Pipeline.of_stages [ a; b ] in
  Pipeline.drive p;
  let d = Pipeline.diagnostics p in
  check_int "5 counters per stage" 10 (List.length d);
  check_bool "a steps" true (List.assoc "stage.a.steps" d = 2.);
  check_bool "b stalls" true (List.assoc "stage.b.stalls" d = 1.)

let test_backoff_terminates () =
  (* relax must be bounded for any round count *)
  List.iter (fun n -> Backoff.relax n) [ 0; 1; 5; 8; 20; 62; 1000 ];
  check_bool "bounded" true true

let () =
  Alcotest.run "pint_engine"
    [
      ( "engine",
        [
          Alcotest.test_case "step helpers" `Quick test_step_helpers;
          Alcotest.test_case "stage metrics" `Quick test_stage_metrics;
          Alcotest.test_case "stage diagnostics keys" `Quick test_stage_diagnostics_keys;
          Alcotest.test_case "pipeline drives to done" `Quick test_pipeline_drive_completes;
          Alcotest.test_case "producer/consumer backpressure" `Quick
            test_pipeline_producer_consumer;
          Alcotest.test_case "pipeline diagnostics" `Quick test_pipeline_diagnostics;
          Alcotest.test_case "backoff terminates" `Quick test_backoff_terminates;
        ] );
    ]
