lib/detect/cracer.ml: Access Array Aspace Atomic Detector Hashtbl Hooks Interval List Mutex Policies Report Sp_order Srec
