lib/detect/nodetect.ml: Access Aspace Detector Hooks Report
