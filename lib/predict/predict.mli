(** Predictive race detection over captured traces.

    PINT (and the replay layer) certify races of the {e observed} schedule:
    Theorem 5 makes the deduplicated race set a schedule-invariant fact of
    the access history that actually ran.  This module answers a stronger
    question about a single captured trace: which conflicting pairs did the
    observed schedule merely {e serialize} — pairs unordered by the
    program-order + sync core that some other legal schedule would have run
    side by side?  Following the short-race framing of "Efficient Dynamic
    Algorithms to Predict Short Races" (see PAPERS.md), we bound the search
    to {e window-bounded} reorderings and keep the must-happen-before core
    exact, so every prediction is backed by a concrete witness schedule.

    {2 Semantics}

    Let positions [0..n-1] be the trace's entry order (PINTRACE entries
    appear in finish order, so position order is a linearization of the
    strand DAG).  A {e permissible reordering} for window [w] is a bijection
    σ from strands to slots such that σ is a linear extension of the strand
    DAG and no strand moves more than [w] slots: [|σ(s) - pos(s)| <= w].

    A pair [(u, v)] with [pos u < pos v] is {e w-predictable} iff
    - their interval sets conflict (write/write, write/read or read/write),
    - they are logically parallel in SP order,
    - the conflicting region survives reuse suppression (below), and
    - some permissible reordering for [w] runs them {e adjacently} (in
      either order) — the strongest evidence a bounded reordering can give
      that nothing the trace recorded separates them.

    Predictability is monotone in [w]: every permissible reordering for [w]
    is permissible for [w+1], so predictions at [w] ⊆ predictions at [w+1].

    {2 Reuse suppression (soundness caveat)}

    Traces record {e addresses}, not object identities: a stack frame
    cleared at return, or a heap range freed, can be re-allocated and the
    same address then denotes a different object.  A conflicting pair whose
    region was wiped in between is therefore not evidence of a race.  We
    subtract from each conflicting region the clears/frees of [u] itself
    (its frame dies with it — any later access at those addresses is a new
    object) and of every strand [f] strictly between [u] and [v] in position
    order with [f ~> v] in SP order (the wipe precedes [v]'s access in
    {e every} schedule); a pair whose region is fully wiped is dropped.
    Wipes by strands {e parallel} to [v] are not subtracted — the observed
    schedule happened to run the wipe first, but a reordering need not —
    which is exactly what makes free-hidden pairs predictable.  The rule is
    deliberately conservative (it can under-report across racing frees) and
    mirrors the detectors' processing order: a strand's accesses are checked
    against the pre-strand history {e before} its own clears apply, so a
    strand's own wipes never hide pairs in which it is the later access.

    Predicted pairs already in the observed race set (either orientation at
    the Theorem-5 granularity) are subtracted: the two reports are disjoint
    by construction, and a predicted race never enters a detector's
    deduplication table — see {!Report.origin}. *)

(** One strand of the reordering universe.  [pos] is the trace entry index
    (observed-schedule position); [id] is the strand's {!Sp_order.id}, the
    id space race reports use; [preds]/[succs] are strand-DAG neighbours as
    positions (edges always point to strictly larger positions, since a
    DAG successor can only finish after its predecessor).  [wipes] are the
    strand's stack clears and heap frees as address intervals. *)
type node = {
  pos : int;
  uid : int;
  id : int;
  sp : Sp_order.strand;
  reads : Interval.t array;
  writes : Interval.t array;
  wipes : Interval.t list;
  preds : int list;
  succs : int list;
}

(** A decoded strand DAG: [nodes.(p)] is the strand at position [p]. *)
type dag = { sp : Sp_order.t; nodes : node array }

(** Incremental DAG builder fed by a {!Replay.strand_observer} — build the
    DAG in the same pass that runs observed detection, offline
    ({!Replay.run}) or streaming ({!Replay.Session.create}). *)
module Builder : sig
  type t

  val create : unit -> t

  (** The observer to pass to replay; call at most one replay's worth. *)
  val observer : t -> Replay.strand_observer

  (** Finalize.  @raise Failure if no strand was observed or the recorded
      positions/links are inconsistent. *)
  val dag : t -> dag

  (** Strands observed so far. *)
  val count : t -> int
end

(** [dag_of_trace tf] — decode a trace's DAG by replaying it through the
    no-detection baseline. *)
val dag_of_trace : Tracefile.t -> dag

(** A predicted race: [prior]/[current] are the {!Sp_order.id}s of the
    earlier- and later-{e positioned} strands, [where] is the
    lowest-addressed surviving conflict interval (deterministic). *)
type finding = { kind : Report.kind; prior : int; current : int; where : Interval.t }

type result = {
  window : int;
  predicted : finding list;  (** ordered by (prior, current, kind) *)
  diagnostics : (string * float) list;
      (** deterministic counters; [predict_candidates] (conflicting
          parallel in-window pairs) and [predict_windows] (adjacency
          feasibility checks) are shard-invariant and benchmark-gated *)
}

(** [predict ?shards ~window ~observed dag] — the production predictor.

    Candidate pairs are generated with the sharded treap machinery: per
    shard, a last-{e writer} and last-{e reader} recency treap over 64-word
    granules (owner = position, never wiped — an over-approximation keeps
    the filter sound); a strand whose probe finds only stale owners skips
    its window scan entirely.  The candidate set is provably independent of
    [shards].

    Adjacency feasibility is decided exactly: displacement windows
    [\[pos-w, pos+w\]] are folded through the DAG edges (release ≥ pred
    release + 1, deadline ≤ succ deadline - 1), the pair is pinned to two
    adjacent slots, and the pinned instance is scheduled by earliest
    deadline first — exact for unit jobs with release times and deadlines,
    and precedence-safe because folded deadlines strictly increase along
    edges.

    [observed] is the observed race set to subtract (any detector's — by
    Theorem 5 they agree). *)
val predict : ?shards:int -> window:int -> observed:Report.race list -> dag -> result

(** Brute-force certification oracle: explores {e all} permissible
    reorderings with a subset dynamic program over the 2w+1 positions in
    flight (forward-reachable states × memoized completability), using its
    own transitive closure over the DAG links, its own nested-loop conflict
    detection and its own reuse subtraction.  Agrees with {!predict}
    finding-for-finding, witnesses included.
    @raise Invalid_argument if [window > 10] (state space is 2^(2w+1)). *)
val oracle : window:int -> observed:Report.race list -> dag -> finding list

(** Theorem-5-style key. *)
val finding_key : finding -> Report.kind * int * int

val equal_findings : finding list -> finding list -> bool
val pp_finding : Format.formatter -> finding -> unit
