type start_kind =
  | S_root
  | S_child
  | S_cont of { stolen : bool }
  | S_after_sync of { trivial : bool }

type finish_kind =
  | F_spawn of { cont : Srec.t; sync : Srec.t; first_of_block : bool }
  | F_return of { cont_stolen : bool; parent_sync : Srec.t option }
  | F_sync of { trivial : bool; sync : Srec.t }
  | F_root

let pp_start fmt = function
  | S_root -> Format.fprintf fmt "root"
  | S_child -> Format.fprintf fmt "child"
  | S_cont { stolen } -> Format.fprintf fmt "cont(stolen=%b)" stolen
  | S_after_sync { trivial } -> Format.fprintf fmt "after-sync(trivial=%b)" trivial

let pp_finish fmt = function
  | F_spawn { first_of_block; _ } -> Format.fprintf fmt "spawn(first=%b)" first_of_block
  | F_return { cont_stolen; _ } -> Format.fprintf fmt "return(cont_stolen=%b)" cont_stolen
  | F_sync { trivial; _ } -> Format.fprintf fmt "sync(trivial=%b)" trivial
  | F_root -> Format.fprintf fmt "root-end"
