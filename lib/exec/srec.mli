(** Strand records — the objects that flow from core workers through traces
    into the access-history queue.

    One record exists per executed strand.  The executor creates it at
    strand start, fills in the coalesced interval sets at strand end, and
    the fields in the middle implement Algorithm 1/2's bookkeeping:

    - [pred] counts not-yet-collected immediate predecessors; only
      meaningful for strands that can head a trace (stolen continuations and
      non-trivial sync nodes), but maintained uniformly as the paper does;
    - [child]/[child_is_sync]/[is_spawn] drive the decrement in Collect
      (Algorithm 2);
    - [clears] are stack-frame ranges each treap worker wipes when it
      processes this record (§III-F stack reuse);
    - [frees] are heap ranges whose actual deallocation is delayed until the
      writer treap worker collects this record (§III-F heap reuse);
    - [done_count] is the recycling fetch-and-add: a slot is reusable once
      all three treap workers have processed the record;
    - [finished_at]/[cost] are virtual-time accounting used by the
      simulator-based benchmark harness. *)

type t = {
  uid : int;  (** unique, creation order *)
  sp : Sp_order.strand;  (** reachability identity *)
  mutable reads : Interval.t array;  (** coalesced read intervals (set at finish) *)
  mutable writes : Interval.t array;  (** coalesced write intervals (set at finish) *)
  mutable raw_reads : int;
  mutable raw_writes : int;
  mutable work : int;  (** total words touched — the strand's work proxy *)
  mutable compute : int;  (** arithmetic operations reported by kernels (cost model) *)
  pred : int Atomic.t;
  mutable child : t option;
  mutable child_is_sync : bool;  (** [child] is a non-trivial sync node *)
  mutable is_spawn : bool;  (** this strand ends at a spawn *)
  mutable clears : (int * int) list;  (** (base, len) stack ranges to clear *)
  mutable frees : (int * int) list;  (** (base, len) heap ranges to free on collect *)
  done_count : int Atomic.t;
  mutable finished_at : int;
  mutable cost : int;
  mutable obs_ts : int;
      (** profiling: observability timestamp of the strand's finish, written
          by the finishing core worker strictly before [Trace.push]
          publishes the record (same discipline as the fields above); the
          pipeline stages read it to compute finish→collect/done latencies *)
}

(** [make ~uid sp] — a fresh record with empty intervals and zeroed
    bookkeeping. *)
val make : uid:int -> Sp_order.strand -> t

(** Strand id shorthand (= [Sp_order.id t.sp]). *)
val sp_id : t -> int

val pp : Format.formatter -> t -> unit
