(** Simulated virtual address space: per-worker stacks + a shared heap.

    Addresses are word-granular integers.  The layout is

    {v
      [0 ............................ max_workers*stack_words)   stacks
      [heap_base .................................... brk)       heap
    v}

    {b Stacks} model Cilk's cactus-stack behaviour (§III-F of the paper):
    each worker owns a region and pushes activation frames LIFO.  A frame
    popped while it is not the top (possible when a suspended function's
    frame sits below frames of work the worker picked up after a steal) is
    marked dead and reclaimed lazily once everything above it pops — live
    frames are never reused.  A continuation stolen by another worker pushes
    its subsequent frames on the {e thief's} stack, so, as in real cactus
    stacks, parallel branches never share stack addresses; only a non-stolen
    continuation reuses the returned child's addresses, which is exactly the
    false-race hazard the detectors must neutralize.

    {b Heap} is a first-fit free-list allocator with coalescing, so a freed
    block is immediately re-allocatable — reproducing the heap-reuse hazard
    that PINT's delayed free addresses.

    All heap operations and cross-worker stack bookkeeping are mutex
    protected; per-worker stack operations touch only that worker's state. *)

type t

(** [create ~max_workers ~stack_words ~heap_words ()].  [heap_words] is only
    an initial extent; the heap grows by bumping [brk]. *)
val create : ?max_workers:int -> ?stack_words:int -> ?heap_words:int -> unit -> t

val max_workers : t -> int

(** {1 Heap} *)

(** [heap_alloc t words] returns the base address of a fresh block.
    @raise Invalid_argument if [words <= 0]. *)
val heap_alloc : t -> int -> int

(** [heap_free t ~base ~len] returns a block to the free list.  Freeing a
    range that is not currently allocated raises [Failure]. *)
val heap_free : t -> base:int -> len:int -> unit

(** [reserve t ~base ~len] marks an arbitrary heap range as a live allocated
    block, carving it out of the free list (and bumping [brk]) as needed.
    Trace replay uses this to reconstruct enough allocator state that a
    recorded [heap_free] succeeds without re-executing the allocations that
    produced it.  Re-reserving a block that is still live with the same
    extent registers a {e nested lifetime}: the capture run may have
    recycled the base eagerly while the replaying detector frees lazily
    (PINT's delayed recycling), so the same [(base, len)] can be reserved
    again before its first recorded free is processed — each extra
    reservation is consumed by one matching [heap_free] before the block is
    actually returned to the free list.
    @raise Invalid_argument on non-positive [len] or a range that straddles
    an existing live block without matching it exactly. *)
val reserve : t -> base:int -> len:int -> unit

(** Currently allocated heap words. *)
val heap_live_words : t -> int

(** True iff [base] was handed out by [heap_alloc] with length [len] and not
    yet freed. *)
val heap_block_live : t -> base:int -> len:int -> bool

(** {1 Stacks} *)

(** [frame_push t ~worker ~words] pushes an activation frame on [worker]'s
    stack and returns its base address.
    @raise Invalid_argument on bad worker id or non-positive size.
    @raise Failure on stack overflow. *)
val frame_push : t -> worker:int -> words:int -> int

(** [frame_pop t ~worker ~base] marks the frame at [base] dead; space is
    reclaimed once no live frame sits above it.
    @raise Failure if no such frame is live on that worker's stack. *)
val frame_pop : t -> worker:int -> base:int -> unit

(** Words currently in use (live or awaiting lazy reclaim) on a stack. *)
val stack_used : t -> worker:int -> int

(** First address of [worker]'s stack region. *)
val stack_base : t -> worker:int -> int

(** True iff [addr] falls in some worker's stack region. *)
val is_stack_addr : t -> int -> bool
