(* Chase-Lev work-stealing deque (Chase & Lev, SPAA'05, with the CAS
   discipline of Lê et al., PPoPP'13), on OCaml 5 atomics.

   Single-owner bottom end: [push_bottom]/[pop_bottom] may be called only
   by the deque's owning domain.  Any number of thieves call [steal_top]
   concurrently; the race for the last element (and between thieves) is
   decided by one compare-and-set on [top].  No mutex anywhere — the owner
   never waits for thieves and a thief never waits for the owner, which is
   exactly what the executor's steal hot path needs (ROADMAP item 2; the
   mutex-based Lockdq this replaces serialized every push against every
   steal probe).

   Memory-ordering argument (DESIGN.md §13): OCaml's [Atomic] operations
   are all sequentially consistent, which is strictly stronger than the
   acquire/release/seq_cst fences the C11 formulation of this algorithm
   needs, so the classic proof carries over unchanged:

   - publication: the owner plain-writes the slot, then SC-stores the
     incremented [bottom].  A thief SC-loads [bottom] before reading the
     slot, so the slot write happens-before the read (the OCaml memory
     model's message-passing guarantee for non-atomic writes ordered by an
     atomic store/load pair).
   - last-element race: both the owner's [pop_bottom] (when it observes
     [b = t]) and every thief fight over the same [compare_and_set top];
     exactly one wins, so the element is transferred exactly once.
   - growth: only the owner replaces the buffer.  The new array carries
     every element in [top, bottom) at its new masked position and is
     published by the plain [buf] store before the next [bottom] publish;
     a thief holding the stale buffer still reads correct values because
     cells of the old array in [top, bottom) are never written again —
     they are immutable history, and the top CAS still arbitrates.

   The deque is bounded in steady state: the ring starts at [capacity]
   slots (rounded up to a power of two) and only grows — by doubling,
   owner-side, counted in [grows] — when a push finds it full, which for
   the executor means spawn nesting deeper than the initial bound. *)

(* The two happens-before edges below are machine-checked by pint_lint R5
   against the [@pint.publishes]/[@pint.acquires] annotations on the
   operations (OWNERSHIP.md [edges:] rows, DESIGN.md §15):
   - "cld.slot": slot writes ride the owner's SC [bottom] store (or are
     arbitrated by the [top] CAS for the last element),
   - "cld.buf":  the grown buffer rides the next [bottom] publish; stale
     buffers stay readable because replaced cells are immutable history. *)
type 'a buf = {
  b_slots : 'a array [@pint.publishes "cld.slot"];
  b_mask : int; (* Array.length b_slots - 1; power-of-two capacity *)
}

type 'a t = {
  top : int Atomic.t; (* next slot to steal; thieves CAS it forward *)
  bottom : int Atomic.t; (* next slot to push; owner-written, thief-read *)
  mutable buf : 'a buf [@pint.publishes "cld.buf"];
      (* owner-replaced on growth; thieves may read stale *)
  dummy : 'a; (* fills empty slots so the array holds no stale payloads *)
  steal_fails : int Atomic.t; (* lost top CASes, summed across thieves *)
  mutable grows : int; (* owner-side buffer doublings *)
}

let rec pow2 n k = if k >= n then k else pow2 n (k * 2)

let create ?(capacity = 256) ~dummy () =
  if capacity < 1 then invalid_arg "Cldeque.create: capacity must be positive";
  let cap = pow2 capacity 1 in
  {
    top = Atomic.make 0;
    bottom = Atomic.make 0;
    buf = { b_slots = Array.make cap dummy; b_mask = cap - 1 };
    dummy;
    steal_fails = Atomic.make 0;
    grows = 0;
  }

let[@pint.acquires "cld.buf"] capacity t = t.buf.b_mask + 1
let steal_cas_failures t = Atomic.get t.steal_fails
let grows t = t.grows

(* Owner-only: double the ring, re-masking every live element.  The old
   array is left untouched (thieves may still be reading it). *)
let[@pint.publishes "cld.slot cld.buf"] [@pint.acquires "cld.slot cld.buf"] grow t ~b ~tp =
  let old = t.buf in
  let cap = (old.b_mask + 1) * 2 in
  let nbuf = { b_slots = Array.make cap t.dummy; b_mask = cap - 1 } in
  for i = tp to b - 1 do
    nbuf.b_slots.(i land nbuf.b_mask) <- old.b_slots.(i land old.b_mask)
  done;
  t.buf <- nbuf;
  t.grows <- t.grows + 1

let[@pint.hot] [@pint.publishes "cld.slot"] [@pint.acquires "cld.buf"] push_bottom t x =
  let b = Atomic.get t.bottom in
  let tp = Atomic.get t.top in
  if b - tp > t.buf.b_mask then grow t ~b ~tp;
  let buf = t.buf in
  buf.b_slots.(b land buf.b_mask) <- x;
  (* SC store publishes the slot write to thieves *)
  Atomic.set t.bottom (b + 1)

let[@pint.hot] [@pint.publishes "cld.slot"] [@pint.acquires "cld.slot cld.buf"] pop_bottom t =
  let b = Atomic.get t.bottom - 1 in
  (* reserve the bottom slot before reading top: a thief that loads the
     old bottom afterwards can no longer claim this slot uncontested *)
  Atomic.set t.bottom b;
  let tp = Atomic.get t.top in
  if b > tp then begin
    (* more than one element: the slot is ours without arbitration *)
    let buf = t.buf in
    let x = buf.b_slots.(b land buf.b_mask) in
    buf.b_slots.(b land buf.b_mask) <- t.dummy;
    Some x
  end
  else if b = tp then begin
    (* last element: settle the race with any thief via the top CAS *)
    let buf = t.buf in
    let x = buf.b_slots.(b land buf.b_mask) in
    let won = Atomic.compare_and_set t.top tp (tp + 1) in
    Atomic.set t.bottom (b + 1);
    if won then begin
      buf.b_slots.(b land buf.b_mask) <- t.dummy;
      Some x
    end
    else None
  end
  else begin
    (* already empty: undo the reservation *)
    Atomic.set t.bottom (b + 1);
    None
  end

let[@pint.hot] [@pint.acquires "cld.slot cld.buf"] steal_top t =
  let tp = Atomic.get t.top in
  let b = Atomic.get t.bottom in
  if tp >= b then None
  else begin
    (* read the element before the CAS: once top moves, the owner may
       recycle the slot.  A stale [buf] is safe — cells in [top, bottom)
       of a replaced buffer are immutable history (see header). *)
    let buf = t.buf in
    let x = buf.b_slots.(tp land buf.b_mask) in
    if Atomic.compare_and_set t.top tp (tp + 1) then Some x
    else begin
      Atomic.incr t.steal_fails;
      None
    end
  end

(* Snapshot emptiness test: exact when the deque is quiescent (the
   executor's post-run assertion), a racy hint otherwise. *)
let is_empty t = Atomic.get t.top >= Atomic.get t.bottom
