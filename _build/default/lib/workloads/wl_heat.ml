(* heat — Jacobi heat diffusion on a 2-D grid with ping-pong buffers.

   Each time step computes new(i,j) from the old grid's 5-point stencil,
   parallelized by recursive splitting into horizontal bands of at most
   [base] rows; a sync ends every step and the buffers swap.  Band kernels
   announce one read interval covering the band plus halo rows and one
   write interval for the band — rows are contiguous, so this is what
   compile-time coalescing produces.

   The racy variant updates the grid in place: neighbouring bands then race
   on their halo rows. *)

let idx ny i j = (i * ny) + j

let band_kernel ~inplace src dst nx ny r0 r1 =
  let lo = max 0 (r0 - 1) and hi = min (nx - 1) r1 in
  Access.emit_read ~addr:(Membuf.base_f src + idx ny lo 0) ~len:((hi - lo + 1) * ny);
  Access.emit_write ~addr:(Membuf.base_f dst + idx ny r0 0) ~len:((r1 - r0) * ny);
  Access.emit_compute ~amount:(7 * (r1 - r0) * ny);
  ignore inplace;
  for i = r0 to r1 - 1 do
    for j = 0 to ny - 1 do
      let v = Membuf.peek_f src (idx ny i j) in
      let up = if i > 0 then Membuf.peek_f src (idx ny (i - 1) j) else v in
      let down = if i < nx - 1 then Membuf.peek_f src (idx ny (i + 1) j) else v in
      let left = if j > 0 then Membuf.peek_f src (idx ny i (j - 1)) else v in
      let right = if j < ny - 1 then Membuf.peek_f src (idx ny i (j + 1)) else v in
      Membuf.poke_f dst (idx ny i j) (v +. (0.1 *. (up +. down +. left +. right -. (4. *. v))))
    done
  done

let rec bands ~inplace src dst nx ny base r0 r1 =
  if r1 - r0 <= base then band_kernel ~inplace src dst nx ny r0 r1
  else begin
    let mid = (r0 + r1) / 2 in
    Fj.scope (fun () ->
        Fj.spawn (fun () -> bands ~inplace src dst nx ny base r0 mid);
        bands ~inplace src dst nx ny base mid r1;
        Fj.sync ())
  end

let reference grid0 nx ny steps =
  (* serial reference on plain arrays *)
  let a = ref (Array.copy grid0) and b = ref (Array.make (nx * ny) 0.) in
  for _ = 1 to steps do
    let src = !a and dst = !b in
    for i = 0 to nx - 1 do
      for j = 0 to ny - 1 do
        let v = src.(idx ny i j) in
        let up = if i > 0 then src.(idx ny (i - 1) j) else v in
        let down = if i < nx - 1 then src.(idx ny (i + 1) j) else v in
        let left = if j > 0 then src.(idx ny i (j - 1)) else v in
        let right = if j < ny - 1 then src.(idx ny i (j + 1)) else v in
        dst.(idx ny i j) <- v +. (0.1 *. (up +. down +. left +. right -. (4. *. v)))
      done
    done;
    let t = !a in
    a := !b;
    b := t
  done;
  !a

let steps = 10

let make_good ~size ~base =
  let nx = size and ny = size in
  let state = ref None in
  let init = Array.init (nx * ny) (fun k -> if k = idx ny (nx / 2) (ny / 2) then 1000. else 0.) in
  let run () =
    let g0 = Fj.alloc_f (nx * ny) and g1 = Fj.alloc_f (nx * ny) in
    Array.iteri (fun k v -> Membuf.poke_f g0 k v) init;
    let src = ref g0 and dst = ref g1 in
    for _ = 1 to steps do
      Fj.scope (fun () ->
          bands ~inplace:false !src !dst nx ny base 0 nx;
          Fj.sync ());
      let t = !src in
      src := !dst;
      dst := t
    done;
    state := Some !src
  in
  let check () =
    match !state with
    | None -> false
    | Some final ->
        let want = reference init nx ny steps in
        let ok = ref true in
        for k = 0 to (nx * ny) - 1 do
          if Float.abs (want.(k) -. Membuf.peek_f final k) > 1e-9 then ok := false
        done;
        !ok
  in
  { Workload.run; check }

let make_racy ~size ~base =
  let nx = size and ny = size in
  let run () =
    let g = Fj.alloc_f (nx * ny) in
    Membuf.poke_f g (idx ny (nx / 2) (ny / 2)) 1000.;
    for _ = 1 to 2 do
      Fj.scope (fun () ->
          (* in-place update: bands race on their halo rows *)
          bands ~inplace:true g g nx ny base 0 nx;
          Fj.sync ())
    done
  in
  { Workload.run; check = (fun () -> true) }

let workload =
  {
      Workload.name = "heat";
      description = "2-D Jacobi heat diffusion, ping-pong grids, banded rows";
      default_size = 128;
      default_base = 8;
      make = make_good;
      racy = Some make_racy;
    }
