lib/trace/ahq.ml: Array Atomic Srec
