(** Minimal JSON parser (read-only) for bench results and Chrome traces.

    Covers the full JSON grammar with BMP-only [\u] escapes; the consumers
    are the CI perf gate ([tools/bench_gate]) and the obs schema tests, so
    a dependency-free ~150-line parser is preferred over adding a json
    package to the build environment. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string

val parse : string -> t

(** Object member lookup; [None] on non-objects or missing keys. *)
val member : string -> t -> t option

val to_float : t -> float option
val to_str : t -> string option
val to_list : t -> t list option
val to_obj : t -> (string * t) list option
