examples/quickstart.ml: Detector Fj Format List Membuf Pint_detector Printf Report Sim_exec
