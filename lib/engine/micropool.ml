(* Shard micropools: the fixed stage-to-domain topology of the real
   executor (ROADMAP items 1-2, following the pinned-pool pattern of the
   ebsl OCaml-multicore work).

   One domain per pool, each cooperatively round-robining its own small
   set of stages — for PINT, shard k's {writer, lreader, rreader} treap
   triple — until every stage reports [`Done].  Stages are pinned for the
   pool's whole lifetime: a stage never migrates between domains, so all
   the single-owner state the stages carry (treaps, scratch buffers,
   consume buffers, AHQ cursors, event rings) keeps exactly one writing
   domain without any synchronization.  (OCaml exposes no portable OS-core
   affinity API, so "pinned" means pinned to a domain; the OS scheduler
   keeps a busy domain on its core in practice.)

   This replaces the previous one-domain-per-stage spawn: 3·shards
   domains, which oversubscribed the machine as soon as shards grew, and
   whose idle stages each burned a core waiting on their lane.  A pool
   interleaves its triple on one domain — the three stages of one shard
   share one lane's data anyway, so co-scheduling them is cache-friendly —
   and backs off with the engine {!Backoff} only when the whole triple is
   unproductive. *)

type pool = {
  p_id : int;
  p_stages : Stage.t array;
  p_ring : Evring.t; (* the pool domain's own obs track (Evring.null off) *)
  mutable p_parks : int; (* deep-backoff rounds: pool-idle diagnostics *)
}

type t = { pools : pool array; domains : unit Domain.t array }

let park_kind = Ev.park

(* Drive one pool to completion: round-robin every unfinished stage; any
   productive step resets the backoff ladder.  [`Idle]/[`Stalled] steps
   are counted by the stages themselves (Stage.exec), so per-stage
   diagnostics stay attributable even though the pool shares the domain. *)
let run_pool p =
  let n = Array.length p.p_stages in
  let finished = Array.make n false in
  let remaining = ref n in
  let idle_rounds = ref 0 in
  while !remaining > 0 do
    let progressed = ref false in
    Array.iteri
      (fun i s ->
        if not finished.(i) then begin
          let st = Stage.exec s in
          if Step.is_done st then begin
            finished.(i) <- true;
            decr remaining
          end
          else if Step.progressed st then progressed := true
        end)
      p.p_stages;
    if !remaining > 0 then
      if !progressed then idle_rounds := 0
      else begin
        incr idle_rounds;
        if !idle_rounds = Backoff.yield_round then begin
          (* entering the parked regime: one instant per park episode,
             emitted from the pool's own domain into its own ring *)
          p.p_parks <- p.p_parks + 1;
          Evring.emit p.p_ring ~kind:park_kind ~arg:p.p_id
        end;
        Backoff.relax !idle_rounds
      end
  done

let make ?(rings = [||]) (groups : Stage.t list list) =
  Array.of_list
    (List.mapi
       (fun i g ->
         {
           p_id = i;
           p_stages = Array.of_list g;
           p_ring = (if i < Array.length rings then rings.(i) else Evring.null);
           p_parks = 0;
         })
       groups)

(* Spawn one domain per pool.  The caller joins via {!join}; stages end on
   their own (`Done) once the upstream pipeline drains. *)
let spawn ?rings groups =
  let pools = make ?rings groups in
  let domains = Array.map (fun p -> Domain.spawn (fun () -> run_pool p)) pools in
  { pools; domains }

let join t = Array.iter Domain.join t.domains
let n_pools t = Array.length t.pools
let parks t = Array.fold_left (fun acc p -> acc + p.p_parks) 0 t.pools

(* Every stage its own pool: the degenerate grouping for stage lists with
   no shard structure (non-PINT detectors, ad-hoc stages). *)
let singletons stages = List.map (fun s -> [ s ]) stages
