lib/workloads/wl_chol.ml: Access Fj Float Matview Rng Workload
