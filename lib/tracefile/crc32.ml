(* Reflected CRC-32 with polynomial 0xEDB88320; matches zlib's crc32 and the
   check value crc32("123456789") = 0xCBF43926. *)

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref (Int32.of_int n) in
         for _ = 0 to 7 do
           if Int32.logand !c 1l <> 0l then
             c := Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
           else c := Int32.shift_right_logical !c 1
         done;
         !c))

(* The running state is the pre-inverted register: [init] is all-ones,
   [update] folds bytes in, [finalize] applies the output inversion.  Kept
   as three functions so the trace decoder can checksum a body it only
   ever sees in chunks. *)

let init = 0xFFFFFFFFl

let update crc s ~pos ~len =
  if pos < 0 || len < 0 || pos + len > String.length s then
    invalid_arg "Crc32.update: bad range";
  let t = Lazy.force table in
  let crc = ref crc in
  for i = pos to pos + len - 1 do
    let idx = Int32.to_int (Int32.logand (Int32.logxor !crc (Int32.of_int (Char.code s.[i]))) 0xFFl) in
    crc := Int32.logxor t.(idx) (Int32.shift_right_logical !crc 8)
  done;
  !crc

let finalize crc = Int32.logxor crc 0xFFFFFFFFl

let digest_sub s ~pos ~len = finalize (update init s ~pos ~len)

let digest s = digest_sub s ~pos:0 ~len:(String.length s)
