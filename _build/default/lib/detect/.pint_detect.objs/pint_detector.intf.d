lib/detect/pint_detector.mli: Detector Interval Sim_exec
