type f = { fbase : int; fdata : float array; fspace : Aspace.t; fstack : bool }
type i = { ibase : int; idata : int array; ispace : Aspace.t }

let alloc_f space n =
  let base = Aspace.heap_alloc space n in
  { fbase = base; fdata = Array.make n 0.; fspace = space; fstack = false }

let alloc_i space n =
  let base = Aspace.heap_alloc space n in
  { ibase = base; idata = Array.make n 0; ispace = space }

let free_f b =
  if b.fstack then invalid_arg "Membuf.free_f: stack frame";
  Access.emit_free ~base:b.fbase ~len:(Array.length b.fdata)

let free_i b = Access.emit_free ~base:b.ibase ~len:(Array.length b.idata)

(* ------------------------------------------------------------ float ops *)

let base_f b = b.fbase
let length_f b = Array.length b.fdata

let get_f b j =
  Access.emit_read ~addr:(b.fbase + j) ~len:1;
  b.fdata.(j)

let set_f b j v =
  Access.emit_write ~addr:(b.fbase + j) ~len:1;
  b.fdata.(j) <- v

let blit_f src soff dst doff len =
  if len > 0 then begin
    Access.emit_read ~addr:(src.fbase + soff) ~len;
    Access.emit_write ~addr:(dst.fbase + doff) ~len;
    Array.blit src.fdata soff dst.fdata doff len
  end

let fill_f b off len v =
  if len > 0 then begin
    Access.emit_write ~addr:(b.fbase + off) ~len;
    Array.fill b.fdata off len v
  end

let read_range_f b off len =
  if len > 0 then Access.emit_read ~addr:(b.fbase + off) ~len;
  Array.sub b.fdata off len

let peek_f b j = b.fdata.(j)
let poke_f b j v = b.fdata.(j) <- v

(* -------------------------------------------------------------- int ops *)

let base_i b = b.ibase
let length_i b = Array.length b.idata

let get_i b j =
  Access.emit_read ~addr:(b.ibase + j) ~len:1;
  b.idata.(j)

let set_i b j v =
  Access.emit_write ~addr:(b.ibase + j) ~len:1;
  b.idata.(j) <- v

let blit_i src soff dst doff len =
  if len > 0 then begin
    Access.emit_read ~addr:(src.ibase + soff) ~len;
    Access.emit_write ~addr:(dst.ibase + doff) ~len;
    Array.blit src.idata soff dst.idata doff len
  end

let fill_i b off len v =
  if len > 0 then begin
    Access.emit_write ~addr:(b.ibase + off) ~len;
    Array.fill b.idata off len v
  end

let peek_i b j = b.idata.(j)
let poke_i b j v = b.idata.(j) <- v

(* ---------------------------------------------------------------- frames *)

module Frame = struct
  let with_f_hooked space ~worker ~words ~on_pop k =
    let base = Aspace.frame_push space ~worker ~words in
    let frame = { fbase = base; fdata = Array.make words 0.; fspace = space; fstack = true } in
    Fun.protect
      ~finally:(fun () ->
        Aspace.frame_pop space ~worker ~base;
        on_pop ~base ~len:words)
      (fun () -> k frame)

  let with_f space ~worker ~words k =
    with_f_hooked space ~worker ~words ~on_pop:(fun ~base:_ ~len:_ -> ()) k
end
