(** PINT — the paper's parallel interval-based race detector, with an
    N-shard access-history topology.

    Core-side (driven through the detector hooks by whichever executor is
    running the computation):
    - per-worker coalescers turn each strand's accesses into intervals;
    - finished strands are pushed onto the worker's current {!Trace}
      (Algorithm 1 — the [pred]/[child] bookkeeping itself is applied by the
      executors via {!Book});
    - a worker switches to a fresh trace when it starts a stolen
      continuation or passes a non-trivial sync.

    Access-history side: [shards] address-range shards, each owning its own
    {writer, lreader, rreader} treap triple and its own AHQ lane (routed by
    {!Lanes}: block [b] belongs to shard [b mod shards]).  All workers are
    packaged as engine {!Stage}s so every execution mode can drive them
    through the shared pipeline machinery —
    - the {b collector} (stage ["writer"] / ["writer0"]) collects ready
      strands from traces in a DAG-conforming order (Algorithm 2), splits
      each strand's interval batch into block-aligned per-shard subranges,
      commits them to all lanes atomically (all-or-nothing, stalling on
      backpressure), performs the delayed heap frees, and doubles as shard
      0's writer treap worker — at one shard this {e is} the paper's writer
      worker, byte for byte;
    - shard k's {b writer} treap worker (k ≥ 1) consumes lane k, checking
      read/write subranges against the shard's last-writer treap;
    - shard k's {b left-most} / {b right-most} reader treap workers follow
      lane k in batches ({!Ahq.peek_batch_into}), check write subranges
      against their reader treap and insert read subranges under their
      respective keep policies.

    Race-set invariant: every address belongs to exactly one shard per
    role, and every lane carries the full DAG-ordered strand stream
    restricted to that shard's range — so for any shard count the reported
    race set equals the [shards = 1] paper configuration's (the golden
    differential-replay suite asserts this at Theorem-5 granularity).

    The sequential executor calls {!drain} once at the end (the paper's
    one-core PINT configuration: all core work first, then the access
    history).  The simulator steps the stages in virtual time; the
    multi-domain executor runs each on a dedicated domain.  Each step
    reports the number of treap-node visits it caused, which is the cost
    its caller charges in virtual time (through the stage's cost hook). *)

type t

(** [make ?seed ?queue_capacity ?shards ?batch ()].

    [shards] (default 1, the paper's three-treap-worker configuration)
    selects the address-range shard count: each shard owns the
    {!Lanes.shard_block}-word blocks congruent to it and runs a private
    {writer, lreader, rreader} treap triple off a private AHQ lane; every
    treap stays sequential, so correctness needs no concurrent treap.
    (The readers-only-era [?reader_shards] alias was removed; [?shards]
    is the one spelling.)

    [batch] bounds how many lane records a consuming treap worker takes
    per step (default {!Ahq.default_batch}), amortizing cursor updates and
    slot-recycling checks. *)
val make :
  ?seed:int ->
  ?queue_capacity:int ->
  ?shards:int ->
  ?batch:int ->
  unit ->
  t

(** The configured shard count. *)
val shards : t -> int

(** The generic handle (driver/report/drain) for this instance. *)
val detector : t -> Detector.t

(** Attach an observability session.  Must be called before the first strand
    finishes (i.e. before the executor starts): the run's tracks — one per
    stage, plus per-lane occupancy tracks ["lane<k>"] when sharded — and
    the pipeline-latency histograms ("lat.finish_to_collect",
    "lat.finish_to_done") are registered lazily when the first trace record
    arrives.  With a disabled session (the default) every hot-path hook
    short-circuits to the null ring. *)
val set_obs : t -> Obs.t -> unit

(** {2 Stage roles and naming}

    The naming authority shared by obs tracks, Chrome-trace threads and
    the harness's stage clocks: bare ["writer"]/["lreader"]/["rreader"] at
    one shard, ["writer0"], ["lreader2"], … when sharded. *)

type role = Writer | Lreader | Rreader

(** [stage_name t role k] — the stage/track name of shard [k]'s worker for
    [role]. *)
val stage_name : t -> role -> int -> string

(** Parse a stage name back to its role and shard ([Some (role, 0)] for the
    bare one-shard names); [None] for non-detector stage names. *)
val role_of_stage_name : string -> (role * int) option

(** [role_mean role clocks] — mean of the named clocks belonging to [role]
    (0 when the role has no stages in the list).  The per-role reduction
    the harness uses on [Sim_exec.stage_clocks] instead of pattern-matching
    name prefixes. *)
val role_mean : role -> (string * int) list -> float

(** {2 Pipeline} *)

(** The pipeline as engine stages, in stage-index order: the collector,
    the shard writer workers (shards ≥ 2), then the [2·N] reader workers.
    [cost] converts a step's treap-node visit count into virtual cycles
    (the harness supplies the calibrated model; the default charges a small
    constant plus a per-visit cost).  The returned stages are remembered by
    the detector: {!drain} drives the same values, and their per-stage
    metrics appear in [Detector.diagnostics] (keys
    [stage.<name>.<counter>], plus [writer_stalls], the achieved
    [ahq_batch] size and the [detect_span] critical path). *)
val stages : ?cost:(records:int -> visits:int -> int) -> t -> Stage.t list

(** The shard-micropool grouping of the pipeline for the real-domain
    executor ([Par_exec.config.pools]): pool [k] is shard [k]'s {writer,
    lreader, rreader} triple, so each micropool domain owns one lane and
    its treaps outright.  Builds the stages if {!stages} has not been
    called yet. *)
val stage_pools : t -> Stage.t list list

(** [set_backpressure t ~rounds] — let the collector ride out a saturated
    lane for up to [rounds] {!Backoff} rounds before rejecting an
    all-or-nothing commit (see {!Lanes.set_backpressure}).  Default 0
    (reject immediately) — the only sound setting under single-threaded
    drivers; enable only for real-domain runs, before the run starts.  The
    producer rounds actually waited surface as the [backpressure_waits]
    diagnostic. *)
val set_backpressure : t -> rounds:int -> unit

(** The [rounds] value real-domain callers should pass to
    {!set_backpressure} absent a reason to differ (≈2.5 ms of waiting
    before a commit is rejected). *)
val recommended_bp_rounds : int

(** One collector step (exposed for tests and custom drivers). *)
val writer_step : t -> Step.t

(** Shard 0 of each reader role (the only shard in the default
    configuration). *)
val lreader_step : t -> Step.t

val rreader_step : t -> Step.t

(** All reader workers, named per {!stage_name}. *)
val reader_steps : t -> (string * (unit -> Step.t)) list

(** Run all treap workers round-robin to completion via the engine's
    {!Pipeline.drive}. *)
val drain : t -> unit

(** Number of strands the collector has committed so far. *)
val collected : t -> int

(** The treap-side critical path: the maximum over stages of the stage's
    cost applied to its accumulated metrics.  With one worker per stage
    this is what bounds detection latency; sharding exists to push it
    down. *)
val detection_span : t -> float

(** [iter_shard_subranges ~shards ~shard iv f] — the block-aligned subranges
    of [iv] owned by [shard]; the shards partition every interval exactly.
    (Alias of {!Lanes.iter_subranges} at the default block size, kept for
    tests and custom shard workers.) *)
val iter_shard_subranges : shards:int -> shard:int -> Interval.t -> (Interval.t -> unit) -> unit
