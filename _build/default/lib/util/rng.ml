type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = mix64 (Int64.of_int seed) }

let copy t = { state = t.state }

let next64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t =
  (* Two draws: one seeds the child, the second perturbs its gamma position. *)
  let s = next64 t in
  let g = next64 t in
  { state = Int64.add (mix64 s) g }

(* Mask to OCaml's non-negative int range (62 value bits). *)
let next t = Int64.to_int (next64 t) land max_int

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling to avoid modulo bias. *)
  let rec go () =
    let r = next t in
    let v = r mod bound in
    if r - v > max_int - bound + 1 then go () else v
  in
  go ()

let float t = Int64.to_float (Int64.shift_right_logical (next64 t) 11) *. 0x1.0p-53

let bool t = Int64.logand (next64 t) 1L = 1L

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
