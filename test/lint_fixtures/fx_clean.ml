(* Control module: the same shapes as the broken fixtures, written the
   synchronized way.  The test asserts the whole-program passes report
   ZERO findings here — the rules must not fire on correct code. *)

type t = { total : int Atomic.t; label : string }

let make label = { total = Atomic.make 0; label }
let bump t = Atomic.incr t.total
let read t = Atomic.get t.total

let run t =
  let d = Domain.spawn (fun () -> bump t) in
  bump t;
  Domain.join d;
  read t
