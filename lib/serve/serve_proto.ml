exception Proto_error of string

let proto_error fmt = Printf.ksprintf (fun s -> raise (Proto_error s)) fmt

let protocol_version = 2
let default_max_frame = 1 lsl 20

type client_msg =
  | Hello of { version : int; shards : int; predict : int }
  | Data of string
  | End

type server_msg =
  | Accepted of { session : int }
  | Races of (Report.kind * int * int * Interval.t) list
  | Summary of {
      n_strands : int;
      n_races : int;
      stats : (string * string) list;
      predicted : (Report.kind * int * int * Interval.t) list;
    }
  | Reject of string

(* ---------------------------------------------------------------- framing *)

(* Every frame is a 4-byte LE length N followed by N payload bytes; the
   first payload byte is the message tag.  The length covers the payload
   only.  LE matches the trace trailer's byte order. *)

let frame payload =
  let n = String.length payload in
  let b = Bytes.create (4 + n) in
  Bytes.set b 0 (Char.chr (n land 0xff));
  Bytes.set b 1 (Char.chr ((n lsr 8) land 0xff));
  Bytes.set b 2 (Char.chr ((n lsr 16) land 0xff));
  Bytes.set b 3 (Char.chr ((n lsr 24) land 0xff));
  Bytes.blit_string payload 0 b 4 n;
  Bytes.unsafe_to_string b

(* Reassembler for the reading side: feed raw socket bytes, take complete
   payloads.  One per connection; single-owner (the connection's reader). *)
module Frames = struct
  type t = {
    mutable buf : string; (* unparsed bytes (plus a consumed prefix) *)
    mutable off : int;
    max_frame : int;
  }

  let create ?(max_frame = default_max_frame) () = { buf = ""; off = 0; max_frame }

  let available t = String.length t.buf - t.off

  let feed t ?(pos = 0) ?len s =
    let len = match len with Some l -> l | None -> String.length s - pos in
    if pos < 0 || len < 0 || pos + len > String.length s then
      invalid_arg "Serve_proto.Frames.feed: bad range";
    if len > 0 then begin
      let keep = available t in
      if keep = 0 then t.buf <- String.sub s pos len
      else begin
        let b = Bytes.create (keep + len) in
        Bytes.blit_string t.buf t.off b 0 keep;
        Bytes.blit_string s pos b keep len;
        t.buf <- Bytes.unsafe_to_string b
      end;
      t.off <- 0
    end

  let next t =
    if available t < 4 then None
    else begin
      let b i = Char.code t.buf.[t.off + i] in
      let n = b 0 lor (b 1 lsl 8) lor (b 2 lsl 16) lor (b 3 lsl 24) in
      if n > t.max_frame then proto_error "frame of %d bytes exceeds the %d limit" n t.max_frame;
      if available t < 4 + n then None
      else begin
        let payload = String.sub t.buf (t.off + 4) n in
        t.off <- t.off + 4 + n;
        if available t = 0 then begin
          t.buf <- "";
          t.off <- 0
        end;
        Some payload
      end
    end
end

(* --------------------------------------------------------------- messages *)

let kind_tag = function
  | Report.Write_write -> 0
  | Report.Write_read -> 1
  | Report.Read_write -> 2

let kind_of_tag = function
  | 0 -> Report.Write_write
  | 1 -> Report.Write_read
  | 2 -> Report.Read_write
  | n -> proto_error "bad race-kind tag %d" n

let with_tag tag body =
  let buf = Buffer.create (String.length body + 1) in
  Buffer.add_char buf tag;
  Buffer.add_string buf body;
  frame (Buffer.contents buf)

let varints ints =
  let buf = Buffer.create 16 in
  List.iter (Varint.write buf) ints;
  Buffer.contents buf

(* One race list on the wire: count, then per race a kind byte and
   prior/current/lo/width varints — shared by ['R'] frames and the
   Summary's trailing predicted block. *)
let write_races buf rs =
  Varint.write buf (List.length rs);
  List.iter
    (fun (kind, prior, current, (iv : Interval.t)) ->
      Buffer.add_char buf (Char.chr (kind_tag kind));
      Varint.write buf prior;
      Varint.write buf current;
      Varint.write buf iv.Interval.lo;
      Varint.write buf (iv.Interval.hi - iv.Interval.lo))
    rs

let read_races c =
  let n = Varint.read c in
  List.init n (fun _ ->
      let kind = kind_of_tag (Varint.read_byte c) in
      let prior = Varint.read c in
      let current = Varint.read c in
      let lo = Varint.read c in
      let hi = lo + Varint.read c in
      (kind, prior, current, Interval.make lo hi))

let encode_client = function
  | Hello { version; shards; predict } ->
      (* the predict window is a version-2 trailing field: version-1 hellos
         simply end after [shards], which decodes as predict = 0 *)
      with_tag 'H' (varints (if predict = 0 then [ version; shards ] else [ version; shards; predict ]))
  | Data chunk -> with_tag 'D' chunk
  | End -> with_tag 'E' ""

let encode_server = function
  | Accepted { session } -> with_tag 'A' (varints [ session ])
  | Races rs ->
      let buf = Buffer.create 64 in
      write_races buf rs;
      with_tag 'R' (Buffer.contents buf)
  | Summary { n_strands; n_races; stats; predicted } ->
      let buf = Buffer.create 256 in
      Varint.write buf n_strands;
      Varint.write buf n_races;
      Varint.write buf (List.length stats);
      List.iter
        (fun (k, v) ->
          Varint.write buf (String.length k);
          Buffer.add_string buf k;
          Varint.write buf (String.length v);
          Buffer.add_string buf v)
        stats;
      (* trailing predicted block (version 2); omitted when empty so
         version-1 summaries stay byte-identical *)
      if predicted <> [] then write_races buf predicted;
      with_tag 'S' (Buffer.contents buf)
  | Reject msg -> with_tag 'X' msg

let payload_cursor payload =
  if payload = "" then proto_error "empty frame";
  (payload.[0], { Varint.data = payload; pos = 1 })

let wrap f = try f () with Failure m -> proto_error "corrupt frame: %s" m

let decode_client payload =
  let tag, c = payload_cursor payload in
  wrap (fun () ->
      match tag with
      | 'H' ->
          let version = Varint.read c in
          let shards = Varint.read c in
          let predict = if c.Varint.pos < String.length payload then Varint.read c else 0 in
          Hello { version; shards; predict }
      | 'D' -> Data (String.sub payload 1 (String.length payload - 1))
      | 'E' -> End
      | t -> proto_error "unknown client message tag %C" t)

let decode_server payload =
  let tag, c = payload_cursor payload in
  wrap (fun () ->
      match tag with
      | 'A' -> Accepted { session = Varint.read c }
      | 'R' -> Races (read_races c)
      | 'S' ->
          let n_strands = Varint.read c in
          let n_races = Varint.read c in
          let n = Varint.read c in
          let stats =
            List.init n (fun _ ->
                let k = Varint.read_string c (Varint.read c) in
                let v = Varint.read_string c (Varint.read c) in
                (k, v))
          in
          let predicted = if c.Varint.pos < String.length payload then read_races c else [] in
          Summary { n_strands; n_races; stats; predicted }
      | 'X' -> Reject (String.sub payload 1 (String.length payload - 1))
      | t -> proto_error "unknown server message tag %C" t)
