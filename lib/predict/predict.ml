(* Predictive race detection over captured traces — see predict.mli for the
   semantics.  Everything here is deterministic: same dag + window + observed
   set => same findings and same diagnostic counters. *)

type node = {
  pos : int;
  uid : int;
  id : int;
  sp : Sp_order.strand;
  reads : Interval.t array;
  writes : Interval.t array;
  wipes : Interval.t list;
  preds : int list;
  succs : int list;
}

type dag = { sp : Sp_order.t; nodes : node array }

(* ------------------------------------------------------------- building *)

let wipes_of (e : Tracefile.entry) =
  let iv (b, l) = if l <= 0 then None else Some (Interval.make b (b + l - 1)) in
  let all = List.filter_map iv e.Tracefile.clears @ List.filter_map iv e.Tracefile.frees in
  List.sort Interval.compare all

(* DAG successor uids of an entry, from its finish link. *)
let succ_uids (e : Tracefile.entry) =
  match e.Tracefile.finish with
  | Tracefile.Spawn { cont; child; _ } -> [ child; cont ]
  | Tracefile.Sync { sync; _ } -> [ sync ]
  | Tracefile.Return { parent_sync = Some s; _ } -> [ s ]
  | Tracefile.Return { parent_sync = None; _ } | Tracefile.Root -> []

module Builder = struct
  type t = {
    mutable acc : (int * Tracefile.entry * Sp_order.strand) list;
    mutable n : int;
    mutable sp : Sp_order.t option;
  }

  let create () = { acc = []; n = 0; sp = None }

  let observer t : Replay.strand_observer =
   fun ~sp ~pos e r ->
    t.sp <- Some sp;
    t.n <- t.n + 1;
    t.acc <- (pos, e, r.Srec.sp) :: t.acc

  let count t = t.n

  let dag t =
    let sp =
      match t.sp with
      | Some sp -> sp
      | None -> failwith "Predict.Builder.dag: no strands observed"
    in
    let n = t.n in
    let slots = Array.make n None in
    List.iter
      (fun (pos, e, s) ->
        if pos < 0 || pos >= n then failwith "Predict.Builder.dag: position out of range";
        if Option.is_some slots.(pos) then failwith "Predict.Builder.dag: duplicate position";
        slots.(pos) <- Some (e, s))
      t.acc;
    let pos_of = Hashtbl.create (2 * n) in
    Array.iteri
      (fun pos slot ->
        match slot with
        | None -> failwith "Predict.Builder.dag: missing position"
        | Some ((e : Tracefile.entry), _) -> Hashtbl.replace pos_of e.Tracefile.uid pos)
      slots;
    let succs =
      Array.mapi
        (fun pos slot ->
          let e, _ = Option.get slot in
          List.map
            (fun uid ->
              match Hashtbl.find_opt pos_of uid with
              | Some p when p > pos -> p
              | Some _ -> failwith "Predict.Builder.dag: DAG link points backwards"
              | None -> failwith "Predict.Builder.dag: dangling DAG link")
            (succ_uids e))
        slots
    in
    let preds = Array.make n [] in
    Array.iteri (fun pos -> List.iter (fun s -> preds.(s) <- pos :: preds.(s))) succs;
    let nodes =
      Array.mapi
        (fun pos slot ->
          let (e : Tracefile.entry), s = Option.get slot in
          {
            pos;
            uid = e.Tracefile.uid;
            id = Sp_order.id s;
            sp = s;
            reads = e.Tracefile.reads;
            writes = e.Tracefile.writes;
            wipes = wipes_of e;
            preds = List.rev preds.(pos);
            succs = succs.(pos);
          })
        slots
    in
    { sp; nodes }
end

let dag_of_trace tf =
  let b = Builder.create () in
  let (_ : Replay.outcome) = Replay.run ~on_strand:(Builder.observer b) tf (Nodetect.make ()) in
  Builder.dag b

(* ------------------------------------------------------------- findings *)

type finding = { kind : Report.kind; prior : int; current : int; where : Interval.t }

type result = { window : int; predicted : finding list; diagnostics : (string * float) list }

let kind_tag = function Report.Write_write -> 0 | Report.Write_read -> 1 | Report.Read_write -> 2

let finding_key f = (f.kind, f.prior, f.current)

let compare_findings a b =
  match compare a.prior b.prior with
  | 0 -> (
      match compare a.current b.current with
      | 0 -> (
          match compare (kind_tag a.kind) (kind_tag b.kind) with
          | 0 -> Interval.compare a.where b.where
          | c -> c)
      | c -> c)
  | c -> c

let equal_findings a b =
  List.length a = List.length b
  && List.for_all2
       (fun x y -> compare_findings x y = 0 && Interval.equal x.where y.where)
       a b

let pp_finding fmt f =
  Format.fprintf fmt "predicted %s race between strands %d and %d at %a"
    (Report.kind_to_string f.kind) f.prior f.current Interval.pp f.where

(* The observed set at Theorem-5 granularity, both orientations: an observed
   (kind, prior, current) names the same pair as the flipped kind with the
   strands swapped (collect order and position order can disagree under a
   parallel capture). *)
let flip_kind = function
  | Report.Write_write -> Report.Write_write
  | Report.Write_read -> Report.Read_write
  | Report.Read_write -> Report.Write_read

let observed_table (observed : Report.race list) =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun (r : Report.race) ->
      Hashtbl.replace tbl (kind_tag r.Report.kind, r.Report.prior, r.Report.current) ();
      Hashtbl.replace tbl (kind_tag (flip_kind r.Report.kind), r.Report.current, r.Report.prior) ())
    observed;
  tbl

(* --------------------------------------------------- interval machinery *)

(* Merge-walk over two sorted, disjoint interval arrays: every pairwise
   intersection in increasing address order. *)
let iter_overlaps (a : Interval.t array) (b : Interval.t array) ~f =
  let i = ref 0 and j = ref 0 in
  while !i < Array.length a && !j < Array.length b do
    let x = a.(!i) and y = b.(!j) in
    let lo = max x.Interval.lo y.Interval.lo and hi = min x.Interval.hi y.Interval.hi in
    if lo <= hi then f (Interval.make lo hi);
    if x.Interval.hi < y.Interval.hi then incr i else incr j
  done

let has_overlap (a : Interval.t array) (b : Interval.t array) =
  let i = ref 0 and j = ref 0 and found = ref false in
  while (not !found) && !i < Array.length a && !j < Array.length b do
    let x = a.(!i) and y = b.(!j) in
    if Interval.overlaps x y then found := true
    else if x.Interval.hi < y.Interval.hi then incr i
    else incr j
  done;
  !found

let subtract_one (s : Interval.t) (k : Interval.t) =
  if k.Interval.hi < s.Interval.lo || k.Interval.lo > s.Interval.hi then [ s ]
  else
    let left =
      if k.Interval.lo > s.Interval.lo then [ Interval.make s.Interval.lo (k.Interval.lo - 1) ]
      else []
    in
    let right =
      if k.Interval.hi < s.Interval.hi then [ Interval.make (k.Interval.hi + 1) s.Interval.hi ]
      else []
    in
    left @ right

let subtract_all segs kills =
  List.fold_left (fun segs k -> List.concat_map (fun s -> subtract_one s k) segs) segs kills

(* Reuse suppression (see mli): wipes of [u] itself plus wipes of strictly
   intervening strands serial before [v]. *)
let suppressors (dag : dag) up vp =
  let u = dag.nodes.(up) and v = dag.nodes.(vp) in
  let mid = ref [] in
  for fp = up + 1 to vp - 1 do
    let f = dag.nodes.(fp) in
    match f.wipes with
    | [] -> ()
    | wipes -> if Sp_order.series dag.sp f.sp v.sp then mid := wipes :: !mid
  done;
  List.concat (u.wipes :: !mid)

(* First (lowest-address) conflict residue for one kind, or the fact that
   the whole conflicting region was wiped. *)
let kind_residue ~kills aa bb =
  let segs = ref [] in
  iter_overlaps aa bb ~f:(fun s -> segs := s :: !segs);
  match List.rev !segs with
  | [] -> None
  | segs -> (
      match subtract_all segs kills with
      | [] -> Some None
      | w :: _ -> Some (Some w))

(* --------------------------------------- candidate generation (treaps) *)

type stats = {
  mutable candidates : int;
  mutable pair_scans : int;
  mutable probe_skips : int;
  mutable windows : int;
  mutable infeasible : int;
  mutable suppressed_reuse : int;
  mutable suppressed_observed : int;
  mutable treap_visits : int;
}

let granule = 64

let shard_of ~shards addr = addr / granule mod shards

(* Split an interval at granule boundaries and hand each piece to its
   shard.  At one shard the interval passes through whole. *)
let iter_shard_pieces ~shards (iv : Interval.t) f =
  if shards = 1 then f 0 iv
  else begin
    let lo = ref iv.Interval.lo in
    while !lo <= iv.Interval.hi do
      let hi = min iv.Interval.hi ((!lo / granule * granule) + granule - 1) in
      f (shard_of ~shards !lo) (Interval.make !lo hi);
      lo := hi + 1
    done
  end

type lane = { lane_writer : int Itreap.t; lane_reader : int Itreap.t }

(* Candidate pairs (upos, vpos), upos < vpos, vpos - upos <= 2w+1, whose
   interval sets conflict and whose strands are logically parallel — the
   exact necessary condition for w-predictability short of feasibility.
   The per-shard recency treaps (owner = last touching position, never
   wiped) are a skip filter: if every address v touches was last touched
   before v's window floor, no in-window pair can conflict with v and the
   window scan is skipped.  The resulting pair list is independent of
   [shards]: the union of lanes stores the same address -> last-toucher
   map under any striping. *)
let scan_candidates ~shards (dag : dag) ~window st =
  let n = Array.length dag.nodes in
  let span = (2 * window) + 1 in
  let lanes =
    Array.init shards (fun k ->
        {
          lane_writer = Itreap.create ~seed:(0x51ab + k) ~owner_eq:Int.equal ();
          lane_reader = Itreap.create ~seed:(0xeade + k) ~owner_eq:Int.equal ();
        })
  in
  let cands = ref [] in
  for vpos = 0 to n - 1 do
    let v = dag.nodes.(vpos) in
    let floor = vpos - span in
    let recent = ref false in
    let probe role_of_lane iv =
      iter_shard_pieces ~shards iv (fun k piece ->
          if not !recent then
            Itreap.query (role_of_lane lanes.(k)) piece ~f:(fun _seg owner ->
                if owner >= floor then recent := true))
    in
    Array.iter
      (fun iv ->
        probe (fun l -> l.lane_writer) iv;
        probe (fun l -> l.lane_reader) iv)
      v.writes;
    Array.iter (fun iv -> probe (fun l -> l.lane_writer) iv) v.reads;
    if !recent then
      for upos = max 0 (vpos - span) to vpos - 1 do
        st.pair_scans <- st.pair_scans + 1;
        let u = dag.nodes.(upos) in
        if
          (has_overlap u.writes v.writes || has_overlap u.writes v.reads
         || has_overlap u.reads v.writes)
          && Sp_order.parallel dag.sp u.sp v.sp
        then cands := (upos, vpos) :: !cands
      done
    else if Array.length v.reads + Array.length v.writes > 0 then
      st.probe_skips <- st.probe_skips + 1;
    Array.iter
      (fun iv ->
        iter_shard_pieces ~shards iv (fun k piece ->
            Itreap.insert_replace lanes.(k).lane_writer piece vpos))
      v.writes;
    Array.iter
      (fun iv ->
        iter_shard_pieces ~shards iv (fun k piece ->
            Itreap.insert_replace lanes.(k).lane_reader piece vpos))
      v.reads
  done;
  Array.iter
    (fun l ->
      st.treap_visits <- st.treap_visits + Itreap.visits l.lane_writer + Itreap.visits l.lane_reader)
    lanes;
  List.rev !cands

(* --------------------------------------- adjacency feasibility (exact) *)

(* Displacement windows folded through the DAG give per-position release
   slots and deadlines; pinning the candidate pair to two adjacent slots
   and scheduling the rest by earliest deadline first decides feasibility
   exactly (EDF is exact for unit jobs with release times and deadlines,
   and precedence-safe here because folded windows strictly increase along
   every edge, so a successor can never underbid its predecessor). *)
type sched = {
  s_n : int;
  base_r : int array;  (* propagated releases; base_r.(i) <= i *)
  base_d : int array;  (* propagated deadlines; base_d.(i) >= i *)
  s_preds : int list array;
  s_succs : int list array;
  r : int array;  (* per-check scratch *)
  d : int array;
  order : int array;
  heap : int array;
  mutable heap_n : int;
}

let make_sched (dag : dag) ~window =
  let n = Array.length dag.nodes in
  let base_r = Array.init n (fun i -> max 0 (i - window)) in
  let base_d = Array.init n (fun i -> min (n - 1) (i + window)) in
  let s_preds = Array.map (fun nd -> nd.preds) dag.nodes in
  let s_succs = Array.map (fun nd -> nd.succs) dag.nodes in
  for i = 0 to n - 1 do
    List.iter (fun j -> if base_r.(j) + 1 > base_r.(i) then base_r.(i) <- base_r.(j) + 1) s_preds.(i)
  done;
  for i = n - 1 downto 0 do
    List.iter (fun j -> if base_d.(j) - 1 < base_d.(i) then base_d.(i) <- base_d.(j) - 1) s_succs.(i)
  done;
  {
    s_n = n;
    base_r;
    base_d;
    s_preds;
    s_succs;
    r = Array.make n 0;
    d = Array.make n 0;
    order = Array.init n (fun i -> i);
    heap = Array.make n 0;
    heap_n = 0;
  }

let heap_push t key =
  let h = t.heap in
  let i = ref t.heap_n in
  t.heap_n <- t.heap_n + 1;
  h.(!i) <- key;
  while !i > 0 && h.((!i - 1) / 2) > h.(!i) do
    let p = (!i - 1) / 2 in
    let tmp = h.(p) in
    h.(p) <- h.(!i);
    h.(!i) <- tmp;
    i := p
  done

let heap_pop t =
  let h = t.heap in
  let top = h.(0) in
  t.heap_n <- t.heap_n - 1;
  h.(0) <- h.(t.heap_n);
  let i = ref 0 in
  let continue = ref true in
  while !continue do
    let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
    let m = ref !i in
    if l < t.heap_n && h.(l) < h.(!m) then m := l;
    if r < t.heap_n && h.(r) < h.(!m) then m := r;
    if !m = !i then continue := false
    else begin
      let tmp = h.(!m) in
      h.(!m) <- h.(!i);
      h.(!i) <- tmp;
      i := !m
    end
  done;
  top

(* One pinned instance: [a] at slot [p], [b] at slot [p+1]. *)
let feasible_pinned t ~a ~b ~p =
  let n = t.s_n in
  Array.blit t.base_r 0 t.r 0 n;
  Array.blit t.base_d 0 t.d 0 n;
  t.r.(a) <- p;
  t.d.(a) <- p;
  t.r.(b) <- p + 1;
  t.d.(b) <- p + 1;
  for i = 0 to n - 1 do
    List.iter (fun j -> if t.r.(j) + 1 > t.r.(i) then t.r.(i) <- t.r.(j) + 1) t.s_preds.(i)
  done;
  for i = n - 1 downto 0 do
    List.iter (fun j -> if t.d.(j) - 1 < t.d.(i) then t.d.(i) <- t.d.(j) - 1) t.s_succs.(i)
  done;
  let ok = ref true in
  for i = 0 to n - 1 do
    if t.r.(i) > t.d.(i) then ok := false
  done;
  if !ok then begin
    for i = 0 to n - 1 do
      t.order.(i) <- i
    done;
    Array.sort (fun x y -> match compare t.r.(x) t.r.(y) with 0 -> compare x y | c -> c) t.order;
    t.heap_n <- 0;
    let ptr = ref 0 in
    let slot = ref 0 in
    while !ok && !slot < n do
      while !ptr < n && t.r.(t.order.(!ptr)) <= !slot do
        let i = t.order.(!ptr) in
        heap_push t ((t.d.(i) * n) + i);
        incr ptr
      done;
      if t.heap_n = 0 then ok := false
      else begin
        let key = heap_pop t in
        if key / n < !slot then ok := false
      end;
      incr slot
    done
  end;
  !ok

(* Can some permissible reordering run [a] and [b] back to back (either
   order)?  Pin slots are exhaustive over the folded windows, so this is
   exact, with early exit on the first feasible pin. *)
let feasible_adjacent t st ~a ~b =
  let try_order a b =
    let lo = max t.base_r.(a) (t.base_r.(b) - 1) in
    let hi = min t.base_d.(a) (t.base_d.(b) - 1) in
    let rec go p =
      p <= hi
      && begin
           st.windows <- st.windows + 1;
           feasible_pinned t ~a ~b ~p || go (p + 1)
         end
    in
    go lo
  in
  try_order a b || try_order b a

(* ------------------------------------------------------------ predictor *)

let predict ?(shards = 1) ~window ~observed (dag : dag) =
  if window < 0 then invalid_arg "Predict.predict: negative window";
  if shards < 1 then invalid_arg "Predict.predict: shards must be >= 1";
  let st =
    {
      candidates = 0;
      pair_scans = 0;
      probe_skips = 0;
      windows = 0;
      infeasible = 0;
      suppressed_reuse = 0;
      suppressed_observed = 0;
      treap_visits = 0;
    }
  in
  let cands = scan_candidates ~shards dag ~window st in
  st.candidates <- List.length cands;
  let sched = make_sched dag ~window in
  let obs = observed_table observed in
  let findings = ref [] in
  List.iter
    (fun (up, vp) ->
      let u = dag.nodes.(up) and v = dag.nodes.(vp) in
      let kills = suppressors dag up vp in
      let residues =
        List.filter_map
          (fun (k, aa, bb) ->
            match kind_residue ~kills aa bb with
            | None -> None
            | Some None ->
                st.suppressed_reuse <- st.suppressed_reuse + 1;
                None
            | Some (Some w) -> Some (k, w))
          [
            (Report.Write_write, u.writes, v.writes);
            (Report.Write_read, u.writes, v.reads);
            (Report.Read_write, u.reads, v.writes);
          ]
      in
      match residues with
      | [] -> ()
      | residues ->
        if feasible_adjacent sched st ~a:up ~b:vp then
          List.iter
            (fun (k, w) ->
              if Hashtbl.mem obs (kind_tag k, u.id, v.id) then
                st.suppressed_observed <- st.suppressed_observed + 1
              else findings := { kind = k; prior = u.id; current = v.id; where = w } :: !findings)
            residues
        else st.infeasible <- st.infeasible + 1)
    cands;
  let predicted = List.sort compare_findings !findings in
  {
    window;
    predicted;
    diagnostics =
      [
        ("predict_candidates", float_of_int st.candidates);
        ("predict_windows", float_of_int st.windows);
        ("predict_pair_scans", float_of_int st.pair_scans);
        ("predict_probe_skips", float_of_int st.probe_skips);
        ("predict_infeasible", float_of_int st.infeasible);
        ("predict_suppressed_reuse", float_of_int st.suppressed_reuse);
        ("predict_suppressed_observed", float_of_int st.suppressed_observed);
        ("predict_treap_visits", float_of_int st.treap_visits);
        ("predicted", float_of_int (List.length predicted));
      ];
  }

(* --------------------------------------------------------------- oracle *)

(* Independent implementation for certification: reachability is a
   transitive closure over the raw DAG links (not Sp_order), conflicts are
   nested-loop intersections (not merge walks), reuse subtraction is
   re-derived, and adjacency feasibility enumerates *all* permissible
   reorderings via a subset DP over the at-most-(2w+1) positions in flight
   around each slot. *)

let oracle ~window ~observed (dag : dag) =
  if window < 0 then invalid_arg "Predict.oracle: negative window";
  if window > 10 then invalid_arg "Predict.oracle: window too large (max 10)";
  let n = Array.length dag.nodes in
  if n = 0 then []
  else begin
    let reach = Array.make_matrix n n false in
    for i = n - 1 downto 0 do
      reach.(i).(i) <- true;
      List.iter
        (fun j ->
          for k = 0 to n - 1 do
            if reach.(j).(k) then reach.(i).(k) <- true
          done)
        dag.nodes.(i).succs
    done;
    (* State (i, mask): slots 0..i-1 are filled; bit j of mask says position
       (i - window) + j is already placed; every position below i - window
       is placed, every position above i + window is not. *)
    let can_place i mask p =
      let base = i - window in
      p >= max 0 base
      && p <= min (n - 1) (i + window)
      && mask land (1 lsl (p - base)) = 0
      && List.for_all
           (fun q -> q < base || mask land (1 lsl (q - base)) <> 0)
           dag.nodes.(p).preds
    in
    (* Place p at slot i and shift the window; None if position (i - window)
       would miss its deadline. *)
    let advance i mask p =
      let base = i - window in
      let m = mask lor (1 lsl (p - base)) in
      if base >= 0 && m land 1 = 0 then None else Some (m lsr 1)
    in
    let memo = Hashtbl.create 4096 in
    let rec completable i mask =
      i = n
      ||
      match Hashtbl.find_opt memo (i, mask) with
      | Some b -> b
      | None ->
          let rec go p =
            p <= min (n - 1) (i + window)
            && ((can_place i mask p
                &&
                match advance i mask p with
                | None -> false
                | Some m -> completable (i + 1) m)
               || go (p + 1))
          in
          let b = go (max 0 (i - window)) in
          Hashtbl.add memo (i, mask) b;
          b
    in
    (* Forward-reachable states, layer by layer. *)
    let layers = Array.make (n + 1) [] in
    layers.(0) <- [ 0 ];
    let seen = Hashtbl.create 4096 in
    Hashtbl.add seen (0, 0) ();
    for i = 0 to n - 1 do
      List.iter
        (fun mask ->
          for p = max 0 (i - window) to min (n - 1) (i + window) do
            if can_place i mask p then
              match advance i mask p with
              | None -> ()
              | Some m ->
                  if not (Hashtbl.mem seen (i + 1, m)) then begin
                    Hashtbl.add seen (i + 1, m) ();
                    layers.(i + 1) <- m :: layers.(i + 1)
                  end
          done)
        layers.(i)
    done;
    (* Pairs placeable at adjacent slots of some complete permissible
       reordering. *)
    let adjacent = Hashtbl.create 256 in
    for i = 0 to n - 2 do
      List.iter
        (fun mask ->
          for a = max 0 (i - window) to min (n - 1) (i + window) do
            if can_place i mask a then
              match advance i mask a with
              | None -> ()
              | Some m1 ->
                  for b = max 0 (i + 1 - window) to min (n - 1) (i + 1 + window) do
                    if b <> a && can_place (i + 1) m1 b then
                      match advance (i + 1) m1 b with
                      | None -> ()
                      | Some m2 ->
                          if completable (i + 2) m2 then
                            Hashtbl.replace adjacent (min a b, max a b) ()
                  done
          done)
        layers.(i)
    done;
    (* Independent conflict + reuse subtraction. *)
    let overlap_segs (aa : Interval.t array) (bb : Interval.t array) =
      let segs = ref [] in
      Array.iter
        (fun x ->
          Array.iter
            (fun y ->
              if Interval.overlaps x y then
                segs :=
                  Interval.make
                    (max x.Interval.lo y.Interval.lo)
                    (min x.Interval.hi y.Interval.hi)
                  :: !segs)
            bb)
        aa;
      List.sort Interval.compare !segs
    in
    let residue segs kills =
      (* walk each segment against the kill set, keeping uncovered spans *)
      let keep = ref [] in
      List.iter
        (fun (s : Interval.t) ->
          let cursor = ref s.Interval.lo in
          List.iter
            (fun (k : Interval.t) ->
              if k.Interval.lo <= s.Interval.hi && k.Interval.hi >= !cursor then begin
                if k.Interval.lo > !cursor then
                  keep := Interval.make !cursor (k.Interval.lo - 1) :: !keep;
                cursor := max !cursor (k.Interval.hi + 1)
              end)
            (List.sort Interval.compare kills);
          if !cursor <= s.Interval.hi then keep := Interval.make !cursor s.Interval.hi :: !keep)
        segs;
      List.sort Interval.compare !keep
    in
    let obs = observed_table observed in
    let findings = ref [] in
    for up = 0 to n - 1 do
      for vp = up + 1 to n - 1 do
        if
          Hashtbl.mem adjacent (up, vp)
          && (not reach.(up).(vp))
          && not reach.(vp).(up)
        then begin
          let u = dag.nodes.(up) and v = dag.nodes.(vp) in
          let kills = ref u.wipes in
          for fp = up + 1 to vp - 1 do
            let f = dag.nodes.(fp) in
            if reach.(fp).(vp) then kills := f.wipes @ !kills
          done;
          List.iter
            (fun (k, aa, bb) ->
              match residue (overlap_segs aa bb) !kills with
              | [] -> ()
              | w :: _ ->
                  if not (Hashtbl.mem obs (kind_tag k, u.id, v.id)) then
                    findings := { kind = k; prior = u.id; current = v.id; where = w } :: !findings)
            [
              (Report.Write_write, u.writes, v.writes);
              (Report.Write_read, u.writes, v.reads);
              (Report.Read_write, u.reads, v.writes);
            ]
        end
      done
    done;
    List.sort compare_findings !findings
  end
