lib/interval/interval.ml: Format Int
