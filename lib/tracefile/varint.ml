let write buf n =
  if n < 0 then invalid_arg "Varint.write: negative";
  let rec go n =
    if n < 0x80 then Buffer.add_char buf (Char.chr n)
    else begin
      Buffer.add_char buf (Char.chr (0x80 lor (n land 0x7f)));
      go (n lsr 7)
    end
  in
  go n

type cursor = { data : string; mutable pos : int }

let cursor data = { data; pos = 0 }

let at_end c = c.pos >= String.length c.data

let read_byte c =
  if c.pos >= String.length c.data then failwith "Varint: truncated input";
  let b = Char.code c.data.[c.pos] in
  c.pos <- c.pos + 1;
  b

let read c =
  let rec go shift acc =
    if shift > 62 then failwith "Varint: value out of range";
    let b = read_byte c in
    let acc = acc lor ((b land 0x7f) lsl shift) in
    if b land 0x80 = 0 then acc else go (shift + 7) acc
  in
  go 0 0

let read_string c len =
  if len < 0 || c.pos + len > String.length c.data then failwith "Varint: truncated input";
  let s = String.sub c.data c.pos len in
  c.pos <- c.pos + len;
  s
