let make () =
  let report = Report.create () in
  let driver (ctx : Hooks.ctx) =
    {
      Hooks.sink =
        (fun ~wid:_ ->
          {
            Access.noop with
            on_free = (fun ~base ~len -> Aspace.heap_free ctx.aspace ~base ~len);
          });
      on_start = (fun ~wid:_ _ _ -> ());
      on_finish = (fun ~wid:_ _ _ -> ());
      on_done = (fun () -> ());
    }
  in
  {
    Detector.name = "baseline";
    driver;
    report;
    drain = (fun () -> ());
    diagnostics = (fun () -> []);
    validate = (fun () -> ());
  }
