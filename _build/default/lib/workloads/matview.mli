(** Matrix views over instrumented buffers.

    {!Row} is a conventional row-major submatrix view (buffer + origin +
    stride): a row of a submatrix is contiguous, so interval coalescing
    works per-row and fragments across rows — the [stra] situation.

    {!Z} is a Morton/Z-order view down to [base]-sized row-major leaf
    blocks: every aligned power-of-two quadrant is one contiguous address
    range, so whole sub-products coalesce into single intervals — the
    [straz] situation.  Quadrant [q] (0=NW, 1=NE, 2=SW, 3=SE) of an
    [n]-block at offset [off] lives at [off + q*(n/2)^2]. *)

module Row : sig
  type t = { buf : Membuf.f; r0 : int; c0 : int; stride : int }

  (** [whole buf n] — view an [n*n] row-major matrix occupying the buffer. *)
  val whole : Membuf.f -> int -> t

  (** [quad t n q] — quadrant [q] of the [n×n] view [t]. *)
  val quad : t -> int -> int -> t

  val get : t -> int -> int -> float
  val set : t -> int -> int -> float -> unit

  (** Uninstrumented accessors for setup / verification. *)
  val peek : t -> int -> int -> float

  val poke : t -> int -> int -> float -> unit

  (** Bulk-interval announcements over the [n×n] extent of the view, one
      event per (contiguous) row — the compile-time-coalescing stand-in for
      row-major leaf kernels. *)
  val announce_read : t -> int -> unit

  val announce_write : t -> int -> unit
end

module Z : sig
  type t = { buf : Membuf.f; off : int; n : int; base : int }

  (** [whole buf n ~base] — an [n×n] Morton matrix with [base×base]
      row-major leaves.  [n] and [base] must be powers of two, [base <= n]. *)
  val whole : Membuf.f -> int -> base:int -> t

  (** Quadrant [q] (0..3) of the view; the result is contiguous. *)
  val quad : t -> int -> t

  val get : t -> int -> int -> float
  val set : t -> int -> int -> float -> unit
  val peek : t -> int -> int -> float
  val poke : t -> int -> int -> float -> unit

  (** Bulk-interval read/write announcements for a whole leaf block —
      the compile-time-coalescing stand-in used by leaf kernels. *)
  val announce_read : t -> unit

  val announce_write : t -> unit
end
