(** The benchmark workloads of the paper's evaluation (§IV).

    Each workload builds an {!instance} for a given problem size: [run] is
    the fork-join program (executed under any executor through the {!Fj}
    API), [check] validates the computed result afterwards against an
    uninstrumented reference, and [racy] variants inject a determinacy race
    for detector-validation tests.

    Sizes are scaled down from the paper (the substrate is an instrumented
    simulator, not native code on a 40-core Xeon); EXPERIMENTS.md records
    the mapping.  [size] is the workload's primary dimension (matrix order,
    element count, grid side); [base] the sequential base-case size. *)

type instance = {
  run : unit -> unit;
  check : unit -> bool;  (** call after the executor returns *)
}

type t = {
  name : string;
  description : string;
  default_size : int;
  default_base : int;
  make : size:int -> base:int -> instance;
  racy : (size:int -> base:int -> instance) option;
      (** a buggy variant with a real determinacy race, when provided *)
}

