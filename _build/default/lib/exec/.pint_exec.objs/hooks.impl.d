lib/exec/hooks.ml: Access Aspace Events Sp_order Srec
