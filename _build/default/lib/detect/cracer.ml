type cell = {
  mutable w : Sp_order.strand option;
  mutable lr : Sp_order.strand option;
  mutable rr : Sp_order.strand option;
}

type shard = { lock : Mutex.t; tbl : (int, cell) Hashtbl.t }

let make ?(shards = 64) () =
  let report = Report.create () in
  let diags = ref [] in
  let driver (ctx : Hooks.ctx) =
    let sp = ctx.sp in
    let map = Array.init shards (fun _ -> { lock = Mutex.create (); tbl = Hashtbl.create 1024 }) in
    let accesses = Atomic.make 0 in
    let shard_of addr = map.(addr land (shards - 1)) in
    let with_cell addr f =
      let sh = shard_of addr in
      Mutex.lock sh.lock;
      let cell =
        match Hashtbl.find_opt sh.tbl addr with
        | Some c -> c
        | None ->
            let c = { w = None; lr = None; rr = None } in
            Hashtbl.add sh.tbl addr c;
            c
      in
      f cell;
      Mutex.unlock sh.lock
    in
    let racy prior current = Policies.race sp ~prior ~current in
    let point a = Interval.point a in
    let read1 s a =
      with_cell a (fun c ->
          (match c.w with
          | Some w when racy w s ->
              Report.add report Report.Write_read ~prior:(Sp_order.id w) ~current:(Sp_order.id s)
                (point a)
          | _ -> ());
          (match c.lr with
          | None -> c.lr <- Some s
          | Some r -> (
              match Policies.keep_leftmost sp ~s ~incumbent:r with
              | `Replace -> c.lr <- Some s
              | `Keep -> ()));
          match c.rr with
          | None -> c.rr <- Some s
          | Some r -> (
              match Policies.keep_rightmost sp ~s ~incumbent:r with
              | `Replace -> c.rr <- Some s
              | `Keep -> ()))
    in
    let write1 s a =
      with_cell a (fun c ->
          (match c.w with
          | Some w when racy w s ->
              Report.add report Report.Write_write ~prior:(Sp_order.id w) ~current:(Sp_order.id s)
                (point a)
          | _ -> ());
          (match c.lr with
          | Some r when racy r s ->
              Report.add report Report.Read_write ~prior:(Sp_order.id r) ~current:(Sp_order.id s)
                (point a)
          | _ -> ());
          (match c.rr with
          | Some r when racy r s ->
              Report.add report Report.Read_write ~prior:(Sp_order.id r) ~current:(Sp_order.id s)
                (point a)
          | _ -> ());
          c.w <- Some s)
    in
    let clear_range base len =
      for a = base to base + len - 1 do
        let sh = shard_of a in
        Mutex.lock sh.lock;
        Hashtbl.remove sh.tbl a;
        Mutex.unlock sh.lock
      done
    in
    let sink ~wid =
      {
        Access.on_read =
          (fun ~addr ~len ->
            let s = (ctx.current ~wid).Srec.sp in
            ignore (Atomic.fetch_and_add accesses len);
            for a = addr to addr + len - 1 do
              read1 s a
            done);
        on_write =
          (fun ~addr ~len ->
            let s = (ctx.current ~wid).Srec.sp in
            ignore (Atomic.fetch_and_add accesses len);
            for a = addr to addr + len - 1 do
              write1 s a
            done);
        on_free =
          (fun ~base ~len ->
            clear_range base len;
            Aspace.heap_free ctx.aspace ~base ~len);
        on_compute = (fun ~amount:_ -> ());
      }
    in
    {
      Hooks.sink;
      on_start = (fun ~wid:_ _ _ -> ());
      on_finish =
        (fun ~wid:_ (u : Srec.t) _kind ->
          (* stack-frame ranges popped during this strand die now *)
          List.iter (fun (b, l) -> clear_range b l) u.clears;
          u.clears <- []);
      on_done = (fun () -> diags := [ ("accesses", float_of_int (Atomic.get accesses)) ]);
    }
  in
  {
    Detector.name = "cracer";
    driver;
    report;
    drain = (fun () -> ());
    diagnostics = (fun () -> !diags);
  }
