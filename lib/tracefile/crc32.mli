(** CRC-32 (IEEE 802.3 polynomial, the zlib/PNG variant) for trace-file
    integrity checks.  Pure OCaml, table-driven. *)

(** [digest_sub s ~pos ~len] — CRC-32 of the substring. *)
val digest_sub : string -> pos:int -> len:int -> int32

(** [digest s] = [digest_sub s ~pos:0 ~len:(String.length s)]. *)
val digest : string -> int32
