(* chol — tiled right-looking Cholesky factorization (lower triangular).

   Per step k: factor the diagonal tile, triangular-solve the tiles below
   it in parallel, sync, then update the trailing submatrix with one
   parallel task per tile, sync.  Tile kernels announce their rows as bulk
   intervals.

   The racy variant omits the sync between the solve and update phases, so
   updates read panel tiles that the solves are still writing. *)

module R = Matview.Row

let tile (a : R.t) b ti tj = { a with R.r0 = a.R.r0 + (ti * b); c0 = a.R.c0 + (tj * b) }

(* in-place Cholesky of a b×b tile (lower triangle; upper left untouched) *)
let potrf (t : R.t) b =
  R.announce_read t b;
  R.announce_write t b;
  Access.emit_compute ~amount:(b * b * b / 3);
  for c = 0 to b - 1 do
    let s = ref (R.peek t c c) in
    for k = 0 to c - 1 do
      s := !s -. (R.peek t c k *. R.peek t c k)
    done;
    let d = sqrt !s in
    R.poke t c c d;
    for r = c + 1 to b - 1 do
      let s = ref (R.peek t r c) in
      for k = 0 to c - 1 do
        s := !s -. (R.peek t r k *. R.peek t c k)
      done;
      R.poke t r c (!s /. d)
    done
  done

(* X := X · L^{-T} where L is the (lower) diagonal tile *)
let trsm (l : R.t) (x : R.t) b =
  R.announce_read l b;
  R.announce_read x b;
  R.announce_write x b;
  Access.emit_compute ~amount:(b * b * b);
  for r = 0 to b - 1 do
    for c = 0 to b - 1 do
      let s = ref (R.peek x r c) in
      for k = 0 to c - 1 do
        s := !s -. (R.peek x r k *. R.peek l c k)
      done;
      R.poke x r c (!s /. R.peek l c c)
    done
  done

(* T := T − X · Yᵀ *)
let gemm_update (t : R.t) (x : R.t) (y : R.t) b =
  R.announce_read x b;
  R.announce_read y b;
  R.announce_read t b;
  R.announce_write t b;
  Access.emit_compute ~amount:(2 * b * b * b);
  for i = 0 to b - 1 do
    for j = 0 to b - 1 do
      let s = ref (R.peek t i j) in
      for k = 0 to b - 1 do
        s := !s -. (R.peek x i k *. R.peek y j k)
      done;
      R.poke t i j !s
    done
  done

let chol ~sync_phases (a : R.t) n b =
  let nt = n / b in
  for k = 0 to nt - 1 do
    potrf (tile a b k k) b;
    Fj.scope (fun () ->
        for i = k + 1 to nt - 1 do
          Fj.spawn (fun () -> trsm (tile a b k k) (tile a b i k) b)
        done;
        if sync_phases then Fj.sync ();
        for i = k + 1 to nt - 1 do
          for j = k + 1 to i do
            Fj.spawn (fun () -> gemm_update (tile a b i j) (tile a b i k) (tile a b j k) b)
          done
        done;
        Fj.sync ())
  done

let input_entry n i j = (if i = j then float_of_int n else 0.) +. (1. /. (1. +. Float.abs (float_of_int (i - j))))

let make_gen ~sync_phases ~size ~base =
  let n = size and b = base in
  if n mod b <> 0 then invalid_arg "chol: base must divide size";
  let state = ref None in
  let run () =
    let buf = Fj.alloc_f (n * n) in
    let a = R.whole buf n in
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        R.poke a i j (input_entry n i j)
      done
    done;
    state := Some a;
    chol ~sync_phases a n b
  in
  let check () =
    match !state with
    | None -> false
    | Some l ->
        (* (L·Lᵀ)[i][j] must reproduce the input (lower triangle) *)
        let rng = Rng.create 4004 in
        let ok = ref true in
        for _ = 1 to 64 do
          let i = Rng.int rng n in
          let j = Rng.int rng (i + 1) in
          let s = ref 0. in
          for k = 0 to j do
            s := !s +. (R.peek l i k *. R.peek l j k)
          done;
          if Float.abs (!s -. input_entry n i j) > 1e-6 *. float_of_int n then ok := false
        done;
        !ok
  in
  { Workload.run; check }

let workload =
  {
      Workload.name = "chol";
      description = "tiled right-looking Cholesky factorization";
      default_size = 256;
      default_base = 32;
      make = (fun ~size ~base -> make_gen ~sync_phases:true ~size ~base);
      racy = Some (fun ~size ~base -> make_gen ~sync_phases:false ~size ~base);
    }
