(* Tiny string helpers (the [str] library is deliberately not linked). *)

(* [split_on_first s ~sep] — [Some (before, after)] around the first
   occurrence of [sep], [None] when absent. *)
let split_on_first s ~sep =
  let n = String.length s and m = String.length sep in
  let rec find i =
    if i + m > n then None
    else if String.sub s i m = sep then Some i
    else find (i + 1)
  in
  match find 0 with
  | None -> None
  | Some i -> Some (String.sub s 0 i, String.sub s (i + m) (n - i - m))

(* [split_on_last s ~sep] — [Some (before, after)] around the last
   occurrence of [sep], [None] when absent. *)
let split_on_last s ~sep =
  let n = String.length s and m = String.length sep in
  let rec find i best =
    if i + m > n then best
    else if String.sub s i m = sep then find (i + 1) (Some i)
    else find (i + 1) best
  in
  match find 0 None with
  | None -> None
  | Some i -> Some (String.sub s 0 i, String.sub s (i + m) (n - i - m))

let starts_with ~prefix s =
  String.length s >= String.length prefix && String.sub s 0 (String.length prefix) = prefix
