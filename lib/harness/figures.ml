type fig1_row = {
  f1_name : string;
  base1 : float;
  stint1 : float;
  pint1 : float;
  cracer1 : float;
  base_p : float;
  pint_p : float;
  cracer_p : float;
}

let vsec = Systems.vsec

let default_sizes (w : Workload.t) = (w.default_size, w.default_base)

let run ?model ~workload ~size ~base ~workers system =
  let m = Systems.run ?model ~workload ~size ~base ~workers system in
  if not m.Systems.checked then
    failwith (Printf.sprintf "harness: %s result check failed" workload.Workload.name);
  if m.Systems.races <> 0 then
    failwith (Printf.sprintf "harness: %s unexpectedly reported races" workload.Workload.name);
  m

let fig1 ?model ?(cores = 20) () =
  let rows =
    List.map
      (fun (w : Workload.t) ->
        let size, base = default_sizes w in
        let go sys workers = (run ?model ~workload:w ~size ~base ~workers sys).Systems.time in
        {
          f1_name = w.name;
          base1 = go Systems.Base 1;
          stint1 = go Systems.Stint_sys 1;
          pint1 = go Systems.Pint_sys 1;
          cracer1 = go Systems.Cracer_sys 1;
          base_p = go Systems.Base cores;
          pint_p = go Systems.Pint_sys (cores - Cost_model.treap_workers ~shards:1);
          cracer_p = go Systems.Cracer_sys cores;
        })
      (Registry.all ())
  in
  let header =
    [
      "bench";
      "base(1)";
      "STINT(1)";
      "PINT(1)";
      "C-RACER(1)";
      Printf.sprintf "base(%d)" cores;
      Printf.sprintf "PINT(%d)" cores;
      Printf.sprintf "C-RACER(%d)" cores;
    ]
  in
  let body =
    List.map
      (fun r ->
        [
          r.f1_name;
          Table.t2 (vsec r.base1);
          Printf.sprintf "%s %s" (Table.t2 (vsec r.stint1)) (Table.bracket (r.stint1 /. r.base1));
          Printf.sprintf "%s %s" (Table.t2 (vsec r.pint1)) (Table.bracket (r.pint1 /. r.base1));
          Printf.sprintf "%s %s" (Table.t2 (vsec r.cracer1)) (Table.bracket (r.cracer1 /. r.base1));
          Table.t2 (vsec r.base_p);
          Printf.sprintf "%s %s" (Table.t2 (vsec r.pint_p)) (Table.x2p (r.pint1 /. r.pint_p));
          Printf.sprintf "%s %s" (Table.t2 (vsec r.cracer_p)) (Table.x2p (r.cracer1 /. r.cracer_p));
        ])
      rows
  in
  let txt =
    Table.render
      ~title:
        (Printf.sprintf
           "Figure 1: running times (virtual seconds). Left: one core, [overhead vs baseline]. \
            Right: %d cores, (scalability vs own 1-core time)."
           cores)
      ~header body
  in
  (rows, txt)

type fig2_row = {
  f2_name : string;
  par_overhead : float;
  core_work : float;
  writer_work : float;
  rreader_work : float;
  lreader_work : float;
  par_core : float;
  par_total : float;
}

let fig2 ?model ?(cores = 20) () =
  let rows =
    List.map
      (fun (w : Workload.t) ->
        let size, base = default_sizes w in
        let stint1 = run ?model ~workload:w ~size ~base ~workers:1 Systems.Stint_sys in
        let pint1 = run ?model ~workload:w ~size ~base ~workers:1 Systems.Pint_sys in
        let pint_p = run ?model ~workload:w ~size ~base ~workers:(cores - Cost_model.treap_workers ~shards:1) Systems.Pint_sys in
        {
          f2_name = w.name;
          par_overhead = pint1.Systems.time /. stint1.Systems.time;
          core_work = pint1.Systems.core_time;
          writer_work = pint1.Systems.writer_time;
          rreader_work = pint1.Systems.rreader_time;
          lreader_work = pint1.Systems.lreader_time;
          par_core = pint_p.Systems.core_time;
          par_total = pint_p.Systems.time;
        })
      (Registry.all ())
  in
  let header =
    [ "bench"; "par.ovh"; "core"; "writer"; "rreader"; "lreader"; "par.core"; "par.total" ]
  in
  let body =
    List.map
      (fun r ->
        [
          r.f2_name;
          Printf.sprintf "%.2f" r.par_overhead;
          Table.t2 (vsec r.core_work);
          Table.t2 (vsec r.writer_work);
          Table.t2 (vsec r.rreader_work);
          Table.t2 (vsec r.lreader_work);
          Table.t2 (vsec r.par_core);
          Table.t2 (vsec r.par_total);
        ])
      rows
  in
  let txt =
    Table.render
      ~title:
        (Printf.sprintf
           "Figure 2: PINT parallelization overhead (PINT1/STINT1), one-core work breakdown, and \
            %d-core core-vs-total times (virtual seconds, %d core workers)."
           cores (cores - Cost_model.treap_workers ~shards:1))
      ~header body
  in
  (rows, txt)

type fig3_cell = { total_t : float; core_t : float }

let fig3_benches = [ "heat"; "mmul"; "sort"; "stra" ]

let fig3 ?model ?(workers = [ 1; 4; 8; 16; 24; 32 ]) () =
  let rows =
    List.map
      (fun name ->
        let w = Registry.find name in
        let size, base = default_sizes w in
        let cells =
          List.map
            (fun p ->
              let m = run ?model ~workload:w ~size ~base ~workers:p Systems.Pint_sys in
              (p, { total_t = m.Systems.time; core_t = m.Systems.core_time }))
            workers
        in
        (name, cells))
      fig3_benches
  in
  let header = "bench" :: List.map (fun p -> Printf.sprintf "%d cw" p) workers in
  let body =
    List.map
      (fun (name, cells) ->
        name
        :: List.map
             (fun (_, c) ->
               if c.total_t > c.core_t *. 1.05 then
                 Printf.sprintf "%s (%s)" (Table.t2 (vsec c.total_t)) (Table.t2 (vsec c.core_t))
               else Table.t2 (vsec c.total_t))
             cells)
      rows
  in
  let txt =
    Table.render
      ~title:
        "Figure 3: PINT strong scaling over core-worker counts (virtual seconds; a \
         parenthesized value is the core-component time where the treap component dominates)."
      ~header body
  in
  (rows, txt)

type fig4_cell = { f4_workers : int; f4_size : int; f4_base_t : float; f4_pint : fig3_cell }

(* weak-scaling size ladders per the paper: heat/sort double the problem,
   mmul's dimension grows ~1.5x, stra's doubles (capped to keep the largest
   instance tractable) *)
let fig4_plan =
  [
    ("heat", [ (1, 64); (2, 91); (4, 128); (8, 181); (16, 256); (32, 362) ]);
    ("mmul", [ (1, 64); (2, 96); (4, 144); (8, 224); (16, 336); (32, 512) ]);
    ("sort", [ (1, 4096); (2, 8192); (4, 16384); (8, 32768); (16, 65536); (32, 131072) ]);
    ("stra", [ (1, 16); (2, 32); (4, 64); (8, 96); (16, 128); (32, 192) ]);
  ]

let fig4_base name size =
  match name with
  | "mmul" -> max 16 (size / 8)
  | "stra" -> max 16 (size / 4)
  | _ -> (Registry.find name).Workload.default_base

let fig4 ?model () =
  let rows =
    List.map
      (fun (name, ladder) ->
        let w = Registry.find name in
        let cells =
          List.map
            (fun (p, size) ->
              let base = fig4_base name size in
              let b = run ?model ~workload:w ~size ~base ~workers:p Systems.Base in
              let m = run ?model ~workload:w ~size ~base ~workers:p Systems.Pint_sys in
              {
                f4_workers = p;
                f4_size = size;
                f4_base_t = b.Systems.time;
                f4_pint = { total_t = m.Systems.time; core_t = m.Systems.core_time };
              })
            ladder
        in
        (name, cells))
      fig4_plan
  in
  let header =
    "bench" :: "row"
    :: List.map (fun (p, _) -> Printf.sprintf "%d cw" p) (List.assoc "heat" fig4_plan)
  in
  let body =
    List.concat_map
      (fun (name, cells) ->
        [
          (name :: "baseline" :: List.map (fun c -> Table.t2 (vsec c.f4_base_t)) cells);
          ( ""
            :: "PINT"
            :: List.map
                 (fun c ->
                   if c.f4_pint.total_t > c.f4_pint.core_t *. 1.05 then
                     Printf.sprintf "%s (%s)"
                       (Table.t2 (vsec c.f4_pint.total_t))
                       (Table.t2 (vsec c.f4_pint.core_t))
                   else Table.t2 (vsec c.f4_pint.total_t))
                 cells );
          ( ""
            :: "overhead"
            :: List.map (fun c -> Table.x1 (c.f4_pint.total_t /. c.f4_base_t)) cells );
        ])
      rows
  in
  let txt =
    Table.render
      ~title:
        "Figure 4: weak scaling — the baseline runs on as many cores as PINT has core workers; \
         problem sizes grow with the worker count (virtual seconds; parenthesized = core time \
         when the treap component dominates)."
      ~header body
  in
  (rows, txt)
