(* A custom workload (1-D wave equation, leapfrog scheme) checked by all
   three detectors, demonstrating that they agree and how their access
   histories differ in size: the per-access shadow map holds one cell per
   word, the interval treaps a handful of coalesced ranges.

     dune exec examples/stencil_pipeline.exe *)

let n = 1024
let steps = 6
let chunk = 64

(* u_next = 2 u - u_prev + c (u[i-1] - 2 u[i] + u[i+1]), banded in parallel *)
let wave ~u_prev ~u ~u_next lo hi =
  Access.emit_read ~addr:(Membuf.base_f u + max 0 (lo - 1)) ~len:(min n (hi + 1) - max 0 (lo - 1));
  Access.emit_read ~addr:(Membuf.base_f u_prev + lo) ~len:(hi - lo);
  Access.emit_write ~addr:(Membuf.base_f u_next + lo) ~len:(hi - lo);
  Access.emit_compute ~amount:(6 * (hi - lo));
  for i = lo to hi - 1 do
    let c = 0.25 in
    let um = if i > 0 then Membuf.peek_f u (i - 1) else 0.0 in
    let up = if i < n - 1 then Membuf.peek_f u (i + 1) else 0.0 in
    let v = Membuf.peek_f u i in
    Membuf.poke_f u_next i
      ((2.0 *. v) -. Membuf.peek_f u_prev i +. (c *. (um -. (2.0 *. v) +. up)))
  done

let program () =
  let a = Fj.alloc_f n and b = Fj.alloc_f n and c = Fj.alloc_f n in
  Membuf.poke_f b (n / 2) 1.0;
  let bufs = ref (a, b, c) in
  for _ = 1 to steps do
    let u_prev, u, u_next = !bufs in
    Fj.scope (fun () ->
        let rec split lo hi =
          if hi - lo <= chunk then wave ~u_prev ~u ~u_next lo hi
          else begin
            let mid = (lo + hi) / 2 in
            Fj.spawn (fun () -> split lo mid);
            split mid hi
          end
        in
        split 0 n;
        Fj.sync ());
    bufs := (u, u_next, u_prev)
  done

let () =
  (* STINT (serial) *)
  let stint = Stint.make () in
  let _ = Seq_exec.run ~driver:stint.Detector.driver program in
  (* C-RACER on the simulator *)
  let cracer = Cracer.make () in
  let _ =
    Sim_exec.run
      ~config:{ Sim_exec.default_config with n_workers = 8 }
      ~driver:cracer.Detector.driver program
  in
  (* PINT on the simulator *)
  let p = Pint_detector.make () in
  let pint = Pint_detector.detector p in
  let _ =
    Sim_exec.run
      ~config:{ Sim_exec.default_config with n_workers = 8; stages = Pint_detector.stages p }
      ~driver:pint.Detector.driver program
  in
  List.iter
    (fun (d : Detector.t) ->
      Printf.printf "%-8s races=%d" d.Detector.name (Detector.race_count d);
      List.iter
        (fun (k, v) ->
          if List.mem k [ "intervals"; "accesses"; "writer_size"; "collected" ] then
            Printf.printf "  %s=%.0f" k v)
        (d.Detector.diagnostics ());
      print_newline ())
    [ stint; cracer; pint ];
  if List.for_all (fun d -> Detector.race_count d = 0) [ stint; cracer; pint ] then
    print_endline "all three detectors agree: the wave pipeline is race-free."
  else exit 1
