(* Exponential idle backoff shared by every spinning loop in the system
   (stage drive loops, micropool domains, idle core workers, lane
   producers waiting out backpressure).

   Rounds 0..7 spin-wait with a doubling number of [Domain.cpu_relax]
   pauses — cheap, keeps the latency of an imminent wakeup minimal.  From
   [yield_round] on, the waiter parks in a short [Unix.sleepf] instead:
   past that point the waited-for event is clearly not imminent, and on an
   oversubscribed host (more domains than cores — the common case once
   shard micropools multiply the domain count) burning a whole scheduler
   timeslice in pause instructions starves the very domain being waited
   on.  The sleep yields the core to it. *)

let max_spins = 256
let yield_round = 10
let park_s = 50e-6

let relax round =
  if round >= yield_round then Unix.sleepf park_s
  else begin
    let spins = if round >= 8 then max_spins else 1 lsl round in
    for _ = 1 to spins do
      Domain.cpu_relax ()
    done
  end
