(* pint_run — run one benchmark under a chosen executor and race detector.

   Examples:
     pint_run --workload sort --detector pint --exec sim --workers 8
     pint_run --workload heat --detector stint --exec seq --racy
     pint_run --workload mmul --detector cracer --exec par --workers 4
     pint_run --workload heat --detector none --exec seq --racy --capture heat.trace

   Exit status: 0 on a clean run, 1 when the outcome contradicts the
   variant (races on a non---racy run, or no races on a --racy run), 2 on
   bad usage. *)

open Cmdliner

type exec_kind = Seq | Sim | Par

let exec_name = function Seq -> "seq" | Sim -> "sim" | Par -> "par"

let run_one workload detector exec workers domains shards size base racy seed max_report capture
    profile =
  let w =
    try Registry.find workload
    with Not_found ->
      Printf.eprintf "unknown workload %S; available: %s\n" workload
        (String.concat ", " (List.map (fun w -> w.Workload.name) (Registry.all ())));
      exit 2
  in
  let size = Option.value size ~default:w.Workload.default_size in
  let base = Option.value base ~default:w.Workload.default_base in
  let inst =
    if racy then
      match w.Workload.racy with
      | Some f -> f ~size ~base
      | None ->
          Printf.eprintf "workload %s has no racy variant\n" workload;
          exit 2
    else w.Workload.make ~size ~base
  in
  let obs =
    match profile with
    | None -> Obs.disabled
    | Some _ ->
        (* sim runs profile on the virtual timeline (deterministic traces);
           real executors use wall-time microseconds *)
        let clock = match exec with Sim -> Clock.manual () | Seq | Par -> Clock.monotonic in
        Obs.create ~clock ()
  in
  (* --domains is the real-core budget of a par run: pipeline micropools
     are taken off the top (shards means cores), whatever remains feeds
     the core workers unless --workers pins them explicitly *)
  let domains = Option.value domains ~default:(Domain.recommended_domain_count ()) in
  let bp_rounds = match exec with Par -> Pint_detector.recommended_bp_rounds | Seq | Sim -> 0 in
  let det, stages =
    match Systems.make_detector ~shards ~obs ~bp_rounds detector with
    | Some ds -> ds
    | None ->
        Printf.eprintf "unknown detector %S (%s)\n" detector
          (String.concat "|" Systems.detector_names);
        exit 2
  in
  let driver =
    match capture with
    | None -> det.Detector.driver
    | Some path ->
        let meta =
          [
            ("workload", workload);
            ("size", string_of_int size);
            ("base", string_of_int base);
            ("racy", string_of_bool racy);
            ("detector", detector);
            ("exec", exec_name exec);
            ("seed", string_of_int seed);
          ]
        in
        Tracefile.capture ~meta ~path det.Detector.driver
  in
  (* outermost wrapper: the finish timestamp must be taken before any inner
     hook (capture serialization included) runs *)
  let driver = Obs_hooks.instrument obs driver in
  Printf.printf "workload=%s size=%d base=%d detector=%s shards=%d racy=%b\n%!" workload size base
    detector shards racy;
  (match exec with
  | Seq ->
      let r = Seq_exec.run ~driver inst.Workload.run in
      Printf.printf "executor=seq strands=%d spawns=%d syncs=%d\n" r.Seq_exec.n_strands
        r.Seq_exec.n_spawns r.Seq_exec.n_syncs
  | Sim ->
      let config =
        { Sim_exec.default_config with n_workers = Option.value workers ~default:4; seed; stages;
          obs_clock = Obs.clock obs }
      in
      let r = Sim_exec.run ~config ~driver inst.Workload.run in
      Printf.printf "executor=sim workers=%d strands=%d steals=%d makespan=%d total=%d\n"
        config.Sim_exec.n_workers r.Sim_exec.n_strands r.Sim_exec.n_steals r.Sim_exec.makespan
        r.Sim_exec.total
  | Par ->
      let pools = Systems.micropools stages in
      let n_workers =
        match workers with
        | Some p -> p
        | None -> max 1 (domains - List.length pools)
      in
      let config = { Par_exec.n_workers; seed; pools; obs } in
      let r = Par_exec.run ~config ~driver inst.Workload.run in
      Printf.printf
        "executor=par workers=%d pools=%d domains=%d strands=%d steals=%d steal_cas_failures=%d \
         parks=%d elapsed=%.3fs\n"
        n_workers (List.length pools) r.Par_exec.n_domains r.Par_exec.n_strands r.Par_exec.n_steals
        r.Par_exec.n_steal_cas_failures r.Par_exec.n_parks r.Par_exec.elapsed_s);
  (match capture with Some path -> Printf.printf "trace captured to %s\n" path | None -> ());
  let races = Detector.races det in
  (match profile with
  | None -> ()
  | Some path ->
      let meta =
        [
          ("workload", workload);
          ("detector", detector);
          ("exec", exec_name exec);
          ( "workers",
            match workers with Some p -> string_of_int p | None -> "auto" );
          ("domains", string_of_int domains);
          ("seed", string_of_int seed);
        ]
      in
      Obs.write_chrome ~meta obs ~path;
      Printf.printf "profile written to %s (%d event(s), %d dropped)\n" path (Obs.events obs)
        (Obs.dropped obs);
      List.iter (fun (k, v) -> Printf.printf "  %s = %g\n" k v) (Obs.summary obs));
  Printf.printf "result check: %s\n" (if inst.Workload.check () then "PASS" else "FAIL (racy run?)");
  Printf.printf "races: %d distinct pair(s)\n" (List.length races);
  List.iteri
    (fun i r ->
      if i < max_report then Format.printf "  %a@." Report.pp_race r
      else if i = max_report then
        Printf.printf "  ... (%d more)\n" (List.length races - max_report))
    races;
  (* the exit code carries the detection signal: races on a supposedly
     race-free run (or a racy variant the detector missed) fail the run *)
  if racy && races = [] then exit 1;
  if (not racy) && races <> [] then exit 1

let workload_arg =
  Arg.(value & opt string "sort" & info [ "w"; "workload" ] ~doc:"Benchmark to run.")

let detector_arg =
  Arg.(value & opt string "pint" & info [ "d"; "detector" ] ~doc:"none|stint|cracer|pint.")

let exec_conv = Arg.enum [ ("seq", Seq); ("sim", Sim); ("par", Par) ]
let exec_arg = Arg.(value & opt exec_conv Sim & info [ "e"; "exec" ] ~doc:"Executor: seq, sim or par.")
let workers_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "p"; "workers" ]
        ~doc:
          "Core workers. Default: 4 under sim; under par, whatever \\$(b,--domains) leaves after \
           the pipeline micropools (at least 1).")

let domains_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "domains" ]
        ~doc:
          "Real-core budget for --exec par: core workers + one micropool domain per shard must \
           fit in this many domains. Defaults to the machine's recommended domain count.")

let shards_arg =
  Arg.(
    value
    & opt int 1
    & info [ "shards" ]
        ~doc:"Address-range shards for pint: each shard runs its own writer/lreader/rreader \
              treap triple on its own AHQ lane. 1 is the paper's topology.")
let size_arg = Arg.(value & opt (some int) None & info [ "n"; "size" ] ~doc:"Problem size.")
let base_arg = Arg.(value & opt (some int) None & info [ "b"; "base" ] ~doc:"Base-case size.")
let racy_arg = Arg.(value & flag & info [ "racy" ] ~doc:"Run the race-injected variant.")
let seed_arg = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Scheduler seed.")
let max_report_arg = Arg.(value & opt int 10 & info [ "max-report" ] ~doc:"Races to print.")

let capture_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "capture" ] ~docv:"FILE" ~doc:"Record the run to a trace file (see pint_replay).")

let profile_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "profile" ] ~docv:"FILE"
        ~doc:
          "Trace the pipeline and write a Chrome trace-event JSON (open in Perfetto or \
           chrome://tracing). Under --exec sim the trace uses virtual time and is deterministic \
           for a fixed seed.")

let () =
  let term =
    Term.(
      const run_one $ workload_arg $ detector_arg $ exec_arg $ workers_arg $ domains_arg
      $ shards_arg $ size_arg $ base_arg $ racy_arg $ seed_arg $ max_report_arg $ capture_arg
      $ profile_arg)
  in
  exit (Cmd.eval (Cmd.v (Cmd.info "pint_run" ~doc:"Run a benchmark under a race detector") term))
