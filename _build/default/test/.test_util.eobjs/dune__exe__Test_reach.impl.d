test/test_reach.ml: Alcotest Array Hashtbl List Option QCheck QCheck_alcotest Rng Sp_order
