(* Address-range sharding router for the access history.

   Shard ownership is by aligned block: block [b] belongs to shard
   [b mod shards].  Race checks are per-address, so splitting every
   interval batch along block boundaries and routing each piece to its
   owning shard preserves the race set exactly — each address is seen by
   exactly one {writer, lreader, rreader} treap triple, every treap stays
   sequential, and no synchronization between shards is ever needed.
   [shards = 1] routes everything to lane 0 unsplit, which is the paper's
   configuration.

   The block size trades split frequency against balance: bigger blocks
   split fewer coalesced intervals, smaller blocks interleave a single
   allocation's addresses across more shards.  256 words keeps splits
   rare (coalesced intervals are usually one stencil row / merge run of a
   few dozen words, so most fit inside one block) while still spreading a
   few-thousand-word working set — the evaluation workloads' scale —
   across 8 shards.

   The router itself is a fixed array of AHQ lanes plus producer-private
   backpressure counters; all mutation is on the single collector stage
   (the lanes' own single-producer discipline is documented in Ahq). *)

let shard_block = 1024

let owner ?(block = shard_block) ~shards addr = addr / block mod shards

let iter_subranges ?(block = shard_block) ~shards ~shard (iv : Interval.t) f =
  if shards = 1 then f iv
  else begin
    let rec go lo =
      if lo <= iv.Interval.hi then begin
        let bstart = lo / block * block in
        let hi = min iv.Interval.hi (bstart + block - 1) in
        if lo / block mod shards = shard then f (Interval.make lo hi);
        go (hi + 1)
      end
    in
    go iv.Interval.lo
  end

type 'a t = {
  lanes : 'a Ahq.t array;
  (* Per-lane all-or-nothing rejections — how often THIS lane was the one
     without room when the collector tried to commit a strand to every
     lane.  Collector-owned (single producer). *)
  rejects : int array;
  (* Backpressure policy: how many backoff rounds the producer rides out a
     saturated lane before giving up on the commit.  0 — the default, and
     mandatory under any single-threaded driver — rejects immediately: with
     nobody running concurrently there is no consumer to wait for, and a
     spin would either hang (round-robin drivers interleave the consumers
     anyway) or waste the round.  Real-domain runs set this up so that a
     momentarily-behind shard pool stalls the collector briefly instead of
     forcing a reject/retry cycle through the strand scheduler.
     Collector-owned, set at wiring time. *)
  mutable bp_rounds : int;
  (* Producer backoff rounds actually taken waiting out a full lane.
     Collector-owned. *)
  mutable bp_waits : int;
}

let create ?capacity ~shards ~readers_of_lane () =
  if shards < 1 then invalid_arg "Lanes.create: shards must be >= 1";
  {
    lanes = Array.init shards (fun k -> Ahq.create ?capacity ~readers:(readers_of_lane k) ());
    rejects = Array.make shards 0;
    bp_rounds = 0;
    bp_waits = 0;
  }

let shards t = Array.length t.lanes
let lane t k = t.lanes.(k)

let set_backpressure t ~rounds =
  if rounds < 0 then invalid_arg "Lanes.set_backpressure: rounds must be >= 0";
  t.bp_rounds <- rounds

let backpressure_waits t = t.bp_waits

(* All-or-nothing enqueue: probe every lane for room first, then build and
   enqueue the per-lane payloads.  Sound even with consumers advancing
   cursors concurrently on other domains, because the collector is the only
   producer on every lane: consumers only CREATE room (recycling consumed
   slots), never take it away, so room observed by the probe cannot shrink
   before the enqueues commit.  The converse race — a probe that finds a
   lane full just before a concurrent consumer frees it — is what the
   backpressure loop absorbs: ride the {!Backoff} ladder up to [bp_rounds]
   re-probes before declaring the commit rejected.  [f k] is only evaluated
   once all lanes have room, so payload construction (the interval split)
   is never wasted work on a stall. *)
let all_have_room t =
  let n = Array.length t.lanes in
  let rec go k = k >= n || (Ahq.has_room t.lanes.(k) && go (k + 1)) in
  go 0

(* commit rejected: account every still-roomless lane, exactly as the
   policy-free path always did *)
let note_rejects t =
  for k = 0 to Array.length t.lanes - 1 do
    if not (Ahq.has_room t.lanes.(k)) then t.rejects.(k) <- t.rejects.(k) + 1
  done

let rec wait_for_room t round =
  if all_have_room t then true
  else if round >= t.bp_rounds then begin
    note_rejects t;
    false
  end
  else begin
    t.bp_waits <- t.bp_waits + 1;
    Backoff.relax round;
    wait_for_room t (round + 1)
  end

let[@pint.hot] enqueue_each t f =
  wait_for_room t 0
  && begin
       for k = 0 to Array.length t.lanes - 1 do
         if not (Ahq.try_enqueue t.lanes.(k) (f k)) then
           (* unreachable by the single-producer argument above *)
           failwith "Lanes.enqueue_each: lane lost room after probe"
       done;
       true
     end

let rejects t k = t.rejects.(k)
let total_rejects t = Array.fold_left ( + ) 0 t.rejects
let drained t = Array.for_all Ahq.drained t.lanes
let total_enqueued t = Array.fold_left (fun acc l -> acc + Ahq.enqueued l) 0 t.lanes
let total_min_rescans t = Array.fold_left (fun acc l -> acc + Ahq.min_rescans l) 0 t.lanes
let max_peak_occupancy t = Array.fold_left (fun acc l -> max acc (Ahq.peak_occupancy l)) 0 t.lanes
