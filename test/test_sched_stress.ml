(* Schedule-exploration stress tests for the three transfer structures of
   the pipeline: the broadcast queue (Ahq), the lock-free work-stealing
   deque (Cldeque) and the all-or-nothing multi-lane router (Lanes).

   Two layers per structure:

   - Randomized seeded interleavings, single-threaded: every operation is
     checked against a reference model step by step, so any deviation from
     FIFO (queue), double-ended LIFO/FIFO (deque) or all-or-nothing commit
     (lanes) semantics is caught at the exact operation that broke it.
     Single-threaded driving makes the expected result exact — this
     explores operation orders, not memory orders.  Each structure gets a
     few deep schedules (4000 ops) plus a 10,000-seed sweep of short
     schedules, so the space of operation orders is covered both long and
     wide.

   - A real-domains smoke test: one producer and concurrent consumers on
     actual domains, asserting the linearizable outcome (per-reader FIFO
     for the queue; exactly-once transfer for the deque; per-lane FIFO of
     whole commits for the router), which exercises the actual
     synchronization under true parallelism. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* Srec values to move through the queue: uid is the identity we track. *)
let make_srecs n =
  let _sp, root = Sp_order.create () in
  Array.init n (fun uid -> Srec.make ~uid root)

(* ------------------------------------------------------- Ahq vs model *)

(* Reference model: the queue is broadcast SPMC — a single append-only
   sequence with one cursor per reader.  [try_enqueue] must succeed iff
   the ring has room against the *minimum* cursor. *)
let ahq_interleaving ~seed () =
  let rng = Random.State.make [| seed |] in
  let cap = 8 and n_readers = 2 and steps = 4000 in
  let q = Ahq.create ~capacity:cap ~readers:n_readers () in
  let pool = make_srecs steps in
  let pushed = ref 0 in
  let cursors = Array.make n_readers 0 in
  let model_min () = Array.fold_left min max_int cursors in
  let buf = Array.make 3 pool.(0) in
  for step = 1 to steps do
    match Random.State.int rng 4 with
    | 0 ->
        (* enqueue: exact admission against the min cursor *)
        let s = pool.(!pushed mod steps) in
        let expect_ok = !pushed - model_min () < cap in
        let ok = Ahq.try_enqueue q s in
        check_bool (Printf.sprintf "seed %d step %d: admission" seed step) expect_ok ok;
        if ok then incr pushed
    | 1 ->
        (* peek: the cursor-th element of the pushed sequence, or None *)
        let i = Random.State.int rng n_readers in
        let expect = if cursors.(i) < !pushed then Some (cursors.(i) mod steps) else None in
        let got = Option.map (fun (s : Srec.t) -> s.Srec.uid) (Ahq.peek q i) in
        (match (expect, got) with
        | None, None -> ()
        | Some e, Some g when e = g -> ()
        | _ -> Alcotest.failf "seed %d step %d: reader %d peek diverged from model" seed step i)
    | 2 ->
        (* batched peek through the reusable buffer *)
        let i = Random.State.int rng n_readers in
        let n = Ahq.peek_batch_into q i buf in
        check_int
          (Printf.sprintf "seed %d step %d: batch size" seed step)
          (min (!pushed - cursors.(i)) (Array.length buf))
          n;
        for k = 0 to n - 1 do
          check_int
            (Printf.sprintf "seed %d step %d: batch slot %d" seed step k)
            ((cursors.(i) + k) mod steps)
            buf.(k).Srec.uid
        done
    | _ ->
        (* advance: consume 1..3 pending records *)
        let i = Random.State.int rng n_readers in
        let pending = !pushed - cursors.(i) in
        if pending > 0 then begin
          let n = 1 + Random.State.int rng (min pending 3) in
          Ahq.advance_n q i n;
          cursors.(i) <- cursors.(i) + n;
          check_int
            (Printf.sprintf "seed %d step %d: processed" seed step)
            cursors.(i) (Ahq.processed q i)
        end
  done;
  (* drain both readers and the queue must agree it is empty *)
  for i = 0 to n_readers - 1 do
    let pending = !pushed - cursors.(i) in
    if pending > 0 then Ahq.advance_n q i pending
  done;
  check_bool "drained" true (Ahq.drained q);
  check_int "everything was enqueued exactly once" !pushed (Ahq.enqueued q)

(* Real domains: one writer, two readers, each reader must observe the
   full sequence in FIFO order — the broadcast queue never drops, dups, or
   reorders for any reader. *)
let ahq_domains () =
  let total = 20_000 in
  let q = Ahq.create ~capacity:64 ~readers:2 () in
  let pool = make_srecs total in
  let reader i () =
    let buf = Array.make 32 pool.(0) in
    let seen = ref 0 in
    let ok = ref true in
    while !seen < total do
      let n = Ahq.peek_batch_into q i buf in
      if n = 0 then Domain.cpu_relax ()
      else begin
        for k = 0 to n - 1 do
          if buf.(k).Srec.uid <> !seen + k then ok := false
        done;
        Ahq.advance_n q i n;
        seen := !seen + n
      end
    done;
    !ok
  in
  let r0 = Domain.spawn (reader 0) in
  let r1 = Domain.spawn (reader 1) in
  for k = 0 to total - 1 do
    while not (Ahq.try_enqueue q pool.(k)) do
      Domain.cpu_relax ()
    done
  done;
  check_bool "reader 0 saw FIFO order" true (Domain.join r0);
  check_bool "reader 1 saw FIFO order" true (Domain.join r1);
  check_bool "drained" true (Ahq.drained q)

(* --------------------------------------------------- Cldeque vs model *)

(* Reference model: a plain list, head = bottom.  [push_bottom]/[pop_bottom]
   work at the head, [steal_top] at the last element.  Single-threaded
   there is no CAS contention, so a steal must succeed whenever the deque
   is non-empty — a spurious None here would be a logic bug, not a lost
   race. *)
let rec split_last = function
  | [] -> invalid_arg "split_last"
  | [ x ] -> ([], x)
  | x :: tl ->
      let rest, last = split_last tl in
      (x :: rest, last)

(* One schedule of [steps] random ops from [seed].  A tiny initial
   capacity makes the buffer-doubling path part of every deep schedule. *)
let cldeque_schedule ~seed ~steps =
  let rng = Random.State.make [| seed |] in
  let dq : int Cldeque.t = Cldeque.create ~capacity:2 ~dummy:(-1) () in
  let model = ref [] in
  let next = ref 0 in
  for step = 1 to steps do
    match Random.State.int rng 3 with
    | 0 ->
        Cldeque.push_bottom dq !next;
        model := !next :: !model;
        incr next
    | 1 -> (
        let got = Cldeque.pop_bottom dq in
        match (!model, got) with
        | [], None -> ()
        | x :: rest, Some y when x = y -> model := rest
        | _ ->
            Alcotest.failf "seed %d step %d: pop_bottom diverged (got %s)" seed step
              (match got with None -> "None" | Some v -> string_of_int v))
    | _ -> (
        let got = Cldeque.steal_top dq in
        match (!model, got) with
        | [], None -> ()
        | l, Some y ->
            let rest, last = split_last l in
            if last = y then model := rest
            else
              Alcotest.failf "seed %d step %d: steal_top returned %d, model top %d" seed step y
                last
        | _ :: _, None -> Alcotest.failf "seed %d step %d: steal_top missed an element" seed step)
  done;
  (* drain: remaining elements must come out bottom-first, exactly once *)
  let rec drain () =
    match Cldeque.pop_bottom dq with
    | None ->
        if !model <> [] then
          Alcotest.failf "seed %d: deque empty but model still holds %d" seed (List.hd !model)
    | Some y -> (
        match !model with
        | x :: rest when x = y ->
            model := rest;
            drain ()
        | _ -> Alcotest.failf "seed %d: drain diverged at %d" seed y)
  in
  drain ();
  if not (Cldeque.is_empty dq) then Alcotest.failf "seed %d: is_empty after drain" seed;
  if Cldeque.steal_cas_failures dq <> 0 then
    Alcotest.failf "seed %d: lost a CAS with no contention" seed

let cldeque_interleaving ~seed () = cldeque_schedule ~seed ~steps:4000

(* The wide axis: 10,000 distinct seeded schedules, short enough to run in
   bulk.  Combined with the deep runs above this is the "10k+ seeded
   schedules" contract the deque is shipped under. *)
let cldeque_sweep () =
  for seed = 1 to 10_000 do
    cldeque_schedule ~seed:(100_000 + seed) ~steps:48
  done

(* Real domains: the owner pushes and pops at the bottom while two thieves
   steal from the top.  Linearizability here means exactly-once transfer:
   the multiset of popped + stolen + leftover values is exactly the pushed
   set, and each thief's steals arrive oldest-first (monotonically
   increasing values, since the owner pushes 0,1,2,… and never re-pushes). *)
let cldeque_domains () =
  let total = 20_000 in
  let dq : int Cldeque.t = Cldeque.create ~capacity:16 ~dummy:(-1) () in
  let stop = Atomic.make false in
  let thief () =
    let mine = ref [] in
    while not (Atomic.get stop) do
      match Cldeque.steal_top dq with
      | Some v -> mine := v :: !mine
      | None -> Domain.cpu_relax ()
    done;
    (* final sweep so nothing is stranded between stop and join *)
    let rec sweep () =
      match Cldeque.steal_top dq with
      | Some v ->
          mine := v :: !mine;
          sweep ()
      | None -> ()
    in
    sweep ();
    List.rev !mine
  in
  let t0 = Domain.spawn thief and t1 = Domain.spawn thief in
  let popped = ref [] in
  let rng = Random.State.make [| 7 |] in
  for v = 0 to total - 1 do
    Cldeque.push_bottom dq v;
    if Random.State.int rng 3 = 0 then
      match Cldeque.pop_bottom dq with
      | Some x -> popped := x :: !popped
      | None -> ()
  done;
  Atomic.set stop true;
  let s0 = Domain.join t0 and s1 = Domain.join t1 in
  let rec drain acc = match Cldeque.pop_bottom dq with Some v -> drain (v :: acc) | None -> acc in
  let leftovers = drain [] in
  let rec increasing = function a :: (b :: _ as tl) -> a < b && increasing tl | _ -> true in
  check_bool "thief 0 stole oldest-first" true (increasing s0);
  check_bool "thief 1 stole oldest-first" true (increasing s1);
  (* exactly-once: popped + stolen + leftovers is a permutation of 0..n-1.
     A steal whose CAS lost must not have delivered a value, and a value a
     thief took must never reappear at the bottom. *)
  let all = List.sort compare (!popped @ s0 @ s1 @ leftovers) in
  check_int "nothing lost or duplicated" total (List.length all);
  List.iteri (fun i v -> if i <> v then Alcotest.failf "value %d appears at rank %d" v i) all

(* ----------------------------------------------------- Lanes vs model *)

(* Reference model: [shards] independent FIFO sequences plus one cursor
   per lane (one consumer each).  A commit must be all-or-nothing: it
   succeeds — appending exactly one record to EVERY lane — iff every lane
   has room; a reject must leave every lane untouched and bump the reject
   counter of precisely the roomless lanes.  Backpressure stays 0 here:
   single-threaded, waiting can never create room (the detector enforces
   the same default for the same reason). *)
let lanes_schedule ~seed ~steps =
  let rng = Random.State.make [| seed |] in
  let shards = 1 + Random.State.int rng 4 in
  let cap = 4 in
  let t : int Lanes.t = Lanes.create ~capacity:cap ~shards ~readers_of_lane:(fun _ -> 1) () in
  let streams = Array.make shards [] in
  (* model streams, newest-first *)
  let cursors = Array.make shards 0 in
  let committed = ref 0 in
  let rejects = Array.make shards 0 in
  for step = 1 to steps do
    if Random.State.int rng 2 = 0 then begin
      (* commit: f k must only have been evaluated if the commit lands *)
      let room k = !committed - cursors.(k) < cap in
      let expect_ok = Array.for_all (fun k -> room k) (Array.init shards (fun k -> k)) in
      let evaluated = ref [] in
      let ok =
        Lanes.enqueue_each t (fun k ->
            evaluated := k :: !evaluated;
            (!committed * shards) + k)
      in
      if ok <> expect_ok then
        Alcotest.failf "seed %d step %d: commit %b, model %b" seed step ok expect_ok;
      if ok then begin
        check_int
          (Printf.sprintf "seed %d step %d: f evaluated once per lane" seed step)
          shards (List.length !evaluated);
        for k = 0 to shards - 1 do
          streams.(k) <- ((!committed * shards) + k) :: streams.(k)
        done;
        incr committed
      end
      else begin
        (* nothing may land on ANY lane, and f must not run at all *)
        check_int (Printf.sprintf "seed %d step %d: reject ran f" seed step) 0
          (List.length !evaluated);
        for k = 0 to shards - 1 do
          if not (room k) then rejects.(k) <- rejects.(k) + 1;
          check_int
            (Printf.sprintf "seed %d step %d: lane %d rejects" seed step k)
            rejects.(k) (Lanes.rejects t k)
        done
      end
    end
    else begin
      (* consume 1..2 records from one lane, checking FIFO content *)
      let k = Random.State.int rng shards in
      let lane = Lanes.lane t k in
      let pending = !committed - cursors.(k) in
      if pending > 0 then begin
        let n = 1 + Random.State.int rng (min pending 2) in
        for j = 0 to n - 1 do
          match Ahq.peek lane 0 with
          | None -> Alcotest.failf "seed %d step %d: lane %d starved" seed step k
          | Some v ->
              let expect = ((cursors.(k) + j) * shards) + k in
              if v <> expect then
                Alcotest.failf "seed %d step %d: lane %d got %d want %d" seed step k v expect;
              Ahq.advance_n lane 0 1
        done;
        cursors.(k) <- cursors.(k) + n
      end
    end
  done;
  (* drain every lane; totals must match the model *)
  for k = 0 to shards - 1 do
    let lane = Lanes.lane t k in
    let pending = !committed - cursors.(k) in
    if pending > 0 then Ahq.advance_n lane 0 pending
  done;
  check_bool "lanes drained" true (Lanes.drained t);
  check_int "total enqueued = shards x commits" (!committed * shards) (Lanes.total_enqueued t);
  check_int "no backpressure waits at rounds=0" 0 (Lanes.backpressure_waits t)

let lanes_interleaving ~seed () = lanes_schedule ~seed ~steps:4000
let lanes_sweep () =
  for seed = 1 to 10_000 do
    lanes_schedule ~seed:(200_000 + seed) ~steps:32
  done

(* Real domains: one producer commits through the backpressure window
   while one consumer domain per lane drains.  Every lane must observe
   every commit, in order — all-or-nothing means the lane streams never
   desynchronize — and with consumers actually running, waiting for room
   works: no commit is ever rejected. *)
let lanes_domains () =
  let total = 20_000 and shards = 2 in
  let t : int Lanes.t = Lanes.create ~capacity:16 ~shards ~readers_of_lane:(fun _ -> 1) () in
  (* far past any real drain latency; a hang here IS the failure mode *)
  Lanes.set_backpressure t ~rounds:1_000_000;
  let consumer k () =
    let lane = Lanes.lane t k in
    let seen = ref 0 in
    let ok = ref true in
    while !seen < total do
      match Ahq.peek lane 0 with
      | None -> Domain.cpu_relax ()
      | Some v ->
          if v <> (!seen * shards) + k then ok := false;
          Ahq.advance_n lane 0 1;
          incr seen
    done;
    !ok
  in
  let doms = List.init shards (fun k -> Domain.spawn (consumer k)) in
  let all_committed = ref true in
  for i = 0 to total - 1 do
    if not (Lanes.enqueue_each t (fun k -> (i * shards) + k)) then all_committed := false
  done;
  List.iteri
    (fun k d -> check_bool (Printf.sprintf "lane %d consumer saw FIFO commits" k) true (Domain.join d))
    doms;
  check_bool "backpressure absorbed every stall (no rejects)" true !all_committed;
  check_int "no lane rejects" 0 (Lanes.total_rejects t);
  check_bool "lanes drained" true (Lanes.drained t)

let seeds = [ 1; 42; 1234; 99991 ]

let () =
  Alcotest.run "pint_sched_stress"
    [
      ( "ahq",
        List.map
          (fun seed ->
            Alcotest.test_case (Printf.sprintf "interleaving seed %d" seed) `Quick
              (ahq_interleaving ~seed))
          seeds
        @ [ Alcotest.test_case "real domains FIFO" `Quick ahq_domains ] );
      ( "cldeque",
        List.map
          (fun seed ->
            Alcotest.test_case (Printf.sprintf "interleaving seed %d" seed) `Quick
              (cldeque_interleaving ~seed))
          seeds
        @ [
            Alcotest.test_case "10k seeded schedules" `Quick cldeque_sweep;
            Alcotest.test_case "real domains exactly-once" `Quick cldeque_domains;
          ] );
      ( "lanes",
        List.map
          (fun seed ->
            Alcotest.test_case (Printf.sprintf "interleaving seed %d" seed) `Quick
              (lanes_interleaving ~seed))
          seeds
        @ [
            Alcotest.test_case "10k seeded schedules" `Quick lanes_sweep;
            Alcotest.test_case "real domains all-or-nothing" `Quick lanes_domains;
          ] );
    ]
