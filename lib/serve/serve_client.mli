(** Blocking pint_serve client: stream one trace image over a socket and
    collect the served verdicts.  Used by the [pint_serve client] CLI, the
    bench soak group and the CI smoke job. *)

type result = {
  session : int;  (** server-assigned session id *)
  races : (Report.kind * int * int * Interval.t) list;
      (** every race batch, concatenated in arrival order *)
  predicted : (Report.kind * int * int * Interval.t) list;
      (** window-bounded predicted races from the summary (empty unless the
          session opted in via [?predict]) — disjoint from [races] *)
  n_strands : int;  (** strands the server replayed *)
  n_races : int;  (** distinct races in the server's final report *)
  stats : (string * string) list;  (** diagnostics + obs summary *)
}

val default_chunk : int

(** [run ?chunk ?shards ?predict ~addr trace_bytes] — connect, handshake,
    upload the image in [chunk]-byte Data frames (default 64 KiB; any size
    is valid — the server's decoder carries state across chunk boundaries),
    then gather races until the summary.  [shards = 0] (default) accepts
    the server's configured shard count.  [predict > 0] opts the session
    into predictive detection with that window (see {!Predict}); the
    server rejects windows above its configured cap.  [Error msg] carries
    the server's framed rejection (admission, malformed stream, corrupt
    DAG) or a transport failure.
    @raise Unix.Unix_error if the connection itself fails. *)
val run :
  ?chunk:int ->
  ?shards:int ->
  ?predict:int ->
  addr:Unix.sockaddr ->
  string ->
  (result, string) Stdlib.result

(** Deduplicated Theorem-5 keys of a served race list, for comparison
    against {!Replay.diff_races}-style signatures. *)
val signature : (Report.kind * int * int * Interval.t) list -> (Report.kind * int * int) list
