(* Golden-trace corpus: committed captures under test/golden/ are replayed
   through all three detectors, which must agree pairwise on the
   deduplicated race set (Theorem 5) — and, since each trace's metadata
   records the workload configuration it came from, the replayed set is also
   checked against a fresh live sequential run of that same configuration.
   A divergence here means a detector changed behaviour relative to the
   committed artifacts. *)

let check_bool = Alcotest.(check bool)

let detectors = [ "stint"; "cracer"; "pint" ]
let make_det name = Option.get (Systems.make_detector name)

let signature races =
  List.sort compare
    (List.map (fun (r : Report.race) -> (r.Report.kind, r.Report.prior, r.Report.current)) races)

let golden_files () =
  let dir = "golden" in
  if not (Sys.file_exists dir && Sys.is_directory dir) then []
  else
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".trace")
    |> List.sort compare
    |> List.map (Filename.concat dir)

let meta_exn t k =
  match Tracefile.meta_find t k with
  | Some v -> v
  | None -> Alcotest.failf "golden trace lacks %S metadata" k

let check_one path () =
  let t = Tracefile.load path in
  (* predict-only captures (see test/golden_gen/lucky.ml) carry a racy pair
     that every observed-order detector must MISS — the race is reachable
     only through a window-bounded reordering, which test_predict covers *)
  let predict_only = Tracefile.meta_find t "predict_only" = Some "true" in
  (* 1. all detectors agree on the replayed race set *)
  let sigs =
    List.map
      (fun det ->
        let d, _ = make_det det in
        let races = signature (Replay.run t d).Replay.races in
        (* the replayed history must leave every treap structurally sound
           (heap order, BST order, disjointness, size counters) *)
        d.Detector.validate ();
        (det, races))
      detectors
  in
  (match sigs with
  | (ref_det, ref_sig) :: rest ->
      if predict_only then
        check_bool (path ^ ": predict-only trace is observed-clean") true (ref_sig = [])
      else check_bool (path ^ ": corpus trace is racy") true (ref_sig <> []);
      List.iter
        (fun (det, s) ->
          if s <> ref_sig then
            Alcotest.failf "%s: %s and %s disagree (%d vs %d races)" path det ref_det
              (List.length s) (List.length ref_sig))
        rest
  | [] -> Alcotest.fail "no detectors");
  (* 2. the replayed set matches a live run of the recorded configuration
     (predict-only traces are synthetic captures with no registry entry) *)
  if not predict_only then begin
    let w = Registry.find (meta_exn t "workload") in
    let size = int_of_string (meta_exn t "size") and base = int_of_string (meta_exn t "base") in
    check_bool (path ^ ": golden traces are racy captures") true
      (meta_exn t "racy" = "true");
    let inst = (Option.get w.Workload.racy) ~size ~base in
    let d, _ = make_det "pint" in
    let _ = Seq_exec.run ~driver:d.Detector.driver inst.Workload.run in
    let live = signature (Detector.races d) in
    d.Detector.validate ();
    check_bool (path ^ ": replay = live rerun") true (snd (List.hd sigs) = live)
  end

(* Sharding must be invisible in the race set: replaying a golden trace
   through the N-shard pipeline must produce exactly the shards=1 (paper
   configuration) verdicts at Theorem-5 granularity — the differential
   machinery compares deduplicated (kind, earlier, later) triples, the same
   key [Report.add] dedups on, so split sub-intervals cannot leak through
   as spurious differences. *)
let check_sharded path () =
  let t = Tracefile.load path in
  List.iter
    (fun shards ->
      let d1, _ = make_det "pint" in
      let dn, _ = Option.get (Systems.make_detector ~shards "pint") in
      let d = Replay.differential t dn d1 in
      if not (Replay.no_divergence d) then
        Alcotest.failf "%s: pint shards=%d diverges from shards=1: %s" path shards
          (Format.asprintf "%a" Replay.pp_divergence d);
      dn.Detector.validate ())
    [ 2; 4; 8 ]

(* The same invariant under the real-domain executor: each shard's
   {writer, lreader, rreader} triple on its own micropool domain, the
   collector committing through the backpressure window.  Whatever the
   domains' actual interleaving, the race set must still equal the
   shards=1 single-threaded replay at Theorem-5 (kind, prior, current)
   granularity — detection work is partitioned by address range, so
   scheduling can reorder discovery but never change the verdicts. *)
let check_sharded_domains path () =
  let t = Tracefile.load path in
  let d1, _ = make_det "pint" in
  let ref_sig = signature (Replay.run t d1).Replay.races in
  List.iter
    (fun shards ->
      let dn, stages =
        Option.get
          (Systems.make_detector ~shards ~bp_rounds:Pint_detector.recommended_bp_rounds "pint")
      in
      let o = Replay.run ~pools:(Systems.micropools stages) t dn in
      dn.Detector.validate ();
      if signature o.Replay.races <> ref_sig then
        Alcotest.failf "%s: real-domain pint shards=%d diverges from shards=1 (%d vs %d races)"
          path shards
          (List.length o.Replay.races)
          (List.length ref_sig))
    [ 2; 4 ]

(* Corruption robustness: a damaged trace must always surface as a clean
   [Tracefile.Error] — never an escaping exception from the parser and
   never a silently wrong replay.  The format checks its magic and then a
   CRC-32 over the whole body BEFORE parsing anything, and CRC-32 detects
   every single-bit error, so each single-bit flip anywhere in the file
   must be rejected. *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let flip bytes ~byte ~bit =
  let b = Bytes.of_string bytes in
  Bytes.set b byte (Char.chr (Char.code (Bytes.get b byte) lxor (1 lsl bit)));
  Bytes.to_string b

let entries_ok t = Tracefile.entry_count t > 0

let check_corrupt path () =
  let original = read_file path in
  let n = String.length original in
  check_bool (path ^ ": parses when intact") true (Tracefile.of_bytes original |> entries_ok);
  (* every byte of the header + a deterministic sample of the body, all 8
     bit positions each: exhaustive flipping of a multi-KB file is slow for
     no extra coverage *)
  let positions = ref [] in
  for byte = 0 to min (n - 1) 63 do
    positions := byte :: !positions
  done;
  let step = max 1 (n / 97) in
  let byte = ref 64 in
  while !byte < n do
    positions := !byte :: !positions;
    byte := !byte + step
  done;
  List.iter
    (fun byte ->
      for bit = 0 to 7 do
        let corrupted = flip original ~byte ~bit in
        match Tracefile.of_bytes corrupted with
        | exception Tracefile.Error _ -> () (* the one acceptable outcome *)
        | exception e ->
            Alcotest.failf "%s: flip byte %d bit %d escaped with %s" path byte bit
              (Printexc.to_string e)
        | _ ->
            Alcotest.failf "%s: flip byte %d bit %d parsed as a valid trace" path byte bit
      done)
    !positions

(* The same corruption guarantee under chunked feeding: streaming a damaged
   trace through the incremental decoder must raise [Tracefile.Error] by
   [finish] at the latest — never escape with another exception and never
   complete as a valid trace.  Chunking is the interesting axis here: the
   flip may land in a varint or CRC word that straddles a chunk boundary. *)
let decode_chunked bytes chunk =
  let d = Tracefile.Decoder.create () in
  let n = String.length bytes in
  let pos = ref 0 in
  while !pos < n do
    let len = min chunk (n - !pos) in
    Tracefile.Decoder.feed d ~pos:!pos ~len bytes;
    (* consume as we go, like a real session would *)
    while Tracefile.Decoder.next d <> None do
      ()
    done;
    pos := !pos + len
  done;
  Tracefile.Decoder.finish d

let check_corrupt_chunked path () =
  let original = read_file path in
  let n = String.length original in
  decode_chunked original 13;
  (* sparser byte sample than [check_corrupt] — each flip decodes the file
     several times over at chunk sizes chosen to split varints, interval
     arrays and the CRC across boundaries *)
  let positions = ref [] in
  let step = max 1 (n / 23) in
  let byte = ref 0 in
  while !byte < n do
    positions := !byte :: !positions;
    byte := !byte + step
  done;
  positions := (n - 1) :: !positions;
  List.iter
    (fun byte ->
      for bit = 0 to 7 do
        let corrupted = flip original ~byte ~bit in
        List.iter
          (fun chunk ->
            match decode_chunked corrupted chunk with
            | exception Tracefile.Error _ -> ()
            | exception e ->
                Alcotest.failf "%s: chunk=%d flip byte %d bit %d escaped with %s" path chunk
                  byte bit (Printexc.to_string e)
            | _ ->
                Alcotest.failf "%s: chunk=%d flip byte %d bit %d decoded as a valid trace" path
                  chunk byte bit)
          [ 1; 13; 4096 ]
      done)
    !positions

(* Truncation at every prefix length must also fail cleanly. *)
let check_truncated path () =
  let original = read_file path in
  let n = String.length original in
  for len = 0 to n - 1 do
    let prefix = String.sub original 0 len in
    match Tracefile.of_bytes prefix with
    | exception Tracefile.Error _ -> ()
    | exception e ->
        Alcotest.failf "%s: truncation to %d bytes escaped with %s" path len
          (Printexc.to_string e)
    | _ -> Alcotest.failf "%s: truncation to %d bytes parsed as a valid trace" path len
  done

let () =
  let files = golden_files () in
  if files = [] then prerr_endline "test_golden: no golden traces found, nothing to check";
  Alcotest.run "pint_golden"
    [
      ( "corpus",
        List.map (fun path -> Alcotest.test_case path `Quick (check_one path)) files );
      ( "sharded",
        List.map (fun path -> Alcotest.test_case path `Quick (check_sharded path)) files );
      ( "sharded-domains",
        List.map (fun path -> Alcotest.test_case path `Quick (check_sharded_domains path)) files );
      ( "corruption",
        List.map (fun path -> Alcotest.test_case path `Quick (check_corrupt path)) files );
      ( "corruption-chunked",
        List.map
          (fun path -> Alcotest.test_case path `Quick (check_corrupt_chunked path))
          files );
      ( "truncation",
        List.map (fun path -> Alcotest.test_case path `Quick (check_truncated path)) files );
    ]
