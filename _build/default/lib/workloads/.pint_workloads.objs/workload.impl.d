lib/workloads/workload.ml:
