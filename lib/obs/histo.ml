let nbuckets = 64

type t = {
  buckets : int array;
  mutable n : int;
  mutable sum : int;
  mutable max_v : int;
}

let create () = { buckets = Array.make nbuckets 0; n = 0; sum = 0; max_v = 0 }

(* Shared sink for disabled sessions; adds land here and are never read. *)
let dummy = create ()

(* floor(log2 v) for v >= 2; values <= 1 (including the clamped negatives
   that cross-timeline virtual latencies can produce) land in bucket 0, so
   bucket b >= 1 covers exactly [2^b, 2^(b+1)). *)
let bucket_of v =
  if v <= 1 then 0
  else begin
    let b = ref 0 and x = ref v in
    while !x > 1 do
      x := !x lsr 1;
      incr b
    done;
    if !b >= nbuckets then nbuckets - 1 else !b
  end

let add t v =
  let v = if v < 0 then 0 else v in
  t.buckets.(bucket_of v) <- t.buckets.(bucket_of v) + 1;
  t.n <- t.n + 1;
  t.sum <- t.sum + v;
  if v > t.max_v then t.max_v <- v

let count t = t.n
let total t = t.sum
let max_value t = t.max_v

(* Representative value of a bucket: its lower bound (1 for bucket 0, the
   0/1 bucket — good enough for log-scale quantiles). *)
let bucket_lo b = if b = 0 then 0 else 1 lsl b

let quantile t q =
  if t.n = 0 then 0
  else begin
    let target = int_of_float (ceil (q *. float_of_int t.n)) in
    let target = if target < 1 then 1 else target in
    let acc = ref 0 and found = ref (nbuckets - 1) and b = ref 0 in
    while !b < nbuckets && !acc < target do
      acc := !acc + t.buckets.(!b);
      if !acc >= target then found := !b;
      incr b
    done;
    bucket_lo !found
  end

let merge_into ~src ~dst =
  for b = 0 to nbuckets - 1 do
    dst.buckets.(b) <- dst.buckets.(b) + src.buckets.(b)
  done;
  dst.n <- dst.n + src.n;
  dst.sum <- dst.sum + src.sum;
  if src.max_v > dst.max_v then dst.max_v <- src.max_v

let nonzero_buckets t =
  let acc = ref [] in
  for b = nbuckets - 1 downto 0 do
    if t.buckets.(b) > 0 then acc := (bucket_lo b, t.buckets.(b)) :: !acc
  done;
  !acc
