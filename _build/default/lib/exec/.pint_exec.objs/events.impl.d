lib/exec/events.ml: Format Srec
