(* The "lucky interleaving" golden trace: a racy write/write pair that every
   observed-schedule detector misses and only prediction finds.

   Three children of one sync block: A fills a heap buffer, F frees it, B
   fills it again.  The sequential capture runs them in spawn order, so by
   the time B's writes reach the access history, F's free has already wiped
   A's writes from it — STINT, C-RACER and PINT all (correctly, per the
   observed schedule) report nothing.  But F is logically parallel to both
   A and B: a schedule that runs B before F sees A's and B's writes
   side by side.  The A-B pair is exactly the free-hidden short race the
   predictor exists for: parallel, conflicting, serialized only by where
   the observed schedule happened to place F.

   Entry (finish) order is r0, A, c1, F, c2, B, c3, s — positions 0..7 —
   so A and B sit 4 slots apart: predictable from window 2 on
   (displacement bound 2w+1 >= 4, e.g. r0 c1 c2 A B F c3 s, max move 2),
   invisible at windows 0 and 1. *)

let words = 8

let program () =
  let buf = Fj.alloc_f words in
  Fj.spawn (fun () -> Membuf.fill_f buf 0 words 1.0);
  Fj.spawn (fun () -> Fj.free_f buf);
  Fj.spawn (fun () -> Membuf.fill_f buf 0 words 2.0);
  Fj.sync ()

let meta =
  [
    ("workload", "lucky");
    ("predict_only", "true");
    ("note", "free-hidden W/W pair, only predictable");
  ]

let trace () =
  let d = Nodetect.make () in
  let driver, finished = Tracefile.capturing ~meta d.Detector.driver in
  ignore (Seq_exec.run ~driver program);
  finished ()
