lib/detect/detector.mli: Hooks Report
