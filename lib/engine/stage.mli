(** A pipeline stage: a named step function plus per-stage accounting.

    A stage wraps one logical pipeline worker (PINT's writer treap worker,
    one reader treap worker, …).  All schedulers drive stages exclusively
    through {!exec} (or the convenience loop {!run}), so the counters below
    are maintained uniformly no matter which executor is in charge:

    - [steps] — productive ([`Worked]) steps taken;
    - [records] — pipeline records consumed (batch-aware: one step may
      consume many records, so [records /. steps] is the achieved batch);
    - [visits] — accumulated cost payloads (treap-node visits for PINT);
    - [idles] — steps that found nothing to do upstream;
    - [stalls] — steps blocked on a full downstream queue (backpressure).

    A stage is single-consumer: it must be driven by one thread at a time
    (each [Par_exec] stage domain, the single-threaded simulator, or a
    drain loop — never two at once). *)

type metrics = {
  mutable steps : int;
  mutable records : int;
  mutable visits : int;
  mutable idles : int;
  mutable stalls : int;
}

type t

(** [make ~name ?cost step] — [cost] converts a step's outcome into
    scheduler-specific cost units (virtual cycles for the simulator).  It
    sees both the records consumed and the visit payload so that per-record
    constants are charged per record, not per step — a batched step that
    consumes [n] records must not amortize away work that is inherently
    per-record.  Defaults to [fun ~records:_ ~visits -> visits]. *)
val make : name:string -> ?cost:(records:int -> visits:int -> int) -> (unit -> Step.t) -> t

val name : t -> string

(** Apply the stage's cost hook to a step outcome. *)
val cost : t -> records:int -> visits:int -> int

val metrics : t -> metrics
val reset_metrics : t -> unit

(** Attach an observability track: every subsequent {!exec} emits a
    treap-op span per productive step (virtual-clock spans are priced by
    the stage's [cost] hook, real-clock spans by clock deltas) and
    coalesces consecutive [`Stalled] steps into one stall span.  Defaults
    to {!Evring.null} — tracing disabled, zero per-step cost beyond one
    bool load. *)
val set_ring : t -> Evring.t -> unit

val ring : t -> Evring.t

(** Drive the stage one step and record the outcome in its metrics. *)
val exec : t -> Step.t

(** Drive the stage to [`Done] with exponential idle backoff — the loop a
    dedicated domain runs. *)
val run : t -> unit

(** The stage's counters as [("stage.<name>.<counter>", value)] pairs. *)
val diagnostics : t -> (string * float) list
