(** Instrumented typed buffers over the simulated address space.

    A [Membuf] couples a real OCaml array (the data actually computed on)
    with a virtual base address; every accessor performs the array operation
    {e and} reports the access to the ambient {!Access} sink.  Element
    granularity: one element = one address word, for both float and int
    buffers (the detectors only see word-granular intervals, as STINT does
    after its 4/8-byte normalization).

    Bulk operations ([blit], [fill], [read_range]) issue a single interval
    event covering the whole range — the stand-in for the paper's
    compile-time coalescing of loop nests.

    Heap buffers come from {!alloc_f}/{!alloc_i} and are returned with
    {!free}; stack "frames" are scoped via {!Frame}. *)

type f
type i

(** {1 Heap buffers} *)

val alloc_f : Aspace.t -> int -> f
val alloc_i : Aspace.t -> int -> i

(** Logical free: emits the free event; the detector in charge decides when
    the words return to the allocator. *)
val free_f : f -> unit

val free_i : i -> unit

(** {1 Float buffers} *)

val base_f : f -> int
val length_f : f -> int
val get_f : f -> int -> float
val set_f : f -> int -> float -> unit
val blit_f : f -> int -> f -> int -> int -> unit
val fill_f : f -> int -> int -> float -> unit

(** [read_range_f b off len] reports a bulk read and returns a fresh plain
    array copy of the range (data escapes instrumentation — callers use this
    for verification output). *)
val read_range_f : f -> int -> int -> float array

(** Unsafe/uninstrumented peek used by test oracles and result validation:
    no access event is emitted. *)
val peek_f : f -> int -> float

(** Uninstrumented poke for test setup. *)
val poke_f : f -> int -> float -> unit

(** {1 Int buffers} *)

val base_i : i -> int
val length_i : i -> int
val get_i : i -> int -> int
val set_i : i -> int -> int -> unit
val blit_i : i -> int -> i -> int -> int -> unit
val fill_i : i -> int -> int -> int -> unit
val peek_i : i -> int -> int
val poke_i : i -> int -> int -> unit

(** {1 Stack frames} *)

module Frame : sig
  (** [with_f space ~worker ~words k] pushes an activation frame of [words]
      float locals on [worker]'s simulated stack, runs [k] on the frame
      buffer, then pops the frame.  The frame interval is also passed so the
      executor can attach a clear-on-return action to the popping strand. *)
  val with_f : Aspace.t -> worker:int -> words:int -> (f -> 'a) -> 'a

  (** Like {!with_f} but also tells [on_pop] the popped interval (base, len)
      just before returning — the hook the executors use to schedule access
      history clearing (§III-F). *)
  val with_f_hooked : Aspace.t -> worker:int -> words:int -> on_pop:(base:int -> len:int -> unit) -> (f -> 'a) -> 'a
end
