(* SP-order reachability tests.

   Ground truth: while driving Sp_order through randomly generated fork-join
   programs we also record the explicit DAG edges, then compare
   [series]/[parallel]/[left_of] answers for every strand pair against plain
   graph reachability and against the sequential (depth-first) execution
   order. *)

let check_bool = Alcotest.(check bool)

(* A fork-join program body: a list of actions.  Strand boundaries are
   exactly spawns and syncs; an implicit sync ends every function. *)
type action = Spawn of action list | Sync

type ground = {
  edges : (int, int list) Hashtbl.t;
  mutable seq : int list; (* strand ids in sequential execution order, reversed *)
  mutable strands : Sp_order.strand list;
}

let add_edge g u v =
  let l = Option.value ~default:[] (Hashtbl.find_opt g.edges u) in
  Hashtbl.replace g.edges u (v :: l)

let note g s =
  g.seq <- Sp_order.id s :: g.seq;
  g.strands <- s :: g.strands

(* Execute [body] sequentially (depth-first), driving Sp_order and recording
   ground-truth edges.  [u] is the function's current strand; returns the
   function's last strand (after the implicit final sync). *)
let rec exec t g body u =
  let sync_pre = ref None in
  let block_children = ref [] in
  let do_sync u =
    match !sync_pre with
    | None -> u (* trivial sync: no spawn since last sync *)
    | Some s ->
        add_edge g (Sp_order.id u) (Sp_order.id s);
        List.iter (fun last -> add_edge g (Sp_order.id last) (Sp_order.id s)) !block_children;
        block_children := [];
        sync_pre := None;
        note g s;
        s
  in
  let u =
    List.fold_left
      (fun u act ->
        match act with
        | Spawn child_body ->
            let child, cont, sync = Sp_order.spawn t ~sync_pre:!sync_pre u in
            sync_pre := Some sync;
            add_edge g (Sp_order.id u) (Sp_order.id child);
            add_edge g (Sp_order.id u) (Sp_order.id cont);
            note g child;
            let child_last = exec t g child_body child in
            block_children := child_last :: !block_children;
            note g cont;
            cont
        | Sync -> do_sync u)
      u body
  in
  do_sync u

let run_program body =
  let t, root = Sp_order.create () in
  let g = { edges = Hashtbl.create 64; seq = [ 0 ]; strands = [ root ] } in
  let _last = exec t g body root in
  (t, g)

(* Reference reachability by DFS. *)
let reaches g u v =
  let seen = Hashtbl.create 16 in
  let rec go x =
    x = v
    || (not (Hashtbl.mem seen x))
       && begin
            Hashtbl.add seen x ();
            List.exists go (Option.value ~default:[] (Hashtbl.find_opt g.edges x))
          end
  in
  go u

let verify_all (t, g) =
  let strands = Array.of_list (List.rev g.strands) in
  let seq_order = List.rev g.seq in
  let seq_pos = Hashtbl.create 16 in
  List.iteri (fun i id -> Hashtbl.replace seq_pos id i) seq_order;
  let n = Array.length strands in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      let u = strands.(i) and v = strands.(j) in
      let uid = Sp_order.id u and vid = Sp_order.id v in
      let expect_series = reaches g uid vid in
      if Sp_order.series t u v <> expect_series then
        Alcotest.failf "series(%d,%d): expected %b" uid vid expect_series;
      let expect_par = (not (reaches g uid vid)) && not (reaches g vid uid) in
      if Sp_order.parallel t u v <> expect_par then
        Alcotest.failf "parallel(%d,%d): expected %b" uid vid expect_par;
      if uid <> vid then begin
        let expect_left = Hashtbl.find seq_pos uid < Hashtbl.find seq_pos vid in
        if Sp_order.left_of t u v <> expect_left then
          Alcotest.failf "left_of(%d,%d): expected %b" uid vid expect_left
      end
    done
  done

(* ------------------------------------------------------- directed cases *)

let test_single_spawn () =
  (* root spawns A; cont; sync *)
  let t, root = Sp_order.create () in
  let child, cont, sync = Sp_order.spawn t ~sync_pre:None root in
  check_bool "root ~> child" true (Sp_order.series t root child);
  check_bool "root ~> cont" true (Sp_order.series t root cont);
  check_bool "child || cont" true (Sp_order.parallel t child cont);
  check_bool "cont || child" true (Sp_order.parallel t cont child);
  check_bool "child ~> sync" true (Sp_order.series t child sync);
  check_bool "cont ~> sync" true (Sp_order.series t cont sync);
  check_bool "child left of cont" true (Sp_order.left_of t child cont);
  check_bool "series is reflexive" true (Sp_order.series t child child);
  check_bool "parallel is irreflexive" false (Sp_order.parallel t child child)

let test_two_spawns_one_block () =
  let t, root = Sp_order.create () in
  let a, k1, s = Sp_order.spawn t ~sync_pre:None root in
  let b, k2, s' = Sp_order.spawn t ~sync_pre:(Some s) k1 in
  check_bool "same sync strand" true (s == s');
  check_bool "a || b" true (Sp_order.parallel t a b);
  check_bool "a || k2" true (Sp_order.parallel t a k2);
  check_bool "k1 ~> b" true (Sp_order.series t k1 b);
  check_bool "a ~> sync" true (Sp_order.series t a s);
  check_bool "b ~> sync" true (Sp_order.series t b s);
  check_bool "k2 ~> sync" true (Sp_order.series t k2 s);
  check_bool "a left of b" true (Sp_order.left_of t a b)

let test_sequential_blocks () =
  (* spawn A; sync; spawn B; sync — A and B are in series *)
  let t, root = Sp_order.create () in
  let a, k1, s1 = Sp_order.spawn t ~sync_pre:None root in
  ignore k1;
  (* after passing the sync the function continues at s1 *)
  let b, k2, s2 = Sp_order.spawn t ~sync_pre:None s1 in
  check_bool "a ~> b" true (Sp_order.series t a b);
  check_bool "a ~> k2" true (Sp_order.series t a k2);
  check_bool "b ~> s2" true (Sp_order.series t b s2);
  check_bool "s1 ~> s2" true (Sp_order.series t s1 s2);
  check_bool "not b ~> a" false (Sp_order.series t b a)

let test_nested_spawn () =
  (* root spawns A; A spawns A1; A1 || cont-of-A; A1 || cont-of-root *)
  let t, root = Sp_order.create () in
  let a, k, _s = Sp_order.spawn t ~sync_pre:None root in
  let a1, ak, _sa = Sp_order.spawn t ~sync_pre:None a in
  check_bool "a1 || k" true (Sp_order.parallel t a1 k);
  check_bool "ak || k" true (Sp_order.parallel t ak k);
  check_bool "a ~> a1" true (Sp_order.series t a a1);
  check_bool "a1 || ak" true (Sp_order.parallel t a1 ak);
  check_bool "a1 left of ak" true (Sp_order.left_of t a1 ak);
  check_bool "a1 left of k" true (Sp_order.left_of t a1 k)

(* --------------------------------------------------- exhaustive programs *)

let test_program_simple () = verify_all (run_program [ Spawn []; Sync ])
let test_program_wide () = verify_all (run_program [ Spawn []; Spawn []; Spawn []; Sync ])

let test_program_nested () =
  verify_all (run_program [ Spawn [ Spawn []; Sync; Spawn [] ]; Spawn []; Sync; Spawn [] ])

let test_program_deep () =
  let rec deep n = if n = 0 then [] else [ Spawn (deep (n - 1)); Sync ] in
  verify_all (run_program (deep 8))

let test_program_no_explicit_sync () =
  (* implicit function-end syncs only *)
  verify_all (run_program [ Spawn [ Spawn [] ]; Spawn [ Spawn [ Spawn [] ] ] ])

let random_body rng =
  let rec gen depth budget =
    if !budget <= 0 || depth > 4 then []
    else begin
      let n = Rng.int rng 4 in
      List.concat
        (List.init n (fun _ ->
             decr budget;
             if Rng.int rng 3 = 0 then [ Sync ]
             else [ Spawn (gen (depth + 1) budget) ]))
    end
  in
  gen 0 (ref 18)

let test_program_random () =
  for seed = 1 to 25 do
    let rng = Rng.create seed in
    verify_all (run_program (random_body rng))
  done

let sp_order_qcheck =
  QCheck.Test.make ~name:"random fork-join programs verified exhaustively" ~count:40
    QCheck.small_nat (fun seed ->
      let rng = Rng.create (seed + 1000) in
      verify_all (run_program (random_body rng));
      true)

let test_strand_count () =
  let t, root = Sp_order.create () in
  let _ = Sp_order.spawn t ~sync_pre:None root in
  (* root + child + cont + sync *)
  Alcotest.(check int) "strand count" 4 (Sp_order.strand_count t)

let () =
  Alcotest.run "pint_reach"
    [
      ( "directed",
        [
          Alcotest.test_case "single spawn" `Quick test_single_spawn;
          Alcotest.test_case "two spawns one block" `Quick test_two_spawns_one_block;
          Alcotest.test_case "sequential blocks" `Quick test_sequential_blocks;
          Alcotest.test_case "nested spawn" `Quick test_nested_spawn;
          Alcotest.test_case "strand count" `Quick test_strand_count;
        ] );
      ( "programs",
        [
          Alcotest.test_case "simple" `Quick test_program_simple;
          Alcotest.test_case "wide" `Quick test_program_wide;
          Alcotest.test_case "nested" `Quick test_program_nested;
          Alcotest.test_case "deep" `Quick test_program_deep;
          Alcotest.test_case "implicit syncs" `Quick test_program_no_explicit_sync;
          Alcotest.test_case "random seeds" `Quick test_program_random;
          QCheck_alcotest.to_alcotest sp_order_qcheck;
        ] );
    ]
