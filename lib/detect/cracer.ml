type cell = {
  mutable w : Sp_order.strand option;
  mutable lr : Sp_order.strand option;
  mutable rr : Sp_order.strand option;
}

type shard = { lock : Mutex.t; tbl : (int, cell) Hashtbl.t }

let make ?(shards = 64) ?(obs = Obs.disabled) () =
  let report = Report.create () in
  let diags = ref [] in
  let driver (ctx : Hooks.ctx) =
    let sp = ctx.sp in
    let map = Array.init shards (fun _ -> { lock = Mutex.create (); tbl = Hashtbl.create 1024 }) in
    let coals = Array.init ctx.n_workers (fun _ -> Coalescer.create ()) in
    let rings =
      Array.init ctx.n_workers (fun w -> Obs.track obs (Printf.sprintf "cracer%d" w))
    in
    let accesses = Atomic.make 0 in
    let shard_of addr = map.(addr land (shards - 1)) in
    let with_cell addr f =
      let sh = shard_of addr in
      Mutex.lock sh.lock;
      let cell =
        match Hashtbl.find_opt sh.tbl addr with
        | Some c -> c
        | None ->
            let c = { w = None; lr = None; rr = None } in
            Hashtbl.add sh.tbl addr c;
            c
      in
      f cell;
      Mutex.unlock sh.lock
    in
    (* check-only accessor: no cell is materialized for an address the
       history has never seen *)
    let peek_cell addr f =
      let sh = shard_of addr in
      Mutex.lock sh.lock;
      (match Hashtbl.find_opt sh.tbl addr with Some c -> f c | None -> ());
      Mutex.unlock sh.lock
    in
    let racy prior current = Policies.race sp ~prior ~current in
    let point a = Interval.point a in
    let check_read s a =
      peek_cell a (fun c ->
          match c.w with
          | Some w when racy w s ->
              Report.add report Report.Write_read ~prior:(Sp_order.id w) ~current:(Sp_order.id s)
                (point a)
          | _ -> ())
    in
    let check_write s a =
      peek_cell a (fun c ->
          (match c.w with
          | Some w when racy w s ->
              Report.add report Report.Write_write ~prior:(Sp_order.id w) ~current:(Sp_order.id s)
                (point a)
          | _ -> ());
          (match c.lr with
          | Some r when racy r s ->
              Report.add report Report.Read_write ~prior:(Sp_order.id r) ~current:(Sp_order.id s)
                (point a)
          | _ -> ());
          match c.rr with
          | Some r when racy r s ->
              Report.add report Report.Read_write ~prior:(Sp_order.id r) ~current:(Sp_order.id s)
                (point a)
          | _ -> ())
    in
    let update_read s a =
      with_cell a (fun c ->
          (match c.lr with
          | None -> c.lr <- Some s
          | Some r -> (
              match Policies.keep_leftmost sp ~s ~incumbent:r with
              | `Replace -> c.lr <- Some s
              | `Keep -> ()));
          match c.rr with
          | None -> c.rr <- Some s
          | Some r -> (
              match Policies.keep_rightmost sp ~s ~incumbent:r with
              | `Replace -> c.rr <- Some s
              | `Keep -> ()))
    in
    let update_write s a = with_cell a (fun c -> c.w <- Some s) in
    let clear_range base len =
      for a = base to base + len - 1 do
        let sh = shard_of a in
        Mutex.lock sh.lock;
        Hashtbl.remove sh.tbl a;
        Mutex.unlock sh.lock
      done
    in
    (* Strand-atomic processing at strand finish: all of the strand's
       coalesced accesses are checked against the pre-strand cells before
       any cell is updated, so a strand's own reads/writes never shadow the
       older readers and writers its accesses actually race with.  This is
       the same contract STINT and PINT follow — it is what aligns the three
       detectors' deduplicated race sets (Theorem 5). *)
    let iter_addrs ivs f =
      Array.iter
        (fun (iv : Interval.t) ->
          for a = iv.Interval.lo to iv.Interval.hi do
            f a
          done)
        ivs
    in
    let process (u : Srec.t) =
      let s = u.Srec.sp in
      iter_addrs u.reads (check_read s);
      iter_addrs u.writes (check_write s);
      iter_addrs u.reads (update_read s);
      iter_addrs u.writes (update_write s);
      List.iter (fun (b, l) -> clear_range b l) u.clears;
      u.clears <- [];
      List.iter
        (fun (b, l) ->
          clear_range b l;
          Aspace.heap_free ctx.aspace ~base:b ~len:l)
        u.frees
    in
    let sink ~wid =
      let coal = coals.(wid) in
      {
        Access.on_read =
          (fun ~addr ~len ->
            ignore (Atomic.fetch_and_add accesses len);
            Coalescer.add_read coal ~addr ~len);
        on_write =
          (fun ~addr ~len ->
            ignore (Atomic.fetch_and_add accesses len);
            Coalescer.add_write coal ~addr ~len);
        on_free =
          (fun ~base ~len ->
            let u = ctx.current ~wid in
            u.frees <- (base, len) :: u.frees);
        on_compute = (fun ~amount:_ -> ());
      }
    in
    {
      Hooks.sink;
      on_start = (fun ~wid:_ _ _ -> ());
      on_finish =
        (fun ~wid (u : Srec.t) _kind ->
          let reads, writes = Coalescer.finish coals.(wid) in
          u.Srec.reads <- reads;
          u.Srec.writes <- writes;
          let ring = rings.(wid) in
          if not (Evring.enabled ring) then process u
          else begin
            let dv = Array.length reads + Array.length writes in
            let t0 = Evring.now ring in
            process u;
            let dur = if Evring.is_virtual ring then dv else Evring.now ring - t0 in
            Evring.emit_span ring ~ts:t0 ~dur ~kind:Ev.treap_op ~arg:dv
          end);
      on_done = (fun () -> diags := [ ("accesses", float_of_int (Atomic.get accesses)) ]);
    }
  in
  {
    Detector.name = "cracer";
    driver;
    report;
    drain = (fun () -> ());
    diagnostics = (fun () -> !diags);
    validate = (fun () -> ()); (* hashtable shadow cells: nothing structural to check *)
  }
