(** PINT — the paper's parallel interval-based race detector.

    Core-side (driven through the detector hooks by whichever executor is
    running the computation):
    - per-worker coalescers turn each strand's accesses into intervals;
    - finished strands are pushed onto the worker's current {!Trace}
      (Algorithm 1 — the [pred]/[child] bookkeeping itself is applied by the
      executors via {!Book});
    - a worker switches to a fresh trace when it starts a stolen
      continuation or passes a non-trivial sync.

    Access-history side: three logical treap workers, exposed as explicit
    {e step} functions so that every execution mode can drive them —
    - the {b writer} treap worker collects ready strands from traces in a
      DAG-conforming order (Algorithm 2), moves them into the shared
      access-history queue, checks read/write intervals against the
      last-writer treap, performs delayed heap frees;
    - the {b left-most} / {b right-most} reader treap workers follow the
      queue, check write intervals against their reader treap and insert
      read intervals under their respective keep policies.

    The sequential executor calls {!drain} once at the end (the paper's
    one-core PINT configuration: all core work first, then the access
    history).  The simulator calls the step functions from virtual-time
    actors; the multi-domain executor calls them from three dedicated
    domains.  Each step returns the number of treap-node visits it caused,
    which is the cost its caller charges in virtual time. *)

type t

(** [make ?seed ?queue_capacity ?reader_shards ()].

    [reader_shards] implements the paper's §VI future-work direction —
    parallelizing the treap component: each reader role (left-most /
    right-most) is split across that many workers, worker [k] owning the
    4096-word address blocks congruent to [k]; every shard has its own
    sequential treap, so correctness needs no concurrent treap.  The default
    [1] is the paper's three-treap-worker configuration. *)
val make : ?seed:int -> ?queue_capacity:int -> ?reader_shards:int -> unit -> t

(** The generic handle (driver/report/drain) for this instance. *)
val detector : t -> Detector.t

type step =
  [ `Worked of int  (** progressed; payload = treap-node visits *)
  | `Idle  (** nothing to do right now *)
  | `Done  (** this worker's work is complete for the whole run *) ]

val writer_step : t -> step

(** Shard 0 of each role (the only shard in the default configuration). *)
val lreader_step : t -> step

val rreader_step : t -> step

(** All reader workers, named ("lreader", "rreader" for one shard;
    "lreader0", "rreader1", … when sharded). *)
val reader_steps : t -> (string * (unit -> step)) list

(** Run all three treap workers round-robin to completion. *)
val drain : t -> unit

(** Number of strands the writer worker has collected so far. *)
val collected : t -> int

(** [iter_shard_subranges ~shards ~shard iv f] — the block-aligned subranges
    of [iv] owned by [shard]; the shards partition every interval exactly.
    Exposed for tests and for building custom shard workers. *)
val iter_shard_subranges : shards:int -> shard:int -> Interval.t -> (Interval.t -> unit) -> unit

(** The three treap workers packaged as simulator actors.  [cost] converts a
    step's treap-node visit count into virtual cycles (the harness supplies
    the calibrated model; the default charges a small constant plus a
    per-visit cost). *)
val sim_actors : ?cost:(int -> int) -> t -> Sim_exec.actor list
