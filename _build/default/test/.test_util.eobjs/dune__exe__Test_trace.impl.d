test/test_trace.ml: Ahq Alcotest Atomic Domain List Option Printf Sp_order Srec Trace
