test/test_treap.ml: Alcotest Array Int Interval Itreap List Option Printf QCheck QCheck_alcotest
