lib/exec/seq_exec.mli: Aspace Hooks
