(* Tests for the §VI extension: address-sharded reader treap workers.

   Correctness: sharding must not change race verdicts (every address is
   owned by exactly one shard per role, so exactly one L-treap and one
   R-treap see each access).  Performance: the per-reader work drops, which
   is the point of the extension. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let run_sharded ?(n_workers = 4) ~shards prog =
  let p = Pint_detector.make ~reader_shards:shards () in
  let det = Pint_detector.detector p in
  let config =
    { Sim_exec.default_config with n_workers; seed = 5; stages = Pint_detector.stages p }
  in
  let r = Sim_exec.run ~config ~driver:det.Detector.driver prog in
  (det, r)

let test_shard_subranges () =
  (* the shard decomposition partitions any interval exactly *)
  let block = 4096 in
  List.iter
    (fun (lo, hi, shards) ->
      let iv = Interval.make lo hi in
      let seen = Hashtbl.create 64 in
      for shard = 0 to shards - 1 do
        Pint_detector.iter_shard_subranges ~shards ~shard iv (fun sub ->
            check_bool "within" true (sub.Interval.lo >= lo && sub.Interval.hi <= hi);
            check_int "single block" (sub.Interval.lo / block) (sub.Interval.hi / block);
            check_int "right shard" shard (sub.Interval.lo / block mod shards);
            for a = sub.Interval.lo to sub.Interval.hi do
              if Hashtbl.mem seen a then Alcotest.failf "address %d covered twice" a;
              Hashtbl.add seen a ()
            done)
      done;
      check_int "exact cover" (Interval.width iv) (Hashtbl.length seen))
    [
      (0, 100, 2);
      (4000, 4200, 2);
      (0, 20000, 3);
      (12287, 12289, 4);
      (8192, 8192, 2);
      (0, 50000, 5);
    ]

let subranges ~shards ~shard iv =
  let acc = ref [] in
  Pint_detector.iter_shard_subranges ~shards ~shard iv (fun sub ->
      acc := (sub.Interval.lo, sub.Interval.hi) :: !acc);
  List.rev !acc

let check_ranges = Alcotest.(check (list (pair int int)))

let test_shard_subranges_straddle () =
  let block = 4096 in
  (* two blocks: the split lands exactly on the block boundary *)
  let iv = Interval.make (block - 6) (block + 4) in
  check_ranges "straddle shard0" [ (block - 6, block - 1) ] (subranges ~shards:2 ~shard:0 iv);
  check_ranges "straddle shard1" [ (block, block + 4) ] (subranges ~shards:2 ~shard:1 iv);
  (* three blocks, two shards: the outer blocks are both ≡ 0 (mod 2), so
     shard 0 owns two disjoint subranges of the same interval *)
  let iv3 = Interval.make (block - 1) (2 * block) in
  check_ranges "straddle3 shard0"
    [ (block - 1, block - 1); (2 * block, 2 * block) ]
    (subranges ~shards:2 ~shard:0 iv3);
  check_ranges "straddle3 shard1" [ (block, (2 * block) - 1) ] (subranges ~shards:2 ~shard:1 iv3)

let test_shard_subranges_single_word () =
  let block = 4096 in
  List.iter
    (fun addr ->
      let iv = Interval.make addr addr in
      let owner = addr / block mod 3 in
      for shard = 0 to 2 do
        let want = if shard = owner then [ (addr, addr) ] else [] in
        check_ranges (Printf.sprintf "word %d shard %d" addr shard) want
          (subranges ~shards:3 ~shard iv)
      done)
    [ 0; block - 1; block; (2 * block) + 17 ]

let test_shard_subranges_more_shards_than_blocks () =
  let block = 4096 in
  (* a 2-block interval under 5 shards: shards 2..4 own nothing *)
  let iv = Interval.make 10 (block + 10) in
  check_ranges "shard0" [ (10, block - 1) ] (subranges ~shards:5 ~shard:0 iv);
  check_ranges "shard1" [ (block, block + 10) ] (subranges ~shards:5 ~shard:1 iv);
  for shard = 2 to 4 do
    check_ranges (Printf.sprintf "shard%d empty" shard) [] (subranges ~shards:5 ~shard iv)
  done;
  (* shards = 1 never splits, whatever the interval *)
  let wide = Interval.make 0 (10 * block) in
  check_ranges "unsharded passthrough" [ (0, 10 * block) ] (subranges ~shards:1 ~shard:0 wide)

let racy_prog () =
  let b = Fj.alloc_f 8 in
  Fj.spawn (fun () -> Membuf.set_f b 3 1.0);
  Fj.spawn (fun () -> Membuf.set_f b 3 2.0);
  Fj.sync ()

let test_sharded_detects_race () =
  List.iter
    (fun shards ->
      let det, _ = run_sharded ~shards racy_prog in
      check_bool
        (Printf.sprintf "race found with %d shards" shards)
        true
        (Detector.races det <> []))
    [ 1; 2; 4 ]

let test_sharded_random_equivalence () =
  let nbuf = 12 in
  for seed = 1 to 20 do
    let rng = Rng.create (seed * 53) in
    let actions = Test_sim_progs.random_program rng nbuf in
    let prog () =
      let buf = Fj.alloc_f nbuf in
      Test_sim_progs.interpret buf actions ()
    in
    let sd = Stint.make () in
    let _ = Seq_exec.run ~driver:sd.Detector.driver prog in
    let expected = Detector.races sd <> [] in
    List.iter
      (fun shards ->
        let det, _ = run_sharded ~shards prog in
        if Detector.races det <> [] <> expected then
          Alcotest.failf "seed %d shards %d: got %b want %b" seed shards
            (Detector.races det <> []) expected)
      [ 2; 3 ]
  done

let test_sharded_workloads_clean () =
  List.iter
    (fun (name, size, base) ->
      let w = Registry.find name in
      let inst = w.Workload.make ~size ~base in
      let det, r = run_sharded ~n_workers:6 ~shards:3 inst.Workload.run in
      check_bool (name ^ " correct") true (inst.Workload.check ());
      check_int (name ^ " race free") 0 (List.length (Detector.races det));
      (* every strand flows through every shard worker *)
      let d = det.Detector.diagnostics () in
      let get k = List.assoc k d in
      check_bool (name ^ " l shards processed all") true
        (int_of_float (get "l_strands") = r.Sim_exec.n_strands);
      check_bool (name ^ " r shards processed all") true
        (int_of_float (get "r_strands") = r.Sim_exec.n_strands))
    [ ("mmul", 32, 8); ("sort", 2048, 32); ("heat", 32, 4) ]

let test_sharding_reduces_reader_bottleneck () =
  (* the extension's point: on a treap-bound configuration, the max reader
     clock drops substantially when the readers are sharded.  mmul's buffers
     span many 4096-word blocks, so the split is effective. *)
  let w = Registry.find "mmul" in
  let time shards =
    let m =
      Systems.run ~shards ~workload:w ~size:w.Workload.default_size ~base:w.Workload.default_base
        ~workers:17 Systems.Pint_sys
    in
    m.Systems.time
  in
  let t1 = time 1 and t4 = time 4 in
  check_bool (Printf.sprintf "sharded faster (%.2f -> %.2f vsec)" (Systems.vsec t1) (Systems.vsec t4))
    true
    (t4 < 0.6 *. t1)

let test_sharded_heap_and_frames () =
  let det, _ =
    run_sharded ~n_workers:4 ~shards:2 (fun () ->
        for _ = 1 to 6 do
          Fj.spawn (fun () ->
              let x = Fj.alloc_f 16 in
              Membuf.fill_f x 0 16 1.0;
              Fj.free_f x;
              Fj.with_frame ~words:8 (fun fr -> Membuf.set_f fr 0 1.0))
        done;
        Fj.sync ())
  in
  check_int "no false races" 0 (List.length (Detector.races det))

let () =
  Alcotest.run "pint_sharded"
    [
      ( "sharding",
        [
          Alcotest.test_case "subrange partition" `Quick test_shard_subranges;
          Alcotest.test_case "subrange straddle" `Quick test_shard_subranges_straddle;
          Alcotest.test_case "subrange single word" `Quick test_shard_subranges_single_word;
          Alcotest.test_case "subrange shards>blocks" `Quick
            test_shard_subranges_more_shards_than_blocks;
          Alcotest.test_case "detects race" `Quick test_sharded_detects_race;
          Alcotest.test_case "random equivalence" `Quick test_sharded_random_equivalence;
          Alcotest.test_case "workloads clean" `Quick test_sharded_workloads_clean;
          Alcotest.test_case "reduces bottleneck" `Quick test_sharding_reduces_reader_bottleneck;
          Alcotest.test_case "heap+frames" `Quick test_sharded_heap_and_frames;
        ] );
    ]
