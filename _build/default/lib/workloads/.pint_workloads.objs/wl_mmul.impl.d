lib/workloads/wl_mmul.ml: Access Fj Float Matview Rng Workload
