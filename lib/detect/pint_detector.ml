(* The N-shard access-history topology (ROADMAP item 1, generalizing the
   paper's fixed {writer, lreader, rreader} triple and the §VI sharding
   sketch): address-range shard k owns the [Lanes.shard_block]-word blocks
   congruent to k and runs its own {writer, lreader, rreader} treap triple
   off its own AHQ lane.  Race checks are per-address, so routing every
   block-aligned subrange to exactly one shard preserves the race set while
   every treap stays sequential — no concurrent treap is ever needed.
   [shards = 1] is the paper's configuration: one lane, three treap
   workers, nothing ever split.

   Stage/worker layout for N shards (stage index = position below):
     [0]            the collector: scans traces in DAG order (Algorithm 2),
                    splits each strand's interval batch per shard, commits
                    the pieces to all N lanes atomically, and doubles as
                    shard 0's writer treap worker (processing its piece
                    synchronously, exactly the paper's writer at N = 1);
     [1 .. N-1]     shard k's writer treap worker, consuming lane k;
     [N .. 2N-1]    shard k's left-most reader treap worker;
     [2N .. 3N-1]   shard k's right-most reader treap worker.
   Every lane carries the full DAG-ordered strand stream (restricted to the
   shard's address range), so per-shard clear/free ordering is preserved
   verbatim. *)

(* Re-exported shard-decomposition helper (the router owns the scheme). *)
let iter_shard_subranges ~shards ~shard iv f = Lanes.iter_subranges ~shards ~shard iv f

(* ------------------------------------------------------------- stage roles *)

type role = Writer | Lreader | Rreader

let role_prefix = function Writer -> "writer" | Lreader -> "lreader" | Rreader -> "rreader"

(* Stage/track names: the paper's bare "writer"/"lreader"/"rreader" at one
   shard (so the default topology's tracks, clocks and diagnostics keep
   their historical names), "writer2"/"lreader0"/… when sharded.  Obs
   tracks, Chrome-trace threads and [Systems.run] stage clocks all key on
   these, so this is the single naming authority. *)
let stage_name_of ~shards role k =
  if shards = 1 then role_prefix role else role_prefix role ^ string_of_int k

let role_of_stage_name name =
  let strip prefix =
    let lp = String.length prefix and ln = String.length name in
    if ln >= lp && String.sub name 0 lp = prefix then
      if ln = lp then Some 0 else int_of_string_opt (String.sub name lp (ln - lp))
    else None
  in
  (* reader prefixes first: "writer" must not swallow nothing, but no reader
     name starts with "writer" and vice versa — order is just defensive *)
  match strip "lreader" with
  | Some k -> Some (Lreader, k)
  | None -> (
      match strip "rreader" with
      | Some k -> Some (Rreader, k)
      | None -> ( match strip "writer" with Some k -> Some (Writer, k) | None -> None))

(* Mean over the clocks of one role's stages — the per-role reduction the
   harness uses instead of pattern-matching stage-name prefixes. *)
let role_mean role clocks =
  let tot = ref 0. and n = ref 0 in
  List.iter
    (fun (name, c) ->
      match role_of_stage_name name with
      | Some (ro, _) when ro = role ->
          tot := !tot +. float_of_int c;
          incr n
      | _ -> ())
    clocks;
  if !n = 0 then 0. else !tot /. float_of_int !n

(* --------------------------------------------------------------- run state *)

(* What a lane carries: the strand record plus this shard's block-aligned
   subranges of its read/write batches, computed once at collect time.  The
   record itself is shared across lanes (its done_count/pred atomics must
   be the strand's, not a copy's); at one shard the interval arrays are the
   record's own — the split only materializes when there is something to
   split. *)
type lane_rec = {
  u : Srec.t;
  s_reads : Interval.t array;
  s_writes : Interval.t array;
}

(* State that exists only while a run is active. *)
type run = {
  ctx : Hooks.ctx;
  coals : Coalescer.t array; (* per core worker *)
  cur_traces : Trace.t array; (* per core worker *)
  registry : Trace.t Vec.t; (* active traces, collector-side scanned *)
  reg_lock : Mutex.t;
  lanes : lane_rec Lanes.t; (* one AHQ lane per shard *)
  consume_bufs : lane_rec array array; (* per consuming stage, reusable; slot 0 unused *)
  writers : Sp_order.strand Itreap.t array; (* one per shard *)
  lreaders : Sp_order.strand Itreap.t array;
  rreaders : Sp_order.strand Itreap.t array;
  core_done : bool Atomic.t;
  collect_done : bool Atomic.t;
  mutable scan_cursor : int;
  mutable n_collected : int;
  (* Collector-side split accounting: source intervals seen vs per-shard
     subranges committed; the ratio is the split rate (1.0 = no interval
     ever straddled an ownership boundary). *)
  mutable split_intervals : int;
  mutable split_subranges : int;
  stage_strands : int array; (* strands processed, per stage index *)
  mutable next_trace_id : int;
  (* Aggregate workload counters, bumped from [on_finish] which runs on
     every core-worker domain concurrently under [Par_exec] — hence atomic
     (caught by pint_lint R3: these were plain mutable ints). *)
  agg_intervals : int Atomic.t;
  agg_work : int Atomic.t;
  agg_raw_events : int Atomic.t;
  (* observability (all Evring.null / unregistered when profiling is off):
     [obs_stage].(i) is stage i's track; [lat_collect] the finish→collected
     histogram (collector-owned); [lat_done].(i) the finish→all-treaps-done
     histogram bumped by whichever stage performed the last done_count
     increment, merged into the session's registered histogram once the
     pipeline drains ([lat_published] latches that hand-off). *)
  obs_stage : Evring.t array;
  lat_collect : Histo.t;
  lat_done : Histo.t array;
  done_target : int; (* 3 · shards: every stage processes every strand *)
  mutable lat_published : bool;
}

type t = {
  seed : int;
  queue_capacity : int;
  shards : int;
  batch : int;
  report : Report.t;
  mutable run : run option;
  mutable stage_list : Stage.t list;
  mutable last_diags : (string * float) list;
  mutable obs : Obs.t;
  (* Lane backpressure window (Backoff rounds the collector rides out a
     saturated lane before rejecting a commit).  0 — the default — is
     mandatory under single-threaded drivers; real-domain runs opt in via
     [set_backpressure] before the run starts.  Applied to the lanes at
     wiring time (driver). *)
  mutable bp_rounds : int;
}

let dummy_trace = Trace.create ~id:(-1) ~owner:(-1)

(* Placeholder filling the reusable batch buffers before their first use;
   never processed (peek_batch_into reports how many slots are live). *)
let dummy_lane_rec =
  lazy
    (let _, root = Sp_order.create () in
     { u = Srec.make ~uid:(-1) root; s_reads = [||]; s_writes = [||] })

let make ?(seed = 4242) ?(queue_capacity = 4096) ?(shards = 1)
    ?(batch = Ahq.default_batch) () =
  if shards < 1 then invalid_arg "Pint_detector.make: shards must be >= 1";
  if batch < 1 then invalid_arg "Pint_detector.make: batch must be >= 1";
  {
    seed;
    queue_capacity;
    shards;
    batch;
    report = Report.create ();
    run = None;
    stage_list = [];
    last_diags = [];
    obs = Obs.disabled;
    bp_rounds = 0;
  }

let shards t = t.shards
let set_obs t obs = t.obs <- obs

(* Recommended backpressure window for real-domain runs: the Backoff
   ladder's spin rungs plus ~50 parked sleeps (≈2.5 ms at 50 µs each) —
   long enough to ride out a treap worker's worst batch, short enough that
   a genuinely wedged lane still surfaces as a reject/stall. *)
let recommended_bp_rounds = 64

let set_backpressure t ~rounds =
  if rounds < 0 then invalid_arg "Pint_detector.set_backpressure: rounds must be >= 0";
  t.bp_rounds <- rounds;
  match t.run with Some r -> Lanes.set_backpressure r.lanes ~rounds | None -> ()
let stage_name t role k = stage_name_of ~shards:t.shards role k

(* Stage index layout (see the header comment). *)
let stage_name_of_idx t i =
  let s = t.shards in
  if i < s then stage_name t Writer i
  else if i < 2 * s then stage_name t Lreader (i - s)
  else stage_name t Rreader (i - (2 * s))

let active t = match t.run with Some r -> r | None -> failwith "Pint: no active run"

(* ------------------------------------------------------- core-worker side *)

let new_trace r ~wid =
  Mutex.lock r.reg_lock;
  let id = r.next_trace_id in
  r.next_trace_id <- id + 1;
  let tr = Trace.create ~id ~owner:wid in
  Vec.push r.registry tr;
  Mutex.unlock r.reg_lock;
  r.cur_traces.(wid) <- tr;
  tr

let driver t (ctx : Hooks.ctx) =
  let owner_eq = ( == ) in
  let s = t.shards in
  let n_stages = 3 * s in
  let obs_stage = Array.init n_stages (fun i -> Obs.track t.obs (stage_name_of_idx t i)) in
  let lanes =
    (* lane 0 has no writer cursor (the collector processes shard 0's piece
       synchronously at collect time, exactly the paper's writer worker) *)
    Lanes.create ~capacity:t.queue_capacity ~shards:s
      ~readers_of_lane:(fun k -> if k = 0 then 2 else 3)
      ()
  in
  Lanes.set_backpressure lanes ~rounds:t.bp_rounds;
  (* Lane obs wiring.  One shard: the lane's producer ring IS the writer
     stage's track (the historical single-queue occupancy counter).  When
     sharded, each lane gets its own "lane<k>" track so per-shard occupancy
     renders as separate Chrome counter tracks; all of them are emitted
     from the collector stage, which is the single producer on every
     lane. *)
  for k = 0 to s - 1 do
    let writer_ring =
      if s = 1 then obs_stage.(0) else Obs.track t.obs (Printf.sprintf "lane%d" k)
    in
    let readers =
      if k = 0 then [| obs_stage.(s); obs_stage.(2 * s) |]
      else [| obs_stage.(k); obs_stage.(s + k); obs_stage.(2 * s + k) |]
    in
    Ahq.set_obs (Lanes.lane lanes k) ~writer:writer_ring ~readers
  done;
  let r =
    {
      ctx;
      coals = Array.init ctx.n_workers (fun _ -> Coalescer.create ());
      cur_traces = Array.make ctx.n_workers dummy_trace;
      registry = Vec.create ~capacity:64 dummy_trace;
      reg_lock = Mutex.create ();
      lanes;
      consume_bufs =
        Array.init n_stages (fun _ -> Array.make t.batch (Lazy.force dummy_lane_rec));
      (* shard 0's writer keeps the historical seed so the one-shard treap
         shapes (and hence visit counts) match the paper configuration and
         STINT's matched-seed comparison exactly *)
      writers =
        Array.init s (fun k ->
            Itreap.create ~seed:(if k = 0 then t.seed else t.seed + 211 + k) ~owner_eq ());
      lreaders = Array.init s (fun k -> Itreap.create ~seed:(t.seed + 1 + k) ~owner_eq ());
      rreaders = Array.init s (fun k -> Itreap.create ~seed:(t.seed + 101 + k) ~owner_eq ());
      core_done = Atomic.make false;
      collect_done = Atomic.make false;
      scan_cursor = 0;
      n_collected = 0;
      split_intervals = 0;
      split_subranges = 0;
      stage_strands = Array.make n_stages 0;
      next_trace_id = 0;
      agg_intervals = Atomic.make 0;
      agg_work = Atomic.make 0;
      agg_raw_events = Atomic.make 0;
      obs_stage;
      lat_collect = Obs.histo t.obs "lat.finish_to_collect";
      lat_done = Array.init n_stages (fun _ -> Histo.create ());
      done_target = n_stages;
      lat_published = false;
    }
  in
  for wid = 0 to ctx.n_workers - 1 do
    ignore (new_trace r ~wid)
  done;
  t.run <- Some r;
  List.iter Stage.reset_metrics t.stage_list;
  {
    Hooks.sink =
      (fun ~wid ->
        let coal = r.coals.(wid) in
        {
          Access.on_read = (fun ~addr ~len -> Coalescer.add_read coal ~addr ~len);
          on_write = (fun ~addr ~len -> Coalescer.add_write coal ~addr ~len);
          on_free =
            (fun ~base ~len ->
              let u = ctx.current ~wid in
              u.frees <- (base, len) :: u.frees);
          on_compute = (fun ~amount:_ -> ());
        });
    on_start =
      (fun ~wid _rec kind ->
        match kind with
        | Events.S_cont { stolen = true } | Events.S_after_sync { trivial = false } ->
            Trace.close r.cur_traces.(wid);
            ignore (new_trace r ~wid)
        | Events.S_root | Events.S_child | Events.S_cont { stolen = false }
        | Events.S_after_sync { trivial = true } ->
            ());
    on_finish =
      (fun ~wid u _kind ->
        let reads, writes = Coalescer.finish r.coals.(wid) in
        u.Srec.reads <- reads;
        u.Srec.writes <- writes;
        ignore (Atomic.fetch_and_add r.agg_intervals (Array.length reads + Array.length writes));
        ignore (Atomic.fetch_and_add r.agg_work u.Srec.work);
        ignore (Atomic.fetch_and_add r.agg_raw_events (u.Srec.raw_reads + u.Srec.raw_writes));
        Trace.push r.cur_traces.(wid) u);
    on_done =
      (fun () ->
        Array.iter Trace.close r.cur_traces;
        Atomic.set r.core_done true);
  }

(* ------------------------------------------------------ treap-worker side *)

let process_clears ?(shards = 1) ?(shard = 0) treap (u : Srec.t) =
  let clear (b, l) =
    iter_shard_subranges ~shards ~shard (Interval.make b (b + l - 1)) (fun sub ->
        Itreap.clear_range treap sub)
  in
  List.iter clear u.clears;
  List.iter clear u.frees

(* The per-shard split of one interval batch: two passes (count, fill) so
   the result is an exact-sized array.  Only reached when shards > 1. *)
let split_owned ~shards ~shard (ivs : Interval.t array) =
  let n = ref 0 in
  Array.iter (fun iv -> iter_shard_subranges ~shards ~shard iv (fun _ -> incr n)) ivs;
  if !n = 0 then [||]
  else begin
    let out = Array.make !n (Interval.make 0 0) in
    let i = ref 0 in
    Array.iter
      (fun iv ->
        iter_shard_subranges ~shards ~shard iv (fun sub ->
            out.(!i) <- sub;
            incr i))
      ivs;
    out
  end

let lane_payload t (u : Srec.t) k =
  if t.shards = 1 then { u; s_reads = u.Srec.reads; s_writes = u.Srec.writes }
  else
    {
      u;
      s_reads = split_owned ~shards:t.shards ~shard:k u.Srec.reads;
      s_writes = split_owned ~shards:t.shards ~shard:k u.Srec.writes;
    }

(* Shard k's writer-treap work for one record: check this shard's read
   subranges against the last-writer treap (Write_read), check-and-insert
   the write subranges (Write_write), apply this shard's share of the
   clears/frees.  At one shard this is exactly the paper's writer worker
   minus the heap recycling, which stays with the collector. *)
let process_writer t r ~shard (lr : lane_rec) =
  let treap = r.writers.(shard) in
  let v0 = Itreap.visits treap in
  let u = lr.u in
  let s = u.Srec.sp in
  let check kind iv =
    Itreap.query treap iv ~f:(fun seg prior ->
        if Policies.race r.ctx.sp ~prior ~current:s then
          Report.add t.report kind ~prior:(Sp_order.id prior) ~current:(Sp_order.id s)
            (Interval.inter seg iv))
  in
  Array.iter (fun iv -> check Report.Write_read iv) lr.s_reads;
  Array.iter
    (fun iv ->
      check Report.Write_write iv;
      Itreap.insert_replace treap iv s)
    lr.s_writes;
  process_clears ~shards:t.shards ~shard treap u;
  r.stage_strands.(shard) <- r.stage_strands.(shard) + 1;
  Itreap.visits treap - v0

(* Shard k's reader-treap work: the lane record's subranges are already
   this shard's share, so no re-splitting — check writes against the reader
   treap (Read_write), insert reads under the role's keep policy. *)
let process_reader t r ~right ~shard ~sidx (lr : lane_rec) =
  let treap, keep =
    if right then (r.rreaders.(shard), Policies.keep_rightmost)
    else (r.lreaders.(shard), Policies.keep_leftmost)
  in
  let v0 = Itreap.visits treap in
  let u = lr.u in
  let s = u.Srec.sp in
  Array.iter
    (fun iv ->
      Itreap.query treap iv ~f:(fun seg prior ->
          if Policies.race r.ctx.sp ~prior ~current:s then
            Report.add t.report Report.Read_write ~prior:(Sp_order.id prior)
              ~current:(Sp_order.id s) (Interval.inter seg iv)))
    lr.s_writes;
  Array.iter
    (fun iv ->
      Itreap.insert_merge treap iv s ~keep:(fun ~incumbent -> keep r.ctx.sp ~s ~incumbent))
    lr.s_reads;
  process_clears ~shards:t.shards ~shard treap u;
  r.stage_strands.(sidx) <- r.stage_strands.(sidx) + 1;
  Itreap.visits treap - v0

(* Last done_count bump (the 3N'th): the strand has passed all treap
   workers.  [slot] indexes the bumping stage's private histogram; the
   ring is the bumping stage's own track, so the emit stays single-owner. *)
let note_complete r ~slot ~ring (u : Srec.t) =
  if Evring.enabled ring then begin
    let ts = Evring.now ring in
    Evring.emit_at ring ~ts ~kind:Ev.complete ~arg:u.Srec.uid;
    Histo.add r.lat_done.(slot) (ts - u.Srec.obs_ts)
  end

let bump_done r ~slot ~ring (u : Srec.t) =
  let prev = Atomic.fetch_and_add u.Srec.done_count 1 in
  if prev = r.done_target - 1 then note_complete r ~slot ~ring u

(* Algorithm 2: Collect, generalized to N lanes.  The commit is
   all-or-nothing — either every shard's lane accepts the strand or none
   does (and the collector stalls) — so a strand is never half-visible to
   the shard set and per-lane DAG order is preserved. *)
let collect t r (u : Srec.t) =
  let p0 = ref None in
  let subs = ref 0 in
  let committed =
    Lanes.enqueue_each r.lanes (fun k ->
        let p = lane_payload t u k in
        subs := !subs + Array.length p.s_reads + Array.length p.s_writes;
        if k = 0 then p0 := Some p;
        p)
  in
  if not committed then false
  else begin
    (match u.Srec.child with
    | Some c when u.Srec.is_spawn || u.Srec.child_is_sync -> Atomic.decr c.Srec.pred
    | _ -> ());
    r.n_collected <- r.n_collected + 1;
    r.split_intervals <- r.split_intervals + Array.length u.Srec.reads + Array.length u.Srec.writes;
    r.split_subranges <- r.split_subranges + !subs;
    let ring = r.obs_stage.(0) in
    (if Evring.enabled ring then begin
       let ts = Evring.now ring in
       Evring.emit_at ring ~ts ~kind:Ev.collect ~arg:u.Srec.uid;
       if t.shards > 1 then Evring.emit_at ring ~ts ~kind:Ev.split ~arg:!subs;
       Histo.add r.lat_collect (ts - u.Srec.obs_ts)
     end);
    (* under Par_exec downstream stages can outrun the collector's own
       bump, so the collector may observe the completing increment *)
    bump_done r ~slot:0 ~ring u;
    (match !p0 with
    | Some p -> ignore (process_writer t r ~shard:0 p : int)
    | None -> assert false (* enqueue_each evaluated f 0 iff it committed *));
    (* the delayed frees become real here: the collector owns heap
       recycling (§III-D, §III-F), after shard 0's treaps saw the clear *)
    List.iter (fun (b, l) -> Aspace.heap_free r.ctx.aspace ~base:b ~len:l) u.Srec.frees;
    true
  end

let writer_step t : Step.t =
  let r = active t in
  let n = Vec.length r.registry in
  if n = 0 then
    if Atomic.get r.core_done then begin
      Atomic.set r.collect_done true;
      Step.finished
    end
    else Step.idle
  else begin
    (* scan active traces round-robin from the cursor *)
    let rec scan i tried =
      let len = Vec.length r.registry in
      if len = 0 || tried >= len then Step.idle
      else begin
        let idx = i mod len in
        let tr = Vec.get r.registry idx in
        if Trace.drained tr then begin
          (* retire: swap-remove under the registry lock *)
          Mutex.lock r.reg_lock;
          let last = Vec.length r.registry - 1 in
          Vec.set r.registry idx (Vec.get r.registry last);
          ignore (Vec.pop r.registry);
          Mutex.unlock r.reg_lock;
          scan idx tried
        end
        else if Trace.unlocked tr then begin
          match Trace.peek tr with
          | Some u ->
              let v0 = Itreap.visits r.writers.(0) in
              if collect t r u then begin
                Trace.pop tr;
                r.scan_cursor <- idx;
                Step.worked (Itreap.visits r.writers.(0) - v0)
              end
              else Step.stalled (* some lane full: stall until its consumers catch up *)
          | None -> scan (idx + 1) (tried + 1)
        end
        else scan (idx + 1) (tried + 1)
      end
    in
    match scan r.scan_cursor 0 with
    | `Idle when Vec.length r.registry = 0 && Atomic.get r.core_done ->
        Atomic.set r.collect_done true;
        Step.finished
    | other -> other
  end

(* Shard k's (k >= 1) writer treap worker: consume lane k through cursor 0
   in batches, mirroring the reader consumption pattern. *)
let shard_writer_step t k : Step.t =
  let r = active t in
  let lane = Lanes.lane r.lanes k in
  let buf = r.consume_bufs.(k) in
  let n = Ahq.peek_batch_into lane 0 buf in
  if n = 0 then if Atomic.get r.collect_done then Step.finished else Step.idle
  else begin
    let visits = ref 0 in
    for i = 0 to n - 1 do
      let lr = buf.(i) in
      visits := !visits + process_writer t r ~shard:k lr;
      bump_done r ~slot:k ~ring:r.obs_stage.(k) lr.u
    done;
    Ahq.advance_n lane 0 n;
    Step.worked ~records:n !visits
  end

(* Queue-reader index [idx] maps to role L for idx < shards (shard = idx)
   and role R otherwise (shard = idx - shards).  Readers consume their
   shard's lane in batches: one cursor update and one slot-recycling scan
   per batch, through a reusable per-stage buffer so the batch itself
   allocates nothing. *)
let reader_step_idx t idx : Step.t =
  let r = active t in
  let s = t.shards in
  let right = idx >= s in
  let shard = if right then idx - s else idx in
  let sidx = s + idx in
  (* lane 0 has no writer cursor: {lreader, rreader} sit at {0, 1} there
     and at {1, 2} on every other lane (cursor 0 is the shard writer's) *)
  let cursor = (if right then 1 else 0) + if shard = 0 then 0 else 1 in
  let lane = Lanes.lane r.lanes shard in
  let buf = r.consume_bufs.(sidx) in
  let n = Ahq.peek_batch_into lane cursor buf in
  if n = 0 then if Atomic.get r.collect_done then Step.finished else Step.idle
  else begin
    let visits = ref 0 in
    for i = 0 to n - 1 do
      let lr = buf.(i) in
      visits := !visits + process_reader t r ~right ~shard ~sidx lr;
      bump_done r ~slot:sidx ~ring:r.obs_stage.(sidx) lr.u
    done;
    Ahq.advance_n lane cursor n;
    Step.worked ~records:n !visits
  end

let lreader_step t = reader_step_idx t 0
let rreader_step t = reader_step_idx t t.shards

let reader_steps t =
  List.init (2 * t.shards) (fun idx ->
      let role = if idx < t.shards then Lreader else Rreader in
      let k = if idx < t.shards then idx else idx - t.shards in
      (stage_name t role k, fun () -> reader_step_idx t idx))

(* The pipeline stages, in stage-index order: the collector, the shard
   writer workers, then the [2·N] reader workers, registered with the
   engine.  The same stage values are used by every executor (the simulator
   steps them in virtual time, the multi-domain executor gives each its own
   domain, [drain] round-robins them), so the per-stage metrics accumulate
   in one place regardless of who drives the pipeline. *)
let default_step_cost ~records ~visits = (100 * records) + (5 * visits)

let stages ?(cost = default_step_cost) t =
  let s = t.shards in
  let writers =
    List.init s (fun k ->
        let step = if k = 0 then fun () -> writer_step t else fun () -> shard_writer_step t k in
        Stage.make ~name:(stage_name t Writer k) ~cost step)
  in
  let readers =
    List.map (fun (name, step) -> Stage.make ~name ~cost step) (reader_steps t)
  in
  let all = writers @ readers in
  t.stage_list <- all;
  all

let current_stages t = match t.stage_list with [] -> stages t | l -> l

(* The shard-micropool grouping of the stage list: pool k is shard k's
   {writer, lreader, rreader} triple, so one pool domain owns everything
   that touches lane k and its treaps (Micropool pins the group for the
   whole run).  This is the authoritative grouping — the stage-index layout
   is private to this module. *)
let stage_pools t =
  let sl = Array.of_list (current_stages t) in
  let s = t.shards in
  assert (Array.length sl = 3 * s);
  List.init s (fun k -> [ sl.(k); sl.(s + k); sl.(2 * s + k) ])

(* The treap-side critical path under the stages' cost model: the slowest
   single stage, which is what bounds detection when every stage has its
   own worker.  Sharding's whole point is pushing this down — records per
   stage stay (at most) the strand count while each stage's visit share
   shrinks. *)
let detection_span t =
  List.fold_left
    (fun acc s ->
      let m = Stage.metrics s in
      Float.max acc (float_of_int (Stage.cost s ~records:m.Stage.records ~visits:m.Stage.visits)))
    0. t.stage_list

(* After the pipeline has drained, merge the per-stage finish→done
   histograms into the session's registered aggregate.  Latched: drain can
   be called repeatedly (Detector.races drains on every query), the merge
   must happen once.  Runs on the draining thread after every stage is
   done, so reading the per-stage histograms is race-free. *)
let publish_latencies t =
  match t.run with
  | Some r when Obs.enabled t.obs && not r.lat_published ->
      r.lat_published <- true;
      let dst = Obs.histo t.obs "lat.finish_to_done" in
      Array.iter (fun src -> Histo.merge_into ~src ~dst) r.lat_done
  | _ -> ()

let drain t =
  Pipeline.drive (Pipeline.of_stages (current_stages t));
  publish_latencies t

let collected t = match t.run with Some r -> r.n_collected | None -> 0

let stage_diagnostics t =
  match t.stage_list with
  | [] -> []
  | sl ->
      let collector_name = stage_name t Writer 0 in
      let consumers = List.filter (fun s -> Stage.name s <> collector_name) sl in
      let sum f = List.fold_left (fun acc s -> acc + f (Stage.metrics s)) 0 consumers in
      let csteps = sum (fun m -> m.Stage.steps) and crecords = sum (fun m -> m.Stage.records) in
      let writer_stalls =
        match List.find_opt (fun s -> Stage.name s = collector_name) sl with
        | Some w -> (Stage.metrics w).Stage.stalls
        | None -> 0
      in
      ("writer_stalls", float_of_int writer_stalls)
      :: ("ahq_batch", float_of_int crecords /. float_of_int (max 1 csteps))
      :: ("detect_span", detection_span t)
      :: Pipeline.diagnostics (Pipeline.of_stages sl)

let diagnostics t () =
  match t.run with
  | None -> t.last_diags
  | Some r ->
      let s = t.shards in
      let sum f arr = Array.fold_left (fun acc x -> acc +. f x) 0. arr in
      let sum_role f arr = Array.fold_left (fun a tr -> a + f tr) 0 arr in
      let sum_treaps f = sum_role f r.writers + sum_role f r.lreaders + sum_role f r.rreaders in
      let role_strands lo =
        float_of_int (Array.fold_left ( + ) 0 (Array.sub r.stage_strands lo s))
        /. float_of_int s
      in
      let fast = sum_treaps Itreap.fastpath_hits and slow = sum_treaps Itreap.slowpath_hits in
      [
        ("fastpath_hits", float_of_int fast);
        ("slowpath_hits", float_of_int slow);
        ("fastpath_rate", float_of_int fast /. float_of_int (max 1 (fast + slow)));
        ("scratch_reuse", float_of_int (sum_treaps Itreap.scratch_reuse));
        ("queue_min_rescans", float_of_int (Lanes.total_min_rescans r.lanes));
        ( "coal_sort_skips",
          sum (fun c -> float_of_int (fst (Coalescer.sort_stats c))) r.coals );
        ("coal_sorts", sum (fun c -> float_of_int (snd (Coalescer.sort_stats c))) r.coals);
        ("collected", float_of_int r.n_collected);
        ("writer_strands", role_strands 0);
        ("l_strands", role_strands s);
        ("r_strands", role_strands (2 * s));
        ("writer_visits", float_of_int (sum_role Itreap.visits r.writers));
        ("lreader_visits", float_of_int (sum_role Itreap.visits r.lreaders));
        ("rreader_visits", float_of_int (sum_role Itreap.visits r.rreaders));
        ("writer_size", float_of_int (sum_role Itreap.size r.writers));
        ("lreader_size", float_of_int (sum_role Itreap.size r.lreaders));
        ("rreader_size", float_of_int (sum_role Itreap.size r.rreaders));
        ("queue_enqueued", float_of_int (Lanes.total_enqueued r.lanes));
        ("lane_rejects", float_of_int (Lanes.total_rejects r.lanes));
        ("lane_peak_depth", float_of_int (Lanes.max_peak_occupancy r.lanes));
        ("backpressure_waits", float_of_int (Lanes.backpressure_waits r.lanes));
        ("split_intervals", float_of_int r.split_intervals);
        ("split_subranges", float_of_int r.split_subranges);
        ( "split_rate",
          float_of_int r.split_subranges /. float_of_int (max 1 r.split_intervals) );
        ("traces", float_of_int r.next_trace_id);
        ("intervals", float_of_int (Atomic.get r.agg_intervals));
        ("work", float_of_int (Atomic.get r.agg_work));
        ("raw_events", float_of_int (Atomic.get r.agg_raw_events));
        ("shards", float_of_int s);
      ]
      @ stage_diagnostics t

(* Structural invariants of all 3·N treaps: heap order on priorities,
   BST order on intervals, pairwise disjointness, size counters. *)
let validate t =
  match t.run with
  | None -> ()
  | Some r ->
      Array.iter Itreap.validate r.writers;
      Array.iter Itreap.validate r.lreaders;
      Array.iter Itreap.validate r.rreaders

let detector t =
  {
    Detector.name = "pint";
    driver = driver t;
    report = t.report;
    drain = (fun () -> match t.run with Some _ -> drain t | None -> ());
    diagnostics = diagnostics t;
    validate = (fun () -> validate t);
  }
