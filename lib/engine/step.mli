(** The result of driving a pipeline stage one step.

    This is the {e single} definition of the step variant for the whole
    system: every pipeline stage — PINT's writer treap worker, its reader
    treap workers, any auxiliary loop handed to an executor — reports
    progress through this type, and every scheduler (the round-robin
    {!Pipeline.drive}, the dedicated domains of [Par_exec], the virtual-time
    actors of [Sim_exec]) interprets it through the helpers below.  Step
    implementations should build results with the constructors rather than
    the raw variant so the representation stays private to this library. *)

type outcome = {
  records : int;  (** pipeline records consumed (e.g. strands, batched) *)
  visits : int;  (** cost proxy for the step (e.g. treap-node visits) *)
}

type t =
  [ `Worked of outcome  (** progressed *)
  | `Idle  (** nothing available upstream right now *)
  | `Stalled  (** blocked on a full downstream queue (backpressure) *)
  | `Done  (** this stage's work is complete for the whole run *) ]

(** [worked ?records visits] — a productive step; [records] defaults to 1. *)
val worked : ?records:int -> int -> t

val idle : t
val stalled : t
val finished : t

(** Did the step make progress ([`Worked])? *)
val progressed : t -> bool

val is_done : t -> bool

(** [`Idle] or [`Stalled] — no progress but not finished. *)
val blocked : t -> bool

(** Visit count of a [`Worked] step, 0 otherwise. *)
val visits : t -> int

(** Record count of a [`Worked] step, 0 otherwise. *)
val records : t -> int
