open Effect
open Effect.Deep

type config = {
  n_workers : int;
  seed : int;
  strand_cost : Srec.t -> Events.finish_kind -> int;
  c_steal : int;
  c_steal_fail : int;
  stages : Stage.t list;
  obs_clock : Clock.t;
}

type result = {
  makespan : int;
  total : int;
  worker_clocks : int array;
  stage_clocks : (string * int) list;
  n_steals : int;
  n_failed_steals : int;
  n_strands : int;
  n_spawns : int;
  n_nontrivial_syncs : int;
  core_work : int;
}

let default_strand_cost (u : Srec.t) (kind : Events.finish_kind) =
  let boundary =
    match kind with
    | Events.F_spawn _ -> 30
    | Events.F_sync _ -> 30
    | Events.F_return _ -> 20
    | Events.F_root -> 0
  in
  20 + u.work + (2 * (u.raw_reads + u.raw_writes)) + boundary

let default_config =
  {
    n_workers = 4;
    seed = 1;
    strand_cost = default_strand_cost;
    c_steal = 200;
    c_steal_fail = 50;
    stages = [];
    obs_clock = Clock.null;
  }

(* ---------------------------------------------------------------- fibers *)

type _ Effect.t += E_spawn : (unit -> unit) -> unit Effect.t
type _ Effect.t += E_sync : unit Effect.t

type status = Finished | Spawned of (unit -> unit) * kont | Synced of kont
and kont = (unit, status) continuation

let run_fiber (g : unit -> unit) : status =
  match_with g ()
    {
      retc = (fun () -> Finished);
      exnc = raise;
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | E_spawn f -> Some (fun (k : (a, status) continuation) -> Spawned (f, k))
          | E_sync -> Some (fun (k : (a, status) continuation) -> Synced k)
          | _ -> None);
    }

(* ------------------------------------------------------- scheduler state *)

type frame = {
  parent : frame option;
  mutable sync_sp : Sp_order.strand option;
  mutable sync_rec : Srec.t option;
  mutable outstanding : int;
  mutable stolen_in_block : bool;
  mutable suspended : susp option;
}

and susp = { sk : kont; sfiber : fiber_done; srec : Srec.t }

and fiber_done = Root | Child of child_info

and child_info = { cp_frame : frame; cp_sync : Srec.t; cp_item : ditem }

and ditem = {
  dk : kont;
  dframe : frame;
  drec : Srec.t;
  dfiber : fiber_done;
  dpushed_at : int;
}

type job = J_start of (unit -> unit) | J_resume of kont | J_end

type wstate = {
  wid : int;
  mutable clock : int;
  mutable job : job option;
  mutable fid : fiber_done;
  mutable frame : frame;
  mutable cur : Srec.t;
  (* deque as a list, newest (bottom) first; steals take the oldest (last).
     Depth is bounded by spawn depth, so O(depth) steals are fine. *)
  mutable deque : ditem list;
}

let new_frame ~parent =
  {
    parent;
    sync_sp = None;
    sync_rec = None;
    outstanding = 0;
    stolen_in_block = false;
    suspended = None;
  }

let dq_push w item = w.deque <- item :: w.deque

let dq_pop_bottom w =
  match w.deque with
  | [] -> None
  | item :: rest ->
      w.deque <- rest;
      Some item

let rec last_and_init acc = function
  | [] -> None
  | [ x ] -> Some (x, List.rev acc)
  | x :: rest -> last_and_init (x :: acc) rest

let dq_peek_top w = match last_and_init [] w.deque with None -> None | Some (x, _) -> Some x

let dq_steal_top w =
  match last_and_init [] w.deque with
  | None -> None
  | Some (x, init) ->
      w.deque <- init;
      Some x

(* -------------------------------------------------------------- the run *)

type sim_stage = { stage : Stage.t; mutable s_clock : int; mutable s_done : bool }

let run ?aspace ~config ~(driver : Hooks.driver) main =
  let aspace = match aspace with Some a -> a | None -> Aspace.create () in
  let nw = config.n_workers in
  if nw < 1 then invalid_arg "Sim_exec: need at least one worker";
  if nw > Aspace.max_workers aspace then invalid_arg "Sim_exec: more workers than stack regions";
  let sp, root_sp = Sp_order.create () in
  let next_uid = ref 0 in
  let fresh s =
    incr next_uid;
    Srec.make ~uid:!next_uid s
  in
  let root_rec = Srec.make ~uid:0 root_sp in
  let workers =
    Array.init nw (fun wid ->
        {
          wid;
          clock = 0;
          job = None;
          fid = Root;
          frame = new_frame ~parent:None;
          cur = root_rec;
          deque = [];
        })
  in
  let cur_wid = ref 0 in
  let worker () = workers.(!cur_wid) in
  let ctx = { Hooks.aspace; sp; n_workers = nw; current = (fun ~wid -> workers.(wid).cur) } in
  let hooks = driver ctx in
  let rng = Rng.create config.seed in
  let n_spawns = ref 0 and n_nontrivial = ref 0 in
  let n_steals = ref 0 and n_failed = ref 0 in
  let core_work = ref 0 in
  let computation_done = ref false in

  let precharge w kind =
    let u = w.cur in
    let c = config.strand_cost u kind in
    w.clock <- w.clock + c;
    u.Srec.cost <- c;
    u.Srec.finished_at <- w.clock;
    core_work := !core_work + c
  in
  (* Pin the (virtual) observability clock to the acting worker's own
     timeline before every boundary hook: instrumented drivers stamp
     finishes at the worker's simulated time, deterministically. *)
  let oclk = config.obs_clock in
  let commit_finish w kind =
    Clock.set oclk w.clock;
    hooks.Hooks.on_finish ~wid:w.wid w.cur kind
  in
  let finish w kind =
    precharge w kind;
    commit_finish w kind
  in
  let start w r kind =
    w.cur <- r;
    Clock.set oclk w.clock;
    hooks.Hooks.on_start ~wid:w.wid r kind
  in

  (* engine operations, called from inside fibers *)
  let e_sync () =
    let w = worker () in
    match w.frame.sync_sp with None -> () | Some _ -> perform E_sync
  in
  let e_spawn f = perform (E_spawn f) in
  let e_scope f =
    let w = worker () in
    let fr = new_frame ~parent:(Some w.frame) in
    w.frame <- fr;
    f ();
    e_sync ();
    (worker ()).frame <- Option.get fr.parent
  in
  let e_with_frame ~words k =
    let w = worker () in
    let push_wid = w.wid in
    Membuf.Frame.with_f_hooked aspace ~worker:push_wid ~words
      ~on_pop:(fun ~base ~len ->
        let w' = worker () in
        if w'.wid <> push_wid then
          failwith
            "Sim_exec: stack frame popped on a different worker — with_frame bodies must not \
             contain non-trivial syncs";
        w'.cur.Srec.clears <- (base, len) :: w'.cur.Srec.clears)
      k
  in

  (* boundary handling *)
  let handle_spawn w f k =
    incr n_spawns;
    let u = w.cur in
    let fr = w.frame in
    let first = Option.is_none fr.sync_sp in
    let child_sp, cont_sp, sync_sp = Sp_order.spawn sp ~sync_pre:fr.sync_sp u.Srec.sp in
    let cont_rec = fresh cont_sp in
    let sync_rec = if first then fresh sync_sp else Option.get fr.sync_rec in
    fr.sync_sp <- Some sync_sp;
    fr.sync_rec <- Some sync_rec;
    Book.at_spawn ~u ~cont:cont_rec ~sync:sync_rec ~first;
    finish w (Events.F_spawn { cont = cont_rec; sync = sync_rec; first_of_block = first });
    fr.outstanding <- fr.outstanding + 1;
    let item = { dk = k; dframe = fr; drec = cont_rec; dfiber = w.fid; dpushed_at = w.clock } in
    dq_push w item;
    let child_rec = fresh child_sp in
    w.fid <- Child { cp_frame = fr; cp_sync = sync_rec; cp_item = item };
    w.frame <- new_frame ~parent:(Some fr);
    start w child_rec Events.S_child;
    w.job <-
      Some
        (J_start
           (fun () ->
             f ();
             e_sync ()))
  in
  let handle_sync w k =
    let fr = w.frame in
    let sync_rec = Option.get fr.sync_rec in
    let trivial = not fr.stolen_in_block in
    if trivial && fr.outstanding > 0 then
      failwith "Sim_exec: outstanding children at a sync with no steal in the block";
    if not trivial then begin
      incr n_nontrivial;
      Book.at_sync_nontrivial ~u:w.cur ~sync:sync_rec
    end;
    finish w (Events.F_sync { trivial; sync = sync_rec });
    fr.sync_sp <- None;
    fr.sync_rec <- None;
    fr.stolen_in_block <- false;
    if fr.outstanding = 0 then begin
      start w sync_rec (Events.S_after_sync { trivial });
      w.job <- Some (J_resume k)
    end
    else fr.suspended <- Some { sk = k; sfiber = w.fid; srec = sync_rec }
  in
  (* A fiber's end was precharged when its last strand executed; the deque
     pop (steal-vs-not resolution) happens on the worker's next turn, at the
     advanced clock, so thieves whose clocks fall inside the final strand's
     execution window still get their chance at the continuation. *)
  let handle_fiber_end w =
    match w.fid with
    | Root ->
        commit_finish w Events.F_root;
        computation_done := true
    | Child ci -> begin
        let fr = ci.cp_frame in
        fr.outstanding <- fr.outstanding - 1;
        match dq_pop_bottom w with
        | Some item when item == ci.cp_item ->
            commit_finish w (Events.F_return { cont_stolen = false; parent_sync = Some ci.cp_sync });
            w.fid <- item.dfiber;
            w.frame <- item.dframe;
            start w item.drec (Events.S_cont { stolen = false });
            w.job <- Some (J_resume item.dk)
        | Some _ -> failwith "Sim_exec: deque bottom is not this spawn's continuation"
        | None -> begin
            (* our continuation was stolen *)
            Book.at_return_cont_stolen ~u:w.cur ~parent_sync:ci.cp_sync;
            commit_finish w (Events.F_return { cont_stolen = true; parent_sync = Some ci.cp_sync });
            if fr.outstanding = 0 then
              match fr.suspended with
              | Some susp ->
                  (* last child to return passes the sync *)
                  fr.suspended <- None;
                  w.fid <- susp.sfiber;
                  w.frame <- fr;
                  start w susp.srec (Events.S_after_sync { trivial = false });
                  w.job <- Some (J_resume susp.sk)
              | None -> ()
          end
      end
  in
  let handle_status w = function
    | Finished ->
        (* charge the final strand now (the return-boundary constant does not
           depend on the steal outcome), resolve the return on the next turn *)
        precharge w
          (Events.F_return { cont_stolen = false; parent_sync = None });
        w.job <- Some J_end
    | Spawned (f, k) -> handle_spawn w f k
    | Synced k -> handle_sync w k
  in

  let attempt_steal w =
    (* a thief probes victims starting from a random one, like a real
       work-stealing loop does within one quantum *)
    let offset = Rng.int rng (nw - 1) in
    let rec probe i =
      if i >= nw - 1 then None
      else begin
        let v = (w.wid + 1 + ((offset + i) mod (nw - 1))) mod nw in
        let victim = workers.(v) in
        match dq_peek_top victim with
        | Some item when item.dpushed_at <= w.clock -> Some victim
        | _ -> probe (i + 1)
      end
    in
    match probe 0 with
    | Some victim ->
        let item = Option.get (dq_steal_top victim) in
        incr n_steals;
        w.clock <- w.clock + config.c_steal;
        item.dframe.stolen_in_block <- true;
        w.fid <- item.dfiber;
        w.frame <- item.dframe;
        start w item.drec (Events.S_cont { stolen = true });
        w.job <- Some (J_resume item.dk)
    | None ->
        incr n_failed;
        w.clock <- w.clock + config.c_steal_fail;
        (* if every stealable item lies in the future, sleep until the first *)
        let earliest =
          Array.fold_left
            (fun acc v ->
              match dq_peek_top v with
              | Some item -> (
                  match acc with
                  | None -> Some item.dpushed_at
                  | Some t -> Some (min t item.dpushed_at))
              | None -> acc)
            None workers
        in
        (match earliest with Some t when w.clock < t -> w.clock <- t | _ -> ())
  in

  (* pipeline stages (PINT's treap workers), driven through the engine so
     their per-stage metrics accumulate exactly as on real domains *)
  let sim_stages = List.map (fun s -> { stage = s; s_clock = 0; s_done = false }) config.stages in
  let step_stages_once () =
    List.fold_left
      (fun progressed a ->
        if a.s_done then progressed
        else begin
          (* each stage emits on its own virtual timeline *)
          Clock.set oclk a.s_clock;
          let st = Stage.exec a.stage in
          if Step.is_done st then begin
            a.s_done <- true;
            progressed
          end
          else if Step.progressed st then begin
            a.s_clock <-
              a.s_clock + Stage.cost a.stage ~records:(Step.records st) ~visits:(Step.visits st);
            true
          end
          else progressed
        end)
      false sim_stages
  in
  let rec drain_stages () = if step_stages_once () then drain_stages () in

  (* install the per-domain engine and dispatching access sink *)
  let sinks =
    Array.init nw (fun wid ->
        Hooks.with_counting (fun () -> workers.(wid).cur) (hooks.Hooks.sink ~wid))
  in
  Fj.install
    {
      Fj.e_spawn;
      e_sync;
      e_scope;
      e_with_frame;
      e_wid = (fun () -> !cur_wid);
      e_space = aspace;
    };
  Access.install
    {
      Access.on_read = (fun ~addr ~len -> sinks.(!cur_wid).Access.on_read ~addr ~len);
      on_write = (fun ~addr ~len -> sinks.(!cur_wid).Access.on_write ~addr ~len);
      on_free = (fun ~base ~len -> sinks.(!cur_wid).Access.on_free ~base ~len);
      on_compute = (fun ~amount -> sinks.(!cur_wid).Access.on_compute ~amount);
    };
  Fun.protect
    ~finally:(fun () ->
      Access.uninstall ();
      Fj.uninstall ())
    (fun () ->
      hooks.Hooks.on_start ~wid:0 root_rec Events.S_root;
      workers.(0).job <-
        Some
          (J_start
             (fun () ->
               main ();
               e_sync ()));
      (* main scheduling loop: always advance the lowest-clock runnable
         worker; tie-break on worker id for determinism *)
      while not !computation_done do
        let any_items = Array.exists (fun w -> w.deque <> []) workers in
        let best = ref None in
        Array.iter
          (fun w ->
            let runnable = Option.is_some w.job || any_items in
            if runnable then
              match !best with
              | Some b when b.clock <= w.clock -> ()
              | _ -> best := Some w)
          workers;
        (match !best with
        | None -> failwith "Sim_exec: deadlock — no runnable worker but computation unfinished"
        | Some w -> (
            match w.job with
            | Some J_end ->
                w.job <- None;
                handle_fiber_end w
            | Some j ->
                w.job <- None;
                cur_wid := w.wid;
                let st =
                  match j with
                  | J_start g -> run_fiber g
                  | J_resume k -> continue k ()
                  | J_end -> assert false
                in
                handle_status w st
            | None -> attempt_steal w));
        drain_stages ()
      done;
      hooks.Hooks.on_done ();
      (* drain the access-history side to completion *)
      let rec final_drain guard =
        if not (List.for_all (fun a -> a.s_done) sim_stages) then
          if step_stages_once () then final_drain 0
          else if guard > 1000 then failwith "Sim_exec: stages stuck (idle but not done)"
          else final_drain (guard + 1)
      in
      final_drain 0);
  Array.iter (fun w -> assert (w.deque = [])) workers;
  let makespan = Array.fold_left (fun m w -> max m w.clock) 0 workers in
  let total = List.fold_left (fun m a -> max m a.s_clock) makespan sim_stages in
  {
    makespan;
    total;
    worker_clocks = Array.map (fun w -> w.clock) workers;
    stage_clocks = List.map (fun a -> (Stage.name a.stage, a.s_clock)) sim_stages;
    n_steals = !n_steals;
    n_failed_steals = !n_failed;
    n_strands = !next_uid + 1;
    n_spawns = !n_spawns;
    n_nontrivial_syncs = !n_nontrivial;
    core_work = !core_work;
  }
