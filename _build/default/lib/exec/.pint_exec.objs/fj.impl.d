lib/exec/fj.ml: Aspace Domain Membuf
