(** C-RACER-style detector (Utterback et al., SPAA'16): WSP-Order
    reachability with a conventional hashmap access history.

    Each memory word carries a shadow cell (last writer, left-most reader,
    right-most reader) that is queried and updated {e at every access} —
    bulk operations count as one access per word, matching what compiled
    per-load/store instrumentation would produce.  The shadow map is a
    sharded hash table with per-shard locks so the detector also runs under
    the real multi-domain executor. *)

(** [obs]: with a live session, each strand's shadow-map processing is
    emitted as a span on the finishing worker's ["cracer<w>"] track
    (span arg = coalesced interval count). *)
val make : ?shards:int -> ?obs:Obs.t -> unit -> Detector.t
