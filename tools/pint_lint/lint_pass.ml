(* The per-module typed-tree pass: runs R1/R2/R4 over expressions and
   collects the mutable-field inventory R3 checks against OWNERSHIP.md.

   The pass is intra-procedural on purpose.  R1 sees the allocations a
   [@pint.hot] body performs directly (constructs, closures, partial
   applications, known allocating callees) but does not chase calls: a
   helper that allocates must either be annotated itself or appear in
   {!Lint_types.allocating_idents}.  That keeps findings attributable to a
   source line the author controls, which is what a baseline entry with a
   justification needs. *)

open Typedtree
open Lint_types

type state = {
  modname : string;
  mutable findings : finding list;
  (* (field path, loc, flavor) for every non-synchronized mutable field *)
  mutable fields : (string * Location.t * string) list;
  mutable ctx : string list;  (** enclosing value-binding names, innermost first *)
  mutable in_hot : bool;
  mutable hot_fn : string;
  (* records consumed as the single argument of a constructor: the construct
     finding already covers the allocation, don't double-report the record *)
  counted_records : (int * int, unit) Hashtbl.t;
}

let context st = if st.in_hot then st.hot_fn else match st.ctx with c :: _ -> c | [] -> "<toplevel>"

let flag st ~rule ~loc ~kind fmt =
  Printf.ksprintf
    (fun message ->
      st.findings <- make_finding ~rule ~loc ~context:(context st) ~kind message :: st.findings)
    fmt

(* ------------------------------------------------------------ path names *)

(* Normalize a resolved path to the source-level name: the stdlib shows up
   both as an alias path ("Stdlib.List.mem") and as mangled compilation
   units ("Stdlib__List.mem") depending on how the reference was spelled. *)
let rec norm name =
  if Str_split.starts_with ~prefix:"Stdlib__" name then
    norm (String.capitalize_ascii (String.sub name 8 (String.length name - 8)))
  else if Str_split.starts_with ~prefix:"Stdlib." name then
    norm (String.sub name 7 (String.length name - 7))
  else name

let rec path_root = function
  | Path.Pident id -> Ident.name id
  | Path.Pdot (p, _) -> path_root p
  | Path.Papply (p, _) -> path_root p
  | Path.Pextra_ty (p, _) -> path_root p

let stdlib_rooted p = Str_split.starts_with ~prefix:"Stdlib" (path_root p)

(* The normalized poly/forbidden/allocator sets (bare names like "=" or
   "ref" only count when resolved from the stdlib, so a module-local
   [compare] is not mistaken for the polymorphic one). *)
let matches_set set p =
  let nm = norm (Path.name p) in
  List.mem nm (List.map norm set) && (String.contains nm '.' || stdlib_rooted p)

let is_poly_compare p = matches_set poly_compare_idents p
let is_allocator p = matches_set allocating_idents p

(* [Stdlib.exit] is banned only under {!Lint_types.exit_banned_prefixes}
   (lib/): entry points in bin/ and tools/ legitimately set their process
   status with it. *)
let in_exit_scope fname =
  List.exists
    (fun pre ->
      Str_split.starts_with ~prefix:pre fname
      ||
      match Str_split.split_on_first fname ~sep:("/" ^ pre) with Some _ -> true | None -> false)
    exit_banned_prefixes

let is_forbidden ~loc p =
  matches_set forbidden_idents p
  && (norm (Path.name p) <> "exit" || in_exit_scope loc.Location.loc_start.Lexing.pos_fname)

let is_hot_forbidden p =
  let nm = norm (Path.name p) in
  List.exists (fun pre -> Str_split.starts_with ~prefix:(norm pre) nm) hot_forbidden_prefixes

(* ------------------------------------------------------------- type tests *)

(* Does [ty] mention one of the node types whose structural comparison is
   banned?  Purely syntactic containment: abbreviations that hide a node
   type behind an opaque alias are not expanded (documented limitation). *)
let mentions_node_type ~modname ty =
  let seen = Hashtbl.create 16 in
  let hit = ref None in
  let rec go ty =
    let id = Types.get_id ty in
    if not (Hashtbl.mem seen id) then begin
      Hashtbl.add seen id ();
      (match Types.get_desc ty with
      | Types.Tconstr (p, _, _) ->
          let nm = norm (Path.name p) in
          List.iter
            (fun (m, t) ->
              if nm = m ^ "." ^ t || (modname = m && nm = t) then
                if !hit = None then hit := Some (m ^ "." ^ t))
            node_types
      | _ -> ());
      Btype.iter_type_expr go ty
    end
  in
  go ty;
  !hit

let is_arrow ty = match Types.get_desc ty with Types.Tarrow _ -> true | _ -> false

let first_param ty = match Types.get_desc ty with Types.Tarrow (_, a, _, _) -> Some a | _ -> None

let head_constr ty =
  match Types.get_desc ty with Types.Tconstr (p, args, _) -> Some (norm (Path.name p), args) | _ -> None

let is_float ty = match head_constr ty with Some ("float", _) -> true | _ -> false

(* Comparison operators are compiler-specialized at these base types: the
   generated code is a direct primitive, not a call into the polymorphic
   compare runtime, so they are fine even on hot paths. *)
let specialized_compare_heads =
  [ "int"; "char"; "bool"; "unit"; "float"; "string"; "bytes"; "int32"; "int64"; "nativeint" ]

let is_specialized_compare_ty ty =
  match head_constr ty with Some (nm, _) -> List.mem nm specialized_compare_heads | None -> false

(* [min]/[max]/[compare]/[Hashtbl.hash]/[List.mem]… are ordinary functions:
   every call goes through the generic compare runtime whatever the
   instantiation, unlike the %-primitive operators above. *)
let always_generic_compare =
  [ "compare"; "min"; "max"; "Hashtbl.hash"; "List.mem"; "List.assoc"; "List.mem_assoc" ]

(* ------------------------------------------------------ constant lifting *)

(* Structured constants ([(Leaf, Leaf)], [Some 0], ["lit"]) are lifted to
   static data by the compiler and never allocated at run time. *)
let rec is_static_const e =
  match e.exp_desc with
  | Texp_constant _ -> true
  | Texp_construct (_, _, args) -> List.for_all is_static_const args
  | Texp_tuple es -> List.for_all is_static_const es
  | Texp_variant (_, None) -> true
  | Texp_variant (_, Some a) -> is_static_const a
  | Texp_array es -> es = []
  | _ -> false

(* ---------------------------------------------------------- R1 / R2 / R4 *)

let loc_key (loc : Location.t) = (loc.loc_start.pos_cnum, loc.loc_end.pos_cnum)

let check_expr st e =
  let loc = e.exp_loc in
  (match e.exp_desc with
  | Texp_ident (p, _, _) ->
      if is_forbidden ~loc p then
        flag st ~rule:R4_forbidden ~loc ~kind:"forbidden-ident" "use of %s" (Path.name p);
      if st.in_hot && is_hot_forbidden p then
        flag st ~rule:R4_forbidden ~loc ~kind:"printf-in-hot" "%s in a [@pint.hot] body"
          (norm (Path.name p));
      if is_poly_compare p then begin
        let nm = norm (Path.name p) in
        let param = first_param e.exp_type in
        match Option.bind param (mentions_node_type ~modname:st.modname) with
        | Some node_ty ->
            flag st ~rule:R2_poly_compare ~loc ~kind:"poly-compare"
              "polymorphic %s instantiated at a type containing %s" nm node_ty
        | None ->
            if st.in_hot then
              if List.mem nm always_generic_compare then
                flag st ~rule:R2_poly_compare ~loc ~kind:"poly-compare"
                  "generic %s in a [@pint.hot] body (out-of-line compare even at int)" nm
              else if not (match param with Some ty -> is_specialized_compare_ty ty | None -> false)
              then
                flag st ~rule:R2_poly_compare ~loc ~kind:"poly-compare"
                  "polymorphic %s at a non-specialized type in a [@pint.hot] body" nm
      end
  | Texp_apply (f, _) ->
      if st.in_hot then begin
        (match f.exp_desc with
        | Texp_ident (p, _, _) when is_allocator p ->
            flag st ~rule:R1_hot_alloc ~loc ~kind:"alloc-call" "call to allocating %s"
              (norm (Path.name p))
        | _ -> ());
        if is_arrow e.exp_type then
          flag st ~rule:R1_hot_alloc ~loc ~kind:"partial-apply"
            "partial application allocates a closure";
        if is_float e.exp_type then
          flag st ~rule:R1_hot_alloc ~loc ~kind:"float-box" "float result is boxed"
      end
  | Texp_match (scrut, _, _) -> (
      (* [match (a, b) with …] never builds the pair: the match compiler
         destructures literal-tuple scrutinees in place *)
      match scrut.exp_desc with
      | Texp_tuple _ -> Hashtbl.replace st.counted_records (loc_key scrut.exp_loc) ()
      | _ -> ())
  | Texp_tuple es
    when st.in_hot
         && (not (List.for_all is_static_const es))
         && not (Hashtbl.mem st.counted_records (loc_key loc)) ->
      flag st ~rule:R1_hot_alloc ~loc ~kind:"tuple" "tuple allocation (%d fields)" (List.length es)
  | Texp_construct (_, cd, args)
    when st.in_hot && args <> [] && not (List.for_all is_static_const args) ->
      (match args with
      | [ ({ exp_desc = Texp_record _; _ } as r) ] -> Hashtbl.replace st.counted_records (loc_key r.exp_loc) ()
      | _ -> ());
      flag st ~rule:R1_hot_alloc ~loc ~kind:"construct" "allocation of constructor %s"
        cd.Types.cstr_name
  | Texp_record _ when st.in_hot && not (Hashtbl.mem st.counted_records (loc_key loc)) ->
      flag st ~rule:R1_hot_alloc ~loc ~kind:"record" "record allocation"
  | Texp_array es when st.in_hot && es <> [] ->
      flag st ~rule:R1_hot_alloc ~loc ~kind:"array" "array literal allocation"
  | Texp_variant (_, Some _) when st.in_hot ->
      flag st ~rule:R1_hot_alloc ~loc ~kind:"variant" "polymorphic-variant allocation"
  | Texp_lazy _ when st.in_hot -> flag st ~rule:R1_hot_alloc ~loc ~kind:"lazy" "lazy block allocation"
  | Texp_pack _ when st.in_hot ->
      flag st ~rule:R1_hot_alloc ~loc ~kind:"module-pack" "first-class module allocation"
  | _ -> ())

(* -------------------------------------------------------------- R3 fields *)

(* Record labels arrive wrapped in [Ttyp_poly] (even when monomorphic). *)
let rec core_type_head (ct : core_type) =
  match ct.ctyp_desc with
  | Ttyp_poly (_, ct) -> core_type_head ct
  | Ttyp_constr (p, _, args) -> Some (norm (Path.name p), args)
  | _ -> None

let is_synchronized_head ct =
  match core_type_head ct with
  | Some (nm, args) -> (
      List.mem nm (List.map norm synchronized_heads)
      || (* an array of atomics: the spine is written once at creation *)
      match (nm, args) with
      | "array", [ elt ] -> (
          match core_type_head elt with
          | Some (e, _) -> List.mem e (List.map norm synchronized_heads)
          | None -> false)
      | _ -> false)
  | None -> false

let is_container_head ct =
  match core_type_head ct with
  | Some (nm, _) -> List.mem nm (List.map norm mutable_container_heads)
  | None -> false

let collect_labels st ~tyname ~prefix lds =
  List.iter
    (fun ld ->
      let mutable_field = ld.ld_mutable = Asttypes.Mutable in
      let container = is_container_head ld.ld_type in
      if (mutable_field || container) && not (is_synchronized_head ld.ld_type) then begin
        let path = Printf.sprintf "%s.%s%s.%s" st.modname tyname prefix ld.ld_name.Asttypes.txt in
        let flavor = if mutable_field then "mutable" else "container" in
        st.fields <- (path, ld.ld_loc, flavor) :: st.fields
      end)
    lds

let check_type_decl st (td : type_declaration) =
  let tyname = td.typ_name.Asttypes.txt in
  match td.typ_kind with
  | Ttype_record lds -> collect_labels st ~tyname ~prefix:"" lds
  | Ttype_variant cds ->
      List.iter
        (fun cd ->
          match cd.cd_args with
          | Cstr_record lds ->
              collect_labels st ~tyname ~prefix:("." ^ cd.cd_name.Asttypes.txt) lds
          | Cstr_tuple _ -> ())
        cds
  | Ttype_abstract | Ttype_open -> ()

(* -------------------------------------------------------------- traversal *)

let pat_name : type k. k general_pattern -> string =
 fun p -> match p.pat_desc with Tpat_var (id, _) -> Ident.name id | _ -> "_"

let has_hot_attr attrs =
  List.exists (fun a -> a.Parsetree.attr_name.Asttypes.txt = hot_attribute) attrs

let analyze ~modname (str : structure) =
  let st =
    {
      modname;
      findings = [];
      fields = [];
      ctx = [];
      in_hot = false;
      hot_fn = "";
      counted_records = Hashtbl.create 16;
    }
  in
  let super = Tast_iterator.default_iterator in
  (* Walk the parameter spine of a hot binding: the leading [fun] chain is
     the function itself, not a closure allocated inside it. *)
  let rec walk_spine sub e =
    match e.exp_desc with
    | Texp_function { cases; _ } ->
        List.iter
          (fun c ->
            sub.Tast_iterator.pat sub c.c_lhs;
            Option.iter (sub.Tast_iterator.expr sub) c.c_guard;
            walk_spine sub c.c_rhs)
          cases
    | _ -> sub.Tast_iterator.expr sub e
  in
  let value_binding sub vb =
    let name = pat_name vb.vb_pat in
    st.ctx <- name :: st.ctx;
    (if has_hot_attr vb.vb_attributes && not st.in_hot then begin
       st.in_hot <- true;
       st.hot_fn <- name;
       sub.Tast_iterator.pat sub vb.vb_pat;
       walk_spine sub vb.vb_expr;
       st.in_hot <- false;
       st.hot_fn <- ""
     end
     else super.value_binding sub vb);
    st.ctx <- List.tl st.ctx
  in
  let expr sub e =
    check_expr st e;
    (match e.exp_desc with
    | Texp_function _ when st.in_hot ->
        flag st ~rule:R1_hot_alloc ~loc:e.exp_loc ~kind:"closure" "closure allocation"
    | _ -> ());
    super.expr sub e
  in
  let type_declaration sub td =
    check_type_decl st td;
    super.type_declaration sub td
  in
  let it = { super with value_binding; expr; type_declaration } in
  it.structure it str;
  (List.rev st.findings, List.rev st.fields)
