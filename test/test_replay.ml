(* Replay and differential-detection tests.

   The core property (the paper's Theorem 5 made executable): for any
   captured trace, replaying it through STINT, C-RACER and PINT yields the
   same deduplicated (kind, earlier, later) race set — and for a trace
   captured from a sequential run, that set equals the live run's.  Replay
   is also deterministic, works for traces captured under parallel
   schedules, and correctly reproduces the §III-F heap-reuse hazards from
   the recorded free events. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let detectors = [ "stint"; "cracer"; "pint" ]
let make_det name = Option.get (Systems.make_detector name)

(* Races at Theorem-5 granularity, sorted for set comparison. *)
let signature races =
  List.sort compare
    (List.map (fun (r : Report.race) -> (r.Report.kind, r.Report.prior, r.Report.current)) races)

let live_seq_races det prog =
  let d, _ = make_det det in
  let _ = Seq_exec.run ~driver:d.Detector.driver prog in
  signature (Detector.races d)

let capture_seq ?(meta = []) prog =
  let d = Nodetect.make () in
  let driver, finished = Tracefile.capturing ~meta d.Detector.driver in
  ignore (Seq_exec.run ~driver prog);
  finished ()

let replay_races det trace =
  let d, _ = make_det det in
  signature (Replay.run trace d).Replay.races

(* ------------------------------------------------- round-trip per workload *)

(* capture a live sequential run of each racy workload variant, replay the
   trace through every detector, and require the recorded-run race set *)
let roundtrip_workload name ~size ~base =
  let w = Registry.find name in
  let racy = Option.get w.Workload.racy in
  let live = live_seq_races "pint" (racy ~size ~base).Workload.run in
  check_bool (name ^ " racy variant races") true (live <> []);
  let trace = capture_seq ~meta:[ ("workload", name) ] (racy ~size ~base).Workload.run in
  List.iter
    (fun det ->
      check_bool
        (Printf.sprintf "%s: %s replay = live" name det)
        true
        (replay_races det trace = live))
    detectors

let test_roundtrip_heat () = roundtrip_workload "heat" ~size:32 ~base:8
let test_roundtrip_sort () = roundtrip_workload "sort" ~size:64 ~base:16
let test_roundtrip_mmul () = roundtrip_workload "mmul" ~size:16 ~base:4
let test_roundtrip_fft () = roundtrip_workload "fft" ~size:32 ~base:8
let test_roundtrip_chol () = roundtrip_workload "chol" ~size:16 ~base:4

(* a race-free program must stay race-free through capture + replay *)
let test_roundtrip_race_free () =
  let w = Registry.find "heat" in
  let inst = w.Workload.make ~size:32 ~base:8 in
  let trace = capture_seq inst.Workload.run in
  List.iter
    (fun det -> check_bool (det ^ " clean replay") true (replay_races det trace = []))
    detectors

(* ------------------------------------------------------------- determinism *)

let test_replay_deterministic () =
  let w = Registry.find "heat" in
  let racy = Option.get w.Workload.racy in
  let trace = capture_seq (racy ~size:32 ~base:8).Workload.run in
  let run () =
    let d, _ = make_det "pint" in
    let o = Replay.run trace d in
    (signature o.Replay.races, o.Replay.n_strands, o.Replay.diagnostics)
  in
  let r1 = run () and r2 = run () in
  check_bool "identical races, strands and diagnostics" true (r1 = r2)

(* --------------------------------------------- parallel-schedule captures *)

(* Theorem 5 across schedules: a trace captured under a real multi-domain
   run, replayed serially, reports the same races as a live sequential run
   of the same program.  (heat allocates its grids up front, so its heap
   layout is schedule-independent.) *)
let test_par_capture_replays_like_seq () =
  let w = Registry.find "heat" in
  let racy = Option.get w.Workload.racy in
  let seq_live = live_seq_races "pint" (racy ~size:32 ~base:8).Workload.run in
  let d = Nodetect.make () in
  let driver, finished = Tracefile.capturing d.Detector.driver in
  let config = { Par_exec.default_config with n_workers = 4; seed = 3 } in
  let res = Par_exec.run ~config ~driver (racy ~size:32 ~base:8).Workload.run in
  let trace = finished () in
  check_int "par capture covers every strand" res.Par_exec.n_strands
    (Tracefile.entry_count trace);
  List.iter
    (fun det ->
      check_bool (det ^ ": par trace = seq live races") true
        (replay_races det trace = seq_live))
    detectors

let test_sim_capture_replays_like_seq () =
  let w = Registry.find "sort" in
  let racy = Option.get w.Workload.racy in
  let seq_live = live_seq_races "pint" (racy ~size:64 ~base:16).Workload.run in
  let d = Nodetect.make () in
  let driver, finished = Tracefile.capturing d.Detector.driver in
  let config = { Sim_exec.default_config with n_workers = 8; seed = 5 } in
  ignore (Sim_exec.run ~config ~driver (racy ~size:64 ~base:16).Workload.run);
  let trace = finished () in
  check_bool "sim run stole work" true (Tracefile.boundary_count trace > 0);
  List.iter
    (fun det ->
      check_bool (det ^ ": sim trace = seq live races") true
        (replay_races det trace = seq_live))
    detectors

(* ------------------------------------------------------------ heap reuse *)

(* B allocates/writes/frees; C (parallel) reuses the addresses: the live
   detectors suppress the false race via the free events — replay must feed
   the recorded frees back so the suppression happens offline too. *)
let test_heap_reuse_free_replay () =
  let prog () =
    Fj.spawn (fun () ->
        let x = Fj.alloc_f 32 in
        Membuf.fill_f x 0 32 1.0;
        Fj.free_f x);
    (let y = Fj.alloc_f 32 in
     Membuf.fill_f y 0 32 2.0;
     Fj.free_f y);
    Fj.sync ()
  in
  let trace = capture_seq prog in
  check_bool "frees recorded" true
    (Array.exists (fun e -> e.Tracefile.frees <> []) trace.Tracefile.entries);
  List.iter
    (fun det -> check_bool (det ^ " no false race from reuse") true (replay_races det trace = []))
    detectors

(* ----------------------------------------------------------- differential *)

let test_differential_agreement () =
  let w = Registry.find "heat" in
  let racy = Option.get w.Workload.racy in
  let trace = capture_seq (racy ~size:32 ~base:8).Workload.run in
  List.iter
    (fun (a, b) ->
      let da, _ = make_det a and db, _ = make_det b in
      let d = Replay.differential trace da db in
      check_bool (Printf.sprintf "%s vs %s no divergence" a b) true (Replay.no_divergence d))
    [ ("pint", "stint"); ("pint", "cracer"); ("stint", "cracer") ]

let test_differential_reports_divergence () =
  (* against the no-detection baseline every real race is left-only *)
  let w = Registry.find "heat" in
  let racy = Option.get w.Workload.racy in
  let trace = capture_seq (racy ~size:32 ~base:8).Workload.run in
  let dp, _ = make_det "pint" and dn, _ = make_det "none" in
  let d = Replay.differential trace dp dn in
  check_bool "pint vs none diverges" true (not (Replay.no_divergence d));
  check_bool "divergence is one-sided" true (d.Replay.right_only = []);
  check_bool "pp output non-empty" true
    (String.length (Format.asprintf "%a" Replay.pp_divergence d) > 0)

let test_diff_races_symmetric () =
  let r kind prior current =
    { Report.kind; prior; current; where = Interval.make 0 0 }
  in
  let a = [ r Report.Write_write 1 2; r Report.Write_read 3 4 ] in
  let b = [ r Report.Write_write 1 2; r Report.Read_write 5 6 ] in
  let d = Replay.diff_races a b in
  check_int "left_only" 1 (List.length d.Replay.left_only);
  check_int "right_only" 1 (List.length d.Replay.right_only);
  (* witness intervals are ignored at the comparison granularity *)
  let b' = [ { (r Report.Write_write 1 2) with Report.where = Interval.make 9 9 } ] in
  let d' = Replay.diff_races [ r Report.Write_write 1 2 ] b' in
  check_bool "witness-only difference is agreement" true (Replay.no_divergence d')

(* ---------------------------------------------------------- corrupt DAGs *)

let expect_corrupt name f =
  check_bool name true
    (try
       ignore (f ());
       false
     with Replay.Corrupt _ -> true)

let test_corrupt_links_rejected () =
  let prog () =
    let b = Fj.alloc_f 8 in
    Fj.spawn (fun () -> Membuf.set_f b 0 1.0);
    Fj.sync ()
  in
  let t = capture_seq prog in
  let drive t =
    let d, _ = make_det "none" in
    Replay.drive t d.Detector.driver
  in
  (* dropping a linked entry leaves a dangling uid *)
  let missing =
    {
      t with
      Tracefile.entries =
        Array.of_list
          (List.filter
             (fun (e : Tracefile.entry) -> e.Tracefile.start <> Events.S_child)
             (Array.to_list t.Tracefile.entries));
    }
  in
  expect_corrupt "dangling child link" (fun () -> drive missing);
  (* no root strand at all *)
  let rootless =
    {
      t with
      Tracefile.entries =
        Array.of_list
          (List.filter
             (fun (e : Tracefile.entry) -> e.Tracefile.start <> Events.S_root)
             (Array.to_list t.Tracefile.entries));
    }
  in
  expect_corrupt "missing root" (fun () -> drive rootless);
  (* an unreachable extra entry must fail the coverage check *)
  let orphan = { (Tracefile.root t) with Tracefile.uid = 4_096 } in
  let extra =
    { t with Tracefile.entries = Array.append t.Tracefile.entries [| orphan |] }
  in
  expect_corrupt "unreachable strand" (fun () -> drive extra)

let () =
  Alcotest.run "pint_replay"
    [
      ( "roundtrip",
        [
          Alcotest.test_case "heat" `Quick test_roundtrip_heat;
          Alcotest.test_case "sort" `Quick test_roundtrip_sort;
          Alcotest.test_case "mmul" `Quick test_roundtrip_mmul;
          Alcotest.test_case "fft" `Quick test_roundtrip_fft;
          Alcotest.test_case "chol" `Quick test_roundtrip_chol;
          Alcotest.test_case "race-free stays clean" `Quick test_roundtrip_race_free;
        ] );
      ( "determinism",
        [ Alcotest.test_case "replay twice, same outcome" `Quick test_replay_deterministic ] );
      ( "schedules",
        [
          Alcotest.test_case "par capture = seq races" `Quick test_par_capture_replays_like_seq;
          Alcotest.test_case "sim capture = seq races" `Quick test_sim_capture_replays_like_seq;
        ] );
      ( "memory-reuse",
        [ Alcotest.test_case "frees replayed" `Quick test_heap_reuse_free_replay ] );
      ( "differential",
        [
          Alcotest.test_case "detectors agree" `Quick test_differential_agreement;
          Alcotest.test_case "baseline diverges" `Quick test_differential_reports_divergence;
          Alcotest.test_case "diff_races semantics" `Quick test_diff_races_symmetric;
        ] );
      ( "corrupt",
        [ Alcotest.test_case "inconsistent DAGs rejected" `Quick test_corrupt_links_rejected ] );
    ]
