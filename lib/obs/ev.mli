(** Event kind codes for {!Evring} entries.

    Plain ints so that hot emit call sites stay allocation-free; the set
    mirrors the pipeline's observable transitions (DESIGN.md §11). *)

val strand_finish : int
val enqueue : int
val collect : int
val treap_op : int
val stall : int
val recycle : int
val complete : int

(** Collector-side: a strand's interval batch was split and committed to
    the per-shard lanes; the payload is the subrange count. *)
val split : int

(** Work-stealing executor: a worker stole a ditem from a peer's deque;
    the payload is the victim worker's index. *)
val steal : int

(** A pool or worker domain entered the deep-backoff park regime (one
    instant per episode, not per sleep); the payload is the domain's
    pool/worker index. *)
val park : int

(** Chrome-trace display name for a kind code. *)
val name : int -> string

(** Kinds rendered as Chrome "X" (complete-span) events. *)
val is_span : int -> bool

(** Kinds rendered as Chrome "C" (counter) events. *)
val is_counter : int -> bool

(** JSON key the kind's [arg] payload is exported under. *)
val arg_label : int -> string
