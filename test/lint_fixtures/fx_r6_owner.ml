(* R6 violation: a write outside the declared owner set.  The manifest row
   supplied by the test claims [Fx_r6_owner.t.count] with
   [writers: Fx_r6_owner.official].  Expected finding:
   [R6/off-owner-write] in [Fx_r6_owner.bump]. *)

type t = { mutable count : int }

let official t = t.count <- 0
let bump t = t.count <- t.count + 1
let total t = t.count
