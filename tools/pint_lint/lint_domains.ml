(* Domain-context inference over the whole-program call graph.

   Seeds of multi-domain context:
     - thunks passed to [Domain.spawn] (and named functions so passed),
     - closures that escape to unseen consumers (stored into records /
       tuples / passed to unknown callees) — the pipeline-stage, hook and
       micropool shapes all reach domains this way,
     - entry points named in {!Lint_types.seed_name_patterns}: API
       surfaces (Replay.Session) that unseen callers drive concurrently
       with running domains.

   Everything reachable from a seed along call edges is *spawned* (may
   execute on a non-main domain).  A node also reachable from a non-seed
   root runs in *both* contexts.  Unreachable-from-seed nodes are
   *single*-domain: their plain mutable state needs no publication story.

   The same graph answers the R5 reader-path question: for a happens-before
   edge [e], [uncovered t ~edge:e] is the set of nodes reachable from a
   spawned seed without ever passing through a function that
   [@pint.acquires e].  A read of an [e]-published field inside such a node
   is a read that some domain can perform without the acquiring load —
   exactly the bug the attribute grammar exists to rule out. *)

open Lint_callgraph

type t = {
  prog : program;
  spawned : (string, unit) Hashtbl.t;
  main_reach : (string, unit) Hashtbl.t;
}

let is_seed (n : node) =
  n.n_spawn || n.n_escaping || List.mem n.n_name Lint_types.seed_name_patterns

let reach prog ~into ~enter roots =
  let q = Queue.create () in
  List.iter
    (fun name ->
      if (not (Hashtbl.mem into name)) && enter name then begin
        Hashtbl.replace into name ();
        Queue.add name q
      end)
    roots;
  while not (Queue.is_empty q) do
    let name = Queue.pop q in
    match Hashtbl.find_opt prog.p_nodes name with
    | None -> ()
    | Some n ->
        List.iter
          (fun callee ->
            if (not (Hashtbl.mem into callee)) && enter callee then begin
              Hashtbl.replace into callee ();
              Queue.add callee q
            end)
          n.n_calls
  done

let analyze prog =
  let spawned = Hashtbl.create 256 in
  let seeds =
    Hashtbl.fold (fun name n acc -> if is_seed n then name :: acc else acc) prog.p_nodes []
  in
  reach prog ~into:spawned ~enter:(fun _ -> true) seeds;
  (* main-context roots: non-seed nodes nobody calls (entry points, API
     surface driven by the main domain) *)
  let called = Hashtbl.create 256 in
  Hashtbl.iter
    (fun _ n -> List.iter (fun c -> Hashtbl.replace called c ()) n.n_calls)
    prog.p_nodes;
  let main_roots =
    Hashtbl.fold
      (fun name n acc ->
        if (not (is_seed n)) && not (Hashtbl.mem called name) then name :: acc else acc)
      prog.p_nodes []
  in
  let main_reach = Hashtbl.create 256 in
  reach prog ~into:main_reach ~enter:(fun _ -> true) main_roots;
  { prog; spawned; main_reach }

let is_spawned t name = Hashtbl.mem t.spawned name

let classification t (n : node) =
  match (Hashtbl.mem t.spawned n.n_name, Hashtbl.mem t.main_reach n.n_name) with
  | true, true -> "both"
  | true, false -> "multi"
  | false, _ -> "single"

(* Nodes reachable from a spawned seed along paths that never enter an
   acquirer of [edge].  (A seed that itself acquires [edge] contributes
   nothing: its whole subtree reads after the acquiring load.) *)
let uncovered t ~edge =
  let acquires name =
    match Hashtbl.find_opt t.prog.p_nodes name with
    | Some n -> List.mem edge n.n_acquires
    | None -> false
  in
  let seeds =
    Hashtbl.fold (fun name n acc -> if is_seed n then name :: acc else acc) t.prog.p_nodes []
  in
  let into = Hashtbl.create 64 in
  reach t.prog ~into ~enter:(fun name -> not (acquires name)) seeds;
  into

(* Same uncovered-reachability, but seeded at the exported entry points
   (non-seed nodes nobody in the program calls).  A client is free to run
   any of those on any domain, so an [edges:] field read reachable from one
   without passing an acquirer is a latent cross-domain race in library
   API surface — e.g. an exported peek that drops its acquiring load. *)
let uncovered_from_roots t ~edge =
  let acquires name =
    match Hashtbl.find_opt t.prog.p_nodes name with
    | Some n -> List.mem edge n.n_acquires
    | None -> false
  in
  let called = Hashtbl.create 256 in
  Hashtbl.iter
    (fun _ n -> List.iter (fun c -> Hashtbl.replace called c ()) n.n_calls)
    t.prog.p_nodes;
  let roots =
    Hashtbl.fold
      (fun name n acc ->
        if (not (is_seed n)) && not (Hashtbl.mem called name) then name :: acc else acc)
      t.prog.p_nodes []
  in
  let into = Hashtbl.create 64 in
  reach t.prog ~into ~enter:(fun name -> not (acquires name)) roots;
  into
