type frame = { mutable sync_sp : Sp_order.strand option; mutable sync_rec : Srec.t option }

type result = { n_strands : int; n_spawns : int; n_syncs : int }

let run ?aspace ~(driver : Hooks.driver) main =
  let aspace = match aspace with Some a -> a | None -> Aspace.create () in
  let sp, root_sp = Sp_order.create () in
  let next_uid = ref 0 in
  let fresh s =
    incr next_uid;
    Srec.make ~uid:!next_uid s
  in
  let cur = ref (fresh root_sp) in
  let ctx = { Hooks.aspace; sp; n_workers = 1; current = (fun ~wid:_ -> !cur) } in
  let hooks = driver ctx in
  let frame = ref { sync_sp = None; sync_rec = None } in
  let n_spawns = ref 0 and n_syncs = ref 0 in
  let finish k = hooks.Hooks.on_finish ~wid:0 !cur k in
  let start r k =
    cur := r;
    hooks.Hooks.on_start ~wid:0 r k
  in
  (* A sync in sequential execution is always trivial; a sync with no spawn
     in the block is not even a boundary. *)
  let do_sync () =
    match !frame.sync_sp with
    | None -> ()
    | Some _ ->
        incr n_syncs;
        let f = !frame in
        let sync_rec = Option.get f.sync_rec in
        finish (Events.F_sync { trivial = true; sync = sync_rec });
        f.sync_sp <- None;
        f.sync_rec <- None;
        start sync_rec (Events.S_after_sync { trivial = true })
  in
  let in_scope body =
    let saved = !frame in
    frame := { sync_sp = None; sync_rec = None };
    Fun.protect
      ~finally:(fun () -> frame := saved)
      (fun () ->
        body ();
        do_sync ())
  in
  let e_spawn f =
    incr n_spawns;
    let u = !cur in
    let fr = !frame in
    (* [Option.is_none], not [= None]: polymorphic equality at a type
       containing OM records is banned (pint_lint R2) — their labels are
       mutable and their link structure is cyclic. *)
    let first = Option.is_none fr.sync_sp in
    let child_sp, cont_sp, sync_sp = Sp_order.spawn sp ~sync_pre:fr.sync_sp u.sp in
    let cont_rec = fresh cont_sp in
    let sync_rec = if first then fresh sync_sp else Option.get fr.sync_rec in
    fr.sync_sp <- Some sync_sp;
    fr.sync_rec <- Some sync_rec;
    Book.at_spawn ~u ~cont:cont_rec ~sync:sync_rec ~first;
    finish (Events.F_spawn { cont = cont_rec; sync = sync_rec; first_of_block = first });
    (* depth-first: run the child now, in its own sync scope *)
    start (fresh child_sp) Events.S_child;
    in_scope f;
    finish (Events.F_return { cont_stolen = false; parent_sync = Some sync_rec });
    start cont_rec (Events.S_cont { stolen = false })
  in
  let engine =
    {
      Fj.e_spawn;
      e_sync = do_sync;
      e_scope = in_scope;
      e_with_frame =
        (fun ~words k ->
          Membuf.Frame.with_f_hooked aspace ~worker:0 ~words
            ~on_pop:(fun ~base ~len -> !cur.clears <- (base, len) :: !cur.clears)
            k);
      e_wid = (fun () -> 0);
      e_space = aspace;
    }
  in
  Fj.install engine;
  Access.install (Hooks.with_counting (fun () -> !cur) (hooks.Hooks.sink ~wid:0));
  Fun.protect
    ~finally:(fun () ->
      Access.uninstall ();
      Fj.uninstall ())
    (fun () ->
      hooks.Hooks.on_start ~wid:0 !cur Events.S_root;
      main ();
      do_sync ();
      finish Events.F_root);
  hooks.Hooks.on_done ();
  { n_strands = !next_uid; n_spawns = !n_spawns; n_syncs = !n_syncs }
