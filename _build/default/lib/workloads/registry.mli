(** The benchmark suite. *)

(** All seven benchmarks in the paper's row order:
    chol, heat, mmul, sort, stra, straz, fft. *)
val all : unit -> Workload.t list

(** Look a workload up by name.
    @raise Not_found for unknown names. *)
val find : string -> Workload.t
