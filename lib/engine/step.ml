type outcome = { records : int; visits : int }

type t = [ `Worked of outcome | `Idle | `Stalled | `Done ]

let worked ?(records = 1) visits = `Worked { records; visits }
let idle : t = `Idle
let stalled : t = `Stalled
let finished : t = `Done

let progressed = function `Worked _ -> true | `Idle | `Stalled | `Done -> false
let is_done = function `Done -> true | `Worked _ | `Idle | `Stalled -> false
let blocked = function `Idle | `Stalled -> true | `Worked _ | `Done -> false
let visits = function `Worked o -> o.visits | `Idle | `Stalled | `Done -> 0
let records = function `Worked o -> o.records | `Idle | `Stalled | `Done -> 0
