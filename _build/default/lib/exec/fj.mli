(** The fork-join programming API used by workloads and examples.

    A computation is an ordinary OCaml function that calls these operations;
    which executor actually runs it (sequential, virtual-time simulated, or
    real multi-domain work stealing) is decided by whoever installed the
    per-domain {e engine}.  The model is Cilk's:

    - [spawn f] — [f] may run in parallel with the rest of the current sync
      block.  The spawned function is its own sync scope (its spawns are
      synced before it returns).
    - [sync ()] — wait for every function spawned in the current scope since
      the last sync.  A sync with no preceding spawn in the block is a no-op
      (not even a strand boundary).
    - [scope f] — run [f] as its own sync scope without spawning it (for
      plain recursive calls that spawn internally); an implicit [sync] runs
      at scope exit.
    - [with_frame ~words k] — stack-allocate [words] float locals for the
      dynamic extent of [k] on the executing worker's simulated cactus stack
      (§III-F); the frame is popped (and scheduled for access-history
      clearing) when [k] returns.

    Memory comes from [alloc_f]/[alloc_i]/[free_f]/[free_i], thin wrappers
    over {!Membuf} bound to the engine's address space. *)

type engine = {
  e_spawn : (unit -> unit) -> unit;
  e_sync : unit -> unit;
  e_scope : (unit -> unit) -> unit;
  e_with_frame : words:int -> (Membuf.f -> unit) -> unit;
  e_wid : unit -> int;
  e_space : Aspace.t;
}

(** [install e] binds the engine for the calling domain.  Executors call
    this; user code never does. *)
val install : engine -> unit

val uninstall : unit -> unit

(** The calling domain's engine.
    @raise Failure if no executor is running. *)
val engine : unit -> engine

val spawn : (unit -> unit) -> unit
val sync : unit -> unit
val scope : (unit -> unit) -> unit
val with_frame : words:int -> (Membuf.f -> unit) -> unit

(** Id of the executing (core) worker. *)
val wid : unit -> int

(** The run's address space. *)
val space : unit -> Aspace.t

val alloc_f : int -> Membuf.f
val alloc_i : int -> Membuf.i
val free_f : Membuf.f -> unit
val free_i : Membuf.i -> unit
