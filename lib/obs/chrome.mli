(** Chrome trace-event JSON exporter.

    Renders a set of named {!Evring} tracks as the [chrome://tracing] /
    Perfetto trace-event format: one [tid] per track (named via a
    ["thread_name"] metadata record), {!Ev.treap_op}/{!Ev.stall} spans as
    ["X"] complete events, {!Ev.enqueue} occupancy samples as ["C"]
    counters, and every other kind as a thread-scoped instant.

    The export is deterministic: int-only payloads, tracks in registration
    order, and a stable per-track sort on [ts] (restoring per-track
    monotonicity for spans appended at step end). *)

val export : ?meta:(string * string) list -> tracks:(string * Evring.t) list -> unit -> string
