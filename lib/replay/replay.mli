(** Deterministic offline replay: drive any detector from a persisted trace.

    Replay reconstructs the run's strand DAG from a {!Tracefile.t} and pushes
    it through the {!Hooks} contract exactly as the sequential executor
    would, without re-executing any workload code: [Sp_order] is rebuilt by
    re-issuing the spawn protocol in canonical depth-first order, fresh
    [Srec]s are filled from the recorded interval sets, and every boundary
    event fires with Algorithm-1 bookkeeping applied.

    Canonicalization: whatever schedule produced the capture, replay
    linearizes it to the sequential (serial-elision) order — continuations
    are never stolen, every sync is trivial, and strand/sp ids are assigned
    in depth-first creation order.  By the paper's Theorem 5 the detectors'
    deduplicated race sets are invariant under this re-scheduling, which is
    what makes traces diffable artifacts: a trace captured under [par] and
    replayed serially must report the same races as a live sequential run of
    the same program (modulo address-layout differences the schedule itself
    introduces — racy workload accesses live on the schedule-independent
    heap prefix).

    Replay is single-threaded and deterministic: replaying the same trace
    twice through the same detector yields identical race sets and
    identical diagnostics.  The one opt-in exception is {!run}'s [pools],
    which moves the detector's {e pipeline} onto real micropool domains —
    the strand feed stays the deterministic serial elision, so race sets
    remain schedule-invariant (Theorem 5) while the consumer side
    genuinely runs cross-domain. *)

exception Corrupt of string

(** Replay summary for one detector. *)
type outcome = {
  detector : string;
  n_strands : int;  (** strands replayed (= trace entries) *)
  races : Report.race list;  (** deduplicated, ordered (see {!Report.races}) *)
  diagnostics : (string * float) list;
}

(** [drive ?aspace trace driver] — low-level: replay the trace through a raw
    hook driver (fires [on_start]/sink/[on_finish] per strand, then
    [on_done]).  Returns the number of strands replayed.  [aspace] defaults
    to a fresh address space; recorded frees are {!Aspace.reserve}d before
    being forwarded so the detectors' deferred-free handling runs as live.
    @raise Corrupt if the trace's DAG links are inconsistent. *)
val drive : ?aspace:Aspace.t -> Tracefile.t -> Hooks.driver -> int

(** [run ?aspace ?wrap ?pools trace det] — replay through a detector
    instance and drain its pipeline.  The detector must be fresh (one
    instance per replay).  [wrap] (default identity) is applied to the
    detector's driver before replay — e.g. {!Obs_hooks.instrument} to
    profile a replay.  [pools] (default: none — the pipeline drains
    synchronously after the feed) runs the detector's stage groups on
    {!Micropool} domains concurrently with the strand feed, e.g.
    [Pint_detector.stage_pools] for a real-domain golden diff; pair it
    with {!Pint_detector.set_backpressure} so the collector waits out
    momentarily-full lanes instead of rejecting. *)
val run :
  ?aspace:Aspace.t ->
  ?wrap:(Hooks.driver -> Hooks.driver) ->
  ?pools:Stage.t list list ->
  Tracefile.t ->
  Detector.t ->
  outcome

(** {2 Differential detection} *)

(** Races present in exactly one of two outcomes, compared at the Theorem-5
    granularity (kind, earlier strand, later strand) — witness intervals are
    ignored, since detectors legitimately report different witnesses for the
    same racing pair. *)
type divergence = { left_only : Report.race list; right_only : Report.race list }

val no_divergence : divergence -> bool

(** [diff_races a b] — symmetric difference at (kind, prior, current). *)
val diff_races : Report.race list -> Report.race list -> divergence

(** [differential trace detA detB] — replay the same trace through two fresh
    detectors (each on its own fresh address space) and diff their race
    sets. *)
val differential : Tracefile.t -> Detector.t -> Detector.t -> divergence

val pp_divergence : Format.formatter -> divergence -> unit
