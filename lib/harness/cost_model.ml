type t = {
  c_flop : int;
  c_word : int;
  c_strand : int;
  c_spawn : int;
  c_sync : int;
  c_coal_word : int;
  c_instr_event : int;
  c_trace_push : int;
  c_hash_word : int;
  c_treap_visit : int;
  c_treap_strand : int;
  c_steal : int;
  c_steal_fail : int;
}

(* Calibrated once against heat's Figure-1 magnitudes, then frozen.
   One recalibration since: [c_treap_visit] 14 -> 12 when the treap nodes
   started carrying their endpoints as immediate int fields — a visit now
   reads two ints out of the node block instead of dereferencing a boxed
   interval, and the constant models exactly that per-visit touch. *)
let default =
  {
    c_flop = 1;
    c_word = 2;
    c_strand = 60;
    c_spawn = 90;
    c_sync = 70;
    c_coal_word = 8;
    c_instr_event = 190;
    c_trace_push = 150;
    c_hash_word = 250;
    c_treap_visit = 12;
    c_treap_strand = 120;
    c_steal = 1500;
    c_steal_fail = 300;
  }

let boundary m (kind : Events.finish_kind) =
  match kind with
  | Events.F_spawn _ -> m.c_spawn
  | Events.F_sync _ -> m.c_sync
  | Events.F_return _ -> m.c_strand
  | Events.F_root -> 0

let base_cost m (u : Srec.t) kind =
  m.c_strand + (m.c_word * u.work) + (m.c_flop * u.compute) + boundary m kind

let events (u : Srec.t) = u.raw_reads + u.raw_writes

let stint_core_cost m u kind =
  base_cost m u kind + (m.c_coal_word * u.Srec.work) + (m.c_instr_event * events u)

let pint_core_cost m u kind = stint_core_cost m u kind + m.c_trace_push

let cracer_core_cost m u kind = base_cost m u kind + (m.c_hash_word * u.Srec.work)

(* The virtual treap workers an N-shard PINT pipeline occupies: every
   shard runs a {writer, lreader, rreader} triple, and the collector rides
   on shard 0's writer.  The paper's "P cores = (P−3) core workers +
   3 treap workers" accounting generalizes to P − treap_workers. *)
let treap_workers ~shards = 3 * shards

let treap_step_cost m ~records ~visits =
  (m.c_treap_strand * records) + (m.c_treap_visit * visits)

let treap_time m ~visits ~strands ~treaps =
  (float_of_int m.c_treap_visit *. visits)
  +. (float_of_int m.c_treap_strand *. strands *. float_of_int treaps)
