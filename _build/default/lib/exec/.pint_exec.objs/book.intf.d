lib/exec/book.mli: Srec
