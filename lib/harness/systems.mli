(** Run one (workload, race-detection system, worker count) configuration
    under the virtual-time simulator and return its measurements.

    Worker-count convention: [workers] is the number of {e core} workers in
    the simulated runtime.  For PINT the three treap workers ride on top
    (the paper's "P cores = (P−3) core workers + 3 treap workers" becomes
    [workers = P - 3] at the call site); for the baseline and C-RACER all
    [P] cores are core workers; STINT is serial and ignores [workers].

    One-core semantics matches §IV-A: PINT on one core runs the whole core
    component first and then the access-history component, so its time is
    the sum (not the max) of the component times. *)

type system = Base | Stint_sys | Pint_sys | Cracer_sys

val system_name : system -> string

(** The detector names {!make_detector} accepts, in canonical order. *)
val detector_names : string list

(** [make_detector ?seed ?shards ?stage_cost name] — the one place a
    detector is constructed from its command-line name ([none], [stint],
    [cracer] or [pint]); shared by [pint_run], [pint_replay] and the bench
    harness so the selection logic cannot drift.

    Returns the detector handle together with the pipeline stages an
    executor must drive for it — empty for the synchronous detectors, the
    writer + reader treap-worker stages for PINT (the same {!Stage.t} values
    the detector's own [drain] falls back to, so metrics accumulate in one
    place no matter who steps them).  [seed] defaults to each detector's own
    default; [shards] (PINT only) selects the address-range shard count —
    each shard runs its own {writer, lreader, rreader} treap triple off its
    own AHQ lane; [stage_cost] (PINT only) prices a stage step for the
    virtual-time
    simulator.  [obs] (default {!Obs.disabled}) attaches an observability
    session: detector-side tracks and histograms are registered here, and
    for PINT each pipeline stage gets the session ring matching its stage
    name, so stage spans and AHQ counters land on the right Chrome-trace
    track.  [bp_rounds] (PINT only, default 0) enables collector
    backpressure for real-domain runs (see
    {!Pint_detector.set_backpressure}) — leave 0 for [seq]/[sim].  [None]
    for an unknown name. *)
val make_detector :
  ?seed:int ->
  ?shards:int ->
  ?stage_cost:(records:int -> visits:int -> int) ->
  ?obs:Obs.t ->
  ?bp_rounds:int ->
  string ->
  (Detector.t * Stage.t list) option

(** [micropools stages] — group a flat stage list into shard micropools
    for [Par_exec.config.pools]: stages sharing a shard index (per
    {!Pint_detector.role_of_stage_name}) form one pool, in shard order;
    unrecognized stages get singleton pools.  Equals
    {!Pint_detector.stage_pools} on a PINT stage list, but works on the
    generic list {!make_detector} returns. *)
val micropools : Stage.t list -> Stage.t list list

type measurement = {
  system : string;
  workload : string;
  workers : int;  (** core workers *)
  time : float;  (** virtual cycles for the whole run *)
  core_time : float;  (** core-component makespan *)
  writer_time : float;
  lreader_time : float;
  rreader_time : float;
  races : int;
  checked : bool;  (** result verification outcome *)
  n_steals : int;
  n_strands : int;
  diags : (string * float) list;
}

(** [shards] (default 1) runs PINT with the N-shard access-history
    topology (shards × {writer, lreader, rreader} treap workers, one AHQ
    lane per shard); ignored for the other systems. *)
val run :
  ?model:Cost_model.t ->
  ?seed:int ->
  ?shards:int ->
  workload:Workload.t ->
  size:int ->
  base:int ->
  workers:int ->
  system ->
  measurement

(** [vsec cycles] — virtual cycles rendered as "virtual seconds"
    (1 vs = 10⁶ cycles), the unit the figure tables print. *)
val vsec : float -> float
