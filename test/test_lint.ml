(* pint_lint end-to-end: run the rule engine in-process over the
   deliberately broken fixture module (test/lint_fixture/bad_module.ml)
   and assert every rule class fires, then assert baseline suppression
   and ownership-manifest coverage behave as documented.

   The fixture .cmt sits in the build tree next to this executable, so
   resolving it relative to [Sys.executable_name] works under both
   [dune runtest] and [dune exec]. *)

open Lint_core

let fixture_cmt =
  Filename.concat
    (Filename.dirname Sys.executable_name)
    "lint_fixture/.lint_fixture.objs/byte/bad_module.cmt"

let with_temp_file contents f =
  let path = Filename.temp_file "lint_test" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc contents;
      close_out oc;
      f path)

let run ?(baseline = Lint_baseline.empty) ?(ownership = Lint_ownership.empty) () =
  if not (Sys.file_exists fixture_cmt) then
    Alcotest.failf "fixture cmt not found at %s (cwd %s)" fixture_cmt (Sys.getcwd ());
  Lint_engine.run ~baseline ~ownership [ fixture_cmt ]

let by_rule report rule =
  List.filter (fun f -> f.Lint_types.rule = rule) report.Lint_engine.findings

let kinds fs = List.sort_uniq compare (List.map (fun f -> f.Lint_types.kind) fs)

(* ------------------------------------------------------------ rule firing *)

let test_r1_hot_alloc () =
  let report = run () in
  let r1 = by_rule report Lint_types.R1_hot_alloc in
  Alcotest.(check bool) "R1 fired" true (r1 <> []);
  List.iter
    (fun f ->
      Alcotest.(check string) "R1 findings sit in the hot function" "hot_alloc" f.Lint_types.context)
    r1;
  let ks = kinds r1 in
  List.iter
    (fun k -> Alcotest.(check bool) (k ^ " reported") true (List.mem k ks))
    [ "tuple"; "closure"; "construct" ]

let test_r2_poly_compare () =
  let report = run () in
  let r2 = by_rule report Lint_types.R2_poly_compare in
  Alcotest.(check bool) "R2 fired" true (r2 <> []);
  Alcotest.(check bool) "flagged in same_treap" true
    (List.exists (fun f -> f.Lint_types.context = "same_treap") r2)

let test_r3_undeclared_field () =
  let report = run () in
  let r3 = by_rule report Lint_types.R3_ownership in
  let contexts = List.map (fun f -> f.Lint_types.context) r3 in
  Alcotest.(check bool) "mutable field reported" true
    (List.mem "Bad_module.shared.hits" contexts);
  Alcotest.(check bool) "container field reported" true
    (List.mem "Bad_module.shared.log" contexts);
  Alcotest.(check int) "both fields inventoried" 2 report.Lint_engine.fields_checked

let test_r4_forbidden () =
  let report = run () in
  let r4 = by_rule report Lint_types.R4_forbidden in
  Alcotest.(check bool) "R4 fired" true (r4 <> []);
  Alcotest.(check bool) "Obj.magic named in sneaky" true
    (List.exists
       (fun f ->
         f.Lint_types.context = "sneaky"
         && Str_split.starts_with ~prefix:"forbidden" f.Lint_types.kind)
       r4)

(* ------------------------------------------------------------- baseline *)

let test_baseline_suppresses () =
  let unsuppressed = run () in
  let n_r1 = List.length (by_rule unsuppressed Lint_types.R1_hot_alloc) in
  Alcotest.(check bool) "fixture has R1 findings to suppress" true (n_r1 > 0);
  with_temp_file
    "R1 bad_module.ml hot_alloc tuple -- fixture\n\
     R1 bad_module.ml hot_alloc closure -- fixture\n\
     R1 bad_module.ml hot_alloc construct -- fixture\n\
     R1 bad_module.ml hot_alloc partial-apply -- fixture\n"
    (fun path ->
      let baseline = Lint_baseline.load path in
      let report = run ~baseline () in
      Alcotest.(check int) "all R1 suppressed" 0
        (List.length (by_rule report Lint_types.R1_hot_alloc));
      Alcotest.(check bool) "suppression counted" true (report.Lint_engine.suppressed >= n_r1);
      (* R2/R4 must not be swallowed by R1 entries *)
      Alcotest.(check bool) "R2 still reported" true
        (by_rule report Lint_types.R2_poly_compare <> []);
      Alcotest.(check bool) "R4 still reported" true
        (by_rule report Lint_types.R4_forbidden <> []))

let test_baseline_requires_justification () =
  with_temp_file "R1 bad_module.ml hot_alloc tuple\n" (fun path ->
      Alcotest.check_raises "missing justification rejected"
        (Lint_baseline.Malformed "baseline line 1: missing '-- justification': R1 bad_module.ml hot_alloc tuple")
        (fun () -> ignore (Lint_baseline.load path)))

let test_baseline_stale_entry () =
  with_temp_file "R1 nosuch.ml nowhere tuple -- obsolete\n" (fun path ->
      let baseline = Lint_baseline.load path in
      let report = run ~baseline () in
      Alcotest.(check int) "stale entry surfaced" 1
        (List.length report.Lint_engine.stale_baseline))

(* ------------------------------------------------------------- ownership *)

let test_ownership_coverage () =
  with_temp_file
    "| Field | Owner | Justification |\n\
     |---|---|---|\n\
     | Bad_module.shared.* | test owner | fixture |\n"
    (fun path ->
      let ownership = Lint_ownership.load path in
      let report = run ~ownership () in
      let r3 =
        List.filter
          (fun f -> f.Lint_types.kind = "undeclared-mutable-field")
          (by_rule report Lint_types.R3_ownership)
      in
      Alcotest.(check int) "wildcard covers both fields" 0 (List.length r3))

let test_ownership_stale_entry () =
  with_temp_file "| Bad_module.gone.field | nobody | fixture |\n" (fun path ->
      let ownership = Lint_ownership.load path in
      let report = run ~ownership () in
      Alcotest.(check bool) "stale manifest row reported" true
        (List.exists
           (fun f -> f.Lint_types.kind = "stale-manifest-entry")
           (by_rule report Lint_types.R3_ownership)))

let () =
  Alcotest.run "pint_lint"
    [
      ( "rules",
        [
          Alcotest.test_case "R1 hot allocation" `Quick test_r1_hot_alloc;
          Alcotest.test_case "R2 polymorphic compare" `Quick test_r2_poly_compare;
          Alcotest.test_case "R3 undeclared field" `Quick test_r3_undeclared_field;
          Alcotest.test_case "R4 forbidden ident" `Quick test_r4_forbidden;
        ] );
      ( "baseline",
        [
          Alcotest.test_case "suppresses matching findings" `Quick test_baseline_suppresses;
          Alcotest.test_case "requires justification" `Quick test_baseline_requires_justification;
          Alcotest.test_case "reports stale entries" `Quick test_baseline_stale_entry;
        ] );
      ( "ownership",
        [
          Alcotest.test_case "wildcard coverage" `Quick test_ownership_coverage;
          Alcotest.test_case "stale manifest row" `Quick test_ownership_stale_entry;
        ] );
    ]
