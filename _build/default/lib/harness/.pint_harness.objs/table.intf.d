lib/harness/table.mli:
