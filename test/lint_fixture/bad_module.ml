(* Every pint_lint rule class violated on purpose.  test_lint.ml runs the
   linter over this module's .cmt and asserts each violation is found; the
   @lint alias never scans it (it only walks lib/). *)

(* R3: a mutable field and a mutable-container field, neither atomic nor
   (in the test) declared in any ownership manifest. *)
type shared = { mutable hits : int; log : float array }

let bump s = s.hits <- s.hits + 1

(* R1: allocations inside a [@pint.hot] body — a tuple, a closure over
   [x], a cons cell, and the option box. *)
let[@pint.hot] hot_alloc x =
  let pair = (x, x + 1) in
  let f = fun y -> y + x in
  Some (f (fst pair) :: [ x ])

(* R2: polymorphic equality at a type containing treap nodes. *)
let same_treap (a : int Itreap.t) (b : int Itreap.t) = a = b

(* R4: forbidden ident. *)
let sneaky (x : int) : float = Obj.magic x
