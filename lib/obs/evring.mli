(** Per-track fixed-capacity event ring buffer.

    Overwrite-oldest semantics: emission never blocks and never allocates;
    when the ring wraps, the oldest events are dropped and accounted in
    {!dropped}.  A ring has exactly one writing owner (the pipeline stage
    or worker whose track it is); export reads happen after the run.

    The emit entry points are [@pint.hot]: their bodies are int stores
    only, and a disabled ring (every ring of a disabled {!Obs} session is
    {!null}) short-circuits on one bool load, so hot pipeline call sites
    pass pint_lint R1 with profiling compiled in. *)

type t

(** The shared disabled ring: every emit is a no-op. *)
val null : t

val create : name:string -> clock:Clock.t -> capacity:int -> t

val name : t -> string
val capacity : t -> int
val enabled : t -> bool

(** Read the ring's clock (advances a counter clock). *)
val now : t -> int

(** Whether the ring's clock is virtual (see {!Clock.is_virtual}). *)
val is_virtual : t -> bool

(** Instant event stamped with the clock's current time. *)
val emit : t -> kind:int -> arg:int -> unit

(** Instant event at an explicit timestamp. *)
val emit_at : t -> ts:int -> kind:int -> arg:int -> unit

(** Span event; also advances a virtual clock past [ts + dur] so later
    implicitly-stamped events on this track stay monotone. *)
val emit_span : t -> ts:int -> dur:int -> kind:int -> arg:int -> unit

(** Total events emitted (including dropped). *)
val recorded : t -> int

(** Events still in the ring. *)
val retained : t -> int

(** Events lost to wraparound. *)
val dropped : t -> int

(** Iterate retained events, oldest first. *)
val iter : t -> (ts:int -> dur:int -> kind:int -> arg:int -> unit) -> unit
