lib/interval/coalescer.ml: Interval Vec
