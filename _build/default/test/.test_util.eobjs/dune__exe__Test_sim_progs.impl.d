test/test_sim_progs.ml: Fj List Membuf Rng
