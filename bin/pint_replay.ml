(* pint_replay — capture, inspect, replay and differentially check traces.

   Subcommands:
     capture   run a workload under an executor and record a trace file
     stats     print a trace's metadata and summary counts
     replay    drive one detector from a trace (no workload execution)
     diff      replay two detectors from the same trace and diff race sets
     profile   replay with pipeline tracing and export a Chrome trace

   Examples:
     pint_replay capture -w heat -n 32 -b 8 --racy -o heat.trace
     pint_replay stats heat.trace
     pint_replay replay heat.trace -d pint
     pint_replay diff heat.trace --left pint --right stint

   [diff] exits 1 when the detectors disagree — by Theorem 5 the three
   detectors must report the same deduplicated (earlier, later, kind) race
   set for any trace, so a non-empty divergence is a detector bug. *)

open Cmdliner

let load_trace path =
  try Tracefile.load path
  with
  | Tracefile.Error msg ->
      Printf.eprintf "%s: corrupt trace: %s\n" path msg;
      exit 2
  | Sys_error msg ->
      Printf.eprintf "cannot read trace: %s\n" msg;
      exit 2

let make_detector ?obs ?(shards = 1) name =
  match Systems.make_detector ~shards ?obs name with
  | Some ds -> ds
  | None ->
      Printf.eprintf "unknown detector %S (%s)\n" name (String.concat "|" Systems.detector_names);
      exit 2

let shards_arg ?(names = [ "shards" ]) ~doc () = Arg.(value & opt int 1 & info names ~doc)

(* -- capture ------------------------------------------------------------- *)

let capture_cmd =
  let run workload size base racy exec workers seed detector shards out =
    let w =
      try Registry.find workload
      with Not_found ->
        Printf.eprintf "unknown workload %S; available: %s\n" workload
          (String.concat ", " (List.map (fun w -> w.Workload.name) (Registry.all ())));
        exit 2
    in
    let size = Option.value size ~default:w.Workload.default_size in
    let base = Option.value base ~default:w.Workload.default_base in
    let inst =
      if racy then
        match w.Workload.racy with
        | Some f -> f ~size ~base
        | None ->
            Printf.eprintf "workload %s has no racy variant\n" workload;
            exit 2
      else w.Workload.make ~size ~base
    in
    let det, stages = make_detector ~shards detector in
    let meta =
      [
        ("workload", workload);
        ("size", string_of_int size);
        ("base", string_of_int base);
        ("racy", string_of_bool racy);
        ("detector", detector);
        ("exec", exec);
        ("seed", string_of_int seed);
      ]
    in
    let driver = Tracefile.capture ~meta ~path:out det.Detector.driver in
    let strands =
      match exec with
      | "seq" ->
          let r = Seq_exec.run ~driver inst.Workload.run in
          r.Seq_exec.n_strands
      | "sim" ->
          let config = { Sim_exec.default_config with n_workers = workers; seed; stages } in
          let r = Sim_exec.run ~config ~driver inst.Workload.run in
          r.Sim_exec.n_strands
      | "par" ->
          let config =
            {
              Par_exec.n_workers = workers;
              seed;
              pools = Systems.micropools stages;
              obs = Obs.disabled;
            }
          in
          let r = Par_exec.run ~config ~driver inst.Workload.run in
          r.Par_exec.n_strands
      | e ->
          Printf.eprintf "unknown executor %S (seq|sim|par)\n" e;
          exit 2
    in
    let races = Detector.races det in
    Printf.printf "captured %d strand(s) to %s (detector=%s races=%d)\n" strands out detector
      (List.length races)
  in
  let workload = Arg.(value & opt string "sort" & info [ "w"; "workload" ] ~doc:"Benchmark.") in
  let size = Arg.(value & opt (some int) None & info [ "n"; "size" ] ~doc:"Problem size.") in
  let base = Arg.(value & opt (some int) None & info [ "b"; "base" ] ~doc:"Base-case size.") in
  let racy = Arg.(value & flag & info [ "racy" ] ~doc:"Capture the race-injected variant.") in
  let exec =
    Arg.(value & opt string "seq" & info [ "e"; "exec" ] ~doc:"Executor: seq, sim or par.")
  in
  let workers = Arg.(value & opt int 4 & info [ "p"; "workers" ] ~doc:"Core workers (sim/par).") in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Scheduler seed (sim/par).") in
  let detector =
    Arg.(
      value
      & opt string "none"
      & info [ "d"; "detector" ] ~doc:"Detector to run during capture (none|stint|cracer|pint).")
  in
  let out =
    Arg.(
      required
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Trace file to write.")
  in
  let shards =
    shards_arg ~doc:"Address-range shards for the capture-time detector (pint only)." ()
  in
  Cmd.v
    (Cmd.info "capture" ~doc:"Run a workload and record its trace")
    Term.(
      const run $ workload $ size $ base $ racy $ exec $ workers $ seed $ detector $ shards $ out)

(* -- stats --------------------------------------------------------------- *)

let trace_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"TRACE" ~doc:"Trace file.")

let stats_cmd =
  let run path =
    let t = load_trace path in
    Printf.printf "trace: %s\n" path;
    Printf.printf "version: %d\n" t.Tracefile.version;
    List.iter (fun (k, v) -> Printf.printf "meta %s = %s\n" k v) t.Tracefile.meta;
    let reads, writes = Tracefile.interval_totals t in
    Printf.printf "strands: %d\n" (Tracefile.entry_count t);
    Printf.printf "trace boundaries: %d\n" (Tracefile.boundary_count t);
    Printf.printf "intervals: %d read, %d write\n" reads writes;
    Printf.printf "bytes: %d\n" (String.length (Tracefile.to_bytes t))
  in
  Cmd.v (Cmd.info "stats" ~doc:"Print a trace's metadata and counts") Term.(const run $ trace_arg)

(* -- replay -------------------------------------------------------------- *)

let max_report_arg = Arg.(value & opt int 10 & info [ "max-report" ] ~doc:"Races to print.")

let replay_cmd =
  let run path detector shards max_report =
    let t = load_trace path in
    let det, _ = make_detector ~shards detector in
    let o =
      try Replay.run t det
      with Replay.Corrupt msg ->
        Printf.eprintf "%s: inconsistent trace: %s\n" path msg;
        exit 2
    in
    Printf.printf "replayed %d strand(s) through %s\n" o.Replay.n_strands o.Replay.detector;
    Printf.printf "races: %d distinct pair(s)\n" (List.length o.Replay.races);
    List.iteri
      (fun i r ->
        if i < max_report then Format.printf "  %a@." Report.pp_race r
        else if i = max_report then
          Printf.printf "  ... (%d more)\n" (List.length o.Replay.races - max_report))
      o.Replay.races;
    List.iter (fun (k, v) -> Printf.printf "diag %s = %g\n" k v) o.Replay.diagnostics
  in
  Cmd.v
    (Cmd.info "replay" ~doc:"Drive one detector from a trace")
    Term.(
      const run $ trace_arg
      $ Arg.(value & opt string "pint" & info [ "d"; "detector" ] ~doc:"none|stint|cracer|pint.")
      $ shards_arg ~doc:"Address-range shards for the replayed detector (pint only)." ()
      $ max_report_arg)

(* -- profile ------------------------------------------------------------- *)

let profile_cmd =
  let run path detector shards out =
    let t = load_trace path in
    (* counter clock: replay has no meaningful timeline; ticks give each
       track a monotone, deterministic time base *)
    let obs = Obs.create ~clock:(Clock.counter ()) () in
    let det, _ = make_detector ~obs ~shards detector in
    let o =
      try Replay.run ~wrap:(Obs_hooks.instrument obs) t det
      with Replay.Corrupt msg ->
        Printf.eprintf "%s: inconsistent trace: %s\n" path msg;
        exit 2
    in
    let meta = ("trace", path) :: ("detector", detector) :: t.Tracefile.meta in
    Obs.write_chrome ~meta obs ~path:out;
    Printf.printf "replayed %d strand(s) through %s; %d race(s)\n" o.Replay.n_strands
      o.Replay.detector
      (List.length o.Replay.races);
    Printf.printf "profile written to %s (%d event(s), %d dropped)\n" out (Obs.events obs)
      (Obs.dropped obs);
    List.iter (fun (k, v) -> Printf.printf "  %s = %g\n" k v) (Obs.summary obs)
  in
  Cmd.v
    (Cmd.info "profile" ~doc:"Replay a trace with pipeline tracing and export a Chrome trace")
    Term.(
      const run $ trace_arg
      $ Arg.(value & opt string "pint" & info [ "d"; "detector" ] ~doc:"none|stint|cracer|pint.")
      $ shards_arg ~doc:"Address-range shards for the profiled detector (pint only)." ()
      $ Arg.(
          value
          & opt string "profile.trace.json"
          & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Chrome trace-event JSON to write."))

(* -- diff ---------------------------------------------------------------- *)

let diff_cmd =
  let run path left left_shards right right_shards =
    let t = load_trace path in
    let dl, _ = make_detector ~shards:left_shards left
    and dr, _ = make_detector ~shards:right_shards right in
    let d =
      try Replay.differential t dl dr
      with Replay.Corrupt msg ->
        Printf.eprintf "%s: inconsistent trace: %s\n" path msg;
        exit 2
    in
    if Replay.no_divergence d then Printf.printf "%s: %s and %s agree\n" path left right
    else begin
      Printf.printf "%s: %s and %s DIVERGE\n" path left right;
      Format.printf "%a@." Replay.pp_divergence d;
      exit 1
    end
  in
  Cmd.v
    (Cmd.info "diff" ~doc:"Replay two detectors from one trace and diff their race sets")
    Term.(
      const run $ trace_arg
      $ Arg.(value & opt string "pint" & info [ "left" ] ~doc:"Left detector.")
      $ shards_arg ~names:[ "left-shards" ] ~doc:"Shards for the left detector (pint only)." ()
      $ Arg.(value & opt string "stint" & info [ "right" ] ~doc:"Right detector.")
      $ shards_arg ~names:[ "right-shards" ] ~doc:"Shards for the right detector (pint only)." ())

let () =
  let info =
    Cmd.info "pint_replay" ~doc:"Capture, replay and differentially check run traces"
  in
  exit (Cmd.eval (Cmd.group info [ capture_cmd; stats_cmd; replay_cmd; diff_cmd; profile_cmd ]))
