(** Deterministic pseudo-random number generation.

    All randomness in the repository (treap priorities, steal-victim
    selection, workload input data) flows through this module so that every
    run is bit-reproducible from a seed.  The generator is SplitMix64
    (Steele, Lea & Flood 2014): 64-bit state, one multiply-xorshift round per
    draw, and splittable so independent components can derive independent
    streams from one master seed. *)

type t

(** [create seed] makes a fresh generator.  Equal seeds give equal streams. *)
val create : int -> t

(** [copy t] duplicates the generator state. *)
val copy : t -> t

(** [split t] derives a new, statistically independent generator and
    advances [t].  Used to hand each worker / treap its own stream. *)
val split : t -> t

(** [next t] returns the next raw 63-bit non-negative value. *)
val next : t -> int

(** [int t bound] returns a uniform value in [\[0, bound)].
    @raise Invalid_argument if [bound <= 0]. *)
val int : t -> int -> int

(** [float t] returns a uniform float in [\[0, 1)]. *)
val float : t -> float

(** [bool t] returns a uniform boolean. *)
val bool : t -> bool

(** [shuffle t a] permutes [a] in place (Fisher–Yates). *)
val shuffle : t -> 'a array -> unit
