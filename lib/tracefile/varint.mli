(** LEB128 variable-length integer coding for the trace-file format.

    Non-negative OCaml ints are written 7 bits at a time, least significant
    group first, with the high bit of each byte marking continuation — the
    classic unsigned LEB128 layout.  Small values (interval widths, flags,
    deltas between sorted interval bounds) take one byte; nothing in a trace
    is negative, so no zigzag step is needed. *)

(** [write buf n] appends the encoding of [n] to [buf].
    @raise Invalid_argument if [n < 0]. *)
val write : Buffer.t -> int -> unit

(** A read cursor over an in-memory byte string. *)
type cursor = { data : string; mutable pos : int }

val cursor : string -> cursor

(** True iff the cursor has consumed every byte. *)
val at_end : cursor -> bool

(** [read c] decodes one integer, advancing the cursor.
    @raise Failure on truncated input or a value exceeding [max_int]. *)
val read : cursor -> int

(** [read_byte c] — one raw byte (tags, flags).
    @raise Failure on truncated input. *)
val read_byte : cursor -> int

(** [read_string c len] — [len] raw bytes.
    @raise Failure on truncated input. *)
val read_string : cursor -> int -> string
