lib/exec/fj.mli: Aspace Membuf
