lib/detect/nodetect.mli: Detector
