(* Fixed-capacity event ring: four parallel int arrays, overwrite-oldest.
   One ring per track (pipeline stage, core worker, serial detector); the
   track's single owner is the only writer, so no synchronization is
   needed (OWNERSHIP.md).  The disabled path is one immediate bool load —
   cheap enough to leave in [@pint.hot] call sites. *)

type t = {
  name : string;
  clock : Clock.t;
  cap : int;
  ts : int array;
  kinds : int array;
  args : int array;
  durs : int array;
  mutable n : int; (* total events emitted; live slot = n mod cap *)
  enabled : bool;
}

let null =
  {
    name = "";
    clock = Clock.null;
    cap = 1;
    ts = [| 0 |];
    kinds = [| 0 |];
    args = [| 0 |];
    durs = [| 0 |];
    n = 0;
    enabled = false;
  }

let create ~name ~clock ~capacity =
  if capacity <= 0 then invalid_arg "Evring.create: capacity must be positive";
  {
    name;
    clock;
    cap = capacity;
    ts = Array.make capacity 0;
    kinds = Array.make capacity 0;
    args = Array.make capacity 0;
    durs = Array.make capacity 0;
    n = 0;
    enabled = true;
  }

let name t = t.name
let capacity t = t.cap
let enabled t = t.enabled
let now t = Clock.now t.clock
let is_virtual t = Clock.is_virtual t.clock

let[@pint.hot] emit_span t ~ts ~dur ~kind ~arg =
  if t.enabled then begin
    Clock.catch_up t.clock (ts + dur);
    let i = t.n mod t.cap in
    t.ts.(i) <- ts;
    t.durs.(i) <- dur;
    t.kinds.(i) <- kind;
    t.args.(i) <- arg;
    t.n <- t.n + 1
  end

let[@pint.hot] emit_at t ~ts ~kind ~arg = emit_span t ~ts ~dur:0 ~kind ~arg

let[@pint.hot] emit t ~kind ~arg =
  if t.enabled then begin
    let ts = Clock.now t.clock in
    let i = t.n mod t.cap in
    t.ts.(i) <- ts;
    t.durs.(i) <- 0;
    t.kinds.(i) <- kind;
    t.args.(i) <- arg;
    t.n <- t.n + 1
  end

let recorded t = t.n
let retained t = if t.n < t.cap then t.n else t.cap
let dropped t = t.n - retained t

(* Oldest retained event first. *)
let iter t f =
  let live = retained t in
  for k = t.n - live to t.n - 1 do
    let i = k mod t.cap in
    f ~ts:t.ts.(i) ~dur:t.durs.(i) ~kind:t.kinds.(i) ~arg:t.args.(i)
  done
