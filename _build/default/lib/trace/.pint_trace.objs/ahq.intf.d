lib/trace/ahq.mli: Srec
