lib/exec/seq_exec.ml: Access Aspace Book Events Fj Fun Hooks Membuf Option Sp_order Srec
