(* R5 violation: a module-level mutable value touched from spawned context
   with no OWNERSHIP.md row and no publication edge.  Expected finding:
   [R5/unpublished-shared-ref] on [Fx_r5_ref.hits]. *)

let hits = ref 0

let spin () =
  let d = Domain.spawn (fun () -> hits := !hits + 1) in
  Domain.join d;
  !hits
