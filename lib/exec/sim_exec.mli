(** Virtual-time work-stealing simulator.

    Executes the fork-join computation {e for real} (every strand's user code
    runs, every detector data structure is exercised) on one OS thread, while
    simulating P core workers of a Cilk-style continuation-stealing runtime
    in discrete virtual time.  This is the performance substrate for every
    figure in the paper's evaluation (see DESIGN.md §2: the container has one
    physical core, so wall-clock parallel measurements are replaced by a
    deterministic model driven by measured event counts).

    Model:
    - each virtual worker has a clock; the scheduler always advances the
      lowest-clock runnable worker, so interleaving is clock-causal and, with
      a fixed seed, bit-reproducible;
    - user code is chopped into strands with OCaml effects: [spawn]/[sync]
      suspend the fiber and return control to the scheduler;
    - a worker executes spawned children first and pushes the continuation
      on its deque (bottom); an idle worker steals from the top of a random
      victim's deque, paying [c_steal], and can only take an item whose push
      time has passed;
    - a strand's cost is charged at its finishing boundary via the
      [strand_cost] closure — the harness supplies per-detector cost models;
    - non-trivial syncs suspend the frame; the last returning child resumes
      it on its own worker, as in Cilk;
    - pipeline {e stages} (PINT's treap workers, as engine {!Stage}s) are
      stepped after every core event and accumulate their processing costs
      on their own clocks; the run's [total] is the max over all component
      clocks, and the stages' own metrics accumulate through {!Stage.exec}
      exactly as they do on real domains.

    Constraint inherited from the cactus-stack simulation: a [with_frame]
    body must pop on the worker that pushed it, i.e. it must not contain a
    non-trivial sync; violations fail fast with an explicit error. *)

type config = {
  n_workers : int;
  seed : int;
  strand_cost : Srec.t -> Events.finish_kind -> int;
  c_steal : int;
  c_steal_fail : int;
  stages : Stage.t list;  (** pipeline stages stepped in virtual time *)
  obs_clock : Clock.t;
      (** profiling clock (default {!Clock.null}); when a manual clock from
          a live [Obs] session is supplied, the simulator pins it to the
          acting worker's or stage's virtual timeline before every hook and
          stage step, making seeded profiled runs trace-deterministic *)
}

type result = {
  makespan : int;  (** max core-worker clock *)
  total : int;  (** max over core workers and stages *)
  worker_clocks : int array;
  stage_clocks : (string * int) list;
  n_steals : int;
  n_failed_steals : int;
  n_strands : int;
  n_spawns : int;
  n_nontrivial_syncs : int;
  core_work : int;  (** sum of all strand costs (1-worker-equivalent time) *)
}

val default_strand_cost : Srec.t -> Events.finish_kind -> int

val default_config : config

(** [run ?aspace ~config ~driver main] — simulate [main] under [config] with
    the given detector.  Deterministic in ([config.seed], program). *)
val run : ?aspace:Aspace.t -> config:config -> driver:Hooks.driver -> (unit -> unit) -> result
