type t = {
  uid : int;
  sp : Sp_order.strand;
  mutable reads : Interval.t array;
  mutable writes : Interval.t array;
  mutable raw_reads : int;
  mutable raw_writes : int;
  mutable work : int;
  mutable compute : int;
  pred : int Atomic.t;
  mutable child : t option;
  mutable child_is_sync : bool;
  mutable is_spawn : bool;
  mutable clears : (int * int) list;
  mutable frees : (int * int) list;
  done_count : int Atomic.t;
  mutable finished_at : int;
  mutable cost : int;
  mutable obs_ts : int;
}

let make ~uid sp =
  {
    uid;
    sp;
    reads = [||];
    writes = [||];
    raw_reads = 0;
    raw_writes = 0;
    work = 0;
    compute = 0;
    pred = Atomic.make 0;
    child = None;
    child_is_sync = false;
    is_spawn = false;
    clears = [];
    frees = [];
    done_count = Atomic.make 0;
    finished_at = 0;
    cost = 0;
    obs_ts = 0;
  }

let sp_id t = Sp_order.id t.sp

let pp fmt t =
  Format.fprintf fmt "strand#%d(sp=%d,%dr/%dw)" t.uid (sp_id t) (Array.length t.reads)
    (Array.length t.writes)
