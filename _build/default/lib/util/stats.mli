(** Streaming summary statistics (count / mean / min / max / stddev).

    Used by the harness to aggregate repeated experiment runs the way the
    paper does ("average of five runs, standard deviation < 5%"). *)

type t

val create : unit -> t

(** [add t x] folds one observation into the summary. *)
val add : t -> float -> unit

val count : t -> int

(** Arithmetic mean; 0. when empty. *)
val mean : t -> float

(** Population standard deviation; 0. when fewer than two observations. *)
val stddev : t -> float

(** Relative standard deviation (stddev / mean); 0. when mean is 0. *)
val rel_stddev : t -> float

val min : t -> float
val max : t -> float

(** [merge a b] is a summary over both observation streams. *)
val merge : t -> t -> t
