(* pint_lint — static analysis over the .cmt typed trees dune produces.

   Usage:
     pint_lint [--baseline FILE] [--ownership FILE] [--json FILE]
               [--sarif FILE] [--allow-stale-baseline]
               [--dump-fields] [--dump-contexts] [--quiet] PATH...

   Each PATH is a .cmt file or a directory searched recursively for them.

   Exit-code contract:
     0  clean (every finding baselined, no stale suppressions)
     1  findings, or stale baseline entries without --allow-stale-baseline
     2  tool error: unreadable .cmt, malformed baseline or OWNERSHIP row *)

let () =
  let baseline_path = ref "" in
  let ownership_path = ref "" in
  let json_path = ref "" in
  let sarif_path = ref "" in
  let allow_stale = ref false in
  let dump = ref false in
  let dump_contexts = ref false in
  let quiet = ref false in
  let paths = ref [] in
  let spec =
    [
      ("--baseline", Arg.Set_string baseline_path, "FILE baseline suppression file");
      ("--ownership", Arg.Set_string ownership_path, "FILE OWNERSHIP.md manifest");
      ("--json", Arg.Set_string json_path, "FILE write a JSON report");
      ("--sarif", Arg.Set_string sarif_path, "FILE write a SARIF 2.1.0 report");
      ( "--allow-stale-baseline",
        Arg.Set allow_stale,
        " demote stale baseline entries from errors to warnings" );
      ("--dump-fields", Arg.Set dump, " print manifest rows for uncovered mutable fields");
      ("--dump-contexts", Arg.Set dump_contexts, " print the domain-context classification");
      ("--quiet", Arg.Set quiet, " only print the summary line");
    ]
  in
  Arg.parse spec (fun p -> paths := p :: !paths) "pint_lint [options] PATH...";
  if !paths = [] then begin
    prerr_endline "pint_lint: no .cmt paths given";
    exit 2
  end;
  let tool_error msg =
    prerr_endline ("pint_lint: error: " ^ msg);
    exit 2
  in
  try
    let ownership =
      if !ownership_path = "" then Lint_core.Lint_ownership.empty
      else Lint_core.Lint_ownership.load !ownership_path
    in
    if !dump then begin
      List.iter print_endline (Lint_core.Lint_engine.dump_fields ~ownership (List.rev !paths));
      exit 0
    end;
    if !dump_contexts then begin
      List.iter print_endline (Lint_core.Lint_engine.dump_contexts (List.rev !paths));
      exit 0
    end;
    let baseline =
      if !baseline_path = "" then Lint_core.Lint_baseline.empty
      else Lint_core.Lint_baseline.load !baseline_path
    in
    let report = Lint_core.Lint_engine.run ~baseline ~ownership (List.rev !paths) in
    if not !quiet then
      List.iter (fun f -> print_endline (Lint_core.Lint_types.to_string f)) report.findings;
    List.iter
      (fun (e : Lint_core.Lint_baseline.entry) ->
        Printf.eprintf "pint_lint: %s: stale baseline entry (line %d): %s %s %s %s\n"
          (if !allow_stale then "warning" else "error")
          e.Lint_core.Lint_baseline.e_line e.e_rule e.e_file e.e_context e.e_kind)
      report.stale_baseline;
    if !json_path <> "" then begin
      let oc = open_out !json_path in
      output_string oc (Lint_core.Lint_engine.json_report report);
      close_out oc
    end;
    if !sarif_path <> "" then begin
      let oc = open_out !sarif_path in
      output_string oc (Lint_core.Lint_engine.sarif_report report);
      close_out oc
    end;
    Printf.printf
      "pint_lint: %d module(s), %d mutable field(s) checked, %d row(s) verified (%d trusted), %d \
       finding(s), %d baselined\n"
      (List.length report.modules)
      report.fields_checked report.checked_rows report.trusted_rows
      (List.length report.findings)
      report.suppressed;
    let stale_fails = report.stale_baseline <> [] && not !allow_stale in
    exit (if report.findings = [] && not stale_fails then 0 else 1)
  with
  | Lint_core.Lint_baseline.Malformed m -> tool_error m
  | Lint_core.Lint_ownership.Malformed m -> tool_error m
  | Lint_core.Lint_engine.Tool_error m -> tool_error m
