(* R5 violations around a mismatched publish/acquire pair.  The manifest
   row supplied by the test claims [Fx_r5_pair.t.cell] with an [edges:]
   owner-context.  Expected findings:
     [R5/unpaired-edge]     "fx.cell" is declared on the field but nothing
                            publishes it (the writer publishes "fx.wrong")
     [R5/unpaired-edge]     "fx.cell" has no acquirer either
     [R5/unpaired-edge]     "fx.wrong" is published but no field declares it
     [R5/unacquired-read]   the spawned reader path never acquires *)

type t = {
  mutable cell : int [@pint.publishes "fx.cell"];
  tag : string;
}

let[@pint.publishes "fx.wrong"] writer t = t.cell <- 1
let reader t = t.cell

let start t =
  let d = Domain.spawn (fun () -> ignore (reader t)) in
  writer t;
  Domain.join d
