type t = {
  name : string;
  driver : Hooks.driver;
  report : Report.t;
  drain : unit -> unit;
  diagnostics : unit -> (string * float) list;
  validate : unit -> unit;
}

let races t =
  t.drain ();
  Report.races t.report

let race_count t =
  t.drain ();
  Report.count t.report

let diag t key = match List.assoc_opt key (t.diagnostics ()) with Some v -> v | None -> 0.
