lib/exec/sim_exec.ml: Access Array Aspace Book Effect Events Fj Fun Hooks List Membuf Option Rng Sp_order Srec
