test/test_detect_seq.mli:
