lib/exec/par_exec.mli: Aspace Hooks
