(* Facade — re-exports; subsystems are unwrapped libraries so their modules
   are also directly accessible.  This module groups them for documentation
   and for qualified access from client code. *)
module Rng = Rng
module Vec = Vec
module Stats = Stats
module Om = Om
module Sp_order = Sp_order
module Interval = Interval
module Coalescer = Coalescer
module Itreap = Itreap
module Access = Access
module Aspace = Aspace
module Membuf = Membuf
module Srec = Srec
module Events = Events
module Hooks = Hooks
module Book = Book
module Fj = Fj
module Seq_exec = Seq_exec
module Trace = Trace
module Ahq = Ahq
module Report = Report
module Detector = Detector
module Policies = Policies
module Nodetect = Nodetect
module Stint = Stint
module Cracer = Cracer
module Pint_detector = Pint_detector
module Sim_exec = Sim_exec
module Par_exec = Par_exec
module Workload = Workload
module Registry = Registry
module Matview = Matview
module Cost_model = Cost_model
module Systems = Systems
module Table = Table
module Figures = Figures
