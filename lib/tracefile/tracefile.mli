(** Persisted run traces: a versioned, CRC-checked binary format recording a
    run's strand DAG and per-strand access summaries, plus a capture tee that
    records from any executor.

    A trace holds one {!entry} per executed strand: its boundary kinds (with
    the strand-DAG links the executors put in {!Events.finish_kind}), its
    coalesced read/write interval sets, the stack ranges it cleared and heap
    ranges it freed, and the virtual-time metadata the simulator assigns.
    Together these are exactly what the detectors consume through the
    {!Hooks} contract, so a trace can later be replayed through any detector
    without re-executing the workload (see {!Replay}).

    {2 File layout (version 1)}

    {v
      magic   "PINTRACE"                                    8 raw bytes
      body    version        varint
              meta           varint count, then per pair:
                             varint klen, klen bytes, varint vlen, vlen bytes
              n_entries      varint
              entries        see below
      crc     CRC-32 of body                                4 bytes LE
    v}

    Every integer is an unsigned LEB128 varint ({!Varint}); interval arrays
    are delta-coded against the previous bound, so the dense, sorted sets the
    coalescer emits cost ~2 bytes per interval.  The trailing CRC-32
    ({!Crc32}) covers the whole body; [load] rejects bad magic, unknown
    versions, truncation and checksum mismatches with {!Error}.

    Capture is schedule-faithful: entries appear in finish order, boundary
    flags ([stolen], [trivial]) are recorded as the executor reported them,
    and uids are the run's creation order — so a deterministic (seeded
    simulator) run captures to a byte-identical file every time.  Replay
    does not depend on entry order: it follows the uid links. *)

exception Error of string

val magic : string
val current_version : int

(** Why a strand ended, with record references flattened to uids.  [Spawn]
    additionally carries the uid of the first strand of the spawned function
    ([child]) — the one executors start immediately after the spawn — which
    the tee resolves and the replayer needs to walk the DAG depth-first. *)
type finish =
  | Spawn of { cont : int; sync : int; child : int; first : bool }
  | Return of { cont_stolen : bool; parent_sync : int option }
  | Sync of { trivial : bool; sync : int }
  | Root

type entry = {
  uid : int;  (** the run's creation-order uid *)
  start : Events.start_kind;
  finish : finish;
  reads : Interval.t array;  (** coalesced, sorted, disjoint *)
  writes : Interval.t array;
  clears : (int * int) list;  (** (base, len) stack ranges, in {!Srec.t}[.clears] order *)
  frees : (int * int) list;  (** (base, len) heap ranges, in arrival order *)
  raw_reads : int;
  raw_writes : int;
  work : int;
  compute : int;
  finished_at : int;  (** virtual finish time (simulator runs; 0 elsewhere) *)
  cost : int;  (** virtual strand cost (simulator runs; 0 elsewhere) *)
}

type t = { version : int; meta : (string * string) list; entries : entry array }

val entry_count : t -> int

(** The entry of the computation's initial strand.
    @raise Error if the trace has no [S_root] entry. *)
val root : t -> entry

(** [find t uid].  @raise Error if absent. *)
val find : t -> int -> entry

val meta_find : t -> string -> string option

(** Strands that begin a new per-worker trace in PINT's sense (stolen
    continuations and non-trivial sync passes) — the recorded trace
    boundaries. *)
val boundary_count : t -> int

(** Totals of [(reads, writes)] intervals across all entries. *)
val interval_totals : t -> int * int

(** {2 Serialization} *)

(** [to_bytes t] — the full file image, deterministic in [t]. *)
val to_bytes : t -> string

(** [of_bytes s] — parse and verify magic, version and CRC.
    @raise Error on any malformation. *)
val of_bytes : string -> t

val write : t -> string -> unit
val load : string -> t

(** {2 Incremental decoding}

    A resumable decoder for PINTRACE streams that arrive in arbitrary
    chunks (socket reads, pipes): feed bytes as they come, take completed
    entries as they parse.  All varint, delta and CRC state is carried
    across chunk boundaries — a chunk may split anything, including the
    middle of a LEB128 byte group or the trailing checksum.  {!of_bytes}
    is a thin wrapper over this decoder, so file and stream paths share
    one parser. *)

module Decoder : sig
  type t

  (** [create ?max_pending ()] — a decoder at the start of a stream.
      [max_pending] (default 16 MiB) bounds both the bytes a single
      incomplete item may buffer and every count field read from the
      wire; exceeding it raises {!Error}.  These bounds are what keeps a
      corrupt or hostile length prefix from forcing an allocation before
      the trailing CRC can be checked. *)
  val create : ?max_pending:int -> unit -> t

  (** [feed d ?pos ?len s] consumes a chunk and decodes as far as it can.
      @raise Error on any malformation detectable so far: bad magic or
      version, varint overflow, implausible counts, buffer overflow, CRC
      mismatch once the trailer is reached, or bytes past the trailer. *)
  val feed : t -> ?pos:int -> ?len:int -> string -> unit

  (** Take the next completed entry, in stream order.  Entries yielded
      before {!complete} are provisional — the body checksum can only be
      verified once the trailer arrives. *)
  val next : t -> entry option

  (** [(version, meta)] once the header has parsed. *)
  val header : t -> (int * (string * string) list) option

  (** True once the trailer has been consumed and the CRC verified. *)
  val complete : t -> bool

  (** Declare end-of-stream.
      @raise Error unless the stream was complete ({!complete}). *)
  val finish : t -> unit

  val fed_bytes : t -> int
  val entries_decoded : t -> int

  (** [n_entries] from the header, once parsed. *)
  val entries_expected : t -> int option
end

(** {2 Capture} *)

(** [capturing ?meta inner] wraps a detector driver with a recording tee.
    The returned driver forwards every hook to [inner] unchanged while
    independently coalescing each strand's accesses (so capture works with
    any inner detector, including the no-detection baseline) and assembling
    one {!entry} per strand.  After the run's [on_done], the second
    component returns the completed trace.
    @raise Error from the getter if the run recorded an inconsistent stream
    (e.g. a spawn whose child never started). *)
val capturing : ?meta:(string * string) list -> Hooks.driver -> Hooks.driver * (unit -> t)

(** [capture ?meta ~path inner] — like {!capturing}, but writes the trace to
    [path] as part of the run's [on_done]. *)
val capture : ?meta:(string * string) list -> path:string -> Hooks.driver -> Hooks.driver
