lib/exec/events.mli: Format Srec
