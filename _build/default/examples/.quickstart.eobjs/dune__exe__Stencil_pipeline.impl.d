examples/stencil_pipeline.ml: Access Cracer Detector Fj List Membuf Pint_detector Printf Seq_exec Sim_exec Stint
