lib/harness/figures.mli: Cost_model
