(** Real multi-domain work-stealing executor.

    Runs the fork-join computation on OCaml 5 domains with Cilk-style
    continuation stealing: a worker executes the spawned child immediately,
    parks the continuation on its own deque, and idle workers steal the
    oldest continuation from a random victim.  Non-trivial syncs suspend the
    function; the last returning child resumes it on its own domain.

    Pipeline stages (PINT's treap workers, as engine {!Stage}s) run on
    their own dedicated domains, each driven by {!Stage.run} until it
    reports [`Done] — unproductive spins back off exponentially and are
    recorded in the stage's metrics.

    This executor demonstrates genuine parallel operation of the whole
    system; the container this repository was built in has a single physical
    core, so the benchmark harness uses {!Sim_exec} for the paper's
    performance figures and this executor for functional validation (see
    DESIGN.md §2).

    Same cactus-stack constraint as the simulator: a [with_frame] body must
    not contain a non-trivial sync. *)

type config = {
  n_workers : int;
  seed : int;  (** victim-selection seed (schedules remain nondeterministic) *)
  stages : Stage.t list;  (** pipeline stages, one dedicated domain each *)
}

type result = {
  elapsed_s : float;
  n_steals : int;
  n_strands : int;
  n_spawns : int;
  n_nontrivial_syncs : int;
}

val default_config : config

(** The mutex-protected work deque (two-list representation; see the
    implementation comment).  Exposed so the schedule-exploration stress
    test can drive it directly against a reference deque model. *)
module Lockdq : sig
  type 'a t

  val create : unit -> 'a t
  val push_bottom : 'a t -> 'a -> unit
  val pop_bottom : 'a t -> 'a option
  val steal_top : 'a t -> 'a option
  val is_empty : 'a t -> bool
end

val run : ?aspace:Aspace.t -> config:config -> driver:Hooks.driver -> (unit -> unit) -> result
