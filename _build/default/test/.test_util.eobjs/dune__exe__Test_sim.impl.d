test/test_sim.ml: Alcotest Cracer Detector Fj Hooks List Membuf Pint_detector Rng Seq_exec Sim_exec Stint Test_sim_progs
