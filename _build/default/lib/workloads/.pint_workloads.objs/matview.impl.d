lib/workloads/matview.ml: Access Membuf
