(* Interval-treap tests: directed unit cases (including the paper's §III-A
   example) plus model-based random testing against a per-address reference
   map. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let iv = Interval.make
let make_treap ?(seed = 42) () = Itreap.create ~seed ~owner_eq:Int.equal ()

let entries t =
  List.map (fun (i, o) -> (i.Interval.lo, i.Interval.hi, o)) (Itreap.to_list t)

let entry_t = Alcotest.(list (triple int int int))

(* ------------------------------------------------------------- directed *)

let test_empty () =
  let t = make_treap () in
  check_int "size" 0 (Itreap.size t);
  check_int "covered" 0 (Itreap.covered t);
  check_bool "find none" true (Itreap.find t 5 = None);
  Itreap.validate t

let test_single_insert () =
  let t = make_treap () in
  Itreap.insert_replace t (iv 10 20) 1;
  Alcotest.check entry_t "one entry" [ (10, 20, 1) ] (entries t);
  check_int "covered" 11 (Itreap.covered t);
  check_bool "find inside" true (Itreap.find t 15 = Some (iv 10 20, 1));
  check_bool "find outside" true (Itreap.find t 21 = None);
  Itreap.validate t

let test_paper_example () =
  (* §III-A: writer treap {[1,4,u],[6,10,v]}; w writes [3,7] →
     {[1,2,u],[3,7,w],[8,10,v]} *)
  let u = 1 and v = 2 and w = 3 in
  let t = make_treap () in
  Itreap.insert_replace t (iv 1 4) u;
  Itreap.insert_replace t (iv 6 10) v;
  Itreap.insert_replace t (iv 3 7) w;
  Alcotest.check entry_t "paper example" [ (1, 2, u); (3, 7, w); (8, 10, v) ] (entries t);
  Itreap.validate t

let test_replace_exact () =
  let t = make_treap () in
  Itreap.insert_replace t (iv 5 9) 1;
  Itreap.insert_replace t (iv 5 9) 2;
  Alcotest.check entry_t "replaced" [ (5, 9, 2) ] (entries t);
  Itreap.validate t

let test_replace_engulf () =
  let t = make_treap () in
  Itreap.insert_replace t (iv 5 6) 1;
  Itreap.insert_replace t (iv 8 9) 2;
  Itreap.insert_replace t (iv 0 20) 3;
  Alcotest.check entry_t "engulfed" [ (0, 20, 3) ] (entries t);
  Itreap.validate t

let test_replace_interior_split () =
  let t = make_treap () in
  Itreap.insert_replace t (iv 0 20) 1;
  Itreap.insert_replace t (iv 8 12) 2;
  Alcotest.check entry_t "split" [ (0, 7, 1); (8, 12, 2); (13, 20, 1) ] (entries t);
  check_int "covered unchanged" 21 (Itreap.covered t);
  Itreap.validate t

let test_same_owner_merge () =
  let t = make_treap () in
  Itreap.insert_replace t (iv 0 4) 1;
  Itreap.insert_replace t (iv 5 9) 1;
  Alcotest.check entry_t "adjacent same owner merged" [ (0, 9, 1) ] (entries t);
  Itreap.insert_replace t (iv 20 29) 1;
  Itreap.insert_replace t (iv 10 19) 1;
  Alcotest.check entry_t "merge both sides" [ (0, 29, 1) ] (entries t);
  check_int "one node" 1 (Itreap.size t);
  Itreap.validate t

let test_query_order () =
  let t = make_treap () in
  List.iter (fun (l, h, o) -> Itreap.insert_replace t (iv l h) o)
    [ (0, 4, 1); (10, 14, 2); (20, 24, 3); (30, 34, 4) ];
  let got = ref [] in
  Itreap.query t (iv 12 31) ~f:(fun i o -> got := (i.Interval.lo, o) :: !got);
  Alcotest.(check (list (pair int int)))
    "overlaps in address order"
    [ (10, 2); (20, 3); (30, 4) ]
    (List.rev !got)

let test_query_none () =
  let t = make_treap () in
  Itreap.insert_replace t (iv 0 4) 1;
  Itreap.insert_replace t (iv 10 14) 2;
  let got = ref 0 in
  Itreap.query t (iv 5 9) ~f:(fun _ _ -> incr got);
  check_int "gap query" 0 !got

let test_clear_range () =
  let t = make_treap () in
  Itreap.insert_replace t (iv 0 20) 1;
  Itreap.clear_range t (iv 5 15);
  Alcotest.check entry_t "cleared middle" [ (0, 4, 1); (16, 20, 1) ] (entries t);
  Itreap.clear_range t (iv 0 100);
  Alcotest.check entry_t "cleared all" [] (entries t);
  check_int "covered" 0 (Itreap.covered t);
  Itreap.validate t

let test_clear_range_noop () =
  let t = make_treap () in
  Itreap.insert_replace t (iv 0 4) 1;
  Itreap.clear_range t (iv 10 20);
  Alcotest.check entry_t "untouched" [ (0, 4, 1) ] (entries t);
  Itreap.validate t

let test_insert_merge_gap_only () =
  let t = make_treap () in
  Itreap.insert_merge t (iv 3 9) 7 ~keep:(fun ~incumbent:_ -> `Keep);
  Alcotest.check entry_t "gap gets new owner" [ (3, 9, 7) ] (entries t);
  Itreap.validate t

let test_insert_merge_keep () =
  let t = make_treap () in
  Itreap.insert_replace t (iv 5 9) 1;
  Itreap.insert_merge t (iv 0 14) 2 ~keep:(fun ~incumbent:_ -> `Keep);
  Alcotest.check entry_t "incumbent kept, gaps filled"
    [ (0, 4, 2); (5, 9, 1); (10, 14, 2) ]
    (entries t);
  Itreap.validate t

let test_insert_merge_replace () =
  let t = make_treap () in
  Itreap.insert_replace t (iv 5 9) 1;
  Itreap.insert_merge t (iv 0 14) 2 ~keep:(fun ~incumbent:_ -> `Replace);
  Alcotest.check entry_t "all replaced and coalesced" [ (0, 14, 2) ] (entries t);
  check_int "single node" 1 (Itreap.size t);
  Itreap.validate t

let test_insert_merge_partial_overlap () =
  let t = make_treap () in
  Itreap.insert_replace t (iv 0 9) 1;
  (* New reader overlaps the right half only; incumbent survives on the
     overlap, the stickout keeps its owner. *)
  Itreap.insert_merge t (iv 5 14) 2 ~keep:(fun ~incumbent:_ -> `Keep);
  Alcotest.check entry_t "partial overlap"
    [ (0, 9, 1); (10, 14, 2) ]
    (entries t);
  Itreap.validate t

let test_insert_merge_mixed_policy () =
  let t = make_treap () in
  Itreap.insert_replace t (iv 0 4) 1;
  Itreap.insert_replace t (iv 6 10) 3;
  (* keep incumbents smaller than the new owner 2: keeps 1, replaces 3 *)
  let keep ~incumbent = if incumbent < 2 then `Keep else `Replace in
  Itreap.insert_merge t (iv 0 12) 2 ~keep;
  Alcotest.check entry_t "mixed" [ (0, 4, 1); (5, 12, 2) ] (entries t);
  Itreap.validate t

let test_reset () =
  let t = make_treap () in
  Itreap.insert_replace t (iv 0 9) 1;
  Itreap.reset t;
  check_int "size" 0 (Itreap.size t);
  Alcotest.check entry_t "empty" [] (entries t)

let test_visits_counted () =
  let t = make_treap () in
  for i = 0 to 63 do
    Itreap.insert_replace t (iv (i * 10) ((i * 10) + 4)) i
  done;
  check_bool "visits accumulate" true (Itreap.visits t > 64)

(* ------------------------------------------------------ model based *)

(* Reference: explicit per-address owner map over a small address space. *)
module Model = struct
  let space = 256

  type t = int option array

  let create () : t = Array.make space None

  let insert_replace (m : t) i o =
    for a = i.Interval.lo to min i.Interval.hi (space - 1) do
      m.(a) <- Some o
    done

  let insert_merge (m : t) i o ~keep =
    for a = i.Interval.lo to min i.Interval.hi (space - 1) do
      match m.(a) with
      | None -> m.(a) <- Some o
      | Some u -> ( match keep ~incumbent:u with `Keep -> () | `Replace -> m.(a) <- Some o)
    done

  let clear (m : t) i =
    for a = i.Interval.lo to min i.Interval.hi (space - 1) do
      m.(a) <- None
    done
end

type op = Replace of int * int * int | Merge of int * int * int | Clear of int * int

let op_gen =
  let open QCheck.Gen in
  let range = pair (int_bound (Model.space - 20)) (int_range 1 19) in
  let owner = int_range 0 7 in
  frequency
    [
      (4, map2 (fun (lo, w) o -> Replace (lo, lo + w - 1, o)) range owner);
      (4, map2 (fun (lo, w) o -> Merge (lo, lo + w - 1, o)) range owner);
      (1, map (fun (lo, w) -> Clear (lo, lo + w - 1)) range);
    ]

let op_print = function
  | Replace (l, h, o) -> Printf.sprintf "Replace[%d,%d]@%d" l h o
  | Merge (l, h, o) -> Printf.sprintf "Merge[%d,%d]@%d" l h o
  | Clear (l, h) -> Printf.sprintf "Clear[%d,%d]" l h

(* the merge policy must be a pure function of the owners *)
let policy ~new_owner ~incumbent = if incumbent <= new_owner then `Keep else `Replace

let agree t (m : Model.t) =
  (* every address agrees with the model *)
  let ok = ref true in
  for a = 0 to Model.space - 1 do
    let treap_owner = Option.map snd (Itreap.find t a) in
    if treap_owner <> m.(a) then ok := false
  done;
  (* coverage ledger agrees *)
  let model_cov = Array.fold_left (fun n x -> if x = None then n else n + 1) 0 m in
  !ok && model_cov = Itreap.covered t

let treap_model_prop =
  QCheck.Test.make ~name:"treap agrees with per-address model" ~count:400
    (QCheck.make ~print:QCheck.Print.(list op_print) (QCheck.Gen.list_size (QCheck.Gen.int_range 1 40) op_gen))
    (fun ops ->
      let t = make_treap ~seed:7 () in
      let m = Model.create () in
      List.for_all
        (fun op ->
          (match op with
          | Replace (l, h, o) ->
              Itreap.insert_replace t (iv l h) o;
              Model.insert_replace m (iv l h) o
          | Merge (l, h, o) ->
              Itreap.insert_merge t (iv l h) o ~keep:(policy ~new_owner:o);
              Model.insert_merge m (iv l h) o ~keep:(policy ~new_owner:o)
          | Clear (l, h) ->
              Itreap.clear_range t (iv l h);
              Model.clear m (iv l h));
          Itreap.validate t;
          agree t m)
        ops)

let treap_query_model_prop =
  QCheck.Test.make ~name:"query returns exactly the overlapping owners" ~count:200
    (QCheck.make
       (QCheck.Gen.pair
          (QCheck.Gen.list_size (QCheck.Gen.int_range 1 30) op_gen)
          (QCheck.Gen.pair (QCheck.Gen.int_bound 235) (QCheck.Gen.int_range 1 19))))
    (fun (ops, (qlo, qw)) ->
      let t = make_treap ~seed:11 () in
      let m = Model.create () in
      List.iter
        (function
          | Replace (l, h, o) ->
              Itreap.insert_replace t (iv l h) o;
              Model.insert_replace m (iv l h) o
          | Merge (l, h, o) ->
              Itreap.insert_merge t (iv l h) o ~keep:(policy ~new_owner:o);
              Model.insert_merge m (iv l h) o ~keep:(policy ~new_owner:o)
          | Clear (l, h) ->
              Itreap.clear_range t (iv l h);
              Model.clear m (iv l h))
        ops;
      let q = iv qlo (qlo + qw - 1) in
      (* flatten the query result to per-address owners *)
      let from_query = Array.make Model.space None in
      Itreap.query t q ~f:(fun i o ->
          for a = max i.Interval.lo q.Interval.lo to min i.Interval.hi q.Interval.hi do
            from_query.(a) <- Some o
          done);
      let ok = ref true in
      for a = q.Interval.lo to q.Interval.hi do
        if a < Model.space && from_query.(a) <> m.(a) then ok := false
      done;
      !ok)

(* Naive sorted-list reference: the canonical entry list itself, maintained
   with brute-force erase/renormalize.  Where the per-address model above
   checks ownership, this one checks the exact stored representation —
   interval boundaries, coalescing, and entry count — after every op, which
   is what the fast/slow path split could plausibly get wrong. *)
module ListModel = struct
  type t = (int * int * int) list ref (* sorted by lo; disjoint; canonical *)

  let create () : t = ref []

  let erase l h es =
    List.concat_map
      (fun (lo, hi, o) ->
        if hi < l || lo > h then [ (lo, hi, o) ]
        else
          (if lo < l then [ (lo, l - 1, o) ] else [])
          @ if hi > h then [ (h + 1, hi, o) ] else [])
      es

  let normalize es =
    let rec merge = function
      | (l1, h1, o1) :: (l2, h2, o2) :: rest when o1 = o2 && h1 + 1 = l2 ->
          merge ((l1, h2, o1) :: rest)
      | e :: rest -> e :: merge rest
      | [] -> []
    in
    merge (List.sort compare es)

  let insert_replace m l h o = m := normalize ((l, h, o) :: erase l h !m)

  let insert_merge m l h o ~keep =
    let covered =
      List.filter_map
        (fun (lo, hi, u) ->
          let cl = max lo l and ch = min hi h in
          if cl > ch then None
          else Some (cl, ch, match keep ~incumbent:u with `Keep -> u | `Replace -> o))
        !m
    in
    let covered = List.sort compare covered in
    let rec gaps cur = function
      | [] -> if cur <= h then [ (cur, h, o) ] else []
      | (cl, ch, _) :: rest ->
          (if cur < cl then [ (cur, cl - 1, o) ] else []) @ gaps (ch + 1) rest
    in
    m := normalize (erase l h !m @ covered @ gaps l covered)

  let clear m l h = m := normalize (erase l h !m)
end

let treap_list_model_prop =
  QCheck.Test.make ~name:"treap entries match sorted-list model" ~count:400
    (QCheck.make
       ~print:QCheck.Print.(list op_print)
       (QCheck.Gen.list_size (QCheck.Gen.int_range 1 40) op_gen))
    (fun ops ->
      let t = make_treap ~seed:13 () in
      let m = ListModel.create () in
      List.for_all
        (fun op ->
          (match op with
          | Replace (l, h, o) ->
              Itreap.insert_replace t (iv l h) o;
              ListModel.insert_replace m l h o
          | Merge (l, h, o) ->
              Itreap.insert_merge t (iv l h) o ~keep:(policy ~new_owner:o);
              ListModel.insert_merge m l h o ~keep:(policy ~new_owner:o)
          | Clear (l, h) ->
              Itreap.clear_range t (iv l h);
              ListModel.clear m l h);
          Itreap.validate t;
          entries t = !m)
        ops)

let test_path_counters () =
  let t = make_treap () in
  Itreap.insert_replace t (iv 0 4) 1;
  Itreap.insert_replace t (iv 10 14) 2;
  Itreap.insert_merge t (iv 20 24) 3 ~keep:(fun ~incumbent:_ -> `Keep);
  check_int "disjoint inserts take the fast path" 3 (Itreap.fastpath_hits t);
  check_int "no slow ops yet" 0 (Itreap.slowpath_hits t);
  Itreap.insert_replace t (iv 3 12) 4;
  check_int "overlap goes slow" 1 (Itreap.slowpath_hits t);
  check_int "first slow op grows the scratch" 0 (Itreap.scratch_reuse t);
  Itreap.insert_replace t (iv 0 30) 5;
  check_int "second slow op reuses it" 1 (Itreap.scratch_reuse t);
  (* Touching (not overlapping) a same-owner neighbour must still go slow:
     canonical form requires the coalescing only the general path does. *)
  Itreap.insert_replace t (iv 31 35) 5;
  check_int "adjacency goes slow" 3 (Itreap.slowpath_hits t);
  Alcotest.check entry_t "coalesced across the boundary" [ (0, 35, 5) ] (entries t);
  let f0 = Itreap.fastpath_hits t in
  Itreap.clear_range t (iv 100 200);
  check_int "clear of untouched range is a fast no-op" (f0 + 1) (Itreap.fastpath_hits t);
  Alcotest.check entry_t "still intact" [ (0, 35, 5) ] (entries t);
  Itreap.validate t

let test_big_sequential_build () =
  (* A large build keeps expected-logarithmic depth: visits per op should be
     far below size. *)
  let t = make_treap ~seed:3 () in
  let n = 20_000 in
  for i = 0 to n - 1 do
    Itreap.insert_replace t (iv (i * 3) ((i * 3) + 1)) i
  done;
  check_int "all separate" n (Itreap.size t);
  Itreap.validate t;
  let v0 = Itreap.visits t in
  ignore (Itreap.find t ((n / 2) * 3));
  let probe_cost = Itreap.visits t - v0 in
  check_bool "log-ish probe" true (probe_cost < 80)

let () =
  Alcotest.run "pint_treap"
    [
      ( "directed",
        [
          Alcotest.test_case "empty" `Quick test_empty;
          Alcotest.test_case "single insert" `Quick test_single_insert;
          Alcotest.test_case "paper example" `Quick test_paper_example;
          Alcotest.test_case "replace exact" `Quick test_replace_exact;
          Alcotest.test_case "replace engulf" `Quick test_replace_engulf;
          Alcotest.test_case "replace interior split" `Quick test_replace_interior_split;
          Alcotest.test_case "same owner merge" `Quick test_same_owner_merge;
          Alcotest.test_case "query order" `Quick test_query_order;
          Alcotest.test_case "query none" `Quick test_query_none;
          Alcotest.test_case "clear range" `Quick test_clear_range;
          Alcotest.test_case "clear range noop" `Quick test_clear_range_noop;
          Alcotest.test_case "merge into gap" `Quick test_insert_merge_gap_only;
          Alcotest.test_case "merge keep" `Quick test_insert_merge_keep;
          Alcotest.test_case "merge replace" `Quick test_insert_merge_replace;
          Alcotest.test_case "merge partial overlap" `Quick test_insert_merge_partial_overlap;
          Alcotest.test_case "merge mixed policy" `Quick test_insert_merge_mixed_policy;
          Alcotest.test_case "reset" `Quick test_reset;
          Alcotest.test_case "visits counted" `Quick test_visits_counted;
          Alcotest.test_case "path counters" `Quick test_path_counters;
          Alcotest.test_case "big sequential build" `Quick test_big_sequential_build;
        ] );
      ( "model",
        [
          QCheck_alcotest.to_alcotest treap_model_prop;
          QCheck_alcotest.to_alcotest treap_query_model_prop;
          QCheck_alcotest.to_alcotest treap_list_model_prop;
        ] );
    ]
