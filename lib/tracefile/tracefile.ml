exception Error of string

let error fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

let magic = "PINTRACE"
let current_version = 1

type finish =
  | Spawn of { cont : int; sync : int; child : int; first : bool }
  | Return of { cont_stolen : bool; parent_sync : int option }
  | Sync of { trivial : bool; sync : int }
  | Root

type entry = {
  uid : int;
  start : Events.start_kind;
  finish : finish;
  reads : Interval.t array;
  writes : Interval.t array;
  clears : (int * int) list;
  frees : (int * int) list;
  raw_reads : int;
  raw_writes : int;
  work : int;
  compute : int;
  finished_at : int;
  cost : int;
}

type t = { version : int; meta : (string * string) list; entries : entry array }

let entry_count t = Array.length t.entries

let root t =
  match Array.find_opt (fun e -> e.start = Events.S_root) t.entries with
  | Some e -> e
  | None -> error "trace has no root strand"

let find t uid =
  match Array.find_opt (fun e -> e.uid = uid) t.entries with
  | Some e -> e
  | None -> error "trace references unknown strand uid %d" uid

let meta_find t key =
  List.find_map (fun (k, v) -> if k = key then Some v else None) t.meta

let is_boundary = function
  | Events.S_cont { stolen = true } | Events.S_after_sync { trivial = false } -> true
  | _ -> false

let boundary_count t =
  Array.fold_left (fun acc e -> if is_boundary e.start then acc + 1 else acc) 0 t.entries

let interval_totals t =
  Array.fold_left
    (fun (r, w) e -> (r + Array.length e.reads, w + Array.length e.writes))
    (0, 0) t.entries

(* ---------------------------------------------------------------- encoding *)

let start_tag = function
  | Events.S_root -> 0
  | Events.S_child -> 1
  | Events.S_cont { stolen = false } -> 2
  | Events.S_cont { stolen = true } -> 3
  | Events.S_after_sync { trivial = true } -> 4
  | Events.S_after_sync { trivial = false } -> 5

let start_of_tag = function
  | 0 -> Events.S_root
  | 1 -> Events.S_child
  | 2 -> Events.S_cont { stolen = false }
  | 3 -> Events.S_cont { stolen = true }
  | 4 -> Events.S_after_sync { trivial = true }
  | 5 -> Events.S_after_sync { trivial = false }
  | n -> error "bad start-kind tag %d" n

let bool_byte b = if b then 1 else 0

let bool_of_byte = function
  | 0 -> false
  | 1 -> true
  | n -> error "bad boolean byte %d" n

let put_intervals buf (ivs : Interval.t array) =
  Varint.write buf (Array.length ivs);
  let prev = ref 0 in
  Array.iter
    (fun (iv : Interval.t) ->
      if iv.Interval.lo < !prev then error "interval set not sorted at %d" iv.Interval.lo;
      Varint.write buf (iv.Interval.lo - !prev);
      Varint.write buf (iv.Interval.hi - iv.Interval.lo);
      prev := iv.Interval.hi)
    ivs

let get_intervals c =
  let n = Varint.read c in
  let prev = ref 0 in
  Array.init n (fun _ ->
      let lo = !prev + Varint.read c in
      let hi = lo + Varint.read c in
      prev := hi;
      Interval.make lo hi)

let put_ranges buf rs =
  Varint.write buf (List.length rs);
  List.iter
    (fun (b, l) ->
      Varint.write buf b;
      Varint.write buf l)
    rs

let get_ranges c =
  let n = Varint.read c in
  List.init n (fun _ ->
      let b = Varint.read c in
      let l = Varint.read c in
      (b, l))

let put_entry buf e =
  Varint.write buf e.uid;
  Buffer.add_char buf (Char.chr (start_tag e.start));
  (match e.finish with
  | Root -> Buffer.add_char buf '\000'
  | Spawn { cont; sync; child; first } ->
      Buffer.add_char buf '\001';
      Varint.write buf cont;
      Varint.write buf sync;
      Varint.write buf child;
      Buffer.add_char buf (Char.chr (bool_byte first))
  | Return { cont_stolen; parent_sync } ->
      Buffer.add_char buf '\002';
      Buffer.add_char buf (Char.chr (bool_byte cont_stolen));
      Varint.write buf (match parent_sync with None -> 0 | Some u -> u + 1)
  | Sync { trivial; sync } ->
      Buffer.add_char buf '\003';
      Buffer.add_char buf (Char.chr (bool_byte trivial));
      Varint.write buf sync);
  put_intervals buf e.reads;
  put_intervals buf e.writes;
  put_ranges buf e.clears;
  put_ranges buf e.frees;
  Varint.write buf e.raw_reads;
  Varint.write buf e.raw_writes;
  Varint.write buf e.work;
  Varint.write buf e.compute;
  Varint.write buf e.finished_at;
  Varint.write buf e.cost

let get_entry c =
  let uid = Varint.read c in
  let start = start_of_tag (Varint.read_byte c) in
  let finish =
    match Varint.read_byte c with
    | 0 -> Root
    | 1 ->
        let cont = Varint.read c in
        let sync = Varint.read c in
        let child = Varint.read c in
        let first = bool_of_byte (Varint.read_byte c) in
        Spawn { cont; sync; child; first }
    | 2 ->
        let cont_stolen = bool_of_byte (Varint.read_byte c) in
        let ps = Varint.read c in
        Return { cont_stolen; parent_sync = (if ps = 0 then None else Some (ps - 1)) }
    | 3 ->
        let trivial = bool_of_byte (Varint.read_byte c) in
        let sync = Varint.read c in
        Sync { trivial; sync }
    | n -> error "bad finish-kind tag %d" n
  in
  let reads = get_intervals c in
  let writes = get_intervals c in
  let clears = get_ranges c in
  let frees = get_ranges c in
  let raw_reads = Varint.read c in
  let raw_writes = Varint.read c in
  let work = Varint.read c in
  let compute = Varint.read c in
  let finished_at = Varint.read c in
  let cost = Varint.read c in
  {
    uid;
    start;
    finish;
    reads;
    writes;
    clears;
    frees;
    raw_reads;
    raw_writes;
    work;
    compute;
    finished_at;
    cost;
  }

let to_bytes t =
  let body = Buffer.create 4096 in
  Varint.write body t.version;
  Varint.write body (List.length t.meta);
  List.iter
    (fun (k, v) ->
      Varint.write body (String.length k);
      Buffer.add_string body k;
      Varint.write body (String.length v);
      Buffer.add_string body v)
    t.meta;
  Varint.write body (Array.length t.entries);
  Array.iter (fun e -> put_entry body e) t.entries;
  let body = Buffer.contents body in
  let crc = Crc32.digest body in
  let out = Buffer.create (String.length body + 12) in
  Buffer.add_string out magic;
  Buffer.add_string out body;
  for i = 0 to 3 do
    Buffer.add_char out
      (Char.chr (Int32.to_int (Int32.logand (Int32.shift_right_logical crc (8 * i)) 0xFFl)))
  done;
  Buffer.contents out

let of_bytes s =
  let mlen = String.length magic in
  if String.length s < mlen + 5 then error "trace file truncated (%d bytes)" (String.length s);
  if String.sub s 0 mlen <> magic then error "bad magic (not a PINT trace file)";
  let body_len = String.length s - mlen - 4 in
  let stored =
    let b i = Int32.of_int (Char.code s.[mlen + body_len + i]) in
    List.fold_left Int32.logor 0l
      [ b 0; Int32.shift_left (b 1) 8; Int32.shift_left (b 2) 16; Int32.shift_left (b 3) 24 ]
  in
  let actual = Crc32.digest_sub s ~pos:mlen ~len:body_len in
  if stored <> actual then error "CRC mismatch (stored %08lx, computed %08lx)" stored actual;
  let c = Varint.cursor (String.sub s mlen body_len) in
  let wrap f = try f () with Failure m -> error "corrupt trace body: %s" m in
  wrap (fun () ->
      let version = Varint.read c in
      if version <> current_version then
        error "unsupported trace version %d (this build reads %d)" version current_version;
      let n_meta = Varint.read c in
      let meta =
        List.init n_meta (fun _ ->
            let k = Varint.read_string c (Varint.read c) in
            let v = Varint.read_string c (Varint.read c) in
            (k, v))
      in
      let n = Varint.read c in
      let entries = Array.init n (fun _ -> get_entry c) in
      if not (Varint.at_end c) then error "trailing bytes after last entry";
      { version; meta; entries })

let write t path =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (to_bytes t))

let load path =
  let ic = open_in_bin path in
  let s =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  of_bytes s

(* ----------------------------------------------------------------- capture *)

(* Entry under assembly: the child uid of a spawn is only known when the
   spawned function's first strand starts (executors start it on the same
   worker immediately after the spawn finish), so it stays mutable until
   the file is frozen. *)
type draft = {
  d_uid : int;
  d_start : Events.start_kind;
  d_finish : finish;
  mutable d_child : int; (* -1 = unresolved; only meaningful for Spawn *)
  d_reads : Interval.t array;
  d_writes : Interval.t array;
  d_clears : (int * int) list;
  d_frees : (int * int) list;
  d_raw_reads : int;
  d_raw_writes : int;
  d_work : int;
  d_compute : int;
  d_finished_at : int;
  d_cost : int;
}

let capturing ?(meta = []) (inner : Hooks.driver) : Hooks.driver * (unit -> t) =
  let result = ref None in
  let driver (ctx : Hooks.ctx) =
    let h = inner ctx in
    let n = ctx.Hooks.n_workers in
    (* Per-worker state needs no lock; the shared draft list and start-kind
       table do (the parallel executor finishes strands on many domains). *)
    let coals = Array.init n (fun _ -> Coalescer.create ()) in
    let frees = Array.make n [] in
    let pending_child : draft option array = Array.make n None in
    let lock = Mutex.create () in
    let started : (int, Events.start_kind) Hashtbl.t = Hashtbl.create 1024 in
    let drafts = ref [] in
    let sink ~wid =
      let s = h.Hooks.sink ~wid in
      let coal = coals.(wid) in
      {
        Access.on_read =
          (fun ~addr ~len ->
            Coalescer.add_read coal ~addr ~len;
            s.Access.on_read ~addr ~len);
        on_write =
          (fun ~addr ~len ->
            Coalescer.add_write coal ~addr ~len;
            s.Access.on_write ~addr ~len);
        on_free =
          (fun ~base ~len ->
            frees.(wid) <- (base, len) :: frees.(wid);
            s.Access.on_free ~base ~len);
        on_compute = (fun ~amount -> s.Access.on_compute ~amount);
      }
    in
    let on_start ~wid (r : Srec.t) kind =
      Mutex.lock lock;
      Hashtbl.replace started r.Srec.uid kind;
      (match (pending_child.(wid), kind) with
      | Some d, Events.S_child ->
          d.d_child <- r.Srec.uid;
          pending_child.(wid) <- None
      | _ -> ());
      Mutex.unlock lock;
      h.Hooks.on_start ~wid r kind
    in
    let on_finish ~wid (u : Srec.t) kind =
      let reads, writes = Coalescer.finish coals.(wid) in
      let fl = List.rev frees.(wid) in
      frees.(wid) <- [];
      let fin =
        match kind with
        | Events.F_root -> Root
        | Events.F_spawn { cont; sync; first_of_block } ->
            Spawn { cont = cont.Srec.uid; sync = sync.Srec.uid; child = -1; first = first_of_block }
        | Events.F_return { cont_stolen; parent_sync } ->
            Return
              { cont_stolen; parent_sync = Option.map (fun (s : Srec.t) -> s.Srec.uid) parent_sync }
        | Events.F_sync { trivial; sync } -> Sync { trivial; sync = sync.Srec.uid }
      in
      Mutex.lock lock;
      let start =
        match Hashtbl.find_opt started u.Srec.uid with
        | Some k -> k
        | None ->
            Mutex.unlock lock;
            error "strand %d finished without starting" u.Srec.uid
      in
      let d =
        {
          d_uid = u.Srec.uid;
          d_start = start;
          d_finish = fin;
          d_child = -1;
          d_reads = reads;
          d_writes = writes;
          d_clears = u.Srec.clears;
          d_frees = fl;
          d_raw_reads = u.Srec.raw_reads;
          d_raw_writes = u.Srec.raw_writes;
          d_work = u.Srec.work;
          d_compute = u.Srec.compute;
          d_finished_at = u.Srec.finished_at;
          d_cost = u.Srec.cost;
        }
      in
      drafts := d :: !drafts;
      (match fin with Spawn _ -> pending_child.(wid) <- Some d | _ -> ());
      Mutex.unlock lock;
      h.Hooks.on_finish ~wid u kind
    in
    let on_done () =
      h.Hooks.on_done ();
      let entries =
        List.rev_map
          (fun d ->
            let finish =
              match d.d_finish with
              | Spawn { cont; sync; child = _; first } ->
                  if d.d_child < 0 then
                    error "spawn strand %d has no recorded child strand" d.d_uid;
                  Spawn { cont; sync; child = d.d_child; first }
              | f -> f
            in
            {
              uid = d.d_uid;
              start = d.d_start;
              finish;
              reads = d.d_reads;
              writes = d.d_writes;
              clears = d.d_clears;
              frees = d.d_frees;
              raw_reads = d.d_raw_reads;
              raw_writes = d.d_raw_writes;
              work = d.d_work;
              compute = d.d_compute;
              finished_at = d.d_finished_at;
              cost = d.d_cost;
            })
          !drafts
      in
      let meta = meta @ [ ("n_workers", string_of_int n) ] in
      result := Some { version = current_version; meta; entries = Array.of_list entries }
    in
    { Hooks.sink; on_start; on_finish; on_done }
  in
  let get () =
    match !result with
    | Some t -> t
    | None -> error "capture: the run has not completed (on_done never fired)"
  in
  (driver, get)

let capture ?meta ~path inner =
  let driver, get = capturing ?meta inner in
  fun ctx ->
    let h = driver ctx in
    {
      h with
      Hooks.on_done =
        (fun () ->
          h.Hooks.on_done ();
          write (get ()) path);
    }
