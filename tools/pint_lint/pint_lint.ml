(* pint_lint — static analysis over the .cmt typed trees dune produces.

   Usage:
     pint_lint [--baseline FILE] [--ownership FILE] [--json FILE]
               [--dump-fields] [--quiet] PATH...

   Each PATH is a .cmt file or a directory searched recursively for them.
   Exit status: 0 when every finding is baselined, 1 otherwise, 2 on a
   malformed baseline/manifest. *)

let () =
  let baseline_path = ref "" in
  let ownership_path = ref "" in
  let json_path = ref "" in
  let dump = ref false in
  let quiet = ref false in
  let paths = ref [] in
  let spec =
    [
      ("--baseline", Arg.Set_string baseline_path, "FILE baseline suppression file");
      ("--ownership", Arg.Set_string ownership_path, "FILE OWNERSHIP.md manifest");
      ("--json", Arg.Set_string json_path, "FILE write a JSON report");
      ("--dump-fields", Arg.Set dump, " print manifest rows for uncovered mutable fields");
      ("--quiet", Arg.Set quiet, " only print the summary line");
    ]
  in
  Arg.parse spec (fun p -> paths := p :: !paths) "pint_lint [options] PATH...";
  if !paths = [] then begin
    prerr_endline "pint_lint: no .cmt paths given";
    exit 2
  end;
  let ownership =
    if !ownership_path = "" then Lint_core.Lint_ownership.empty
    else Lint_core.Lint_ownership.load !ownership_path
  in
  if !dump then begin
    List.iter print_endline (Lint_core.Lint_engine.dump_fields ~ownership (List.rev !paths));
    exit 0
  end;
  let baseline =
    try
      if !baseline_path = "" then Lint_core.Lint_baseline.empty
      else Lint_core.Lint_baseline.load !baseline_path
    with Lint_core.Lint_baseline.Malformed m ->
      prerr_endline ("pint_lint: " ^ m);
      exit 2
  in
  let report = Lint_core.Lint_engine.run ~baseline ~ownership (List.rev !paths) in
  if not !quiet then
    List.iter (fun f -> print_endline (Lint_core.Lint_types.to_string f)) report.findings;
  List.iter
    (fun (e : Lint_core.Lint_baseline.entry) ->
      Printf.eprintf "pint_lint: warning: stale baseline entry (line %d): %s %s %s %s\n"
        e.Lint_core.Lint_baseline.e_line e.e_rule e.e_file e.e_context e.e_kind)
    report.stale_baseline;
  if !json_path <> "" then begin
    let oc = open_out !json_path in
    output_string oc (Lint_core.Lint_engine.json_report report);
    close_out oc
  end;
  Printf.printf "pint_lint: %d module(s), %d mutable field(s) checked, %d finding(s), %d baselined\n"
    (List.length report.modules) report.fields_checked
    (List.length report.findings)
    report.suppressed;
  exit (if report.findings = [] then 0 else 1)
