(** Log2-bucketed latency histogram (64 buckets).

    Bucket 0 holds values [<= 1] (negative samples are clamped to 0 —
    cross-timeline virtual latencies can legitimately go negative, see
    DESIGN.md §11); bucket [b >= 1] holds values in [[2^b, 2^(b+1))].
    Single-owner mutable state: each histogram belongs to exactly one
    pipeline stage; cross-stage aggregation goes through {!merge_into}
    after the run has drained. *)

type t

val create : unit -> t

(** Shared sink of disabled sessions: written, never read. *)
val dummy : t

val add : t -> int -> unit
val count : t -> int
val total : t -> int
val max_value : t -> int

(** Bucket index for a value (exposed for tests). *)
val bucket_of : int -> int

(** [quantile t q] — lower bound of the bucket holding the [q]-quantile
    ([0 < q <= 1]); 0 when empty. *)
val quantile : t -> float -> int

val merge_into : src:t -> dst:t -> unit

(** [(bucket_lower_bound, count)] for every populated bucket, ascending. *)
val nonzero_buckets : t -> (int * int) list
