lib/detect/policies.mli: Sp_order
