lib/detect/stint.ml: Access Array Aspace Coalescer Detector Hooks Interval Itreap List Policies Report Sp_order Srec
