lib/util/vec.mli:
