(* Baseline suppression file.

   One entry per line:

     RULE  file.ml  context  kind  -- justification

   Fields are whitespace-separated; the justification after "--" is
   mandatory (a suppression without a reason is a finding in itself).
   Blank lines and [#] comments are skipped.  An entry suppresses every
   finding whose (rule, basename, context, kind) fingerprint matches it —
   kind-level granularity on purpose, see {!Lint_types.fingerprint}. *)

type entry = {
  e_rule : string;
  e_file : string;
  e_context : string;
  e_kind : string;
  justification : string;
  e_line : int;  (** line in the baseline file, for stale reporting *)
  mutable used : bool;
}

type t = { entries : entry list }

let empty = { entries = [] }

exception Malformed of string

let parse_line ~lineno line =
  let line = String.trim line in
  if line = "" || line.[0] = '#' then None
  else
    let body, justification =
      match Str_split.split_on_first line ~sep:"--" with
      | Some (b, j) when String.trim j <> "" -> (b, String.trim j)
      | _ ->
          raise
            (Malformed
               (Printf.sprintf "baseline line %d: missing '-- justification': %s" lineno line))
    in
    match String.split_on_char ' ' body |> List.filter (fun s -> s <> "") with
    | [ e_rule; e_file; e_context; e_kind ] ->
        Some { e_rule; e_file; e_context; e_kind; justification; e_line = lineno; used = false }
    | _ ->
        raise
          (Malformed
             (Printf.sprintf "baseline line %d: expected 'RULE file context kind -- why': %s"
                lineno line))

let load path =
  if not (Sys.file_exists path) then empty
  else begin
    let ic = open_in path in
    let entries = ref [] in
    let lineno = ref 0 in
    (try
       while true do
         incr lineno;
         let line = input_line ic in
         match parse_line ~lineno:!lineno line with
         | Some e -> entries := e :: !entries
         | None -> ()
       done
     with End_of_file -> close_in ic);
    { entries = List.rev !entries }
  end

(* [suppresses t f] — true when a baseline entry covers [f]; marks the
   entry used so stale entries can be reported afterwards. *)
let suppresses t (f : Lint_types.finding) =
  let rule, file, context, kind = Lint_types.fingerprint f in
  match
    List.find_opt
      (fun e -> e.e_rule = rule && e.e_file = file && e.e_context = context && e.e_kind = kind)
      t.entries
  with
  | Some e ->
      e.used <- true;
      true
  | None -> false

(* Entries that matched nothing this run: reported as warnings (not
   findings) so a fixed violation leaves a visible nudge to prune its
   justification without failing the build on the cleanup. *)
let stale t = List.filter (fun e -> not e.used) t.entries
