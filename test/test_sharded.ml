(* Tests for the §VI extension: the address-sharded access history.

   Correctness: sharding must not change race verdicts (every address is
   owned by exactly one shard, so exactly one {writer, lreader, rreader}
   treap triple sees each access).  Performance: the per-worker treap load
   drops, which is the point of the extension. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let run_sharded ?(n_workers = 4) ~shards prog =
  let p = Pint_detector.make ~shards () in
  let det = Pint_detector.detector p in
  let config =
    { Sim_exec.default_config with n_workers; seed = 5; stages = Pint_detector.stages p }
  in
  let r = Sim_exec.run ~config ~driver:det.Detector.driver prog in
  (det, r)

let test_shard_subranges () =
  (* the shard decomposition partitions any interval exactly *)
  let block = Lanes.shard_block in
  List.iter
    (fun (lo, hi, shards) ->
      let iv = Interval.make lo hi in
      let seen = Hashtbl.create 64 in
      for shard = 0 to shards - 1 do
        Pint_detector.iter_shard_subranges ~shards ~shard iv (fun sub ->
            check_bool "within" true (sub.Interval.lo >= lo && sub.Interval.hi <= hi);
            check_int "single block" (sub.Interval.lo / block) (sub.Interval.hi / block);
            check_int "right shard" shard (sub.Interval.lo / block mod shards);
            for a = sub.Interval.lo to sub.Interval.hi do
              if Hashtbl.mem seen a then Alcotest.failf "address %d covered twice" a;
              Hashtbl.add seen a ()
            done)
      done;
      check_int "exact cover" (Interval.width iv) (Hashtbl.length seen))
    [
      (0, 100, 2);
      (4000, 4200, 2);
      (0, 20000, 3);
      (12287, 12289, 4);
      (8192, 8192, 2);
      (0, 50000, 5);
    ]

let subranges ~shards ~shard iv =
  let acc = ref [] in
  Pint_detector.iter_shard_subranges ~shards ~shard iv (fun sub ->
      acc := (sub.Interval.lo, sub.Interval.hi) :: !acc);
  List.rev !acc

let check_ranges = Alcotest.(check (list (pair int int)))

let test_shard_subranges_straddle () =
  let block = Lanes.shard_block in
  (* two blocks: the split lands exactly on the block boundary *)
  let iv = Interval.make (block - 6) (block + 4) in
  check_ranges "straddle shard0" [ (block - 6, block - 1) ] (subranges ~shards:2 ~shard:0 iv);
  check_ranges "straddle shard1" [ (block, block + 4) ] (subranges ~shards:2 ~shard:1 iv);
  (* three blocks, two shards: the outer blocks are both ≡ 0 (mod 2), so
     shard 0 owns two disjoint subranges of the same interval *)
  let iv3 = Interval.make (block - 1) (2 * block) in
  check_ranges "straddle3 shard0"
    [ (block - 1, block - 1); (2 * block, 2 * block) ]
    (subranges ~shards:2 ~shard:0 iv3);
  check_ranges "straddle3 shard1" [ (block, (2 * block) - 1) ] (subranges ~shards:2 ~shard:1 iv3)

let test_shard_subranges_single_word () =
  let block = Lanes.shard_block in
  List.iter
    (fun addr ->
      let iv = Interval.make addr addr in
      let owner = addr / block mod 3 in
      for shard = 0 to 2 do
        let want = if shard = owner then [ (addr, addr) ] else [] in
        check_ranges (Printf.sprintf "word %d shard %d" addr shard) want
          (subranges ~shards:3 ~shard iv)
      done)
    [ 0; block - 1; block; (2 * block) + 17 ]

let test_shard_subranges_more_shards_than_blocks () =
  let block = Lanes.shard_block in
  (* a 2-block interval under 5 shards: shards 2..4 own nothing *)
  let iv = Interval.make 10 (block + 10) in
  check_ranges "shard0" [ (10, block - 1) ] (subranges ~shards:5 ~shard:0 iv);
  check_ranges "shard1" [ (block, block + 10) ] (subranges ~shards:5 ~shard:1 iv);
  for shard = 2 to 4 do
    check_ranges (Printf.sprintf "shard%d empty" shard) [] (subranges ~shards:5 ~shard iv)
  done;
  (* shards = 1 never splits, whatever the interval *)
  let wide = Interval.make 0 (10 * block) in
  check_ranges "unsharded passthrough" [ (0, 10 * block) ] (subranges ~shards:1 ~shard:0 wide)

(* Property: for random intervals, shard counts and block alignments, the
   per-shard outputs of the splitter reconstruct the input exactly and
   disjointly, and every subrange lands on the shard that owns its
   addresses.  Exact disjoint coverage is equivalent to: sorted by [lo],
   the subranges start at [iv.lo], chain with no gap or overlap, and end
   at [iv.hi]. *)
let splitter_partition_prop =
  let gen =
    QCheck.Gen.(
      int_range 1 9 >>= fun shards ->
      int_range 4 13 >>= fun block_exp ->
      int_range 0 100_000 >>= fun lo ->
      int_range 0 40_000 >>= fun w -> return (shards, 1 lsl block_exp, lo, lo + w))
  in
  let print (shards, block, lo, hi) =
    Printf.sprintf "shards=%d block=%d [%d,%d]" shards block lo hi
  in
  QCheck.Test.make ~name:"splitter partitions exactly onto owning shards" ~count:500
    (QCheck.make ~print gen) (fun (shards, block, lo, hi) ->
      let iv = Interval.make lo hi in
      let subs = ref [] in
      for shard = 0 to shards - 1 do
        Lanes.iter_subranges ~block ~shards ~shard iv (fun sub ->
            if Lanes.owner ~block ~shards sub.Interval.lo <> shard then
              QCheck.Test.fail_reportf "lo %d not owned by shard %d" sub.Interval.lo shard;
            if Lanes.owner ~block ~shards sub.Interval.hi <> shard then
              QCheck.Test.fail_reportf "hi %d not owned by shard %d" sub.Interval.hi shard;
            (* a subrange never crosses a block boundary once there is more
               than one shard to cross into *)
            if shards > 1 && sub.Interval.lo / block <> sub.Interval.hi / block then
              QCheck.Test.fail_reportf "subrange [%d,%d] spans blocks" sub.Interval.lo
                sub.Interval.hi;
            subs := (sub.Interval.lo, sub.Interval.hi) :: !subs)
      done;
      let sorted = List.sort compare !subs in
      let rec chain expect = function
        | [] -> expect = hi + 1
        | (l, h) :: rest ->
            if l <> expect then
              QCheck.Test.fail_reportf "gap or overlap: expected lo %d, got [%d,%d]" expect l h;
            if h < l || h > hi then QCheck.Test.fail_reportf "bad subrange [%d,%d]" l h;
            chain (h + 1) rest
      in
      chain lo sorted)

let test_shards_param () =
  (* one spelling: ?shards (the readers-only-era ?reader_shards alias is
     gone — keeping this test pinned on the survivor) *)
  let p = Pint_detector.make ~shards:3 () in
  check_int "shards sets shard count" 3 (Pint_detector.shards p);
  let d = Pint_detector.make () in
  check_int "default is the paper topology" 1 (Pint_detector.shards d)

let racy_prog () =
  let b = Fj.alloc_f 8 in
  Fj.spawn (fun () -> Membuf.set_f b 3 1.0);
  Fj.spawn (fun () -> Membuf.set_f b 3 2.0);
  Fj.sync ()

let test_sharded_detects_race () =
  List.iter
    (fun shards ->
      let det, _ = run_sharded ~shards racy_prog in
      check_bool
        (Printf.sprintf "race found with %d shards" shards)
        true
        (Detector.races det <> []))
    [ 1; 2; 4 ]

let test_sharded_random_equivalence () =
  let nbuf = 12 in
  for seed = 1 to 20 do
    let rng = Rng.create (seed * 53) in
    let actions = Test_sim_progs.random_program rng nbuf in
    let prog () =
      let buf = Fj.alloc_f nbuf in
      Test_sim_progs.interpret buf actions ()
    in
    let sd = Stint.make () in
    let _ = Seq_exec.run ~driver:sd.Detector.driver prog in
    let expected = Detector.races sd <> [] in
    List.iter
      (fun shards ->
        let det, _ = run_sharded ~shards prog in
        if Detector.races det <> [] <> expected then
          Alcotest.failf "seed %d shards %d: got %b want %b" seed shards
            (Detector.races det <> []) expected)
      [ 2; 3 ]
  done

let test_sharded_workloads_clean () =
  List.iter
    (fun (name, size, base) ->
      let w = Registry.find name in
      let inst = w.Workload.make ~size ~base in
      let det, r = run_sharded ~n_workers:6 ~shards:3 inst.Workload.run in
      check_bool (name ^ " correct") true (inst.Workload.check ());
      check_int (name ^ " race free") 0 (List.length (Detector.races det));
      (* every strand flows through every shard worker *)
      let d = det.Detector.diagnostics () in
      let get k = List.assoc k d in
      check_bool (name ^ " l shards processed all") true
        (int_of_float (get "l_strands") = r.Sim_exec.n_strands);
      check_bool (name ^ " r shards processed all") true
        (int_of_float (get "r_strands") = r.Sim_exec.n_strands))
    [ ("mmul", 32, 8); ("sort", 2048, 32); ("heat", 32, 4) ]

let test_sharding_reduces_reader_bottleneck () =
  (* the extension's point: on a treap-bound configuration, the max reader
     clock drops substantially when the readers are sharded.  mmul's buffers
     span many shard blocks, so the split is effective. *)
  let w = Registry.find "mmul" in
  let time shards =
    let m =
      Systems.run ~shards ~workload:w ~size:w.Workload.default_size ~base:w.Workload.default_base
        ~workers:17 Systems.Pint_sys
    in
    m.Systems.time
  in
  let t1 = time 1 and t4 = time 4 in
  check_bool (Printf.sprintf "sharded faster (%.2f -> %.2f vsec)" (Systems.vsec t1) (Systems.vsec t4))
    true
    (t4 < 0.6 *. t1)

let test_detection_span_monotonic () =
  (* acceptance anchor: on the fig1 configuration (heat48, 4 core workers,
     paper cost model) the treap-side critical path — the max per-stage
     virtual-cycle cost, "detect_span" in diagnostics — must fall strictly
     as the access history is split across more shards *)
  let w = Registry.find "heat" in
  let span shards =
    let m = Systems.run ~shards ~workload:w ~size:48 ~base:8 ~workers:4 Systems.Pint_sys in
    List.assoc "detect_span" m.Systems.diags
  in
  let s1 = span 1 and s2 = span 2 and s4 = span 4 in
  check_bool (Printf.sprintf "span falls 1->2 shards (%.0f -> %.0f)" s1 s2) true (s2 < s1);
  check_bool (Printf.sprintf "span falls 2->4 shards (%.0f -> %.0f)" s2 s4) true (s4 < s2)

let test_detection_span_monotonic_replay () =
  (* same property on the replay path (bench group replay:heat48:shards):
     one recorded strand stream, pure access-history work *)
  let w = Registry.find "heat" in
  let inst = w.Workload.make ~size:48 ~base:8 in
  let d0, _ = Option.get (Systems.make_detector "none") in
  let driver, finished = Tracefile.capturing d0.Detector.driver in
  ignore (Seq_exec.run ~driver inst.Workload.run);
  let t = finished () in
  let span shards =
    let d, _ = Option.get (Systems.make_detector ~shards "pint") in
    List.assoc "detect_span" (Replay.run t d).Replay.diagnostics
  in
  let s1 = span 1 and s2 = span 2 and s4 = span 4 in
  check_bool (Printf.sprintf "replay span falls 1->2 (%.0f -> %.0f)" s1 s2) true (s2 < s1);
  check_bool (Printf.sprintf "replay span falls 2->4 (%.0f -> %.0f)" s2 s4) true (s4 < s2)

let test_sharded_heap_and_frames () =
  let det, _ =
    run_sharded ~n_workers:4 ~shards:2 (fun () ->
        for _ = 1 to 6 do
          Fj.spawn (fun () ->
              let x = Fj.alloc_f 16 in
              Membuf.fill_f x 0 16 1.0;
              Fj.free_f x;
              Fj.with_frame ~words:8 (fun fr -> Membuf.set_f fr 0 1.0))
        done;
        Fj.sync ())
  in
  check_int "no false races" 0 (List.length (Detector.races det))

let () =
  Alcotest.run "pint_sharded"
    [
      ( "sharding",
        [
          Alcotest.test_case "subrange partition" `Quick test_shard_subranges;
          Alcotest.test_case "subrange straddle" `Quick test_shard_subranges_straddle;
          Alcotest.test_case "subrange single word" `Quick test_shard_subranges_single_word;
          Alcotest.test_case "subrange shards>blocks" `Quick
            test_shard_subranges_more_shards_than_blocks;
          QCheck_alcotest.to_alcotest splitter_partition_prop;
          Alcotest.test_case "shards parameter" `Quick test_shards_param;
          Alcotest.test_case "detects race" `Quick test_sharded_detects_race;
          Alcotest.test_case "random equivalence" `Quick test_sharded_random_equivalence;
          Alcotest.test_case "workloads clean" `Quick test_sharded_workloads_clean;
          Alcotest.test_case "reduces bottleneck" `Quick test_sharding_reduces_reader_bottleneck;
          Alcotest.test_case "detection span monotone" `Quick test_detection_span_monotonic;
          Alcotest.test_case "detection span monotone (replay)" `Quick
            test_detection_span_monotonic_replay;
          Alcotest.test_case "heap+frames" `Quick test_sharded_heap_and_frames;
        ] );
    ]
