(** Shared access-history policies: what each treap/shadow cell keeps, and
    when a pair of accesses races.  Centralized so STINT, C-RACER and PINT
    cannot disagree on semantics. *)

(** [race sp ~prior ~current] — the stored accessor [prior] conflicts with
    [current] iff they are logically parallel. *)
val race : Sp_order.t -> prior:Sp_order.strand -> current:Sp_order.strand -> bool

(** Reader-slot update policies.  All take the incumbent reader and the new
    reader [s]; [`Replace] means [s] takes the slot.

    A reader that is serial-after the incumbent always replaces it (it
    supersedes every reader it can see); among parallel readers the
    left-most (resp. right-most) in English order wins. *)

val keep_leftmost :
  Sp_order.t -> s:Sp_order.strand -> incumbent:Sp_order.strand -> [ `Keep | `Replace ]

val keep_rightmost :
  Sp_order.t -> s:Sp_order.strand -> incumbent:Sp_order.strand -> [ `Keep | `Replace ]
