(* Address-range sharding for the §VI extension: reader-treap work can be
   split across [shards] workers per role because race checks are
   per-address — worker k owns the 4096-word blocks whose index is ≡ k
   (mod shards), each with its own sequential treap, so no concurrent treap
   is ever needed.  [shards = 1] is the paper's configuration. *)
let shard_block = 4096

let iter_shard_subranges ~shards ~shard (iv : Interval.t) f =
  if shards = 1 then f iv
  else begin
    let rec go lo =
      if lo <= iv.Interval.hi then begin
        let bstart = lo / shard_block * shard_block in
        let hi = min iv.Interval.hi (bstart + shard_block - 1) in
        if lo / shard_block mod shards = shard then f (Interval.make lo hi);
        go (hi + 1)
      end
    in
    go iv.Interval.lo
  end

(* State that exists only while a run is active. *)
type run = {
  ctx : Hooks.ctx;
  coals : Coalescer.t array; (* per core worker *)
  cur_traces : Trace.t array; (* per core worker *)
  registry : Trace.t Vec.t; (* active traces, writer-side scanned *)
  reg_lock : Mutex.t;
  ahq : Ahq.t;
  reader_bufs : Srec.t array array; (* per queue-reader reusable batch buffer *)
  writer : Sp_order.strand Itreap.t;
  lreaders : Sp_order.strand Itreap.t array; (* one per shard *)
  rreaders : Sp_order.strand Itreap.t array;
  core_done : bool Atomic.t;
  writer_done : bool Atomic.t;
  mutable scan_cursor : int;
  mutable n_collected : int;
  mutable writer_strands : int;
  reader_strands : int array; (* per queue-reader index *)
  mutable next_trace_id : int;
  (* Aggregate workload counters, bumped from [on_finish] which runs on
     every core-worker domain concurrently under [Par_exec] — hence atomic
     (caught by pint_lint R3: these were plain mutable ints). *)
  agg_intervals : int Atomic.t;
  agg_work : int Atomic.t;
  agg_raw_events : int Atomic.t;
  (* observability (all Evring.null / unregistered when profiling is off):
     [obs_w] is the writer stage's track, [obs_r].(k) queue-reader [k]'s;
     [lat_collect] is the finish→collected histogram (writer-owned);
     [lat_done].(k) the finish→all-treaps-done histogram bumped by
     whichever stage performed the last done_count increment (slot 2S for
     the writer), merged into the session's registered histogram once the
     pipeline drains ([lat_published] latches that hand-off). *)
  obs_w : Evring.t;
  obs_r : Evring.t array;
  lat_collect : Histo.t;
  lat_done : Histo.t array;
  done_target : int;
  mutable lat_published : bool;
}

type t = {
  seed : int;
  queue_capacity : int;
  shards : int;
  batch : int;
  report : Report.t;
  mutable run : run option;
  mutable stage_list : Stage.t list;
  mutable last_diags : (string * float) list;
  mutable obs : Obs.t;
}

let dummy_trace = Trace.create ~id:(-1) ~owner:(-1)

(* Placeholder filling the reusable batch buffers before their first use;
   never processed (peek_batch_into reports how many slots are live). *)
let dummy_srec =
  lazy
    (let _, root = Sp_order.create () in
     Srec.make ~uid:(-1) root)

let make ?(seed = 4242) ?(queue_capacity = 4096) ?(reader_shards = 1)
    ?(batch = Ahq.default_batch) () =
  if reader_shards < 1 then invalid_arg "Pint_detector.make: reader_shards must be >= 1";
  if batch < 1 then invalid_arg "Pint_detector.make: batch must be >= 1";
  {
    seed;
    queue_capacity;
    shards = reader_shards;
    batch;
    report = Report.create ();
    run = None;
    stage_list = [];
    last_diags = [];
    obs = Obs.disabled;
  }

let set_obs t obs = t.obs <- obs

(* Track name of queue-reader [idx] — must match the stage names built in
   [reader_steps] so the AHQ hooks and the engine share one track. *)
let reader_name t idx =
  if idx < t.shards then
    Printf.sprintf "lreader%s" (if t.shards = 1 then "" else string_of_int idx)
  else
    Printf.sprintf "rreader%s" (if t.shards = 1 then "" else string_of_int (idx - t.shards))

let active t = match t.run with Some r -> r | None -> failwith "Pint: no active run"

(* ------------------------------------------------------- core-worker side *)

let new_trace r ~wid =
  Mutex.lock r.reg_lock;
  let id = r.next_trace_id in
  r.next_trace_id <- id + 1;
  let tr = Trace.create ~id ~owner:wid in
  Vec.push r.registry tr;
  Mutex.unlock r.reg_lock;
  r.cur_traces.(wid) <- tr;
  tr

let driver t (ctx : Hooks.ctx) =
  let owner_eq = ( == ) in
  let s = t.shards in
  let r =
    {
      ctx;
      coals = Array.init ctx.n_workers (fun _ -> Coalescer.create ());
      cur_traces = Array.make ctx.n_workers dummy_trace;
      registry = Vec.create ~capacity:64 dummy_trace;
      reg_lock = Mutex.create ();
      ahq = Ahq.create ~capacity:t.queue_capacity ~readers:(2 * s) ();
      reader_bufs = Array.init (2 * s) (fun _ -> Array.make t.batch (Lazy.force dummy_srec));
      writer = Itreap.create ~seed:t.seed ~owner_eq ();
      lreaders = Array.init s (fun k -> Itreap.create ~seed:(t.seed + 1 + k) ~owner_eq ());
      rreaders = Array.init s (fun k -> Itreap.create ~seed:(t.seed + 101 + k) ~owner_eq ());
      core_done = Atomic.make false;
      writer_done = Atomic.make false;
      scan_cursor = 0;
      n_collected = 0;
      writer_strands = 0;
      reader_strands = Array.make (2 * s) 0;
      next_trace_id = 0;
      agg_intervals = Atomic.make 0;
      agg_work = Atomic.make 0;
      agg_raw_events = Atomic.make 0;
      obs_w = Obs.track t.obs "writer";
      obs_r = Array.init (2 * s) (fun idx -> Obs.track t.obs (reader_name t idx));
      lat_collect = Obs.histo t.obs "lat.finish_to_collect";
      lat_done = Array.init ((2 * s) + 1) (fun _ -> Histo.create ());
      done_target = 1 + (2 * s);
      lat_published = false;
    }
  in
  Ahq.set_obs r.ahq ~writer:r.obs_w ~readers:r.obs_r;
  for wid = 0 to ctx.n_workers - 1 do
    ignore (new_trace r ~wid)
  done;
  t.run <- Some r;
  List.iter Stage.reset_metrics t.stage_list;
  {
    Hooks.sink =
      (fun ~wid ->
        let coal = r.coals.(wid) in
        {
          Access.on_read = (fun ~addr ~len -> Coalescer.add_read coal ~addr ~len);
          on_write = (fun ~addr ~len -> Coalescer.add_write coal ~addr ~len);
          on_free =
            (fun ~base ~len ->
              let u = ctx.current ~wid in
              u.frees <- (base, len) :: u.frees);
          on_compute = (fun ~amount:_ -> ());
        });
    on_start =
      (fun ~wid _rec kind ->
        match kind with
        | Events.S_cont { stolen = true } | Events.S_after_sync { trivial = false } ->
            Trace.close r.cur_traces.(wid);
            ignore (new_trace r ~wid)
        | Events.S_root | Events.S_child | Events.S_cont { stolen = false }
        | Events.S_after_sync { trivial = true } ->
            ());
    on_finish =
      (fun ~wid u _kind ->
        let reads, writes = Coalescer.finish r.coals.(wid) in
        u.Srec.reads <- reads;
        u.Srec.writes <- writes;
        ignore (Atomic.fetch_and_add r.agg_intervals (Array.length reads + Array.length writes));
        ignore (Atomic.fetch_and_add r.agg_work u.Srec.work);
        ignore (Atomic.fetch_and_add r.agg_raw_events (u.Srec.raw_reads + u.Srec.raw_writes));
        Trace.push r.cur_traces.(wid) u);
    on_done =
      (fun () ->
        Array.iter Trace.close r.cur_traces;
        Atomic.set r.core_done true);
  }

(* ------------------------------------------------------ treap-worker side *)

let process_clears ?(shards = 1) ?(shard = 0) treap (u : Srec.t) =
  let clear (b, l) =
    iter_shard_subranges ~shards ~shard (Interval.make b (b + l - 1)) (fun sub ->
        Itreap.clear_range treap sub)
  in
  List.iter clear u.clears;
  List.iter clear u.frees

let process_writer t r (u : Srec.t) =
  let v0 = Itreap.visits r.writer in
  let s = u.Srec.sp in
  let check kind iv =
    Itreap.query r.writer iv ~f:(fun seg prior ->
        if Policies.race r.ctx.sp ~prior ~current:s then
          Report.add t.report kind ~prior:(Sp_order.id prior) ~current:(Sp_order.id s)
            (Interval.inter seg iv))
  in
  Array.iter (fun iv -> check Report.Write_read iv) u.reads;
  Array.iter
    (fun iv ->
      check Report.Write_write iv;
      Itreap.insert_replace r.writer iv s)
    u.writes;
  process_clears r.writer u;
  (* the delayed frees become real here: the writer treap worker owns
     recycling (§III-D, §III-F) *)
  List.iter (fun (b, l) -> Aspace.heap_free r.ctx.aspace ~base:b ~len:l) u.frees;
  r.writer_strands <- r.writer_strands + 1;
  Itreap.visits r.writer - v0

(* Queue-reader index [idx] maps to role L for idx < shards (shard = idx)
   and role R otherwise (shard = idx - shards). *)
let process_reader t r idx (u : Srec.t) =
  let shards = t.shards in
  let treap, keep, shard =
    if idx < shards then (r.lreaders.(idx), Policies.keep_leftmost, idx)
    else (r.rreaders.(idx - shards), Policies.keep_rightmost, idx - shards)
  in
  let v0 = Itreap.visits treap in
  let s = u.Srec.sp in
  Array.iter
    (fun iv ->
      iter_shard_subranges ~shards ~shard iv (fun sub ->
          Itreap.query treap sub ~f:(fun seg prior ->
              if Policies.race r.ctx.sp ~prior ~current:s then
                Report.add t.report Report.Read_write ~prior:(Sp_order.id prior)
                  ~current:(Sp_order.id s) (Interval.inter seg sub))))
    u.writes;
  Array.iter
    (fun iv ->
      iter_shard_subranges ~shards ~shard iv (fun sub ->
          Itreap.insert_merge treap sub s ~keep:(fun ~incumbent -> keep r.ctx.sp ~s ~incumbent)))
    u.reads;
  process_clears ~shards ~shard treap u;
  r.reader_strands.(idx) <- r.reader_strands.(idx) + 1;
  Itreap.visits treap - v0

(* Last done_count bump (the 1 + 2S'th): the strand has passed all treap
   workers.  [slot] indexes the bumping stage's private histogram; the
   ring is the bumping stage's own track, so the emit stays single-owner. *)
let note_complete r ~slot ~ring (u : Srec.t) =
  if Evring.enabled ring then begin
    let ts = Evring.now ring in
    Evring.emit_at ring ~ts ~kind:Ev.complete ~arg:u.Srec.uid;
    Histo.add r.lat_done.(slot) (ts - u.Srec.obs_ts)
  end

(* Algorithm 2: Collect. *)
let collect t r (u : Srec.t) =
  if not (Ahq.try_enqueue r.ahq u) then false
  else begin
    (match u.Srec.child with
    | Some c when u.Srec.is_spawn || u.Srec.child_is_sync -> Atomic.decr c.Srec.pred
    | _ -> ());
    r.n_collected <- r.n_collected + 1;
    (if Evring.enabled r.obs_w then begin
       let ts = Evring.now r.obs_w in
       Evring.emit_at r.obs_w ~ts ~kind:Ev.collect ~arg:u.Srec.uid;
       Histo.add r.lat_collect (ts - u.Srec.obs_ts)
     end);
    let prev = Atomic.fetch_and_add u.Srec.done_count 1 in
    (* under Par_exec readers can outrun the writer's own bump, so the
       writer may observe the completing increment; slot 2S is its own *)
    if prev = r.done_target - 1 then
      note_complete r ~slot:(r.done_target - 1) ~ring:r.obs_w u;
    ignore (process_writer t r u : int);
    true
  end

let writer_step t : Step.t =
  let r = active t in
  let n = Vec.length r.registry in
  if n = 0 then
    if Atomic.get r.core_done then begin
      Atomic.set r.writer_done true;
      Step.finished
    end
    else Step.idle
  else begin
    (* scan active traces round-robin from the cursor *)
    let rec scan i tried =
      let len = Vec.length r.registry in
      if len = 0 || tried >= len then Step.idle
      else begin
        let idx = i mod len in
        let tr = Vec.get r.registry idx in
        if Trace.drained tr then begin
          (* retire: swap-remove under the registry lock *)
          Mutex.lock r.reg_lock;
          let last = Vec.length r.registry - 1 in
          Vec.set r.registry idx (Vec.get r.registry last);
          ignore (Vec.pop r.registry);
          Mutex.unlock r.reg_lock;
          scan idx tried
        end
        else if Trace.unlocked tr then begin
          match Trace.peek tr with
          | Some u ->
              let v0 = Itreap.visits r.writer in
              if collect t r u then begin
                Trace.pop tr;
                r.scan_cursor <- idx;
                Step.worked (Itreap.visits r.writer - v0)
              end
              else Step.stalled (* queue full: stall until readers catch up *)
          | None -> scan (idx + 1) (tried + 1)
        end
        else scan (idx + 1) (tried + 1)
      end
    in
    match scan r.scan_cursor 0 with
    | `Idle when Vec.length r.registry = 0 && Atomic.get r.core_done ->
        Atomic.set r.writer_done true;
        Step.finished
    | other -> other
  end

(* Readers consume the queue in batches: one cursor update and one
   slot-recycling scan per batch instead of per record, through a reusable
   per-reader buffer so the batch itself allocates nothing. *)
let reader_step_idx t idx : Step.t =
  let r = active t in
  let buf = r.reader_bufs.(idx) in
  let n = Ahq.peek_batch_into r.ahq idx buf in
  if n = 0 then if Atomic.get r.writer_done then Step.finished else Step.idle
  else begin
    let visits = ref 0 in
    for k = 0 to n - 1 do
      let u = buf.(k) in
      visits := !visits + process_reader t r idx u;
      let prev = Atomic.fetch_and_add u.Srec.done_count 1 in
      if prev = r.done_target - 1 then note_complete r ~slot:idx ~ring:r.obs_r.(idx) u
    done;
    Ahq.advance_n r.ahq idx n;
    Step.worked ~records:n !visits
  end

let lreader_step t = reader_step_idx t 0
let rreader_step t = reader_step_idx t t.shards

let reader_steps t =
  List.init (2 * t.shards) (fun idx -> (reader_name t idx, fun () -> reader_step_idx t idx))

(* The pipeline stages: the writer treap worker plus the [2·S] reader treap
   workers, registered with the engine.  The same stage values are used by
   every executor (the simulator steps them in virtual time, the
   multi-domain executor gives each its own domain, [drain] round-robins
   them), so the per-stage metrics accumulate in one place regardless of
   who drives the pipeline. *)
let default_step_cost ~records ~visits = (100 * records) + (5 * visits)

let stages ?(cost = default_step_cost) t =
  let all =
    Stage.make ~name:"writer" ~cost (fun () -> writer_step t)
    :: List.map (fun (name, step) -> Stage.make ~name ~cost step) (reader_steps t)
  in
  t.stage_list <- all;
  all

let current_stages t = match t.stage_list with [] -> stages t | l -> l

(* After the pipeline has drained, merge the per-stage finish→done
   histograms into the session's registered aggregate.  Latched: drain can
   be called repeatedly (Detector.races drains on every query), the merge
   must happen once.  Runs on the draining thread after every stage is
   done, so reading the per-stage histograms is race-free. *)
let publish_latencies t =
  match t.run with
  | Some r when Obs.enabled t.obs && not r.lat_published ->
      r.lat_published <- true;
      let dst = Obs.histo t.obs "lat.finish_to_done" in
      Array.iter (fun src -> Histo.merge_into ~src ~dst) r.lat_done
  | _ -> ()

let drain t =
  Pipeline.drive (Pipeline.of_stages (current_stages t));
  publish_latencies t

let collected t = match t.run with Some r -> r.n_collected | None -> 0

let stage_diagnostics t =
  match t.stage_list with
  | [] -> []
  | sl ->
      let readers = List.filter (fun s -> Stage.name s <> "writer") sl in
      let sum f = List.fold_left (fun acc s -> acc + f (Stage.metrics s)) 0 readers in
      let rsteps = sum (fun m -> m.Stage.steps) and rrecords = sum (fun m -> m.Stage.records) in
      let writer_stalls =
        match List.find_opt (fun s -> Stage.name s = "writer") sl with
        | Some w -> (Stage.metrics w).Stage.stalls
        | None -> 0
      in
      ("writer_stalls", float_of_int writer_stalls)
      :: ("ahq_batch", float_of_int rrecords /. float_of_int (max 1 rsteps))
      :: Pipeline.diagnostics (Pipeline.of_stages sl)

let diagnostics t () =
  match t.run with
  | None -> t.last_diags
  | Some r ->
      let sum f arr = Array.fold_left (fun acc x -> acc +. f x) 0. arr in
      let sum_treaps f =
        f r.writer
        + Array.fold_left (fun a tr -> a + f tr) 0 r.lreaders
        + Array.fold_left (fun a tr -> a + f tr) 0 r.rreaders
      in
      let fast = sum_treaps Itreap.fastpath_hits and slow = sum_treaps Itreap.slowpath_hits in
      [
        ("fastpath_hits", float_of_int fast);
        ("slowpath_hits", float_of_int slow);
        ("fastpath_rate", float_of_int fast /. float_of_int (max 1 (fast + slow)));
        ("scratch_reuse", float_of_int (sum_treaps Itreap.scratch_reuse));
        ("queue_min_rescans", float_of_int (Ahq.min_rescans r.ahq));
        ( "coal_sort_skips",
          sum (fun c -> float_of_int (fst (Coalescer.sort_stats c))) r.coals );
        ("coal_sorts", sum (fun c -> float_of_int (snd (Coalescer.sort_stats c))) r.coals);
        ("collected", float_of_int r.n_collected);
        ("writer_strands", float_of_int r.writer_strands);
        ( "l_strands",
          float_of_int (Array.fold_left ( + ) 0 (Array.sub r.reader_strands 0 t.shards))
          /. float_of_int t.shards );
        ( "r_strands",
          float_of_int (Array.fold_left ( + ) 0 (Array.sub r.reader_strands t.shards t.shards))
          /. float_of_int t.shards );
        ("writer_visits", float_of_int (Itreap.visits r.writer));
        ("lreader_visits", sum (fun tr -> float_of_int (Itreap.visits tr)) r.lreaders);
        ("rreader_visits", sum (fun tr -> float_of_int (Itreap.visits tr)) r.rreaders);
        ("writer_size", float_of_int (Itreap.size r.writer));
        ("lreader_size", sum (fun tr -> float_of_int (Itreap.size tr)) r.lreaders);
        ("rreader_size", sum (fun tr -> float_of_int (Itreap.size tr)) r.rreaders);
        ("queue_enqueued", float_of_int (Ahq.enqueued r.ahq));
        ("traces", float_of_int r.next_trace_id);
        ("intervals", float_of_int (Atomic.get r.agg_intervals));
        ("work", float_of_int (Atomic.get r.agg_work));
        ("raw_events", float_of_int (Atomic.get r.agg_raw_events));
        ("shards", float_of_int t.shards);
      ]
      @ stage_diagnostics t

(* Structural invariants of all 1 + 2·S treaps: heap order on priorities,
   BST order on intervals, pairwise disjointness, size counters. *)
let validate t =
  match t.run with
  | None -> ()
  | Some r ->
      Itreap.validate r.writer;
      Array.iter Itreap.validate r.lreaders;
      Array.iter Itreap.validate r.rreaders

let detector t =
  {
    Detector.name = "pint";
    driver = driver t;
    report = t.report;
    drain = (fun () -> match t.run with Some _ -> drain t | None -> ());
    diagnostics = diagnostics t;
    validate = (fun () -> validate t);
  }
