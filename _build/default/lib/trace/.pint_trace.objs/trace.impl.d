lib/trace/trace.ml: Array Atomic Srec
