(** Plain-text table rendering for the figure reproductions. *)

(** [render ~title ~header rows] — column-aligned ASCII table.  The first
    column is left-aligned, the rest right-aligned. *)
val render : title:string -> header:string list -> string list list -> string

(** Number formats used across the tables. *)

val t2 : float -> string
(** two-decimal time *)

val x1 : float -> string
(** one-decimal factor with an [x] suffix, e.g. ["31.9x"] *)

val x2p : float -> string
(** factor in parentheses, e.g. ["(12.5x)"] *)

val bracket : float -> string
(** factor in brackets, e.g. ["[43.2x]"] *)
