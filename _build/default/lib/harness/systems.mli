(** Run one (workload, race-detection system, worker count) configuration
    under the virtual-time simulator and return its measurements.

    Worker-count convention: [workers] is the number of {e core} workers in
    the simulated runtime.  For PINT the three treap workers ride on top
    (the paper's "P cores = (P−3) core workers + 3 treap workers" becomes
    [workers = P - 3] at the call site); for the baseline and C-RACER all
    [P] cores are core workers; STINT is serial and ignores [workers].

    One-core semantics matches §IV-A: PINT on one core runs the whole core
    component first and then the access-history component, so its time is
    the sum (not the max) of the component times. *)

type system = Base | Stint_sys | Pint_sys | Cracer_sys

val system_name : system -> string

type measurement = {
  system : string;
  workload : string;
  workers : int;  (** core workers *)
  time : float;  (** virtual cycles for the whole run *)
  core_time : float;  (** core-component makespan *)
  writer_time : float;
  lreader_time : float;
  rreader_time : float;
  races : int;
  checked : bool;  (** result verification outcome *)
  n_steals : int;
  n_strands : int;
  diags : (string * float) list;
}

(** [shards] (default 1) runs PINT with address-sharded reader treap
    workers — the §VI extension; ignored for the other systems. *)
val run :
  ?model:Cost_model.t ->
  ?seed:int ->
  ?shards:int ->
  workload:Workload.t ->
  size:int ->
  base:int ->
  workers:int ->
  system ->
  measurement

(** [vsec cycles] — virtual cycles rendered as "virtual seconds"
    (1 vs = 10⁶ cycles), the unit the figure tables print. *)
val vsec : float -> float
