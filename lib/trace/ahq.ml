(* Cross-domain soundness (audited for the real-domain executor, where the
   producer and every reader run on distinct domains) — machine-checked by
   pint_lint's R5/R6 whole-program passes (DESIGN.md §15), not just argued
   here.

   OCaml 5 atomics are sequentially consistent, and the memory model gives
   publication safety: a plain write that happens-before an atomic write is
   visible to any domain that observes that atomic write.  Every plain
   field here rides one of two named happens-before edges, declared as
   [@pint.publishes]/[@pint.acquires] attributes below and wired to the
   [edges:]/[private:] owner-context rows in OWNERSHIP.md:

   - ["ahq.slot"] (slot publication) — [try_enqueue] plain-writes
     [slots.(h mod cap)] BEFORE [Atomic.incr head] (its releasing write);
     a reader only touches a slot after reading [head] past it, so it sees
     the full record.  [head] is written by the single producer only.
     Publisher: [try_enqueue].  Acquirers: every reader entry point that
     reaches [slot_at] ([peek], [peek_batch], [peek_batch_into]) — the
     lint pass proves no spawned path reads a slot without passing one.
   - ["ahq.recycle"] (slot recycling) — [advance_n] plain-clears a slot
     only when every OTHER cursor (read atomically) is already past it,
     and BEFORE atomically advancing its own cursor (its releasing
     write); the producer only reuses a slot after its cursor scan reads
     all cursors past it — that scan ([has_room], inlined into
     [try_enqueue]) is the acquiring read, so the clear is published to
     the producer before any reuse, and no reader can still be peeking a
     cleared slot (peeks start at the reader's own cursor).
   - writer-private caches — [cached_min], [min_rescans], [peak_occ] are
     touched only by the single producer ([private:] rows; cross-domain
     reads are post-drain diagnostics accessors); [cached_min] is a
     monotone lower bound on the cursor minimum (cursors only advance), so
     a stale value is only ever conservative: it can under-report room,
     never invent it.

   The one deliberately racy read is the occupancy sample in [advance_n]
   (another reader may advance between our snapshot and the emit) — it is
   an observability sample, not a correctness input. *)

type reader = int

let l = 0
let r = 1

type 'a t = {
  slots : 'a option array [@pint.publishes "ahq.slot ahq.recycle"];
  cap : int;
  head : int Atomic.t; (* total enqueued; writer-owned *)
  cursors : int Atomic.t array; (* total processed, per reader *)
  (* Writer-private cache of the last observed minimum cursor.  Cursors only
     move forward, so any value once read stays a valid lower bound: while
     [head - cached_min < cap] the ring provably has room and the enqueue
     can skip the cursor scan entirely.  Only rescanned when the cached
     bound would reject the enqueue.  Written solely by the (single) writer,
     hence no atomic needed. *)
  mutable cached_min : int;
  mutable min_rescans : int;
  (* Writer-private occupancy high-water mark (against the cached bound, so
     conservative the same way the emitted samples are). *)
  mutable peak_occ : int;
  (* observability hooks, installed before the pipeline starts; the writer
     ring is written only from [try_enqueue] (writer stage), reader ring
     [i] only from reader [i]'s [advance_n].  Evring.null when disabled. *)
  mutable obs_w : Evring.t;
  mutable obs_r : Evring.t array;
}

let create ?(capacity = 4096) ?(readers = 2) () =
  if capacity <= 0 then invalid_arg "Ahq.create: capacity must be positive";
  if readers < 1 then invalid_arg "Ahq.create: need at least one reader";
  {
    slots = Array.make capacity None;
    cap = capacity;
    head = Atomic.make 0;
    cursors = Array.init readers (fun _ -> Atomic.make 0);
    cached_min = 0;
    min_rescans = 0;
    peak_occ = 0;
    obs_w = Evring.null;
    obs_r = Array.make readers Evring.null;
  }

let n_readers t = Array.length t.cursors

let set_obs t ~writer ~readers =
  if Array.length readers <> Array.length t.cursors then
    invalid_arg "Ahq.set_obs: one reader ring per cursor";
  t.obs_w <- writer;
  t.obs_r <- readers

(* Int-specialized min: [Stdlib.min] is an out-of-line call into the
   polymorphic compare runtime even at int (pint_lint rule R2 flags it on
   hot paths); [<=] at a known int type compiles to one machine compare. *)
let imin (a : int) b = if a <= b then a else b

let min_cursor t =
  Array.fold_left (fun m c -> imin m (Atomic.get c)) max_int t.cursors

(* Writer-side room probe: refreshes the cached cursor minimum only when
   the cached bound would reject the enqueue.  Exposed so a multi-lane
   router can check every lane before committing an all-or-nothing
   enqueue — with a single producer, room observed here cannot shrink
   before the enqueue that follows. *)
let[@pint.hot] has_room t =
  let h = Atomic.get t.head in
  h - t.cached_min < t.cap
  || begin
       t.min_rescans <- t.min_rescans + 1;
       t.cached_min <- min_cursor t;
       h - t.cached_min < t.cap
     end

(* [@pint.publishes "ahq.slot"]: the slot write is ordered before the
   [Atomic.incr head] release.  [@pint.acquires "ahq.recycle"]: the
   cursor scan in [has_room] is the acquiring read that orders every
   reader's slot-clear before this producer's reuse of the slot. *)
let[@pint.hot] [@pint.publishes "ahq.slot"] [@pint.acquires "ahq.recycle"] try_enqueue t s =
  if not (has_room t) then false
  else begin
    let h = Atomic.get t.head in
    t.slots.(h mod t.cap) <- Some s;
    Atomic.incr t.head;
    (* occupancy sample against the cached bound: conservative (the true
       occupancy may be lower) but free, and exact whenever the cache was
       just refreshed *)
    let occ = h + 1 - t.cached_min in
    if occ > t.peak_occ then t.peak_occ <- occ;
    Evring.emit t.obs_w ~kind:Ev.enqueue ~arg:occ;
    true
  end

let cursor t i =
  if i < 0 || i >= Array.length t.cursors then invalid_arg "Ahq: bad reader index";
  t.cursors.(i)

let slot_at t pos =
  match t.slots.(pos mod t.cap) with
  | Some s -> s
  | None -> failwith "Ahq: published slot is empty"

(* Every reader entry point that dereferences a slot acquires "ahq.slot":
   the [Atomic.get t.head] bound check is the acquiring read matching the
   producer's release in [try_enqueue]. *)
let[@pint.acquires "ahq.slot"] peek t i =
  let pos = Atomic.get (cursor t i) in
  if pos >= Atomic.get t.head then None else Some (slot_at t pos)

let default_batch = 32

let[@pint.acquires "ahq.slot"] peek_batch ?(max = default_batch) t i =
  if max <= 0 then invalid_arg "Ahq.peek_batch: max must be positive";
  let pos = Atomic.get (cursor t i) in
  let n = imin (Atomic.get t.head - pos) max in
  if n <= 0 then [||] else Array.init n (fun k -> slot_at t (pos + k))

let[@pint.hot] [@pint.acquires "ahq.slot"] peek_batch_into t i buf =
  let cap = Array.length buf in
  if cap = 0 then invalid_arg "Ahq.peek_batch_into: empty buffer";
  let pos = Atomic.get (cursor t i) in
  let n = imin (Atomic.get t.head - pos) cap in
  if n <= 0 then 0
  else begin
    for k = 0 to n - 1 do
      buf.(k) <- slot_at t (pos + k)
    done;
    n
  end

(* [@pint.publishes "ahq.recycle"]: the slot clears are ordered before the
   [Atomic.set c] cursor release that lets the producer reuse them. *)
let[@pint.publishes "ahq.recycle"] advance_n t i n =
  if n <= 0 then invalid_arg "Ahq.advance_n: n must be positive";
  let c = cursor t i in
  let pos0 = Atomic.get c in
  if pos0 + n > Atomic.get t.head then failwith "Ahq.advance: nothing pending";
  (* Recycle the record references for the slots every other reader has
     already moved past.  Clearing must happen BEFORE our cursor advances:
     while our cursor still sits at [pos0] the writer cannot reuse any of
     these slots (the ring occupancy check uses the minimum cursor), so the
     clear can never wipe a freshly enqueued record.  One snapshot of the
     other cursors suffices for the whole batch — cursors only move
     forward, so [pos < min_other] stays true once observed.  If two
     readers pass a slot simultaneously, neither sees the other as "past"
     and the stale reference is simply overwritten by the writer on reuse —
     harmless. *)
  let min_other = ref max_int in
  Array.iteri (fun j other -> if j <> i then min_other := imin !min_other (Atomic.get other)) t.cursors;
  let clear_upto = imin (pos0 + n) !min_other in
  for pos = pos0 to clear_upto - 1 do
    t.slots.(pos mod t.cap) <- None
  done;
  Atomic.set c (pos0 + n);
  let obs = t.obs_r.(i) in
  if Evring.enabled obs then begin
    if clear_upto > pos0 then Evring.emit obs ~kind:Ev.recycle ~arg:(clear_upto - pos0);
    (* occupancy after this advance: the new global minimum cursor is the
       smaller of our new position and the other readers' snapshot *)
    Evring.emit obs ~kind:Ev.enqueue ~arg:(Atomic.get t.head - imin (pos0 + n) !min_other)
  end

let advance t i = advance_n t i 1

let enqueued t = Atomic.get t.head
let processed t i = Atomic.get (cursor t i)
let min_rescans t = t.min_rescans
let peak_occupancy t = t.peak_occ

(* Exact current depth: enqueued minus the slowest cursor.  Diagnostics
   only — scans the cursors every call. *)
let depth t = Atomic.get t.head - min_cursor t

let drained t =
  let h = Atomic.get t.head in
  Array.for_all (fun c -> Atomic.get c = h) t.cursors

let capacity t = t.cap
