(** Lock-free Chase-Lev work-stealing deque.

    Single-owner bottom end ([push_bottom]/[pop_bottom] — one domain only),
    concurrent [steal_top] thieves arbitrated by one CAS on the top index.
    No mutex on any path; see the implementation header for the
    memory-ordering argument (OCaml SC atomics subsume the C11 fences of
    Lê et al.'s formulation) and DESIGN.md §13.

    The ring is bounded in steady state: it starts at [capacity] slots
    (rounded up to a power of two) and doubles — owner-side, counted by
    {!grows} — only when a push finds it full. *)

type 'a t

(** [create ?capacity ~dummy ()] — [dummy] fills empty slots so the ring
    retains no stale payload references. *)
val create : ?capacity:int -> dummy:'a -> unit -> 'a t

(** Owner only. *)
val push_bottom : 'a t -> 'a -> unit

(** Owner only.  [None] when empty, or when a thief won the race for the
    last element. *)
val pop_bottom : 'a t -> 'a option

(** Any domain.  [None] when empty or when the top CAS was lost (counted
    in {!steal_cas_failures}); callers retry or back off. *)
val steal_top : 'a t -> 'a option

(** Exact when quiescent, racy hint otherwise. *)
val is_empty : 'a t -> bool

val capacity : 'a t -> int

(** Lost [steal_top] CASes, summed across all thieves. *)
val steal_cas_failures : 'a t -> int

(** Owner-side buffer doublings since creation. *)
val grows : 'a t -> int
