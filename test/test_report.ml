(* Report collector tests: deduplication granularity, ordering of [races],
   and thread-safety of concurrent [add] from multiple domains (the
   situation PINT's writer/reader treap workers create). *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let iv a b = Interval.make a b

let test_dedup_same_pair_same_kind () =
  let t = Report.create () in
  Report.add t Report.Write_write ~prior:1 ~current:2 (iv 0 7);
  Report.add t Report.Write_write ~prior:1 ~current:2 (iv 100 200);
  Report.add t Report.Write_write ~prior:1 ~current:2 (iv 0 7);
  check_int "distinct" 1 (Report.count t);
  check_int "raw" 3 (Report.raw_count t);
  check_bool "mem" true (Report.mem t ~prior:1 ~current:2);
  check_bool "mem other order" false (Report.mem t ~prior:2 ~current:1)

let test_kinds_distinguish () =
  (* same strand pair, three kinds: three distinct races — kind is part of
     the Theorem-5 granularity *)
  let t = Report.create () in
  Report.add t Report.Write_write ~prior:1 ~current:2 (iv 0 0);
  Report.add t Report.Write_read ~prior:1 ~current:2 (iv 0 0);
  Report.add t Report.Read_write ~prior:1 ~current:2 (iv 0 0);
  Report.add t Report.Read_write ~prior:1 ~current:2 (iv 5 9);
  check_int "three kinds" 3 (Report.count t);
  check_int "raw counts duplicates" 4 (Report.raw_count t)

let test_races_ordering () =
  let t = Report.create () in
  (* inserted out of order on purpose *)
  Report.add t Report.Read_write ~prior:3 ~current:9 (iv 0 0);
  Report.add t Report.Write_write ~prior:1 ~current:5 (iv 0 0);
  Report.add t Report.Write_read ~prior:1 ~current:2 (iv 0 0);
  Report.add t Report.Write_write ~prior:1 ~current:2 (iv 0 0);
  Report.add t Report.Write_write ~prior:2 ~current:3 (iv 0 0);
  let keys =
    List.map
      (fun (r : Report.race) -> (r.Report.prior, r.Report.current, r.Report.kind))
      (Report.races t)
  in
  check_bool "sorted by (prior, current, kind)" true (keys = List.sort compare keys);
  check_int "all present" 5 (List.length keys);
  (* first witness for a pair+kind is kept *)
  Report.add t Report.Write_write ~prior:1 ~current:5 (iv 77 88);
  let r =
    List.find
      (fun (r : Report.race) ->
        r.Report.prior = 1 && r.Report.current = 5 && r.Report.kind = Report.Write_write)
      (Report.races t)
  in
  check_bool "witness stable under duplicate add" true (r.Report.where = iv 0 0)

let test_concurrent_add () =
  (* 4 domains × 1000 adds over a shared key space of 250 (pair, kind)
     combinations: every add lands, dedup stays exact, no tearing *)
  let t = Report.create () in
  let n_domains = 4 and per_domain = 1000 in
  let worker d () =
    for i = 0 to per_domain - 1 do
      let k = (i + (d * 37)) mod 250 in
      let kind =
        match k mod 3 with 0 -> Report.Write_write | 1 -> Report.Write_read | _ -> Report.Read_write
      in
      Report.add t kind ~prior:(k / 3) ~current:(100 + (k / 3)) (iv k (k + 1))
    done
  in
  let domains = List.init n_domains (fun d -> Domain.spawn (worker d)) in
  List.iter Domain.join domains;
  check_int "every raw add counted" (n_domains * per_domain) (Report.raw_count t);
  check_int "exactly the key space deduplicated" 250 (Report.count t);
  check_int "races returns them all" 250 (List.length (Report.races t));
  let keys =
    List.map
      (fun (r : Report.race) -> (r.Report.prior, r.Report.current, r.Report.kind))
      (Report.races t)
  in
  check_bool "ordered even after concurrent adds" true (keys = List.sort compare keys)

let () =
  Alcotest.run "pint_report"
    [
      ( "dedup",
        [
          Alcotest.test_case "same pair same kind" `Quick test_dedup_same_pair_same_kind;
          Alcotest.test_case "kinds distinguish" `Quick test_kinds_distinguish;
        ] );
      ("ordering", [ Alcotest.test_case "races sorted" `Quick test_races_ordering ]);
      ("concurrency", [ Alcotest.test_case "multi-domain add" `Quick test_concurrent_add ])
    ]
