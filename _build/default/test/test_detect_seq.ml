(* End-to-end race-detection tests on the sequential executor.

   Every scenario is run under STINT, C-RACER and PINT (one-core
   configuration: core first, then drained access history) and, for the
   randomized tests, also compared against a brute-force oracle that records
   every access and checks all conflicting pairs with SP-order reachability.
   All three detectors are exact ("report a race iff one exists"), so their
   racy/race-free verdicts must agree with the oracle everywhere. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

type outcome = { name : string; races : Report.race list }

let run_detector make_d prog =
  let d = make_d () in
  let _res = Seq_exec.run ~driver:d.Detector.driver prog in
  { name = d.Detector.name; races = Detector.races d }

let run_all prog =
  [
    run_detector (fun () -> Stint.make ()) prog;
    run_detector (fun () -> Cracer.make ()) prog;
    run_detector (fun () -> Pint_detector.detector (Pint_detector.make ())) prog;
  ]

let assert_verdict expected prog =
  List.iter
    (fun o ->
      check_bool (Printf.sprintf "%s verdict" o.name) expected (o.races <> []))
    (run_all prog)

(* ---------------------------------------------------------- basic cases *)

let test_empty_program () = assert_verdict false (fun () -> ())

let test_ww_race () =
  assert_verdict true (fun () ->
      let b = Fj.alloc_f 8 in
      Fj.spawn (fun () -> Membuf.set_f b 3 1.0);
      Fj.spawn (fun () -> Membuf.set_f b 3 2.0);
      Fj.sync ())

let test_disjoint_writes_no_race () =
  assert_verdict false (fun () ->
      let b = Fj.alloc_f 8 in
      Fj.spawn (fun () -> Membuf.set_f b 0 1.0);
      Fj.spawn (fun () -> Membuf.set_f b 4 2.0);
      Fj.sync ())

let test_wr_race () =
  assert_verdict true (fun () ->
      let b = Fj.alloc_f 4 in
      Fj.spawn (fun () -> Membuf.set_f b 1 1.0);
      Fj.spawn (fun () -> ignore (Membuf.get_f b 1));
      Fj.sync ())

let test_rw_race () =
  assert_verdict true (fun () ->
      let b = Fj.alloc_f 4 in
      Fj.spawn (fun () -> ignore (Membuf.get_f b 2));
      Fj.spawn (fun () -> Membuf.set_f b 2 9.0);
      Fj.sync ())

let test_parallel_reads_no_race () =
  assert_verdict false (fun () ->
      let b = Fj.alloc_f 4 in
      Membuf.set_f b 0 5.0;
      Fj.spawn (fun () -> ignore (Membuf.get_f b 0));
      Fj.spawn (fun () -> ignore (Membuf.get_f b 0));
      Fj.sync ())

let test_sync_serializes () =
  assert_verdict false (fun () ->
      let b = Fj.alloc_f 4 in
      Fj.spawn (fun () -> Membuf.set_f b 0 1.0);
      Fj.sync ();
      Fj.spawn (fun () -> Membuf.set_f b 0 2.0);
      Fj.sync ())

let test_race_with_continuation () =
  (* the continuation itself races with the spawned child *)
  assert_verdict true (fun () ->
      let b = Fj.alloc_f 4 in
      Fj.spawn (fun () -> Membuf.set_f b 0 1.0);
      Membuf.set_f b 0 2.0;
      Fj.sync ())

let test_nested_scope_isolation () =
  (* scope gives the inner spawns their own sync: no race with outer *)
  assert_verdict false (fun () ->
      let b = Fj.alloc_f 4 in
      Fj.scope (fun () ->
          Fj.spawn (fun () -> Membuf.set_f b 0 1.0);
          Fj.sync ());
      Membuf.set_f b 0 2.0)

let test_missing_scope_races () =
  (* same code without the scope: the helper's spawn joins the outer block
     which only syncs after the conflicting write *)
  assert_verdict true (fun () ->
      let b = Fj.alloc_f 4 in
      let helper () = Fj.spawn (fun () -> Membuf.set_f b 0 1.0) in
      helper ();
      Membuf.set_f b 0 2.0;
      Fj.sync ())

let test_grandchild_race () =
  assert_verdict true (fun () ->
      let b = Fj.alloc_f 4 in
      Fj.spawn (fun () ->
          Fj.spawn (fun () -> Membuf.set_f b 0 1.0);
          Fj.sync ());
      Membuf.set_f b 0 2.0;
      Fj.sync ())

let test_exact_pair_reported () =
  (* single racing pair: every detector must report exactly one distinct
     race, of write/write kind, between the same two strands *)
  let prog () =
    let b = Fj.alloc_f 4 in
    Fj.spawn (fun () -> Membuf.set_f b 0 1.0);
    Fj.spawn (fun () -> Membuf.set_f b 0 2.0);
    Fj.sync ()
  in
  let outcomes = run_all prog in
  let pairs =
    List.map
      (fun o ->
        check_int (o.name ^ " one distinct race") 1 (List.length o.races);
        let r = List.hd o.races in
        check_bool (o.name ^ " kind ww") true (r.Report.kind = Report.Write_write);
        (r.Report.prior, r.Report.current))
      outcomes
  in
  match pairs with
  | p :: rest -> List.iter (fun q -> check_bool "same strand pair" true (q = p)) rest
  | [] -> Alcotest.fail "no outcomes"

(* ------------------------------------------------------ interval precision *)

let test_partial_overlap_race () =
  (* children write [0,9] and [8,15]: only [8,9] conflicts *)
  assert_verdict true (fun () ->
      let b = Fj.alloc_f 16 in
      Fj.spawn (fun () -> Membuf.fill_f b 0 10 1.0);
      Fj.spawn (fun () -> Membuf.fill_f b 8 8 2.0);
      Fj.sync ())

let test_adjacent_no_race () =
  assert_verdict false (fun () ->
      let b = Fj.alloc_f 16 in
      Fj.spawn (fun () -> Membuf.fill_f b 0 8 1.0);
      Fj.spawn (fun () -> Membuf.fill_f b 8 8 2.0);
      Fj.sync ())

let test_strided_interleaved_no_race () =
  assert_verdict false (fun () ->
      let b = Fj.alloc_f 32 in
      Fj.spawn (fun () ->
          for i = 0 to 15 do
            Membuf.set_f b (2 * i) 1.0
          done);
      Fj.spawn (fun () ->
          for i = 0 to 15 do
            Membuf.set_f b ((2 * i) + 1) 2.0
          done);
      Fj.sync ())

let test_three_readers_one_writer () =
  assert_verdict true (fun () ->
      let b = Fj.alloc_f 4 in
      Membuf.set_f b 0 1.0;
      Fj.spawn (fun () -> ignore (Membuf.get_f b 0));
      Fj.spawn (fun () -> ignore (Membuf.get_f b 0));
      Fj.spawn (fun () -> Membuf.set_f b 0 2.0);
      Fj.sync ())

(* --------------------------------------------------------- §III-F hazards *)

let test_stack_reuse_no_false_race () =
  (* A spawns B (stack locals), then calls C in the continuation; B and C
     share frame addresses on the same worker — logically distinct memory *)
  assert_verdict false (fun () ->
      Fj.spawn (fun () ->
          Fj.with_frame ~words:16 (fun fr ->
              Membuf.set_f fr 0 1.0;
              ignore (Membuf.get_f fr 0)));
      (* continuation: reuses B's popped frame *)
      Fj.with_frame ~words:16 (fun fr ->
          Membuf.set_f fr 0 2.0;
          ignore (Membuf.get_f fr 0));
      Fj.sync ())

let test_stack_reuse_depth () =
  (* deeper nesting with repeated frame reuse across spawn boundaries *)
  assert_verdict false (fun () ->
      for _ = 1 to 5 do
        Fj.spawn (fun () ->
            Fj.with_frame ~words:8 (fun fr ->
                for j = 0 to 7 do
                  Membuf.set_f fr j (float_of_int j)
                done));
        Fj.with_frame ~words:8 (fun fr -> Membuf.set_f fr 3 1.0);
        Fj.sync ()
      done)

let test_real_race_through_frames_still_found () =
  (* shared heap race must still be found amid frame traffic *)
  assert_verdict true (fun () ->
      let b = Fj.alloc_f 4 in
      Fj.spawn (fun () ->
          Fj.with_frame ~words:8 (fun fr ->
              Membuf.set_f fr 0 1.0;
              Membuf.set_f b 0 1.0));
      Fj.with_frame ~words:8 (fun fr ->
          Membuf.set_f fr 0 2.0;
          Membuf.set_f b 0 2.0);
      Fj.sync ())

let test_heap_reuse_no_false_race () =
  (* B allocates, writes, frees; C (parallel with B) allocates — with eager
     reuse C would get B's addresses; must not be reported as a race *)
  assert_verdict false (fun () ->
      Fj.spawn (fun () ->
          let x = Fj.alloc_f 32 in
          Membuf.fill_f x 0 32 1.0;
          Fj.free_f x);
      (let y = Fj.alloc_f 32 in
       Membuf.fill_f y 0 32 2.0;
       Fj.free_f y);
      Fj.sync ())

let test_heap_reuse_serial_chain () =
  assert_verdict false (fun () ->
      for _ = 1 to 10 do
        Fj.spawn (fun () ->
            let x = Fj.alloc_f 16 in
            Membuf.set_f x 5 1.0;
            Fj.free_f x);
        Fj.sync ()
      done)

let test_use_after_free_style_race_found () =
  (* a real race on a live heap block, with frees happening around it *)
  assert_verdict true (fun () ->
      let shared = Fj.alloc_f 8 in
      Fj.spawn (fun () ->
          let x = Fj.alloc_f 8 in
          Membuf.set_f x 0 0.0;
          Fj.free_f x;
          Membuf.set_f shared 3 1.0);
      Membuf.set_f shared 3 2.0;
      Fj.sync ())

(* ------------------------------------------------------------ randomized *)

(* Brute-force oracle: record every (strand, interval, is_write) access and
   decide racy-ness pairwise via SP-order. *)
let oracle_make () =
  let log : (Sp_order.strand * Interval.t * bool) list ref = ref [] in
  let sp_ref = ref None in
  let driver (ctx : Hooks.ctx) =
    sp_ref := Some ctx.sp;
    {
      Hooks.sink =
        (fun ~wid ->
          {
            Access.on_read =
              (fun ~addr ~len ->
                log := ((ctx.current ~wid).Srec.sp, Interval.make addr (addr + len - 1), false) :: !log);
            on_write =
              (fun ~addr ~len ->
                log := ((ctx.current ~wid).Srec.sp, Interval.make addr (addr + len - 1), true) :: !log);
            on_free = (fun ~base ~len -> Aspace.heap_free ctx.aspace ~base ~len);
            on_compute = (fun ~amount:_ -> ());
          });
      on_start = (fun ~wid:_ _ _ -> ());
      on_finish = (fun ~wid:_ _ _ -> ());
      on_done = (fun () -> ());
    }
  in
  let racy () =
    let sp = Option.get !sp_ref in
    let accs = Array.of_list !log in
    let n = Array.length accs in
    let found = ref false in
    (for i = 0 to n - 1 do
       if not !found then
         for j = i + 1 to n - 1 do
           let s1, iv1, w1 = accs.(i) and s2, iv2, w2 = accs.(j) in
           if
             (not !found) && (w1 || w2)
             && Interval.overlaps iv1 iv2
             && Sp_order.parallel sp s1 s2
           then found := true
         done
     done);
    !found
  in
  (driver, racy)

(* Random fork-join programs over a small shared buffer.  NOTE: the oracle
   treats reused stack/heap addresses as the same location, so the generator
   avoids frames and frees; those hazards have dedicated directed tests. *)
let random_program rng nbuf =
  let rec gen depth budget =
    let actions = ref [] in
    let n_actions = 1 + Rng.int rng 4 in
    for _ = 1 to n_actions do
      if !budget > 0 then begin
        decr budget;
        let choice = Rng.int rng 10 in
        if choice < 4 || depth >= 3 then begin
          (* memory access *)
          let addr = Rng.int rng nbuf in
          let len = 1 + Rng.int rng (min 4 (nbuf - addr)) in
          let is_write = Rng.bool rng in
          actions := `Access (addr, len, is_write) :: !actions
        end
        else if choice < 8 then actions := `Spawn (gen (depth + 1) budget) :: !actions
        else actions := `Sync :: !actions
      end
    done;
    List.rev !actions
  in
  gen 0 (ref 24)

let interpret buf actions () =
  let rec go actions =
    List.iter
      (function
        | `Access (addr, len, true) -> Membuf.fill_f buf addr len 1.0
        | `Access (addr, len, false) -> ignore (Membuf.read_range_f buf addr len)
        | `Spawn inner -> Fj.spawn (fun () -> go inner)
        | `Sync -> Fj.sync ())
      actions
  in
  go actions

let run_random_comparison seed =
  let rng = Rng.create seed in
  let nbuf = 12 in
  let actions = random_program rng nbuf in
  let make_prog () =
    fun () ->
      let buf = Fj.alloc_f nbuf in
      interpret buf actions ()
  in
  (* oracle *)
  let odriver, oracle_racy = oracle_make () in
  let _ = Seq_exec.run ~driver:odriver (make_prog ()) in
  let expected = oracle_racy () in
  List.iter
    (fun o ->
      if (o.races <> []) <> expected then
        Alcotest.failf "seed %d: %s said %b, oracle %b" seed o.name (o.races <> []) expected)
    (run_all (make_prog ()))

let test_random_vs_oracle () =
  for seed = 1 to 60 do
    run_random_comparison seed
  done

let detect_qcheck =
  QCheck.Test.make ~name:"detectors agree with brute-force oracle" ~count:80 QCheck.small_nat
    (fun seed ->
      run_random_comparison (seed + 10_000);
      true)

(* ---------------------------------------------------------- plumbing *)

let test_counts_and_structure () =
  let d = Stint.make () in
  let res =
    Seq_exec.run ~driver:d.Detector.driver (fun () ->
        let b = Fj.alloc_f 4 in
        Fj.spawn (fun () -> Membuf.set_f b 0 1.0);
        Fj.spawn (fun () -> Membuf.set_f b 1 1.0);
        Fj.sync ())
  in
  check_int "spawns" 2 res.Seq_exec.n_spawns;
  check_int "syncs" 1 res.Seq_exec.n_syncs;
  (* strands: root, spawn-node=root? root splits: root(spawn1) + child1 +
     cont1(spawn2) + child2 + cont2 + sync-node = 6 records created, plus the
     two child-return boundaries reuse child records *)
  check_bool "strand count sane" true (res.Seq_exec.n_strands >= 6)

let test_no_engine_outside_run () =
  Alcotest.check_raises "Fj.spawn outside run"
    (Failure "Fj: no executor is running on this domain") (fun () -> Fj.spawn (fun () -> ()))

let () =
  Alcotest.run "pint_detect_seq"
    [
      ( "verdicts",
        [
          Alcotest.test_case "empty program" `Quick test_empty_program;
          Alcotest.test_case "ww race" `Quick test_ww_race;
          Alcotest.test_case "disjoint writes" `Quick test_disjoint_writes_no_race;
          Alcotest.test_case "wr race" `Quick test_wr_race;
          Alcotest.test_case "rw race" `Quick test_rw_race;
          Alcotest.test_case "parallel reads ok" `Quick test_parallel_reads_no_race;
          Alcotest.test_case "sync serializes" `Quick test_sync_serializes;
          Alcotest.test_case "continuation races child" `Quick test_race_with_continuation;
          Alcotest.test_case "scope isolates" `Quick test_nested_scope_isolation;
          Alcotest.test_case "missing scope races" `Quick test_missing_scope_races;
          Alcotest.test_case "grandchild race" `Quick test_grandchild_race;
          Alcotest.test_case "exact pair" `Quick test_exact_pair_reported;
        ] );
      ( "intervals",
        [
          Alcotest.test_case "partial overlap" `Quick test_partial_overlap_race;
          Alcotest.test_case "adjacent ok" `Quick test_adjacent_no_race;
          Alcotest.test_case "strided interleave ok" `Quick test_strided_interleaved_no_race;
          Alcotest.test_case "readers then writer" `Quick test_three_readers_one_writer;
        ] );
      ( "memory-reuse",
        [
          Alcotest.test_case "stack reuse" `Quick test_stack_reuse_no_false_race;
          Alcotest.test_case "stack reuse depth" `Quick test_stack_reuse_depth;
          Alcotest.test_case "race among frames" `Quick test_real_race_through_frames_still_found;
          Alcotest.test_case "heap reuse" `Quick test_heap_reuse_no_false_race;
          Alcotest.test_case "heap serial chain" `Quick test_heap_reuse_serial_chain;
          Alcotest.test_case "race near frees" `Quick test_use_after_free_style_race_found;
        ] );
      ( "random",
        [
          Alcotest.test_case "60 seeds vs oracle" `Quick test_random_vs_oracle;
          QCheck_alcotest.to_alcotest detect_qcheck;
        ] );
      ( "plumbing",
        [
          Alcotest.test_case "run stats" `Quick test_counts_and_structure;
          Alcotest.test_case "no engine outside run" `Quick test_no_engine_outside_run;
        ] );
    ]
