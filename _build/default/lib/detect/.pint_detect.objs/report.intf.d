lib/detect/report.mli: Format Interval
