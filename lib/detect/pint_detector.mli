(** PINT — the paper's parallel interval-based race detector.

    Core-side (driven through the detector hooks by whichever executor is
    running the computation):
    - per-worker coalescers turn each strand's accesses into intervals;
    - finished strands are pushed onto the worker's current {!Trace}
      (Algorithm 1 — the [pred]/[child] bookkeeping itself is applied by the
      executors via {!Book});
    - a worker switches to a fresh trace when it starts a stolen
      continuation or passes a non-trivial sync.

    Access-history side: three logical treap workers, packaged as engine
    {!Stage}s so that every execution mode can drive them through the
    shared pipeline machinery —
    - the {b writer} treap worker collects ready strands from traces in a
      DAG-conforming order (Algorithm 2), moves them into the shared
      access-history queue, checks read/write intervals against the
      last-writer treap, performs delayed heap frees;
    - the {b left-most} / {b right-most} reader treap workers follow the
      queue in batches ({!Ahq.peek_batch}), check write intervals against
      their reader treap and insert read intervals under their respective
      keep policies.

    The sequential executor calls {!drain} once at the end (the paper's
    one-core PINT configuration: all core work first, then the access
    history).  The simulator steps the stages in virtual time; the
    multi-domain executor runs each on a dedicated domain.  Each step
    reports the number of treap-node visits it caused, which is the cost
    its caller charges in virtual time (through the stage's cost hook). *)

type t

(** [make ?seed ?queue_capacity ?reader_shards ?batch ()].

    [reader_shards] implements the paper's §VI future-work direction —
    parallelizing the treap component: each reader role (left-most /
    right-most) is split across that many workers, worker [k] owning the
    4096-word address blocks congruent to [k]; every shard has its own
    sequential treap, so correctness needs no concurrent treap.  The default
    [1] is the paper's three-treap-worker configuration.

    [batch] bounds how many queued records a reader treap worker consumes
    per step (default {!Ahq.default_batch}), amortizing cursor updates and
    slot-recycling checks. *)
val make : ?seed:int -> ?queue_capacity:int -> ?reader_shards:int -> ?batch:int -> unit -> t

(** The generic handle (driver/report/drain) for this instance. *)
val detector : t -> Detector.t

(** Attach an observability session.  Must be called before the first strand
    finishes (i.e. before the executor starts): the run's tracks — "writer"
    plus one per reader shard — and the pipeline-latency histograms
    ("lat.finish_to_collect", "lat.finish_to_done") are registered lazily
    when the first trace record arrives.  With a disabled session (the
    default) every hot-path hook short-circuits to the null ring. *)
val set_obs : t -> Obs.t -> unit

(** The pipeline as engine stages: the writer stage followed by the [2·S]
    reader stages.  [cost] converts a step's treap-node visit count into
    virtual cycles (the harness supplies the calibrated model; the default
    charges a small constant plus a per-visit cost).  The returned stages
    are remembered by the detector: {!drain} drives the same values, and
    their per-stage metrics appear in [Detector.diagnostics] (keys
    [stage.<name>.<counter>], plus [writer_stalls] and the achieved
    [ahq_batch] size). *)
val stages : ?cost:(records:int -> visits:int -> int) -> t -> Stage.t list

(** One writer-treap-worker step (exposed for tests and custom drivers). *)
val writer_step : t -> Step.t

(** Shard 0 of each role (the only shard in the default configuration). *)
val lreader_step : t -> Step.t

val rreader_step : t -> Step.t

(** All reader workers, named ("lreader", "rreader" for one shard;
    "lreader0", "rreader1", … when sharded). *)
val reader_steps : t -> (string * (unit -> Step.t)) list

(** Run all treap workers round-robin to completion via the engine's
    {!Pipeline.drive}. *)
val drain : t -> unit

(** Number of strands the writer worker has collected so far. *)
val collected : t -> int

(** [iter_shard_subranges ~shards ~shard iv f] — the block-aligned subranges
    of [iv] owned by [shard]; the shards partition every interval exactly.
    Exposed for tests and for building custom shard workers. *)
val iter_shard_subranges : shards:int -> shard:int -> Interval.t -> (Interval.t -> unit) -> unit
