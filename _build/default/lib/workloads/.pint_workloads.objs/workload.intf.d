lib/workloads/workload.mli:
