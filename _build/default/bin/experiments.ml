(* Regenerate the paper's evaluation tables (Figures 1-4) and auxiliary
   statistics.  `experiments all` prints everything, which is what
   EXPERIMENTS.md and bench_output.txt are built from. *)

open Cmdliner

let print_fig1 cores =
  let _, txt = Figures.fig1 ~cores () in
  print_string txt

let print_fig2 cores =
  let _, txt = Figures.fig2 ~cores () in
  print_string txt

let print_fig3 () =
  let _, txt = Figures.fig3 () in
  print_string txt

let print_fig4 () =
  let _, txt = Figures.fig4 () in
  print_string txt

let print_stats () =
  let header = [ "bench"; "size"; "base"; "work"; "events"; "intervals"; "strands"; "coalesce" ] in
  let rows =
    List.map
      (fun (w : Workload.t) ->
        let size = w.default_size and base = w.default_base in
        let m = Systems.run ~workload:w ~size ~base ~workers:1 Systems.Stint_sys in
        let diag k = match List.assoc_opt k m.Systems.diags with Some v -> v | None -> 0. in
        [
          w.name;
          string_of_int size;
          string_of_int base;
          Printf.sprintf "%.0f" (diag "work");
          Printf.sprintf "%.0f" (diag "raw_events");
          Printf.sprintf "%.0f" (diag "intervals");
          string_of_int m.Systems.n_strands;
          Printf.sprintf "%.1f" (diag "work" /. Float.max 1. (diag "intervals"));
        ])
      (Registry.all ())
  in
  print_string
    (Table.render
       ~title:
         "Workload statistics at default sizes (words touched, instrumentation events, coalesced \
          intervals, strands, words per interval)."
       ~header rows)

let print_shards () =
  (* the §VI extension: sharded reader treap workers relieve the treap
     bottleneck on the treap-bound configurations *)
  let header = [ "bench"; "shards=1"; "shards=2"; "shards=4"; "core-only" ] in
  let rows =
    List.map
      (fun name ->
        let w = Registry.find name in
        let cell shards =
          Systems.run ~shards ~workload:w ~size:w.Workload.default_size
            ~base:w.Workload.default_base ~workers:17 Systems.Pint_sys
        in
        let m1 = cell 1 and m2 = cell 2 and m4 = cell 4 in
        [
          name;
          Table.t2 (Systems.vsec m1.Systems.time);
          Table.t2 (Systems.vsec m2.Systems.time);
          Table.t2 (Systems.vsec m4.Systems.time);
          Table.t2 (Systems.vsec m4.Systems.core_time);
        ])
      [ "chol"; "mmul"; "sort"; "stra"; "fft" ]
  in
  print_string
    (Table.render
       ~title:
         "Extension (paper SVI future work): PINT total time at 17 core workers with sharded \
          reader treap workers (virtual seconds; last column = core component, the floor)."
       ~header rows)

let print_all cores =
  print_stats ();
  print_newline ();
  print_fig1 cores;
  print_newline ();
  print_fig2 cores;
  print_newline ();
  print_fig3 ();
  print_newline ();
  print_fig4 ();
  print_newline ();
  print_shards ()

let cores_arg =
  let doc = "Total simulated cores for the Figure 1/2 parallel columns." in
  Arg.(value & opt int 20 & info [ "cores" ] ~doc)

let cmd name doc f = Cmd.v (Cmd.info name ~doc) Term.(const f $ const ())
let cmd_cores name doc f = Cmd.v (Cmd.info name ~doc) Term.(const f $ cores_arg)

let () =
  let default = Term.(const print_all $ cores_arg) in
  let info = Cmd.info "experiments" ~doc:"Reproduce the PINT paper's evaluation figures" in
  exit
    (Cmd.eval
       (Cmd.group ~default info
          [
            cmd_cores "fig1" "Figure 1: one-core and multi-core running times" print_fig1;
            cmd_cores "fig2" "Figure 2: parallelization overhead and work breakdown" print_fig2;
            cmd "fig3" "Figure 3: strong scaling" print_fig3;
            cmd "fig4" "Figure 4: weak scaling" print_fig4;
            cmd "stats" "Workload event statistics" print_stats;
            cmd "shards" "Extension: sharded reader treap workers" print_shards;
            cmd_cores "all" "Everything" print_all;
          ]))
