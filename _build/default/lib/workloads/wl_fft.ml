(* fft — iterative in-place Cooley–Tukey FFT with a parallel bit-reversal
   permutation, over split real/imaginary buffers.

   The bit-reversal phase swaps each element with its bit-reversed partner:
   the partner addresses are scattered across the whole array, so a strand's
   accesses coalesce into hundreds of tiny intervals.  This is the paper's
   interval-hostile benchmark (§IV-A): the number of intervals stays close
   to the number of accesses, so interval-based access history loses its
   advantage over the per-access hashmap.  The butterfly stages are
   parallelized over contiguous block ranges and coalesce normally.

   Every element access is instrumented individually (no bulk announces) —
   there is nothing for a compiler to coalesce here.

   The racy variant skips the sync between the bit-reversal and the first
   butterfly stage. *)

let bit_reverse ~bits i =
  let r = ref 0 in
  for b = 0 to bits - 1 do
    if i land (1 lsl b) <> 0 then r := !r lor (1 lsl (bits - 1 - b))
  done;
  !r

(* parallel-for over [lo,hi) by recursive splitting with base chunk size *)
let rec par_for base lo hi f =
  if hi - lo <= base then
    for i = lo to hi - 1 do
      f i
    done
  else begin
    let mid = (lo + hi) / 2 in
    Fj.scope (fun () ->
        Fj.spawn (fun () -> par_for base lo mid f);
        par_for base mid hi f;
        Fj.sync ())
  end

let get re im k = (Membuf.get_f re k, Membuf.get_f im k)

let set re im k (x, y) =
  Membuf.set_f re k x;
  Membuf.set_f im k y

let fft ~synced ~base re im n =
  let bits =
    let rec go b = if 1 lsl b = n then b else go (b + 1) in
    go 0
  in
  Fj.scope (fun () ->
      (* bit-reversal: the pair (i, rev i) is swapped by the strand owning
         min(i, rev i), so parallel chunks never conflict — but their writes
         land all over the array.  Spawned so the racy variant can overlap
         it with the first butterfly stage. *)
      Fj.spawn (fun () ->
          par_for base 0 n (fun i ->
              Access.emit_compute ~amount:4;
          let j = bit_reverse ~bits i in
              if i < j then begin
                let a = get re im i and b = get re im j in
                set re im i b;
                set re im j a
              end));
      if synced then Fj.sync ();
      (* butterfly stages, parallel over the global butterfly index so late
         stages (few blocks) still split within a block *)
      let len = ref 2 in
      while !len <= n do
        let l = !len in
        let h = l / 2 in
        par_for (max 1 (base / 2)) 0 (n / 2) (fun g ->
            let blk = g / h and k = g mod h in
            let start = blk * l in
            Access.emit_compute ~amount:10;
            let ang = -2. *. Float.pi *. float_of_int k /. float_of_int l in
            let wr = cos ang and wi = sin ang in
            let ur, ui = get re im (start + k) in
            let vr, vi = get re im (start + k + h) in
            let tr = (wr *. vr) -. (wi *. vi) and ti = (wr *. vi) +. (wi *. vr) in
            set re im (start + k) (ur +. tr, ui +. ti);
            set re im (start + k + h) (ur -. tr, ui -. ti));
        Fj.sync ();
        len := l * 2
      done)

let make_gen ~synced ~size ~base =
  let n = size in
  let state = ref None in
  let run () =
    let re = Fj.alloc_f n and im = Fj.alloc_f n in
    (* input: impulse at 0 plus a pure complex tone at bin 3 *)
    Membuf.poke_f re 0 1.0;
    for t = 0 to n - 1 do
      let ang = 2. *. Float.pi *. 3. *. float_of_int t /. float_of_int n in
      Membuf.poke_f re t (Membuf.peek_f re t +. cos ang);
      Membuf.poke_f im t (sin ang)
    done;
    state := Some (re, im);
    fft ~synced ~base re im n
  in
  let check () =
    match !state with
    | None -> false
    | Some (re, im) ->
        (* the impulse contributes 1 everywhere; the tone n at bin 3 *)
        let ok = ref true in
        for k = 0 to n - 1 do
          let want_re = if k = 3 then 1. +. float_of_int n else 1. in
          if Float.abs (Membuf.peek_f re k -. want_re) > 1e-6 *. float_of_int n then ok := false;
          if Float.abs (Membuf.peek_f im k) > 1e-6 *. float_of_int n then ok := false
        done;
        !ok
  in
  { Workload.run; check }

let workload =
  {
    Workload.name = "fft";
    description = "iterative FFT with parallel bit-reversal (scattered intervals)";
    default_size = 4096;
    default_base = 64;
    make = (fun ~size ~base -> make_gen ~synced:true ~size ~base);
    racy = Some (fun ~size ~base -> make_gen ~synced:false ~size ~base);
  }
