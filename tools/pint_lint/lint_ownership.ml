(* The OWNERSHIP.md manifest: the single-owner argument of DESIGN.md §8
   turned into checkable data.

   The linter enumerates every mutable (or mutable-container) field of
   every type declared under lib/; each one must either be synchronized
   ([Atomic.t] & friends — detected from the type, no entry needed) or be
   claimed here with a named owner.  Rows are standard markdown table rows:

     | Module.type.field | owner | owner-context | justification |

   The first cell may end in [.*] to claim every field of a type
   ([Itreap.scratch.*]) or every field of a module ([Wl_heat.*]) — meant
   for single-stage-local state where per-field entries add no information.
   Entries (wildcard or not) that match no existing field are reported as
   R3 findings: a manifest claiming fields that are gone is wrong, not
   merely untidy.

   The owner-context cell (PR 9) is what the R5/R6 whole-program passes
   verify.  Forms:

     -                     row is trusted prose, not machine-checked
     writers: f1, f2       R6: every write to the field occurs inside the
                           named function set; reads are unrestricted
                           (publication of the enclosing record via the
                           spawn edge is trusted).  [wiring:] is an alias
                           for construction-time-only fields.
     private: f1, f2       R6: every write AND every multi-domain read
                           occurs inside the set; single-domain (main
                           context) reads are exempt — the post-drain
                           diagnostics idiom
     edges: f1, f2         R6 writer set as [writers:], plus R5: the field
                           declaration must carry [@pint.publishes],
                           writers must publish a declared edge, and every
                           multi-domain reader path must pass a matching
                           [@pint.acquires]

   Function sets are comma-separated qualified names; [Module.*] claims
   every function of the module.  Rows whose third cell looks like a
   context keyword ([word:]) but is not one of the above are malformed —
   the linter refuses to run rather than silently trusting the row.
   Three-cell rows from before the column existed parse as [-]. *)

exception Malformed of string

type owner_context =
  | Unchecked
  | Writers of string list
  | Private of string list
  | Edges of string list

type entry = {
  pattern : string;  (** [Module.type.field], or with a trailing [.*] *)
  owner : string;
  context : owner_context;
  note : string;
  o_line : int;
  mutable matched : bool;
}

type t = { entries : entry list }

let empty = { entries = [] }

(* A manifest row's first cell must look like a field path, which keeps the
   parser from eating the table header or prose tables elsewhere in the
   file. *)
let looks_like_pattern s =
  s <> "" && s.[0] >= 'A' && s.[0] <= 'Z' && String.contains s '.'

let parse_fn_set s =
  String.split_on_char ',' s |> List.map String.trim |> List.filter (fun f -> f <> "")

(* [word:] shape — a lowercase keyword followed by a colon. *)
let looks_like_context_cell s =
  match String.index_opt s ':' with
  | Some i when i > 0 ->
      String.for_all (fun c -> c >= 'a' && c <= 'z') (String.sub s 0 i)
  | _ -> false

let known_context_cell s =
  match Str_split.split_on_first s ~sep:":" with
  | Some (kw, _) -> List.mem kw [ "writers"; "wiring"; "private"; "edges" ]
  | None -> false

let parse_context ~lineno cell =
  if cell = "-" then Unchecked
  else
    match Str_split.split_on_first cell ~sep:":" with
    | Some (kw, rest) -> (
        let fns = parse_fn_set rest in
        match kw with
        | "writers" | "wiring" -> Writers fns
        | "private" -> Private fns
        | "edges" -> Edges fns
        | _ ->
            raise
              (Malformed
                 (Printf.sprintf "OWNERSHIP.md:%d: unknown owner-context keyword '%s:'" lineno kw)))
    | None -> Unchecked

let parse_row ~lineno line =
  let line = String.trim line in
  if String.length line < 2 || line.[0] <> '|' then None
  else
    let cells =
      String.split_on_char '|' line |> List.map String.trim
      |> List.filter (fun c -> c <> "")
    in
    match cells with
    | pattern :: owner :: rest when looks_like_pattern pattern ->
        (* tolerate a missing note cell but not a missing owner *)
        let sep = String.for_all (fun c -> c = '-' || c = ':' || c = ' ') owner in
        if sep || owner = "" then None
        else
          (* a context cell is recognized when it is "-", a known keyword,
             or keyword-shaped with a note cell following it (an explicit
             4-cell row with an unknown keyword is malformed); a bare
             3-cell row keeps its prose note even if it starts "word:" *)
          let context, note =
            match rest with
            | ctx :: note_cells
              when ctx = "-" || known_context_cell ctx
                   || (looks_like_context_cell ctx && note_cells <> []) ->
                (parse_context ~lineno ctx, String.concat " | " note_cells)
            | _ -> (Unchecked, String.concat " | " rest)
          in
          Some { pattern; owner; context; note; o_line = lineno; matched = false }
    | _ -> None

let load path =
  if not (Sys.file_exists path) then empty
  else begin
    let ic = open_in path in
    let entries = ref [] in
    let lineno = ref 0 in
    (try
       while true do
         incr lineno;
         match parse_row ~lineno:!lineno (input_line ic) with
         | Some e -> entries := e :: !entries
         | None -> ()
       done
     with
    | End_of_file -> close_in ic
    | e ->
        close_in_noerr ic;
        raise e);
    { entries = List.rev !entries }
  end

let pattern_matches pat field =
  if pat = field then true
  else
    match Str_split.split_on_first pat ~sep:".*" with
    | Some (prefix, "") -> Str_split.starts_with ~prefix:(prefix ^ ".") field
    | _ -> false

(* [covers t field] — true when a manifest entry claims [field]
   (e.g. "Itreap.t.root"); marks the entry so staleness can be checked. *)
let covers t field =
  List.fold_left
    (fun acc e ->
      if pattern_matches e.pattern field then begin
        e.matched <- true;
        true
      end
      else acc)
    false t.entries

(* First entry claiming [field], for the R5/R6 passes (does not mark). *)
let entry_for t field = List.find_opt (fun e -> pattern_matches e.pattern field) t.entries

(* Membership of a function (node name, possibly with <anonN> suffixes
   stripped by the caller) in an owner-context function set. *)
let fn_in_set fns fn =
  List.exists
    (fun pat ->
      pat = fn
      ||
      match Str_split.split_on_first pat ~sep:".*" with
      | Some (prefix, "") -> Str_split.starts_with ~prefix:(prefix ^ ".") fn || prefix = fn
      | _ -> false)
    fns

(* Entries that matched no discovered field.  Wildcards are held to the
   same standard: a module-level claim over a module with no mutable state
   left is as stale as a field-level one. *)
let stale t = List.filter (fun e -> not e.matched) t.entries
