(** The per-worker {e trace} data structure (Algorithm 1).

    A FIFO of finished strand records with single-producer (the owning core
    worker) / single-consumer (the writer treap worker) semantics,
    implemented as the paper describes — a linked list of fixed-size chunks.
    Publication is via a monotone atomic counter: the producer fills a slot
    (linking a fresh chunk first when needed) and then bumps [pushed], so a
    consumer that observes [pushed > popped] can safely read the next slot.

    Trace lifecycle: a worker starts a new trace when it begins a stolen
    continuation or passes a non-trivial sync; the old trace is {e closed}.
    The writer treap worker may only start collecting from a trace whose
    {e first} strand is ready (Collection Rule 1); [unlocked] latches that
    check so it happens once per trace. *)

type t

(** [create ~id ~owner] — [id] is a global creation index, [owner] the core
    worker that fills it. *)
val create : id:int -> owner:int -> t

val id : t -> int
val owner : t -> int

(** {2 Producer side (core worker)} *)

val push : t -> Srec.t -> unit

(** Mark that no further strands will be pushed. *)
val close : t -> unit

(** {2 Consumer side (writer treap worker)} *)

(** Next uncollected strand, if any is published. *)
val peek : t -> Srec.t option

(** Drop the strand returned by the last [peek].
    @raise Failure if nothing is available. *)
val pop : t -> unit

val is_closed : t -> bool

(** No strand left and closed. *)
val drained : t -> bool

(** Strands pushed so far (diagnostic). *)
val pushed : t -> int

val popped : t -> int

(** Collection Rule 1 latch: [unlocked t] returns true once the trace's
    first strand has been observed with [pred = 0]; idempotent. *)
val unlocked : t -> bool
