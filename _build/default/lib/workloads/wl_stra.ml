(* stra / straz — Strassen's matrix multiplication, in row-major layout
   (stra) and Morton-Z layout (straz).

   The seven sub-products run in parallel, each into heap-allocated
   temporaries (exercising PINT's delayed free), then the four output
   quadrants combine in parallel.  The only difference between the two
   benchmarks is the memory layout of the matrices: in Z order an aligned
   quadrant is one contiguous interval, while in row-major it fragments
   into per-row intervals — which is exactly the access-history contrast
   the paper evaluates. *)

module R = Matview.Row
module Z = Matview.Z

type mat = RowM of R.t * int | ZM of Z.t

let size = function RowM (_, n) -> n | ZM z -> z.Z.n
let quad m q = match m with RowM (v, n) -> RowM (R.quad v n q, n / 2) | ZM z -> ZM (Z.quad z q)
let peek m i j = match m with RowM (v, _) -> R.peek v i j | ZM z -> Z.peek z i j
let poke m i j x = match m with RowM (v, _) -> R.poke v i j x | ZM z -> Z.poke z i j x
let announce_read = function RowM (v, n) -> R.announce_read v n | ZM z -> Z.announce_read z
let announce_write = function RowM (v, n) -> R.announce_write v n | ZM z -> Z.announce_write z

(* temporaries live in their own buffers; give them the same layout family
   as the main matrices so the interval shapes stay representative *)
type layout = Lrow | Lz

let alloc_temp layout n ~base =
  let buf = Fj.alloc_f (n * n) in
  let m = match layout with Lrow -> RowM (R.whole buf n, n) | Lz -> ZM (Z.whole buf n ~base) in
  (buf, m)

(* dst = a ⊕ b elementwise *)
let add_kernel op dst a b =
  let n = size dst in
  announce_read a;
  announce_read b;
  announce_write dst;
  Access.emit_compute ~amount:(n * n);
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      poke dst i j (op (peek a i j) (peek b i j))
    done
  done

(* dst = a (copy) *)
let copy_kernel dst a =
  let n = size dst in
  announce_read a;
  announce_write dst;
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      poke dst i j (peek a i j)
    done
  done

let mult_leaf c a b =
  let n = size c in
  announce_read a;
  announce_read b;
  announce_write c;
  Access.emit_compute ~amount:(2 * n * n * n);
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      let acc = ref 0. in
      for k = 0 to n - 1 do
        acc := !acc +. (peek a i k *. peek b k j)
      done;
      poke c i j !acc
    done
  done

(* c = m1 ⊕1 m2 ⊕2 m3 ⊕3 m4 (quadrant combines) *)
let combine4 c f m1 m2 m3 m4 =
  let n = size c in
  announce_read m1;
  announce_read m2;
  announce_read m3;
  announce_read m4;
  announce_write c;
  Access.emit_compute ~amount:(3 * n * n);
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      poke c i j (f (peek m1 i j) (peek m2 i j) (peek m3 i j) (peek m4 i j))
    done
  done

let combine2 c f m1 m2 =
  let n = size c in
  announce_read m1;
  announce_read m2;
  announce_write c;
  Access.emit_compute ~amount:(n * n);
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      poke c i j (f (peek m1 i j) (peek m2 i j))
    done
  done

let rec strassen layout ~base c a b =
  let n = size c in
  if n <= base then mult_leaf c a b
  else begin
    let h = n / 2 in
    let a11 = quad a 0 and a12 = quad a 1 and a21 = quad a 2 and a22 = quad a 3 in
    let b11 = quad b 0 and b12 = quad b 1 and b21 = quad b 2 and b22 = quad b 3 in
    (* one temp pair + result per product *)
    let temps = Array.init 7 (fun _ ->
        let ta = alloc_temp layout h ~base in
        let tb = alloc_temp layout h ~base in
        let m = alloc_temp layout h ~base in
        (ta, tb, m))
    in
    let product i fa fb =
      let (_, ta), (_, tb), (_, m) = temps.(i) in
      fa ta;
      fb tb;
      strassen layout ~base m ta tb
    in
    let m i = let _, _, (_, mm) = temps.(i) in mm in
    Fj.scope (fun () ->
        Fj.spawn (fun () -> product 0 (fun t -> add_kernel ( +. ) t a11 a22) (fun t -> add_kernel ( +. ) t b11 b22));
        Fj.spawn (fun () -> product 1 (fun t -> add_kernel ( +. ) t a21 a22) (fun t -> copy_kernel t b11));
        Fj.spawn (fun () -> product 2 (fun t -> copy_kernel t a11) (fun t -> add_kernel ( -. ) t b12 b22));
        Fj.spawn (fun () -> product 3 (fun t -> copy_kernel t a22) (fun t -> add_kernel ( -. ) t b21 b11));
        Fj.spawn (fun () -> product 4 (fun t -> add_kernel ( +. ) t a11 a12) (fun t -> copy_kernel t b22));
        Fj.spawn (fun () -> product 5 (fun t -> add_kernel ( -. ) t a21 a11) (fun t -> add_kernel ( +. ) t b11 b12));
        product 6 (fun t -> add_kernel ( -. ) t a12 a22) (fun t -> add_kernel ( +. ) t b21 b22);
        Fj.sync ();
        let c11 = quad c 0 and c12 = quad c 1 and c21 = quad c 2 and c22 = quad c 3 in
        Fj.spawn (fun () ->
            combine4 c11 (fun m1 m4 m5 m7 -> m1 +. m4 -. m5 +. m7) (m 0) (m 3) (m 4) (m 6));
        Fj.spawn (fun () -> combine2 c12 ( +. ) (m 2) (m 4));
        Fj.spawn (fun () -> combine2 c21 ( +. ) (m 1) (m 3));
        combine4 c22 (fun m1 m2 m3 m6 -> m1 -. m2 +. m3 +. m6) (m 0) (m 1) (m 2) (m 5);
        Fj.sync ());
    Array.iter
      (fun ((ba, _), (bb, _), (bm, _)) ->
        Fj.free_f ba;
        Fj.free_f bb;
        Fj.free_f bm)
      temps
  end

let fill rng m =
  let n = size m in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      poke m i j (Rng.float rng -. 0.5)
    done
  done

let make_gen layout ~size:n ~base =
  let state = ref None in
  let run () =
    let mk () =
      let buf = Fj.alloc_f (n * n) in
      match layout with Lrow -> RowM (R.whole buf n, n) | Lz -> ZM (Z.whole buf n ~base)
    in
    let a = mk () and b = mk () and c = mk () in
    let rng = Rng.create 8086 in
    fill rng a;
    fill rng b;
    state := Some (a, b, c);
    strassen layout ~base c a b
  in
  let check () =
    match !state with
    | None -> false
    | Some (a, b, c) ->
        let rng = Rng.create 31337 in
        let ok = ref true in
        for _ = 1 to 48 do
          let i = Rng.int rng n and j = Rng.int rng n in
          let acc = ref 0. in
          for k = 0 to n - 1 do
            acc := !acc +. (peek a i k *. peek b k j)
          done;
          if Float.abs (!acc -. peek c i j) > 1e-6 *. float_of_int n then ok := false
        done;
        !ok
  in
  { Workload.run; check }

let workload_row =
  {
      Workload.name = "stra";
      description = "Strassen matrix multiplication, row-major layout";
      default_size = 64;
      default_base = 16;
      make = make_gen Lrow;
      racy = None;
    }

let workload_z =
  {
      Workload.name = "straz";
      description = "Strassen matrix multiplication, Morton-Z layout";
      default_size = 64;
      default_base = 16;
      make = make_gen Lz;
      racy = None;
    }
