type frame = { base : int; words : int; mutable live : bool }

type stack = { region_base : int; region_words : int; frames : frame Vec.t; mutable sp : int }

(* Free and allocated heap blocks; [free] kept sorted by base for first-fit
   with coalescing, [allocated] indexed by base for liveness checks. *)
type heap = {
  mutable free : (int * int) list; (* (base, len), sorted by base, coalesced *)
  allocated : (int, int) Hashtbl.t; (* base -> len *)
  pending : (int, int) Hashtbl.t; (* base -> extra reserved lifetimes, see [reserve] *)
  mutable brk : int;
  mutable live_words : int;
}

type t = {
  workers : int;
  stack_words : int;
  stacks : stack array;
  heap : heap;
  heap_base : int;
  lock : Mutex.t;
}

let create ?(max_workers = 64) ?(stack_words = 1 lsl 20) ?(heap_words = 0) () =
  ignore heap_words;
  let stacks =
    Array.init max_workers (fun w ->
        {
          region_base = w * stack_words;
          region_words = stack_words;
          frames = Vec.create { base = 0; words = 0; live = false };
          sp = 0;
        })
  in
  let heap_base = max_workers * stack_words in
  {
    workers = max_workers;
    stack_words;
    stacks;
    heap =
      {
        free = [];
        allocated = Hashtbl.create 256;
        pending = Hashtbl.create 8;
        brk = heap_base;
        live_words = 0;
      };
    heap_base;
    lock = Mutex.create ();
  }

let max_workers t = t.workers

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* ------------------------------------------------------------------ heap *)

let heap_alloc t words =
  if words <= 0 then invalid_arg "Aspace.heap_alloc: words must be positive";
  with_lock t (fun () ->
      let h = t.heap in
      (* first fit *)
      let rec take acc = function
        | [] ->
            let base = h.brk in
            h.brk <- h.brk + words;
            (base, List.rev acc)
        | (b, l) :: rest when l >= words ->
            let remainder = if l = words then [] else [ (b + words, l - words) ] in
            (b, List.rev_append acc (remainder @ rest))
        | blk :: rest -> take (blk :: acc) rest
      in
      let base, free = take [] h.free in
      h.free <- free;
      Hashtbl.replace h.allocated base words;
      h.live_words <- h.live_words + words;
      base)

let heap_free t ~base ~len =
  with_lock t (fun () ->
      let h = t.heap in
      (match Hashtbl.find_opt h.allocated base with
      | Some l when l <> len ->
          failwith (Printf.sprintf "Aspace.heap_free: block %d has length %d, not %d" base l len)
      | Some _ -> ()
      | None -> failwith (Printf.sprintf "Aspace.heap_free: no live block at %d" base));
      match Hashtbl.find_opt h.pending base with
      | Some n ->
          (* a nested reserved lifetime: this free closes the oldest one; the
             block stays live for the lifetime(s) reserved on top of it *)
          if n = 1 then Hashtbl.remove h.pending base else Hashtbl.replace h.pending base (n - 1)
      | None ->
      Hashtbl.remove h.allocated base;
      h.live_words <- h.live_words - len;
      (* insert sorted, then coalesce adjacent blocks *)
      let rec insert = function
        | [] -> [ (base, len) ]
        | (b, l) :: rest ->
            if base + len <= b then (base, len) :: (b, l) :: rest
            else if b + l <= base then (b, l) :: insert rest
            else failwith "Aspace.heap_free: double free / overlap"
      in
      let rec coalesce = function
        | (b1, l1) :: (b2, l2) :: rest when b1 + l1 = b2 -> coalesce ((b1, l1 + l2) :: rest)
        | blk :: rest -> blk :: coalesce rest
        | [] -> []
      in
      h.free <- coalesce (insert h.free))

let reserve t ~base ~len =
  if len <= 0 then invalid_arg "Aspace.reserve: len must be positive";
  with_lock t (fun () ->
      let h = t.heap in
      match Hashtbl.find_opt h.allocated base with
      | Some l when l = len ->
          (* Already live with the same extent: a replayed trace can record
             two lifetimes of one base back-to-back (the capture run recycled
             eagerly) while the consumer frees lazily (PINT's delayed
             recycling processes both frees later, §III-F).  Count the extra
             lifetime so the matching number of [heap_free]s succeeds. *)
          Hashtbl.replace h.pending base
            (1 + Option.value ~default:0 (Hashtbl.find_opt h.pending base))
      | Some l ->
          invalid_arg
            (Printf.sprintf "Aspace.reserve: block at %d is live with length %d, not %d" base l len)
      | None ->
          (* carve [base, base+len) out of the free list; anything in the
             range that is neither free nor allocated is virgin territory *)
          let rec carve = function
            | [] -> []
            | (b, l) :: rest ->
                let lo = max b base and hi = min (b + l) (base + len) in
                if lo >= hi then (b, l) :: carve rest
                else
                  (* keep the sorted order: left remainder before right *)
                  let keep =
                    (if b < base then [ (b, base - b) ] else [])
                    @ if b + l > base + len then [ (base + len, b + l - (base + len)) ] else []
                  in
                  keep @ carve rest
          in
          h.free <- carve h.free;
          if base + len > h.brk then h.brk <- base + len;
          Hashtbl.replace h.allocated base len;
          h.live_words <- h.live_words + len)

let heap_live_words t = with_lock t (fun () -> t.heap.live_words)

let heap_block_live t ~base ~len =
  with_lock t (fun () -> Hashtbl.find_opt t.heap.allocated base = Some len)

(* ---------------------------------------------------------------- stacks *)

let stack t worker =
  if worker < 0 || worker >= t.workers then invalid_arg "Aspace: bad worker id";
  t.stacks.(worker)

let frame_push t ~worker ~words =
  if words <= 0 then invalid_arg "Aspace.frame_push: words must be positive";
  let s = stack t worker in
  if s.sp + words > s.region_words then
    failwith (Printf.sprintf "Aspace: stack overflow on worker %d" worker);
  let base = s.region_base + s.sp in
  Vec.push s.frames { base; words; live = true };
  s.sp <- s.sp + words;
  base

let frame_pop t ~worker ~base =
  let s = stack t worker in
  let found = ref false in
  Vec.iter (fun f -> if f.base = base && f.live then (f.live <- false; found := true)) s.frames;
  if not !found then
    failwith (Printf.sprintf "Aspace.frame_pop: no live frame at %d on worker %d" base worker);
  (* lazy reclaim of the dead suffix *)
  let rec reclaim () =
    if not (Vec.is_empty s.frames) && not (Vec.peek s.frames).live then begin
      let f = Vec.pop s.frames in
      s.sp <- s.sp - f.words;
      reclaim ()
    end
  in
  reclaim ()

let stack_used t ~worker = (stack t worker).sp
let stack_base t ~worker = (stack t worker).region_base
let is_stack_addr t addr = addr >= 0 && addr < t.heap_base
