lib/harness/cost_model.ml: Events Srec
