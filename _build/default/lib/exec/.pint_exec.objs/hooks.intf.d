lib/exec/hooks.mli: Access Aspace Events Sp_order Srec
