type ctx = {
  aspace : Aspace.t;
  sp : Sp_order.t;
  n_workers : int;
  current : wid:int -> Srec.t;
}

type t = {
  sink : wid:int -> Access.sink;
  on_start : wid:int -> Srec.t -> Events.start_kind -> unit;
  on_finish : wid:int -> Srec.t -> Events.finish_kind -> unit;
  on_done : unit -> unit;
}

type driver = ctx -> t

let null_hooks =
  {
    sink = (fun ~wid:_ -> Access.noop);
    on_start = (fun ~wid:_ _ _ -> ());
    on_finish = (fun ~wid:_ _ _ -> ());
    on_done = (fun () -> ());
  }

let with_counting current (s : Access.sink) : Access.sink =
  {
    on_read =
      (fun ~addr ~len ->
        let c = current () in
        c.Srec.raw_reads <- c.Srec.raw_reads + 1;
        c.Srec.work <- c.Srec.work + len;
        s.on_read ~addr ~len);
    on_write =
      (fun ~addr ~len ->
        let c = current () in
        c.Srec.raw_writes <- c.Srec.raw_writes + 1;
        c.Srec.work <- c.Srec.work + len;
        s.on_write ~addr ~len);
    on_free = s.on_free;
    on_compute =
      (fun ~amount ->
        let c = current () in
        c.Srec.compute <- c.Srec.compute + amount);
  }
