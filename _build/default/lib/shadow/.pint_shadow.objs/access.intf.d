lib/shadow/access.mli:
