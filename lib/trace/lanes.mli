(** Address-range shard router: one {!Ahq} lane per shard.

    Shard ownership is by {!shard_block}-word block — block [b] belongs to
    shard [b mod shards] — so any interval decomposes into block-aligned
    subranges, each owned by exactly one shard.  The collector splits every
    strand's interval batch along those boundaries at collect time and
    commits the pieces to all lanes atomically (all-or-nothing), which
    keeps each lane a faithful DAG-ordered stream of the whole execution
    restricted to its address range.  [shards = 1] is the paper's
    configuration: a single lane, nothing ever split. *)

(** Block granularity of shard ownership, in words.  Allocations are
    block-aligned in practice, so intervals rarely straddle an ownership
    boundary and splits stay rare. *)
val shard_block : int

(** [owner ?block ~shards addr] — the shard owning [addr]
    ([addr / block mod shards]). *)
val owner : ?block:int -> shards:int -> int -> int

(** [iter_subranges ?block ~shards ~shard iv f] — the block-aligned
    subranges of [iv] owned by [shard], in address order; across all
    shards the subranges partition [iv] exactly.  [block] (default
    {!shard_block}) is exposed for property tests over other alignments. *)
val iter_subranges :
  ?block:int -> shards:int -> shard:int -> Interval.t -> (Interval.t -> unit) -> unit

type 'a t

(** [create ?capacity ~shards ~readers_of_lane ()] — [shards] lanes, lane
    [k] with [readers_of_lane k] reader cursors. *)
val create : ?capacity:int -> shards:int -> readers_of_lane:(int -> int) -> unit -> 'a t

val shards : 'a t -> int

(** The underlying ring of lane [k] (consumers peek/advance it directly). *)
val lane : 'a t -> int -> 'a Ahq.t

(** [enqueue_each t f] — commit one record to every lane, all-or-nothing:
    probes every lane for room first and only then evaluates [f k] and
    enqueues its result on lane [k].  False (and nothing enqueued, with the
    roomless lanes' reject counters bumped) if any lane stays full for the
    whole backpressure window.  Producer side only: soundness of
    probe-then-enqueue rests on the single-producer discipline of the
    lanes; concurrent consumers only ever create room, never take it. *)
val enqueue_each : 'a t -> (int -> 'a) -> bool

(** [set_backpressure t ~rounds] — let {!enqueue_each} ride out a full lane
    for up to [rounds] {!Backoff} rounds (re-probing after each) before
    rejecting the commit.  The default 0 rejects immediately, which is the
    only sound setting under a single-threaded driver: consumers only run
    when the producer yields, so waiting in-line can never create room.
    Enable only when lane consumers run on their own domains. *)
val set_backpressure : 'a t -> rounds:int -> unit

(** Producer backoff rounds taken inside {!enqueue_each} waiting for a
    saturated lane to drain. *)
val backpressure_waits : 'a t -> int

(** {2 Diagnostics} *)

(** How often lane [k] was out of room during an all-or-nothing commit. *)
val rejects : 'a t -> int -> int

val total_rejects : 'a t -> int

(** Every lane fully consumed by all its readers. *)
val drained : 'a t -> bool

val total_enqueued : 'a t -> int
val total_min_rescans : 'a t -> int
val max_peak_occupancy : 'a t -> int
