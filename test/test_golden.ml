(* Golden-trace corpus: committed captures under test/golden/ are replayed
   through all three detectors, which must agree pairwise on the
   deduplicated race set (Theorem 5) — and, since each trace's metadata
   records the workload configuration it came from, the replayed set is also
   checked against a fresh live sequential run of that same configuration.
   A divergence here means a detector changed behaviour relative to the
   committed artifacts. *)

let check_bool = Alcotest.(check bool)

let detectors = [ "stint"; "cracer"; "pint" ]
let make_det name = Option.get (Systems.make_detector name)

let signature races =
  List.sort compare
    (List.map (fun (r : Report.race) -> (r.Report.kind, r.Report.prior, r.Report.current)) races)

let golden_files () =
  let dir = "golden" in
  if not (Sys.file_exists dir && Sys.is_directory dir) then []
  else
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".trace")
    |> List.sort compare
    |> List.map (Filename.concat dir)

let meta_exn t k =
  match Tracefile.meta_find t k with
  | Some v -> v
  | None -> Alcotest.failf "golden trace lacks %S metadata" k

let check_one path () =
  let t = Tracefile.load path in
  (* 1. all detectors agree on the replayed race set *)
  let sigs =
    List.map
      (fun det ->
        let d, _ = make_det det in
        (det, signature (Replay.run t d).Replay.races))
      detectors
  in
  (match sigs with
  | (ref_det, ref_sig) :: rest ->
      check_bool (path ^ ": corpus trace is racy") true (ref_sig <> []);
      List.iter
        (fun (det, s) ->
          if s <> ref_sig then
            Alcotest.failf "%s: %s and %s disagree (%d vs %d races)" path det ref_det
              (List.length s) (List.length ref_sig))
        rest
  | [] -> Alcotest.fail "no detectors");
  (* 2. the replayed set matches a live run of the recorded configuration *)
  let w = Registry.find (meta_exn t "workload") in
  let size = int_of_string (meta_exn t "size") and base = int_of_string (meta_exn t "base") in
  check_bool (path ^ ": golden traces are racy captures") true
    (meta_exn t "racy" = "true");
  let inst = (Option.get w.Workload.racy) ~size ~base in
  let d, _ = make_det "pint" in
  let _ = Seq_exec.run ~driver:d.Detector.driver inst.Workload.run in
  let live = signature (Detector.races d) in
  check_bool (path ^ ": replay = live rerun") true (snd (List.hd sigs) = live)

let () =
  let files = golden_files () in
  if files = [] then prerr_endline "test_golden: no golden traces found, nothing to check";
  Alcotest.run "pint_golden"
    [
      ( "corpus",
        List.map (fun path -> Alcotest.test_case path `Quick (check_one path)) files );
    ]
