lib/harness/cost_model.mli: Events Srec
