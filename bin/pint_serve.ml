(* pint_serve — the streaming race-detection service.

   Subcommands:
     daemon    listen on a Unix or TCP socket and detect races over N
               concurrent PINTRACE sessions (one detector per session,
               pipeline stages on a shared micropool)
     client    stream one trace file to a daemon and print the verdicts

   Examples:
     pint_serve daemon --socket /tmp/pint.sock --max-sessions 4 --domains 2 &
     pint_serve client --socket /tmp/pint.sock heat.trace
     pint_serve client --socket /tmp/pint.sock heat.trace --verify
     pint_serve client --socket /tmp/pint.sock heat.trace --predict 4 --verify

   [client --predict W] opts the session into predictive detection
   (protocol v2): the daemon builds the strand DAG as it replays and the
   summary carries the window-W predicted races (see `pint_replay
   predict`).  The daemon caps W with --max-window and rejects larger
   requests.

   [client --verify] replays the same trace offline through a fresh
   detector and exits 1 unless the served race set is identical at the
   Theorem-5 (kind, prior, current) granularity — the same comparison as
   `pint_replay diff`.  With --predict it also recomputes the predictions
   offline and fails on any divergence there.  The daemon exits 0 on
   SIGTERM/SIGINT after a graceful shutdown (sessions aborted, frames
   flushed, pool joined). *)

open Cmdliner

let addr_of ~socket ~port ~host =
  match (socket, port) with
  | Some path, None -> Unix.ADDR_UNIX path
  | None, Some p -> Unix.ADDR_INET (Unix.inet_addr_of_string host, p)
  | Some _, Some _ ->
      prerr_endline "pint_serve: --socket and --port are mutually exclusive";
      exit 2
  | None, None ->
      prerr_endline "pint_serve: one of --socket PATH or --port N is required";
      exit 2

let socket_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH" ~doc:"Listen on (or connect to) a Unix-domain socket.")

let port_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "port" ] ~docv:"PORT" ~doc:"Listen on (or connect to) a TCP port.")

let host_arg =
  Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~docv:"ADDR" ~doc:"TCP address.")

(* -- daemon -------------------------------------------------------------- *)

let daemon_cmd =
  let run socket port host detector max_sessions domains shards bp_rounds backlog max_window =
    let addr = addr_of ~socket ~port ~host in
    let config =
      {
        Serve_server.default_config with
        Serve_server.detector;
        max_sessions;
        pool_workers = domains;
        shards;
        bp_rounds;
        backlog_high = backlog;
        max_window;
      }
    in
    let server =
      try Serve_server.create ~config addr
      with Unix.Unix_error (e, _, _) ->
        Printf.eprintf "pint_serve: cannot listen: %s\n" (Unix.error_message e);
        exit 2
    in
    let quit _ = Serve_server.stop server in
    ignore (Sys.signal Sys.sigterm (Sys.Signal_handle quit));
    ignore (Sys.signal Sys.sigint (Sys.Signal_handle quit));
    ignore (Sys.signal Sys.sigpipe Sys.Signal_ignore);
    (match Serve_server.sockaddr server with
    | Unix.ADDR_UNIX path -> Printf.printf "pint_serve: listening on %s\n%!" path
    | Unix.ADDR_INET (a, p) ->
        Printf.printf "pint_serve: listening on %s:%d\n%!" (Unix.string_of_inet_addr a) p);
    Serve_server.serve server;
    List.iter (fun (k, v) -> Printf.printf "%-20s %.0f\n" k v) (Serve_server.stats server)
  in
  Cmd.v
    (Cmd.info "daemon" ~doc:"Serve concurrent streaming race-detection sessions")
    Term.(
      const run $ socket_arg $ port_arg $ host_arg
      $ Arg.(
          value
          & opt string Serve_server.default_config.Serve_server.detector
          & info [ "d"; "detector" ] ~doc:"Detector per session (stint|cracer|pint).")
      $ Arg.(
          value
          & opt int Serve_server.default_config.Serve_server.max_sessions
          & info [ "max-sessions" ] ~doc:"Admission cap: concurrent sessions before reject.")
      $ Arg.(
          value
          & opt int Serve_server.default_config.Serve_server.pool_workers
          & info [ "domains" ] ~doc:"Shared micropool worker domains.")
      $ Arg.(
          value
          & opt int Serve_server.default_config.Serve_server.shards
          & info [ "shards" ] ~doc:"Default address-range shards per session (pint).")
      $ Arg.(
          value
          & opt int Serve_server.default_config.Serve_server.bp_rounds
          & info [ "bp-rounds" ] ~doc:"Collector backpressure window (see pint_replay).")
      $ Arg.(
          value
          & opt int Serve_server.default_config.Serve_server.backlog_high
          & info [ "backlog" ] ~doc:"Per-session strand backlog that pauses socket reads.")
      $ Arg.(
          value
          & opt int Serve_server.default_config.Serve_server.max_window
          & info [ "max-window" ]
              ~doc:"Largest prediction window a client may request (0 disables predict)."))

(* -- client -------------------------------------------------------------- *)

let kind_name = Report.kind_to_string

let client_cmd =
  let run socket port host path chunk shards predict verify quiet =
    if predict < 0 then begin
      prerr_endline "pint_serve: --predict must be >= 0";
      exit 2
    end;
    let addr = addr_of ~socket ~port ~host in
    let bytes =
      try
        let ic = open_in_bin path in
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      with Sys_error msg ->
        Printf.eprintf "cannot read trace: %s\n" msg;
        exit 2
    in
    match Serve_client.run ~chunk ~shards ~predict ~addr bytes with
    | exception Unix.Unix_error (e, _, _) ->
        Printf.eprintf "pint_serve: connection failed: %s\n" (Unix.error_message e);
        exit 2
    | Error msg ->
        Printf.eprintf "pint_serve: session rejected: %s\n" msg;
        exit 3
    | Ok r ->
        if not quiet then begin
          Printf.printf "%s: session %d, %d strand(s), %d race(s)" path r.Serve_client.session
            r.Serve_client.n_strands r.Serve_client.n_races;
          if predict > 0 then
            Printf.printf ", %d predicted (w=%d)" (List.length r.Serve_client.predicted) predict;
          print_newline ();
          List.iter
            (fun (k, p, c, (iv : Interval.t)) ->
              Printf.printf "  %s %d -> %d @ [%d,%d]\n" (kind_name k) p c iv.Interval.lo
                iv.Interval.hi)
            r.Serve_client.races;
          List.iter
            (fun (k, p, c, (iv : Interval.t)) ->
              Printf.printf "  predicted %s %d -> %d @ [%d,%d]\n" (kind_name k) p c iv.Interval.lo
                iv.Interval.hi)
            r.Serve_client.predicted
        end;
        if verify then begin
          let t =
            try Tracefile.of_bytes bytes
            with Tracefile.Error msg ->
              Printf.eprintf "%s: corrupt trace: %s\n" path msg;
              exit 2
          in
          let det, _ = Option.get (Systems.make_detector "pint") in
          let builder = if predict > 0 then Some (Predict.Builder.create ()) else None in
          let on_strand = Option.map Predict.Builder.observer builder in
          let outcome = Replay.run ?on_strand t det in
          let offline =
            List.sort_uniq compare
              (List.map
                 (fun (x : Report.race) -> (x.Report.kind, x.Report.prior, x.Report.current))
                 outcome.Replay.races)
          in
          let served = Serve_client.signature r.Serve_client.races in
          if served = offline then
            Printf.printf "%s: served race set matches offline replay (%d race(s))\n" path
              (List.length offline)
          else begin
            Printf.printf "%s: served and offline race sets DIVERGE (%d vs %d)\n" path
              (List.length served) (List.length offline);
            exit 1
          end;
          match builder with
          | None -> ()
          | Some b ->
              let pr =
                Predict.predict ~window:predict ~observed:outcome.Replay.races
                  (Predict.Builder.dag b)
              in
              let offline_p =
                Serve_client.signature
                  (List.map
                     (fun (f : Predict.finding) -> (f.Predict.kind, f.Predict.prior, f.Predict.current, f.Predict.where))
                     pr.Predict.predicted)
              in
              let served_p = Serve_client.signature r.Serve_client.predicted in
              if served_p = offline_p then
                Printf.printf "%s: served predictions match offline predict (%d, w=%d)\n" path
                  (List.length offline_p) predict
              else begin
                Printf.printf "%s: served and offline predictions DIVERGE (%d vs %d, w=%d)\n"
                  path (List.length served_p) (List.length offline_p) predict;
                exit 1
              end
        end
  in
  Cmd.v
    (Cmd.info "client" ~doc:"Stream a trace file to a daemon and print its races")
    Term.(
      const run $ socket_arg $ port_arg $ host_arg
      $ Arg.(required & pos 0 (some string) None & info [] ~docv:"TRACE" ~doc:"Trace file.")
      $ Arg.(
          value
          & opt int Serve_client.default_chunk
          & info [ "chunk" ] ~doc:"Transport chunk size in bytes.")
      $ Arg.(value & opt int 0 & info [ "shards" ] ~doc:"Request a shard count (0 = server default).")
      $ Arg.(
          value & opt int 0
          & info [ "predict" ] ~docv:"W"
              ~doc:"Opt into predictive detection with window $(docv) (0 = off).")
      $ Arg.(
          value & flag
          & info [ "verify" ] ~doc:"Replay offline too and fail on any Theorem-5 divergence.")
      $ Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"Suppress per-race output."))

let () =
  let info = Cmd.info "pint_serve" ~doc:"Streaming multi-tenant race-detection service" in
  exit (Cmd.eval (Cmd.group info [ daemon_cmd; client_cmd ]))
