(** Growable array (vector).

    A thin, allocation-conscious resizable array used for per-strand access
    logs, trace chunks and result accumulation.  Not thread-safe: every
    instance is owned by a single worker. *)

type 'a t

(** [create ?capacity dummy] makes an empty vector.  [dummy] fills unused
    slots (required because OCaml arrays cannot be partially initialized). *)
val create : ?capacity:int -> 'a -> 'a t

(** Number of elements currently stored. *)
val length : 'a t -> int

val is_empty : 'a t -> bool

(** [get v i] is the [i]-th element.
    @raise Invalid_argument if [i] is out of bounds. *)
val get : 'a t -> int -> 'a

(** [set v i x] replaces the [i]-th element.
    @raise Invalid_argument if [i] is out of bounds. *)
val set : 'a t -> int -> 'a -> unit

(** [push v x] appends [x], growing the backing store if needed. *)
val push : 'a t -> 'a -> unit

(** [pop v] removes and returns the last element.
    @raise Invalid_argument if empty. *)
val pop : 'a t -> 'a

(** Last element without removing it.
    @raise Invalid_argument if empty. *)
val peek : 'a t -> 'a

(** [clear v] drops all elements (capacity is retained, slots reset to the
    dummy so stale pointers are not kept alive). *)
val clear : 'a t -> unit

val iter : ('a -> unit) -> 'a t -> unit
val iteri : (int -> 'a -> unit) -> 'a t -> unit
val fold_left : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc

(** Copy out the live elements. *)
val to_array : 'a t -> 'a array

val of_array : dummy:'a -> 'a array -> 'a t

(** [sort cmp v] sorts the live elements in place. *)
val sort : ('a -> 'a -> int) -> 'a t -> unit

(** [truncate v n] keeps the first [n] elements.
    @raise Invalid_argument if [n] is negative or exceeds the length. *)
val truncate : 'a t -> int -> unit
