(* Orchestration: load .cmt files, run the pass per module, apply the
   ownership manifest (R3) and the baseline, and assemble the report. *)

type report = {
  findings : Lint_types.finding list;  (** non-suppressed, sorted *)
  suppressed : int;
  modules : string list;  (** modules actually analyzed *)
  fields_checked : int;  (** mutable fields inventoried for R3 *)
  stale_baseline : Lint_baseline.entry list;
}

(* A .cmt holds an implementation, an interface, or a packed module; only
   implementations carry the typed tree the rules inspect. *)
let load_structure path =
  let infos = Cmt_format.read_cmt path in
  match infos.Cmt_format.cmt_annots with
  | Cmt_format.Implementation str -> Some (infos.Cmt_format.cmt_modname, str)
  | _ -> None

let rec collect_cmts path acc =
  if Sys.is_directory path then
    Array.fold_left
      (fun acc entry -> collect_cmts (Filename.concat path entry) acc)
      acc (Sys.readdir path)
  else if Filename.check_suffix path ".cmt" then path :: acc
  else acc

let run ~baseline ~ownership paths =
  let cmts = List.sort compare (List.fold_right collect_cmts paths []) in
  let modules = ref [] in
  let all_findings = ref [] in
  let all_fields = ref [] in
  List.iter
    (fun cmt ->
      match load_structure cmt with
      | None -> ()
      | Some (modname, str) ->
          modules := modname :: !modules;
          let findings, fields = Lint_pass.analyze ~modname str in
          all_findings := findings :: !all_findings;
          all_fields := fields :: !all_fields)
    cmts;
  let fields = List.concat !all_fields in
  (* R3a: every mutable field must be claimed by the manifest *)
  let r3 =
    List.filter_map
      (fun (path, loc, flavor) ->
        if Lint_ownership.covers ownership path then None
        else
          Some
            (Lint_types.make_finding ~rule:Lint_types.R3_ownership ~loc ~context:path
               ~kind:"undeclared-mutable-field"
               (Printf.sprintf
                  "%s field %s is neither Atomic.t nor declared in the ownership manifest" flavor
                  path)))
      fields
  in
  (* R3b: manifest entries must claim fields that still exist *)
  let r3_stale =
    List.map
      (fun (e : Lint_ownership.entry) ->
        let loc =
          Location.in_file (Printf.sprintf "OWNERSHIP.md (line %d)" e.Lint_ownership.o_line)
        in
        Lint_types.make_finding ~rule:Lint_types.R3_ownership ~loc ~context:e.Lint_ownership.pattern
          ~kind:"stale-manifest-entry"
          (Printf.sprintf "manifest claims %s but no such mutable field exists"
             e.Lint_ownership.pattern))
      (Lint_ownership.stale ownership)
  in
  let findings = List.concat (List.rev !all_findings) @ r3 @ r3_stale in
  let kept, suppressed =
    List.partition (fun f -> not (Lint_baseline.suppresses baseline f)) findings
  in
  {
    findings = List.sort Lint_types.compare_findings kept;
    suppressed = List.length suppressed;
    modules = List.sort compare !modules;
    fields_checked = List.length fields;
    stale_baseline = Lint_baseline.stale baseline;
  }

(* The uncovered mutable-field inventory in manifest-row form — used by
   [pint_lint --dump-fields] to draft OWNERSHIP.md entries. *)
let dump_fields ~ownership paths =
  let cmts = List.sort compare (List.fold_right collect_cmts paths []) in
  List.concat_map
    (fun cmt ->
      match load_structure cmt with
      | None -> []
      | Some (modname, str) ->
          let _, fields = Lint_pass.analyze ~modname str in
          List.filter_map
            (fun (path, _, flavor) ->
              if Lint_ownership.covers ownership path then None
              else Some (Printf.sprintf "| %s | FIXME-owner | %s field |" path flavor))
            fields)
    cmts

let json_report r =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\n  \"findings\": [\n";
  List.iteri
    (fun i f ->
      if i > 0 then Buffer.add_string b ",\n";
      Buffer.add_string b ("    " ^ Lint_types.to_json f))
    r.findings;
  Buffer.add_string b "\n  ],\n";
  Buffer.add_string b (Printf.sprintf "  \"suppressed\": %d,\n" r.suppressed);
  Buffer.add_string b (Printf.sprintf "  \"fields_checked\": %d,\n" r.fields_checked);
  Buffer.add_string b
    (Printf.sprintf "  \"modules\": [%s],\n"
       (String.concat ", " (List.map (fun m -> "\"" ^ Lint_types.json_escape m ^ "\"") r.modules)));
  Buffer.add_string b
    (Printf.sprintf "  \"stale_baseline\": [%s]\n"
       (String.concat ", "
          (List.map
             (fun (e : Lint_baseline.entry) ->
               Printf.sprintf "\"line %d: %s %s %s %s\"" e.Lint_baseline.e_line
                 e.Lint_baseline.e_rule e.Lint_baseline.e_file e.Lint_baseline.e_context
                 e.Lint_baseline.e_kind)
             r.stale_baseline)));
  Buffer.add_string b "}\n";
  Buffer.contents b
