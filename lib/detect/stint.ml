let make ?(seed = 2022) ?(obs = Obs.disabled) () =
  let report = Report.create () in
  let ring = Obs.track obs "stint" in
  let diags = ref [] in
  (* installed by the driver once the treaps exist *)
  let validators = ref (fun () -> ()) in
  let driver (ctx : Hooks.ctx) =
    if ctx.n_workers > 1 then failwith "Stint: serial detector run on a parallel executor";
    let sp = ctx.sp in
    let owner_eq = ( == ) in
    let writer = Itreap.create ~seed ~owner_eq () in
    let lreader = Itreap.create ~seed:(seed + 1) ~owner_eq () in
    let rreader = Itreap.create ~seed:(seed + 101) ~owner_eq () in
    let coal = Coalescer.create () in
    (validators :=
       fun () ->
         Itreap.validate writer;
         Itreap.validate lreader;
         Itreap.validate rreader);
    let strands = ref 0 in
    let intervals = ref 0 and work = ref 0 and raw_events = ref 0 in
    let check treap kind (iv : Interval.t) (s : Sp_order.strand) =
      Itreap.query treap iv ~f:(fun seg prior ->
          if Policies.race sp ~prior ~current:s then
            Report.add report kind ~prior:(Sp_order.id prior) ~current:(Sp_order.id s)
              (Interval.inter seg iv))
    in
    let clear_all iv =
      Itreap.clear_range writer iv;
      Itreap.clear_range lreader iv;
      Itreap.clear_range rreader iv
    in
    (* Strand-atomic processing: every access of the strand is checked
       against the pre-strand history, then the history is updated — a
       strand's own accesses never shadow older readers/writers from the
       checks (accesses within one strand cannot race).  This is the same
       contract PINT's pipeline stages follow, which is what makes the
       deduplicated race sets of the two detectors coincide (Theorem 5). *)
    let process (u : Srec.t) =
      incr strands;
      intervals := !intervals + Array.length u.reads + Array.length u.writes;
      work := !work + u.work;
      raw_events := !raw_events + u.raw_reads + u.raw_writes;
      let s = u.sp in
      Array.iter (fun r -> check writer Report.Write_read r s) u.reads;
      Array.iter
        (fun w ->
          check writer Report.Write_write w s;
          check lreader Report.Read_write w s;
          check rreader Report.Read_write w s)
        u.writes;
      Array.iter
        (fun r ->
          Itreap.insert_merge lreader r s ~keep:(fun ~incumbent ->
              Policies.keep_leftmost sp ~s ~incumbent);
          Itreap.insert_merge rreader r s ~keep:(fun ~incumbent ->
              Policies.keep_rightmost sp ~s ~incumbent))
        u.reads;
      Array.iter (fun w -> Itreap.insert_replace writer w s) u.writes;
      List.iter (fun (b, l) -> clear_all (Interval.make b (b + l - 1))) u.clears;
      List.iter
        (fun (b, l) ->
          clear_all (Interval.make b (b + l - 1));
          Aspace.heap_free ctx.aspace ~base:b ~len:l)
        u.frees
    in
    {
      Hooks.sink =
        (fun ~wid ->
          {
            Access.on_read = (fun ~addr ~len -> Coalescer.add_read coal ~addr ~len);
            on_write = (fun ~addr ~len -> Coalescer.add_write coal ~addr ~len);
            on_free = (fun ~base ~len ->
                let u = ctx.current ~wid in
                u.frees <- (base, len) :: u.frees);
            on_compute = (fun ~amount:_ -> ());
          });
      on_start = (fun ~wid:_ _ _ -> ());
      on_finish =
        (fun ~wid:_ u _kind ->
          let reads, writes = Coalescer.finish coal in
          u.reads <- reads;
          u.writes <- writes;
          if not (Evring.enabled ring) then process u
          else begin
            let visits () = Itreap.visits writer + Itreap.visits lreader + Itreap.visits rreader in
            let v0 = visits () in
            let t0 = Evring.now ring in
            process u;
            let dv = visits () - v0 in
            let dur = if Evring.is_virtual ring then dv else Evring.now ring - t0 in
            Evring.emit_span ring ~ts:t0 ~dur ~kind:Ev.treap_op ~arg:dv
          end);
      on_done =
        (fun () ->
          let sum3 f = f writer + f lreader + f rreader in
          let fast = sum3 Itreap.fastpath_hits in
          let slow = sum3 Itreap.slowpath_hits in
          diags :=
            [
              ("strands", float_of_int !strands);
              ("intervals", float_of_int !intervals);
              ("work", float_of_int !work);
              ("raw_events", float_of_int !raw_events);
              ("writer_visits", float_of_int (Itreap.visits writer));
              ("reader_visits", float_of_int (Itreap.visits lreader + Itreap.visits rreader));
              ("writer_size", float_of_int (Itreap.size writer));
              ("reader_size", float_of_int (Itreap.size lreader + Itreap.size rreader));
              ("fastpath_hits", float_of_int fast);
              ("slowpath_hits", float_of_int slow);
              ("fastpath_rate", float_of_int fast /. float_of_int (max 1 (fast + slow)));
              ("scratch_reuse", float_of_int (sum3 Itreap.scratch_reuse));
              ("coal_sort_skips", float_of_int (fst (Coalescer.sort_stats coal)));
              ("coal_sorts", float_of_int (snd (Coalescer.sort_stats coal)));
            ]);
    }
  in
  {
    Detector.name = "stint";
    driver;
    report;
    drain = (fun () -> ());
    diagnostics = (fun () -> !diags);
    validate = (fun () -> !validators ());
  }
