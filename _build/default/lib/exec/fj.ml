type engine = {
  e_spawn : (unit -> unit) -> unit;
  e_sync : unit -> unit;
  e_scope : (unit -> unit) -> unit;
  e_with_frame : words:int -> (Membuf.f -> unit) -> unit;
  e_wid : unit -> int;
  e_space : Aspace.t;
}

let key : engine option ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref None)

let install e = Domain.DLS.get key := Some e
let uninstall () = Domain.DLS.get key := None

let engine () =
  match !(Domain.DLS.get key) with
  | Some e -> e
  | None -> failwith "Fj: no executor is running on this domain"

let spawn f = (engine ()).e_spawn f
let sync () = (engine ()).e_sync ()
let scope f = (engine ()).e_scope f
let with_frame ~words k = (engine ()).e_with_frame ~words k
let wid () = (engine ()).e_wid ()
let space () = (engine ()).e_space

let alloc_f n = Membuf.alloc_f (space ()) n
let alloc_i n = Membuf.alloc_i (space ()) n
let free_f b = Membuf.free_f b
let free_i b = Membuf.free_i b
