type frame = { base : int; words : int; mutable live : bool }

type stack = { region_base : int; region_words : int; frames : frame Vec.t; mutable sp : int }

(* Free and allocated heap blocks; [free] kept sorted by base for first-fit
   with coalescing, [allocated] indexed by base for liveness checks. *)
type heap = {
  mutable free : (int * int) list; (* (base, len), sorted by base, coalesced *)
  allocated : (int, int) Hashtbl.t; (* base -> len *)
  mutable brk : int;
  mutable live_words : int;
}

type t = {
  workers : int;
  stack_words : int;
  stacks : stack array;
  heap : heap;
  heap_base : int;
  lock : Mutex.t;
}

let create ?(max_workers = 64) ?(stack_words = 1 lsl 20) ?(heap_words = 0) () =
  ignore heap_words;
  let stacks =
    Array.init max_workers (fun w ->
        {
          region_base = w * stack_words;
          region_words = stack_words;
          frames = Vec.create { base = 0; words = 0; live = false };
          sp = 0;
        })
  in
  let heap_base = max_workers * stack_words in
  {
    workers = max_workers;
    stack_words;
    stacks;
    heap = { free = []; allocated = Hashtbl.create 256; brk = heap_base; live_words = 0 };
    heap_base;
    lock = Mutex.create ();
  }

let max_workers t = t.workers

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* ------------------------------------------------------------------ heap *)

let heap_alloc t words =
  if words <= 0 then invalid_arg "Aspace.heap_alloc: words must be positive";
  with_lock t (fun () ->
      let h = t.heap in
      (* first fit *)
      let rec take acc = function
        | [] ->
            let base = h.brk in
            h.brk <- h.brk + words;
            (base, List.rev acc)
        | (b, l) :: rest when l >= words ->
            let remainder = if l = words then [] else [ (b + words, l - words) ] in
            (b, List.rev_append acc (remainder @ rest))
        | blk :: rest -> take (blk :: acc) rest
      in
      let base, free = take [] h.free in
      h.free <- free;
      Hashtbl.replace h.allocated base words;
      h.live_words <- h.live_words + words;
      base)

let heap_free t ~base ~len =
  with_lock t (fun () ->
      let h = t.heap in
      (match Hashtbl.find_opt h.allocated base with
      | Some l when l = len -> Hashtbl.remove h.allocated base
      | Some l -> failwith (Printf.sprintf "Aspace.heap_free: block %d has length %d, not %d" base l len)
      | None -> failwith (Printf.sprintf "Aspace.heap_free: no live block at %d" base));
      h.live_words <- h.live_words - len;
      (* insert sorted, then coalesce adjacent blocks *)
      let rec insert = function
        | [] -> [ (base, len) ]
        | (b, l) :: rest ->
            if base + len <= b then (base, len) :: (b, l) :: rest
            else if b + l <= base then (b, l) :: insert rest
            else failwith "Aspace.heap_free: double free / overlap"
      in
      let rec coalesce = function
        | (b1, l1) :: (b2, l2) :: rest when b1 + l1 = b2 -> coalesce ((b1, l1 + l2) :: rest)
        | blk :: rest -> blk :: coalesce rest
        | [] -> []
      in
      h.free <- coalesce (insert h.free))

let heap_live_words t = with_lock t (fun () -> t.heap.live_words)

let heap_block_live t ~base ~len =
  with_lock t (fun () -> Hashtbl.find_opt t.heap.allocated base = Some len)

(* ---------------------------------------------------------------- stacks *)

let stack t worker =
  if worker < 0 || worker >= t.workers then invalid_arg "Aspace: bad worker id";
  t.stacks.(worker)

let frame_push t ~worker ~words =
  if words <= 0 then invalid_arg "Aspace.frame_push: words must be positive";
  let s = stack t worker in
  if s.sp + words > s.region_words then
    failwith (Printf.sprintf "Aspace: stack overflow on worker %d" worker);
  let base = s.region_base + s.sp in
  Vec.push s.frames { base; words; live = true };
  s.sp <- s.sp + words;
  base

let frame_pop t ~worker ~base =
  let s = stack t worker in
  let found = ref false in
  Vec.iter (fun f -> if f.base = base && f.live then (f.live <- false; found := true)) s.frames;
  if not !found then
    failwith (Printf.sprintf "Aspace.frame_pop: no live frame at %d on worker %d" base worker);
  (* lazy reclaim of the dead suffix *)
  let rec reclaim () =
    if not (Vec.is_empty s.frames) && not (Vec.peek s.frames).live then begin
      let f = Vec.pop s.frames in
      s.sp <- s.sp - f.words;
      reclaim ()
    end
  in
  reclaim ()

let stack_used t ~worker = (stack t worker).sp
let stack_base t ~worker = (stack t worker).region_base
let is_stack_addr t addr = addr >= 0 && addr < t.heap_base
