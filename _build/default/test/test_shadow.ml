(* Unit tests for the simulated address space, instrumented buffers, and the
   ambient access sink. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------- aspace *)

let test_heap_alloc_disjoint () =
  let a = Aspace.create () in
  let b1 = Aspace.heap_alloc a 100 in
  let b2 = Aspace.heap_alloc a 50 in
  check_bool "disjoint" true (b2 >= b1 + 100 || b1 >= b2 + 50);
  check_int "live words" 150 (Aspace.heap_live_words a);
  check_bool "block live" true (Aspace.heap_block_live a ~base:b1 ~len:100)

let test_heap_free_reuse () =
  let a = Aspace.create () in
  let b1 = Aspace.heap_alloc a 64 in
  Aspace.heap_free a ~base:b1 ~len:64;
  check_int "live words" 0 (Aspace.heap_live_words a);
  let b2 = Aspace.heap_alloc a 64 in
  check_int "first fit reuses" b1 b2

let test_heap_free_coalesce () =
  let a = Aspace.create () in
  let b1 = Aspace.heap_alloc a 32 in
  let b2 = Aspace.heap_alloc a 32 in
  let b3 = Aspace.heap_alloc a 32 in
  check_int "contiguous" (b1 + 32) b2;
  Aspace.heap_free a ~base:b1 ~len:32;
  Aspace.heap_free a ~base:b3 ~len:32;
  Aspace.heap_free a ~base:b2 ~len:32;
  (* all three coalesce: a 96-word alloc fits at b1 *)
  check_int "coalesced" b1 (Aspace.heap_alloc a 96)

let test_heap_split_block () =
  let a = Aspace.create () in
  let b1 = Aspace.heap_alloc a 100 in
  Aspace.heap_free a ~base:b1 ~len:100;
  let s1 = Aspace.heap_alloc a 40 in
  let s2 = Aspace.heap_alloc a 40 in
  check_int "first split" b1 s1;
  check_int "second split" (b1 + 40) s2

let test_heap_double_free () =
  let a = Aspace.create () in
  let b1 = Aspace.heap_alloc a 10 in
  Aspace.heap_free a ~base:b1 ~len:10;
  check_bool "double free rejected" true
    (try
       Aspace.heap_free a ~base:b1 ~len:10;
       false
     with Failure _ -> true)

let test_heap_wrong_length_free () =
  let a = Aspace.create () in
  let b1 = Aspace.heap_alloc a 10 in
  check_bool "wrong length rejected" true
    (try
       Aspace.heap_free a ~base:b1 ~len:5;
       false
     with Failure _ -> true)

let test_stack_lifo () =
  let a = Aspace.create () in
  let f1 = Aspace.frame_push a ~worker:0 ~words:16 in
  let f2 = Aspace.frame_push a ~worker:0 ~words:16 in
  check_int "stacked" (f1 + 16) f2;
  Aspace.frame_pop a ~worker:0 ~base:f2;
  let f3 = Aspace.frame_push a ~worker:0 ~words:16 in
  check_int "reuses popped slot" f2 f3;
  check_int "used" 32 (Aspace.stack_used a ~worker:0)

let test_stack_lazy_reclaim () =
  (* popping a non-top frame must not free its space until the frames above
     it are gone *)
  let a = Aspace.create () in
  let f1 = Aspace.frame_push a ~worker:0 ~words:8 in
  let f2 = Aspace.frame_push a ~worker:0 ~words:8 in
  Aspace.frame_pop a ~worker:0 ~base:f1;
  check_int "still occupied" 16 (Aspace.stack_used a ~worker:0);
  let f3 = Aspace.frame_push a ~worker:0 ~words:8 in
  check_bool "no overlap with live f2" true (f3 >= f2 + 8);
  Aspace.frame_pop a ~worker:0 ~base:f3;
  Aspace.frame_pop a ~worker:0 ~base:f2;
  check_int "all reclaimed" 0 (Aspace.stack_used a ~worker:0)

let test_stack_per_worker_isolation () =
  let a = Aspace.create () in
  let f0 = Aspace.frame_push a ~worker:0 ~words:8 in
  let f1 = Aspace.frame_push a ~worker:1 ~words:8 in
  check_bool "separate regions" true (abs (f0 - f1) >= 8);
  check_bool "stack addrs" true (Aspace.is_stack_addr a f0 && Aspace.is_stack_addr a f1)

let test_stack_bad_pop () =
  let a = Aspace.create () in
  check_bool "bad pop rejected" true
    (try
       Aspace.frame_pop a ~worker:0 ~base:12345;
       false
     with Failure _ -> true)

let test_heap_above_stacks () =
  let a = Aspace.create () in
  let h = Aspace.heap_alloc a 8 in
  check_bool "heap not stack" false (Aspace.is_stack_addr a h)

(* ------------------------------------------------------------- membuf *)

let record_sink log =
  {
    Access.on_read = (fun ~addr ~len -> log := `R (addr, len) :: !log);
    on_write = (fun ~addr ~len -> log := `W (addr, len) :: !log);
    on_free = (fun ~base ~len -> log := `F (base, len) :: !log);
    on_compute = (fun ~amount -> log := `C amount :: !log);
  }

let with_sink f =
  let log = ref [] in
  Access.install (record_sink log);
  Fun.protect ~finally:Access.uninstall (fun () -> f ());
  List.rev !log

let test_membuf_events () =
  let a = Aspace.create () in
  let b = Membuf.alloc_f a 16 in
  let base = Membuf.base_f b in
  let events =
    with_sink (fun () ->
        Membuf.set_f b 3 1.5;
        ignore (Membuf.get_f b 3);
        Membuf.fill_f b 4 4 2.0;
        Membuf.blit_f b 4 b 8 4;
        Membuf.free_f b)
  in
  Alcotest.(check (list string))
    "event stream"
    [ "W3/1"; "R3/1"; "W4/4"; "R4/4"; "W8/4"; "F0/16" ]
    (List.map
       (function
         | `R (a, l) -> Printf.sprintf "R%d/%d" (a - base) l
         | `W (a, l) -> Printf.sprintf "W%d/%d" (a - base) l
         | `F (a, l) -> Printf.sprintf "F%d/%d" (a - base) l
         | `C n -> Printf.sprintf "C%d" n)
       events);
  check_bool "value stored" true (Membuf.peek_f b 3 = 1.5);
  check_bool "fill worked" true (Membuf.peek_f b 5 = 2.0);
  check_bool "blit worked" true (Membuf.peek_f b 9 = 2.0)

let test_membuf_peek_poke_silent () =
  let a = Aspace.create () in
  let b = Membuf.alloc_f a 4 in
  let events =
    with_sink (fun () ->
        Membuf.poke_f b 0 9.0;
        ignore (Membuf.peek_f b 0))
  in
  check_int "no events" 0 (List.length events)

let test_membuf_int_buffers () =
  let a = Aspace.create () in
  let b = Membuf.alloc_i a 8 in
  let events =
    with_sink (fun () ->
        Membuf.set_i b 2 42;
        ignore (Membuf.get_i b 2))
  in
  check_int "two events" 2 (List.length events);
  check_int "value" 42 (Membuf.peek_i b 2)

let test_membuf_compute () =
  let a = Aspace.create () in
  ignore (Membuf.alloc_f a 1);
  let events = with_sink (fun () -> Access.emit_compute ~amount:77) in
  check_bool "compute event" true (events = [ `C 77 ])

let test_frame_hook () =
  let a = Aspace.create () in
  let popped = ref None in
  Membuf.Frame.with_f_hooked a ~worker:0 ~words:32
    ~on_pop:(fun ~base ~len -> popped := Some (base, len))
    (fun fr ->
      Membuf.poke_f fr 0 1.0;
      check_int "frame length" 32 (Membuf.length_f fr));
  check_bool "pop hook fired" true (!popped <> None);
  check_int "stack empty" 0 (Aspace.stack_used a ~worker:0)

let test_frame_free_rejected () =
  let a = Aspace.create () in
  Membuf.Frame.with_f a ~worker:0 ~words:8 (fun fr ->
      Alcotest.check_raises "free of stack frame" (Invalid_argument "Membuf.free_f: stack frame")
        (fun () -> Membuf.free_f fr))

let test_sink_is_per_domain () =
  let log = ref [] in
  Access.install (record_sink log);
  let d =
    Domain.spawn (fun () ->
        (* fresh domain: default noop sink *)
        Access.emit_read ~addr:0 ~len:1;
        ())
  in
  Domain.join d;
  Access.uninstall ();
  check_int "other domain's events not captured" 0 (List.length !log)

let () =
  Alcotest.run "pint_shadow"
    [
      ( "aspace-heap",
        [
          Alcotest.test_case "alloc disjoint" `Quick test_heap_alloc_disjoint;
          Alcotest.test_case "free/reuse" `Quick test_heap_free_reuse;
          Alcotest.test_case "coalesce" `Quick test_heap_free_coalesce;
          Alcotest.test_case "split" `Quick test_heap_split_block;
          Alcotest.test_case "double free" `Quick test_heap_double_free;
          Alcotest.test_case "wrong length" `Quick test_heap_wrong_length_free;
          Alcotest.test_case "heap above stacks" `Quick test_heap_above_stacks;
        ] );
      ( "aspace-stack",
        [
          Alcotest.test_case "lifo" `Quick test_stack_lifo;
          Alcotest.test_case "lazy reclaim" `Quick test_stack_lazy_reclaim;
          Alcotest.test_case "worker isolation" `Quick test_stack_per_worker_isolation;
          Alcotest.test_case "bad pop" `Quick test_stack_bad_pop;
        ] );
      ( "membuf",
        [
          Alcotest.test_case "event stream" `Quick test_membuf_events;
          Alcotest.test_case "peek/poke silent" `Quick test_membuf_peek_poke_silent;
          Alcotest.test_case "int buffers" `Quick test_membuf_int_buffers;
          Alcotest.test_case "compute events" `Quick test_membuf_compute;
          Alcotest.test_case "frame hook" `Quick test_frame_hook;
          Alcotest.test_case "frame free rejected" `Quick test_frame_free_rejected;
          Alcotest.test_case "per-domain sink" `Quick test_sink_is_per_domain;
        ] );
    ]
