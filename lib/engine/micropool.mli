(** Shard micropools: one pinned domain per stage group.

    Each pool domain cooperatively round-robins its own stages (for PINT,
    one shard's {writer, lreader, rreader} treap triple) until all report
    [`Done], backing off with {!Backoff} when the whole group is
    unproductive.  Stages never migrate between domains, preserving every
    single-owner invariant they rely on (OWNERSHIP.md).  See DESIGN.md
    §13. *)

type t

(** [spawn ?rings groups] — one domain per group.  [rings.(i)], when
    given, is pool [i]'s observability track (park events are emitted into
    it from the pool's own domain). *)
val spawn : ?rings:Evring.t array -> Stage.t list list -> t

(** Wait for every pool domain; returns once all stages are [`Done]. *)
val join : t -> unit

val n_pools : t -> int

(** Deep-backoff park episodes, summed over pools (idle diagnostics). *)
val parks : t -> int

(** The degenerate grouping: every stage is its own pool. *)
val singletons : Stage.t list -> Stage.t list list
