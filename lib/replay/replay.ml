exception Corrupt of string

let corrupt fmt = Printf.ksprintf (fun s -> raise (Corrupt s)) fmt

type outcome = {
  detector : string;
  n_strands : int;
  races : Report.race list;
  diagnostics : (string * float) list;
}

type strand_observer = sp:Sp_order.t -> pos:int -> Tracefile.entry -> Srec.t -> unit

(* One open sync block.  The executors keep a per-scope frame and
   save/restore it around [Fj.scope]; scope entry/exit is not a strand
   boundary, so it is invisible in the trace.  What the trace does record is
   which sync record every spawn and sync links to ([b_uid] below, the sync's
   uid in the original run) — and since blocks close innermost-first, a stack
   keyed by those links reconstructs the scope nesting exactly.  [b_sp] is
   mutable because every non-first spawn of a block refreshes the sync
   strand's position in the order maintenance structure. *)
type block = { mutable b_sp : Sp_order.strand; b_rec : Srec.t; b_uid : int }

(* Push one strand's recorded effects through the detector: accesses go
   through the sink (so sink-level detectors and coalescers see the run),
   ledgers and executor-side fields are restored on the record directly.
   The record's interval sets are pre-filled too — detectors that coalesce
   in their own sink will overwrite them with identical arrays, detectors
   that don't (the baseline) still leave a fully-populated record. *)
let push_effects ~aspace ~(sink : Access.sink) (e : Tracefile.entry) (r : Srec.t) =
  Array.iter
    (fun (iv : Interval.t) ->
      sink.Access.on_read ~addr:iv.Interval.lo ~len:(iv.Interval.hi - iv.Interval.lo + 1))
    e.Tracefile.reads;
  Array.iter
    (fun (iv : Interval.t) ->
      sink.Access.on_write ~addr:iv.Interval.lo ~len:(iv.Interval.hi - iv.Interval.lo + 1))
    e.Tracefile.writes;
  if e.Tracefile.compute > 0 then sink.Access.on_compute ~amount:e.Tracefile.compute;
  List.iter
    (fun (b, l) ->
      (* make the recorded free replayable on this (fresh) address space *)
      Aspace.reserve aspace ~base:b ~len:l;
      sink.Access.on_free ~base:b ~len:l)
    e.Tracefile.frees;
  r.Srec.reads <- e.Tracefile.reads;
  r.Srec.writes <- e.Tracefile.writes;
  r.Srec.raw_reads <- e.Tracefile.raw_reads;
  r.Srec.raw_writes <- e.Tracefile.raw_writes;
  r.Srec.work <- e.Tracefile.work;
  r.Srec.compute <- e.Tracefile.compute;
  r.Srec.clears <- e.Tracefile.clears;
  r.Srec.finished_at <- e.Tracefile.finished_at;
  r.Srec.cost <- e.Tracefile.cost

let drive ?aspace ?on_strand (tf : Tracefile.t) (driver : Hooks.driver) =
  let aspace = match aspace with Some a -> a | None -> Aspace.create () in
  let by_uid = Hashtbl.create (max 16 (Tracefile.entry_count tf)) in
  Array.iter (fun (e : Tracefile.entry) -> Hashtbl.replace by_uid e.Tracefile.uid e) tf.Tracefile.entries;
  (* an entry's index in the file is its observed-schedule position: entries
     are written in finish order, which is a linearization of the strand DAG *)
  let pos_of = Hashtbl.create (max 16 (Tracefile.entry_count tf)) in
  Array.iteri (fun i (e : Tracefile.entry) -> Hashtbl.replace pos_of e.Tracefile.uid i)
    tf.Tracefile.entries;
  let entry uid =
    match Hashtbl.find_opt by_uid uid with
    | Some e -> e
    | None -> corrupt "trace links to unknown strand uid %d" uid
  in
  let sp, root_sp = Sp_order.create () in
  let next_uid = ref 0 in
  let fresh s =
    incr next_uid;
    Srec.make ~uid:!next_uid s
  in
  let root_rec = fresh root_sp in
  let cur = ref root_rec in
  let ctx = { Hooks.aspace; sp; n_workers = 1; current = (fun ~wid:_ -> !cur) } in
  let hooks = driver ctx in
  let sink = hooks.Hooks.sink ~wid:0 in
  let note (e : Tracefile.entry) r =
    match on_strand with
    | None -> ()
    | Some f -> f ~sp ~pos:(Hashtbl.find pos_of e.Tracefile.uid) e r
  in
  let feed e r =
    push_effects ~aspace ~sink e r;
    note e r
  in
  (* Canonical depth-first walk.  [chain] replays the strand [e] as record
     [r], then follows the recorded DAG: a spawn recurses into the child
     scope and tail-continues with the continuation; a sync pass
     tail-continues with the block's sync strand; a return (or the root's
     final strand) ends the chain.  Stolen/trivial flags from the capture
     schedule are deliberately dropped — replay is the serial elision. *)
  let rec chain (e : Tracefile.entry) (r : Srec.t) (start : Events.start_kind)
      (blocks : block list ref) ~(parent_sync : Srec.t option) =
    cur := r;
    hooks.Hooks.on_start ~wid:0 r start;
    feed e r;
    match e.Tracefile.finish with
    | Tracefile.Spawn { cont; sync; child; first } ->
        let sync_pre, open_block =
          if first then (None, None)
          else
            match !blocks with
            | top :: _ ->
                if top.b_uid <> sync then
                  corrupt "strand %d: spawn links sync %d but the open block's sync is %d"
                    e.Tracefile.uid sync top.b_uid;
                (Some top.b_sp, Some top)
            | [] -> corrupt "strand %d: non-first spawn with no open sync block" e.Tracefile.uid
        in
        let child_sp, cont_sp, sync_sp = Sp_order.spawn sp ~sync_pre r.Srec.sp in
        let cont_rec = fresh cont_sp in
        let sync_rec =
          match open_block with
          | Some b ->
              b.b_sp <- sync_sp;
              b.b_rec
          | None ->
              let sr = fresh sync_sp in
              blocks := { b_sp = sync_sp; b_rec = sr; b_uid = sync } :: !blocks;
              sr
        in
        Book.at_spawn ~u:r ~cont:cont_rec ~sync:sync_rec ~first;
        hooks.Hooks.on_finish ~wid:0 r
          (Events.F_spawn { cont = cont_rec; sync = sync_rec; first_of_block = first });
        let child_sr = fresh child_sp in
        chain (entry child) child_sr Events.S_child (ref []) ~parent_sync:(Some sync_rec);
        chain (entry cont) cont_rec (Events.S_cont { stolen = false }) blocks ~parent_sync
    | Tracefile.Sync { trivial = _; sync } ->
        let top, rest =
          match !blocks with
          | top :: rest -> (top, rest)
          | [] -> corrupt "strand %d: sync finish with no open sync block" e.Tracefile.uid
        in
        if top.b_uid <> sync then
          corrupt "strand %d: sync finish links sync %d but the open block's sync is %d"
            e.Tracefile.uid sync top.b_uid;
        hooks.Hooks.on_finish ~wid:0 r (Events.F_sync { trivial = true; sync = top.b_rec });
        blocks := rest;
        chain (entry sync) top.b_rec (Events.S_after_sync { trivial = true }) blocks ~parent_sync
    | Tracefile.Return _ ->
        if !blocks <> [] then corrupt "strand %d: return with %d open sync block(s)"
            e.Tracefile.uid (List.length !blocks);
        hooks.Hooks.on_finish ~wid:0 r (Events.F_return { cont_stolen = false; parent_sync })
    | Tracefile.Root ->
        if !blocks <> [] then corrupt "strand %d: root finish with %d open sync block(s)"
            e.Tracefile.uid (List.length !blocks);
        hooks.Hooks.on_finish ~wid:0 r Events.F_root
  in
  let root_entry = try Tracefile.root tf with Tracefile.Error m -> raise (Corrupt m) in
  (try chain root_entry root_rec Events.S_root (ref []) ~parent_sync:None
   with Tracefile.Error m -> raise (Corrupt m));
  hooks.Hooks.on_done ();
  if !next_uid <> Tracefile.entry_count tf then
    corrupt "replay visited %d strands but the trace holds %d" !next_uid
      (Tracefile.entry_count tf);
  !next_uid

let run ?aspace ?(wrap = fun d -> d) ?pools ?on_strand tf (d : Detector.t) =
  (* Real-domain replay: the detector's pipeline stages run on shard
     micropool domains concurrently with the (still single-threaded,
     deterministic) strand feed — the same producer/consumer topology as a
     live [Par_exec] run, driven from a reproducible schedule.  The pools
     must not spawn until the detector's driver has set up its run (a
     stage stepped before that fails), so the spawn rides a driver wrapper
     that fires right after hook creation — the same ordering [Par_exec]
     gets by construction.  [drive]'s final [on_done] lets every stage
     reach [`Done], so the join below terminates; the drain after it is
     then a no-op pass that only publishes latencies. *)
  let mp = ref None in
  let spawn_pools driver ctx =
    let hooks = driver ctx in
    (match pools with
    | Some ps when !mp = None -> mp := Some (Micropool.spawn ps)
    | _ -> ());
    hooks
  in
  let n = drive ?aspace ?on_strand tf (spawn_pools (wrap d.Detector.driver)) in
  (match !mp with Some p -> Micropool.join p | None -> ());
  d.Detector.drain ();
  {
    detector = d.Detector.name;
    n_strands = n;
    races = Report.races d.Detector.report;
    diagnostics = d.Detector.diagnostics ();
  }

(* ---------------------------------------------------------------- sessions *)

(* Push-driven replay: the same canonical depth-first walk as [drive], but
   defunctionalized so it can suspend whenever the next strand's entry has
   not arrived yet.  [drive]'s recursion encodes "what to replay next" in
   the call stack; here it is an explicit stack of pending strands — a
   spawn pushes its continuation and then its child (child on top = DFS),
   a sync pushes the block's sync strand.  The walk advances exactly while
   the top-of-stack uid is decodable, so a serially-captured trace (entries
   in finish order = DFS order) replays with O(1) strands buffered, and a
   parallel capture buffers only its schedule skew.

   Replay-side uid assignment follows [drive]'s [fresh] order exactly
   (cont, then sync, then child, then the child subtree), so a session
   yields race sets bit-identical to the offline replay at the Theorem-5
   (kind, prior, current) granularity — not merely equivalent. *)
module Session = struct
  type pend = {
    p_uid : int; (* trace uid of the entry this strand replays *)
    p_rec : Srec.t;
    p_start : Events.start_kind;
    p_blocks : block list ref; (* shared along a chain, fresh per child *)
    p_parent_sync : Srec.t option;
  }

  type t = {
    s_det : Detector.t;
    s_dec : Tracefile.Decoder.t;
    s_aspace : Aspace.t;
    s_hooks : Hooks.t;
    s_sink : Access.sink;
    s_sp : Sp_order.t;
    s_cur : Srec.t ref;
    s_next_uid : int ref;
    s_root_rec : Srec.t;
    s_by_uid : (int, Tracefile.entry) Hashtbl.t; (* arrived, not yet replayed *)
    s_pos : (int, int) Hashtbl.t; (* uid -> arrival order = observed position *)
    s_on_strand : strand_observer option;
    s_seen : (Report.kind * int * int, unit) Hashtbl.t; (* races already returned *)
    mutable s_stack : pend list; (* DFS work stack; hd is next *)
    mutable s_started : bool; (* root entry arrived *)
    mutable s_visited : int; (* strands replayed *)
    mutable s_done : bool; (* on_done fired (eof or abort) *)
  }

  let create ?aspace ?(wrap = fun d -> d) ?max_pending ?on_strand (det : Detector.t) =
    let aspace = match aspace with Some a -> a | None -> Aspace.create () in
    let sp, root_sp = Sp_order.create () in
    let next_uid = ref 0 in
    incr next_uid;
    let root_rec = Srec.make ~uid:!next_uid root_sp in
    let cur = ref root_rec in
    let ctx = { Hooks.aspace; sp; n_workers = 1; current = (fun ~wid:_ -> !cur) } in
    (* hooks are created eagerly: a caller sharing pool domains may submit
       the detector's stages right after [create], which requires the
       driver's run to be set up — the same ordering [run ?pools] gets from
       its driver wrapper. *)
    let hooks = (wrap det.Detector.driver) ctx in
    {
      s_det = det;
      s_dec = Tracefile.Decoder.create ?max_pending ();
      s_aspace = aspace;
      s_hooks = hooks;
      s_sink = hooks.Hooks.sink ~wid:0;
      s_sp = sp;
      s_cur = cur;
      s_next_uid = next_uid;
      s_root_rec = root_rec;
      s_by_uid = Hashtbl.create 256;
      s_pos = Hashtbl.create 256;
      s_on_strand = on_strand;
      s_seen = Hashtbl.create 64;
      s_stack = [];
      s_started = false;
      s_visited = 0;
      s_done = false;
    }

  let fresh t s =
    incr t.s_next_uid;
    Srec.make ~uid:!(t.s_next_uid) s

  (* The body of [drive]'s [chain], minus the recursion. *)
  let exec_strand t (p : pend) (e : Tracefile.entry) =
    let r = p.p_rec in
    t.s_cur := r;
    t.s_hooks.Hooks.on_start ~wid:0 r p.p_start;
    push_effects ~aspace:t.s_aspace ~sink:t.s_sink e r;
    (match t.s_on_strand with
    | None -> ()
    | Some f -> f ~sp:t.s_sp ~pos:(Hashtbl.find t.s_pos e.Tracefile.uid) e r);
    t.s_visited <- t.s_visited + 1;
    match e.Tracefile.finish with
    | Tracefile.Spawn { cont; sync; child; first } ->
        let blocks = p.p_blocks in
        let sync_pre, open_block =
          if first then (None, None)
          else
            match !blocks with
            | top :: _ ->
                if top.b_uid <> sync then
                  corrupt "strand %d: spawn links sync %d but the open block's sync is %d"
                    e.Tracefile.uid sync top.b_uid;
                (Some top.b_sp, Some top)
            | [] -> corrupt "strand %d: non-first spawn with no open sync block" e.Tracefile.uid
        in
        let child_sp, cont_sp, sync_sp = Sp_order.spawn t.s_sp ~sync_pre r.Srec.sp in
        let cont_rec = fresh t cont_sp in
        let sync_rec =
          match open_block with
          | Some b ->
              b.b_sp <- sync_sp;
              b.b_rec
          | None ->
              let sr = fresh t sync_sp in
              blocks := { b_sp = sync_sp; b_rec = sr; b_uid = sync } :: !blocks;
              sr
        in
        Book.at_spawn ~u:r ~cont:cont_rec ~sync:sync_rec ~first;
        t.s_hooks.Hooks.on_finish ~wid:0 r
          (Events.F_spawn { cont = cont_rec; sync = sync_rec; first_of_block = first });
        let child_rec = fresh t child_sp in
        t.s_stack <-
          {
            p_uid = child;
            p_rec = child_rec;
            p_start = Events.S_child;
            p_blocks = ref [];
            p_parent_sync = Some sync_rec;
          }
          :: {
               p_uid = cont;
               p_rec = cont_rec;
               p_start = Events.S_cont { stolen = false };
               p_blocks = blocks;
               p_parent_sync = p.p_parent_sync;
             }
          :: t.s_stack
    | Tracefile.Sync { trivial = _; sync } ->
        let top, rest =
          match !(p.p_blocks) with
          | top :: rest -> (top, rest)
          | [] -> corrupt "strand %d: sync finish with no open sync block" e.Tracefile.uid
        in
        if top.b_uid <> sync then
          corrupt "strand %d: sync finish links sync %d but the open block's sync is %d"
            e.Tracefile.uid sync top.b_uid;
        t.s_hooks.Hooks.on_finish ~wid:0 r (Events.F_sync { trivial = true; sync = top.b_rec });
        p.p_blocks := rest;
        t.s_stack <-
          {
            p_uid = sync;
            p_rec = top.b_rec;
            p_start = Events.S_after_sync { trivial = true };
            p_blocks = p.p_blocks;
            p_parent_sync = p.p_parent_sync;
          }
          :: t.s_stack
    | Tracefile.Return _ ->
        if !(p.p_blocks) <> [] then
          corrupt "strand %d: return with %d open sync block(s)" e.Tracefile.uid
            (List.length !(p.p_blocks));
        t.s_hooks.Hooks.on_finish ~wid:0 r
          (Events.F_return { cont_stolen = false; parent_sync = p.p_parent_sync })
    | Tracefile.Root ->
        if !(p.p_blocks) <> [] then
          corrupt "strand %d: root finish with %d open sync block(s)" e.Tracefile.uid
            (List.length !(p.p_blocks));
        t.s_hooks.Hooks.on_finish ~wid:0 r Events.F_root

  (* Replay as far as the arrived entries allow. *)
  let advance t =
    let rec go () =
      match t.s_stack with
      | p :: rest -> (
          match Hashtbl.find_opt t.s_by_uid p.p_uid with
          | Some e ->
              Hashtbl.remove t.s_by_uid p.p_uid;
              t.s_stack <- rest;
              exec_strand t p e;
              go ()
          | None -> ())
      | [] -> ()
    in
    go ()

  (* Races reported since the last call, at Theorem-5 key granularity.
     [Report.races] is safe to poll while pool domains are still adding. *)
  let new_races t =
    List.filter
      (fun (r : Report.race) ->
        let k = (r.Report.kind, r.Report.prior, r.Report.current) in
        if Hashtbl.mem t.s_seen k then false
        else begin
          Hashtbl.replace t.s_seen k ();
          true
        end)
      (Report.races t.s_det.Detector.report)

  let drain_decoded t =
    let rec go () =
      match Tracefile.Decoder.next t.s_dec with
      | None -> ()
      | Some e ->
          if e.Tracefile.start = Events.S_root then begin
            if t.s_started then corrupt "trace has more than one root strand";
            t.s_started <- true;
            t.s_stack <-
              {
                p_uid = e.Tracefile.uid;
                p_rec = t.s_root_rec;
                p_start = Events.S_root;
                p_blocks = ref [];
                p_parent_sync = None;
              }
              :: t.s_stack
          end;
          (* arrival order is the stream's entry order — the same observed
             position [drive] reads off the entries array of a whole file *)
          if not (Hashtbl.mem t.s_pos e.Tracefile.uid) then
            Hashtbl.replace t.s_pos e.Tracefile.uid (Hashtbl.length t.s_pos);
          Hashtbl.replace t.s_by_uid e.Tracefile.uid e;
          go ()
    in
    go ()

  let feed t ?pos ?len chunk =
    if t.s_done then invalid_arg "Replay.Session.feed: session already finished";
    Tracefile.Decoder.feed t.s_dec ?pos ?len chunk;
    drain_decoded t;
    advance t;
    new_races t

  let eof t =
    if t.s_done then invalid_arg "Replay.Session.eof: session already finished";
    Tracefile.Decoder.finish t.s_dec;
    drain_decoded t;
    advance t;
    (match t.s_stack with
    | p :: _ -> corrupt "trace links to unknown strand uid %d" p.p_uid
    | [] -> ());
    if not t.s_started then corrupt "trace has no root strand";
    let expected =
      match Tracefile.Decoder.entries_expected t.s_dec with Some n -> n | None -> 0
    in
    if t.s_visited <> expected then
      corrupt "replay visited %d strands but the trace holds %d" t.s_visited expected;
    if Hashtbl.length t.s_by_uid <> 0 then
      corrupt "trace holds %d strand(s) unreachable from the root" (Hashtbl.length t.s_by_uid);
    t.s_done <- true;
    t.s_hooks.Hooks.on_done ();
    new_races t

  (* Terminate a failed session's run so pipeline stages still reach
     [`Done] and shared pool domains are not wedged on a dead tenant. *)
  let abort t =
    if not t.s_done then begin
      t.s_done <- true;
      t.s_hooks.Hooks.on_done ()
    end

  let poll_races t = new_races t
  let finished t = t.s_done
  let fed_strands t = t.s_visited
  let fed_bytes t = Tracefile.Decoder.fed_bytes t.s_dec
  let meta t = Option.map snd (Tracefile.Decoder.header t.s_dec)

  let outcome t =
    if not t.s_done then invalid_arg "Replay.Session.outcome: session still streaming";
    {
      detector = t.s_det.Detector.name;
      n_strands = t.s_visited;
      races = Report.races t.s_det.Detector.report;
      diagnostics = t.s_det.Detector.diagnostics ();
    }
end

(* ------------------------------------------------------------ differential *)

type divergence = { left_only : Report.race list; right_only : Report.race list }

let no_divergence d = d.left_only = [] && d.right_only = []

let key (r : Report.race) = (r.Report.kind, r.Report.prior, r.Report.current)

let diff_races a b =
  let tbl_of l =
    let t = Hashtbl.create 64 in
    List.iter (fun r -> Hashtbl.replace t (key r) ()) l;
    t
  in
  let ta = tbl_of a and tb = tbl_of b in
  {
    left_only = List.filter (fun r -> not (Hashtbl.mem tb (key r))) a;
    right_only = List.filter (fun r -> not (Hashtbl.mem ta (key r))) b;
  }

let differential tf da db =
  let oa = run tf da in
  let ob = run tf db in
  diff_races oa.races ob.races

let pp_divergence fmt d =
  if no_divergence d then Format.fprintf fmt "race sets agree"
  else begin
    List.iter (fun r -> Format.fprintf fmt "< %a@." Report.pp_race r) d.left_only;
    List.iter (fun r -> Format.fprintf fmt "> %a@." Report.pp_race r) d.right_only
  end
