lib/workloads/matview.mli: Membuf
