(** Observability instrumentation for detector drivers.

    [instrument obs driver] wraps a {!Hooks.driver} so each strand finish
    (on any executor) stamps [Srec.obs_ts] with the session clock and
    emits an {!Ev.strand_finish} instant on the finishing worker's
    ["core<w>"] track — the upstream anchor of the pipeline-latency
    histograms.  With a disabled session the driver is returned unchanged.
    Composes with [Tracefile.capture]/[capturing] wrapping. *)

val instrument : Obs.t -> Hooks.driver -> Hooks.driver
