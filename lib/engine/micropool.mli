(** Shard micropools: one pinned domain per stage group.

    Each pool domain cooperatively round-robins its own stages (for PINT,
    one shard's {writer, lreader, rreader} treap triple) until all report
    [`Done], backing off with {!Backoff} when the whole group is
    unproductive.  Stages never migrate between domains, preserving every
    single-owner invariant they rely on (OWNERSHIP.md).  See DESIGN.md
    §13. *)

type t

(** [spawn ?rings groups] — one domain per group.  [rings.(i)], when
    given, is pool [i]'s observability track (park events are emitted into
    it from the pool's own domain). *)
val spawn : ?rings:Evring.t array -> Stage.t list list -> t

(** Wait for every pool domain; returns once all stages are [`Done]. *)
val join : t -> unit

val n_pools : t -> int

(** Deep-backoff park episodes, summed over pools (idle diagnostics). *)
val parks : t -> int

(** The degenerate grouping: every stage is its own pool. *)
val singletons : Stage.t list -> Stage.t list list

(** {2 Shared pools}

    Multi-tenant variant for long-lived services (pint_serve): [k] worker
    domains outlive any one detector, and stage groups are submitted while
    the pool runs.  A submitted group is assigned to exactly one worker
    and never migrates — the same pinning discipline as {!spawn}, so every
    single-owner invariant still sees one writing domain — and each worker
    round-robins all the groups currently assigned to it.  See DESIGN.md
    §14. *)

type shared

(** A submission handle: the stage groups of one tenant. *)
type lease

(** [shared ?rings k] spawns [k] long-lived worker domains.  [rings.(i)]
    is worker [i]'s obs track for park events. *)
val shared : ?rings:Evring.t array -> int -> shared

(** [submit sh groups] assigns each group to the least-loaded worker.
    The groups' stages must not be driven by anyone else from this point;
    they run until each reports [`Done] (for a detector: after its run's
    [on_done] has fired and its lanes drained).
    @raise Invalid_argument after {!shutdown} has begun. *)
val submit : shared -> Stage.t list list -> lease

(** True once every stage of the lease has reported [`Done]. *)
val lease_done : lease -> bool

(** Spin (with {!Backoff}) until {!lease_done}. *)
val await : lease -> unit

(** Stop and join every worker.  All outstanding leases must be able to
    finish (sessions ended or aborted): workers exit only when their
    assigned groups are done. *)
val shutdown : shared -> unit

(** Park episodes summed over shared workers (idle diagnostics). *)
val shared_parks : shared -> int

val n_shared_workers : shared -> int
