(* Tests for Interval and Coalescer. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let iv = Interval.make

let test_make_invalid () =
  Alcotest.check_raises "hi < lo" (Invalid_argument "Interval.make: hi < lo") (fun () ->
      ignore (iv 3 2))

let test_point_width () =
  check_int "point width" 1 (Interval.width (Interval.point 5));
  check_int "width" 10 (Interval.width (iv 1 10));
  check_bool "contains lo" true (Interval.contains (iv 3 7) 3);
  check_bool "contains hi" true (Interval.contains (iv 3 7) 7);
  check_bool "not contains" false (Interval.contains (iv 3 7) 8)

let test_overlaps () =
  check_bool "identical" true (Interval.overlaps (iv 1 5) (iv 1 5));
  check_bool "partial" true (Interval.overlaps (iv 1 5) (iv 5 9));
  check_bool "contained" true (Interval.overlaps (iv 1 9) (iv 3 4));
  check_bool "disjoint" false (Interval.overlaps (iv 1 4) (iv 5 9));
  check_bool "adjacent only" true (Interval.adjacent_or_overlapping (iv 1 4) (iv 5 9));
  check_bool "gap of one" false (Interval.adjacent_or_overlapping (iv 1 4) (iv 6 9))

let test_hull_inter () =
  Alcotest.(check string) "hull" "[1,9]" (Interval.to_string (Interval.hull (iv 1 4) (iv 5 9)));
  Alcotest.(check string) "inter" "[3,5]" (Interval.to_string (Interval.inter (iv 1 5) (iv 3 9)));
  Alcotest.check_raises "hull disjoint" (Invalid_argument "Interval.hull: disjoint") (fun () ->
      ignore (Interval.hull (iv 1 2) (iv 9 10)));
  Alcotest.check_raises "inter disjoint" (Invalid_argument "Interval.inter: disjoint") (fun () ->
      ignore (Interval.inter (iv 1 2) (iv 3 4)))

let test_compare () =
  check_bool "lo first" true (Interval.compare (iv 1 9) (iv 2 3) < 0);
  check_bool "hi ties" true (Interval.compare (iv 1 3) (iv 1 9) < 0);
  check_bool "equal" true (Interval.compare (iv 1 3) (iv 1 3) = 0);
  check_bool "equal fn" true (Interval.equal (iv 1 3) (iv 1 3))

(* ------------------------------------------------------------ coalescer *)

let ivs_testable = Alcotest.(list string)
let strings arr = Array.to_list (Array.map Interval.to_string arr)

let test_coalesce_contiguous_run () =
  let c = Coalescer.create () in
  for a = 0 to 99 do
    Coalescer.add_read c ~addr:a ~len:1
  done;
  let reads, writes = Coalescer.finish c in
  Alcotest.check ivs_testable "single interval" [ "[0,99]" ] (strings reads);
  check_int "no writes" 0 (Array.length writes)

let test_coalesce_reverse_run () =
  (* The fast path misses descending accesses; the sort-merge in finish
     must still produce one interval. *)
  let c = Coalescer.create () in
  for a = 99 downto 0 do
    Coalescer.add_write c ~addr:a ~len:1
  done;
  let _, writes = Coalescer.finish c in
  Alcotest.check ivs_testable "single interval" [ "[0,99]" ] (strings writes)

let test_coalesce_strided () =
  let c = Coalescer.create () in
  for i = 0 to 9 do
    Coalescer.add_read c ~addr:(i * 10) ~len:1
  done;
  let reads, _ = Coalescer.finish c in
  check_int "ten separate intervals" 10 (Array.length reads)

let test_coalesce_bulk () =
  let c = Coalescer.create () in
  Coalescer.add_read c ~addr:0 ~len:64;
  Coalescer.add_read c ~addr:64 ~len:64;
  let reads, _ = Coalescer.finish c in
  Alcotest.check ivs_testable "merged bulk" [ "[0,127]" ] (strings reads)

let test_reads_writes_separate () =
  let c = Coalescer.create () in
  Coalescer.add_read c ~addr:0 ~len:4;
  Coalescer.add_write c ~addr:4 ~len:4;
  let reads, writes = Coalescer.finish c in
  Alcotest.check ivs_testable "reads" [ "[0,3]" ] (strings reads);
  Alcotest.check ivs_testable "writes" [ "[4,7]" ] (strings writes)

let test_raw_counts_and_reset () =
  let c = Coalescer.create () in
  Coalescer.add_read c ~addr:0 ~len:1;
  Coalescer.add_read c ~addr:1 ~len:1;
  Coalescer.add_write c ~addr:9 ~len:1;
  check_bool "raw counts" true (Coalescer.raw_counts c = (2, 1));
  let _ = Coalescer.finish c in
  check_bool "counts reset" true (Coalescer.raw_counts c = (0, 0));
  check_bool "buffers reset" true (Coalescer.pending c = (0, 0))

let test_add_invalid_len () =
  let c = Coalescer.create () in
  Alcotest.check_raises "len 0" (Invalid_argument "Coalescer.add: len must be positive")
    (fun () -> Coalescer.add_read c ~addr:0 ~len:0)

let ivs arr = Array.to_list (Array.map (fun r -> (r.Interval.lo, r.Interval.hi)) arr)

let test_sort_skip_monotone () =
  let c = Coalescer.create () in
  Coalescer.add_read c ~addr:0 ~len:4;
  Coalescer.add_read c ~addr:10 ~len:4;
  Coalescer.add_read c ~addr:14 ~len:2 (* extends [10,13] rightwards: still monotone *);
  let reads, _ = Coalescer.finish c in
  check_bool "intervals" true (ivs reads = [ (0, 3); (10, 15) ]);
  check_bool "monotone stream skipped the sort" true (Coalescer.sort_stats c = (1, 0))

let test_sort_skip_out_of_order () =
  let c = Coalescer.create () in
  Coalescer.add_write c ~addr:20 ~len:2;
  Coalescer.add_write c ~addr:0 ~len:2;
  let _, writes = Coalescer.finish c in
  check_bool "sorted" true (ivs writes = [ (0, 1); (20, 21) ]);
  check_bool "out-of-order stream sorted" true (Coalescer.sort_stats c = (0, 1))

let test_sort_skip_leftward_merge () =
  (* The subtle case: the merge target is the LAST entry but the access
     extends its [lo] leftwards, creating adjacency with the previous entry
     that only the sort+re-merge pass repairs. *)
  let c = Coalescer.create () in
  Coalescer.add_read c ~addr:0 ~len:5;
  Coalescer.add_read c ~addr:6 ~len:4;
  Coalescer.add_read c ~addr:5 ~len:2 (* hulls with [6,9] -> [5,9], adjacent to [0,4] *);
  let reads, _ = Coalescer.finish c in
  check_bool "re-merged into one" true (ivs reads = [ (0, 9) ]);
  check_bool "leftward merge forced the sort" true (Coalescer.sort_stats c = (0, 1))

let test_sort_stats_accumulate () =
  let c = Coalescer.create () in
  Coalescer.add_read c ~addr:0 ~len:1;
  ignore (Coalescer.finish c);
  Coalescer.add_read c ~addr:9 ~len:1;
  Coalescer.add_read c ~addr:0 ~len:1;
  ignore (Coalescer.finish c);
  check_bool "stats survive finish, flag resets" true (Coalescer.sort_stats c = (1, 1))

(* Property: finish produces a canonical disjoint cover of exactly the
   accessed addresses. *)
let coalescer_canonical_prop =
  QCheck.Test.make ~name:"coalescer canonical cover" ~count:300
    QCheck.(small_list (pair (int_bound 200) (int_range 1 8)))
    (fun accesses ->
      let c = Coalescer.create () in
      let model = Hashtbl.create 64 in
      List.iter
        (fun (addr, len) ->
          Coalescer.add_read c ~addr ~len;
          for a = addr to addr + len - 1 do
            Hashtbl.replace model a ()
          done)
        accesses;
      let reads, _ = Coalescer.finish c in
      (* sorted, disjoint, non-adjacent *)
      let ok_shape = ref true in
      Array.iteri
        (fun i r ->
          if i > 0 then begin
            let prev = reads.(i - 1) in
            if r.Interval.lo <= prev.Interval.hi + 1 then ok_shape := false
          end)
        reads;
      (* exact cover *)
      let covered = Hashtbl.create 64 in
      Array.iter
        (fun r ->
          for a = r.Interval.lo to r.Interval.hi do
            Hashtbl.replace covered a ()
          done)
        reads;
      !ok_shape
      && Hashtbl.length covered = Hashtbl.length model
      && Hashtbl.fold (fun a () acc -> acc && Hashtbl.mem covered a) model true)

let () =
  Alcotest.run "pint_interval"
    [
      ( "interval",
        [
          Alcotest.test_case "make invalid" `Quick test_make_invalid;
          Alcotest.test_case "point/width/contains" `Quick test_point_width;
          Alcotest.test_case "overlaps" `Quick test_overlaps;
          Alcotest.test_case "hull/inter" `Quick test_hull_inter;
          Alcotest.test_case "compare" `Quick test_compare;
        ] );
      ( "coalescer",
        [
          Alcotest.test_case "contiguous run" `Quick test_coalesce_contiguous_run;
          Alcotest.test_case "reverse run" `Quick test_coalesce_reverse_run;
          Alcotest.test_case "strided stays separate" `Quick test_coalesce_strided;
          Alcotest.test_case "bulk accesses" `Quick test_coalesce_bulk;
          Alcotest.test_case "reads vs writes" `Quick test_reads_writes_separate;
          Alcotest.test_case "raw counts & reset" `Quick test_raw_counts_and_reset;
          Alcotest.test_case "invalid len" `Quick test_add_invalid_len;
          Alcotest.test_case "sort skip: monotone" `Quick test_sort_skip_monotone;
          Alcotest.test_case "sort skip: out of order" `Quick test_sort_skip_out_of_order;
          Alcotest.test_case "sort skip: leftward merge" `Quick test_sort_skip_leftward_merge;
          Alcotest.test_case "sort stats accumulate" `Quick test_sort_stats_accumulate;
          QCheck_alcotest.to_alcotest coalescer_canonical_prop;
        ] );
    ]
