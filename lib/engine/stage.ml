type metrics = {
  mutable steps : int;
  mutable records : int;
  mutable visits : int;
  mutable idles : int;
  mutable stalls : int;
}

type t = {
  name : string;
  step : unit -> Step.t;
  cost : records:int -> visits:int -> int;
  metrics : metrics;
  (* observability: the stage's event track plus the open-stall latch;
     only the thread driving [exec] touches them (OWNERSHIP.md) *)
  mutable ring : Evring.t;
  mutable in_stall : bool;
  mutable stall_t0 : int;
}

let fresh_metrics () = { steps = 0; records = 0; visits = 0; idles = 0; stalls = 0 }

let default_cost ~records:_ ~visits = visits

let make ~name ?(cost = default_cost) step =
  {
    name;
    step;
    cost;
    metrics = fresh_metrics ();
    ring = Evring.null;
    in_stall = false;
    stall_t0 = 0;
  }

let name t = t.name
let cost t ~records ~visits = t.cost ~records ~visits
let metrics t = t.metrics
let set_ring t ring = t.ring <- ring
let ring t = t.ring

let reset_metrics t =
  let m = t.metrics in
  m.steps <- 0;
  m.records <- 0;
  m.visits <- 0;
  m.idles <- 0;
  m.stalls <- 0;
  t.in_stall <- false;
  t.stall_t0 <- 0

(* Consecutive `Stalled steps collapse into one span, closed by the first
   non-stalled step at its pre-step timestamp. *)
let close_stall t now =
  if t.in_stall then begin
    t.in_stall <- false;
    Evring.emit_span t.ring ~ts:t.stall_t0 ~dur:(now - t.stall_t0) ~kind:Ev.stall ~arg:0
  end

let exec t =
  let tracing = Evring.enabled t.ring in
  let t0 = if tracing then Evring.now t.ring else 0 in
  let st = t.step () in
  let m = t.metrics in
  (match st with
  | `Worked o ->
      m.steps <- m.steps + 1;
      m.records <- m.records + o.Step.records;
      m.visits <- m.visits + o.Step.visits;
      if tracing then begin
        close_stall t t0;
        (* under a virtual clock the span's width is the scheduler's own
           price for the step — exactly what Sim_exec adds to s_clock —
           so trace spans and simulated time agree by construction *)
        let dur =
          if Evring.is_virtual t.ring then t.cost ~records:o.Step.records ~visits:o.Step.visits
          else Evring.now t.ring - t0
        in
        Evring.emit_span t.ring ~ts:t0 ~dur ~kind:Ev.treap_op ~arg:o.Step.visits
      end
  | `Idle ->
      m.idles <- m.idles + 1;
      if tracing then close_stall t t0
  | `Stalled ->
      m.stalls <- m.stalls + 1;
      if tracing && not t.in_stall then begin
        t.in_stall <- true;
        t.stall_t0 <- t0
      end
  | `Done -> if tracing then close_stall t t0);
  st

let run t =
  let idle = ref 0 in
  let rec loop () =
    let st = exec t in
    if not (Step.is_done st) then begin
      if Step.progressed st then idle := 0
      else begin
        incr idle;
        Backoff.relax !idle
      end;
      loop ()
    end
  in
  loop ()

let diagnostics t =
  let m = t.metrics in
  let key suffix = Printf.sprintf "stage.%s.%s" t.name suffix in
  [
    (key "steps", float_of_int m.steps);
    (key "records", float_of_int m.records);
    (key "visits", float_of_int m.visits);
    (key "idle", float_of_int m.idles);
    (key "stalls", float_of_int m.stalls);
  ]
