(** SP-order reachability for series-parallel DAGs (the WSP-Order black box).

    Maintains two order-maintenance lists over strands — the {e English}
    order (left-to-right depth-first: spawned child before continuation) and
    the {e Hebrew} order (right-to-left: continuation before child).  Two
    strands are in series ([u ~> v]) iff [u] precedes [v] in {e both} lists;
    they are logically parallel iff the lists disagree (Bender, Fineman,
    Gilbert & Leiserson, SPAA'04; parallelized as WSP-Order by Utterback
    et al., SPAA'16 — see DESIGN.md §5 for our concurrency simplification).

    Protocol, driven by the executor:
    - [spawn t u] when the strand [u] executes a [spawn]: returns the strand
      for the spawned child, the continuation strand, and — iff this is the
      first spawn of [u]'s enclosing sync block — the pre-inserted sync
      strand for that block (the "first-spawn trick" that keeps the sync
      node after the whole block in both orders);
    - the executor threads the sync strand through the function frame and
      switches to it when the sync is passed.

    The English order doubles as the sequential depth-first execution order,
    which is exactly the "left-of" relation the reader treaps need. *)

type t

(** A strand's reachability identity.  Allocation is [spawn]/[make_root]
    only; comparison is physical. *)
type strand

(** [create ()] makes a fresh structure along with the root strand that
    represents the computation's initial strand. *)
val create : unit -> t * strand

(** Unique, dense id of a strand (creation order; root is 0). *)
val id : strand -> int

(** [spawn t ~sync_pre u] registers that strand [u] spawns.  [sync_pre] is
    the sync strand already pre-inserted for [u]'s current sync block, if
    any: pass [None] at the first spawn of a block and a fresh sync strand
    is created and returned as [sync]; pass [Some s] afterwards and [s] is
    returned unchanged.

    Returns [(child, continuation, sync)]: the strand beginning the spawned
    function, the strand for the spawn's continuation, and the block's sync
    strand. *)
val spawn : t -> sync_pre:strand option -> strand -> strand * strand * strand

(** [series t u v] — true iff [u ~> v] (there is a path from [u] to [v], or
    [u == v]).  Thread-safe wrt concurrent [spawn]s. *)
val series : t -> strand -> strand -> bool

(** [parallel t u v] — true iff the strands are logically parallel. *)
val parallel : t -> strand -> strand -> bool

(** [left_of t u v] — [u] executes before [v] in the sequential depth-first
    execution (English order).  Total on distinct strands; for parallel
    strands this is the left-most/right-most criterion of §II. *)
val left_of : t -> strand -> strand -> bool

(** Number of strands created so far. *)
val strand_count : t -> int

(** Diagnostics: relabel totals of the two underlying OM lists. *)
val om_relabels : t -> int * int
