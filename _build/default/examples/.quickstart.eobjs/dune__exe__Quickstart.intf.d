examples/quickstart.mli:
