(* Reproduce the paper's scalability story for one benchmark: sweep core
   workers, print the core-vs-total breakdown and watch the sequential treap
   component become the bottleneck (§IV-C).

     dune exec examples/scaling_study.exe [-- workload]  (default: sort) *)

let () =
  let name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "sort" in
  let w = Registry.find name in
  let size = w.Workload.default_size and base = w.Workload.default_base in
  Printf.printf "%s (size %d, base %d) under PINT, virtual seconds:\n\n" name size base;
  Printf.printf "%8s  %10s  %10s  %10s  %10s  %10s  %s\n" "workers" "total" "core" "writer"
    "lreader" "rreader" "bottleneck";
  List.iter
    (fun p ->
      let m = Systems.run ~workload:w ~size ~base ~workers:p Systems.Pint_sys in
      let bottleneck =
        if m.Systems.time <= m.Systems.core_time *. 1.05 then "core" else "treap workers"
      in
      Printf.printf "%8d  %10.2f  %10.2f  %10.2f  %10.2f  %10.2f  %s\n" p
        (Systems.vsec m.Systems.time) (Systems.vsec m.Systems.core_time)
        (Systems.vsec m.Systems.writer_time) (Systems.vsec m.Systems.lreader_time)
        (Systems.vsec m.Systems.rreader_time) bottleneck)
    [ 1; 2; 4; 8; 16; 24; 32 ];
  print_newline ();
  print_endline
    "The core component keeps scaling while each treap worker's time stays fixed: once the\n\
     core makespan drops below a treap worker's total work, the access history dominates —\n\
     the crossover the paper analyzes in §IV-C."
