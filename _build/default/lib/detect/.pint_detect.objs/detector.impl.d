lib/detect/detector.ml: Hooks List Report
