
type 'o node =
  | Leaf
  | Node of { left : 'o node; right : 'o node; iv : Interval.t; owner : 'o; prio : int }

type 'o t = {
  mutable root : 'o node;
  mutable size : int;
  mutable visits : int;
  mutable covered : int;
  rng : Rng.t;
  owner_eq : 'o -> 'o -> bool;
}

let create ~seed ~owner_eq () =
  { root = Leaf; size = 0; visits = 0; covered = 0; rng = Rng.create seed; owner_eq }

let size t = t.size
let visits t = t.visits
let covered t = t.covered

let visit t = t.visits <- t.visits + 1

(* [split t k n] partitions by low endpoint into (lo < k, lo >= k). *)
let rec split t k n =
  match n with
  | Leaf -> (Leaf, Leaf)
  | Node nd ->
      visit t;
      if nd.iv.Interval.lo < k then begin
        let a, b = split t k nd.right in
        (Node { nd with right = a }, b)
      end
      else begin
        let a, b = split t k nd.left in
        (a, Node { nd with left = b })
      end

(* [join t a b] assumes every key in [a] is smaller than every key in [b]. *)
let rec join t a b =
  match (a, b) with
  | Leaf, x | x, Leaf -> x
  | Node na, Node nb ->
      visit t;
      if na.prio > nb.prio then Node { na with right = join t na.right b }
      else Node { nb with left = join t a nb.left }

(* Smallest low endpoint among nodes whose interval reaches [lo0] or beyond.
   Stored intervals are disjoint, so both endpoints increase with the key and
   a single descent suffices. *)
let rec first_overlap_lo t lo0 n =
  match n with
  | Leaf -> None
  | Node nd ->
      visit t;
      if nd.iv.Interval.hi >= lo0 then begin
        match first_overlap_lo t lo0 nd.left with
        | Some _ as found -> found
        | None -> Some nd.iv.Interval.lo
      end
      else first_overlap_lo t lo0 nd.right

let rec in_order n acc =
  match n with
  | Leaf -> acc
  | Node nd -> in_order nd.left ((nd.iv, nd.owner) :: in_order nd.right acc)

(* Detach all stored intervals overlapping [iv]: returns the tree of
   everything strictly left, the overlapping entries in address order, and
   the tree of everything strictly right. *)
let extract_overlaps t iv =
  let a, right = split t (iv.Interval.hi + 1) t.root in
  match first_overlap_lo t iv.Interval.lo a with
  | None -> (a, [], right)
  | Some lo -> begin
      let left, ovl = split t lo a in
      (left, in_order ovl [], right)
    end

let rec remove_max t n =
  match n with
  | Leaf -> (Leaf, None)
  | Node nd -> begin
      visit t;
      match nd.right with
      | Leaf -> (nd.left, Some (nd.iv, nd.owner))
      | _ ->
          let right, m = remove_max t nd.right in
          (Node { nd with right }, m)
    end

let rec remove_min t n =
  match n with
  | Leaf -> (Leaf, None)
  | Node nd -> begin
      visit t;
      match nd.left with
      | Leaf -> (nd.right, Some (nd.iv, nd.owner))
      | _ ->
          let left, m = remove_min t nd.left in
          (Node { nd with left }, m)
    end

let singleton t iv owner =
  Node { left = Leaf; right = Leaf; iv; owner; prio = Rng.next t.rng }

(* Coalesce a sorted piece list, merging adjacent pieces with equal owners. *)
let coalesce_pieces t pieces =
  let out = ref [] in
  List.iter
    (fun (iv, o) ->
      match !out with
      | (iv', o') :: rest
        when t.owner_eq o o' && Interval.adjacent_or_overlapping iv' iv ->
          out := (Interval.hull iv' iv, o') :: rest
      | _ -> out := (iv, o) :: !out)
    pieces;
  List.rev !out

(* Replace the overlap region: remove [ovl]-entries, install [pieces]
   (sorted, already internally coalesced), merging with the boundary
   neighbours in [left]/[right] when owners match and intervals touch.
   Maintains size/covered ledgers. *)
let commit t left ovl pieces right =
  let removed_w = List.fold_left (fun w (iv, _) -> w + Interval.width iv) 0 ovl in
  let removed_n = List.length ovl in
  let pieces, left, removed_w, removed_n =
    match pieces with
    | (p0, o0) :: rest -> begin
        let left', m = remove_max t left in
        match m with
        | Some (jv, u) when t.owner_eq u o0 && jv.Interval.hi + 1 = p0.Interval.lo ->
            ( (Interval.hull jv p0, o0) :: rest,
              left',
              removed_w + Interval.width jv,
              removed_n + 1 )
        | _ -> (pieces, left, removed_w, removed_n)
      end
    | [] -> (pieces, left, removed_w, removed_n)
  in
  let pieces, right, removed_w, removed_n =
    match List.rev pieces with
    | (pl, ol) :: rev_rest -> begin
        let right', m = remove_min t right in
        match m with
        | Some (jv, u) when t.owner_eq u ol && pl.Interval.hi + 1 = jv.Interval.lo ->
            ( List.rev ((Interval.hull pl jv, ol) :: rev_rest),
              right',
              removed_w + Interval.width jv,
              removed_n + 1 )
        | _ -> (pieces, right, removed_w, removed_n)
      end
    | [] -> (pieces, right, removed_w, removed_n)
  in
  let added_w = List.fold_left (fun w (iv, _) -> w + Interval.width iv) 0 pieces in
  let added_n = List.length pieces in
  let middle =
    List.fold_left (fun acc (iv, o) -> join t acc (singleton t iv o)) Leaf pieces
  in
  t.root <- join t (join t left middle) right;
  t.size <- t.size + added_n - removed_n;
  t.covered <- t.covered + added_w - removed_w

let stickout_left iv = function
  | (jv, u) :: _ when jv.Interval.lo < iv.Interval.lo ->
      [ (Interval.make jv.Interval.lo (iv.Interval.lo - 1), u) ]
  | _ -> []

let rec last_entry = function
  | [] -> None
  | [ x ] -> Some x
  | _ :: rest -> last_entry rest

let stickout_right iv ovl =
  match last_entry ovl with
  | Some (jv, u) when jv.Interval.hi > iv.Interval.hi ->
      [ (Interval.make (iv.Interval.hi + 1) jv.Interval.hi, u) ]
  | _ -> []

let insert_replace t iv owner =
  let left, ovl, right = extract_overlaps t iv in
  let pieces = stickout_left iv ovl @ ((iv, owner) :: stickout_right iv ovl) in
  commit t left ovl (coalesce_pieces t pieces) right

let insert_merge t iv owner ~keep =
  let left, ovl, right = extract_overlaps t iv in
  let pieces = Vec.create (iv, owner) in
  (match stickout_left iv ovl with [ p ] -> Vec.push pieces p | _ -> ());
  let cur = ref iv.Interval.lo in
  List.iter
    (fun (jv, u) ->
      let clip = Interval.inter jv iv in
      if !cur < clip.Interval.lo then
        Vec.push pieces (Interval.make !cur (clip.Interval.lo - 1), owner);
      let seg_owner = match keep ~incumbent:u with `Keep -> u | `Replace -> owner in
      Vec.push pieces (clip, seg_owner);
      cur := clip.Interval.hi + 1)
    ovl;
  if !cur <= iv.Interval.hi then Vec.push pieces (Interval.make !cur iv.Interval.hi, owner);
  (match stickout_right iv ovl with [ p ] -> Vec.push pieces p | _ -> ());
  commit t left ovl (coalesce_pieces t (Array.to_list (Vec.to_array pieces))) right

let clear_range t iv =
  let left, ovl, right = extract_overlaps t iv in
  let pieces = stickout_left iv ovl @ stickout_right iv ovl in
  commit t left ovl pieces right

let query t iv ~f =
  let rec go n =
    match n with
    | Leaf -> ()
    | Node nd ->
        visit t;
        if nd.iv.Interval.lo > iv.Interval.hi then go nd.left
        else if nd.iv.Interval.hi < iv.Interval.lo then go nd.right
        else begin
          go nd.left;
          f nd.iv nd.owner;
          go nd.right
        end
  in
  go t.root

let find t addr =
  let rec go n =
    match n with
    | Leaf -> None
    | Node nd ->
        visit t;
        if addr < nd.iv.Interval.lo then go nd.left
        else if addr > nd.iv.Interval.hi then go nd.right
        else Some (nd.iv, nd.owner)
  in
  go t.root

let iter t ~f = List.iter (fun (iv, o) -> f iv o) (in_order t.root [])
let to_list t = in_order t.root []

let reset t =
  t.root <- Leaf;
  t.size <- 0;
  t.covered <- 0

let validate t =
  let fail fmt = Printf.ksprintf failwith fmt in
  let entries = to_list t in
  let n = List.length entries in
  if n <> t.size then fail "size ledger %d but %d entries" t.size n;
  let w = List.fold_left (fun w (iv, _) -> w + Interval.width iv) 0 entries in
  if w <> t.covered then fail "covered ledger %d but %d covered" t.covered w;
  let rec check_pairs = function
    | (iv1, o1) :: ((iv2, o2) :: _ as rest) ->
        if iv2.Interval.lo <= iv1.Interval.hi then
          fail "overlap: %s vs %s" (Interval.to_string iv1) (Interval.to_string iv2);
        if t.owner_eq o1 o2 && iv1.Interval.hi + 1 = iv2.Interval.lo then
          fail "uncoalesced same-owner neighbours at %d" iv2.Interval.lo;
        check_pairs rest
    | _ -> ()
  in
  check_pairs entries;
  let rec check_heap = function
    | Leaf -> ()
    | Node nd ->
        (match nd.left with
        | Node l when l.prio > nd.prio -> fail "heap violation (left) at %d" nd.iv.Interval.lo
        | _ -> ());
        (match nd.right with
        | Node r when r.prio > nd.prio -> fail "heap violation (right) at %d" nd.iv.Interval.lo
        | _ -> ());
        check_heap nd.left;
        check_heap nd.right
  in
  check_heap t.root
