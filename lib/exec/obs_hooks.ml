(* Driver instrumentation: wrap any detector driver so that every strand
   finish stamps the record with the observability clock and emits a
   finish instant on the finishing worker's "core<w>" track.  Same wrapping
   shape as [Tracefile.capturing]; composes with it freely.

   Ordering matters: [obs_ts] is written before the inner [on_finish]
   runs, i.e. strictly before [Trace.push] publishes the record to the
   pipeline — so the stages' latency reads are covered by the Srec
   publication discipline (OWNERSHIP.md, [Srec.t.*]). *)

let instrument (obs : Obs.t) (driver : Hooks.driver) : Hooks.driver =
 fun ctx ->
  let h = driver ctx in
  if not (Obs.enabled obs) then h
  else begin
    let rings =
      Array.init ctx.Hooks.n_workers (fun w -> Obs.track obs (Printf.sprintf "core%d" w))
    in
    {
      h with
      Hooks.on_finish =
        (fun ~wid u kind ->
          let r = rings.(wid) in
          let ts = Evring.now r in
          u.Srec.obs_ts <- ts;
          Evring.emit_at r ~ts ~kind:Ev.strand_finish ~arg:u.Srec.uid;
          h.Hooks.on_finish ~wid u kind);
    }
  end
