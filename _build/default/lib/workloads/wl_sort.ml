(* sort — parallel mergesort in the cilksort style.

   [msort src dst tmp] sorts [src] into [dst] using [tmp] as scratch: the
   two halves are sorted in parallel into the scratch halves, then merged
   in parallel back into [dst].  The parallel merge splits the larger run
   at its median, binary-searches the split point in the other run, and
   recursively merges the two independent parts into disjoint output
   ranges.  Runs below [base] fall back to sequential insertion sort /
   sequential merge kernels that announce bulk intervals.

   The racy variant merges with an off-by-one split so the two sub-merges
   overlap by one output slot. *)

let announce_r buf off len = if len > 0 then Access.emit_read ~addr:(Membuf.base_f buf + off) ~len
let announce_w buf off len = if len > 0 then Access.emit_write ~addr:(Membuf.base_f buf + off) ~len

(* sequential insertion sort of [src[lo,hi)] into [dst[dlo,...)] *)
let seq_sort src lo hi dst dlo =
  let n = hi - lo in
  announce_r src lo n;
  announce_w dst dlo n;
  Access.emit_compute ~amount:(4 * n);
  for k = 0 to n - 1 do
    Membuf.poke_f dst (dlo + k) (Membuf.peek_f src (lo + k))
  done;
  for i = 1 to n - 1 do
    let v = Membuf.peek_f dst (dlo + i) in
    let j = ref (i - 1) in
    while !j >= 0 && Membuf.peek_f dst (dlo + !j) > v do
      Membuf.poke_f dst (dlo + !j + 1) (Membuf.peek_f dst (dlo + !j));
      decr j
    done;
    Membuf.poke_f dst (dlo + !j + 1) v
  done

(* sequential merge of src[l0,l1) and src[r0,r1) into dst[d,...) *)
let seq_merge src l0 l1 r0 r1 dst d =
  announce_r src l0 (l1 - l0);
  announce_r src r0 (r1 - r0);
  announce_w dst d (l1 - l0 + (r1 - r0));
  Access.emit_compute ~amount:(2 * (l1 - l0 + (r1 - r0)));
  let i = ref l0 and j = ref r0 and k = ref d in
  while !i < l1 && !j < r1 do
    if Membuf.peek_f src !i <= Membuf.peek_f src !j then begin
      Membuf.poke_f dst !k (Membuf.peek_f src !i);
      incr i
    end
    else begin
      Membuf.poke_f dst !k (Membuf.peek_f src !j);
      incr j
    end;
    incr k
  done;
  while !i < l1 do
    Membuf.poke_f dst !k (Membuf.peek_f src !i);
    incr i;
    incr k
  done;
  while !j < r1 do
    Membuf.poke_f dst !k (Membuf.peek_f src !j);
    incr j;
    incr k
  done

(* first index in src[lo,hi) with src[idx] >= v *)
let lower_bound src lo hi v =
  let lo = ref lo and hi = ref hi in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if Membuf.peek_f src mid < v then lo := mid + 1 else hi := mid
  done;
  !lo

let rec par_merge ~skew base src l0 l1 r0 r1 dst d =
  let ln = l1 - l0 and rn = r1 - r0 in
  if ln + rn <= base then seq_merge src l0 l1 r0 r1 dst d
  else if ln < rn then par_merge ~skew base src r0 r1 l0 l1 dst d
  else begin
    (* split the larger (left) run at its median *)
    let lm = (l0 + l1) / 2 in
    announce_r src lm 1;
    let pivot = Membuf.peek_f src lm in
    let rm = lower_bound src r0 r1 pivot in
    announce_r src r0 (max 1 (r1 - r0));
    (* [skew] shifts the right sub-merge's output one slot left, making the
       two sub-merges overlap — the injected race *)
    let d2 = d + (lm - l0) + (rm - r0) - skew in
    Fj.scope (fun () ->
        Fj.spawn (fun () -> par_merge ~skew base src l0 lm r0 rm dst d);
        par_merge ~skew base src lm l1 rm r1 dst d2;
        Fj.sync ())
  end

let rec msort ~skew base src lo hi dst dlo tmp tlo =
  let n = hi - lo in
  if n <= base then seq_sort src lo hi dst dlo
  else begin
    let half = n / 2 in
    Fj.scope (fun () ->
        Fj.spawn (fun () -> msort ~skew base src lo (lo + half) tmp tlo dst dlo);
        msort ~skew base src (lo + half) hi tmp (tlo + half) dst (dlo + half);
        Fj.sync ());
    par_merge ~skew base tmp tlo (tlo + half) (tlo + half) (tlo + n) dst dlo
  end

let make_gen ~skew ~size ~base =
  let n = size in
  let state = ref None in
  let run () =
    let src = Fj.alloc_f n and dst = Fj.alloc_f n and tmp = Fj.alloc_f n in
    let rng = Rng.create 5150 in
    let sum = ref 0. in
    for i = 0 to n - 1 do
      let v = Rng.float rng in
      Membuf.poke_f src i v;
      sum := !sum +. v
    done;
    state := Some (dst, !sum);
    msort ~skew base src 0 n dst 0 tmp 0
  in
  let check () =
    match !state with
    | None -> false
    | Some (dst, want_sum) ->
        let ok = ref true in
        let sum = ref (Membuf.peek_f dst 0) in
        for i = 1 to n - 1 do
          if Membuf.peek_f dst i < Membuf.peek_f dst (i - 1) then ok := false;
          sum := !sum +. Membuf.peek_f dst i
        done;
        !ok && Float.abs (!sum -. want_sum) < 1e-6 *. float_of_int n
  in
  { Workload.run; check }

let workload =
  {
      Workload.name = "sort";
      description = "parallel mergesort with parallel merge (cilksort)";
      default_size = 32768;
      default_base = 512;
      make = (fun ~size ~base -> make_gen ~skew:0 ~size ~base);
      racy = Some (fun ~size ~base -> make_gen ~skew:1 ~size ~base);
    }
