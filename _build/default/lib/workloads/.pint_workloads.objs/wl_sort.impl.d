lib/workloads/wl_sort.ml: Access Fj Float Membuf Rng Workload
