exception Error of string

let error fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

let magic = "PINTRACE"
let current_version = 1

type finish =
  | Spawn of { cont : int; sync : int; child : int; first : bool }
  | Return of { cont_stolen : bool; parent_sync : int option }
  | Sync of { trivial : bool; sync : int }
  | Root

type entry = {
  uid : int;
  start : Events.start_kind;
  finish : finish;
  reads : Interval.t array;
  writes : Interval.t array;
  clears : (int * int) list;
  frees : (int * int) list;
  raw_reads : int;
  raw_writes : int;
  work : int;
  compute : int;
  finished_at : int;
  cost : int;
}

type t = { version : int; meta : (string * string) list; entries : entry array }

let entry_count t = Array.length t.entries

let root t =
  match Array.find_opt (fun e -> e.start = Events.S_root) t.entries with
  | Some e -> e
  | None -> error "trace has no root strand"

let find t uid =
  match Array.find_opt (fun e -> e.uid = uid) t.entries with
  | Some e -> e
  | None -> error "trace references unknown strand uid %d" uid

let meta_find t key =
  List.find_map (fun (k, v) -> if k = key then Some v else None) t.meta

let is_boundary = function
  | Events.S_cont { stolen = true } | Events.S_after_sync { trivial = false } -> true
  | _ -> false

let boundary_count t =
  Array.fold_left (fun acc e -> if is_boundary e.start then acc + 1 else acc) 0 t.entries

let interval_totals t =
  Array.fold_left
    (fun (r, w) e -> (r + Array.length e.reads, w + Array.length e.writes))
    (0, 0) t.entries

(* ---------------------------------------------------------------- encoding *)

let start_tag = function
  | Events.S_root -> 0
  | Events.S_child -> 1
  | Events.S_cont { stolen = false } -> 2
  | Events.S_cont { stolen = true } -> 3
  | Events.S_after_sync { trivial = true } -> 4
  | Events.S_after_sync { trivial = false } -> 5

let start_of_tag = function
  | 0 -> Events.S_root
  | 1 -> Events.S_child
  | 2 -> Events.S_cont { stolen = false }
  | 3 -> Events.S_cont { stolen = true }
  | 4 -> Events.S_after_sync { trivial = true }
  | 5 -> Events.S_after_sync { trivial = false }
  | n -> error "bad start-kind tag %d" n

let bool_byte b = if b then 1 else 0

let bool_of_byte = function
  | 0 -> false
  | 1 -> true
  | n -> error "bad boolean byte %d" n

let put_intervals buf (ivs : Interval.t array) =
  Varint.write buf (Array.length ivs);
  let prev = ref 0 in
  Array.iter
    (fun (iv : Interval.t) ->
      if iv.Interval.lo < !prev then error "interval set not sorted at %d" iv.Interval.lo;
      Varint.write buf (iv.Interval.lo - !prev);
      Varint.write buf (iv.Interval.hi - iv.Interval.lo);
      prev := iv.Interval.hi)
    ivs

(* The streaming decoder parses structure before the trailing CRC can be
   verified, so every count read from the wire is bounded before it sizes
   an allocation: a corrupt length field must raise [Error], not OOM. *)
let check_count ~max what n =
  if n > max then error "corrupt trace body: implausible %s count %d" what n

let get_intervals ~max c =
  let n = Varint.read c in
  check_count ~max "interval" n;
  let prev = ref 0 in
  Array.init n (fun _ ->
      let lo = !prev + Varint.read c in
      let hi = lo + Varint.read c in
      prev := hi;
      Interval.make lo hi)

let put_ranges buf rs =
  Varint.write buf (List.length rs);
  List.iter
    (fun (b, l) ->
      Varint.write buf b;
      Varint.write buf l)
    rs

let get_ranges ~max c =
  let n = Varint.read c in
  check_count ~max "range" n;
  List.init n (fun _ ->
      let b = Varint.read c in
      let l = Varint.read c in
      (b, l))

let put_entry buf e =
  Varint.write buf e.uid;
  Buffer.add_char buf (Char.chr (start_tag e.start));
  (match e.finish with
  | Root -> Buffer.add_char buf '\000'
  | Spawn { cont; sync; child; first } ->
      Buffer.add_char buf '\001';
      Varint.write buf cont;
      Varint.write buf sync;
      Varint.write buf child;
      Buffer.add_char buf (Char.chr (bool_byte first))
  | Return { cont_stolen; parent_sync } ->
      Buffer.add_char buf '\002';
      Buffer.add_char buf (Char.chr (bool_byte cont_stolen));
      Varint.write buf (match parent_sync with None -> 0 | Some u -> u + 1)
  | Sync { trivial; sync } ->
      Buffer.add_char buf '\003';
      Buffer.add_char buf (Char.chr (bool_byte trivial));
      Varint.write buf sync);
  put_intervals buf e.reads;
  put_intervals buf e.writes;
  put_ranges buf e.clears;
  put_ranges buf e.frees;
  Varint.write buf e.raw_reads;
  Varint.write buf e.raw_writes;
  Varint.write buf e.work;
  Varint.write buf e.compute;
  Varint.write buf e.finished_at;
  Varint.write buf e.cost

let get_entry ~max c =
  let uid = Varint.read c in
  let start = start_of_tag (Varint.read_byte c) in
  let finish =
    match Varint.read_byte c with
    | 0 -> Root
    | 1 ->
        let cont = Varint.read c in
        let sync = Varint.read c in
        let child = Varint.read c in
        let first = bool_of_byte (Varint.read_byte c) in
        Spawn { cont; sync; child; first }
    | 2 ->
        let cont_stolen = bool_of_byte (Varint.read_byte c) in
        let ps = Varint.read c in
        Return { cont_stolen; parent_sync = (if ps = 0 then None else Some (ps - 1)) }
    | 3 ->
        let trivial = bool_of_byte (Varint.read_byte c) in
        let sync = Varint.read c in
        Sync { trivial; sync }
    | n -> error "bad finish-kind tag %d" n
  in
  let reads = get_intervals ~max c in
  let writes = get_intervals ~max c in
  let clears = get_ranges ~max c in
  let frees = get_ranges ~max c in
  let raw_reads = Varint.read c in
  let raw_writes = Varint.read c in
  let work = Varint.read c in
  let compute = Varint.read c in
  let finished_at = Varint.read c in
  let cost = Varint.read c in
  {
    uid;
    start;
    finish;
    reads;
    writes;
    clears;
    frees;
    raw_reads;
    raw_writes;
    work;
    compute;
    finished_at;
    cost;
  }

let to_bytes t =
  let body = Buffer.create 4096 in
  Varint.write body t.version;
  Varint.write body (List.length t.meta);
  List.iter
    (fun (k, v) ->
      Varint.write body (String.length k);
      Buffer.add_string body k;
      Varint.write body (String.length v);
      Buffer.add_string body v)
    t.meta;
  Varint.write body (Array.length t.entries);
  Array.iter (fun e -> put_entry body e) t.entries;
  let body = Buffer.contents body in
  let crc = Crc32.digest body in
  let out = Buffer.create (String.length body + 12) in
  Buffer.add_string out magic;
  Buffer.add_string out body;
  for i = 0 to 3 do
    Buffer.add_char out
      (Char.chr (Int32.to_int (Int32.logand (Int32.shift_right_logical crc (8 * i)) 0xFFl)))
  done;
  Buffer.contents out

(* ---------------------------------------------------------------- decoding *)

(* Resumable streaming decoder: consumes arbitrary byte chunks, yields
   complete entries as soon as they parse, and carries all varint / CRC
   state across chunk boundaries.  The whole-file [of_bytes] below is a
   thin wrapper (one feed, one finish), so this state machine is THE
   parser for the format.

   The buffer-and-retry discipline: [pending.[off ..]] holds the bytes of
   the item currently being assembled.  Each pump attempt parses one whole
   item (the header, one entry, the CRC trailer) from a fresh cursor; if
   the bytes run out mid-item the attempt raises [Need_more] and nothing
   is consumed — the retry after the next feed re-parses from the item
   start, which is what carries a varint split across chunks.  Only a
   complete item advances [off] and folds its bytes into the running CRC.

   Entries handed out before the trailer arrives are provisional: the
   CRC-32 over the body is only checkable once every entry has been
   consumed.  [finish] (or reaching [C_done]) is the integrity verdict. *)

exception Need_more

type decoder_state =
  | C_magic (* expecting the 8 magic bytes (not CRC-covered) *)
  | C_header (* version + meta + n_entries, one atomic item *)
  | C_entries (* n_entries × entry *)
  | C_crc (* the 4-byte LE trailer *)
  | C_done

type decoder = {
  mutable pending : string; (* fed, not yet consumed (plus a consumed prefix) *)
  mutable off : int; (* consumed prefix length within [pending] *)
  mutable crc : int32; (* running register over consumed body bytes *)
  mutable state : decoder_state;
  mutable d_version : int;
  mutable d_meta : (string * string) list;
  mutable d_expected : int; (* n_entries, valid once past C_header *)
  mutable d_decoded : int;
  mutable d_fed : int; (* total bytes ever fed *)
  d_out : entry Queue.t; (* decoded, not yet taken by [next] *)
  d_max : int; (* max bytes of one unconsumed item; also the count bound *)
}

module Decoder = struct
  type t = decoder

  let default_max_pending = 16 * 1024 * 1024

  let create ?(max_pending = default_max_pending) () =
    {
      pending = "";
      off = 0;
      crc = Crc32.init;
      state = C_magic;
      d_version = 0;
      d_meta = [];
      d_expected = 0;
      d_decoded = 0;
      d_fed = 0;
      d_out = Queue.create ();
      d_max = max max_pending 16;
    }

  let available d = String.length d.pending - d.off

  (* Parse one item with the shared cursor readers.  Truncation means the
     item is split across a chunk boundary — retry after more bytes;
     anything else (varint overflow) is malformation. *)
  let item d f =
    let c = { Varint.data = d.pending; pos = d.off } in
    match f c with
    | v -> (v, c.Varint.pos - d.off)
    | exception Failure m ->
        if m = "Varint: truncated input" then raise Need_more
        else error "corrupt trace body: %s" m

  let consume d ~in_crc n =
    if in_crc then d.crc <- Crc32.update d.crc d.pending ~pos:d.off ~len:n;
    d.off <- d.off + n

  let read_header c ~max =
    let version = Varint.read c in
    if version <> current_version then
      error "unsupported trace version %d (this build reads %d)" version current_version;
    let n_meta = Varint.read c in
    check_count ~max "metadata" n_meta;
    let meta =
      List.init n_meta (fun _ ->
          let klen = Varint.read c in
          check_count ~max "metadata key byte" klen;
          let k = Varint.read_string c klen in
          let vlen = Varint.read c in
          check_count ~max "metadata value byte" vlen;
          let v = Varint.read_string c vlen in
          (k, v))
    in
    let n = Varint.read c in
    check_count ~max "entry" n;
    (version, meta, n)

  let rec pump d =
    match d.state with
    | C_magic ->
        let mlen = String.length magic in
        if available d >= mlen then begin
          if String.sub d.pending d.off mlen <> magic then
            error "bad magic (not a PINT trace file)";
          consume d ~in_crc:false mlen;
          d.state <- C_header;
          pump d
        end
    | C_header ->
        let (version, meta, n), used = item d (read_header ~max:d.d_max) in
        consume d ~in_crc:true used;
        d.d_version <- version;
        d.d_meta <- meta;
        d.d_expected <- n;
        d.state <- (if n = 0 then C_crc else C_entries);
        pump d
    | C_entries ->
        while d.d_decoded < d.d_expected do
          let e, used = item d (get_entry ~max:d.d_max) in
          consume d ~in_crc:true used;
          Queue.push e d.d_out;
          d.d_decoded <- d.d_decoded + 1
        done;
        d.state <- C_crc;
        pump d
    | C_crc ->
        if available d >= 4 then begin
          let stored =
            let b i = Int32.of_int (Char.code d.pending.[d.off + i]) in
            List.fold_left Int32.logor 0l
              [
                b 0;
                Int32.shift_left (b 1) 8;
                Int32.shift_left (b 2) 16;
                Int32.shift_left (b 3) 24;
              ]
          in
          let actual = Crc32.finalize d.crc in
          if stored <> actual then
            error "CRC mismatch (stored %08lx, computed %08lx)" stored actual;
          consume d ~in_crc:false 4;
          d.state <- C_done;
          pump d
        end
    | C_done -> if available d > 0 then error "trailing bytes after last entry"

  let feed d ?(pos = 0) ?len s =
    let len = match len with Some l -> l | None -> String.length s - pos in
    if pos < 0 || len < 0 || pos + len > String.length s then
      invalid_arg "Tracefile.Decoder.feed: bad range";
    d.d_fed <- d.d_fed + len;
    if len > 0 then begin
      (* compact: drop the consumed prefix while appending the chunk *)
      let keep = available d in
      if keep = 0 then d.pending <- String.sub s pos len
      else begin
        let b = Bytes.create (keep + len) in
        Bytes.blit_string d.pending d.off b 0 keep;
        Bytes.blit_string s pos b keep len;
        d.pending <- Bytes.unsafe_to_string b
      end;
      d.off <- 0
    end;
    (try pump d with Need_more -> ());
    if available d > d.d_max then
      error "decoder buffer overflow: one item exceeds %d pending bytes" d.d_max

  let next d = Queue.take_opt d.d_out

  let header d = if d.state = C_magic || d.state = C_header then None
    else Some (d.d_version, d.d_meta)

  let complete d = d.state = C_done

  let fed_bytes d = d.d_fed
  let entries_decoded d = d.d_decoded

  let entries_expected d =
    if d.state = C_magic || d.state = C_header then None else Some d.d_expected

  let finish d =
    if d.state <> C_done then
      error "trace truncated mid-stream (%d bytes fed, %d/%s entries decoded)" d.d_fed
        d.d_decoded
        (match entries_expected d with Some n -> string_of_int n | None -> "?")
end

let of_bytes s =
  (* the whole image is one chunk, so no single item can out-size it *)
  let d = Decoder.create ~max_pending:(String.length s) () in
  Decoder.feed d s;
  Decoder.finish d;
  let entries = Array.init d.d_decoded (fun _ -> Queue.take d.d_out) in
  { version = d.d_version; meta = d.d_meta; entries }

let write t path =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (to_bytes t))

let load path =
  let ic = open_in_bin path in
  let s =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  of_bytes s

(* ----------------------------------------------------------------- capture *)

(* Entry under assembly: the child uid of a spawn is only known when the
   spawned function's first strand starts (executors start it on the same
   worker immediately after the spawn finish), so it stays mutable until
   the file is frozen. *)
type draft = {
  d_uid : int;
  d_start : Events.start_kind;
  d_finish : finish;
  mutable d_child : int; (* -1 = unresolved; only meaningful for Spawn *)
  d_reads : Interval.t array;
  d_writes : Interval.t array;
  d_clears : (int * int) list;
  d_frees : (int * int) list;
  d_raw_reads : int;
  d_raw_writes : int;
  d_work : int;
  d_compute : int;
  d_finished_at : int;
  d_cost : int;
}

let capturing ?(meta = []) (inner : Hooks.driver) : Hooks.driver * (unit -> t) =
  let result = ref None in
  let driver (ctx : Hooks.ctx) =
    let h = inner ctx in
    let n = ctx.Hooks.n_workers in
    (* Per-worker state needs no lock; the shared draft list and start-kind
       table do (the parallel executor finishes strands on many domains). *)
    let coals = Array.init n (fun _ -> Coalescer.create ()) in
    let frees = Array.make n [] in
    let pending_child : draft option array = Array.make n None in
    let lock = Mutex.create () in
    let started : (int, Events.start_kind) Hashtbl.t = Hashtbl.create 1024 in
    let drafts = ref [] in
    let sink ~wid =
      let s = h.Hooks.sink ~wid in
      let coal = coals.(wid) in
      {
        Access.on_read =
          (fun ~addr ~len ->
            Coalescer.add_read coal ~addr ~len;
            s.Access.on_read ~addr ~len);
        on_write =
          (fun ~addr ~len ->
            Coalescer.add_write coal ~addr ~len;
            s.Access.on_write ~addr ~len);
        on_free =
          (fun ~base ~len ->
            frees.(wid) <- (base, len) :: frees.(wid);
            s.Access.on_free ~base ~len);
        on_compute = (fun ~amount -> s.Access.on_compute ~amount);
      }
    in
    let on_start ~wid (r : Srec.t) kind =
      Mutex.lock lock;
      Hashtbl.replace started r.Srec.uid kind;
      (match (pending_child.(wid), kind) with
      | Some d, Events.S_child ->
          d.d_child <- r.Srec.uid;
          pending_child.(wid) <- None
      | _ -> ());
      Mutex.unlock lock;
      h.Hooks.on_start ~wid r kind
    in
    let on_finish ~wid (u : Srec.t) kind =
      let reads, writes = Coalescer.finish coals.(wid) in
      let fl = List.rev frees.(wid) in
      frees.(wid) <- [];
      let fin =
        match kind with
        | Events.F_root -> Root
        | Events.F_spawn { cont; sync; first_of_block } ->
            Spawn { cont = cont.Srec.uid; sync = sync.Srec.uid; child = -1; first = first_of_block }
        | Events.F_return { cont_stolen; parent_sync } ->
            Return
              { cont_stolen; parent_sync = Option.map (fun (s : Srec.t) -> s.Srec.uid) parent_sync }
        | Events.F_sync { trivial; sync } -> Sync { trivial; sync = sync.Srec.uid }
      in
      Mutex.lock lock;
      let start =
        match Hashtbl.find_opt started u.Srec.uid with
        | Some k -> k
        | None ->
            Mutex.unlock lock;
            error "strand %d finished without starting" u.Srec.uid
      in
      let d =
        {
          d_uid = u.Srec.uid;
          d_start = start;
          d_finish = fin;
          d_child = -1;
          d_reads = reads;
          d_writes = writes;
          d_clears = u.Srec.clears;
          d_frees = fl;
          d_raw_reads = u.Srec.raw_reads;
          d_raw_writes = u.Srec.raw_writes;
          d_work = u.Srec.work;
          d_compute = u.Srec.compute;
          d_finished_at = u.Srec.finished_at;
          d_cost = u.Srec.cost;
        }
      in
      drafts := d :: !drafts;
      (match fin with Spawn _ -> pending_child.(wid) <- Some d | _ -> ());
      Mutex.unlock lock;
      h.Hooks.on_finish ~wid u kind
    in
    let on_done () =
      h.Hooks.on_done ();
      let entries =
        List.rev_map
          (fun d ->
            let finish =
              match d.d_finish with
              | Spawn { cont; sync; child = _; first } ->
                  if d.d_child < 0 then
                    error "spawn strand %d has no recorded child strand" d.d_uid;
                  Spawn { cont; sync; child = d.d_child; first }
              | f -> f
            in
            {
              uid = d.d_uid;
              start = d.d_start;
              finish;
              reads = d.d_reads;
              writes = d.d_writes;
              clears = d.d_clears;
              frees = d.d_frees;
              raw_reads = d.d_raw_reads;
              raw_writes = d.d_raw_writes;
              work = d.d_work;
              compute = d.d_compute;
              finished_at = d.d_finished_at;
              cost = d.d_cost;
            })
          !drafts
      in
      let meta = meta @ [ ("n_workers", string_of_int n) ] in
      result := Some { version = current_version; meta; entries = Array.of_list entries }
    in
    { Hooks.sink; on_start; on_finish; on_done }
  in
  let get () =
    match !result with
    | Some t -> t
    | None -> error "capture: the run has not completed (on_done never fired)"
  in
  (driver, get)

let capture ?meta ~path inner =
  let driver, get = capturing ?meta inner in
  fun ctx ->
    let h = driver ctx in
    {
      h with
      Hooks.on_done =
        (fun () ->
          h.Hooks.on_done ();
          write (get ()) path);
    }
