(** The pint_serve daemon: N concurrent PINTRACE sessions over Unix or TCP
    sockets, one replay-driven detector per session, all pipeline stages on
    one shared micropool.

    Single-threaded IO: accepts, reads, frame reassembly, trace decoding
    and strand replay all run on the serving thread ([serve]), which is
    what makes every session's decoder and walk state single-owner
    (OWNERSHIP.md).  The only cross-domain traffic is the one each detector
    already has — its AHQ lanes to the shared pool workers — plus the
    per-slot completion atomics of {!Micropool.submit}.

    Per-tenant isolation and graceful degradation:
    - admission control — at most [max_sessions] live sessions; an
      over-capacity connection is answered with a framed ['X'] reject and
      closed, never queued or stalled;
    - backpressure — a session whose pipeline backlog (strands fed minus
      strands collected) exceeds [backlog_high] stops being read until the
      shared pool catches up, so flow control propagates to that client's
      socket without affecting other tenants; pair with [bp_rounds] (see
      {!Pint_detector.recommended_bp_rounds}) to also smooth transient
      full-lane rejects inside the collector;
    - per-session observability — each session carries its own {!Obs}
      session (monotonic clock): detector stage tracks, a ["serve.feed_us"]
      latency histogram per Data frame, with the summary merged into the
      final ['S'] frame.

    See DESIGN.md §14 for the session state machine. *)

type config = {
  detector : string;  (** detector name per {!Systems.make_detector} *)
  max_sessions : int;  (** admission cap *)
  pool_workers : int;  (** shared micropool domains *)
  shards : int;  (** default shard count (client may request its own) *)
  bp_rounds : int;  (** collector backpressure window, 0 = reject path *)
  backlog_high : int;  (** feed-minus-collected watermark that pauses reads *)
  max_frame : int;  (** wire-frame payload cap *)
  max_pending : int;  (** per-session decoder buffer cap *)
  obs_capacity : int option;  (** per-track ring size, [None] = default *)
  max_window : int;
      (** largest prediction window a Hello may request; requests above it
          are rejected, 0 disables predict sessions entirely (cost control:
          window-bounded prediction is super-linear in the window) *)
}

val default_config : config

type t

(** [create ?config addr] binds and listens on [addr] (Unix or TCP) and
    spawns the shared pool.  @raise Unix.Unix_error on bind failure. *)
val create : ?config:config -> Unix.sockaddr -> t

(** The bound address (resolves port 0 to the actual port). *)
val sockaddr : t -> Unix.sockaddr

(** Run the IO loop until {!stop}, then shut down gracefully: abort live
    sessions (their leases complete, so pool workers never wedge), flush
    pending frames, join the pool, remove a Unix socket path.  [poll]
    (default 20 ms) is the select timeout that paces lease polling. *)
val serve : ?poll:float -> t -> unit

(** Signal-handler-safe: flips an atomic the {!serve} loop observes. *)
val stop : t -> unit

(** One IO iteration (accept/read/write/drain); exposed for in-process
    harnesses that multiplex the server with other work on one thread. *)
val once : t -> timeout:float -> unit

(** Manual shutdown for harnesses driving {!once} directly. *)
val shutdown : t -> unit

(** Daemon-level counters:
    [serve.accepted/rejected/completed/failed/pool_parks]. *)
val stats : t -> (string * float) list
