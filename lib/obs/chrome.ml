(* Chrome trace-event JSON exporter (the chrome://tracing / Perfetto
   format): one thread per track, metadata "thread_name" records naming
   them, spans as "X" complete events, occupancy samples as "C" counters,
   everything else as thread-scoped instants.

   Determinism: all payloads are ints rendered with %d and tracks are
   emitted in registration order with a stable per-track sort on ts, so a
   deterministic run (virtual clock, fixed seed) exports byte-identical
   JSON. *)

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Per-track stable sort: a ring's events are emitted in owner-program
   order, but a span's start can precede instants emitted during the step
   (the span is appended when the step ends).  Sorting by ts — stable, so
   equal timestamps keep emission order — restores per-track monotone ts,
   which Perfetto requires and the schema test checks. *)
let sorted_events ring =
  let n = Evring.retained ring in
  let ts = Array.make n 0 and dur = Array.make n 0 in
  let kind = Array.make n 0 and arg = Array.make n 0 in
  let i = ref 0 in
  Evring.iter ring (fun ~ts:t ~dur:d ~kind:k ~arg:a ->
      ts.(!i) <- t;
      dur.(!i) <- d;
      kind.(!i) <- k;
      arg.(!i) <- a;
      incr i);
  let idx = Array.init n (fun k -> k) in
  Array.stable_sort (fun a b -> compare (ts.(a) : int) ts.(b)) idx;
  (idx, ts, dur, kind, arg)

let add_event buf ~tid ~ts ~dur ~kind ~arg ~first =
  if not first then Buffer.add_string buf ",\n";
  let name = Ev.name kind and lbl = Ev.arg_label kind in
  if Ev.is_span kind then
    Buffer.add_string buf
      (Printf.sprintf
         "    {\"ph\":\"X\",\"pid\":0,\"tid\":%d,\"ts\":%d,\"dur\":%d,\"name\":\"%s\",\"args\":{\"%s\":%d}}"
         tid ts dur name lbl arg)
  else if Ev.is_counter kind then
    Buffer.add_string buf
      (Printf.sprintf
         "    {\"ph\":\"C\",\"pid\":0,\"tid\":%d,\"ts\":%d,\"name\":\"%s\",\"args\":{\"%s\":%d}}"
         tid ts name lbl arg)
  else
    Buffer.add_string buf
      (Printf.sprintf
         "    {\"ph\":\"i\",\"s\":\"t\",\"pid\":0,\"tid\":%d,\"ts\":%d,\"name\":\"%s\",\"args\":{\"%s\":%d}}"
         tid ts name lbl arg)

let export ?(meta = []) ~(tracks : (string * Evring.t) list) () =
  let buf = Buffer.create 65536 in
  Buffer.add_string buf "{\n\"displayTimeUnit\":\"ms\",\n\"otherData\":{";
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_string buf ",";
      Buffer.add_string buf (Printf.sprintf "\"%s\":\"%s\"" (escape k) (escape v)))
    meta;
  Buffer.add_string buf "},\n\"traceEvents\":[\n";
  let first = ref true in
  List.iteri
    (fun i (name, ring) ->
      let tid = i + 1 in
      if not !first then Buffer.add_string buf ",\n";
      first := false;
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"ph\":\"M\",\"pid\":0,\"tid\":%d,\"ts\":0,\"name\":\"thread_name\",\"args\":{\"name\":\"%s\"}}"
           tid (escape name));
      let idx, ts, dur, kind, arg = sorted_events ring in
      Array.iter
        (fun k ->
          add_event buf ~tid ~ts:ts.(k) ~dur:dur.(k) ~kind:kind.(k) ~arg:arg.(k) ~first:false)
        idx)
    tracks;
  Buffer.add_string buf "\n]}\n";
  Buffer.contents buf
