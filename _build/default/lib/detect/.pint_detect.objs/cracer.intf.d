lib/detect/cracer.mli: Detector
