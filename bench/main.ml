(* Benchmark executable.

   Two parts:
   1. Regenerates every evaluation table of the paper (Figures 1-4) from the
      virtual-time harness — these are the rows EXPERIMENTS.md quotes.
   2. Bechamel wall-clock microbenchmarks of the real data structures and
      detectors (one Test.make group per figure plus the substrate ops), so
      the actual OCaml implementation cost of each component is measured,
      not simulated. *)

open Bechamel
open Toolkit

let small = 48 (* small workload size so each bechamel sample is a full run *)

let run_detector_once name workers detector () =
  let w = Registry.find name in
  let inst = w.Workload.make ~size:small ~base:8 in
  match detector with
  | `Baseline ->
      let d = Nodetect.make () in
      let config = { Sim_exec.default_config with n_workers = workers } in
      ignore (Sim_exec.run ~config ~driver:d.Detector.driver inst.Workload.run)
  | `Stint ->
      let d = Stint.make () in
      ignore (Seq_exec.run ~driver:d.Detector.driver inst.Workload.run)
  | `Cracer ->
      let d = Cracer.make () in
      let config = { Sim_exec.default_config with n_workers = workers } in
      ignore (Sim_exec.run ~config ~driver:d.Detector.driver inst.Workload.run)
  | `Pint ->
      let p = Pint_detector.make () in
      let d = Pint_detector.detector p in
      let config =
        { Sim_exec.default_config with n_workers = workers; stages = Pint_detector.stages p }
      in
      ignore (Sim_exec.run ~config ~driver:d.Detector.driver inst.Workload.run)

(* Figure 1 group: full detector runs on a small heat instance. *)
let fig1_tests =
  Test.make_grouped ~name:"fig1:heat48"
    [
      Test.make ~name:"baseline" (Staged.stage (run_detector_once "heat" 4 `Baseline));
      Test.make ~name:"stint" (Staged.stage (run_detector_once "heat" 4 `Stint));
      Test.make ~name:"pint" (Staged.stage (run_detector_once "heat" 4 `Pint));
      Test.make ~name:"cracer" (Staged.stage (run_detector_once "heat" 4 `Cracer));
    ]

(* Figure 2 group: the PINT pipeline at two base-case granularities (the
   strand/interval density is what the work breakdown depends on). *)
let fig2_tests =
  let go base () =
    let w = Registry.find "sort" in
    let inst = w.Workload.make ~size:4096 ~base in
    let p = Pint_detector.make () in
    let d = Pint_detector.detector p in
    let config =
      { Sim_exec.default_config with n_workers = 4; stages = Pint_detector.stages p }
    in
    ignore (Sim_exec.run ~config ~driver:d.Detector.driver inst.Workload.run)
  in
  Test.make_grouped ~name:"fig2:pint-pipeline"
    [
      Test.make ~name:"sort4096/b64" (Staged.stage (go 64));
      Test.make ~name:"sort4096/b256" (Staged.stage (go 256));
    ]

(* Figure 3 group: same computation at increasing simulated worker counts. *)
let fig3_tests =
  Test.make_grouped ~name:"fig3:strong-scaling"
    [
      Test.make ~name:"mmul/p1" (Staged.stage (run_detector_once "mmul" 1 `Pint));
      Test.make ~name:"mmul/p8" (Staged.stage (run_detector_once "mmul" 8 `Pint));
      Test.make ~name:"mmul/p32" (Staged.stage (run_detector_once "mmul" 32 `Pint));
    ]

(* Figure 4 group: weak-scaling step (size grows with workers). *)
let fig4_tests =
  let go size p () =
    let w = Registry.find "heat" in
    let inst = w.Workload.make ~size ~base:8 in
    let pd = Pint_detector.make () in
    let d = Pint_detector.detector pd in
    let config =
      { Sim_exec.default_config with n_workers = p; stages = Pint_detector.stages pd }
    in
    ignore (Sim_exec.run ~config ~driver:d.Detector.driver inst.Workload.run)
  in
  Test.make_grouped ~name:"fig4:weak-scaling"
    [
      Test.make ~name:"heat32/p1" (Staged.stage (go 32 1));
      Test.make ~name:"heat64/p4" (Staged.stage (go 64 4));
      Test.make ~name:"heat128/p16" (Staged.stage (go 128 16));
    ]

(* Substrate microbenchmarks: the individual data structures. *)
let substrate_tests =
  let treap_insert () =
    let t = Itreap.create ~seed:1 ~owner_eq:Int.equal () in
    for i = 0 to 999 do
      Itreap.insert_replace t (Interval.make (i * 7 mod 4096) ((i * 7 mod 4096) + 3)) i
    done
  in
  let treap_query () =
    let t = Itreap.create ~seed:1 ~owner_eq:Int.equal () in
    for i = 0 to 255 do
      Itreap.insert_replace t (Interval.make (i * 16) ((i * 16) + 7)) i
    done;
    let hits = ref 0 in
    for i = 0 to 999 do
      Itreap.query t (Interval.make (i mod 4096) ((i mod 4096) + 31)) ~f:(fun _ _ -> incr hits)
    done
  in
  let om_insert () =
    let om = Om.create () in
    let r = ref (Om.base om) in
    for _ = 1 to 1000 do
      r := Om.insert_after om !r
    done
  in
  let sp_query () =
    let sp, root = Sp_order.create () in
    let a, b, _ = Sp_order.spawn sp ~sync_pre:None root in
    let sink = ref false in
    for _ = 1 to 1000 do
      sink := Sp_order.parallel sp a b
    done
  in
  let coalescer () =
    let c = Coalescer.create () in
    for i = 0 to 999 do
      Coalescer.add_read c ~addr:(i * 2) ~len:1
    done;
    ignore (Coalescer.finish c)
  in
  let trace_pipe () =
    let _, root = Sp_order.create () in
    let tr = Trace.create ~id:0 ~owner:0 in
    for i = 0 to 999 do
      Trace.push tr (Srec.make ~uid:i root)
    done;
    for _ = 0 to 999 do
      ignore (Trace.peek tr);
      Trace.pop tr
    done
  in
  let ahq_pipe () =
    let _, root = Sp_order.create () in
    let q = Ahq.create ~capacity:2048 () in
    for i = 0 to 999 do
      ignore (Ahq.try_enqueue q (Srec.make ~uid:i root))
    done;
    for _ = 0 to 999 do
      ignore (Ahq.peek q Ahq.l);
      Ahq.advance q Ahq.l;
      ignore (Ahq.peek q Ahq.r);
      Ahq.advance q Ahq.r
    done
  in
  let ahq_pipe_batched () =
    (* same 1k records, consumed through the batched interface: one cursor
       update and one recycling scan per 32 records instead of per record *)
    let _, root = Sp_order.create () in
    let q = Ahq.create ~capacity:2048 () in
    for i = 0 to 999 do
      ignore (Ahq.try_enqueue q (Srec.make ~uid:i root))
    done;
    let drain side =
      let rec go () =
        let b = Ahq.peek_batch q side in
        if Array.length b > 0 then begin
          Ahq.advance_n q side (Array.length b);
          go ()
        end
      in
      go ()
    in
    drain Ahq.l;
    drain Ahq.r
  in
  Test.make_grouped ~name:"substrate"
    [
      Test.make ~name:"treap-1k-inserts" (Staged.stage treap_insert);
      Test.make ~name:"treap-1k-queries" (Staged.stage treap_query);
      Test.make ~name:"om-1k-inserts" (Staged.stage om_insert);
      Test.make ~name:"sporder-1k-queries" (Staged.stage sp_query);
      Test.make ~name:"coalescer-1k" (Staged.stage coalescer);
      Test.make ~name:"trace-1k-pipe" (Staged.stage trace_pipe);
      Test.make ~name:"ahq-1k-pipe" (Staged.stage ahq_pipe);
      Test.make ~name:"ahq-1k-pipe-batch32" (Staged.stage ahq_pipe_batched);
    ]

(* Minimal reporting: name + ns/run from the OLS estimate. *)
let report tests =
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.4) () in
  let instances = Instance.[ monotonic_clock ] in
  let raw = Benchmark.all cfg instances tests in
  let ols =
    Analyze.all
      (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |])
      Instance.monotonic_clock raw
  in
  let rows = Hashtbl.fold (fun name r acc -> (name, r) :: acc) ols [] in
  List.iter
    (fun (name, r) ->
      match Analyze.OLS.estimates r with
      | Some [ est ] -> Printf.printf "  %-40s %14.0f ns/run\n%!" name est
      | _ -> Printf.printf "  %-40s (no estimate)\n%!" name)
    (List.sort compare rows)

(* Per-stage pipeline diagnostics from one representative PINT run, so
   backpressure (writer stalls), idle spinning and the achieved AHQ batch
   size can be attributed stage by stage. *)
let print_stage_diagnostics () =
  let w = Registry.find "heat" in
  let inst = w.Workload.make ~size:small ~base:8 in
  let p = Pint_detector.make () in
  let d = Pint_detector.detector p in
  let config =
    { Sim_exec.default_config with n_workers = 4; stages = Pint_detector.stages p }
  in
  ignore (Sim_exec.run ~config ~driver:d.Detector.driver inst.Workload.run);
  d.Detector.drain ();
  print_endline "=== PINT per-stage pipeline diagnostics (heat48, 4 workers) ===";
  List.iter
    (fun (k, v) ->
      if
        String.length k > 6 && String.sub k 0 6 = "stage."
        || k = "writer_stalls" || k = "ahq_batch"
      then Printf.printf "  %-28s %12.1f\n" k v)
    (d.Detector.diagnostics ())

let () =
  print_endline "=== PINT evaluation tables (virtual-time harness) ===";
  print_newline ();
  let _, f1 = Figures.fig1 () in
  print_string f1;
  print_newline ();
  let _, f2 = Figures.fig2 () in
  print_string f2;
  print_newline ();
  let _, f3 = Figures.fig3 () in
  print_string f3;
  print_newline ();
  let _, f4 = Figures.fig4 () in
  print_string f4;
  print_newline ();
  print_stage_diagnostics ();
  print_newline ();
  print_endline "=== Bechamel wall-clock benchmarks (real implementation) ===";
  List.iter report [ fig1_tests; fig2_tests; fig3_tests; fig4_tests; substrate_tests ]
