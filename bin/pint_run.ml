(* pint_run — run one benchmark under a chosen executor and race detector.

   Examples:
     pint_run --workload sort --detector pint --exec sim --workers 8
     pint_run --workload heat --detector stint --exec seq --racy
     pint_run --workload mmul --detector cracer --exec par --workers 4 *)

open Cmdliner

type exec_kind = Seq | Sim | Par

let run_one workload detector exec workers size base racy seed max_report =
  let w =
    try Registry.find workload
    with Not_found ->
      Printf.eprintf "unknown workload %S; available: %s\n" workload
        (String.concat ", " (List.map (fun w -> w.Workload.name) (Registry.all ())));
      exit 2
  in
  let size = Option.value size ~default:w.Workload.default_size in
  let base = Option.value base ~default:w.Workload.default_base in
  let inst =
    if racy then
      match w.Workload.racy with
      | Some f -> f ~size ~base
      | None ->
          Printf.eprintf "workload %s has no racy variant\n" workload;
          exit 2
    else w.Workload.make ~size ~base
  in
  let pint = if detector = "pint" then Some (Pint_detector.make ()) else None in
  let det =
    match detector with
    | "none" -> Nodetect.make ()
    | "stint" -> Stint.make ()
    | "cracer" -> Cracer.make ()
    | "pint" -> Pint_detector.detector (Option.get pint)
    | other ->
        Printf.eprintf "unknown detector %S (none|stint|cracer|pint)\n" other;
        exit 2
  in
  Printf.printf "workload=%s size=%d base=%d detector=%s racy=%b\n%!" workload size base detector
    racy;
  (match exec with
  | Seq ->
      let r = Seq_exec.run ~driver:det.Detector.driver inst.Workload.run in
      Printf.printf "executor=seq strands=%d spawns=%d syncs=%d\n" r.Seq_exec.n_strands
        r.Seq_exec.n_spawns r.Seq_exec.n_syncs
  | Sim ->
      let stages = match pint with Some p -> Pint_detector.stages p | None -> [] in
      let config = { Sim_exec.default_config with n_workers = workers; seed; stages } in
      let r = Sim_exec.run ~config ~driver:det.Detector.driver inst.Workload.run in
      Printf.printf "executor=sim workers=%d strands=%d steals=%d makespan=%d total=%d\n" workers
        r.Sim_exec.n_strands r.Sim_exec.n_steals r.Sim_exec.makespan r.Sim_exec.total
  | Par ->
      let stages = match pint with Some p -> Pint_detector.stages p | None -> [] in
      let config = { Par_exec.n_workers = workers; seed; stages } in
      let r = Par_exec.run ~config ~driver:det.Detector.driver inst.Workload.run in
      Printf.printf "executor=par workers=%d strands=%d steals=%d elapsed=%.3fs\n" workers
        r.Par_exec.n_strands r.Par_exec.n_steals r.Par_exec.elapsed_s);
  let races = Detector.races det in
  Printf.printf "result check: %s\n" (if inst.Workload.check () then "PASS" else "FAIL (racy run?)");
  Printf.printf "races: %d distinct pair(s)\n" (List.length races);
  List.iteri
    (fun i r ->
      if i < max_report then Format.printf "  %a@." Report.pp_race r
      else if i = max_report then
        Printf.printf "  ... (%d more)\n" (List.length races - max_report))
    races;
  if racy && races = [] then exit 1

let workload_arg =
  Arg.(value & opt string "sort" & info [ "w"; "workload" ] ~doc:"Benchmark to run.")

let detector_arg =
  Arg.(value & opt string "pint" & info [ "d"; "detector" ] ~doc:"none|stint|cracer|pint.")

let exec_conv = Arg.enum [ ("seq", Seq); ("sim", Sim); ("par", Par) ]
let exec_arg = Arg.(value & opt exec_conv Sim & info [ "e"; "exec" ] ~doc:"Executor: seq, sim or par.")
let workers_arg = Arg.(value & opt int 4 & info [ "p"; "workers" ] ~doc:"Core workers.")
let size_arg = Arg.(value & opt (some int) None & info [ "n"; "size" ] ~doc:"Problem size.")
let base_arg = Arg.(value & opt (some int) None & info [ "b"; "base" ] ~doc:"Base-case size.")
let racy_arg = Arg.(value & flag & info [ "racy" ] ~doc:"Run the race-injected variant.")
let seed_arg = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Scheduler seed.")
let max_report_arg = Arg.(value & opt int 10 & info [ "max-report" ] ~doc:"Races to print.")

let () =
  let term =
    Term.(
      const run_one $ workload_arg $ detector_arg $ exec_arg $ workers_arg $ size_arg $ base_arg
      $ racy_arg $ seed_arg $ max_report_arg)
  in
  exit (Cmd.eval (Cmd.v (Cmd.info "pint_run" ~doc:"Run a benchmark under a race detector") term))
