(* bench_gate logic tests, driven on synthetic bench JSON through the
   gate_core library — no processes, no files. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* a minimal schema-3 figures document with one group *)
let doc cases =
  let case (name, median, minv, n) =
    Printf.sprintf "%S: {\"median_s\": %f, \"min_s\": %f, \"max_s\": %f, \"n\": %d}" name median
      minv (median *. 2.) n
  in
  Printf.sprintf "{\"schema\": 3, \"figures\": {\"g\": {%s}}}"
    (String.concat ", " (List.map case cases))

let cases_of cases = Gate.cases_of_json (Jsonx.parse (doc cases))

let count p verdicts = List.length (List.filter p verdicts)
let is_regressed = function Gate.Regressed _ -> true | _ -> false
let is_ok = function Gate.Ok_case _ -> true | _ -> false
let is_skipped = function Gate.Skipped _ -> true | _ -> false
let is_waived = function Gate.Waived _ -> true | _ -> false

let base = cases_of [ ("a", 0.1, 0.09, 5); ("b", 0.2, 0.19, 5) ]

let gate ?threshold ?min_samples ?waivers current =
  Gate.compare_cases ?threshold ?min_samples ?waivers ~baseline:base ~current ()

let identical_passes () =
  let v = gate base in
  check_int "all ok" 2 (count is_ok v);
  check_int "no regressions" 0 (count is_regressed v)

let doubled_fails () =
  let v = gate (cases_of [ ("a", 0.2, 0.18, 5); ("b", 0.2, 0.19, 5) ]) in
  check_int "a regressed" 1 (count is_regressed v);
  check_int "b ok" 1 (count is_ok v)

let small_improvement_passes () =
  let v = gate (cases_of [ ("a", 0.09, 0.085, 5); ("b", 0.21, 0.2, 5) ]) in
  check_int "no regressions" 0 (count is_regressed v)

let undersampled_skips () =
  (* n=1 smoke data must never produce a verdict, even when 10x slower *)
  let v = gate (cases_of [ ("a", 1.0, 1.0, 1); ("b", 0.2, 0.19, 1) ]) in
  check_int "all skipped" 2 (count is_skipped v);
  check_int "no regressions" 0 (count is_regressed v)

let too_fast_skips () =
  let tiny = cases_of [ ("a", 0.0001, 0.0001, 5) ] in
  let v = Gate.compare_cases ~baseline:tiny ~current:tiny () in
  check_int "sub-millisecond case skipped" 1 (count is_skipped v)

let unknown_case_skips () =
  let v = gate (cases_of [ ("new-case", 9.9, 9.9, 5) ]) in
  check_int "not in baseline -> skip" 1 (count is_skipped v)

let waiver_suppresses () =
  let cur = cases_of [ ("a", 0.2, 0.18, 5); ("b", 0.2, 0.19, 5) ] in
  let v = gate ~waivers:[ ("g/a", "known issue") ] cur in
  check_int "waived" 1 (count is_waived v);
  check_int "no regressions" 0 (count is_regressed v);
  (* the waiver only covers g/a *)
  let v2 = gate ~waivers:[ ("g/b", "wrong case") ] cur in
  check_int "unrelated waiver does not help" 1 (count is_regressed v2)

let waiver_parsing () =
  let ws =
    Gate.parse_waivers "# comment\n\n g/a -- flaky on CI \ng/b\n# g/c -- commented out\n"
  in
  check_int "two waivers" 2 (List.length ws);
  check_bool "reason kept" true (List.assoc "g/a" ws = "flaky on CI");
  check_bool "missing reason defaulted" true (List.assoc "g/b" ws = "no reason given")

let threshold_respected () =
  (* 1.2x is over a 10% threshold but under the default 25% *)
  let cur = cases_of [ ("a", 0.12, 0.108, 5); ("b", 0.2, 0.19, 5) ] in
  check_int "default passes" 0 (count is_regressed (gate cur));
  check_int "tight threshold trips" 1 (count is_regressed (gate ~threshold:0.1 cur))

(* -- gated diagnostics: detect_span rides the same ratio test ----------- *)

let doc_with_span cases =
  let case (name, median, span) =
    Printf.sprintf
      "%S: {\"median_s\": %f, \"min_s\": %f, \"n\": 5, \"diagnostics\": {\"detect_span\": %f, \
       \"shards\": 4.0}}"
      name median median span
  in
  Printf.sprintf "{\"schema\": 3, \"figures\": {\"g\": {%s}}}"
    (String.concat ", " (List.map case cases))

let span_cases cases = Gate.cases_of_json (Jsonx.parse (doc_with_span cases))

let diag_regression_trips () =
  (* the case is far too fast for the wall-clock gate, but its detect_span
     blew up 2x: the diag verdict must trip on its own *)
  let base = span_cases [ ("s4", 0.001, 30000.) ] in
  let v =
    Gate.compare_cases ~baseline:base ~current:(span_cases [ ("s4", 0.001, 60000.) ]) ()
  in
  check_int "wall skipped (too fast)" 1 (count is_skipped v);
  check_int "span regression trips" 1 (count is_regressed v);
  (match List.find is_regressed v with
  | Gate.Regressed { key; _ } -> check_bool "diag key" true (key = "g/s4#detect_span")
  | _ -> assert false);
  (* identical spans pass *)
  let v2 = Gate.compare_cases ~baseline:base ~current:base () in
  check_int "identical span ok" 0 (count is_regressed v2);
  check_int "span verdict present" 1 (count is_ok v2)

let diag_improvement_passes () =
  let base = span_cases [ ("s4", 0.001, 30000.) ] in
  let v =
    Gate.compare_cases ~baseline:base ~current:(span_cases [ ("s4", 0.001, 20000.) ]) ()
  in
  check_int "no regressions" 0 (count is_regressed v)

let diag_waiver_suppresses () =
  let base = span_cases [ ("s4", 0.001, 30000.) ] in
  let v =
    Gate.compare_cases
      ~waivers:[ ("g/s4#detect_span", "rebalanced") ]
      ~baseline:base ~current:(span_cases [ ("s4", 0.001, 60000.) ]) ()
  in
  check_int "waived" 1 (count is_waived v);
  check_int "no regressions" 0 (count is_regressed v)

let diag_absent_is_silent () =
  (* baseline without the diag (older schema): no verdict either way *)
  let old = cases_of [ ("s4", 0.001, 0.001, 5) ] in
  let v =
    Gate.compare_cases ~baseline:old ~current:(span_cases [ ("s4", 0.001, 60000.) ]) ()
  in
  check_int "only the wall-clock skip" 1 (List.length v)

(* -- real-domain scaling assertion -------------------------------------- *)

let par_doc ~domains ~s1 ~s4 =
  Printf.sprintf
    "{\"schema\": 3, \"figures\": {\"par:heat48\": {\
     \"s1\": {\"median_s\": %f, \"min_s\": %f, \"n\": 5, \"diagnostics\": {\"domains\": %f}}, \
     \"s4\": {\"median_s\": %f, \"min_s\": %f, \"n\": 5, \"diagnostics\": {\"domains\": %f}}}}}"
    s1 s1 domains s4 s4 domains

let par_cases ~domains ~s1 ~s4 = Gate.cases_of_json (Jsonx.parse (par_doc ~domains ~s1 ~s4))

let scaling ?max_ratio ?min_domains cases =
  Gate.check_scaling ?max_ratio ?min_domains ~slow:"par:heat48/s1" ~fast:"par:heat48/s4" cases

let scaling_ok_when_faster () =
  match scaling (par_cases ~domains:8. ~s1:1.0 ~s4:0.5) with
  | Gate.Scaling_ok { ratio; _ } -> check_bool "halved" true (abs_float (ratio -. 0.5) < 1e-9)
  | _ -> Alcotest.fail "expected Scaling_ok"

let scaling_fails_when_flat () =
  (* the whole point: merely tying is a failure on a real multi-core host *)
  (match scaling (par_cases ~domains:8. ~s1:1.0 ~s4:1.0) with
  | Gate.Scaling_failed _ -> ()
  | _ -> Alcotest.fail "expected Scaling_failed on a flat result");
  match scaling (par_cases ~domains:8. ~s1:1.0 ~s4:0.95) with
  | Gate.Scaling_failed { ratio; _ } ->
      check_bool "just over the bar" true (ratio > 0.9)
  | _ -> Alcotest.fail "expected Scaling_failed just over the ratio"

let scaling_ratio_respected () =
  (* 0.95x fails the default 0.9 bar but passes a lax 0.99 one *)
  let cases = par_cases ~domains:8. ~s1:1.0 ~s4:0.95 in
  (match scaling ~max_ratio:0.99 cases with
  | Gate.Scaling_ok _ -> ()
  | _ -> Alcotest.fail "lax ratio should pass")

let scaling_skips_small_host () =
  (* a 1-core container time-shares the micropools: skip, never fail *)
  match scaling (par_cases ~domains:1. ~s1:1.0 ~s4:1.4) with
  | Gate.Scaling_skipped { why; _ } ->
      check_bool "mentions domains" true
        (String.length why > 0 && String.lowercase_ascii why <> "")
  | _ -> Alcotest.fail "expected skip on a 1-domain host"

let scaling_skips_missing_pieces () =
  (* missing case *)
  (match scaling (cases_of [ ("a", 0.1, 0.1, 5) ]) with
  | Gate.Scaling_skipped _ -> ()
  | _ -> Alcotest.fail "expected skip when the group is absent");
  (* missing domains diagnostic: must skip rather than trust the numbers *)
  let j =
    Jsonx.parse
      "{\"schema\": 3, \"figures\": {\"par:heat48\": {\
       \"s1\": {\"median_s\": 1.0, \"min_s\": 1.0, \"n\": 5}, \
       \"s4\": {\"median_s\": 0.5, \"min_s\": 0.5, \"n\": 5}}}}"
  in
  match scaling (Gate.cases_of_json j) with
  | Gate.Scaling_skipped _ -> ()
  | _ -> Alcotest.fail "expected skip without a domains diagnostic"

let schema2_fallbacks () =
  (* no "n"/"min_s": count and min come from samples_s *)
  let j =
    Jsonx.parse
      "{\"figures\": {\"g\": {\"a\": {\"median_s\": 0.1, \"samples_s\": [0.11, 0.1, 0.09]}}}}"
  in
  match Gate.cases_of_json j with
  | [ c ] ->
      check_int "n from samples" 3 c.Gate.n;
      check_bool "min from samples" true (abs_float (c.Gate.min_s -. 0.09) < 1e-9)
  | l -> Alcotest.failf "expected 1 case, got %d" (List.length l)

let () =
  Alcotest.run "bench_gate"
    [
      ( "gate",
        [
          Alcotest.test_case "identical passes" `Quick identical_passes;
          Alcotest.test_case "2x fails" `Quick doubled_fails;
          Alcotest.test_case "improvement passes" `Quick small_improvement_passes;
          Alcotest.test_case "undersampled skips" `Quick undersampled_skips;
          Alcotest.test_case "too-fast skips" `Quick too_fast_skips;
          Alcotest.test_case "unknown case skips" `Quick unknown_case_skips;
          Alcotest.test_case "waiver suppresses" `Quick waiver_suppresses;
          Alcotest.test_case "waiver parsing" `Quick waiver_parsing;
          Alcotest.test_case "threshold respected" `Quick threshold_respected;
          Alcotest.test_case "diag regression trips" `Quick diag_regression_trips;
          Alcotest.test_case "diag improvement passes" `Quick diag_improvement_passes;
          Alcotest.test_case "diag waiver suppresses" `Quick diag_waiver_suppresses;
          Alcotest.test_case "diag absent is silent" `Quick diag_absent_is_silent;
          Alcotest.test_case "schema-2 fallbacks" `Quick schema2_fallbacks;
        ] );
      ( "scaling",
        [
          Alcotest.test_case "ok when faster" `Quick scaling_ok_when_faster;
          Alcotest.test_case "fails when flat" `Quick scaling_fails_when_flat;
          Alcotest.test_case "ratio respected" `Quick scaling_ratio_respected;
          Alcotest.test_case "skips small host" `Quick scaling_skips_small_host;
          Alcotest.test_case "skips missing pieces" `Quick scaling_skips_missing_pieces;
        ] );
    ]
