type kind = Write_write | Write_read | Read_write

type origin = Observed | Predicted

type race = { kind : kind; prior : int; current : int; where : Interval.t }

type t = {
  tbl : (int * int * kind, race) Hashtbl.t;
  lock : Mutex.t;
  mutable raw : int;
}

let create () = { tbl = Hashtbl.create 64; lock = Mutex.create (); raw = 0 }

let add t kind ~prior ~current where =
  Mutex.lock t.lock;
  t.raw <- t.raw + 1;
  let key = (prior, current, kind) in
  if not (Hashtbl.mem t.tbl key) then Hashtbl.add t.tbl key { kind; prior; current; where };
  Mutex.unlock t.lock

let count t =
  Mutex.lock t.lock;
  let n = Hashtbl.length t.tbl in
  Mutex.unlock t.lock;
  n

let raw_count t = t.raw

let races t =
  Mutex.lock t.lock;
  let l = Hashtbl.fold (fun _ r acc -> r :: acc) t.tbl [] in
  Mutex.unlock t.lock;
  List.sort
    (fun a b ->
      match compare a.prior b.prior with
      | 0 -> ( match compare a.current b.current with 0 -> compare a.kind b.kind | c -> c)
      | c -> c)
    l

let mem t ~prior ~current =
  Mutex.lock t.lock;
  let found =
    Hashtbl.mem t.tbl (prior, current, Write_write)
    || Hashtbl.mem t.tbl (prior, current, Write_read)
    || Hashtbl.mem t.tbl (prior, current, Read_write)
  in
  Mutex.unlock t.lock;
  found

let kind_to_string = function
  | Write_write -> "W/W"
  | Write_read -> "W/R"
  | Read_write -> "R/W"

let origin_to_string = function Observed -> "observed" | Predicted -> "predicted"

let pp_race fmt r =
  Format.fprintf fmt "%s race between strands %d and %d at %a" (kind_to_string r.kind) r.prior
    r.current Interval.pp r.where
