let race sp ~prior ~current = Sp_order.parallel sp prior current

let keep_leftmost sp ~s ~incumbent =
  if Sp_order.series sp incumbent s then `Replace
  else if Sp_order.left_of sp s incumbent then `Replace
  else `Keep

let keep_rightmost sp ~s ~incumbent =
  if Sp_order.series sp incumbent s then `Replace
  else if Sp_order.left_of sp incumbent s then `Replace
  else `Keep
