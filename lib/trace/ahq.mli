(** The global access-history queue.

    A bounded ring written only by the writer treap worker and read by the
    reader treap workers, each through its own cursor — the paper's "only
    the writer treap worker modifies it, the reader treap workers only read
    it" design.  A slot is recycled (and its record reference dropped) once
    every reader has moved past it; if the ring is full the writer stalls,
    which is the natural backpressure when the reader treaps fall behind.

    The paper runs exactly two readers (the left-most and right-most reader
    treap workers); the sharded-treap extension (§VI future work, see
    [Pint_detector.make ~reader_shards]) runs [2·S] of them, so the queue
    supports an arbitrary reader count.  Readers are identified by index;
    {!l} and {!r} name the classic two. *)

type t

type reader = int

(** Conventional names for the two-reader configuration. *)
val l : reader

val r : reader

(** [create ?capacity ~readers ()] — [readers >= 1] cursors. *)
val create : ?capacity:int -> ?readers:int -> unit -> t

val n_readers : t -> int

(** Install observability tracks (before the pipeline starts): the writer
    ring receives an {!Ev.enqueue} occupancy sample per successful enqueue,
    reader ring [i] receives {!Ev.recycle} slot-recycling events and
    occupancy samples from reader [i]'s cursor advances.  Disabled rings
    ({!Evring.null}, the default) make all of it a no-op. *)
val set_obs : t -> writer:Evring.t -> readers:Evring.t array -> unit

(** {2 Writer treap worker} *)

(** [try_enqueue t s] — false iff the ring is full.  Occupancy is checked
    against a cached lower bound on the minimum reader cursor (cursors only
    advance, so the bound stays valid); the cursors are rescanned only when
    the cached bound would reject the enqueue, making the common
    ring-not-near-full enqueue O(1) in the reader count. *)
val try_enqueue : t -> Srec.t -> bool

(** {2 Reader treap workers} *)

(** Next record for this reader, if the writer has published one. *)
val peek : t -> reader -> Srec.t option

(** Advance this reader's cursor past the record returned by [peek]; also
    clears the slot once every reader has passed it.
    @raise Failure if nothing is pending for this reader. *)
val advance : t -> reader -> unit

(** Default [max] for {!peek_batch}. *)
val default_batch : int

(** [peek_batch ?max t i] — up to [max] (default {!default_batch}) pending
    records for reader [i], oldest first; [[||]] when none are pending.
    Batched consumption lets a reader amortize its cursor update and
    slot-recycling scan over the whole batch: follow with
    [advance_n t i (Array.length batch)]. *)
val peek_batch : ?max:int -> t -> reader -> Srec.t array

(** [peek_batch_into t i buf] — like {!peek_batch} with [max = Array.length
    buf], but fills the caller-provided buffer instead of allocating a fresh
    array, and returns the number of records written (0 when none pending).
    The reader owns [buf] and reuses it across steps; entries past the
    returned count are stale leftovers from earlier batches.
    @raise Invalid_argument if [buf] is empty. *)
val peek_batch_into : t -> reader -> Srec.t array -> int

(** Advance reader [i]'s cursor by [n] records, recycling every slot all
    other readers have already passed, with a single scan of the other
    cursors for the whole batch.
    @raise Failure if fewer than [n] records are pending. *)
val advance_n : t -> reader -> int -> unit

(** {2 Diagnostics} *)

val enqueued : t -> int
val processed : t -> reader -> int

(** Number of times {!try_enqueue} had to rescan the reader cursors because
    the cached minimum-cursor bound would have rejected the enqueue. *)
val min_rescans : t -> int

(** All readers fully caught up with the writer. *)
val drained : t -> bool

val capacity : t -> int
