(** Exponential idle backoff for stage-driving loops.

    [relax n] spins [min (2^n) 256] times on [Domain.cpu_relax], where [n]
    is the number of consecutive unproductive rounds the caller has seen.
    Replaces bare [Domain.cpu_relax] spinning: an idle stage burns little
    CPU (and steals few cycles from the core workers sharing the machine)
    while still reacting within a few hundred relaxes once work appears. *)

val relax : int -> unit
