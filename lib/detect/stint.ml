let make ?(seed = 2022) () =
  let report = Report.create () in
  let diags = ref [] in
  let driver (ctx : Hooks.ctx) =
    if ctx.n_workers > 1 then failwith "Stint: serial detector run on a parallel executor";
    let sp = ctx.sp in
    let owner_eq = ( == ) in
    let writer = Itreap.create ~seed ~owner_eq () in
    let reader = Itreap.create ~seed:(seed + 1) ~owner_eq () in
    let coal = Coalescer.create () in
    let strands = ref 0 in
    let intervals = ref 0 and work = ref 0 and raw_events = ref 0 in
    let check treap kind (iv : Interval.t) (s : Sp_order.strand) =
      Itreap.query treap iv ~f:(fun seg prior ->
          if Policies.race sp ~prior ~current:s then
            Report.add report kind ~prior:(Sp_order.id prior) ~current:(Sp_order.id s)
              (Interval.inter seg iv))
    in
    let clear_both iv =
      Itreap.clear_range writer iv;
      Itreap.clear_range reader iv
    in
    let process (u : Srec.t) =
      incr strands;
      intervals := !intervals + Array.length u.reads + Array.length u.writes;
      work := !work + u.work;
      raw_events := !raw_events + u.raw_reads + u.raw_writes;
      let s = u.sp in
      Array.iter
        (fun r ->
          check writer Report.Write_read r s;
          Itreap.insert_merge reader r s ~keep:(fun ~incumbent ->
              Policies.keep_leftmost sp ~s ~incumbent))
        u.reads;
      Array.iter
        (fun w ->
          check writer Report.Write_write w s;
          check reader Report.Read_write w s;
          Itreap.insert_replace writer w s)
        u.writes;
      List.iter (fun (b, l) -> clear_both (Interval.make b (b + l - 1))) u.clears;
      List.iter
        (fun (b, l) ->
          clear_both (Interval.make b (b + l - 1));
          Aspace.heap_free ctx.aspace ~base:b ~len:l)
        u.frees
    in
    {
      Hooks.sink =
        (fun ~wid ->
          {
            Access.on_read = (fun ~addr ~len -> Coalescer.add_read coal ~addr ~len);
            on_write = (fun ~addr ~len -> Coalescer.add_write coal ~addr ~len);
            on_free = (fun ~base ~len ->
                let u = ctx.current ~wid in
                u.frees <- (base, len) :: u.frees);
            on_compute = (fun ~amount:_ -> ());
          });
      on_start = (fun ~wid:_ _ _ -> ());
      on_finish =
        (fun ~wid:_ u _kind ->
          let reads, writes = Coalescer.finish coal in
          u.reads <- reads;
          u.writes <- writes;
          process u);
      on_done =
        (fun () ->
          let fast = Itreap.fastpath_hits writer + Itreap.fastpath_hits reader in
          let slow = Itreap.slowpath_hits writer + Itreap.slowpath_hits reader in
          diags :=
            [
              ("strands", float_of_int !strands);
              ("intervals", float_of_int !intervals);
              ("work", float_of_int !work);
              ("raw_events", float_of_int !raw_events);
              ("writer_visits", float_of_int (Itreap.visits writer));
              ("reader_visits", float_of_int (Itreap.visits reader));
              ("writer_size", float_of_int (Itreap.size writer));
              ("reader_size", float_of_int (Itreap.size reader));
              ("fastpath_hits", float_of_int fast);
              ("slowpath_hits", float_of_int slow);
              ("fastpath_rate", float_of_int fast /. float_of_int (max 1 (fast + slow)));
              ( "scratch_reuse",
                float_of_int (Itreap.scratch_reuse writer + Itreap.scratch_reuse reader) );
              ("coal_sort_skips", float_of_int (fst (Coalescer.sort_stats coal)));
              ("coal_sorts", float_of_int (snd (Coalescer.sort_stats coal)));
            ]);
    }
  in
  {
    Detector.name = "stint";
    driver;
    report;
    drain = (fun () -> ());
    diagnostics = (fun () -> !diags);
  }
