(* Workload tests: each benchmark computes the right answer, is race-free
   under every detector, and its racy variant is caught — across the
   sequential executor, the virtual-time simulator, and (spot-checked) the
   real multi-domain executor. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* small test sizes so the whole suite stays fast *)
let test_params =
  [
    ("chol", 32, 8);
    ("heat", 32, 4);
    ("mmul", 32, 8);
    ("sort", 2048, 32);
    ("stra", 32, 8);
    ("straz", 32, 8);
    ("fft", 512, 16);
  ]

let params name = List.find (fun (n, _, _) -> n = name) test_params |> fun (_, s, b) -> (s, b)

let all_names = List.map (fun (n, _, _) -> n) test_params

let test_seq_correct name () =
  let w = Registry.find name in
  let size, base = params name in
  let inst = w.Workload.make ~size ~base in
  let d = Nodetect.make () in
  let _ = Seq_exec.run ~driver:d.Detector.driver inst.Workload.run in
  check_bool (name ^ " result correct") true (inst.Workload.check ())

let test_seq_race_free name () =
  let w = Registry.find name in
  let size, base = params name in
  let inst = w.Workload.make ~size ~base in
  let d = Stint.make () in
  let _ = Seq_exec.run ~driver:d.Detector.driver inst.Workload.run in
  check_bool (name ^ " result correct") true (inst.Workload.check ());
  check_int (name ^ " race free under stint") 0 (List.length (Detector.races d))

let test_racy_detected name () =
  let w = Registry.find name in
  let size, base = params name in
  match w.Workload.racy with
  | None -> ()
  | Some racy ->
      let inst = racy ~size ~base in
      let d = Stint.make () in
      let _ = Seq_exec.run ~driver:d.Detector.driver inst.Workload.run in
      check_bool (name ^ " racy variant detected by stint") true (Detector.races d <> []);
      (* and by PINT under the simulator with real steals *)
      let inst = racy ~size ~base in
      let p = Pint_detector.make () in
      let det = Pint_detector.detector p in
      let config =
        { Sim_exec.default_config with n_workers = 4; stages = Pint_detector.stages p }
      in
      let _ = Sim_exec.run ~config ~driver:det.Detector.driver inst.Workload.run in
      check_bool (name ^ " racy variant detected by pint/sim") true (Detector.races det <> [])

let test_sim_pint_clean name () =
  let w = Registry.find name in
  let size, base = params name in
  List.iter
    (fun n_workers ->
      let inst = w.Workload.make ~size ~base in
      let p = Pint_detector.make () in
      let det = Pint_detector.detector p in
      let config =
        { Sim_exec.default_config with n_workers; seed = 3; stages = Pint_detector.stages p }
      in
      let r = Sim_exec.run ~config ~driver:det.Detector.driver inst.Workload.run in
      check_bool
        (Printf.sprintf "%s correct under sim p=%d" name n_workers)
        true (inst.Workload.check ());
      check_int (Printf.sprintf "%s race-free under pint p=%d" name n_workers) 0
        (List.length (Detector.races det));
      check_bool (name ^ " strands flowed") true (r.Sim_exec.n_strands > 10))
    [ 1; 8 ]

let test_sim_cracer_clean name () =
  let w = Registry.find name in
  let size, base = params name in
  let inst = w.Workload.make ~size ~base in
  let d = Cracer.make () in
  let config = { Sim_exec.default_config with n_workers = 6; seed = 11 } in
  let _ = Sim_exec.run ~config ~driver:d.Detector.driver inst.Workload.run in
  check_bool (name ^ " correct under sim/cracer") true (inst.Workload.check ());
  check_int (name ^ " race-free under cracer") 0 (List.length (Detector.races d))

(* spot-check two workloads on the real multi-domain executor *)
let test_par_spot name () =
  let w = Registry.find name in
  let size, base = params name in
  let inst = w.Workload.make ~size ~base in
  let p = Pint_detector.make () in
  let det = Pint_detector.detector p in
  let config = { Par_exec.default_config with n_workers = 3; pools = Pint_detector.stage_pools p } in
  let _ = Par_exec.run ~config ~driver:det.Detector.driver inst.Workload.run in
  check_bool (name ^ " correct under par/pint") true (inst.Workload.check ());
  check_int (name ^ " race-free under par/pint") 0 (List.length (Detector.races det))

let test_interval_shapes () =
  (* straz (Morton) must need far fewer writer-treap intervals than stra
     (row-major) — the layout contrast the paper evaluates *)
  let stat name =
    let w = Registry.find name in
    let inst = w.Workload.make ~size:32 ~base:8 in
    let p = Pint_detector.make () in
    let det = Pint_detector.detector p in
    let _ = Seq_exec.run ~driver:det.Detector.driver inst.Workload.run in
    det.Detector.drain ();
    Detector.diag det "writer_visits"
  in
  let vs_row = stat "stra" and vs_z = stat "straz" in
  check_bool
    (Printf.sprintf "z-layout needs less treap work (row %.0f vs z %.0f)" vs_row vs_z)
    true (vs_z < vs_row)

let test_fft_many_intervals () =
  (* fft's bit-reversal defeats coalescing: at the default problem sizes its
     words-per-interval ratio must be the worst of the suite *)
  let win name =
    let w = Registry.find name in
    let inst = w.Workload.make ~size:w.Workload.default_size ~base:w.Workload.default_base in
    let d = Stint.make () in
    let _ = Seq_exec.run ~driver:d.Detector.driver inst.Workload.run in
    Detector.diag d "work" /. Float.max 1. (Detector.diag d "intervals")
  in
  let fft_w = win "fft" in
  List.iter
    (fun other ->
      let other_w = win other in
      check_bool
        (Printf.sprintf "fft coalesces worse than %s (%.1f vs %.1f words/interval)" other fft_w
           other_w)
        true (fft_w < other_w))
    [ "mmul"; "straz"; "heat"; "sort" ]

let per_workload mk = List.map (fun n -> Alcotest.test_case n `Quick (mk n)) all_names

let () =
  Alcotest.run "pint_workloads"
    [
      ("seq correct", per_workload test_seq_correct);
      ("seq race-free", per_workload test_seq_race_free);
      ("racy detected", per_workload test_racy_detected);
      ("sim pint", per_workload test_sim_pint_clean);
      ("sim cracer", per_workload test_sim_cracer_clean);
      ( "par spot",
        [
          Alcotest.test_case "mmul" `Quick (test_par_spot "mmul");
          Alcotest.test_case "sort" `Quick (test_par_spot "sort");
        ] );
      ( "shape",
        [
          Alcotest.test_case "stra vs straz intervals" `Quick test_interval_shapes;
          Alcotest.test_case "fft interval pressure" `Quick test_fft_many_intervals;
        ] );
    ]
