(* Tests for the order-maintenance list: sequential semantics against a list
   model, amortization/structure invariants, and concurrent reader safety. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_base_only () =
  let t = Om.create () in
  check_int "one record" 1 (Om.length t);
  check_int "compare base base" 0 (Om.compare t (Om.base t) (Om.base t))

let test_simple_chain () =
  let t = Om.create () in
  let a = Om.base t in
  let b = Om.insert_after t a in
  let c = Om.insert_after t b in
  check_bool "a < b" true (Om.precedes t a b);
  check_bool "b < c" true (Om.precedes t b c);
  check_bool "a < c" true (Om.precedes t a c);
  check_bool "not c < a" false (Om.precedes t c a)

let test_insert_between () =
  let t = Om.create () in
  let a = Om.base t in
  let c = Om.insert_after t a in
  let b = Om.insert_after t a in
  (* b was inserted after a, so order is a, b, c *)
  check_bool "a < b" true (Om.precedes t a b);
  check_bool "b < c" true (Om.precedes t b c)

(* Model: build a random sequence of insert-afters mirrored in a plain list,
   then verify every pairwise comparison.  This exercises group splits and
   relabels once the structure crosses the group capacity. *)
let run_model ~seed ~n =
  let rng = Rng.create seed in
  let t = Om.create () in
  let model = ref [ Om.base t ] in
  for _ = 2 to n do
    let pos = Rng.int rng (List.length !model) in
    let anchor = List.nth !model pos in
    let fresh = Om.insert_after t anchor in
    let rec insert_at i = function
      | [] -> [ fresh ]
      | x :: rest -> if i = 0 then x :: fresh :: rest else x :: insert_at (i - 1) rest
    in
    model := insert_at pos !model
  done;
  Om.validate t;
  let arr = Array.of_list !model in
  let m = Array.length arr in
  check_int "length" m (Om.length t);
  (* all ordered pairs agree with the model *)
  for i = 0 to m - 1 do
    for j = 0 to m - 1 do
      let expected = compare i j in
      let got = Om.compare t arr.(i) arr.(j) in
      if compare got 0 <> compare expected 0 then
        Alcotest.failf "order mismatch at (%d,%d): got %d" i j got
    done
  done;
  (* to_list must equal the model *)
  let listed = Om.to_list t in
  check_bool "to_list matches model" true (List.for_all2 ( == ) listed !model)

let test_model_small () = run_model ~seed:1 ~n:50
let test_model_split_boundary () = run_model ~seed:2 ~n:65
let test_model_medium () = run_model ~seed:3 ~n:400

let test_append_heavy () =
  (* Appending at the end repeatedly forces label-gap exhaustion on one side. *)
  let t = Om.create () in
  let r = ref (Om.base t) in
  let all = ref [ !r ] in
  for _ = 1 to 5_000 do
    r := Om.insert_after t !r;
    all := !r :: !all
  done;
  Om.validate t;
  let rec check_desc = function
    | a :: (b :: _ as rest) ->
        check_bool "later is after" true (Om.precedes t b a);
        check_desc rest
    | _ -> ()
  in
  check_desc !all;
  check_int "length" 5_001 (Om.length t)

let test_same_anchor_heavy () =
  (* Repeated insertion after the same record builds in reverse order and
     hammers the same label gap. *)
  let t = Om.create () in
  let anchor = Om.base t in
  let inserted = ref [] in
  for _ = 1 to 2_000 do
    inserted := Om.insert_after t anchor :: !inserted
  done;
  Om.validate t;
  (* Later inserts land closer to the anchor: !inserted is in order. *)
  let rec check_asc = function
    | a :: (b :: _ as rest) ->
        check_bool "insert order" true (Om.precedes t a b);
        check_asc rest
    | _ -> ()
  in
  check_asc !inserted

let test_group_growth () =
  let t = Om.create () in
  let r = ref (Om.base t) in
  for _ = 1 to 1_000 do
    r := Om.insert_after t !r
  done;
  check_bool "groups formed" true (Om.group_count t > 1);
  check_bool "relabels bounded" true (Om.relabel_count t < 1_000)

let om_random_prop =
  QCheck.Test.make ~name:"om random inserts keep invariants" ~count:60
    QCheck.(pair small_nat (int_bound 1000))
    (fun (seed, n) ->
      let n = max 2 n in
      let rng = Rng.create (seed + 17) in
      let t = Om.create () in
      let records = Vec.create (Om.base t) in
      Vec.push records (Om.base t);
      for _ = 2 to n do
        let anchor = Vec.get records (Rng.int rng (Vec.length records)) in
        Vec.push records (Om.insert_after t anchor)
      done;
      Om.validate t;
      Om.length t = n)

(* Concurrent readers during writer inserts: correctness of the seqlock.
   One domain keeps inserting; readers repeatedly compare pinned records
   whose relative order is fixed, expecting consistent answers. *)
let test_concurrent_readers () =
  let t = Om.create () in
  let a = Om.base t in
  let b = Om.insert_after t a in
  let c = Om.insert_after t b in
  let stop = Atomic.make false in
  let errors = Atomic.make 0 in
  let readers =
    List.init 3 (fun _ ->
        Domain.spawn (fun () ->
            while not (Atomic.get stop) do
              if not (Om.precedes t a b) then Atomic.incr errors;
              if not (Om.precedes t b c) then Atomic.incr errors;
              if Om.precedes t c a then Atomic.incr errors
            done))
  in
  let writer =
    Domain.spawn (fun () ->
        let r = ref b in
        for _ = 1 to 20_000 do
          r := Om.insert_after t !r
        done)
  in
  Domain.join writer;
  Atomic.set stop true;
  List.iter Domain.join readers;
  Om.validate t;
  check_int "no inconsistent reads" 0 (Atomic.get errors)

let test_concurrent_writers () =
  let t = Om.create () in
  let anchors = Array.init 4 (fun _ -> Om.insert_after t (Om.base t)) in
  let writers =
    Array.to_list
      (Array.map
         (fun anchor ->
           Domain.spawn (fun () ->
               let r = ref anchor in
               for _ = 1 to 5_000 do
                 r := Om.insert_after t !r
               done))
         anchors)
  in
  List.iter Domain.join writers;
  Om.validate t;
  check_int "all inserts present" (1 + 4 + (4 * 5_000)) (Om.length t)

let () =
  Alcotest.run "pint_order"
    [
      ( "sequential",
        [
          Alcotest.test_case "base only" `Quick test_base_only;
          Alcotest.test_case "simple chain" `Quick test_simple_chain;
          Alcotest.test_case "insert between" `Quick test_insert_between;
          Alcotest.test_case "model n=50" `Quick test_model_small;
          Alcotest.test_case "model split boundary" `Quick test_model_split_boundary;
          Alcotest.test_case "model n=400" `Quick test_model_medium;
          Alcotest.test_case "append heavy" `Quick test_append_heavy;
          Alcotest.test_case "same anchor heavy" `Quick test_same_anchor_heavy;
          Alcotest.test_case "group growth" `Quick test_group_growth;
          QCheck_alcotest.to_alcotest om_random_prop;
        ] );
      ( "concurrent",
        [
          Alcotest.test_case "readers vs writer" `Quick test_concurrent_readers;
          Alcotest.test_case "parallel writers" `Quick test_concurrent_writers;
        ] );
    ]
