(** Exponential idle backoff for every spinning loop in the system.

    [relax n] — where [n] is the number of consecutive unproductive rounds
    the caller has seen — spins [min (2^n) 256] times on
    [Domain.cpu_relax] while the wait is young, then from {!yield_round}
    on parks in a short sleep so that on oversubscribed hosts the waiting
    domain yields its core to whichever domain it is waiting for.
    Replaces bare [Domain.cpu_relax] spinning everywhere (stage drive
    loops, micropools, idle core workers, backpressured lane producers). *)

val relax : int -> unit

(** First round at which {!relax} parks in a sleep instead of spinning. *)
val yield_round : int
