type metrics = {
  mutable steps : int;
  mutable records : int;
  mutable visits : int;
  mutable idles : int;
  mutable stalls : int;
}

type t = {
  name : string;
  step : unit -> Step.t;
  cost : records:int -> visits:int -> int;
  metrics : metrics;
}

let fresh_metrics () = { steps = 0; records = 0; visits = 0; idles = 0; stalls = 0 }

let default_cost ~records:_ ~visits = visits

let make ~name ?(cost = default_cost) step = { name; step; cost; metrics = fresh_metrics () }

let name t = t.name
let cost t ~records ~visits = t.cost ~records ~visits
let metrics t = t.metrics

let reset_metrics t =
  let m = t.metrics in
  m.steps <- 0;
  m.records <- 0;
  m.visits <- 0;
  m.idles <- 0;
  m.stalls <- 0

let exec t =
  let st = t.step () in
  let m = t.metrics in
  (match st with
  | `Worked o ->
      m.steps <- m.steps + 1;
      m.records <- m.records + o.Step.records;
      m.visits <- m.visits + o.Step.visits
  | `Idle -> m.idles <- m.idles + 1
  | `Stalled -> m.stalls <- m.stalls + 1
  | `Done -> ());
  st

let run t =
  let idle = ref 0 in
  let rec loop () =
    let st = exec t in
    if not (Step.is_done st) then begin
      if Step.progressed st then idle := 0
      else begin
        incr idle;
        Backoff.relax !idle
      end;
      loop ()
    end
  in
  loop ()

let diagnostics t =
  let m = t.metrics in
  let key suffix = Printf.sprintf "stage.%s.%s" t.name suffix in
  [
    (key "steps", float_of_int m.steps);
    (key "records", float_of_int m.records);
    (key "visits", float_of_int m.visits);
    (key "idle", float_of_int m.idles);
    (key "stalls", float_of_int m.stalls);
  ]
