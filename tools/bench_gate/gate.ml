(* Perf-regression gate core: compare a freshly-measured bench JSON
   (schema >= 2) against a committed baseline, case by case.

   A case regresses when its current best (minimum) sample exceeds the
   baseline's by more than the threshold fraction.  The minimum, not the
   median, is compared: scheduling and frequency noise only ever inflate a
   wall-clock sample, so best-of-N is the stable estimate of the true cost
   and the one that doesn't flag identical code at small N.  Noise control
   is otherwise structural, not statistical: a case is only judged when
   both sides carry at least [min_samples] samples (schema-3 files say so
   via "n"; for schema-2 baselines the "samples_s" array length is used) —
   so a --runs 1 smoke file never produces a verdict — and when its
   baseline median clears [min_time] (sub-millisecond cases are jitter,
   not signal).  Known/accepted regressions are waived by listing
   "group/case" in a waiver file, one per line, with an optional
   " -- reason" suffix; '#' lines are comments.

   Wall clocks are not the only gated quantity: each case may carry
   tracked detector diagnostics, and the deterministic ones named in
   [gated_diags] (default: "detect_span", the treap-side critical path in
   virtual cycles, plus the predictive analysis' candidate and
   window-expansion counters) are compared by the same ratio test under
   the key "group/case#diag".  Unlike wall time these are exact functions
   of the code, so they gate even the sub-millisecond cases the
   [min_time] floor excludes — the shard-sweep groups exist for their
   detect_span, and the predict group for its candidate/window counts,
   not their stopwatch.

   The logic lives in a library (separate from the CLI) so the test suite
   can drive it on synthetic JSON without spawning processes. *)

type case = {
  group : string;
  name : string;
  median_s : float;
  min_s : float;
  n : int;
  diags : (string * float) list;
}

type verdict =
  | Ok_case of { key : string; base : float; cur : float }
  | Regressed of { key : string; base : float; cur : float; ratio : float }
  | Waived of { key : string; base : float; cur : float; reason : string }
  | Skipped of { key : string; why : string }

let key c = c.group ^ "/" ^ c.name

(* -- parsing ------------------------------------------------------------- *)

let parse_error fmt = Printf.ksprintf (fun s -> failwith s) fmt

let cases_of_json (j : Jsonx.t) : case list =
  let obj name v =
    match Jsonx.to_obj v with
    | Some o -> o
    | None -> parse_error "bench json: %S is not an object" name
  in
  let figures =
    match Jsonx.member "figures" j with
    | Some f -> obj "figures" f
    | None -> parse_error "bench json: no \"figures\" member"
  in
  List.concat_map
    (fun (group, gj) ->
      List.map
        (fun (name, cj) ->
          let median_s =
            match Option.bind (Jsonx.member "median_s" cj) Jsonx.to_float with
            | Some m -> m
            | None -> parse_error "bench json: %s/%s has no median_s" group name
          in
          let samples =
            match Option.bind (Jsonx.member "samples_s" cj) Jsonx.to_list with
            | Some l -> List.filter_map Jsonx.to_float l
            | None -> []
          in
          let n =
            match Option.bind (Jsonx.member "n" cj) Jsonx.to_float with
            | Some n -> int_of_float n
            | None -> List.length samples (* schema 2 predates the explicit count *)
          in
          let min_s =
            match Option.bind (Jsonx.member "min_s" cj) Jsonx.to_float with
            | Some m -> m
            | None -> List.fold_left min median_s samples
          in
          let diags =
            match Option.bind (Jsonx.member "diagnostics" cj) Jsonx.to_obj with
            | Some kvs ->
                List.filter_map
                  (fun (dk, dv) -> Option.map (fun f -> (dk, f)) (Jsonx.to_float dv))
                  kvs
            | None -> []
          in
          { group; name; median_s; min_s; n; diags })
        (obj group gj))
    figures

let load_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  s

let cases_of_file path = cases_of_json (Jsonx.parse (load_file path))

(* -- waivers ------------------------------------------------------------- *)

let split_on_first ~sep s =
  let sl = String.length sep and n = String.length s in
  let rec find i =
    if i + sl > n then None else if String.sub s i sl = sep then Some i else find (i + 1)
  in
  match find 0 with
  | Some i -> Some (String.sub s 0 i, String.sub s (i + sl) (n - i - sl))
  | None -> None

(* "group/case -- reason" per line; '#' starts a comment, blanks ignored. *)
let parse_waivers text =
  String.split_on_char '\n' text
  |> List.filter_map (fun line ->
         let line = String.trim line in
         if line = "" || line.[0] = '#' then None
         else
           match split_on_first ~sep:" -- " line with
           | Some (k, reason) -> Some (String.trim k, String.trim reason)
           | None -> Some (line, "no reason given"))

(* -- comparison ---------------------------------------------------------- *)

let default_gated_diags = [ "detect_span"; "predict_candidates"; "predict_windows" ]

let compare_cases ?(threshold = 0.25) ?(min_samples = 3) ?(min_time = 0.005)
    ?(gated_diags = default_gated_diags) ?(waivers = []) ~baseline ~current () =
  let base_tbl = Hashtbl.create 16 in
  List.iter (fun c -> Hashtbl.replace base_tbl (key c) c) baseline;
  (* one ratio test, shared by wall clocks and gated diagnostics *)
  let judge ~key:k ~base ~cur =
    let ratio = cur /. base in
    if ratio <= 1. +. threshold then Ok_case { key = k; base; cur }
    else begin
      match List.assoc_opt k waivers with
      | Some reason -> Waived { key = k; base; cur; reason }
      | None -> Regressed { key = k; base; cur; ratio }
    end
  in
  List.concat_map
    (fun cur ->
      let k = key cur in
      match Hashtbl.find_opt base_tbl k with
      | None -> [ Skipped { key = k; why = "not in baseline" } ]
      | Some base ->
          let wall =
            if base.n < min_samples || cur.n < min_samples then
              Skipped
                {
                  key = k;
                  why =
                    Printf.sprintf "insufficient samples (base n=%d, current n=%d, need %d)"
                      base.n cur.n min_samples;
                }
            else if base.median_s < min_time then
              Skipped
                {
                  key = k;
                  why =
                    Printf.sprintf "too fast to gate (%.4fs median < %.3fs)" base.median_s
                      min_time;
                }
            else if base.min_s <= 0. then Skipped { key = k; why = "zero baseline time" }
            else judge ~key:k ~base:base.min_s ~cur:cur.min_s
          in
          (* deterministic diagnostics gate whenever both sides carry them —
             no sample floor and no min_time: they are exact, not measured *)
          let diag_verdicts =
            List.filter_map
              (fun d ->
                match (List.assoc_opt d base.diags, List.assoc_opt d cur.diags) with
                | Some b, Some c when b > 0. -> Some (judge ~key:(k ^ "#" ^ d) ~base:b ~cur:c)
                | _ -> None)
              gated_diags
          in
          wall :: diag_verdicts)
    current

let regressions verdicts =
  List.filter_map (function Regressed _ as r -> Some r | _ -> None) verdicts

(* -- real-domain scaling -------------------------------------------------- *)

(* The wall-clock scaling assertion for the real-domain shard sweep: the
   fast configuration's best sample must beat the slow configuration's by
   the given factor — e.g. par:heat48/s4 at <= 0.9 x par:heat48/s1.  Unlike
   the regression test this compares two cases of the SAME file (the fresh
   run), so it asserts a property of the code on this host rather than a
   trajectory across commits.  It only fires when the current file's
   recorded "domains" diagnostic says the host actually had [min_domains]
   cores: with fewer cores the shard micropools time-share and the fast
   case can only tie, so the check degrades to a skip (never a pass by
   accident — the skip is reported). *)
type scaling_verdict =
  | Scaling_ok of { slow : string; fast : string; slow_s : float; fast_s : float; ratio : float }
  | Scaling_failed of { slow : string; fast : string; slow_s : float; fast_s : float; ratio : float }
  | Scaling_skipped of { slow : string; fast : string; why : string }

let check_scaling ?(max_ratio = 0.9) ?(min_domains = 4) ~slow:slow_key ~fast:fast_key cases =
  let find k = List.find_opt (fun c -> key c = k) cases in
  match (find slow_key, find fast_key) with
  | None, _ -> Scaling_skipped { slow = slow_key; fast = fast_key; why = slow_key ^ " not in file" }
  | _, None -> Scaling_skipped { slow = slow_key; fast = fast_key; why = fast_key ^ " not in file" }
  | Some slow, Some fast -> (
      match List.assoc_opt "domains" fast.diags with
      | None ->
          Scaling_skipped
            { slow = slow_key; fast = fast_key; why = "no \"domains\" diagnostic recorded" }
      | Some d when d < float_of_int min_domains ->
          Scaling_skipped
            {
              slow = slow_key;
              fast = fast_key;
              why = Printf.sprintf "host had %.0f domain(s), need %d for real scaling" d min_domains;
            }
      | Some _ ->
          if slow.min_s <= 0. then
            Scaling_skipped { slow = slow_key; fast = fast_key; why = "zero slow-case time" }
          else begin
            let ratio = fast.min_s /. slow.min_s in
            if ratio <= max_ratio then
              Scaling_ok
                { slow = slow_key; fast = fast_key; slow_s = slow.min_s; fast_s = fast.min_s; ratio }
            else
              Scaling_failed
                { slow = slow_key; fast = fast_key; slow_s = slow.min_s; fast_s = fast.min_s; ratio }
          end)

let pp_scaling out = function
  | Scaling_ok { slow; fast; slow_s; fast_s; ratio } ->
      Printf.fprintf out "  scaling  %s (%.4fs) vs %s (%.4fs): %.2fx — ok\n" fast fast_s slow
        slow_s ratio
  | Scaling_failed { slow; fast; slow_s; fast_s; ratio } ->
      Printf.fprintf out "  SCALING  %s (%.4fs) vs %s (%.4fs): %.2fx — did not scale\n" fast
        fast_s slow slow_s ratio
  | Scaling_skipped { slow; fast; why } ->
      Printf.fprintf out "  scaling  %s vs %s skipped: %s\n" fast slow why

(* wall-clock keys print seconds; "#diag" keys print the raw metric *)
let pp_value key v =
  if String.contains key '#' then Printf.sprintf "%.6g" v else Printf.sprintf "%.4fs" v

let pp_verdict out = function
  | Ok_case { key; base; cur } ->
      Printf.fprintf out "  ok       %-32s %s -> %s\n" key (pp_value key base) (pp_value key cur)
  | Regressed { key; base; cur; ratio } ->
      Printf.fprintf out "  REGRESS  %-32s %s -> %s (%.2fx)\n" key (pp_value key base)
        (pp_value key cur) ratio
  | Waived { key; base; cur; reason } ->
      Printf.fprintf out "  waived   %-32s %s -> %s (%s)\n" key (pp_value key base)
        (pp_value key cur) reason
  | Skipped { key; why } -> Printf.fprintf out "  skip     %-32s %s\n" key why
