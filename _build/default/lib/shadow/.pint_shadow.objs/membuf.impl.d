lib/shadow/membuf.ml: Access Array Aspace Fun
