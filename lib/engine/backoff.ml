let max_spins = 256

let relax round =
  let spins = if round >= 8 then max_spins else 1 lsl round in
  for _ = 1 to spins do
    Domain.cpu_relax ()
  done
