(* Whole-program R5/R6 end-to-end: run the rule engine in-process over the
   per-rule fixture modules (test/lint_fixtures/) and assert each
   deliberate violation is reported with exactly the expected fingerprint
   — and nothing else.  Fingerprints are the baseline identity
   (rule, file basename, context, kind), so these tests also pin the
   suppression and SARIF identity of every whole-program finding class.

   The fixture .cmts sit in the build tree next to this executable, so
   resolving them relative to [Sys.executable_name] works under both
   [dune runtest] and [dune exec]. *)

open Lint_core

let fixture_cmt name =
  Filename.concat
    (Filename.dirname Sys.executable_name)
    (Printf.sprintf "lint_fixtures/.lint_fixtures.objs/byte/%s.cmt" name)

let with_temp_file contents f =
  let path = Filename.temp_file "lint_domains" ".md" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc contents;
      close_out oc;
      f path)

(* The manifest rows the broken fixtures are checked against.  Loaded
   through the real OWNERSHIP.md parser so the owner-context grammar is
   exercised too. *)
let pair_row = "| Fx_r5_pair.t.cell | worker domain | edges: Fx_r5_pair.writer | test row |\n"
let owner_row = "| Fx_r6_owner.t.count | stepping worker | writers: Fx_r6_owner.official | test row |\n"

let run ?(rows = "") names =
  let cmts =
    List.map
      (fun n ->
        let p = fixture_cmt n in
        if not (Sys.file_exists p) then
          Alcotest.failf "fixture cmt not found at %s (cwd %s)" p (Sys.getcwd ());
        p)
      names
  in
  with_temp_file rows (fun path ->
      let ownership = Lint_ownership.load path in
      Lint_engine.run ~baseline:Lint_baseline.empty ~ownership cmts)

let prints (report : Lint_engine.report) =
  List.sort_uniq compare
    (List.map
       (fun f ->
         let r, file, ctx, kind = Lint_types.fingerprint f in
         Printf.sprintf "%s %s %s %s" r file ctx kind)
       report.findings)

let check_prints what expected report =
  Alcotest.(check (list string)) what (List.sort compare expected) (prints report)

(* ------------------------------------------------------- rule-class tests *)

let test_r5_unpublished_ref () =
  (* module-level ref written and read from a spawned thunk, no row *)
  check_prints "unpublished-shared-ref fingerprints"
    [ "R5 fx_r5_ref.ml Fx_r5_ref.hits unpublished-shared-ref" ]
    (run [ "fx_r5_ref" ])

let test_r5_mismatched_pair () =
  (* the field declares "fx.cell", the writer publishes "fx.wrong", the
     spawned reader acquires nothing: both unpaired legs plus the orphan
     publication plus the uncovered reader path must all be reported *)
  check_prints "mismatched publish/acquire fingerprints"
    [
      "R5 fx_r5_pair.ml Fx_r5_pair.t.cell unpaired-edge";
      "R5 fx_r5_pair.ml Fx_r5_pair.writer unpaired-edge";
      "R5 fx_r5_pair.ml Fx_r5_pair.reader unacquired-read";
    ]
    (run ~rows:pair_row [ "fx_r5_pair" ]);
  (* the two field-side legs (no publisher, no acquirer) share one
     fingerprint by design — line-free identity — but both messages exist *)
  let report = run ~rows:pair_row [ "fx_r5_pair" ] in
  let unpaired =
    List.filter (fun f -> f.Lint_types.kind = "unpaired-edge") report.Lint_engine.findings
  in
  Alcotest.(check int) "three unpaired-edge findings" 3 (List.length unpaired)

let test_r6_off_owner_write () =
  check_prints "off-owner-write fingerprint"
    [ "R6 fx_r6_owner.ml Fx_r6_owner.bump off-owner-write" ]
    (run ~rows:owner_row [ "fx_r6_owner" ])

let test_closure_escape () =
  check_prints "closure-escape fingerprint"
    [ "R5 fx_escape.ml Fx_escape.leak.<spawn1> closure-escape" ]
    (run [ "fx_escape" ])

let test_clean_module () =
  let report = run [ "fx_clean" ] in
  Alcotest.(check (list string)) "atomic-everything module is clean" [] (prints report);
  Alcotest.(check int) "no rows needed" 0 report.Lint_engine.checked_rows

(* -------------------------------------------------- whole-set consistency *)

let test_all_fixtures_linked () =
  (* linking all five modules into one program must report exactly the
     union of the per-module findings: the passes are whole-program but
     the violations are module-local, so nothing appears or vanishes *)
  check_prints "union of fingerprints across the linked set"
    [
      "R5 fx_r5_ref.ml Fx_r5_ref.hits unpublished-shared-ref";
      "R5 fx_r5_pair.ml Fx_r5_pair.t.cell unpaired-edge";
      "R5 fx_r5_pair.ml Fx_r5_pair.writer unpaired-edge";
      "R5 fx_r5_pair.ml Fx_r5_pair.reader unacquired-read";
      "R6 fx_r6_owner.ml Fx_r6_owner.bump off-owner-write";
      "R5 fx_escape.ml Fx_escape.leak.<spawn1> closure-escape";
    ]
    (run ~rows:(pair_row ^ owner_row)
       [ "fx_r5_ref"; "fx_r5_pair"; "fx_r6_owner"; "fx_escape"; "fx_clean" ])

let test_baseline_suppresses_fingerprint () =
  (* a baseline entry with the exact fingerprint silences the finding *)
  let baseline_text =
    "R6 fx_r6_owner.ml Fx_r6_owner.bump off-owner-write -- fixture: accepted for the test\n"
  in
  with_temp_file baseline_text (fun bpath ->
      let baseline = Lint_baseline.load bpath in
      with_temp_file owner_row (fun opath ->
          let ownership = Lint_ownership.load opath in
          let report =
            Lint_engine.run ~baseline ~ownership [ fixture_cmt "fx_r6_owner" ]
          in
          Alcotest.(check (list string)) "suppressed" [] (prints report);
          Alcotest.(check int) "counted as baselined" 1 report.Lint_engine.suppressed;
          Alcotest.(check int) "entry not stale" 0
            (List.length report.Lint_engine.stale_baseline)))

let test_malformed_context_rejected () =
  (* an explicit 4-cell row with an unknown keyword must raise, not be
     silently trusted — the CLI maps this to exit code 2 *)
  Alcotest.check_raises "unknown keyword raises"
    (Lint_ownership.Malformed "OWNERSHIP.md:1: unknown owner-context keyword 'owner:'")
    (fun () ->
      with_temp_file "| Fx_r6_owner.t.count | x | owner: Fx_r6_owner.official | note |\n"
        (fun path -> ignore (Lint_ownership.load path)))

let () =
  Alcotest.run "pint_lint whole-program passes"
    [
      ( "rule classes",
        [
          Alcotest.test_case "R5 unpublished shared ref" `Quick test_r5_unpublished_ref;
          Alcotest.test_case "R5 mismatched publish/acquire pair" `Quick test_r5_mismatched_pair;
          Alcotest.test_case "R6 off-owner write" `Quick test_r6_off_owner_write;
          Alcotest.test_case "R5 closure escape" `Quick test_closure_escape;
          Alcotest.test_case "clean module reports nothing" `Quick test_clean_module;
        ] );
      ( "whole-program",
        [
          Alcotest.test_case "linked set reports the exact union" `Quick test_all_fixtures_linked;
          Alcotest.test_case "baseline suppresses by fingerprint" `Quick
            test_baseline_suppresses_fingerprint;
          Alcotest.test_case "malformed owner-context rejected" `Quick
            test_malformed_context_rejected;
        ] );
    ]
