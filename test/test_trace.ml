(* Unit tests for the trace FIFO and the access-history queue, including
   cross-domain SPSC behaviour. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let mk_rec uid =
  let _, root = Sp_order.create () in
  Srec.make ~uid root

(* ------------------------------------------------------------- trace *)

let test_trace_fifo () =
  let t = Trace.create ~id:1 ~owner:0 in
  check_int "id" 1 (Trace.id t);
  check_int "owner" 0 (Trace.owner t);
  let recs = List.init 10 mk_rec in
  List.iter (Trace.push t) recs;
  List.iteri
    (fun i expected ->
      (match Trace.peek t with
      | Some got -> check_int (Printf.sprintf "peek %d" i) expected.Srec.uid got.Srec.uid
      | None -> Alcotest.fail "empty too early");
      Trace.pop t)
    recs;
  check_bool "empty" true (Trace.peek t = None)

let test_trace_chunk_boundaries () =
  (* push/pop across several chunk sizes *)
  let t = Trace.create ~id:0 ~owner:0 in
  let n = 1000 in
  for i = 0 to n - 1 do
    Trace.push t (mk_rec i)
  done;
  check_int "pushed" n (Trace.pushed t);
  for i = 0 to n - 1 do
    (match Trace.peek t with
    | Some r -> check_int "order" i r.Srec.uid
    | None -> Alcotest.fail "missing");
    Trace.pop t
  done;
  check_int "popped" n (Trace.popped t)

let test_trace_interleaved () =
  let t = Trace.create ~id:0 ~owner:0 in
  let next = ref 0 in
  let expect = ref 0 in
  for round = 1 to 50 do
    for _ = 1 to round mod 7 do
      Trace.push t (mk_rec !next);
      incr next
    done;
    while Trace.peek t <> None do
      (match Trace.peek t with
      | Some r ->
          check_int "interleaved order" !expect r.Srec.uid;
          incr expect
      | None -> ());
      Trace.pop t
    done
  done;
  check_int "all consumed" !next !expect

let test_trace_close_drained () =
  let t = Trace.create ~id:0 ~owner:0 in
  check_bool "not drained while open" false (Trace.drained t);
  Trace.push t (mk_rec 0);
  Trace.close t;
  check_bool "closed" true (Trace.is_closed t);
  check_bool "not drained with content" false (Trace.drained t);
  Trace.pop t;
  check_bool "drained" true (Trace.drained t)

let test_trace_unlock_latch () =
  let t = Trace.create ~id:0 ~owner:0 in
  check_bool "empty trace locked" false (Trace.unlocked t);
  let r = mk_rec 0 in
  Atomic.set r.Srec.pred 1;
  Trace.push t r;
  check_bool "pred=1 locked" false (Trace.unlocked t);
  Atomic.set r.Srec.pred 0;
  check_bool "pred=0 unlocks" true (Trace.unlocked t);
  (* latch holds even if pred changes again *)
  Atomic.set r.Srec.pred 5;
  check_bool "latched" true (Trace.unlocked t)

let test_trace_pop_empty_fails () =
  let t = Trace.create ~id:0 ~owner:0 in
  Alcotest.check_raises "pop empty" (Failure "Trace.pop: nothing available") (fun () ->
      Trace.pop t)

let test_trace_spsc_domains () =
  (* producer domain pushes 20k records; consumer (this domain) must observe
     them all in order *)
  let t = Trace.create ~id:0 ~owner:0 in
  let n = 20_000 in
  let producer =
    Domain.spawn (fun () ->
        for i = 0 to n - 1 do
          Trace.push t (mk_rec i)
        done;
        Trace.close t)
  in
  let seen = ref 0 in
  while not (Trace.drained t) do
    match Trace.peek t with
    | Some r ->
        check_int "spsc order" !seen r.Srec.uid;
        incr seen;
        Trace.pop t
    | None -> Domain.cpu_relax ()
  done;
  Domain.join producer;
  check_int "all seen" n !seen

(* --------------------------------------------------------------- ahq *)

let test_ahq_basic () =
  let q = Ahq.create ~capacity:8 () in
  check_int "capacity" 8 (Ahq.capacity q);
  check_bool "enqueue" true (Ahq.try_enqueue q (mk_rec 1));
  check_bool "L sees it" true ((Option.get (Ahq.peek q Ahq.l)).Srec.uid = 1);
  check_bool "R sees it" true ((Option.get (Ahq.peek q Ahq.r)).Srec.uid = 1);
  Ahq.advance q Ahq.l;
  check_bool "L done" true (Ahq.peek q Ahq.l = None);
  check_bool "R still pending" true (Ahq.peek q Ahq.r <> None);
  Ahq.advance q Ahq.r;
  check_bool "drained" true (Ahq.drained q)

let test_ahq_backpressure () =
  let q = Ahq.create ~capacity:4 () in
  for i = 0 to 3 do
    check_bool "fill" true (Ahq.try_enqueue q (mk_rec i))
  done;
  check_bool "full" false (Ahq.try_enqueue q (mk_rec 99));
  (* one reader advancing is not enough: the slot recycles only when both
     readers have passed *)
  Ahq.advance q Ahq.l;
  check_bool "still full (R behind)" false (Ahq.try_enqueue q (mk_rec 99));
  Ahq.advance q Ahq.r;
  check_bool "slot recycled" true (Ahq.try_enqueue q (mk_rec 4))

let test_ahq_fifo_order () =
  let q = Ahq.create ~capacity:16 () in
  let n = 100 in
  let enq = ref 0 and l = ref 0 and r = ref 0 in
  while !l < n || !r < n do
    if !enq < n && Ahq.try_enqueue q (mk_rec !enq) then incr enq;
    (match Ahq.peek q Ahq.l with
    | Some u ->
        check_int "L order" !l u.Srec.uid;
        Ahq.advance q Ahq.l;
        incr l
    | None -> ());
    match Ahq.peek q Ahq.r with
    | Some u ->
        check_int "R order" !r u.Srec.uid;
        Ahq.advance q Ahq.r;
        incr r
    | None -> ()
  done;
  check_bool "drained" true (Ahq.drained q)

let test_ahq_advance_empty_fails () =
  let q = Ahq.create ~capacity:4 () in
  Alcotest.check_raises "advance empty" (Failure "Ahq.advance: nothing pending") (fun () ->
      Ahq.advance q Ahq.l)

let test_ahq_concurrent_readers () =
  (* writer on this domain, two reader domains; both must see every element
     in order *)
  let q = Ahq.create ~capacity:64 () in
  let n = 30_000 in
  let mk_reader side =
    Domain.spawn (fun () ->
        let seen = ref 0 in
        while !seen < n do
          match Ahq.peek q side with
          | Some u ->
              if u.Srec.uid <> !seen then failwith "out of order";
              incr seen;
              Ahq.advance q side
          | None -> Domain.cpu_relax ()
        done;
        !seen)
  in
  let dl = mk_reader Ahq.l and dr = mk_reader Ahq.r in
  let enq = ref 0 in
  while !enq < n do
    if Ahq.try_enqueue q (mk_rec !enq) then incr enq else Domain.cpu_relax ()
  done;
  check_int "L consumed" n (Domain.join dl);
  check_int "R consumed" n (Domain.join dr);
  check_bool "drained" true (Ahq.drained q)

let test_ahq_peek_batch_basic () =
  let q = Ahq.create ~capacity:8 () in
  check_int "empty batch" 0 (Array.length (Ahq.peek_batch q Ahq.l));
  for i = 0 to 4 do
    ignore (Ahq.try_enqueue q (mk_rec i))
  done;
  (* batch larger than available: returns only what is pending *)
  let b = Ahq.peek_batch ~max:32 q Ahq.l in
  check_int "clamped to available" 5 (Array.length b);
  Array.iteri (fun k u -> check_int "batch order" k u.Srec.uid) b;
  (* max smaller than available: returns exactly max *)
  let b2 = Ahq.peek_batch ~max:2 q Ahq.l in
  check_int "clamped to max" 2 (Array.length b2);
  Ahq.advance_n q Ahq.l 5;
  check_bool "L drained" true (Ahq.peek q Ahq.l = None);
  check_int "R unaffected" 5 (Array.length (Ahq.peek_batch q Ahq.r))

let test_ahq_batch_wraparound () =
  (* drive enough records through a tiny ring that batches straddle the
     physical end of the buffer many times *)
  let q = Ahq.create ~capacity:8 () in
  let n = 100 in
  let enq = ref 0 and l = ref 0 and r = ref 0 in
  while !l < n || !r < n do
    while !enq < n && Ahq.try_enqueue q (mk_rec !enq) do
      incr enq
    done;
    List.iter
      (fun (side, seen) ->
        let b = Ahq.peek_batch ~max:5 q side in
        if Array.length b > 0 then begin
          Array.iter
            (fun u ->
              check_int "wrap order" !seen u.Srec.uid;
              incr seen)
            b;
          Ahq.advance_n q side (Array.length b)
        end)
      [ (Ahq.l, l); (Ahq.r, r) ]
  done;
  check_bool "drained" true (Ahq.drained q)

let test_ahq_batch_recycling () =
  (* a slot freed by a batch advance is recycled only once BOTH readers have
     passed it *)
  let q = Ahq.create ~capacity:4 () in
  for i = 0 to 3 do
    check_bool "fill" true (Ahq.try_enqueue q (mk_rec i))
  done;
  check_bool "full" false (Ahq.try_enqueue q (mk_rec 99));
  Ahq.advance_n q Ahq.l 3;
  check_bool "still full (R behind)" false (Ahq.try_enqueue q (mk_rec 99));
  Ahq.advance_n q Ahq.r 2;
  (* min(3, 2) = 2 slots past both readers *)
  check_bool "slot 0 recycled" true (Ahq.try_enqueue q (mk_rec 4));
  check_bool "slot 1 recycled" true (Ahq.try_enqueue q (mk_rec 5));
  check_bool "slot 2 not recycled (R at 2)" false (Ahq.try_enqueue q (mk_rec 99));
  Ahq.advance_n q Ahq.r 2;
  check_bool "catches up" true (Ahq.try_enqueue q (mk_rec 6))

let test_ahq_cached_min () =
  (* The writer only rescans the reader cursors when the cached lower bound
     on the minimum cursor would reject the enqueue. *)
  let q = Ahq.create ~capacity:4 () in
  for i = 0 to 3 do
    check_bool "fill" true (Ahq.try_enqueue q (mk_rec i))
  done;
  check_int "filling an empty ring never rescans" 0 (Ahq.min_rescans q);
  check_bool "full" false (Ahq.try_enqueue q (mk_rec 99));
  check_int "full ring forces a rescan" 1 (Ahq.min_rescans q);
  Ahq.advance q Ahq.l;
  Ahq.advance q Ahq.r;
  (* progress is invisible until the stale cached bound rejects again *)
  check_bool "admitted after rescan" true (Ahq.try_enqueue q (mk_rec 4));
  check_int "rescan found the new minimum" 2 (Ahq.min_rescans q);
  check_bool "full again" false (Ahq.try_enqueue q (mk_rec 99));
  check_int "rejection rescans" 3 (Ahq.min_rescans q);
  (* one reader alone does not free a slot: the minimum governs *)
  Ahq.advance q Ahq.l;
  check_bool "still full (R is the minimum)" false (Ahq.try_enqueue q (mk_rec 99));
  check_int "rescanned for the laggard" 4 (Ahq.min_rescans q);
  Ahq.advance q Ahq.r;
  check_bool "admitted once both moved" true (Ahq.try_enqueue q (mk_rec 5));
  check_int "final rescan count" 5 (Ahq.min_rescans q)

let test_ahq_peek_batch_into () =
  let q = Ahq.create ~capacity:8 () in
  let buf = Array.make 3 (mk_rec (-1)) in
  check_int "nothing pending" 0 (Ahq.peek_batch_into q Ahq.l buf);
  check_int "buffer untouched" (-1) buf.(0).Srec.uid;
  for i = 0 to 4 do
    ignore (Ahq.try_enqueue q (mk_rec i))
  done;
  check_int "clamped to buffer size" 3 (Ahq.peek_batch_into q Ahq.l buf);
  Array.iteri (fun k u -> check_int "batch order" k u.Srec.uid) buf;
  Ahq.advance_n q Ahq.l 3;
  check_int "remainder" 2 (Ahq.peek_batch_into q Ahq.l buf);
  check_int "first of remainder" 3 buf.(0).Srec.uid;
  check_int "second of remainder" 4 buf.(1).Srec.uid;
  check_int "stale leftover past the count" 2 buf.(2).Srec.uid;
  check_int "R unaffected" 3 (Ahq.peek_batch_into q Ahq.r buf);
  Alcotest.check_raises "empty buffer"
    (Invalid_argument "Ahq.peek_batch_into: empty buffer") (fun () ->
      ignore (Ahq.peek_batch_into q Ahq.l [||]))

let test_ahq_peek_batch_into_wraparound () =
  (* same as the peek_batch wraparound test, through the reusable buffer *)
  let q = Ahq.create ~capacity:8 () in
  let n = 100 in
  let bufs = [| Array.make 5 (mk_rec (-1)); Array.make 5 (mk_rec (-1)) |] in
  let enq = ref 0 and l = ref 0 and r = ref 0 in
  while !l < n || !r < n do
    while !enq < n && Ahq.try_enqueue q (mk_rec !enq) do
      incr enq
    done;
    List.iter
      (fun (side, seen) ->
        let buf = bufs.(side) in
        let k = Ahq.peek_batch_into q side buf in
        for j = 0 to k - 1 do
          check_int "wrap order" !seen buf.(j).Srec.uid;
          incr seen
        done;
        if k > 0 then Ahq.advance_n q side k)
      [ (Ahq.l, l); (Ahq.r, r) ]
  done;
  check_bool "drained" true (Ahq.drained q)

let test_ahq_advance_n_too_far_fails () =
  let q = Ahq.create ~capacity:8 () in
  ignore (Ahq.try_enqueue q (mk_rec 0));
  ignore (Ahq.try_enqueue q (mk_rec 1));
  Alcotest.check_raises "advance past pending" (Failure "Ahq.advance: nothing pending")
    (fun () -> Ahq.advance_n q Ahq.l 3)

let () =
  Alcotest.run "pint_trace"
    [
      ( "trace",
        [
          Alcotest.test_case "fifo" `Quick test_trace_fifo;
          Alcotest.test_case "chunk boundaries" `Quick test_trace_chunk_boundaries;
          Alcotest.test_case "interleaved" `Quick test_trace_interleaved;
          Alcotest.test_case "close/drained" `Quick test_trace_close_drained;
          Alcotest.test_case "unlock latch" `Quick test_trace_unlock_latch;
          Alcotest.test_case "pop empty" `Quick test_trace_pop_empty_fails;
          Alcotest.test_case "spsc across domains" `Quick test_trace_spsc_domains;
        ] );
      ( "ahq",
        [
          Alcotest.test_case "basic" `Quick test_ahq_basic;
          Alcotest.test_case "backpressure" `Quick test_ahq_backpressure;
          Alcotest.test_case "fifo order" `Quick test_ahq_fifo_order;
          Alcotest.test_case "advance empty" `Quick test_ahq_advance_empty_fails;
          Alcotest.test_case "concurrent readers" `Quick test_ahq_concurrent_readers;
          Alcotest.test_case "peek_batch basic" `Quick test_ahq_peek_batch_basic;
          Alcotest.test_case "batch wraparound" `Quick test_ahq_batch_wraparound;
          Alcotest.test_case "batch recycling" `Quick test_ahq_batch_recycling;
          Alcotest.test_case "cached min rescans" `Quick test_ahq_cached_min;
          Alcotest.test_case "peek_batch_into" `Quick test_ahq_peek_batch_into;
          Alcotest.test_case "peek_batch_into wraparound" `Quick test_ahq_peek_batch_into_wraparound;
          Alcotest.test_case "advance_n too far" `Quick test_ahq_advance_n_too_far_fails;
        ] );
    ]
