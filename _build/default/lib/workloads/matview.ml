module Row = struct
  type t = { buf : Membuf.f; r0 : int; c0 : int; stride : int }

  let whole buf n = { buf; r0 = 0; c0 = 0; stride = n }

  let quad t n q =
    let h = n / 2 in
    {
      t with
      r0 = t.r0 + (if q >= 2 then h else 0);
      c0 = t.c0 + (if q land 1 = 1 then h else 0);
    }

  let idx t i j = ((t.r0 + i) * t.stride) + t.c0 + j
  let get t i j = Membuf.get_f t.buf (idx t i j)
  let set t i j v = Membuf.set_f t.buf (idx t i j) v
  let peek t i j = Membuf.peek_f t.buf (idx t i j)
  let poke t i j v = Membuf.poke_f t.buf (idx t i j) v

  let announce_read t n =
    for i = 0 to n - 1 do
      Access.emit_read ~addr:(Membuf.base_f t.buf + idx t i 0) ~len:n
    done

  let announce_write t n =
    for i = 0 to n - 1 do
      Access.emit_write ~addr:(Membuf.base_f t.buf + idx t i 0) ~len:n
    done
end

module Z = struct
  type t = { buf : Membuf.f; off : int; n : int; base : int }

  let is_pow2 n = n > 0 && n land (n - 1) = 0

  let whole buf n ~base =
    if not (is_pow2 n && is_pow2 base && base <= n) then
      invalid_arg "Matview.Z.whole: need power-of-two n and base with base <= n";
    { buf; off = 0; n; base }

  let quad t q =
    let h = t.n / 2 in
    { t with off = t.off + (q * h * h); n = h }

  (* Address of (i, j): descend quadrants until the row-major leaf. *)
  let rec idx t i j =
    if t.n <= t.base then t.off + (i * t.n) + j
    else begin
      let h = t.n / 2 in
      let q = (if i >= h then 2 else 0) + if j >= h then 1 else 0 in
      idx (quad t q) (i mod h) (j mod h)
    end

  let get t i j = Membuf.get_f t.buf (idx t i j)
  let set t i j v = Membuf.set_f t.buf (idx t i j) v
  let peek t i j = Membuf.peek_f t.buf (idx t i j)
  let poke t i j v = Membuf.poke_f t.buf (idx t i j) v

  let announce_read t = Access.emit_read ~addr:(Membuf.base_f t.buf + t.off) ~len:(t.n * t.n)
  let announce_write t = Access.emit_write ~addr:(Membuf.base_f t.buf + t.off) ~len:(t.n * t.n)
end
