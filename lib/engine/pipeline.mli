(** Registration and the drive/drain loop for a set of {!Stage}s.

    One pipeline owns the full set of stages of an asynchronous component
    (for PINT: the writer treap worker plus the [2·S] reader treap
    workers).  {!drive} runs them round-robin on the calling thread until
    every stage reports [`Done] — the single-threaded drain used by the
    sequential executor and by [Detector.drain]; the multi-domain executor
    instead gives each registered stage its own domain via {!Stage.run}.
    Rounds in which no stage progresses back off exponentially
    ({!Backoff.relax}) instead of spinning on bare [Domain.cpu_relax]. *)

type t

val create : unit -> t
val of_stages : Stage.t list -> t

(** Append a stage; drive order is registration order. *)
val register : t -> Stage.t -> unit

val stages : t -> Stage.t list

(** Round-robin all stages to completion on the calling thread.  Stages
    already [`Done] (e.g. after a previous drive, or after dedicated
    domains finished them) are retired on their first step. *)
val drive : t -> unit

(** Concatenated {!Stage.diagnostics} of every registered stage. *)
val diagnostics : t -> (string * float) list
