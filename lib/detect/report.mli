(** Race reports.

    A determinacy race is reported between two strands with the conflicting
    address interval.  Reports are deduplicated on (earlier strand, later
    strand, kind) — the granularity at which the paper's Theorem 5 equates
    detectors.  The collector is thread-safe: PINT's treap workers run on
    separate domains. *)

type kind =
  | Write_write
  | Write_read  (** earlier write, later read *)
  | Read_write  (** earlier read, later write *)

(** How a race was established.  [Observed] races are Theorem-5 facts of
    the schedule that ran: the detectors witnessed the conflicting pair in
    the access history.  [Predicted] races were {e serialized} by the
    observed schedule but are reachable in a sync-preserving, window-bounded
    reordering of it (see {!Predict}); they are reported disjointly and
    never enter a detector's deduplication table. *)
type origin = Observed | Predicted

type race = {
  kind : kind;
  prior : int;  (** {!Sp_order.id} of the strand already in the access history *)
  current : int;  (** id of the strand whose access detected the race *)
  where : Interval.t;  (** a conflicting interval witness *)
}

type t

val create : unit -> t

(** [add t kind ~prior ~current where] records a race (deduplicated). *)
val add : t -> kind -> prior:int -> current:int -> Interval.t -> unit

(** Distinct races recorded. *)
val count : t -> int

(** Total reports including duplicates (diagnostic). *)
val raw_count : t -> int

(** All distinct races, ordered by (prior, current, kind). *)
val races : t -> race list

(** [mem t ~prior ~current] — some race between this (ordered) strand pair. *)
val mem : t -> prior:int -> current:int -> bool

val kind_to_string : kind -> string
val origin_to_string : origin -> string
val pp_race : Format.formatter -> race -> unit
