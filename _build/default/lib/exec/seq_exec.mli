(** Sequential depth-first executor.

    Runs the fork-join computation exactly as the serial elision would:
    [spawn f] executes [f] immediately, continuations are never stolen and
    every sync is trivial.  This is the execution mode of STINT (the serial
    baseline) and of PINT's one-core configuration.

    The executor still produces the full strand-boundary event stream, with
    Algorithm-1 bookkeeping applied, so any detector can run on top. *)

type result = {
  n_strands : int;  (** strands executed (records created) *)
  n_spawns : int;
  n_syncs : int;  (** non-degenerate syncs (strand boundaries) *)
}

(** [run ?aspace ~driver main] executes [main] to completion on the calling
    domain.  [driver] supplies the detector hooks; [aspace] defaults to a
    fresh address space.  Not reentrant. *)
val run : ?aspace:Aspace.t -> driver:Hooks.driver -> (unit -> unit) -> result
