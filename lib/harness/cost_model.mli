(** The virtual-cycle cost model.

    Every performance number in the reproduced figures is a deterministic
    function of measured event counts (words touched, arithmetic operations,
    instrumentation events, treap-node visits, steals) weighted by the
    constants below.  The constants were calibrated once against the
    relative magnitudes the paper reports for the [heat] benchmark in
    Figure 1 and then frozen — every other cell of every figure is emergent
    (see EXPERIMENTS.md for the calibration note).

    Semantics of each constant (virtual cycles):
    - [c_flop] — one arithmetic operation in the computation proper;
    - [c_word] — one word of memory traffic in the computation proper;
    - [c_strand], [c_spawn], [c_sync] — runtime bookkeeping at boundaries;
    - [c_coal_word] — per word: the load/store instrumentation hook plus
      runtime coalescing in the interval-based detectors (STINT and PINT);
    - [c_instr_event] — per instrumentation call site event;
    - [c_trace_push] — PINT-only per strand: trace insertion and
      Algorithm-1 bookkeeping;
    - [c_hash_word] — per word for the per-access detector (C-RACER):
      shadow-cell probe, up to three reachability queries, and update;
    - [c_treap_visit], [c_treap_strand] — access-history side of the
      interval detectors: per treap-node visit and per strand handled by a
      treap worker;
    - [c_steal], [c_steal_fail] — work stealing. *)

type t = {
  c_flop : int;
  c_word : int;
  c_strand : int;
  c_spawn : int;
  c_sync : int;
  c_coal_word : int;
  c_instr_event : int;
  c_trace_push : int;
  c_hash_word : int;
  c_treap_visit : int;
  c_treap_strand : int;
  c_steal : int;
  c_steal_fail : int;
}

val default : t

(** Strand-cost closures for {!Sim_exec.config}. *)

val base_cost : t -> Srec.t -> Events.finish_kind -> int
val stint_core_cost : t -> Srec.t -> Events.finish_kind -> int
val pint_core_cost : t -> Srec.t -> Events.finish_kind -> int
val cracer_core_cost : t -> Srec.t -> Events.finish_kind -> int

(** Virtual treap workers an N-shard PINT pipeline occupies (3 per shard:
    writer, lreader, rreader — the collector rides on shard 0's writer).
    The paper's "P cores = (P−3) core workers + 3 treap workers" worker
    accounting, generalized. *)
val treap_workers : shards:int -> int

(** Treap-worker step cost from a step's record and node-visit counts.
    Charged per record so a batched step cannot amortize the per-strand
    constant [c_treap_strand]. *)
val treap_step_cost : t -> records:int -> visits:int -> int

(** Synchronous (serial) access-history cost from detector diagnostics:
    [treap_time model ~visits ~strands ~treaps]. *)
val treap_time : t -> visits:float -> strands:float -> treaps:int -> float
