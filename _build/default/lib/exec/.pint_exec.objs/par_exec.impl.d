lib/exec/par_exec.ml: Access Array Aspace Atomic Book Domain Effect Events Fj Hooks List Membuf Mutex Option Rng Sp_order Srec Unix
