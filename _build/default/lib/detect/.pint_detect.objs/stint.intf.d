lib/detect/stint.mli: Detector
