(* Schedule-exploration stress tests for the two transfer structures of
   the pipeline: the broadcast queue (Ahq) and the work deque
   (Par_exec.Lockdq).

   Two layers per structure:

   - Randomized seeded interleavings, single-threaded: every operation is
     checked against a reference model step by step, so any deviation from
     FIFO (queue) or double-ended LIFO/FIFO (deque) semantics is caught at
     the exact operation that broke it.  Single-threaded driving makes the
     expected result exact — this explores operation orders, not memory
     orders.

   - A real-domains smoke test: one producer and concurrent consumers on
     actual domains, asserting the linearizable outcome (per-reader FIFO
     for the queue; exactly-once transfer for the deque), which exercises
     the actual synchronization under true parallelism. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* Srec values to move through the queue: uid is the identity we track. *)
let make_srecs n =
  let _sp, root = Sp_order.create () in
  Array.init n (fun uid -> Srec.make ~uid root)

(* ------------------------------------------------------- Ahq vs model *)

(* Reference model: the queue is broadcast SPMC — a single append-only
   sequence with one cursor per reader.  [try_enqueue] must succeed iff
   the ring has room against the *minimum* cursor. *)
let ahq_interleaving ~seed () =
  let rng = Random.State.make [| seed |] in
  let cap = 8 and n_readers = 2 and steps = 4000 in
  let q = Ahq.create ~capacity:cap ~readers:n_readers () in
  let pool = make_srecs steps in
  let pushed = ref 0 in
  let cursors = Array.make n_readers 0 in
  let model_min () = Array.fold_left min max_int cursors in
  let buf = Array.make 3 pool.(0) in
  for step = 1 to steps do
    match Random.State.int rng 4 with
    | 0 ->
        (* enqueue: exact admission against the min cursor *)
        let s = pool.(!pushed mod steps) in
        let expect_ok = !pushed - model_min () < cap in
        let ok = Ahq.try_enqueue q s in
        check_bool (Printf.sprintf "seed %d step %d: admission" seed step) expect_ok ok;
        if ok then incr pushed
    | 1 ->
        (* peek: the cursor-th element of the pushed sequence, or None *)
        let i = Random.State.int rng n_readers in
        let expect = if cursors.(i) < !pushed then Some (cursors.(i) mod steps) else None in
        let got = Option.map (fun (s : Srec.t) -> s.Srec.uid) (Ahq.peek q i) in
        (match (expect, got) with
        | None, None -> ()
        | Some e, Some g when e = g -> ()
        | _ -> Alcotest.failf "seed %d step %d: reader %d peek diverged from model" seed step i)
    | 2 ->
        (* batched peek through the reusable buffer *)
        let i = Random.State.int rng n_readers in
        let n = Ahq.peek_batch_into q i buf in
        check_int
          (Printf.sprintf "seed %d step %d: batch size" seed step)
          (min (!pushed - cursors.(i)) (Array.length buf))
          n;
        for k = 0 to n - 1 do
          check_int
            (Printf.sprintf "seed %d step %d: batch slot %d" seed step k)
            ((cursors.(i) + k) mod steps)
            buf.(k).Srec.uid
        done
    | _ ->
        (* advance: consume 1..3 pending records *)
        let i = Random.State.int rng n_readers in
        let pending = !pushed - cursors.(i) in
        if pending > 0 then begin
          let n = 1 + Random.State.int rng (min pending 3) in
          Ahq.advance_n q i n;
          cursors.(i) <- cursors.(i) + n;
          check_int
            (Printf.sprintf "seed %d step %d: processed" seed step)
            cursors.(i) (Ahq.processed q i)
        end
  done;
  (* drain both readers and the queue must agree it is empty *)
  for i = 0 to n_readers - 1 do
    let pending = !pushed - cursors.(i) in
    if pending > 0 then Ahq.advance_n q i pending
  done;
  check_bool "drained" true (Ahq.drained q);
  check_int "everything was enqueued exactly once" !pushed (Ahq.enqueued q)

(* Real domains: one writer, two readers, each reader must observe the
   full sequence in FIFO order — the broadcast queue never drops, dups, or
   reorders for any reader. *)
let ahq_domains () =
  let total = 20_000 in
  let q = Ahq.create ~capacity:64 ~readers:2 () in
  let pool = make_srecs total in
  let reader i () =
    let buf = Array.make 32 pool.(0) in
    let seen = ref 0 in
    let ok = ref true in
    while !seen < total do
      let n = Ahq.peek_batch_into q i buf in
      if n = 0 then Domain.cpu_relax ()
      else begin
        for k = 0 to n - 1 do
          if buf.(k).Srec.uid <> !seen + k then ok := false
        done;
        Ahq.advance_n q i n;
        seen := !seen + n
      end
    done;
    !ok
  in
  let r0 = Domain.spawn (reader 0) in
  let r1 = Domain.spawn (reader 1) in
  for k = 0 to total - 1 do
    while not (Ahq.try_enqueue q pool.(k)) do
      Domain.cpu_relax ()
    done
  done;
  check_bool "reader 0 saw FIFO order" true (Domain.join r0);
  check_bool "reader 1 saw FIFO order" true (Domain.join r1);
  check_bool "drained" true (Ahq.drained q)

(* ---------------------------------------------------- Lockdq vs model *)

(* Reference model: a plain list, head = bottom.  [push_bottom]/[pop_bottom]
   work at the head, [steal_top] at the last element. *)
let rec split_last = function
  | [] -> invalid_arg "split_last"
  | [ x ] -> ([], x)
  | x :: tl ->
      let rest, last = split_last tl in
      (x :: rest, last)

let lockdq_interleaving ~seed () =
  let rng = Random.State.make [| seed |] in
  let steps = 4000 in
  let dq : int Par_exec.Lockdq.t = Par_exec.Lockdq.create () in
  let model = ref [] in
  let next = ref 0 in
  for step = 1 to steps do
    match Random.State.int rng 3 with
    | 0 ->
        Par_exec.Lockdq.push_bottom dq !next;
        model := !next :: !model;
        incr next
    | 1 -> (
        let got = Par_exec.Lockdq.pop_bottom dq in
        match (!model, got) with
        | [], None -> ()
        | x :: rest, Some y when x = y -> model := rest
        | _ ->
            Alcotest.failf "seed %d step %d: pop_bottom diverged (got %s)" seed step
              (match got with None -> "None" | Some v -> string_of_int v))
    | _ -> (
        let got = Par_exec.Lockdq.steal_top dq in
        match (!model, got) with
        | [], None -> ()
        | l, Some y ->
            let rest, last = split_last l in
            if last = y then model := rest
            else
              Alcotest.failf "seed %d step %d: steal_top returned %d, model top %d" seed step y
                last
        | _ :: _, None -> Alcotest.failf "seed %d step %d: steal_top missed an element" seed step)
  done;
  (* drain: remaining elements must come out bottom-first, exactly once *)
  let rec drain () =
    match Par_exec.Lockdq.pop_bottom dq with
    | None -> check_int (Printf.sprintf "seed %d: model drained too" seed) 0 (List.length !model)
    | Some y -> (
        match !model with
        | x :: rest when x = y ->
            model := rest;
            drain ()
        | _ -> Alcotest.failf "seed %d: drain diverged at %d" seed y)
  in
  drain ();
  check_bool "is_empty after drain" true (Par_exec.Lockdq.is_empty dq)

(* Real domains: the owner pushes and pops at the bottom while two thieves
   steal from the top.  Linearizability here means exactly-once transfer:
   the multiset of popped + stolen + leftover values is exactly the pushed
   set, and each thief's steals arrive oldest-first (monotonically
   increasing values, since the owner pushes 0,1,2,… and never re-pushes). *)
let lockdq_domains () =
  let total = 20_000 in
  let dq : int Par_exec.Lockdq.t = Par_exec.Lockdq.create () in
  let stop = Atomic.make false in
  let thief () =
    let mine = ref [] in
    while not (Atomic.get stop) do
      match Par_exec.Lockdq.steal_top dq with
      | Some v -> mine := v :: !mine
      | None -> Domain.cpu_relax ()
    done;
    (* final sweep so nothing is stranded between stop and join *)
    let rec sweep () =
      match Par_exec.Lockdq.steal_top dq with
      | Some v ->
          mine := v :: !mine;
          sweep ()
      | None -> ()
    in
    sweep ();
    List.rev !mine
  in
  let t0 = Domain.spawn thief and t1 = Domain.spawn thief in
  let popped = ref [] in
  let rng = Random.State.make [| 7 |] in
  for v = 0 to total - 1 do
    Par_exec.Lockdq.push_bottom dq v;
    if Random.State.int rng 3 = 0 then
      match Par_exec.Lockdq.pop_bottom dq with
      | Some x -> popped := x :: !popped
      | None -> ()
  done;
  Atomic.set stop true;
  let s0 = Domain.join t0 and s1 = Domain.join t1 in
  let rec drain acc =
    match Par_exec.Lockdq.pop_bottom dq with Some v -> drain (v :: acc) | None -> acc
  in
  let leftovers = drain [] in
  let rec increasing = function
    | a :: (b :: _ as tl) -> a < b && increasing tl
    | _ -> true
  in
  check_bool "thief 0 stole oldest-first" true (increasing s0);
  check_bool "thief 1 stole oldest-first" true (increasing s1);
  (* exactly-once: popped + stolen + leftovers is a permutation of 0..n-1 *)
  let all = List.sort compare (!popped @ s0 @ s1 @ leftovers) in
  check_int "nothing lost or duplicated" total (List.length all);
  List.iteri (fun i v -> if i <> v then Alcotest.failf "value %d appears at rank %d" v i) all

let seeds = [ 1; 42; 1234; 99991 ]

let () =
  Alcotest.run "pint_sched_stress"
    [
      ( "ahq",
        List.map
          (fun seed ->
            Alcotest.test_case (Printf.sprintf "interleaving seed %d" seed) `Quick
              (ahq_interleaving ~seed))
          seeds
        @ [ Alcotest.test_case "real domains FIFO" `Quick ahq_domains ] );
      ( "lockdq",
        List.map
          (fun seed ->
            Alcotest.test_case (Printf.sprintf "interleaving seed %d" seed) `Quick
              (lockdq_interleaving ~seed))
          seeds
        @ [ Alcotest.test_case "real domains exactly-once" `Quick lockdq_domains ] );
    ]
