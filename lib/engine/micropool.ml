(* Shard micropools: the fixed stage-to-domain topology of the real
   executor (ROADMAP items 1-2, following the pinned-pool pattern of the
   ebsl OCaml-multicore work).

   One domain per pool, each cooperatively round-robining its own small
   set of stages — for PINT, shard k's {writer, lreader, rreader} treap
   triple — until every stage reports [`Done].  Stages are pinned for the
   pool's whole lifetime: a stage never migrates between domains, so all
   the single-owner state the stages carry (treaps, scratch buffers,
   consume buffers, AHQ cursors, event rings) keeps exactly one writing
   domain without any synchronization.  (OCaml exposes no portable OS-core
   affinity API, so "pinned" means pinned to a domain; the OS scheduler
   keeps a busy domain on its core in practice.)

   This replaces the previous one-domain-per-stage spawn: 3·shards
   domains, which oversubscribed the machine as soon as shards grew, and
   whose idle stages each burned a core waiting on their lane.  A pool
   interleaves its triple on one domain — the three stages of one shard
   share one lane's data anyway, so co-scheduling them is cache-friendly —
   and backs off with the engine {!Backoff} only when the whole triple is
   unproductive. *)

type pool = {
  p_id : int;
  p_stages : Stage.t array;
  p_ring : Evring.t; (* the pool domain's own obs track (Evring.null off) *)
  mutable p_parks : int; (* deep-backoff rounds: pool-idle diagnostics *)
}

type t = { pools : pool array; domains : unit Domain.t array }

let park_kind = Ev.park

(* Drive one pool to completion: round-robin every unfinished stage; any
   productive step resets the backoff ladder.  [`Idle]/[`Stalled] steps
   are counted by the stages themselves (Stage.exec), so per-stage
   diagnostics stay attributable even though the pool shares the domain. *)
let run_pool p =
  let n = Array.length p.p_stages in
  let finished = Array.make n false in
  let remaining = ref n in
  let idle_rounds = ref 0 in
  while !remaining > 0 do
    let progressed = ref false in
    Array.iteri
      (fun i s ->
        if not finished.(i) then begin
          let st = Stage.exec s in
          if Step.is_done st then begin
            finished.(i) <- true;
            decr remaining
          end
          else if Step.progressed st then progressed := true
        end)
      p.p_stages;
    if !remaining > 0 then
      if !progressed then idle_rounds := 0
      else begin
        incr idle_rounds;
        if !idle_rounds = Backoff.yield_round then begin
          (* entering the parked regime: one instant per park episode,
             emitted from the pool's own domain into its own ring *)
          p.p_parks <- p.p_parks + 1;
          Evring.emit p.p_ring ~kind:park_kind ~arg:p.p_id
        end;
        Backoff.relax !idle_rounds
      end
  done

let make ?(rings = [||]) (groups : Stage.t list list) =
  Array.of_list
    (List.mapi
       (fun i g ->
         {
           p_id = i;
           p_stages = Array.of_list g;
           p_ring = (if i < Array.length rings then rings.(i) else Evring.null);
           p_parks = 0;
         })
       groups)

(* Spawn one domain per pool.  The caller joins via {!join}; stages end on
   their own (`Done) once the upstream pipeline drains. *)
let spawn ?rings groups =
  let pools = make ?rings groups in
  let domains = Array.map (fun p -> Domain.spawn (fun () -> run_pool p)) pools in
  { pools; domains }

let join t = Array.iter Domain.join t.domains
let n_pools t = Array.length t.pools
let parks t = Array.fold_left (fun acc p -> acc + p.p_parks) 0 t.pools

(* Every stage its own pool: the degenerate grouping for stage lists with
   no shard structure (non-PINT detectors, ad-hoc stages). *)
let singletons stages = List.map (fun s -> [ s ]) stages

(* ------------------------------------------------------------- shared pool *)

(* A shared pool generalizes [spawn]/[join] from one-shot to multi-tenant:
   K long-lived worker domains serve stage groups that arrive while the
   pool runs (pint_serve sessions).  The pinning discipline is unchanged —
   a submitted group is assigned to exactly one worker domain and never
   migrates, so every single-owner invariant the stages carry still sees
   one writing domain for its whole lifetime.  Only the handoff is
   synchronized: a submission enqueues under the worker's mutex, and the
   worker adopts pending groups into its private active set.  Completion
   flows back through one atomic per slot. *)

type slot = {
  sl_stages : Stage.t array;
  sl_finished : bool array; (* adopting worker's private done flags *)
  mutable sl_remaining : int;
  sl_done : bool Atomic.t; (* set by the worker when the last stage is Done *)
}

type worker = {
  w_id : int;
  w_lock : Mutex.t;
  mutable w_incoming : slot list; (* guarded by [w_lock] *)
  w_pending : int Atomic.t; (* |w_incoming|, checked without the lock *)
  w_load : int Atomic.t; (* slots assigned and not yet retired *)
  mutable w_active : slot list; (* worker-domain private *)
  w_ring : Evring.t;
  mutable w_parks : int;
}

type shared = {
  sh_workers : worker array;
  sh_domains : unit Domain.t array;
  sh_stop : bool Atomic.t;
  sh_rr : int Atomic.t; (* submission tie-break cursor *)
}

type lease = slot list

let adopt w =
  if Atomic.get w.w_pending > 0 then begin
    Mutex.lock w.w_lock;
    let incoming = w.w_incoming in
    w.w_incoming <- [];
    Atomic.set w.w_pending 0;
    Mutex.unlock w.w_lock;
    (* preserve arrival order for fairness; incoming is push-front *)
    w.w_active <- w.w_active @ List.rev incoming
  end

let step_slot sl progressed =
  let n = Array.length sl.sl_stages in
  for i = 0 to n - 1 do
    if not sl.sl_finished.(i) then begin
      let st = Stage.exec sl.sl_stages.(i) in
      if Step.is_done st then begin
        sl.sl_finished.(i) <- true;
        sl.sl_remaining <- sl.sl_remaining - 1
      end
      else if Step.progressed st then progressed := true
    end
  done

let run_worker stop w =
  let idle_rounds = ref 0 in
  let running = ref true in
  while !running do
    adopt w;
    let progressed = ref false in
    List.iter (fun sl -> step_slot sl progressed) w.w_active;
    let before = List.length w.w_active in
    w.w_active <-
      List.filter
        (fun sl ->
          if sl.sl_remaining = 0 then begin
            Atomic.set sl.sl_done true;
            Atomic.decr w.w_load;
            false
          end
          else true)
        w.w_active;
    if List.length w.w_active < before then progressed := true;
    if w.w_active = [] && Atomic.get w.w_pending = 0 && Atomic.get stop then running := false
    else if !progressed then idle_rounds := 0
    else begin
      incr idle_rounds;
      if !idle_rounds = Backoff.yield_round then begin
        w.w_parks <- w.w_parks + 1;
        Evring.emit w.w_ring ~kind:park_kind ~arg:w.w_id
      end;
      Backoff.relax !idle_rounds
    end
  done

let shared ?(rings = [||]) k =
  if k < 1 then invalid_arg "Micropool.shared: need at least one worker";
  let workers =
    Array.init k (fun i ->
        {
          w_id = i;
          w_lock = Mutex.create ();
          w_incoming = [];
          w_pending = Atomic.make 0;
          w_load = Atomic.make 0;
          w_active = [];
          w_ring = (if i < Array.length rings then rings.(i) else Evring.null);
          w_parks = 0;
        })
  in
  let stop = Atomic.make false in
  let domains = Array.map (fun w -> Domain.spawn (fun () -> run_worker stop w)) workers in
  { sh_workers = workers; sh_domains = domains; sh_stop = stop; sh_rr = Atomic.make 0 }

let submit sh (groups : Stage.t list list) : lease =
  if Atomic.get sh.sh_stop then invalid_arg "Micropool.submit: pool is shutting down";
  List.map
    (fun g ->
      let stages = Array.of_list g in
      let sl =
        {
          sl_stages = stages;
          sl_finished = Array.make (Array.length stages) false;
          sl_remaining = Array.length stages;
          sl_done = Atomic.make false;
        }
      in
      (* least-loaded worker; round-robin cursor breaks ties so equal-load
         workers share admission evenly *)
      let k = Array.length sh.sh_workers in
      let start = Atomic.fetch_and_add sh.sh_rr 1 mod k in
      let best = ref sh.sh_workers.(start) in
      for i = 1 to k - 1 do
        let w = sh.sh_workers.((start + i) mod k) in
        if Atomic.get w.w_load < Atomic.get !best.w_load then best := w
      done;
      let w = !best in
      Atomic.incr w.w_load;
      Mutex.lock w.w_lock;
      w.w_incoming <- sl :: w.w_incoming;
      Atomic.incr w.w_pending;
      Mutex.unlock w.w_lock;
      sl)
    groups

let lease_done (l : lease) = List.for_all (fun sl -> Atomic.get sl.sl_done) l

let await l =
  let r = ref 0 in
  while not (lease_done l) do
    incr r;
    Backoff.relax !r
  done

let shutdown sh =
  Atomic.set sh.sh_stop true;
  Array.iter Domain.join sh.sh_domains

let shared_parks sh = Array.fold_left (fun acc w -> acc + w.w_parks) 0 sh.sh_workers
let n_shared_workers sh = Array.length sh.sh_workers
