(* Service-layer tests: streaming Replay.Session fidelity (chunked feeds,
   shared-pool pipelines), and the pint_serve daemon driven in-process —
   concurrent tenants over the golden corpus must be served race sets
   bit-identical to offline replay at the Theorem-5 (kind, prior, current)
   granularity, over-admission must be rejected with a framed error, and a
   mid-stream disconnect must leave the daemon responsive. *)

let check_bool = Alcotest.(check bool)

let golden_files () =
  let dir = "golden" in
  if not (Sys.file_exists dir && Sys.is_directory dir) then []
  else
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".trace")
    |> List.sort compare
    |> List.map (Filename.concat dir)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let key (r : Report.race) = (r.Report.kind, r.Report.prior, r.Report.current)
let signature races = List.sort_uniq compare (List.map key races)

let offline_sig bytes =
  let t = Tracefile.of_bytes bytes in
  let d, _ = Option.get (Systems.make_detector "pint") in
  signature (Replay.run t d).Replay.races

(* ------------------------------------------------------------- sessions *)

let feed_all s bytes chunk =
  let acc = ref [] in
  let n = String.length bytes in
  let pos = ref 0 in
  while !pos < n do
    let len = min chunk (n - !pos) in
    acc := List.rev_append (Replay.Session.feed s ~pos:!pos ~len bytes) !acc;
    pos := !pos + len
  done;
  acc := List.rev_append (Replay.Session.eof s) !acc;
  !acc

(* Chunked session feed = offline replay, at every chunk size (splitting
   varints, interval arrays and the CRC across feed boundaries). *)
let check_session path () =
  let bytes = read_file path in
  let expected = offline_sig bytes in
  List.iter
    (fun chunk ->
      let det, _ = Option.get (Systems.make_detector "pint") in
      let s = Replay.Session.create det in
      let races = feed_all s bytes chunk in
      det.Detector.drain ();
      let races = List.rev_append (Replay.Session.poll_races s) races in
      det.Detector.validate ();
      if signature races <> expected then
        Alcotest.failf "%s: chunk=%d session diverges from offline replay (%d vs %d races)"
          path chunk
          (List.length (signature races))
          (List.length expected);
      let o = Replay.Session.outcome s in
      check_bool (path ^ ": outcome races match") true (signature o.Replay.races = expected))
    [ 1; 97; 65536 ]

(* The same with the detector's pipeline on shared pool domains, detection
   racing the feed. *)
let check_session_pool path () =
  let bytes = read_file path in
  let expected = offline_sig bytes in
  let pool = Micropool.shared 2 in
  Fun.protect
    ~finally:(fun () -> Micropool.shutdown pool)
    (fun () ->
      let det, stages =
        Option.get
          (Systems.make_detector ~shards:2
             ~bp_rounds:Pint_detector.recommended_bp_rounds "pint")
      in
      let s = Replay.Session.create det in
      let lease = Micropool.submit pool (Systems.micropools stages) in
      let races = feed_all s bytes 512 in
      Micropool.await lease;
      det.Detector.drain ();
      let races = List.rev_append (Replay.Session.poll_races s) races in
      det.Detector.validate ();
      if signature races <> expected then
        Alcotest.failf "%s: pooled session diverges from offline replay (%d vs %d races)" path
          (List.length (signature races))
          (List.length expected))

(* A malformed stream must fail the session, and abort must be safe. *)
let test_session_corrupt () =
  let bytes = read_file (List.hd (golden_files ())) in
  let corrupted = Bytes.of_string bytes in
  let mid = String.length bytes / 2 in
  Bytes.set corrupted mid (Char.chr (Char.code (Bytes.get corrupted mid) lxor 0x10));
  let det, _ = Option.get (Systems.make_detector "pint") in
  let s = Replay.Session.create det in
  let failed =
    try
      ignore (feed_all s (Bytes.to_string corrupted) 64);
      false
    with Tracefile.Error _ | Replay.Corrupt _ -> true
  in
  check_bool "corrupt stream raises" true failed;
  Replay.Session.abort s;
  Replay.Session.abort s (* idempotent *);
  check_bool "aborted session is finished" true (Replay.Session.finished s)

(* ------------------------------------------------------------ the daemon *)

let fresh_sock_path =
  let n = ref 0 in
  fun () ->
    incr n;
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "pint-test-%d-%d.sock" (Unix.getpid ()) !n)

(* Start an in-process daemon; returns (server, join) where [join] stops
   the IO loop and joins its domain. *)
let start_daemon config =
  let path = fresh_sock_path () in
  let server = Serve_server.create ~config (Unix.ADDR_UNIX path) in
  let d = Domain.spawn (fun () -> Serve_server.serve ~poll:0.005 server) in
  let join () =
    Serve_server.stop server;
    Domain.join d
  in
  (server, join)

let test_config =
  {
    Serve_server.default_config with
    Serve_server.max_sessions = 4;
    pool_workers = 2;
    shards = 2;
    bp_rounds = Pint_detector.recommended_bp_rounds;
  }

(* One client per golden trace, all concurrent, against one daemon: every
   served race set must equal that trace's offline replay. *)
let test_daemon_concurrent () =
  let files = golden_files () in
  let server, join = start_daemon test_config in
  Fun.protect ~finally:join (fun () ->
      let addr = Serve_server.sockaddr server in
      let jobs =
        List.map
          (fun path ->
            let bytes = read_file path in
            (path, bytes, Domain.spawn (fun () -> Serve_client.run ~chunk:512 ~addr bytes)))
          files
      in
      List.iter
        (fun (path, bytes, d) ->
          match Domain.join d with
          | Error msg -> Alcotest.failf "%s: session rejected: %s" path msg
          | Ok r ->
              if Serve_client.signature r.Serve_client.races <> offline_sig bytes then
                Alcotest.failf "%s: served race set diverges from offline replay" path;
              check_bool (path ^ ": summary race count") true
                (r.Serve_client.n_races
                = List.length (Serve_client.signature r.Serve_client.races));
              check_bool (path ^ ": feed latency histogram served") true
                (List.mem_assoc "obs.h.serve.feed_us.p50" r.Serve_client.stats))
        jobs;
      let stats = Serve_server.stats server in
      check_bool "all sessions completed" true
        (List.assoc "serve.completed" stats = float_of_int (List.length files));
      check_bool "none rejected" true (List.assoc "serve.rejected" stats = 0.))

(* Raw framed handshake: connect and hold a session open without ending it. *)
let raw_connect addr =
  let fd = Unix.socket (Unix.domain_of_sockaddr addr) Unix.SOCK_STREAM 0 in
  Unix.connect fd addr;
  let out = Serve_proto.encode_client (Serve_proto.Hello { version = Serve_proto.protocol_version; shards = 0; predict = 0 }) in
  let n = Unix.write_substring fd out 0 (String.length out) in
  assert (n = String.length out);
  let frames = Serve_proto.Frames.create () in
  let buf = Bytes.create 4096 in
  let rec next () =
    match Serve_proto.Frames.next frames with
    | Some payload -> Serve_proto.decode_server payload
    | None ->
        let n = Unix.read fd buf 0 (Bytes.length buf) in
        if n = 0 then failwith "server closed during handshake";
        Serve_proto.Frames.feed frames ~len:n (Bytes.to_string buf);
        next ()
  in
  (fd, next)

(* Over-admission: with max_sessions = 1 and one session held open, the
   next connection must get a framed reject — and once the first session
   ends, the daemon must serve again. *)
let test_daemon_admission () =
  let config = { test_config with Serve_server.max_sessions = 1 } in
  let server, join = start_daemon config in
  Fun.protect ~finally:join (fun () ->
      let addr = Serve_server.sockaddr server in
      let bytes = read_file (List.hd (golden_files ())) in
      let fd, next = raw_connect addr in
      (match next () with
      | Serve_proto.Accepted _ -> ()
      | _ -> Alcotest.fail "first session not accepted");
      (match Serve_client.run ~addr bytes with
      | Error msg -> check_bool "reject mentions capacity" true (String.length msg > 0)
      | Ok _ -> Alcotest.fail "over-admission session was accepted");
      Unix.close fd;
      (* daemon stays responsive: the slot frees and a new session succeeds *)
      let rec retry n =
        match Serve_client.run ~addr bytes with
        | Ok r -> r
        | Error _ when n > 0 ->
            Unix.sleepf 0.02;
            retry (n - 1)
        | Error msg -> Alcotest.failf "daemon did not recover after disconnect: %s" msg
      in
      let r = retry 100 in
      check_bool "recovered session serves the right races" true
        (Serve_client.signature r.Serve_client.races = offline_sig bytes);
      check_bool "rejections counted" true
        (List.assoc "serve.rejected" (Serve_server.stats server) >= 1.))

(* A client dying mid-stream must fail only its own session. *)
let test_daemon_disconnect () =
  let server, join = start_daemon test_config in
  Fun.protect ~finally:join (fun () ->
      let addr = Serve_server.sockaddr server in
      let bytes = read_file (List.hd (golden_files ())) in
      let fd, next = raw_connect addr in
      (match next () with
      | Serve_proto.Accepted _ -> ()
      | _ -> Alcotest.fail "session not accepted");
      (* half a trace, then vanish *)
      let out =
        Serve_proto.encode_client (Serve_proto.Data (String.sub bytes 0 (String.length bytes / 2)))
      in
      ignore (Unix.write_substring fd out 0 (String.length out));
      Unix.close fd;
      (* the daemon must still serve a full session afterwards *)
      let rec retry n =
        match Serve_client.run ~addr bytes with
        | Ok r -> r
        | Error _ when n > 0 ->
            Unix.sleepf 0.02;
            retry (n - 1)
        | Error msg -> Alcotest.failf "daemon did not survive a disconnect: %s" msg
      in
      let r = retry 100 in
      check_bool "post-disconnect session serves the right races" true
        (Serve_client.signature r.Serve_client.races = offline_sig bytes))

(* A predict session (protocol v2): the lucky trace has no observed races,
   but its free-hidden W/W pair must come back in the summary's predicted
   block, matching the offline analysis; and a window above the daemon's
   cap must get a framed reject. *)
let test_daemon_predict () =
  let bytes = read_file "golden/lucky_racy.trace" in
  let server, join = start_daemon test_config in
  Fun.protect ~finally:join (fun () ->
      let addr = Serve_server.sockaddr server in
      match Serve_client.run ~addr ~predict:4 bytes with
      | Error msg -> Alcotest.failf "predict session rejected: %s" msg
      | Ok r ->
          check_bool "lucky has no observed races" true (r.Serve_client.races = []);
          let t = Tracefile.of_bytes bytes in
          let det, _ = Option.get (Systems.make_detector "pint") in
          let b = Predict.Builder.create () in
          let o = Replay.run ~on_strand:(Predict.Builder.observer b) t det in
          let pr =
            Predict.predict ~window:4 ~observed:o.Replay.races (Predict.Builder.dag b)
          in
          let offline =
            Serve_client.signature
              (List.map
                 (fun (f : Predict.finding) ->
                   (f.Predict.kind, f.Predict.prior, f.Predict.current, f.Predict.where))
                 pr.Predict.predicted)
          in
          check_bool "offline predicts the hidden pair" true (offline <> []);
          check_bool "served predictions match offline" true
            (Serve_client.signature r.Serve_client.predicted = offline);
          check_bool "predict diagnostics served" true
            (List.mem_assoc "predict_candidates" r.Serve_client.stats));
  let config = { test_config with Serve_server.max_window = 2 } in
  let server, join = start_daemon config in
  Fun.protect ~finally:join (fun () ->
      let addr = Serve_server.sockaddr server in
      match Serve_client.run ~addr ~predict:3 bytes with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "over-cap predict window was accepted")

(* A bad protocol version must be rejected with a framed error. *)
let test_daemon_bad_version () =
  let server, join = start_daemon test_config in
  Fun.protect ~finally:join (fun () ->
      let addr = Serve_server.sockaddr server in
      let fd = Unix.socket (Unix.domain_of_sockaddr addr) Unix.SOCK_STREAM 0 in
      Fun.protect
        ~finally:(fun () -> Unix.close fd)
        (fun () ->
          Unix.connect fd addr;
          let out =
            Serve_proto.encode_client
              (Serve_proto.Hello { version = Serve_proto.protocol_version + 1; shards = 0; predict = 0 })
          in
          ignore (Unix.write_substring fd out 0 (String.length out));
          let frames = Serve_proto.Frames.create () in
          let buf = Bytes.create 4096 in
          let rec next () =
            match Serve_proto.Frames.next frames with
            | Some payload -> Serve_proto.decode_server payload
            | None ->
                let n = Unix.read fd buf 0 (Bytes.length buf) in
                if n = 0 then failwith "closed without a reject frame";
                Serve_proto.Frames.feed frames ~len:n (Bytes.to_string buf);
                next ()
          in
          match next () with
          | Serve_proto.Reject _ -> ()
          | _ -> Alcotest.fail "version mismatch was not rejected"))

let () =
  let files = golden_files () in
  if files = [] then prerr_endline "test_serve: no golden traces found, nothing to check";
  Alcotest.run "pint_serve"
    [
      ( "session",
        List.map (fun p -> Alcotest.test_case p `Quick (check_session p)) files
        @ List.map
            (fun p -> Alcotest.test_case (p ^ " (pool)") `Quick (check_session_pool p))
            files
        @ [ Alcotest.test_case "corrupt stream + abort" `Quick test_session_corrupt ] );
      ( "daemon",
        [
          Alcotest.test_case "concurrent tenants = offline" `Quick test_daemon_concurrent;
          Alcotest.test_case "over-admission rejected" `Quick test_daemon_admission;
          Alcotest.test_case "mid-stream disconnect" `Quick test_daemon_disconnect;
          Alcotest.test_case "predict session" `Quick test_daemon_predict;
          Alcotest.test_case "version mismatch rejected" `Quick test_daemon_bad_version;
        ] );
    ]
