(** STINT-style interval treap: a treap of pairwise {e non-overlapping}
    memory intervals, each owned by one strand (Xu et al., ALENEX'22).

    The tree is a BST on interval low endpoints and a max-heap on random
    priorities.  Because stored intervals never overlap, low endpoints and
    high endpoints induce the same order, which the query and insertion
    algorithms exploit: the set of stored intervals overlapping a probe
    interval is always contiguous in key order.

    Insertions maintain the paper's exactness guarantee: inserting [3,7] by
    [w] into a treap holding [1,4,u],[6,10,v] yields [1,2,u],[3,7,w],
    [8,10,v].  Two insertion semantics cover the three access-history roles:

    - {!insert_replace} — last-writer semantics: the new owner takes the
      whole range; partially overlapped intervals are truncated.
    - {!insert_merge} — reader semantics: per overlapped segment a caller
      policy decides whether the incumbent survives ([`Keep]) or the new
      strand takes over ([`Replace]); uncovered gaps always go to the new
      strand.  The left-most and right-most reader treaps differ only in the
      policy closure they pass.

    [clear_range] supports §III-F: wiping a returning function's stack frame
    and delayed heap frees.

    Each treap instance is owned by exactly one worker (this is the whole
    point of PINT's design) so nothing here is thread-safe.  Single
    ownership is also what makes the allocation discipline safe: every
    mutating operation first probes for an overlap with one read-only
    descent and, in the (dominant) no-overlap case, inserts with a single
    split+join and no intermediate structures at all; the general path
    stages overlap entries and replacement pieces in two scratch buffers
    owned by the treap and reused across operations (see DESIGN.md §8).

    Node visits are counted in an internal ledger so the benchmark harness
    can charge virtual cycles proportional to real structural work; the
    fast/slow path split is counted too so detectors can report how often
    the coalesced interval stream let them skip the overlap machinery. *)

type 'o t

(** [create ~seed ~owner_eq ()] — [owner_eq] lets insertions merge adjacent
    equal-owner intervals, keeping the treap canonical and small. *)
val create : seed:int -> owner_eq:('o -> 'o -> bool) -> unit -> 'o t

(** Number of stored intervals. *)
val size : 'o t -> int

(** Total node visits performed so far (query + restructuring). *)
val visits : 'o t -> int

(** Total addresses covered by stored intervals. *)
val covered : 'o t -> int

(** Mutating operations ({!insert_replace}, {!insert_merge}, {!clear_range})
    that found no stored interval intersecting the operand (including, for
    inserts, its one-address neighbourhood) and took the single-descent
    no-overlap path. *)
val fastpath_hits : 'o t -> int

(** Mutating operations that found an overlap (or a touching neighbour) and
    ran the general extract/commit machinery. *)
val slowpath_hits : 'o t -> int

(** Slow-path operations that ran entirely inside previously grown scratch
    buffers (no fresh allocation for overlap/piece staging). *)
val scratch_reuse : 'o t -> int

(** [query t iv f] calls [f stored owner] for every stored interval
    overlapping [iv], in increasing address order. *)
val query : 'o t -> Interval.t -> f:(Interval.t -> 'o -> unit) -> unit

(** [find t addr] — owner of the interval covering [addr], if any. *)
val find : 'o t -> int -> (Interval.t * 'o) option

(** [insert_replace t iv owner] — last-writer semantics (see above). *)
val insert_replace : 'o t -> Interval.t -> 'o -> unit

(** [insert_merge t iv owner ~keep] — reader semantics.  For every stored
    segment [seg] with incumbent [u] overlapping [iv], the policy
    [keep ~incumbent:u] decides the segment's new owner; gaps inside [iv]
    get [owner].  The policy must be a pure function of the two owners. *)
val insert_merge : 'o t -> Interval.t -> 'o -> keep:(incumbent:'o -> [ `Keep | `Replace ]) -> unit

(** [clear_range t iv] removes all coverage of [iv], truncating stored
    intervals that straddle its boundary. *)
val clear_range : 'o t -> Interval.t -> unit

(** In-order traversal of all stored intervals. *)
val iter : 'o t -> f:(Interval.t -> 'o -> unit) -> unit

(** All stored intervals in address order. *)
val to_list : 'o t -> (Interval.t * 'o) list

(** Remove everything. *)
val reset : 'o t -> unit

(** Check every structural invariant (BST order, heap order, disjointness,
    canonical same-owner separation, size accounting); raises [Failure] on
    violation.  Test-only. *)
val validate : 'o t -> unit
