(* Observability layer tests: ring wraparound and drop accounting, histogram
   bucket boundaries, deterministic sim traces, and the Chrome trace-event
   JSON schema (parses, one metadata record per track, per-track monotone
   timestamps). *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

(* ------------------------------------------------------------------ rings *)

let ring_wraparound () =
  let r = Evring.create ~name:"t" ~clock:(Clock.counter ()) ~capacity:8 in
  for i = 0 to 19 do
    Evring.emit r ~kind:Ev.strand_finish ~arg:i
  done;
  check_int "recorded" 20 (Evring.recorded r);
  check_int "retained" 8 (Evring.retained r);
  check_int "dropped" 12 (Evring.dropped r);
  (* the retained window is the newest 8 events, oldest first *)
  let args = ref [] and last_ts = ref min_int and monotone = ref true in
  Evring.iter r (fun ~ts ~dur:_ ~kind:_ ~arg ->
      args := arg :: !args;
      if ts < !last_ts then monotone := false;
      last_ts := ts);
  Alcotest.(check (list int)) "newest window" [ 12; 13; 14; 15; 16; 17; 18; 19 ] (List.rev !args);
  check_bool "timestamps monotone" true !monotone

let ring_disabled_noop () =
  let r = Evring.null in
  Evring.emit r ~kind:Ev.strand_finish ~arg:1;
  Evring.emit_span r ~ts:5 ~dur:2 ~kind:Ev.treap_op ~arg:3;
  check_bool "disabled" true (not (Evring.enabled r));
  check_int "nothing recorded" 0 (Evring.recorded r);
  check_int "nothing dropped" 0 (Evring.dropped r)

let ring_span_advances_virtual_clock () =
  let clock = Clock.manual () in
  let r = Evring.create ~name:"t" ~clock ~capacity:8 in
  Evring.emit_span r ~ts:100 ~dur:50 ~kind:Ev.treap_op ~arg:1;
  (* later implicit stamps must not go backwards past the span's end *)
  check_bool "clock caught up" true (Clock.now clock >= 150)

(* ------------------------------------------------------------- histograms *)

let histo_bucket_boundaries () =
  (* log2 buckets: 0 and 1 land in bucket 0; [2^k, 2^(k+1)) in bucket k *)
  check_int "0" 0 (Histo.bucket_of 0);
  check_int "1" 0 (Histo.bucket_of 1);
  check_int "2" 1 (Histo.bucket_of 2);
  check_int "3" 1 (Histo.bucket_of 3);
  check_int "4" 2 (Histo.bucket_of 4);
  check_int "7" 2 (Histo.bucket_of 7);
  check_int "8" 3 (Histo.bucket_of 8);
  check_int "1023" 9 (Histo.bucket_of 1023);
  check_int "1024" 10 (Histo.bucket_of 1024);
  check_int "negative clamps to 0" 0 (Histo.bucket_of (-5));
  check_int "2^20" 20 (Histo.bucket_of (1 lsl 20))

let histo_quantiles () =
  let h = Histo.create () in
  List.iter (Histo.add h) [ 1; 2; 4; 8; 16; 32; 64; 128 ];
  check_int "count" 8 (Histo.count h);
  check_int "max" 128 (Histo.max_value h);
  let p50 = Histo.quantile h 0.5 and p90 = Histo.quantile h 0.9 in
  check_bool "p50 <= p90" true (p50 <= p90);
  check_bool "p90 <= max" true (p90 <= Histo.max_value h);
  (* negative latencies (cross-timeline clamps) count in bucket 0 *)
  Histo.add h (-7);
  check_int "negative counted" 9 (Histo.count h)

let histo_merge () =
  let a = Histo.create () and b = Histo.create () in
  List.iter (Histo.add a) [ 1; 2; 3 ];
  List.iter (Histo.add b) [ 100; 200 ];
  Histo.merge_into ~src:b ~dst:a;
  check_int "merged count" 5 (Histo.count a);
  check_int "merged max" 200 (Histo.max_value a)

(* ------------------------------------------------- session and summary *)

let disabled_session () =
  let obs = Obs.disabled in
  check_bool "disabled" true (not (Obs.enabled obs));
  check_bool "null ring" true (Obs.track obs "x" == Evring.null);
  check_bool "dummy histo" true (Obs.histo obs "y" == Histo.dummy)

let track_get_or_create () =
  let obs = Obs.create ~clock:(Clock.counter ()) () in
  let a = Obs.track obs "writer" and b = Obs.track obs "writer" in
  check_bool "same ring" true (a == b);
  check_int "one track" 1 (List.length (Obs.tracks obs))

(* ------------------------------------------- profiled simulator runs *)

(* a full profiled heat run under the simulator: obs wired through the
   detector factory, driver instrumented, sim pinning the manual clock *)
let profiled_sim_run ?(seed = 11) ?(workers = 4) () =
  let w = Registry.find "heat" in
  let inst = w.Workload.make ~size:32 ~base:8 in
  let obs = Obs.create ~clock:(Clock.manual ()) () in
  let det, stages = Option.get (Systems.make_detector ~obs "pint") in
  let driver = Obs_hooks.instrument obs det.Detector.driver in
  let config =
    { Sim_exec.default_config with n_workers = workers; seed; stages; obs_clock = Obs.clock obs }
  in
  ignore (Sim_exec.run ~config ~driver inst.Workload.run);
  det.Detector.drain ();
  obs

let sim_trace_deterministic () =
  let j1 = Obs.chrome_json (profiled_sim_run ()) in
  let j2 = Obs.chrome_json (profiled_sim_run ()) in
  check_string "byte-identical" j1 j2;
  let j3 = Obs.chrome_json (profiled_sim_run ~workers:2 ()) in
  check_bool "schedule changes the trace" true (j1 <> j3)

let latency_histos_populated () =
  let obs = profiled_sim_run () in
  let n name = Histo.count (Obs.histo obs name) in
  check_bool "finish_to_collect populated" true (n "lat.finish_to_collect" > 0);
  check_bool "finish_to_done populated" true (n "lat.finish_to_done" > 0);
  (* every strand passes collect and completion exactly once *)
  check_int "collect = done" (n "lat.finish_to_collect") (n "lat.finish_to_done")

let summary_metrics () =
  let obs = profiled_sim_run () in
  let s = Obs.summary obs in
  let get k = match List.assoc_opt k s with Some v -> v | None -> -1. in
  check_bool "events > 0" true (get "obs.events" > 0.);
  check_bool "tracks counted" true (get "obs.tracks" >= 7.);
  check_bool "occupancy tracked" true (get "obs.ahq_occupancy.max" > 0.)

(* ---------------------------------------------------- Chrome JSON schema *)

let chrome_schema () =
  let obs = profiled_sim_run () in
  let j = Jsonx.parse (Obs.chrome_json ~meta:[ ("k", "v") ] obs) in
  let events =
    match Option.bind (Jsonx.member "traceEvents" j) Jsonx.to_list with
    | Some l -> l
    | None -> Alcotest.fail "no traceEvents array"
  in
  check_bool "has events" true (List.length events > 0);
  let str m e = Option.bind (Jsonx.member m e) Jsonx.to_str in
  let num m e = Option.bind (Jsonx.member m e) Jsonx.to_float in
  (* one thread_name metadata record per track, covering all stage tracks *)
  let names =
    List.filter_map
      (fun e ->
        if str "ph" e = Some "M" then Option.bind (Jsonx.member "args" e) (str "name") else None)
      events
  in
  List.iter
    (fun t -> check_bool (t ^ " track present") true (List.mem t names))
    [ "writer"; "lreader"; "rreader"; "core0" ];
  (* per-track timestamps are monotone, and every event carries ph/ts/tid *)
  let last = Hashtbl.create 8 in
  List.iter
    (fun e ->
      match str "ph" e with
      | Some "M" -> ()
      | Some _ ->
          let tid =
            match num "tid" e with Some t -> t | None -> Alcotest.fail "event without tid"
          in
          let ts =
            match num "ts" e with Some t -> t | None -> Alcotest.fail "event without ts"
          in
          let prev = match Hashtbl.find_opt last tid with Some p -> p | None -> neg_infinity in
          check_bool "ts monotone per tid" true (ts >= prev);
          Hashtbl.replace last tid ts
      | None -> Alcotest.fail "event without ph")
    events;
  (* the meta pair lands in otherData *)
  match Option.bind (Jsonx.member "otherData" j) (fun o -> Jsonx.member "k" o) with
  | Some (Jsonx.Str "v") -> ()
  | _ -> Alcotest.fail "meta not exported"

let () =
  Alcotest.run "pint_obs"
    [
      ( "rings",
        [
          Alcotest.test_case "wraparound + drop accounting" `Quick ring_wraparound;
          Alcotest.test_case "disabled ring no-op" `Quick ring_disabled_noop;
          Alcotest.test_case "span advances virtual clock" `Quick ring_span_advances_virtual_clock;
        ] );
      ( "histograms",
        [
          Alcotest.test_case "bucket boundaries" `Quick histo_bucket_boundaries;
          Alcotest.test_case "quantile ordering" `Quick histo_quantiles;
          Alcotest.test_case "merge" `Quick histo_merge;
        ] );
      ( "session",
        [
          Alcotest.test_case "disabled session" `Quick disabled_session;
          Alcotest.test_case "track get-or-create" `Quick track_get_or_create;
        ] );
      ( "profiled-sim",
        [
          Alcotest.test_case "deterministic trace" `Quick sim_trace_deterministic;
          Alcotest.test_case "latency histograms" `Quick latency_histos_populated;
          Alcotest.test_case "summary metrics" `Quick summary_metrics;
        ] );
      ("chrome", [ Alcotest.test_case "trace-event schema" `Quick chrome_schema ]);
    ]
