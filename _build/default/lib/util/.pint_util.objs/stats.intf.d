lib/util/stats.mli:
