test/test_par.ml: Alcotest Cracer Detector Fj Hooks List Membuf Par_exec Pint_detector Rng Seq_exec Stint Test_sim_progs
