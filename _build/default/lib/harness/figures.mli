(** Reproduction of every table/figure in the paper's evaluation (§IV).

    Each function renders the corresponding figure as text (same rows,
    same bracket/parenthesis annotations as the paper) and also returns the
    raw measurements so tests and EXPERIMENTS.md generation can assert on
    them.  Times are virtual seconds (10⁶ virtual cycles); see
    EXPERIMENTS.md for the unit and calibration discussion.

    Worker accounting matches the paper: "P cores" gives PINT P−3 core
    workers plus the three treap workers, while the baseline and C-RACER
    use all P cores as core workers.  [cores] defaults to 20 (the paper's
    single-socket configuration). *)

type fig1_row = {
  f1_name : string;
  base1 : float;
  stint1 : float;
  pint1 : float;
  cracer1 : float;
  base_p : float;
  pint_p : float;
  cracer_p : float;
}

val fig1 : ?model:Cost_model.t -> ?cores:int -> unit -> fig1_row list * string

type fig2_row = {
  f2_name : string;
  par_overhead : float;  (** PINT₁ / STINT₁ *)
  core_work : float;
  writer_work : float;
  rreader_work : float;
  lreader_work : float;
  par_core : float;  (** core-component time on [cores] *)
  par_total : float;
}

val fig2 : ?model:Cost_model.t -> ?cores:int -> unit -> fig2_row list * string

type fig3_cell = { total_t : float; core_t : float }

(** Strong scaling of PINT: rows = heat/mmul/sort/stra, columns = core
    worker counts (1, 4, 8, 16, 24, 32). *)
val fig3 :
  ?model:Cost_model.t -> ?workers:int list -> unit -> (string * (int * fig3_cell) list) list * string

type fig4_cell = { f4_workers : int; f4_size : int; f4_base_t : float; f4_pint : fig3_cell }

(** Weak scaling: heat/sort double the problem size per core-worker
    doubling, mmul scales the matrix dimension by 1.5x, stra doubles it. *)
val fig4 : ?model:Cost_model.t -> unit -> (string * fig4_cell list) list * string
