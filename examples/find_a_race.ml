(* A realistic debugging session: a parallel histogram + normalization
   pipeline with a subtle missing [scope].  The helper function spawns into
   its caller's sync block, so the normalization pass starts while bucket
   counting is still in flight — a classic fork-join bug.  PINT pinpoints
   the racing strand pairs; the fixed version comes back clean.

     dune exec examples/find_a_race.exe *)

let n_values = 2048
let n_buckets = 16
let shard_count = 8

(* Count values into per-shard bucket arrays, in parallel. *)
let count_shards ~values ~shards () =
  let per = n_values / shard_count in
  for s = 0 to shard_count - 1 do
    Fj.spawn (fun () ->
        for i = s * per to ((s + 1) * per) - 1 do
          let v = Membuf.get_f values i in
          let b = min (n_buckets - 1) (int_of_float (v *. float_of_int n_buckets)) in
          let idx = (s * n_buckets) + b in
          Membuf.set_f shards idx (Membuf.get_f shards idx +. 1.0)
        done)
  done
(* NOTE: no sync here — the caller must scope or sync. *)

let reduce_and_normalize ~shards ~hist () =
  for b = 0 to n_buckets - 1 do
    let acc = ref 0.0 in
    for s = 0 to shard_count - 1 do
      acc := !acc +. Membuf.get_f shards ((s * n_buckets) + b)
    done;
    Membuf.set_f hist b (!acc /. float_of_int n_values)
  done

let pipeline ~fixed () =
  let values = Fj.alloc_f n_values in
  let rng = Rng.create 42 in
  for i = 0 to n_values - 1 do
    Membuf.poke_f values i (Rng.float rng)
  done;
  let shards = Fj.alloc_f (shard_count * n_buckets) in
  let hist = Fj.alloc_f n_buckets in
  if fixed then
    (* the fix: give the counting phase its own sync scope *)
    Fj.scope (fun () ->
        count_shards ~values ~shards ();
        Fj.sync ())
  else count_shards ~values ~shards ();
  (* BUG (when not fixed): shards are still being written here *)
  reduce_and_normalize ~shards ~hist ();
  Fj.sync ()

let diagnose name ~fixed =
  let p = Pint_detector.make () in
  let det = Pint_detector.detector p in
  let config =
    { Sim_exec.default_config with n_workers = 6; stages = Pint_detector.stages p }
  in
  let _ = Sim_exec.run ~config ~driver:det.Detector.driver (pipeline ~fixed) in
  let races = Detector.races det in
  Printf.printf "%s: %d racing pair(s)\n" name (List.length races);
  List.iteri (fun i r -> if i < 5 then Format.printf "  %a@." Report.pp_race r) races;
  races <> []

let () =
  let buggy_found = diagnose "histogram pipeline (buggy)" ~fixed:false in
  let fixed_found = diagnose "histogram pipeline (fixed)" ~fixed:true in
  if buggy_found && not fixed_found then print_endline "diagnosis complete: bug found and fixed."
  else begin
    print_endline "unexpected detector behaviour!";
    exit 1
  end
