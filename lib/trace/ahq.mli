(** An access-history queue lane.

    A bounded ring written only by one producer (the collector / writer
    treap worker) and read by consumer treap workers, each through its own
    cursor — the paper's "only the writer treap worker modifies it, the
    reader treap workers only read it" design.  A slot is recycled (and its
    record reference dropped) once every reader has moved past it; if the
    ring is full the producer stalls, which is the natural backpressure
    when the treap workers fall behind.

    The paper runs one lane with exactly two readers (the left-most and
    right-most reader treap workers); the sharded access history
    ([Pint_detector.make ~shards], routed by {!Lanes}) runs one lane per
    address-range shard, each with its own reader set, so the ring is
    polymorphic in its payload and supports an arbitrary reader count.
    Readers are identified by index; {!l} and {!r} name the classic two.

    Safe with the producer and each reader on distinct domains: slot
    publication and recycling both ride atomic head/cursor edges (see the
    memory-ordering audit at the top of the implementation), with no lock
    on any path. *)

type 'a t

type reader = int

(** Conventional names for the two-reader configuration. *)
val l : reader

val r : reader

(** [create ?capacity ~readers ()] — [readers >= 1] cursors. *)
val create : ?capacity:int -> ?readers:int -> unit -> 'a t

val n_readers : 'a t -> int

(** Install observability tracks (before the pipeline starts): the writer
    ring receives an {!Ev.enqueue} occupancy sample per successful enqueue,
    reader ring [i] receives {!Ev.recycle} slot-recycling events and
    occupancy samples from reader [i]'s cursor advances.  Disabled rings
    ({!Evring.null}, the default) make all of it a no-op. *)
val set_obs : 'a t -> writer:Evring.t -> readers:Evring.t array -> unit

(** {2 Producer (writer treap worker)} *)

(** [has_room t] — true when the next {!try_enqueue} would succeed.
    Checked against a cached lower bound on the minimum reader cursor
    (cursors only advance, so the bound stays valid); the cursors are
    rescanned only when the cached bound would reject.  Producer-side only:
    the cache it refreshes is writer-private.  With a single producer the
    answer stays valid until that producer enqueues, which is what lets
    {!Lanes.enqueue_each} commit all-or-nothing across lanes. *)
val has_room : 'a t -> bool

(** [try_enqueue t s] — false iff the ring is full (same bound as
    {!has_room}, making the common ring-not-near-full enqueue O(1) in the
    reader count). *)
val try_enqueue : 'a t -> 'a -> bool

(** {2 Consumers (reader treap workers)} *)

(** Next record for this reader, if the producer has published one. *)
val peek : 'a t -> reader -> 'a option

(** Advance this reader's cursor past the record returned by [peek]; also
    clears the slot once every reader has passed it.
    @raise Failure if nothing is pending for this reader. *)
val advance : 'a t -> reader -> unit

(** Default [max] for {!peek_batch}. *)
val default_batch : int

(** [peek_batch ?max t i] — up to [max] (default {!default_batch}) pending
    records for reader [i], oldest first; [[||]] when none are pending.
    Batched consumption lets a reader amortize its cursor update and
    slot-recycling scan over the whole batch: follow with
    [advance_n t i (Array.length batch)]. *)
val peek_batch : ?max:int -> 'a t -> reader -> 'a array

(** [peek_batch_into t i buf] — like {!peek_batch} with [max = Array.length
    buf], but fills the caller-provided buffer instead of allocating a fresh
    array, and returns the number of records written (0 when none pending).
    The reader owns [buf] and reuses it across steps; entries past the
    returned count are stale leftovers from earlier batches.
    @raise Invalid_argument if [buf] is empty. *)
val peek_batch_into : 'a t -> reader -> 'a array -> int

(** Advance reader [i]'s cursor by [n] records, recycling every slot all
    other readers have already passed, with a single scan of the other
    cursors for the whole batch.
    @raise Failure if fewer than [n] records are pending. *)
val advance_n : 'a t -> reader -> int -> unit

(** {2 Diagnostics} *)

val enqueued : 'a t -> int
val processed : 'a t -> reader -> int

(** Number of times the producer had to rescan the reader cursors because
    the cached minimum-cursor bound would have rejected an enqueue. *)
val min_rescans : 'a t -> int

(** High-water occupancy mark observed by the producer (against the cached
    cursor bound, so conservative the same way the emitted samples are). *)
val peak_occupancy : 'a t -> int

(** Exact current depth (enqueued minus the slowest cursor); scans the
    cursors, so diagnostics-side only. *)
val depth : 'a t -> int

(** All readers fully caught up with the producer. *)
val drained : 'a t -> bool

val capacity : 'a t -> int
