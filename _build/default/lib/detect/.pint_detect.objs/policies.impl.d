lib/detect/policies.ml: Sp_order
