(* Virtual-time simulator tests: scheduling correctness, determinism,
   speedup shape, and race detection equivalence with the sequential
   executor under real (simulated) parallel interleavings. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let config ?(n_workers = 4) ?(seed = 7) ?(stages = []) () =
  { Sim_exec.default_config with n_workers; seed; stages }

let null_driver _ctx = Hooks.null_hooks

(* Parallel sum-of-squares: spawn tree over a buffer, then a reduction. *)
let sum_squares_prog n result () =
  let b = Fj.alloc_f n in
  for i = 0 to n - 1 do
    Membuf.set_f b i (float_of_int i)
  done;
  let rec go lo hi =
    if hi - lo <= 8 then
      for i = lo to hi - 1 do
        Membuf.set_f b i (Membuf.peek_f b i *. Membuf.peek_f b i)
      done
    else begin
      let mid = (lo + hi) / 2 in
      Fj.scope (fun () ->
          Fj.spawn (fun () -> go lo mid);
          go mid hi;
          Fj.sync ())
    end
  in
  go 0 n;
  let acc = ref 0. in
  for i = 0 to n - 1 do
    acc := !acc +. Membuf.peek_f b i
  done;
  result := !acc

let expected_sum_squares n =
  let acc = ref 0. in
  for i = 0 to n - 1 do
    acc := !acc +. (float_of_int i ** 4.)
  done;
  !acc

(* NOTE: set_f squares peek*peek where initial value is i, so each cell
   becomes i^2... and we sum those: expected = sum i^2.  Keep the oracle in
   one place to avoid drift. *)
let expected n =
  let acc = ref 0. in
  for i = 0 to n - 1 do
    acc := !acc +. float_of_int (i * i)
  done;
  !acc

let test_computes_correctly () =
  let result = ref 0. in
  let _ = Sim_exec.run ~config:(config ()) ~driver:null_driver (sum_squares_prog 256 result) in
  ignore expected_sum_squares;
  Alcotest.(check (float 1e-6)) "sum of squares" (expected 256) !result

let test_single_worker_no_steals () =
  let result = ref 0. in
  let r =
    Sim_exec.run ~config:(config ~n_workers:1 ()) ~driver:null_driver (sum_squares_prog 128 result)
  in
  check_int "no steals" 0 r.Sim_exec.n_steals;
  check_int "no non-trivial syncs" 0 r.Sim_exec.n_nontrivial_syncs;
  Alcotest.(check (float 1e-6)) "result" (expected 128) !result

let test_steals_happen_with_many_workers () =
  let result = ref 0. in
  let r =
    Sim_exec.run ~config:(config ~n_workers:8 ()) ~driver:null_driver (sum_squares_prog 512 result)
  in
  check_bool "steals occurred" true (r.Sim_exec.n_steals > 0);
  check_bool "non-trivial syncs occurred" true (r.Sim_exec.n_nontrivial_syncs > 0);
  Alcotest.(check (float 1e-6)) "result" (expected 512) !result

let test_determinism () =
  let run () =
    let result = ref 0. in
    let r =
      Sim_exec.run ~config:(config ~n_workers:6 ~seed:13 ()) ~driver:null_driver
        (sum_squares_prog 300 result)
    in
    (r.Sim_exec.makespan, r.Sim_exec.n_steals, r.Sim_exec.worker_clocks, !result)
  in
  let a = run () and b = run () in
  check_bool "bit-identical reruns" true (a = b)

let test_seed_changes_schedule () =
  let run seed =
    let result = ref 0. in
    let r =
      Sim_exec.run ~config:(config ~n_workers:6 ~seed ()) ~driver:null_driver
        (sum_squares_prog 300 result)
    in
    (r.Sim_exec.n_steals, r.Sim_exec.makespan)
  in
  (* different seeds usually give different schedules; check at least one of
     several differs to avoid flakiness *)
  let base = run 1 in
  let others = List.map run [ 2; 3; 4; 5 ] in
  check_bool "some schedule differs" true (List.exists (fun o -> o <> base) others)

let test_speedup_shape () =
  let makespan p =
    let result = ref 0. in
    let r =
      Sim_exec.run ~config:(config ~n_workers:p ()) ~driver:null_driver
        (sum_squares_prog 2048 result)
    in
    r.Sim_exec.makespan
  in
  let t1 = makespan 1 and t4 = makespan 4 and t16 = makespan 16 in
  check_bool "4 workers faster" true (float_of_int t4 < 0.5 *. float_of_int t1);
  check_bool "16 workers faster than 4" true (t16 < t4);
  check_bool "work conservation" true (float_of_int t16 > float_of_int t1 /. 32.)

let test_work_conservation () =
  (* total core work should be schedule-independent *)
  let work p seed =
    let result = ref 0. in
    let r =
      Sim_exec.run ~config:(config ~n_workers:p ~seed ()) ~driver:null_driver
        (sum_squares_prog 256 result)
    in
    r.Sim_exec.core_work
  in
  let w1 = work 1 1 in
  check_int "same work p=4" w1 (work 4 9);
  check_int "same work p=8" w1 (work 8 23)

(* ------------------------------------------------- detection under sim *)

let run_sim_detector make_d ?(n_workers = 4) ?(seed = 5) prog =
  let d = make_d () in
  let stages, det =
    match d with `Plain det -> ([], det) | `Pint (p, det) -> (Pint_detector.stages p, det)
  in
  let _ = Sim_exec.run ~config:(config ~n_workers ~seed ~stages ()) ~driver:det.Detector.driver prog in
  Detector.races det

let cracer () = `Plain (Cracer.make ())

let pint () =
  let p = Pint_detector.make () in
  `Pint (p, Pint_detector.detector p)

let test_sim_detects_ww_race () =
  List.iter
    (fun mk ->
      let races =
        run_sim_detector mk (fun () ->
            let b = Fj.alloc_f 8 in
            Fj.spawn (fun () -> Membuf.set_f b 3 1.0);
            Fj.spawn (fun () -> Membuf.set_f b 3 2.0);
            Fj.sync ())
      in
      check_bool "race found" true (races <> []))
    [ cracer; pint ]

let test_sim_race_free_clean () =
  List.iter
    (fun mk ->
      let races =
        run_sim_detector mk (fun () ->
            let b = Fj.alloc_f 64 in
            let rec go lo hi =
              if hi - lo <= 4 then
                for i = lo to hi - 1 do
                  Membuf.set_f b i 1.0
                done
              else begin
                let mid = (lo + hi) / 2 in
                Fj.scope (fun () ->
                    Fj.spawn (fun () -> go lo mid);
                    go mid hi;
                    Fj.sync ())
              end
            in
            go 0 64)
      in
      check_int "no races" 0 (List.length races))
    [ cracer; pint ]

(* Equivalence sweep: on random programs, racy-verdict under the simulator
   (with steals!) must match the sequential oracle verdict, for both
   parallel detectors, across worker counts and seeds. *)
let oracle_verdict actions nbuf =
  let d = Stint.make () in
  let _ =
    Seq_exec.run ~driver:d.Detector.driver (fun () ->
        let buf = Fj.alloc_f nbuf in
        Test_sim_progs.interpret buf actions ())
  in
  Detector.races d <> []

let test_random_equivalence () =
  let nbuf = 12 in
  for seed = 1 to 40 do
    let rng = Rng.create (seed * 31) in
    let actions = Test_sim_progs.random_program rng nbuf in
    let expected = oracle_verdict actions nbuf in
    List.iter
      (fun (name, mk) ->
        List.iter
          (fun (workers, sseed) ->
            let races =
              run_sim_detector mk ~n_workers:workers ~seed:sseed (fun () ->
                  let buf = Fj.alloc_f nbuf in
                  Test_sim_progs.interpret buf actions ())
            in
            if races <> [] <> expected then
              Alcotest.failf "seed %d %s p=%d: got %b want %b" seed name workers (races <> [])
                expected)
          [ (1, 3); (4, 7); (9, 11) ])
      [ ("cracer", cracer); ("pint", pint) ]
  done

let test_pint_sim_pipeline_stats () =
  let p = Pint_detector.make () in
  let det = Pint_detector.detector p in
  let result = ref 0. in
  let r =
    Sim_exec.run
      ~config:(config ~n_workers:4 ~stages:(Pint_detector.stages p) ())
      ~driver:det.Detector.driver (sum_squares_prog 512 result)
  in
  Alcotest.(check (float 1e-6)) "computation still correct" (expected 512) !result;
  (* every strand flows through the pipeline exactly once per treap worker *)
  let d = det.Detector.diagnostics () in
  let get k = int_of_float (List.assoc k d) in
  check_int "writer processed all strands" r.Sim_exec.n_strands (get "writer_strands");
  check_int "lreader processed all strands" r.Sim_exec.n_strands (get "l_strands");
  check_int "rreader processed all strands" r.Sim_exec.n_strands (get "r_strands");
  check_bool "multiple traces (steals happened)" true (get "traces" > 4);
  check_bool "stage clocks advanced" true
    (List.for_all (fun (_, c) -> c > 0) r.Sim_exec.stage_clocks);
  (* the engine's per-stage counters agree with the detector's own tallies *)
  check_int "writer stage records" (get "writer_strands") (get "stage.writer.records");
  check_int "lreader stage records" (get "l_strands") (get "stage.lreader.records");
  check_bool "achieved batch size reported" true (List.mem_assoc "ahq_batch" d)

let test_stack_frames_under_sim () =
  List.iter
    (fun mk ->
      let races =
        run_sim_detector mk ~n_workers:6 (fun () ->
            (* frames wrap only leaf work (the documented constraint: no
               non-trivial sync inside a frame body); recursion stays outside *)
            let leaf v = Fj.with_frame ~words:16 (fun fr -> Membuf.set_f fr 0 v) in
            let rec go d =
              if d = 0 then leaf 0.5
              else
                Fj.scope (fun () ->
                    Fj.spawn (fun () ->
                        leaf 1.0;
                        go (d - 1));
                    leaf 2.0;
                    Fj.sync ())
            in
            go 6)
      in
      check_int "no false races from stack reuse" 0 (List.length races))
    [ cracer; pint ]

let test_heap_reuse_under_sim () =
  List.iter
    (fun mk ->
      let races =
        run_sim_detector mk ~n_workers:6 (fun () ->
            for _ = 1 to 8 do
              Fj.spawn (fun () ->
                  let x = Fj.alloc_f 32 in
                  Membuf.fill_f x 0 32 1.0;
                  Fj.free_f x)
            done;
            Fj.sync ())
      in
      check_int "no false races from heap reuse" 0 (List.length races))
    [ cracer; pint ]

let () =
  Alcotest.run "pint_sim"
    [
      ( "scheduling",
        [
          Alcotest.test_case "computes correctly" `Quick test_computes_correctly;
          Alcotest.test_case "1 worker, no steals" `Quick test_single_worker_no_steals;
          Alcotest.test_case "steals with 8 workers" `Quick test_steals_happen_with_many_workers;
          Alcotest.test_case "deterministic" `Quick test_determinism;
          Alcotest.test_case "seed changes schedule" `Quick test_seed_changes_schedule;
          Alcotest.test_case "speedup shape" `Quick test_speedup_shape;
          Alcotest.test_case "work conservation" `Quick test_work_conservation;
        ] );
      ( "detection",
        [
          Alcotest.test_case "ww race" `Quick test_sim_detects_ww_race;
          Alcotest.test_case "race free" `Quick test_sim_race_free_clean;
          Alcotest.test_case "random equivalence" `Quick test_random_equivalence;
          Alcotest.test_case "pint pipeline stats" `Quick test_pint_sim_pipeline_stats;
          Alcotest.test_case "stack frames" `Quick test_stack_frames_under_sim;
          Alcotest.test_case "heap reuse" `Quick test_heap_reuse_under_sim;
        ] );
    ]
