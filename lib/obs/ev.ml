(* Event kind codes stored in ring buffers.  Kept as plain ints so hot
   emit sites pass immediates; the Chrome exporter owns the decoding. *)

let strand_finish = 0
let enqueue = 1 (* AHQ occupancy sample; arg = occupancy after the enqueue *)
let collect = 2
let treap_op = 3 (* span; arg = treap-node visits of the step *)
let stall = 4 (* span; writer blocked on a full AHQ *)
let recycle = 5 (* arg = slots recycled by this cursor advance *)
let complete = 6 (* all 3N treap workers have processed the strand *)
let split = 7 (* arg = per-shard subranges the strand's intervals split into *)
let steal = 8 (* worker stole a ditem from a peer deque; arg = victim worker *)
let park = 9 (* a pool/worker domain entered the deep-backoff sleep regime *)

let name = function
  | 0 -> "finish"
  | 1 -> "ahq"
  | 2 -> "collect"
  | 3 -> "treap"
  | 4 -> "stall"
  | 5 -> "recycle"
  | 6 -> "complete"
  | 7 -> "split"
  | 8 -> "steal"
  | 9 -> "park"
  | k -> "ev" ^ string_of_int k

(* The exporter's phase split: spans render as Chrome "X" complete events,
   counters as "C", everything else as thread-scoped instants. *)
let is_span k = k = treap_op || k = stall
let is_counter k = k = enqueue

let arg_label = function
  | 1 -> "occupancy"
  | 3 -> "visits"
  | 5 -> "slots"
  | 7 -> "subranges"
  | 8 -> "victim"
  | 9 -> "pool"
  | 0 | 2 | 6 -> "uid"
  | _ -> "arg"
