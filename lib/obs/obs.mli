(** An observability session: clock + track registry + latency histograms.

    A session is either live ({!create}) or {!disabled}.  Disabled is the
    default everywhere: every {!track} request returns {!Evring.null} and
    every {!histo} request returns {!Histo.dummy}, so instrumented call
    sites stay allocation-free no-ops (pint_lint R1 clean) without any
    branching at wiring time.

    Tracks and histograms are registered during pipeline wiring — strictly
    before stages start — and each is owned by exactly one stage or worker
    thereafter (OWNERSHIP.md); exporting happens after the run drains.
    {!track} is get-or-create by name, so independently wired emitters
    naming the same stage share its track. *)

type t

val default_capacity : int

(** [create ?capacity ~clock ()] — a live session; [capacity] is the
    per-track ring size (default {!default_capacity}). *)
val create : ?capacity:int -> clock:Clock.t -> unit -> t

(** The inert session: no tracks, no cost. *)
val disabled : t

val enabled : t -> bool
val clock : t -> Clock.t

(** Get-or-create the ring for a named track. *)
val track : t -> string -> Evring.t

(** Get-or-create a named latency histogram. *)
val histo : t -> string -> Histo.t

val tracks : t -> (string * Evring.t) list
val track_names : t -> string list

(** Total events emitted / dropped across all tracks. *)
val events : t -> int

val dropped : t -> int

(** Aggregate metrics — track/event/drop totals, AHQ occupancy stats over
    the retained window, and n/p50/p90/p99/max per histogram — as
    [("obs.…", value)] pairs, mergeable into bench [--json] output. *)
val summary : t -> (string * float) list

(** Chrome trace-event JSON of all tracks (see {!Chrome.export});
    [meta] lands in [otherData] alongside per-track drop counts. *)
val chrome_json : ?meta:(string * string) list -> t -> string

val write_chrome : ?meta:(string * string) list -> t -> path:string -> unit
