(* Shape assertions on the reproduced figures: the qualitative claims of the
   paper's evaluation must hold in the reproduction (see EXPERIMENTS.md for
   the cell-by-cell comparison).  These run the full harness, so sizes are
   the defaults used by the shipped tables. *)

let check_bool = Alcotest.(check bool)

let fig1_rows = lazy (fst (Figures.fig1 ()))
let fig2_rows = lazy (fst (Figures.fig2 ()))
let fig3_rows = lazy (fst (Figures.fig3 ()))
let fig4_rows = lazy (fst (Figures.fig4 ()))

let test_fig1_stint_cheaper_than_pint () =
  List.iter
    (fun (r : Figures.fig1_row) ->
      check_bool (r.f1_name ^ ": STINT(1) <= PINT(1)") true (r.stint1 <= r.pint1))
    (Lazy.force fig1_rows)

let test_fig1_parallel_overhead_band () =
  (* paper: at most 41% parallelization overhead; allow headroom to 60% *)
  List.iter
    (fun (r : Figures.fig1_row) ->
      let ovh = r.pint1 /. r.stint1 in
      check_bool
        (Printf.sprintf "%s: overhead %.2f in [1.0, 1.6]" r.f1_name ovh)
        true
        (ovh >= 1.0 && ovh <= 1.6))
    (Lazy.force fig1_rows)

let test_fig1_cracer_loses_except_fft () =
  List.iter
    (fun (r : Figures.fig1_row) ->
      if r.f1_name = "fft" then begin
        check_bool "fft: C-RACER(1) beats STINT(1)" true (r.cracer1 < r.stint1);
        check_bool "fft: C-RACER(P) beats PINT(P)" true (r.cracer_p < r.pint_p)
      end
      else begin
        check_bool (r.f1_name ^ ": C-RACER(1) much slower") true (r.cracer1 > 2. *. r.stint1);
        check_bool (r.f1_name ^ ": PINT(P) beats C-RACER(P)") true (r.pint_p < r.cracer_p)
      end)
    (Lazy.force fig1_rows)

let test_fig1_scalability () =
  List.iter
    (fun (r : Figures.fig1_row) ->
      check_bool (r.f1_name ^ ": baseline scales") true (r.base_p < r.base1);
      check_bool (r.f1_name ^ ": PINT scales >= 4x") true (r.pint1 /. r.pint_p >= 4.))
    (Lazy.force fig1_rows)

let test_fig1_detection_overhead_ordering () =
  (* every detector costs more than the baseline *)
  List.iter
    (fun (r : Figures.fig1_row) ->
      check_bool (r.f1_name ^ ": base < stint") true (r.base1 < r.stint1);
      check_bool (r.f1_name ^ ": base < cracer") true (r.base1 < r.cracer1))
    (Lazy.force fig1_rows)

let test_fig2_writer_not_reader_dominant () =
  (* the writer treap worker is not the dominant treap worker for the
     read-heavy benchmarks (fft, which is write-heavy, is the exception);
     heat announces balanced read/write bands, so allow slack for it *)
  List.iter
    (fun (r : Figures.fig2_row) ->
      if r.f2_name <> "fft" then
        check_bool
          (r.f2_name ^ ": writer not dominant")
          true
          (r.writer_work <= 1.25 *. Float.max r.lreader_work r.rreader_work))
    (Lazy.force fig2_rows)

let test_fig2_async_overlap () =
  (* for at least half the benchmarks the 17-core total equals the core
     component: the asynchronous access history fully overlaps *)
  let rows = Lazy.force fig2_rows in
  let overlapped =
    List.length (List.filter (fun r -> r.Figures.par_total <= r.Figures.par_core *. 1.05) rows)
  in
  check_bool
    (Printf.sprintf "%d/%d benchmarks fully overlapped" overlapped (List.length rows))
    true
    (overlapped >= 2)

let test_fig2_core_dominates_serial () =
  (* on one core the core component dominates each individual treap worker
     (except fft, the paper's exception) *)
  List.iter
    (fun (r : Figures.fig2_row) ->
      if r.f2_name <> "fft" then
        check_bool (r.f2_name ^ ": core > each treap worker") true
          (r.core_work > r.writer_work && r.core_work > r.lreader_work
         && r.core_work > r.rreader_work))
    (Lazy.force fig2_rows)

let test_fig3_core_scales_and_treap_caps () =
  List.iter
    (fun (name, cells) ->
      let get p = List.assoc p cells in
      let c1 = get 1 and c16 = get 16 and c32 = get 32 in
      check_bool (name ^ ": core component scales 1->16") true
        (c16.Figures.core_t < c1.Figures.core_t /. 3.);
      check_bool (name ^ ": total monotone-ish") true (c32.Figures.total_t <= c1.Figures.total_t);
      (* treap bottleneck visible at 32 core workers for the interval-dense
         benchmarks *)
      if List.mem name [ "mmul"; "sort" ] then
        check_bool (name ^ ": treap dominates at 32") true
          (c32.Figures.total_t > c32.Figures.core_t *. 1.05))
    (Lazy.force fig3_rows)

let test_fig4_heat_overhead_shrinks () =
  let cells = List.assoc "heat" (Lazy.force fig4_rows) in
  let ovh (c : Figures.fig4_cell) = c.f4_pint.Figures.total_t /. c.f4_base_t in
  let first = ovh (List.hd cells) and last = ovh (List.nth cells (List.length cells - 1)) in
  check_bool
    (Printf.sprintf "heat overhead shrinks (%.1f -> %.1f)" first last)
    true (last < first)

let test_fig4_sort_overhead_grows_at_scale () =
  (* paper: at 32 workers the grown problem makes the treap component the
     bottleneck and the overhead jumps *)
  let cells = List.assoc "sort" (Lazy.force fig4_rows) in
  let ovh (c : Figures.fig4_cell) = c.f4_pint.Figures.total_t /. c.f4_base_t in
  let at w = ovh (List.find (fun c -> c.Figures.f4_workers = w) cells) in
  check_bool
    (Printf.sprintf "sort overhead grows at 32 (%.1f vs %.1f)" (at 32) (at 4))
    true
    (at 32 > 1.5 *. at 4);
  let c32 = List.find (fun c -> c.Figures.f4_workers = 32) cells in
  check_bool "sort treap-dominated at 32" true
    (c32.f4_pint.Figures.total_t > c32.f4_pint.Figures.core_t *. 1.05)

let test_determinism () =
  let a = fst (Figures.fig1 ()) and b = fst (Figures.fig1 ()) in
  check_bool "fig1 bit-reproducible" true (a = b)

let test_stra_z_contrast () =
  let find n = List.find (fun (r : Figures.fig1_row) -> r.f1_name = n) (Lazy.force fig1_rows) in
  let stra = find "stra" and straz = find "straz" in
  check_bool "same baseline" true (Float.abs (stra.base1 -. straz.base1) < 0.05 *. stra.base1);
  check_bool "Z layout cheaper to race-detect" true (straz.stint1 < stra.stint1)

let () =
  Alcotest.run "pint_figures"
    [
      ( "fig1",
        [
          Alcotest.test_case "stint <= pint" `Quick test_fig1_stint_cheaper_than_pint;
          Alcotest.test_case "par overhead band" `Quick test_fig1_parallel_overhead_band;
          Alcotest.test_case "cracer loses except fft" `Quick test_fig1_cracer_loses_except_fft;
          Alcotest.test_case "scalability" `Quick test_fig1_scalability;
          Alcotest.test_case "overhead ordering" `Quick test_fig1_detection_overhead_ordering;
          Alcotest.test_case "stra vs straz" `Quick test_stra_z_contrast;
        ] );
      ( "fig2",
        [
          Alcotest.test_case "writer least busy" `Quick test_fig2_writer_not_reader_dominant;
          Alcotest.test_case "async overlap" `Quick test_fig2_async_overlap;
          Alcotest.test_case "core dominates serially" `Quick test_fig2_core_dominates_serial;
        ] );
      ( "fig3-4",
        [
          Alcotest.test_case "strong scaling shape" `Quick test_fig3_core_scales_and_treap_caps;
          Alcotest.test_case "heat weak overhead shrinks" `Quick test_fig4_heat_overhead_shrinks;
          Alcotest.test_case "sort weak overhead grows" `Quick test_fig4_sort_overhead_grows_at_scale;
        ] );
      ("determinism", [ Alcotest.test_case "fig1 reproducible" `Quick test_determinism ]);
    ]
