examples/scaling_study.ml: Array List Printf Registry Sys Systems Workload
