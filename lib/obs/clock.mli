(** Timestamp sources for the observability layer.

    Every {!Evring.t} carries one clock; which one decides what an event's
    [ts] means:

    - {!monotonic} — wall time in integer microseconds, for real executors
      ([Seq_exec], [Par_exec]);
    - {!manual} — a virtual clock the single-threaded simulator pins to
      whichever simulated timeline (worker clock, stage clock) is about to
      emit, making seeded [Sim_exec] traces fully deterministic;
    - {!counter} — a self-advancing tick for offline replay, where no
      meaningful timeline exists but per-track monotonicity is still wanted;
    - {!null} — the no-op clock of a disabled observability session.

    Virtual clocks only ever move forward: {!set} pins a manual clock to a
    simulated time (and only advances a counter), {!catch_up} advances past
    the end of an explicitly-timed span so later implicit reads stay
    monotone per track. *)

type t

val null : t
val monotonic : t
val manual : ?start:int -> unit -> t
val counter : ?start:int -> unit -> t

(** Current timestamp. A counter clock advances by one per read. *)
val now : t -> int

(** Pin a manual clock to [v] (advance-only for counters, no-op otherwise). *)
val set : t -> int -> unit

(** Advance a virtual clock to at least [v]; no-op on real/null clocks. *)
val catch_up : t -> int -> unit

(** True for every clock whose time is not wall time — such traces price
    span durations from the cost model rather than from clock deltas. *)
val is_virtual : t -> bool
