
type side = {
  buf : Interval.t Vec.t;
  mutable raw : int;
}

type t = { reads : side; writes : side }

let dummy = Interval.point 0

let create () =
  { reads = { buf = Vec.create ~capacity:64 dummy; raw = 0 };
    writes = { buf = Vec.create ~capacity:64 dummy; raw = 0 } }

let add side ~addr ~len =
  if len <= 0 then invalid_arg "Coalescer.add: len must be positive";
  side.raw <- side.raw + 1;
  let iv = Interval.make addr (addr + len - 1) in
  if Vec.is_empty side.buf then Vec.push side.buf iv
  else begin
    let last = Vec.peek side.buf in
    if Interval.adjacent_or_overlapping last iv then
      Vec.set side.buf (Vec.length side.buf - 1) (Interval.hull last iv)
    else Vec.push side.buf iv
  end

let add_read t = add t.reads
let add_write t = add t.writes

let raw_counts t = (t.reads.raw, t.writes.raw)

let canonicalize side =
  let n = Vec.length side.buf in
  if n = 0 then [||]
  else begin
    Vec.sort Interval.compare side.buf;
    let out = Vec.create ~capacity:n dummy in
    Vec.iter
      (fun iv ->
        if Vec.is_empty out then Vec.push out iv
        else
          let last = Vec.peek out in
          if Interval.adjacent_or_overlapping last iv then
            Vec.set out (Vec.length out - 1) (Interval.hull last iv)
          else Vec.push out iv)
      side.buf;
    Vec.to_array out
  end

let finish t =
  let reads = canonicalize t.reads in
  let writes = canonicalize t.writes in
  Vec.clear t.reads.buf;
  Vec.clear t.writes.buf;
  t.reads.raw <- 0;
  t.writes.raw <- 0;
  (reads, writes)

let pending t = (Vec.length t.reads.buf, Vec.length t.writes.buf)
