lib/util/stats.ml: Float
