examples/find_a_race.ml: Detector Fj Format List Membuf Pint_detector Printf Report Rng Sim_exec
