(* Trace-file format tests: varint and CRC primitives, capture fidelity,
   serialization round-trips, determinism of capture, and rejection of every
   malformation class (bad magic, bad version, truncation, corruption). *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

(* ------------------------------------------------------------- varint *)

let test_varint_roundtrip () =
  let values =
    [ 0; 1; 63; 64; 127; 128; 129; 255; 300; 16_383; 16_384; 1_000_000; max_int ]
  in
  let buf = Buffer.create 64 in
  List.iter (Varint.write buf) values;
  let c = Varint.cursor (Buffer.contents buf) in
  List.iter (fun v -> check_int (Printf.sprintf "varint %d" v) v (Varint.read c)) values;
  check_bool "cursor consumed" true (Varint.at_end c)

let test_varint_sizes () =
  let size n =
    let b = Buffer.create 8 in
    Varint.write b n;
    Buffer.length b
  in
  check_int "small is 1 byte" 1 (size 127);
  check_int "128 is 2 bytes" 2 (size 128);
  check_int "16383 is 2 bytes" 2 (size 16_383);
  check_int "16384 is 3 bytes" 3 (size 16_384)

let test_varint_negative_rejected () =
  let b = Buffer.create 8 in
  check_bool "negative raises" true
    (try
       Varint.write b (-1);
       false
     with Invalid_argument _ -> true)

let test_varint_truncated () =
  (* a lone continuation byte promises more input than exists *)
  let c = Varint.cursor "\x80" in
  check_bool "truncated raises" true
    (try
       ignore (Varint.read c);
       false
     with Failure _ -> true)

(* -------------------------------------------------------------- crc32 *)

let test_crc32_check_vector () =
  (* the standard CRC-32/ISO-HDLC check value *)
  check_string "crc32(123456789)" "cbf43926"
    (Printf.sprintf "%08lx" (Crc32.digest "123456789"));
  check_string "crc32(empty)" "00000000" (Printf.sprintf "%08lx" (Crc32.digest ""))

let test_crc32_sub () =
  let s = "xx123456789yy" in
  check_bool "digest_sub matches digest" true
    (Crc32.digest_sub s ~pos:2 ~len:9 = Crc32.digest "123456789")

(* ------------------------------------------------------------ capture *)

(* A small deterministic program with spawns, a nested scope, stack frames,
   a heap free and a real race — exercising every entry field. *)
let program () =
  let b = Fj.alloc_f 16 in
  Fj.spawn (fun () ->
      Membuf.fill_f b 0 8 1.0;
      Fj.with_frame ~words:4 (fun fr -> Membuf.set_f fr 0 9.0));
  Fj.spawn (fun () -> ignore (Membuf.read_range_f b 4 8));
  Fj.scope (fun () ->
      Fj.spawn (fun () ->
          let x = Fj.alloc_f 8 in
          Membuf.set_f x 0 1.0;
          Fj.free_f x);
      Fj.sync ());
  Fj.sync ()

let capture_seq ?(meta = []) prog =
  let d = Nodetect.make () in
  let driver, finished = Tracefile.capturing ~meta d.Detector.driver in
  let res = Seq_exec.run ~driver prog in
  let t = finished () in
  (t, res)

let test_capture_structure () =
  let t, res = capture_seq ~meta:[ ("k", "v") ] program in
  check_int "one entry per strand" res.Seq_exec.n_strands (Tracefile.entry_count t);
  check_int "version" Tracefile.current_version t.Tracefile.version;
  check_bool "meta present" true (Tracefile.meta_find t "k" = Some "v");
  check_bool "n_workers meta" true (Tracefile.meta_find t "n_workers" = Some "1");
  let root = Tracefile.root t in
  check_bool "root starts the run" true (root.Tracefile.start = Events.S_root);
  (* every spawn's child/cont/sync links resolve *)
  Array.iter
    (fun (e : Tracefile.entry) ->
      match e.Tracefile.finish with
      | Tracefile.Spawn { cont; sync; child; _ } ->
          ignore (Tracefile.find t cont);
          ignore (Tracefile.find t sync);
          ignore (Tracefile.find t child)
      | _ -> ())
    t.Tracefile.entries;
  let reads, writes = Tracefile.interval_totals t in
  check_bool "recorded reads" true (reads > 0);
  check_bool "recorded writes" true (writes > 0);
  check_bool "a free was recorded" true
    (Array.exists (fun e -> e.Tracefile.frees <> []) t.Tracefile.entries);
  check_bool "a clear was recorded" true
    (Array.exists (fun e -> e.Tracefile.clears <> []) t.Tracefile.entries);
  check_int "seq run has no boundaries" 0 (Tracefile.boundary_count t)

let test_serialization_roundtrip () =
  let t, _ = capture_seq ~meta:[ ("workload", "unit") ] program in
  let bytes = Tracefile.to_bytes t in
  let t' = Tracefile.of_bytes bytes in
  check_bool "roundtrip preserves everything" true (t = t');
  check_string "re-encoding is stable" (String.escaped bytes)
    (String.escaped (Tracefile.to_bytes t'))

let test_file_roundtrip () =
  let t, _ = capture_seq program in
  let path = Filename.temp_file "pint" ".trace" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Tracefile.write t path;
      let t' = Tracefile.load path in
      check_bool "file roundtrip" true (t = t'))

let test_capture_deterministic_seq () =
  let t1, _ = capture_seq program and t2, _ = capture_seq program in
  check_bool "same run, same bytes" true (Tracefile.to_bytes t1 = Tracefile.to_bytes t2)

let test_capture_deterministic_sim () =
  let capture_sim () =
    let d = Nodetect.make () in
    let driver, finished = Tracefile.capturing d.Detector.driver in
    let config = { Sim_exec.default_config with n_workers = 4; seed = 11 } in
    ignore (Sim_exec.run ~config ~driver program);
    finished ()
  in
  let t1 = capture_sim () and t2 = capture_sim () in
  check_bool "seeded sim captures byte-identically" true
    (Tracefile.to_bytes t1 = Tracefile.to_bytes t2);
  (* virtual-time metadata is present in simulator captures *)
  check_bool "finished_at recorded" true
    (Array.exists (fun e -> e.Tracefile.finished_at > 0) t1.Tracefile.entries)

(* --------------------------------------------------------- malformation *)

let expect_error name f =
  check_bool name true
    (try
       ignore (f ());
       false
     with Tracefile.Error _ -> true)

let test_rejects_malformed () =
  let t, _ = capture_seq program in
  let bytes = Tracefile.to_bytes t in
  expect_error "bad magic" (fun () ->
      Tracefile.of_bytes ("XINTRACE" ^ String.sub bytes 8 (String.length bytes - 8)));
  expect_error "truncated body" (fun () ->
      Tracefile.of_bytes (String.sub bytes 0 (String.length bytes - 9)));
  expect_error "truncated crc" (fun () ->
      Tracefile.of_bytes (String.sub bytes 0 (String.length bytes - 2)));
  expect_error "empty input" (fun () -> Tracefile.of_bytes "");
  expect_error "trailing garbage" (fun () -> Tracefile.of_bytes (bytes ^ "\x00"));
  (* flip one byte in the middle of the body: the CRC must catch it *)
  let corrupted = Bytes.of_string bytes in
  let mid = String.length bytes / 2 in
  Bytes.set corrupted mid (Char.chr (Char.code (Bytes.get corrupted mid) lxor 0x40));
  expect_error "bit flip detected" (fun () -> Tracefile.of_bytes (Bytes.to_string corrupted));
  (* bump the version varint (first body byte): unknown version *)
  let vbumped = Bytes.of_string bytes in
  Bytes.set vbumped 8 (Char.chr (Tracefile.current_version + 1));
  expect_error "unknown version" (fun () -> Tracefile.of_bytes (Bytes.to_string vbumped))

let test_find_missing () =
  let t, _ = capture_seq program in
  expect_error "find unknown uid" (fun () -> Tracefile.find t 99_999)

(* ---------------------------------------------------- incremental decode *)

(* Drain every currently-decodable entry from a decoder. *)
let drain d =
  let rec go acc =
    match Tracefile.Decoder.next d with None -> List.rev acc | Some e -> go (e :: acc)
  in
  go []

(* Feed [bytes] to a fresh decoder in [chunk]-sized pieces and return the
   entries in arrival order.  Exercises every split point when chunk = 1:
   mid-magic, mid-varint, mid interval array, mid-CRC. *)
let decode_chunked ?max_pending bytes chunk =
  let d = Tracefile.Decoder.create ?max_pending () in
  let n = String.length bytes in
  let out = ref [] in
  let pos = ref 0 in
  while !pos < n do
    let len = min chunk (n - !pos) in
    Tracefile.Decoder.feed d ~pos:!pos ~len bytes;
    out := !out @ drain d;
    pos := !pos + len
  done;
  Tracefile.Decoder.finish d;
  (d, !out @ drain d)

let test_decoder_chunked_equals_whole () =
  let t, _ = capture_seq ~meta:[ ("workload", "unit") ] program in
  let bytes = Tracefile.to_bytes t in
  let whole = Tracefile.of_bytes bytes in
  (* byte-at-a-time: every LEB128 varint, delta-coded interval array and the
     trailing CRC word gets split across a chunk boundary somewhere *)
  List.iter
    (fun chunk ->
      let d, entries = decode_chunked bytes chunk in
      check_bool
        (Printf.sprintf "chunk=%d decodes the same entries" chunk)
        true
        (Array.of_list entries = whole.Tracefile.entries);
      check_bool "complete" true (Tracefile.Decoder.complete d);
      check_int "fed_bytes" (String.length bytes) (Tracefile.Decoder.fed_bytes d);
      check_int "entries_decoded" (Array.length whole.Tracefile.entries)
        (Tracefile.Decoder.entries_decoded d);
      check_bool "header meta matches" true
        (match Tracefile.Decoder.header d with
        | Some (v, meta) -> v = whole.Tracefile.version && meta = whole.Tracefile.meta
        | None -> false))
    [ 1; 2; 3; 7; 64; String.length bytes ]

let test_decoder_streams_before_eof () =
  (* entries must be observable before the CRC arrives: feed all but the
     trailer and check at least one entry is already out *)
  let t, _ = capture_seq program in
  let bytes = Tracefile.to_bytes t in
  let d = Tracefile.Decoder.create () in
  Tracefile.Decoder.feed d ~len:(String.length bytes - 4) bytes;
  check_bool "header decoded early" true (Tracefile.Decoder.header d <> None);
  check_bool "entries stream before the trailer" true (drain d <> []);
  check_bool "not complete yet" false (Tracefile.Decoder.complete d);
  Tracefile.Decoder.feed d ~pos:(String.length bytes - 4) bytes;
  check_bool "complete after trailer" true (Tracefile.Decoder.complete d)

let test_decoder_truncation () =
  let t, _ = capture_seq program in
  let bytes = Tracefile.to_bytes t in
  (* every proper prefix must fail cleanly at finish — never a crash, never
     silent acceptance *)
  for cut = 0 to String.length bytes - 1 do
    let d = Tracefile.Decoder.create () in
    let ok =
      try
        Tracefile.Decoder.feed d ~len:cut bytes;
        Tracefile.Decoder.finish d;
        false
      with Tracefile.Error _ -> true
    in
    check_bool (Printf.sprintf "prefix %d rejected" cut) true ok
  done

let test_decoder_rejects_malformed_chunked () =
  let t, _ = capture_seq program in
  let bytes = Tracefile.to_bytes t in
  let expect_chunked name s =
    expect_error name (fun () ->
        ignore (decode_chunked s 3);
        ())
  in
  expect_chunked "bad magic (chunked)"
    ("XINTRACE" ^ String.sub bytes 8 (String.length bytes - 8));
  expect_chunked "trailing garbage (chunked)" (bytes ^ "\x00");
  let corrupted = Bytes.of_string bytes in
  let mid = String.length bytes / 2 in
  Bytes.set corrupted mid (Char.chr (Char.code (Bytes.get corrupted mid) lxor 0x40));
  expect_chunked "bit flip detected (chunked)" (Bytes.to_string corrupted)

let test_decoder_overflow_guard () =
  (* an item that never completes must hit the pending-buffer bound, not
     buffer unboundedly: declare a meta value of 10k bytes and trickle in
     filler against a 16-byte cap *)
  let b = Buffer.create 64 in
  Buffer.add_string b "PINTRACE";
  Varint.write b Tracefile.current_version;
  Varint.write b 1 (* one meta pair *);
  Varint.write b 1;
  Buffer.add_string b "k";
  Varint.write b 10_000 (* vlen: promises far more than we send *);
  Buffer.add_string b (String.make 64 'x');
  expect_error "buffer overflow rejected" (fun () ->
      ignore (decode_chunked ~max_pending:16 (Buffer.contents b) 1);
      ())

let () =
  Alcotest.run "pint_tracefile"
    [
      ( "varint",
        [
          Alcotest.test_case "roundtrip" `Quick test_varint_roundtrip;
          Alcotest.test_case "sizes" `Quick test_varint_sizes;
          Alcotest.test_case "negative rejected" `Quick test_varint_negative_rejected;
          Alcotest.test_case "truncated rejected" `Quick test_varint_truncated;
        ] );
      ( "crc32",
        [
          Alcotest.test_case "check vector" `Quick test_crc32_check_vector;
          Alcotest.test_case "substring" `Quick test_crc32_sub;
        ] );
      ( "capture",
        [
          Alcotest.test_case "structure" `Quick test_capture_structure;
          Alcotest.test_case "bytes roundtrip" `Quick test_serialization_roundtrip;
          Alcotest.test_case "file roundtrip" `Quick test_file_roundtrip;
          Alcotest.test_case "seq determinism" `Quick test_capture_deterministic_seq;
          Alcotest.test_case "sim determinism" `Quick test_capture_deterministic_sim;
        ] );
      ( "malformed",
        [
          Alcotest.test_case "rejects malformed" `Quick test_rejects_malformed;
          Alcotest.test_case "find missing uid" `Quick test_find_missing;
        ] );
      ( "decoder",
        [
          Alcotest.test_case "chunked = whole-file" `Quick test_decoder_chunked_equals_whole;
          Alcotest.test_case "streams before eof" `Quick test_decoder_streams_before_eof;
          Alcotest.test_case "every truncation rejected" `Quick test_decoder_truncation;
          Alcotest.test_case "malformed chunked rejected" `Quick
            test_decoder_rejects_malformed_chunked;
          Alcotest.test_case "overflow guard" `Quick test_decoder_overflow_guard;
        ] );
    ]
