lib/harness/figures.ml: List Printf Registry Systems Table Workload
