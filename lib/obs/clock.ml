type t =
  | Null
  | Monotonic
  | Manual of { mutable m_now : int }
  | Counter of { mutable c_now : int }

let null = Null
let monotonic = Monotonic
let manual ?(start = 0) () = Manual { m_now = start }
let counter ?(start = 0) () = Counter { c_now = start }

let now = function
  | Null -> 0
  | Monotonic -> int_of_float (Unix.gettimeofday () *. 1e6)
  | Manual m -> m.m_now
  | Counter c ->
      c.c_now <- c.c_now + 1;
      c.c_now

let set t v =
  match t with
  | Manual m -> m.m_now <- v
  | Counter c -> if v > c.c_now then c.c_now <- v
  | Null | Monotonic -> ()

let catch_up t v =
  match t with
  | Manual m -> if v > m.m_now then m.m_now <- v
  | Counter c -> if v > c.c_now then c.c_now <- v
  | Null | Monotonic -> ()

let is_virtual = function Null | Manual _ | Counter _ -> true | Monotonic -> false
