(* R5 violation: a mutable local captured by a spawned thunk — the ref now
   lives on two domains with no publication story.  Expected finding:
   [R5/closure-escape] inside the spawned closure of [Fx_escape.leak]. *)

let leak () =
  let acc = ref 0 in
  let d = Domain.spawn (fun () -> acc := !acc + 1) in
  Domain.join d;
  !acc
