(* Address-range sharding router for the access history.

   Shard ownership is by aligned block: block [b] belongs to shard
   [b mod shards].  Race checks are per-address, so splitting every
   interval batch along block boundaries and routing each piece to its
   owning shard preserves the race set exactly — each address is seen by
   exactly one {writer, lreader, rreader} treap triple, every treap stays
   sequential, and no synchronization between shards is ever needed.
   [shards = 1] routes everything to lane 0 unsplit, which is the paper's
   configuration.

   The block size trades split frequency against balance: bigger blocks
   split fewer coalesced intervals, smaller blocks interleave a single
   allocation's addresses across more shards.  256 words keeps splits
   rare (coalesced intervals are usually one stencil row / merge run of a
   few dozen words, so most fit inside one block) while still spreading a
   few-thousand-word working set — the evaluation workloads' scale —
   across 8 shards.

   The router itself is a fixed array of AHQ lanes plus producer-private
   backpressure counters; all mutation is on the single collector stage
   (the lanes' own single-producer discipline is documented in Ahq). *)

let shard_block = 1024

let owner ?(block = shard_block) ~shards addr = addr / block mod shards

let iter_subranges ?(block = shard_block) ~shards ~shard (iv : Interval.t) f =
  if shards = 1 then f iv
  else begin
    let rec go lo =
      if lo <= iv.Interval.hi then begin
        let bstart = lo / block * block in
        let hi = min iv.Interval.hi (bstart + block - 1) in
        if lo / block mod shards = shard then f (Interval.make lo hi);
        go (hi + 1)
      end
    in
    go iv.Interval.lo
  end

type 'a t = {
  lanes : 'a Ahq.t array;
  (* Per-lane all-or-nothing rejections — how often THIS lane was the one
     without room when the collector tried to commit a strand to every
     lane.  Collector-owned (single producer). *)
  rejects : int array;
}

let create ?capacity ~shards ~readers_of_lane () =
  if shards < 1 then invalid_arg "Lanes.create: shards must be >= 1";
  {
    lanes = Array.init shards (fun k -> Ahq.create ?capacity ~readers:(readers_of_lane k) ());
    rejects = Array.make shards 0;
  }

let shards t = Array.length t.lanes
let lane t k = t.lanes.(k)

(* All-or-nothing enqueue: probe every lane for room first, then build and
   enqueue the per-lane payloads.  Sound because the collector is the only
   producer on every lane — room observed by the probe cannot shrink before
   the enqueues commit.  [f k] is only evaluated once all lanes have room,
   so payload construction (the interval split) is never wasted work on a
   stall. *)
let enqueue_each t f =
  let ok = ref true in
  Array.iteri
    (fun k lane ->
      if not (Ahq.has_room lane) then begin
        t.rejects.(k) <- t.rejects.(k) + 1;
        ok := false
      end)
    t.lanes;
  !ok
  && begin
       Array.iteri
         (fun k lane ->
           if not (Ahq.try_enqueue lane (f k)) then
             (* unreachable by the single-producer argument above *)
             failwith "Lanes.enqueue_each: lane lost room after probe")
         t.lanes;
       true
     end

let rejects t k = t.rejects.(k)
let total_rejects t = Array.fold_left ( + ) 0 t.rejects
let drained t = Array.for_all Ahq.drained t.lanes
let total_enqueued t = Array.fold_left (fun acc l -> acc + Ahq.enqueued l) 0 t.lanes
let total_min_rescans t = Array.fold_left (fun acc l -> acc + Ahq.min_rescans l) 0 t.lanes
let max_peak_occupancy t = Array.fold_left (fun acc l -> max acc (Ahq.peak_occupancy l)) 0 t.lanes
