(* Predictive detection: the window-bounded reordering analysis must agree
   finding-for-finding with the brute-force reordering oracle — on every
   committed golden trace and on random small fork-join programs — be
   monotone in the window, shard-invariant, and disjoint from the observed
   race set.  The lucky trace (test/golden_gen/lucky.ml) is additionally
   byte-pinned: its racy pair is invisible to every observed-order detector
   and only reachable through prediction, so a silent regeneration drift
   would quietly gut the corpus' predict coverage. *)

let check_bool = Alcotest.(check bool)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let golden_files () =
  let dir = "golden" in
  if not (Sys.file_exists dir && Sys.is_directory dir) then []
  else
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".trace")
    |> List.sort compare
    |> List.map (Filename.concat dir)

(* One offline pass: observed races (pint) and the strand DAG together. *)
let observe t =
  let det, _ = Option.get (Systems.make_detector "pint") in
  let b = Predict.Builder.create () in
  let o = Replay.run ~on_strand:(Predict.Builder.observer b) t det in
  (o.Replay.races, Predict.Builder.dag b)

(* ------------------------------------------------------------- the corpus *)

let test_lucky_pinned () =
  let committed = read_file "golden/lucky_racy.trace" in
  let regenerated = Tracefile.to_bytes (Lucky.trace ()) in
  check_bool "committed lucky trace = regenerated capture" true (committed = regenerated)

let test_lucky_predict_only () =
  let t = Tracefile.of_bytes (read_file "golden/lucky_racy.trace") in
  (* invisible to every observed-order detector *)
  List.iter
    (fun name ->
      let d, _ = Option.get (Systems.make_detector name) in
      check_bool (name ^ " observes nothing") true ((Replay.run t d).Replay.races = []))
    [ "stint"; "cracer"; "pint" ];
  let observed, dag = observe t in
  let expected =
    {
      Predict.kind = Report.Write_write;
      prior = 1;
      current = 6;
      where = Interval.make 67108864 67108871;
    }
  in
  List.iter
    (fun w ->
      let pr = Predict.predict ~window:w ~observed dag in
      let want = if w < 2 then [] else [ expected ] in
      if not (Predict.equal_findings pr.Predict.predicted want) then
        Alcotest.failf "lucky w=%d: got %d prediction(s), wanted %d" w
          (List.length pr.Predict.predicted)
          (List.length want);
      check_bool (Printf.sprintf "lucky w=%d oracle agrees" w) true
        (Predict.equal_findings (Predict.oracle ~window:w ~observed dag) want))
    [ 0; 1; 2; 3; 4 ]

let check_golden_oracle path () =
  let t = Tracefile.of_bytes (read_file path) in
  let observed, dag = observe t in
  List.iter
    (fun w ->
      let pr = Predict.predict ~window:w ~observed dag in
      let orc = Predict.oracle ~window:w ~observed dag in
      if not (Predict.equal_findings pr.Predict.predicted orc) then
        Alcotest.failf "%s w=%d: predict (%d) and oracle (%d) diverge" path w
          (List.length pr.Predict.predicted)
          (List.length orc))
    [ 0; 1; 2; 3 ]

let check_golden_disjoint path () =
  let t = Tracefile.of_bytes (read_file path) in
  let observed, dag = observe t in
  let pr = Predict.predict ~window:4 ~observed dag in
  let obs_keys =
    List.concat_map
      (fun (r : Report.race) ->
        [
          (r.Report.kind, r.Report.prior, r.Report.current);
          (r.Report.kind, r.Report.current, r.Report.prior);
        ])
      observed
  in
  List.iter
    (fun f ->
      let k, p, c = Predict.finding_key f in
      if List.exists (fun (_, p', c') -> p = p' && c = c') obs_keys then
        Alcotest.failf "%s: predicted pair (%s %d->%d) is already observed" path
          (Report.kind_to_string k) p c)
    pr.Predict.predicted

let check_golden_monotone path () =
  let t = Tracefile.of_bytes (read_file path) in
  let observed, dag = observe t in
  let at w = (Predict.predict ~window:w ~observed dag).Predict.predicted in
  ignore
    (List.fold_left
       (fun (prev_w, prev) w ->
         let cur = at w in
         List.iter
           (fun f ->
             if not (List.exists (fun g -> Predict.finding_key g = Predict.finding_key f) cur)
             then
               Alcotest.failf "%s: finding at w=%d lost at w=%d" path prev_w w)
           prev;
         (w, cur))
       (0, at 0) [ 1; 2; 3; 4 ])

let check_golden_shards path () =
  let t = Tracefile.of_bytes (read_file path) in
  let observed, dag = observe t in
  let runs =
    List.map (fun shards -> (shards, Predict.predict ~shards ~window:3 ~observed dag)) [ 1; 2; 4 ]
  in
  let _, ref_run = List.hd runs in
  let diag r k = List.assoc k r.Predict.diagnostics in
  List.iter
    (fun (shards, r) ->
      if not (Predict.equal_findings r.Predict.predicted ref_run.Predict.predicted) then
        Alcotest.failf "%s: shards=%d changes the findings" path shards;
      (* the gated diagnostics are shard-invariant by construction *)
      List.iter
        (fun k ->
          if diag r k <> diag ref_run k then
            Alcotest.failf "%s: shards=%d changes %s (%g vs %g)" path shards k (diag r k)
              (diag ref_run k))
        [ "predict_candidates"; "predict_windows" ])
    runs

(* --------------------------------------------- random fork-join programs *)

(* Tiny random fork-join programs over one 8-word arena: 1-2 sync blocks of
   1-2 spawned children each (<= 11 strands), children fill or bulk-read
   random subranges, at most one child frees the arena (the free-hidden
   shape the lucky trace pins).  Captured sequentially, then the analysis
   is checked against the oracle on the decoded DAG. *)

let arena_words = 8

type leaf = { off : int; len : int; write : bool }
type child = Acc of leaf | Freer
type prog = { blocks : child list list }

let run_prog p () =
  let buf = Fj.alloc_f arena_words in
  List.iter
    (fun children ->
      List.iter
        (fun ch ->
          Fj.spawn (fun () ->
              match ch with
              | Acc l ->
                  if l.write then Membuf.fill_f buf l.off l.len 1.0
                  else ignore (Membuf.read_range_f buf l.off l.len)
              | Freer -> Fj.free_f buf))
        children;
      Fj.sync ())
    p.blocks

let capture p =
  let d = Nodetect.make () in
  let driver, finished = Tracefile.capturing d.Detector.driver in
  ignore (Seq_exec.run ~driver (run_prog p));
  finished ()

let gen_leaf =
  let open QCheck.Gen in
  int_range 0 (arena_words - 1) >>= fun off ->
  int_range 1 (arena_words - off) >>= fun len ->
  bool >>= fun write -> return { off; len; write }

let gen_prog =
  let open QCheck.Gen in
  int_range 1 2 >>= fun nblocks ->
  list_repeat nblocks
    (int_range 1 2 >>= fun n ->
     list_repeat n (gen_leaf >>= fun l -> return (Acc l)))
  >>= fun blocks ->
  frequency
    [
      (2, return None);
      (1, int_range 0 (nblocks - 1) >>= fun b -> int_range 0 1 >>= fun c -> return (Some (b, c)));
    ]
  >>= fun free_slot ->
  return
    {
      blocks =
        List.mapi
          (fun bi children ->
            List.mapi
              (fun ci ch ->
                match free_slot with Some (b, c) when b = bi && c = ci -> Freer | _ -> ch)
              children)
          blocks;
    }

let print_prog p =
  String.concat " ; "
    (List.map
       (fun children ->
         "["
         ^ String.concat ","
             (List.map
                (function
                  | Freer -> "free"
                  | Acc l -> Printf.sprintf "%s(%d,%d)" (if l.write then "W" else "R") l.off l.len)
                children)
         ^ "]")
       p.blocks)

let arb_prog = QCheck.make ~print:print_prog gen_prog

let qcheck_oracle =
  QCheck.Test.make ~name:"random fj: predict = oracle" ~count:60 arb_prog (fun p ->
      let observed, dag = observe (capture p) in
      List.for_all
        (fun w ->
          Predict.equal_findings
            (Predict.predict ~window:w ~observed dag).Predict.predicted
            (Predict.oracle ~window:w ~observed dag))
        [ 0; 1; 2; 3 ])

let qcheck_monotone =
  QCheck.Test.make ~name:"random fj: monotone in window" ~count:60 arb_prog (fun p ->
      let observed, dag = observe (capture p) in
      let at w = (Predict.predict ~window:w ~observed dag).Predict.predicted in
      let rec sweep prev = function
        | [] -> true
        | w :: ws ->
            let cur = at w in
            List.for_all
              (fun f ->
                List.exists (fun g -> Predict.finding_key g = Predict.finding_key f) cur)
              prev
            && sweep cur ws
      in
      sweep (at 0) [ 1; 2; 3; 4 ])

let () =
  let files = golden_files () in
  if files = [] then prerr_endline "test_predict: no golden traces found, nothing to check";
  Alcotest.run "pint_predict"
    [
      ( "lucky",
        [
          Alcotest.test_case "trace bytes pinned" `Quick test_lucky_pinned;
          Alcotest.test_case "only predictable" `Quick test_lucky_predict_only;
        ] );
      ( "oracle",
        List.map (fun p -> Alcotest.test_case p `Quick (check_golden_oracle p)) files );
      ( "disjoint",
        List.map (fun p -> Alcotest.test_case p `Quick (check_golden_disjoint p)) files );
      ( "monotone",
        List.map (fun p -> Alcotest.test_case p `Quick (check_golden_monotone p)) files );
      ( "shards",
        List.map (fun p -> Alcotest.test_case p `Quick (check_golden_shards p)) files );
      ( "random",
        List.map (QCheck_alcotest.to_alcotest ~long:false) [ qcheck_oracle; qcheck_monotone ] );
    ]
