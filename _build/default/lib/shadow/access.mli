(** Ambient access-event sink: the instrumentation hook.

    This is the seam where a compiler would insert read/write hooks (Tapir in
    the paper); here every [Membuf] accessor calls into the per-domain sink.
    Executors install a sink wired to the active detector before running user
    code; the default sink ignores everything, so uninstrumented use of
    buffers is harmless. *)

type sink = {
  on_read : addr:int -> len:int -> unit;
  on_write : addr:int -> len:int -> unit;
  on_free : base:int -> len:int -> unit;
      (** A heap buffer was logically freed.  The sink decides when the
          address range actually returns to the allocator (PINT delays it
          until the freeing strand is collected). *)
  on_compute : amount:int -> unit;
      (** [amount] arithmetic operations were performed — pure cost-model
          accounting, ignored by detectors. *)
}

(** A sink that drops all events. *)
val noop : sink

(** [install s] sets the calling domain's sink. *)
val install : sink -> unit

(** Reset the calling domain's sink to {!noop}. *)
val uninstall : unit -> unit

(** The calling domain's current sink. *)
val current : unit -> sink

val emit_read : addr:int -> len:int -> unit
val emit_write : addr:int -> len:int -> unit
val emit_free : base:int -> len:int -> unit

val emit_compute : amount:int -> unit
