(* Shared random fork-join program generator for executor-equivalence tests:
   the same action tree can be replayed under any executor/detector. *)

type action =
  | Access of int * int * bool (* addr, len, is_write *)
  | Spawn of action list
  | Sync

let random_program rng nbuf =
  let rec gen depth budget =
    let actions = ref [] in
    let n_actions = 1 + Rng.int rng 4 in
    for _ = 1 to n_actions do
      if !budget > 0 then begin
        decr budget;
        let choice = Rng.int rng 10 in
        if choice < 4 || depth >= 3 then begin
          let addr = Rng.int rng nbuf in
          let len = 1 + Rng.int rng (min 4 (nbuf - addr)) in
          actions := Access (addr, len, Rng.bool rng) :: !actions
        end
        else if choice < 8 then actions := Spawn (gen (depth + 1) budget) :: !actions
        else actions := Sync :: !actions
      end
    done;
    List.rev !actions
  in
  gen 0 (ref 24)

let interpret buf actions () =
  let rec go actions =
    List.iter
      (function
        | Access (addr, len, true) -> Membuf.fill_f buf addr len 1.0
        | Access (addr, len, false) -> ignore (Membuf.read_range_f buf addr len)
        | Spawn inner -> Fj.spawn (fun () -> go inner)
        | Sync -> Fj.sync ())
      actions
  in
  go actions
