(* mmul — blocked recursive matrix multiplication, C = A·B, row-major.

   The classic two-phase divide and conquer: the four quadrant products
   that write disjoint C quadrants run in parallel, a sync, then the four
   accumulating products.  Leaf kernels announce their block rows as bulk
   intervals (the compile-time-coalescing stand-in) and compute with
   uninstrumented arithmetic.

   The racy variant omits the sync between the two phases, so the
   accumulating products race with the initializing ones on every C
   quadrant. *)

module R = Matview.Row

(* C += A·B on an n×n leaf (when [init], C = A·B). *)
let leaf_kernel ~init (c : R.t) (a : R.t) (b : R.t) n =
  R.announce_read a n;
  R.announce_read b n;
  if not init then R.announce_read c n;
  R.announce_write c n;
  Access.emit_compute ~amount:(2 * n * n * n);
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      let acc = ref (if init then 0. else R.peek c i j) in
      for k = 0 to n - 1 do
        acc := !acc +. (R.peek a i k *. R.peek b k j)
      done;
      R.poke c i j !acc
    done
  done

let rec mm ~sync_phases ~init c a b n base =
  if n <= base then leaf_kernel ~init c a b n
  else begin
    let h = n / 2 in
    let q v i = R.quad v n i in
    Fj.scope (fun () ->
        (* phase 1: C_q (init or +=) gets A_left · B_top products *)
        Fj.spawn (fun () -> mm ~sync_phases ~init (q c 0) (q a 0) (q b 0) h base);
        Fj.spawn (fun () -> mm ~sync_phases ~init (q c 1) (q a 0) (q b 1) h base);
        Fj.spawn (fun () -> mm ~sync_phases ~init (q c 2) (q a 2) (q b 0) h base);
        mm ~sync_phases ~init (q c 3) (q a 2) (q b 1) h base;
        if sync_phases then Fj.sync ();
        (* phase 2: accumulate the A_right · B_bottom products *)
        Fj.spawn (fun () -> mm ~sync_phases ~init:false (q c 0) (q a 1) (q b 2) h base);
        Fj.spawn (fun () -> mm ~sync_phases ~init:false (q c 1) (q a 1) (q b 3) h base);
        Fj.spawn (fun () -> mm ~sync_phases ~init:false (q c 2) (q a 3) (q b 2) h base);
        mm ~sync_phases ~init:false (q c 3) (q a 3) (q b 3) h base;
        Fj.sync ())
  end

let fill_input rng (v : R.t) n =
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      R.poke v i j (Rng.float rng -. 0.5)
    done
  done

let make_gen ~sync_phases ~size ~base =
  let n = size in
  let state = ref None in
  let run () =
    let ba = Fj.alloc_f (n * n) and bb = Fj.alloc_f (n * n) and bc = Fj.alloc_f (n * n) in
    let a = R.whole ba n and b = R.whole bb n and c = R.whole bc n in
    let rng = Rng.create 90125 in
    fill_input rng a n;
    fill_input rng b n;
    state := Some (a, b, c);
    mm ~sync_phases ~init:true c a b n base
  in
  let check () =
    match !state with
    | None -> false
    | Some (a, b, c) ->
        (* verify a deterministic sample of entries against the naive product *)
        let rng = Rng.create 777 in
        let ok = ref true in
        for _ = 1 to 64 do
          let i = Rng.int rng n and j = Rng.int rng n in
          let acc = ref 0. in
          for k = 0 to n - 1 do
            acc := !acc +. (R.peek a i k *. R.peek b k j)
          done;
          if Float.abs (!acc -. R.peek c i j) > 1e-6 *. float_of_int n then ok := false
        done;
        !ok
  in
  { Workload.run; check }

let workload =
  {
    Workload.name = "mmul";
      description = "blocked recursive matrix multiplication (row-major)";
      default_size = 256;
      default_base = 64;
      make = (fun ~size ~base -> make_gen ~sync_phases:true ~size ~base);
      racy = Some (fun ~size ~base -> make_gen ~sync_phases:false ~size ~base);
    }
