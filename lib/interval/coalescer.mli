(** Runtime coalescing of a strand's memory accesses into intervals.

    One coalescer instance is owned by the executing worker and recycled
    across strands.  During a strand it receives every instrumented access
    ([add_read] / [add_write], with a length so bulk operations — the stand-in
    for compile-time coalescing — contribute one call); at the strand
    boundary [finish] returns the strand's disjoint, sorted read and write
    interval sets.

    Coalescing happens in two stages, mirroring STINT's runtime scheme:
    - a fast path merges an access that overlaps or extends the most recently
      recorded interval of the same kind (the overwhelmingly common case in
      loop nests);
    - [finish] sort-merges whatever remains into canonical disjoint sets —
      unless the stream was monotone, in which case the buffer is already
      canonical and the sort + re-merge pass is skipped entirely (tracked by
      a per-side flag that drops on the first access starting before the
      last recorded interval).

    The total number of raw accesses observed is tracked separately from the
    number of resulting intervals: the ratio between the two is what makes
    interval-based access history win (or, for [fft], lose). *)

type t

val create : unit -> t

val add_read : t -> addr:int -> len:int -> unit
val add_write : t -> addr:int -> len:int -> unit

(** Raw instrumented access events so far this strand (reads, writes). *)
val raw_counts : t -> int * int

(** [finish t] returns [(reads, writes)] as canonical interval sets and
    resets the coalescer for the next strand.  Each returned array is sorted
    by [lo] with pairwise-disjoint, non-adjacent members. *)
val finish : t -> Interval.t array * Interval.t array

(** [(skipped, sorted)] — cumulative count of [finish]-time canonicalization
    passes that skipped the sort because the access stream was monotone,
    vs. those that had to sort + re-merge.  Not reset by [finish]. *)
val sort_stats : t -> int * int

(** Pending (uncoalesced-buffer) sizes — test/diagnostic aid. *)
val pending : t -> int * int
