lib/detect/report.ml: Format Hashtbl Interval List Mutex
