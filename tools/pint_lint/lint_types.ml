(* Shared vocabulary of the linter: rule identifiers, findings, and the
   rule configuration (banned idents, known allocators, node types).

   A finding's identity for baseline matching is deliberately line-number
   free: (rule, source basename, enclosing context, kind).  Line numbers
   drift with every edit; the enclosing function or field almost never
   does, and kind-level granularity means one baseline entry covers every
   occurrence of that construct inside that context — which is the right
   unit for justifications like "path copies are the operation's result". *)

type rule =
  | R1_hot_alloc
  | R2_poly_compare
  | R3_ownership
  | R4_forbidden
  | R5_publication
  | R6_single_writer

let rule_id = function
  | R1_hot_alloc -> "R1"
  | R2_poly_compare -> "R2"
  | R3_ownership -> "R3"
  | R4_forbidden -> "R4"
  | R5_publication -> "R5"
  | R6_single_writer -> "R6"

let rule_title = function
  | R1_hot_alloc -> "hot-path allocation"
  | R2_poly_compare -> "polymorphic compare/equality/hash"
  | R3_ownership -> "ownership discipline"
  | R4_forbidden -> "forbidden identifier"
  | R5_publication -> "cross-domain publication"
  | R6_single_writer -> "single-writer discipline"

let all_rules =
  [ R1_hot_alloc; R2_poly_compare; R3_ownership; R4_forbidden; R5_publication; R6_single_writer ]

type finding = {
  rule : rule;
  file : string;  (** source path as recorded in the typedtree locations *)
  line : int;
  col : int;
  context : string;  (** enclosing function, or [Module.type.field] for R3 *)
  kind : string;  (** stable slug: "tuple", "closure", "poly-compare", … *)
  message : string;
}

let make_finding ~rule ~loc ~context ~kind message =
  let p = loc.Location.loc_start in
  {
    rule;
    file = p.Lexing.pos_fname;
    line = p.Lexing.pos_lnum;
    col = p.Lexing.pos_cnum - p.Lexing.pos_bol;
    context;
    kind;
    message;
  }

(* Baseline identity — see the module comment. *)
let fingerprint f = (rule_id f.rule, Filename.basename f.file, f.context, f.kind)

let to_string f =
  Printf.sprintf "%s:%d:%d: [%s/%s] (%s) %s" f.file f.line f.col (rule_id f.rule) f.kind f.context
    f.message

let compare_findings a b =
  compare (a.file, a.line, a.col, rule_id a.rule, a.kind) (b.file, b.line, b.col, rule_id b.rule, b.kind)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json f =
  Printf.sprintf
    {|{"rule":"%s","kind":"%s","file":"%s","line":%d,"col":%d,"context":"%s","message":"%s"}|}
    (rule_id f.rule) (json_escape f.kind) (json_escape f.file) f.line f.col
    (json_escape f.context) (json_escape f.message)

(* ------------------------------------------------------ rule configuration *)

(* Fully applied calls to these are polymorphic structural comparison /
   hashing at whatever type they are instantiated: banned outright at node
   types (R2), and banned at every type inside [@pint.hot] bodies, where
   even an int-instantiated [min] is an out-of-line call into the
   polymorphic compare runtime. *)
let poly_compare_idents =
  [
    "Stdlib.=";
    "Stdlib.<>";
    "Stdlib.<";
    "Stdlib.>";
    "Stdlib.<=";
    "Stdlib.>=";
    "Stdlib.compare";
    "Stdlib.min";
    "Stdlib.max";
    "Hashtbl.hash";
    "Stdlib.Hashtbl.hash";
    "List.mem";
    "Stdlib.List.mem";
    "List.assoc";
    "Stdlib.List.assoc";
    "List.mem_assoc";
    "Stdlib.List.mem_assoc";
  ]

(* Structural identity of these types is meaningless (they carry mutable
   labels, priorities or physical-identity semantics), so polymorphic
   compare at any type containing them is a correctness bug, not a style
   issue: OM labels are rewritten by relabelling, treap priorities are
   per-instance randomness, strand records are compared by [==] only.
   Pairs are (defining module, type name). *)
let node_types =
  [
    ("Om", "record");
    ("Om", "group");
    ("Om", "t");
    ("Itreap", "node");
    ("Itreap", "t");
    ("Itreap", "scratch");
    ("Srec", "t");
    ("Sp_order", "strand");
  ]

(* Callees known to allocate their result — the intra-procedural R1 pass
   cannot see into callees, so the usual allocating entry points are named
   here.  (Pervasive exception raisers are deliberately absent: an error
   path is allowed to allocate its exception.) *)
let allocating_idents =
  [
    "Stdlib.ref";
    "Stdlib.@";
    "Stdlib.^";
    "Array.make";
    "Array.init";
    "Array.copy";
    "Array.append";
    "Array.sub";
    "Array.of_list";
    "Array.to_list";
    "Array.make_matrix";
    "Stdlib.Array.make";
    "Stdlib.Array.init";
    "Stdlib.Array.copy";
    "Stdlib.Array.append";
    "Stdlib.Array.sub";
    "Stdlib.Array.of_list";
    "Stdlib.Array.to_list";
    "List.rev";
    "List.map";
    "List.mapi";
    "List.append";
    "List.concat";
    "List.filter";
    "List.init";
    "List.sort";
    "List.merge";
    "List.of_seq";
    "Stdlib.List.rev";
    "Stdlib.List.map";
    "Stdlib.List.append";
    "Bytes.create";
    "Bytes.make";
    "Bytes.copy";
    "Bytes.sub";
    "String.make";
    "String.sub";
    "String.concat";
    "String.init";
    "Buffer.create";
    "Printf.sprintf";
    "Format.asprintf";
    "Queue.create";
    "Hashtbl.create";
    (* repo-local boxed-value factories *)
    "Interval.make";
    "Interval.hull";
    "Interval.point";
    "Interval.inter";
  ]

(* R4: never acceptable in lib/ (soundness escapes / process control). *)
let forbidden_idents = [ "Obj.magic"; "Obj.repr"; "Obj.obj"; "Stdlib.exit" ]

(* R4: banned inside [@pint.hot] bodies only — formatting machinery, and
   blocking synchronization: the lock-free transfer paths (deque steal,
   lane enqueue) are hot-marked precisely so a mutex can never creep back
   onto them. *)
let hot_forbidden_prefixes =
  [
    "Printf.";
    "Format.";
    "Stdlib.Printf.";
    "Stdlib.Format.";
    "Mutex.";
    "Stdlib.Mutex.";
    "Condition.";
    "Stdlib.Condition.";
  ]

(* Mutable containers whose head constructor makes a field "mutable in
   effect" even when the field itself is immutable. *)
let mutable_container_heads = [ "array"; "Stdlib.Bytes.t"; "Bytes.t"; "bytes"; "floatarray" ]

(* Heads that make a mutable field safe to share without a manifest entry. *)
let synchronized_heads =
  [
    "Atomic.t";
    "Stdlib.Atomic.t";
    "Mutex.t";
    "Stdlib.Mutex.t";
    "Condition.t";
    "Stdlib.Condition.t";
    "Semaphore.Counting.t";
    "Semaphore.Binary.t";
  ]

let hot_attribute = "pint.hot"

(* ---------------------------------------------- R5/R6 whole-program config *)

(* Happens-before edge attributes (DESIGN.md §15).  On a mutable field
   declaration, [@pint.publishes "e1 e2"] declares that plain writes to the
   field ride the named publication edges.  On a function binding,
   [@pint.publishes "e"] marks it as performing the releasing atomic write
   of edge [e] (its plain writes to fields bound to [e] are ordered before
   that release), and [@pint.acquires "e"] marks its reads as ordered after
   the acquiring atomic read of [e]. *)
let publishes_attribute = "pint.publishes"
let acquires_attribute = "pint.acquires"

(* Functions whose function-typed argument runs on a freshly spawned
   domain: the argument (and everything it references) is a multi-domain
   entry point. *)
let spawn_sinks = [ "Domain.spawn"; "Stdlib.Domain.spawn" ]

(* Known synchronous higher-order callees: a closure passed to one of
   these runs to completion on the caller's own domain, so it inherits the
   caller's domain context instead of being treated as escaping.
   Prefix-matched on the normalized callee name. *)
let sync_hof_prefixes =
  [
    "List.";
    "Array.";
    "Option.";
    "Result.";
    "Seq.";
    "Fun.";
    "Hashtbl.";
    "Queue.";
    "Stack.";
    "String.";
    "Bytes.";
    "Map.";
    "Set.";
    "Float.";
    "Int.";
    "Char.";
    "Either.";
    "Filename.";
    "Sys.";
    "Printf.";
    "Format.";
    "Arg.";
    "Atomic.";
    "Printexc.";
    "Buffer.";
    "Vec.";
    "Stats.";
    "Jsonx.";
  ]

(* Entry points seeded by name (beyond what {!spawn_sinks} discovers):
   code the linter cannot see calls these concurrently with running
   domains, so everything they reach is analyzed as multi-domain context.
   [Replay.Session] is driven by the serve IO loop while shared-pool
   domains consume the detector's lanes (DESIGN.md §14). *)
let seed_name_patterns =
  [ "Replay.Session.feed"; "Replay.Session.eof"; "Replay.Session.abort"; "Replay.Session.poll_races" ]

(* Type heads that make a module-level VALUE (not a record field) mutable:
   a global of such a type accessed from multi-domain context needs the
   same publication story as a mutable field. *)
let mutable_value_heads = [ "ref"; "array"; "bytes"; "Bytes.t"; "Buffer.t"; "Queue.t"; "Hashtbl.t" ]

(* [Stdlib.exit] is a soundness escape inside lib/ but the normal way for
   an entry point to report status: R4 keeps banning it under these
   prefixes only. *)
let exit_banned_prefixes = [ "lib/" ]

(* Owner columns naming one of these disciplines are lock-protected: R5
   publication does not apply (the lock is the happens-before edge). *)
let lock_owner_markers = [ "mutex"; "lock"; "seqlock" ]
