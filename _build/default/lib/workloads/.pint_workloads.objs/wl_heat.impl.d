lib/workloads/wl_heat.ml: Access Array Fj Float Membuf Workload
