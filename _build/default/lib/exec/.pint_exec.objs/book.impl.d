lib/exec/book.ml: Atomic Srec
