(* R5 (cross-domain publication) and R6 (single-writer discipline): the
   whole-program checks over the call graph, the domain-context inference
   and the OWNERSHIP.md owner-context column.

   Per mutable unsynchronized field claimed by a manifest row:

     -            trusted prose: no machine check (counted, reported)
     writers: S   R6  every write happens inside S
     private: S   R6  every write inside S, and every *spawned-context*
                  read inside S (main-context reads are the post-drain
                  diagnostics idiom and are exempt)
     edges: S     R6 writer check as [writers:], plus R5: the field must
                  declare [@pint.publishes] edges; every spawned writer
                  must publish one of them; every spawned reader must sit
                  on a path from its spawn seed that passes a matching
                  [@pint.acquires] — checked as uncovered-reachability,
                  so removing one acquire on one reader path is a finding
                  even when another path is covered

   Rows whose owner cell names a lock (mutex/lock/seqlock) are exempt from
   R5: the lock is the happens-before edge.

   Edge hygiene (R5, "unpaired-edge"): every edge name appearing anywhere
   must be declared on a field, published by some function and acquired by
   some function — an attribute whose other half is gone is a stale
   soundness argument, exactly what this pass exists to reject.

   Module-level mutable values (refs, arrays…) accessed from spawned
   context must be claimed by a manifest row ("unpublished-shared-ref"
   otherwise); a claimed global is then checked under its row's
   owner-context like a field.

   Closure escapes are detected during collection (a mutable local
   captured into a spawned thunk) and surfaced here. *)

open Lint_types
open Lint_callgraph

(* "A.f.<anon1>.g" -> "A.f" — synthetic closure segments belong to their
   enclosing function for ownership purposes. *)
let strip_anon fn =
  match Str_split.split_on_first fn ~sep:".<" with Some (p, _) -> p | None -> fn

(* Ownership-set membership climbs the nesting chain: a write inside
   [Micropool.run_worker.loop] is covered by a set naming
   [Micropool.run_worker]. *)
let covered_by fns fn =
  let rec climb fn =
    Lint_ownership.fn_in_set fns fn
    ||
    match Str_split.split_on_last fn ~sep:"." with Some (parent, _) -> climb parent | None -> false
  in
  climb (strip_anon fn)

let is_lock_owner (e : Lint_ownership.entry) =
  let owner = String.lowercase_ascii e.Lint_ownership.owner in
  List.exists
    (fun m ->
      match Str_split.split_on_first owner ~sep:m with Some _ -> true | None -> false)
    lock_owner_markers

type counts = { mutable checked_rows : int; mutable trusted_rows : int }

let ownership_loc lineno = Location.in_file (Printf.sprintf "OWNERSHIP.md (line %d)" lineno)

let check ~prog ~domains ~ownership ~fields =
  let findings = ref [] in
  let add f = findings := f :: !findings in
  let counts = { checked_rows = 0; trusted_rows = 0 } in

  (* ----- access index: field/global path -> accesses grouped by node *)
  let by_path : (string, (node * access) list ref) Hashtbl.t = Hashtbl.create 256 in
  Hashtbl.iter
    (fun _ n ->
      List.iter
        (fun a ->
          let cell =
            match Hashtbl.find_opt by_path a.a_path with
            | Some r -> r
            | None ->
                let r = ref [] in
                Hashtbl.add by_path a.a_path r;
                r
          in
          cell := (n, a) :: !cell)
        n.n_accesses)
    prog.p_nodes;
  let accesses path = match Hashtbl.find_opt by_path path with Some r -> !r | None -> [] in

  let uncovered_cache = Hashtbl.create 8 in
  let uncovered edge =
    match Hashtbl.find_opt uncovered_cache edge with
    | Some s -> s
    | None ->
        let s = Lint_domains.uncovered domains ~edge in
        Hashtbl.add uncovered_cache edge s;
        s
  in
  let root_uncovered_cache = Hashtbl.create 8 in
  let root_uncovered edge =
    match Hashtbl.find_opt root_uncovered_cache edge with
    | Some s -> s
    | None ->
        let s = Lint_domains.uncovered_from_roots domains ~edge in
        Hashtbl.add root_uncovered_cache edge s;
        s
  in

  (* ----- R6 writer-set check, shared by writers:/private:/edges: *)
  let check_writers path fns =
    List.iter
      (fun ((n : node), a) ->
        if a.a_write && not (covered_by fns n.n_name) then
          add
            (make_finding ~rule:R6_single_writer ~loc:a.a_loc ~context:(strip_anon n.n_name)
               ~kind:"off-owner-write"
               (Printf.sprintf "%s writes %s but is not in the declared owner set (%s)"
                  (strip_anon n.n_name) path (String.concat ", " fns))))
      (accesses path)
  in

  (* ----- one manifest-claimed mutable path (field or global) *)
  let check_path entry path decl_loc =
    if is_lock_owner entry then counts.trusted_rows <- counts.trusted_rows + 1
    else
      match entry.Lint_ownership.context with
      | Lint_ownership.Unchecked -> counts.trusted_rows <- counts.trusted_rows + 1
      | Lint_ownership.Writers fns ->
          counts.checked_rows <- counts.checked_rows + 1;
          check_writers path fns
      | Lint_ownership.Private fns ->
          counts.checked_rows <- counts.checked_rows + 1;
          check_writers path fns;
          List.iter
            (fun ((n : node), a) ->
              if
                (not a.a_write)
                && Lint_domains.is_spawned domains n.n_name
                && not (covered_by fns n.n_name)
              then
                add
                  (make_finding ~rule:R6_single_writer ~loc:a.a_loc
                     ~context:(strip_anon n.n_name) ~kind:"off-owner-read"
                     (Printf.sprintf
                        "%s reads private state %s from spawned context outside the owner set (%s)"
                        (strip_anon n.n_name) path (String.concat ", " fns))))
            (accesses path)
      | Lint_ownership.Edges fns -> (
          counts.checked_rows <- counts.checked_rows + 1;
          check_writers path fns;
          match Hashtbl.find_opt prog.p_field_edges path with
          | None ->
              add
                (make_finding ~rule:R5_publication ~loc:decl_loc ~context:path
                   ~kind:"unpublished-shared-mutable"
                   (Printf.sprintf
                      "%s is claimed with an edges: owner-context but its declaration carries no \
                       [@pint.publishes] edge"
                      path))
          | Some (edges, _) ->
              List.iter
                (fun ((n : node), a) ->
                  if a.a_write then begin
                    if
                      Lint_domains.is_spawned domains n.n_name
                      && not (List.exists (fun e -> List.mem e n.n_publishes) edges)
                    then
                      add
                        (make_finding ~rule:R5_publication ~loc:a.a_loc
                           ~context:(strip_anon n.n_name) ~kind:"unpublished-write"
                           (Printf.sprintf
                              "%s writes %s from spawned context without [@pint.publishes] on any \
                               of its edges (%s)"
                              (strip_anon n.n_name) path (String.concat ", " edges)))
                  end
                  else if
                    List.for_all (fun e -> Hashtbl.mem (uncovered e) n.n_name) edges
                  then
                    add
                      (make_finding ~rule:R5_publication ~loc:a.a_loc
                         ~context:(strip_anon n.n_name) ~kind:"unacquired-read"
                         (Printf.sprintf
                            "%s reads %s on a spawned path that never passes [@pint.acquires] for \
                             any of its edges (%s)"
                            (strip_anon n.n_name) path (String.concat ", " edges)))
                  else if
                    (* exported-entry-point path: a client may run any
                       uncalled function on any domain, so a read reachable
                       from one without an acquiring load is the same bug
                       (writer-set members are covered by R6 above) *)
                    List.for_all (fun e -> Hashtbl.mem (root_uncovered e) n.n_name) edges
                    && not (covered_by fns n.n_name)
                  then
                    add
                      (make_finding ~rule:R5_publication ~loc:a.a_loc
                         ~context:(strip_anon n.n_name) ~kind:"unacquired-read"
                         (Printf.sprintf
                            "%s reads %s on a path from an exported entry point that never passes \
                             [@pint.acquires] for any of its edges (%s)"
                            (strip_anon n.n_name) path (String.concat ", " edges))))
                (accesses path))
  in

  (* ----- fields from the R3 inventory *)
  List.iter
    (fun (path, decl_loc, _flavor) ->
      match Lint_ownership.entry_for ownership path with
      | None -> ()  (* R3 already reports the missing claim *)
      | Some entry -> check_path entry path decl_loc)
    fields;

  (* ----- module-level mutable values *)
  Hashtbl.iter
    (fun gpath gloc ->
      match Lint_ownership.entry_for ownership gpath with
      | Some entry ->
          ignore (Lint_ownership.covers ownership gpath);
          check_path entry gpath gloc
      | None ->
          let spawned_accesses =
            List.filter (fun ((n : node), _) -> Lint_domains.is_spawned domains n.n_name)
              (accesses gpath)
          in
          List.iter
            (fun ((n : node), (a : access)) ->
              add
                (make_finding ~rule:R5_publication ~loc:a.a_loc ~context:gpath
                   ~kind:"unpublished-shared-ref"
                   (Printf.sprintf
                      "module-level mutable value %s is %s by %s in spawned context but has no \
                       ownership row or publication edge"
                      gpath
                      (if a.a_write then "written" else "read")
                      (strip_anon n.n_name))))
            spawned_accesses)
    prog.p_globals;

  (* ----- edge pairing: declared / published / acquired must all meet *)
  let declared = Hashtbl.create 8 and published = Hashtbl.create 8 and acquired = Hashtbl.create 8 in
  Hashtbl.iter
    (fun path (edges, loc) -> List.iter (fun e -> Hashtbl.replace declared e (path, loc)) edges)
    prog.p_field_edges;
  Hashtbl.iter
    (fun _ (n : node) ->
      List.iter (fun e -> Hashtbl.replace published e n) n.n_publishes;
      List.iter (fun e -> Hashtbl.replace acquired e n) n.n_acquires)
    prog.p_nodes;
  let pair_finding ~loc ~context msg =
    add (make_finding ~rule:R5_publication ~loc ~context ~kind:"unpaired-edge" msg)
  in
  Hashtbl.iter
    (fun e (path, loc) ->
      if not (Hashtbl.mem published e) then
        pair_finding ~loc ~context:path
          (Printf.sprintf "edge '%s' is declared on %s but no function publishes it" e path);
      if not (Hashtbl.mem acquired e) then
        pair_finding ~loc ~context:path
          (Printf.sprintf "edge '%s' is declared on %s but no function acquires it" e path))
    declared;
  Hashtbl.iter
    (fun e (n : node) ->
      if not (Hashtbl.mem declared e) then
        pair_finding ~loc:n.n_loc ~context:(strip_anon n.n_name)
          (Printf.sprintf "%s publishes edge '%s' but no mutable field declares it"
             (strip_anon n.n_name) e))
    published;
  Hashtbl.iter
    (fun e (n : node) ->
      if not (Hashtbl.mem declared e) then
        pair_finding ~loc:n.n_loc ~context:(strip_anon n.n_name)
          (Printf.sprintf "%s acquires edge '%s' but no mutable field declares it"
             (strip_anon n.n_name) e))
    acquired;

  (* ----- owner-context hygiene: named functions must exist *)
  let node_exists fn =
    Hashtbl.mem prog.p_nodes fn
    || Hashtbl.fold
         (fun name _ acc -> acc || Str_split.starts_with ~prefix:(fn ^ ".") name)
         prog.p_nodes false
  in
  List.iter
    (fun (e : Lint_ownership.entry) ->
      if e.Lint_ownership.matched then
        let fns =
          match e.Lint_ownership.context with
          | Lint_ownership.Unchecked -> []
          | Lint_ownership.Writers fns | Lint_ownership.Private fns | Lint_ownership.Edges fns ->
              fns
        in
        List.iter
          (fun fn ->
            let exact =
              match Str_split.split_on_first fn ~sep:".*" with
              | Some (_, "") -> None  (* wildcard: no existence check *)
              | _ -> Some fn
            in
            match exact with
            | Some fn when not (node_exists fn) ->
                add
                  (make_finding ~rule:R6_single_writer ~loc:(ownership_loc e.Lint_ownership.o_line)
                     ~context:fn ~kind:"unknown-owner-fn"
                     (Printf.sprintf
                        "owner-context for %s names function %s which does not exist in the \
                         analyzed program"
                        e.Lint_ownership.pattern fn))
            | _ -> ())
          fns)
    ownership.Lint_ownership.entries;

  (prog.p_escapes @ !findings, counts.checked_rows, counts.trusted_rows)
