(* Benchmark executable.

   Three parts:
   1. Regenerates every evaluation table of the paper (Figures 1-4) from the
      virtual-time harness — these are the rows EXPERIMENTS.md quotes.
   2. Bechamel wall-clock microbenchmarks of the real data structures and
      detectors (one Test.make group per figure plus the substrate ops), so
      the actual OCaml implementation cost of each component is measured,
      not simulated.
   3. A machine-readable mode (`--json PATH`, optionally `--runs N`) that
      times one representative configuration per figure with a plain
      wall-clock stopwatch and writes per-case median/min/max/sample-count
      plus key detector diagnostics (treap visits, fast-path hit rate) as
      JSON.  The committed BENCH_*.json files are generated this way,
      giving successive PRs a perf trajectory to diff against and
      tools/bench_gate a baseline to compare fresh runs to.  `--profile
      PATH` additionally runs one profiled heat48/pint simulation, writes
      its Chrome trace to PATH and merges the "obs.*" aggregates into the
      JSON. *)

open Bechamel
open Toolkit

let small = 48 (* small workload size so each bechamel sample is a full run *)

(* All detector construction goes through the shared factory so bench,
   pint_run and pint_replay agree on what each name means. *)
let make_det ?(shards = 1) name = Option.get (Systems.make_detector ~shards name)

let run_detector_once name workers detector () =
  let w = Registry.find name in
  let inst = w.Workload.make ~size:small ~base:8 in
  let d, stages = make_det detector in
  match detector with
  | "stint" -> ignore (Seq_exec.run ~driver:d.Detector.driver inst.Workload.run)
  | _ ->
      let config = { Sim_exec.default_config with n_workers = workers; stages } in
      ignore (Sim_exec.run ~config ~driver:d.Detector.driver inst.Workload.run)

(* Figure 1 group: full detector runs on a small heat instance. *)
let fig1_tests =
  Test.make_grouped ~name:"fig1:heat48"
    [
      Test.make ~name:"baseline" (Staged.stage (run_detector_once "heat" 4 "none"));
      Test.make ~name:"stint" (Staged.stage (run_detector_once "heat" 4 "stint"));
      Test.make ~name:"pint" (Staged.stage (run_detector_once "heat" 4 "pint"));
      Test.make ~name:"cracer" (Staged.stage (run_detector_once "heat" 4 "cracer"));
    ]

(* Figure 2 group: the PINT pipeline at two base-case granularities (the
   strand/interval density is what the work breakdown depends on). *)
let fig2_tests =
  let go base () =
    let w = Registry.find "sort" in
    let inst = w.Workload.make ~size:4096 ~base in
    let d, stages = make_det "pint" in
    let config = { Sim_exec.default_config with n_workers = 4; stages } in
    ignore (Sim_exec.run ~config ~driver:d.Detector.driver inst.Workload.run)
  in
  Test.make_grouped ~name:"fig2:pint-pipeline"
    [
      Test.make ~name:"sort4096/b64" (Staged.stage (go 64));
      Test.make ~name:"sort4096/b256" (Staged.stage (go 256));
    ]

(* Figure 3 group: same computation at increasing simulated worker counts. *)
let fig3_tests =
  Test.make_grouped ~name:"fig3:strong-scaling"
    [
      Test.make ~name:"mmul/p1" (Staged.stage (run_detector_once "mmul" 1 "pint"));
      Test.make ~name:"mmul/p8" (Staged.stage (run_detector_once "mmul" 8 "pint"));
      Test.make ~name:"mmul/p32" (Staged.stage (run_detector_once "mmul" 32 "pint"));
    ]

(* Figure 4 group: weak-scaling step (size grows with workers). *)
let fig4_tests =
  let go size p () =
    let w = Registry.find "heat" in
    let inst = w.Workload.make ~size ~base:8 in
    let d, stages = make_det "pint" in
    let config = { Sim_exec.default_config with n_workers = p; stages } in
    ignore (Sim_exec.run ~config ~driver:d.Detector.driver inst.Workload.run)
  in
  Test.make_grouped ~name:"fig4:weak-scaling"
    [
      Test.make ~name:"heat32/p1" (Staged.stage (go 32 1));
      Test.make ~name:"heat64/p4" (Staged.stage (go 64 4));
      Test.make ~name:"heat128/p16" (Staged.stage (go 128 16));
    ]

(* Replay-driven timing: one shared capture of the heat workload, then each
   detector is timed on the identical recorded strand stream.  This isolates
   the detector's own cost — no executor, no workload execution, no
   schedule variance — so detector-vs-detector deltas here are pure
   access-history work. *)
let replay_trace =
  lazy
    (let w = Registry.find "heat" in
     let inst = w.Workload.make ~size:small ~base:8 in
     let d, _ = make_det "none" in
     let driver, finished = Tracefile.capturing d.Detector.driver in
     ignore (Seq_exec.run ~driver inst.Workload.run);
     finished ())

let replay_run ?shards det () =
  let t = Lazy.force replay_trace in
  let d, _ = make_det ?shards det in
  (Replay.run t d).Replay.diagnostics

let replay_tests =
  let go det () = ignore (replay_run det ()) in
  Test.make_grouped ~name:"replay:heat48"
    [
      Test.make ~name:"stint" (Staged.stage (go "stint"));
      Test.make ~name:"pint" (Staged.stage (go "pint"));
      Test.make ~name:"cracer" (Staged.stage (go "cracer"));
    ]

(* Predictive detection: observed detection and the strand DAG come from
   one replay pass, then the window-bounded reordering analysis runs on
   top.  The capture is the RACY heat variant — the plain one has no
   conflicting parallel pairs, so its candidate counters would be zero and
   the gate would have nothing to pin.  Timed end to end (replay +
   predict); the deterministic candidate/window counters are the gated
   payload. *)
let predict_trace =
  lazy
    (let w = Registry.find "heat" in
     let inst = (Option.get w.Workload.racy) ~size:small ~base:8 in
     let d, _ = make_det "none" in
     let driver, finished = Tracefile.capturing d.Detector.driver in
     ignore (Seq_exec.run ~driver inst.Workload.run);
     finished ())

let predict_run ~window () =
  let t = Lazy.force predict_trace in
  let d, _ = make_det "pint" in
  let b = Predict.Builder.create () in
  let o = Replay.run ~on_strand:(Predict.Builder.observer b) t d in
  let pr = Predict.predict ~window ~observed:o.Replay.races (Predict.Builder.dag b) in
  pr.Predict.diagnostics

let predict_tests =
  let go window () = ignore (predict_run ~window ()) in
  Test.make_grouped ~name:"predict:heat48"
    [
      Test.make ~name:"w2" (Staged.stage (go 2));
      Test.make ~name:"w8" (Staged.stage (go 8));
    ]

(* Substrate microbenchmarks: the individual data structures. *)
let substrate_tests =
  let treap_insert () =
    let t = Itreap.create ~seed:1 ~owner_eq:Int.equal () in
    for i = 0 to 999 do
      Itreap.insert_replace t (Interval.make (i * 7 mod 4096) ((i * 7 mod 4096) + 3)) i
    done
  in
  let treap_query () =
    let t = Itreap.create ~seed:1 ~owner_eq:Int.equal () in
    for i = 0 to 255 do
      Itreap.insert_replace t (Interval.make (i * 16) ((i * 16) + 7)) i
    done;
    let hits = ref 0 in
    for i = 0 to 999 do
      Itreap.query t (Interval.make (i mod 4096) ((i mod 4096) + 31)) ~f:(fun _ _ -> incr hits)
    done
  in
  let om_insert () =
    let om = Om.create () in
    let r = ref (Om.base om) in
    for _ = 1 to 1000 do
      r := Om.insert_after om !r
    done
  in
  let sp_query () =
    let sp, root = Sp_order.create () in
    let a, b, _ = Sp_order.spawn sp ~sync_pre:None root in
    let sink = ref false in
    for _ = 1 to 1000 do
      sink := Sp_order.parallel sp a b
    done
  in
  let coalescer () =
    let c = Coalescer.create () in
    for i = 0 to 999 do
      Coalescer.add_read c ~addr:(i * 2) ~len:1
    done;
    ignore (Coalescer.finish c)
  in
  let trace_pipe () =
    let _, root = Sp_order.create () in
    let tr = Trace.create ~id:0 ~owner:0 in
    for i = 0 to 999 do
      Trace.push tr (Srec.make ~uid:i root)
    done;
    for _ = 0 to 999 do
      ignore (Trace.peek tr);
      Trace.pop tr
    done
  in
  let ahq_pipe () =
    let _, root = Sp_order.create () in
    let q = Ahq.create ~capacity:2048 () in
    for i = 0 to 999 do
      ignore (Ahq.try_enqueue q (Srec.make ~uid:i root))
    done;
    for _ = 0 to 999 do
      ignore (Ahq.peek q Ahq.l);
      Ahq.advance q Ahq.l;
      ignore (Ahq.peek q Ahq.r);
      Ahq.advance q Ahq.r
    done
  in
  let ahq_pipe_batched () =
    (* same 1k records, consumed through the batched interface: one cursor
       update and one recycling scan per 32 records instead of per record *)
    let _, root = Sp_order.create () in
    let q = Ahq.create ~capacity:2048 () in
    for i = 0 to 999 do
      ignore (Ahq.try_enqueue q (Srec.make ~uid:i root))
    done;
    let drain side =
      let rec go () =
        let b = Ahq.peek_batch q side in
        if Array.length b > 0 then begin
          Ahq.advance_n q side (Array.length b);
          go ()
        end
      in
      go ()
    in
    drain Ahq.l;
    drain Ahq.r
  in
  Test.make_grouped ~name:"substrate"
    [
      Test.make ~name:"treap-1k-inserts" (Staged.stage treap_insert);
      Test.make ~name:"treap-1k-queries" (Staged.stage treap_query);
      Test.make ~name:"om-1k-inserts" (Staged.stage om_insert);
      Test.make ~name:"sporder-1k-queries" (Staged.stage sp_query);
      Test.make ~name:"coalescer-1k" (Staged.stage coalescer);
      Test.make ~name:"trace-1k-pipe" (Staged.stage trace_pipe);
      Test.make ~name:"ahq-1k-pipe" (Staged.stage ahq_pipe);
      Test.make ~name:"ahq-1k-pipe-batch32" (Staged.stage ahq_pipe_batched);
    ]

(* Minimal reporting: name + ns/run from the OLS estimate. *)
let report tests =
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.4) () in
  let instances = Instance.[ monotonic_clock ] in
  let raw = Benchmark.all cfg instances tests in
  let ols =
    Analyze.all
      (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |])
      Instance.monotonic_clock raw
  in
  let rows = Hashtbl.fold (fun name r acc -> (name, r) :: acc) ols [] in
  List.iter
    (fun (name, r) ->
      match Analyze.OLS.estimates r with
      | Some [ est ] -> Printf.printf "  %-40s %14.0f ns/run\n%!" name est
      | _ -> Printf.printf "  %-40s (no estimate)\n%!" name)
    (List.sort compare rows)

(* Per-stage pipeline diagnostics from one representative PINT run, so
   backpressure (writer stalls), idle spinning and the achieved AHQ batch
   size can be attributed stage by stage. *)
let print_stage_diagnostics () =
  let w = Registry.find "heat" in
  let inst = w.Workload.make ~size:small ~base:8 in
  let d, stages = make_det "pint" in
  let config = { Sim_exec.default_config with n_workers = 4; stages } in
  ignore (Sim_exec.run ~config ~driver:d.Detector.driver inst.Workload.run);
  d.Detector.drain ();
  print_endline "=== PINT per-stage pipeline diagnostics (heat48, 4 workers) ===";
  List.iter
    (fun (k, v) ->
      if
        String.length k > 6 && String.sub k 0 6 = "stage."
        || k = "writer_stalls" || k = "ahq_batch"
      then Printf.printf "  %-28s %12.1f\n" k v)
    (d.Detector.diagnostics ())

let default_main () =
  print_endline "=== PINT evaluation tables (virtual-time harness) ===";
  print_newline ();
  let _, f1 = Figures.fig1 () in
  print_string f1;
  print_newline ();
  let _, f2 = Figures.fig2 () in
  print_string f2;
  print_newline ();
  let _, f3 = Figures.fig3 () in
  print_string f3;
  print_newline ();
  let _, f4 = Figures.fig4 () in
  print_string f4;
  print_newline ();
  print_stage_diagnostics ();
  print_newline ();
  print_endline "=== Bechamel wall-clock benchmarks (real implementation) ===";
  List.iter report
    [ fig1_tests; fig2_tests; fig3_tests; fig4_tests; replay_tests; predict_tests; substrate_tests ]

(* ------------------------------------------------- machine-readable mode *)

(* One run of a (workload, detector) configuration; returns the detector's
   diagnostics so the JSON can carry treap visits / fast-path rates next to
   the wall-clock numbers. *)
let detector_run ?shards ~workload ~size ~base ~workers det () =
  let w = Registry.find workload in
  let inst = w.Workload.make ~size ~base in
  let d, stages = make_det ?shards det in
  (match det with
  | "stint" -> ignore (Seq_exec.run ~driver:d.Detector.driver inst.Workload.run)
  | _ ->
      let config = { Sim_exec.default_config with n_workers = workers; stages } in
      ignore (Sim_exec.run ~config ~driver:d.Detector.driver inst.Workload.run));
  d.Detector.drain ();
  d.Detector.diagnostics ()

(* Host core budget for the real-domain cases: --domains overrides the
   machine's recommended count (CI pins it so the gate's scaling check has
   a trustworthy "did this host actually have 4 cores" signal). *)
let domains_override = ref None

let host_domains () =
  match !domains_override with Some d -> d | None -> Domain.recommended_domain_count ()

(* One real-domain detection run: PINT sharded across micropool domains
   under Par_exec, wall clock.  Core workers are fixed at 1 so the fork-join
   side contributes identical work at every shard count; collector
   backpressure is on (real consumers drain the lanes concurrently). *)
let par_run ~shards ~workload ~size ~base () =
  let w = Registry.find workload in
  let inst = w.Workload.make ~size ~base in
  let d, stages =
    Option.get
      (Systems.make_detector ~shards ~bp_rounds:Pint_detector.recommended_bp_rounds "pint")
  in
  let config =
    { Par_exec.n_workers = 1; seed = 1; pools = Systems.micropools stages; obs = Obs.disabled }
  in
  let r = Par_exec.run ~config ~driver:d.Detector.driver inst.Workload.run in
  d.Detector.drain ();
  ("domains", float_of_int (host_domains ()))
  :: ("domains_used", float_of_int r.Par_exec.n_domains)
  :: ("steals", float_of_int r.Par_exec.n_steals)
  :: ("steal_cas_failures", float_of_int r.Par_exec.n_steal_cas_failures)
  :: ("parks", float_of_int r.Par_exec.n_parks)
  :: d.Detector.diagnostics ()

let median samples =
  let a = Array.of_list samples in
  Array.sort compare a;
  let n = Array.length a in
  if n = 0 then 0.
  else if n mod 2 = 1 then a.(n / 2)
  else (a.((n / 2) - 1) +. a.(n / 2)) /. 2.

(* Streaming-service soak: an in-process pint_serve daemon on a temp Unix
   socket, M concurrent client sessions streaming the golden corpus plus a
   seeded sim capture.  The wall clock is the whole soak; the payload
   diagnostics are the per-session Data-frame feed latency quantiles
   (µs, aggregated across served sessions: median of per-session p50s,
   worst per-session p99) and the admission-reject count — the
   over-subscribed case deliberately exceeds the daemon's session cap, so
   its reject counter records that surplus tenants were turned away with a
   framed error instead of degrading the admitted ones. *)
let soak_images =
  lazy
    (let golden =
       let dir = Filename.concat "test" "golden" in
       if Sys.file_exists dir && Sys.is_directory dir then
         Sys.readdir dir |> Array.to_list
         |> List.filter (fun f -> Filename.check_suffix f ".trace")
         |> List.sort compare
         |> List.map (fun f ->
                let ic = open_in_bin (Filename.concat dir f) in
                let s = really_input_string ic (in_channel_length ic) in
                close_in ic;
                s)
       else []
     in
     let sim_capture () =
       let w = Registry.find "heat" in
       let inst = w.Workload.make ~size:small ~base:8 in
       let d, _ = make_det "none" in
       let driver, finished = Tracefile.capturing d.Detector.driver in
       let config = { Sim_exec.default_config with n_workers = 4; seed = 7 } in
       ignore (Sim_exec.run ~config ~driver inst.Workload.run);
       Tracefile.to_bytes (finished ())
     in
     golden @ [ sim_capture () ])

let soak ~sessions ~max_sessions () =
  let images = Lazy.force soak_images in
  let config =
    {
      Serve_server.default_config with
      Serve_server.max_sessions;
      pool_workers = 2;
      shards = 2;
      bp_rounds = Pint_detector.recommended_bp_rounds;
    }
  in
  let sock =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "pint-bench-%d.sock" (Unix.getpid ()))
  in
  let server = Serve_server.create ~config (Unix.ADDR_UNIX sock) in
  let srv = Domain.spawn (fun () -> Serve_server.serve ~poll:0.005 server) in
  let addr = Serve_server.sockaddr server in
  let jobs =
    List.init sessions (fun i ->
        let bytes = List.nth images (i mod List.length images) in
        Domain.spawn (fun () -> Serve_client.run ~chunk:4096 ~addr bytes))
  in
  let p50s = ref [] and p99s = ref [] and rejects = ref 0 in
  List.iter
    (fun d ->
      match Domain.join d with
      | Error _ -> incr rejects
      | Ok r ->
          let q key = Option.map float_of_string (List.assoc_opt key r.Serve_client.stats) in
          Option.iter (fun v -> p50s := v :: !p50s) (q "obs.h.serve.feed_us.p50");
          Option.iter (fun v -> p99s := v :: !p99s) (q "obs.h.serve.feed_us.p99"))
    jobs;
  Serve_server.stop server;
  Domain.join srv;
  [
    ("sessions", float_of_int sessions);
    ("served", float_of_int (List.length !p50s));
    ("admission_rejects", float_of_int !rejects);
    ("feed_us_p50", median !p50s);
    ("feed_us_p99", List.fold_left max 0. !p99s);
  ]

(* The representative case list: one group per paper figure, mirroring the
   bechamel groups above but sized to finish in seconds so CI can smoke it. *)
let json_cases =
  [
    ( "fig1:heat48",
      [
        ("baseline", detector_run ~workload:"heat" ~size:small ~base:8 ~workers:4 "none");
        ("stint", detector_run ~workload:"heat" ~size:small ~base:8 ~workers:1 "stint");
        ("pint", detector_run ~workload:"heat" ~size:small ~base:8 ~workers:4 "pint");
        ("cracer", detector_run ~workload:"heat" ~size:small ~base:8 ~workers:4 "cracer");
      ] );
    ( "fig2:pint-pipeline",
      [
        ("sort4096/b64", detector_run ~workload:"sort" ~size:4096 ~base:64 ~workers:4 "pint");
        ("sort4096/b256", detector_run ~workload:"sort" ~size:4096 ~base:256 ~workers:4 "pint");
      ] );
    ( "fig3:strong-scaling",
      [
        ("mmul/p1", detector_run ~workload:"mmul" ~size:small ~base:8 ~workers:1 "pint");
        ("mmul/p8", detector_run ~workload:"mmul" ~size:small ~base:8 ~workers:8 "pint");
        ("mmul/p32", detector_run ~workload:"mmul" ~size:small ~base:8 ~workers:32 "pint");
      ] );
    ( "fig4:weak-scaling",
      [
        ("heat32/p1", detector_run ~workload:"heat" ~size:32 ~base:8 ~workers:1 "pint");
        ("heat64/p4", detector_run ~workload:"heat" ~size:64 ~base:8 ~workers:4 "pint");
        ("heat128/p16", detector_run ~workload:"heat" ~size:128 ~base:8 ~workers:16 "pint");
      ] );
    ( "replay:heat48",
      [
        ("stint", replay_run "stint");
        ("pint", replay_run "pint");
        ("cracer", replay_run "cracer");
      ] );
    (* Shard sweeps: the same fig1 heat48/pint configuration at increasing
       address-range shard counts.  Wall time barely moves (the simulator
       drives every stage on one OS thread) — the payload is the
       "detect_span" diagnostic, the virtual-cycle critical path of the
       slowest treap worker, which must decrease as the access history is
       split across more {writer,lreader,rreader} triples. *)
    ( "fig1:shards",
      [
        ("heat48/s1", detector_run ~shards:1 ~workload:"heat" ~size:small ~base:8 ~workers:4 "pint");
        ("heat48/s2", detector_run ~shards:2 ~workload:"heat" ~size:small ~base:8 ~workers:4 "pint");
        ("heat48/s4", detector_run ~shards:4 ~workload:"heat" ~size:small ~base:8 ~workers:4 "pint");
        ("heat48/s8", detector_run ~shards:8 ~workload:"heat" ~size:small ~base:8 ~workers:4 "pint");
      ] );
    ( "replay:heat48:shards",
      [ ("pint/s1", replay_run ~shards:1 "pint"); ("pint/s4", replay_run ~shards:4 "pint") ] );
    (* Real-domain shard sweep: the same heat48/pint configuration under
       Par_exec, where shard k's {writer,lreader,rreader} triple runs on
       its own pinned micropool domain.  Core workers are fixed at 1 so the
       computation side is identical across cases and detection parallelism
       is the only variable — on a host with >= 4 cores the s4 wall clock
       must beat s1 (tools/bench_gate --require-scaling asserts exactly
       that; the recorded "domains" diagnostic lets it skip the assertion
       on smaller hosts, where oversubscribed domains can only tie). *)
    ( "par:heat48",
      [
        ("s1", par_run ~shards:1 ~workload:"heat" ~size:small ~base:8);
        ("s2", par_run ~shards:2 ~workload:"heat" ~size:small ~base:8);
        ("s4", par_run ~shards:4 ~workload:"heat" ~size:small ~base:8);
        ("s8", par_run ~shards:8 ~workload:"heat" ~size:small ~base:8);
      ] );
    (* Service soak: concurrent streaming tenants against one in-process
       daemon.  m4 admits everyone; m8/cap4 over-subscribes a 4-session cap
       so the admission path (framed reject, no queueing) is exercised and
       its reject count lands in the trajectory. *)
    ( "serve:soak",
      [
        ("m4", soak ~sessions:4 ~max_sessions:4);
        ("m8/cap4", soak ~sessions:8 ~max_sessions:4);
      ] );
    (* Predictive detection on the shared heat capture at a small and a
       large window.  Wall time is replay + analysis; the candidate and
       window counters are deterministic (and shard-invariant), so
       tools/bench_gate pins them exactly. *)
    ( "predict:heat48",
      [ ("w2", predict_run ~window:2); ("w8", predict_run ~window:8) ] );
  ]

(* Diagnostics worth tracking release-over-release; anything absent for a
   given detector is simply omitted from its JSON object. *)
let tracked_diags =
  [
    "writer_visits";
    "lreader_visits";
    "rreader_visits";
    "reader_visits";
    "fastpath_hits";
    "slowpath_hits";
    "fastpath_rate";
    "scratch_reuse";
    "coal_sort_skips";
    "coal_sorts";
    "queue_min_rescans";
    "collected";
    "writer_stalls";
    "ahq_batch";
    "intervals";
    "raw_events";
    "shards";
    "detect_span";
    "split_intervals";
    "split_subranges";
    "split_rate";
    "lane_rejects";
    "lane_peak_depth";
    "backpressure_waits";
    "domains";
    "domains_used";
    "steals";
    "steal_cas_failures";
    "parks";
    "sessions";
    "served";
    "admission_rejects";
    "feed_us_p50";
    "feed_us_p99";
    "predict_candidates";
    "predict_windows";
    "predict_pair_scans";
    "predict_probe_skips";
    "predicted";
  ]

(* One profiled representative run (fig1's heat48/pint under the simulator,
   virtual-time clock): writes the Chrome trace next to the bench JSON and
   returns the aggregate "obs.*" metrics for the JSON's "obs" object. *)
let profiled_run ~path () =
  let w = Registry.find "heat" in
  let inst = w.Workload.make ~size:small ~base:8 in
  let obs = Obs.create ~clock:(Clock.manual ()) () in
  let d, stages = Option.get (Systems.make_detector ~obs "pint") in
  let driver = Obs_hooks.instrument obs d.Detector.driver in
  let config =
    { Sim_exec.default_config with n_workers = 4; stages; obs_clock = Obs.clock obs }
  in
  ignore (Sim_exec.run ~config ~driver inst.Workload.run);
  d.Detector.drain ();
  Obs.write_chrome ~meta:[ ("bench", "fig1:heat48/pint"); ("exec", "sim") ] obs ~path;
  Printf.printf "  profiled heat48/pint -> %s\n%!" path;
  Obs.summary obs

let json_mode ~path ~runs ~profile =
  let buf = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "{\n";
  add "  \"schema\": 3,\n";
  add "  \"generated_by\": \"bench/main.exe --json\",\n";
  add "  \"runs\": %d,\n" runs;
  add "  \"figures\": {\n";
  List.iteri
    (fun gi (group, cases) ->
      add "    %S: {\n" group;
      List.iteri
        (fun ci (case, run) ->
          Printf.printf "  %s / %s ...%!" group case;
          let samples = ref [] and diags = ref [] in
          for _ = 1 to runs do
            (* start every sample from a compacted heap: the detectors are
               allocation-heavy and inherited major-heap state otherwise
               makes run-to-run timings bimodal *)
            Gc.compact ();
            let t0 = Unix.gettimeofday () in
            diags := run ();
            samples := (Unix.gettimeofday () -. t0) :: !samples
          done;
          let med = median !samples in
          Printf.printf " %.3fs median\n%!" med;
          add "      %S: {\n" case;
          add "        \"median_s\": %.6f,\n" med;
          add "        \"min_s\": %.6f,\n" (List.fold_left min infinity !samples);
          add "        \"max_s\": %.6f,\n" (List.fold_left max neg_infinity !samples);
          add "        \"n\": %d,\n" (List.length !samples);
          add "        \"samples_s\": [%s],\n"
            (String.concat ", " (List.rev_map (Printf.sprintf "%.6f") !samples));
          let kept =
            List.filter (fun (k, _) -> List.mem k tracked_diags) !diags
          in
          add "        \"diagnostics\": {%s}\n"
            (String.concat ", "
               (List.map (fun (k, v) -> Printf.sprintf "%S: %.3f" k v) kept));
          add "      }%s\n" (if ci = List.length cases - 1 then "" else ",")
          )
        cases;
      add "    }%s\n" (if gi = List.length json_cases - 1 then "" else ","))
    json_cases;
  (match profile with
  | None -> add "  }\n"
  | Some ppath ->
      add "  },\n";
      let s = profiled_run ~path:ppath () in
      add "  \"obs\": {%s}\n"
        (String.concat ", " (List.map (fun (k, v) -> Printf.sprintf "%S: %.3f" k v) s)));
  add "}\n";
  let oc = open_out path in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf "wrote %s\n%!" path

let () =
  let argv = Sys.argv in
  let n = Array.length argv in
  let json_path = ref None and runs = ref 5 and profile = ref None in
  let i = ref 1 in
  while !i < n do
    (match argv.(!i) with
    | "--json" ->
        if !i + 1 < n && String.length argv.(!i + 1) > 0 && argv.(!i + 1).[0] <> '-' then begin
          incr i;
          json_path := Some argv.(!i)
        end
        else json_path := Some "BENCH_10.json"
    | "--runs" when !i + 1 < n ->
        incr i;
        runs := int_of_string argv.(!i)
    | "--profile" when !i + 1 < n ->
        incr i;
        profile := Some argv.(!i)
    | "--domains" when !i + 1 < n ->
        incr i;
        domains_override := Some (int_of_string argv.(!i))
    | a ->
        Printf.eprintf
          "bench: unknown argument %s (supported: --json [PATH] --runs N --profile PATH --domains \
           N)\n"
          a;
        exit 2);
    incr i
  done;
  match !json_path with
  | Some path -> json_mode ~path ~runs:!runs ~profile:!profile
  | None -> default_main ()
