lib/exec/srec.ml: Array Atomic Format Interval Sp_order
