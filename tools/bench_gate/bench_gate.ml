(* bench_gate — CI perf-regression gate over bench --json files.

   Usage:
     bench_gate --baseline BENCH_5.json --current BENCH_smoke.json
                [--threshold 0.25] [--min-samples 3] [--min-time 0.005]
                [--waivers GATE_WAIVERS] [--inflate F]
                [--require-scaling SLOW FAST] [--scaling-ratio 0.9]
                [--min-domains 4] [--gated-diag NAME]...

   --gated-diag (repeatable) overrides the deterministic diagnostics the
   ratio test gates (default: detect_span, predict_candidates,
   predict_windows).

   Compares per-case best-of-N times (see gate.ml for why min, not
   median); exits 1 if any case regressed past the threshold and is not
   waived, 0 otherwise (skipped cases never fail the gate).  --inflate
   multiplies every current sample by F before comparing — CI uses it to
   prove the gate actually trips on a doctored 2x-slower result.

   --require-scaling SLOW FAST additionally asserts, within the CURRENT
   file alone, that case FAST's best time is at most --scaling-ratio of
   case SLOW's (e.g. par:heat48/s4 vs par:heat48/s1 — real-domain sharding
   must buy wall clock, not just detect_span).  The assertion is skipped —
   reported, never silently — when the FAST case's recorded "domains"
   diagnostic says the host had fewer than --min-domains cores, since a
   time-shared run cannot scale. *)

let usage () =
  prerr_endline
    "usage: bench_gate --baseline FILE --current FILE [--threshold F] [--min-samples N]\n\
    \       [--waivers FILE] [--inflate F] [--require-scaling SLOW FAST]\n\
    \       [--scaling-ratio F] [--min-domains N] [--gated-diag NAME]...";
  exit 2

let () =
  let baseline = ref None
  and current = ref None
  and threshold = ref 0.25
  and min_samples = ref 3
  and min_time = ref 0.005
  and waiver_file = ref None
  and inflate = ref 1.0
  and scaling = ref None
  and scaling_ratio = ref 0.9
  and min_domains = ref 4
  and gated_diags = ref [] in
  let argv = Sys.argv in
  let i = ref 1 in
  let next () =
    incr i;
    if !i >= Array.length argv then usage ();
    argv.(!i)
  in
  while !i < Array.length argv do
    (match argv.(!i) with
    | "--baseline" -> baseline := Some (next ())
    | "--current" -> current := Some (next ())
    | "--threshold" -> threshold := float_of_string (next ())
    | "--min-samples" -> min_samples := int_of_string (next ())
    | "--min-time" -> min_time := float_of_string (next ())
    | "--waivers" -> waiver_file := Some (next ())
    | "--inflate" -> inflate := float_of_string (next ())
    | "--require-scaling" ->
        let slow = next () in
        let fast = next () in
        scaling := Some (slow, fast)
    | "--scaling-ratio" -> scaling_ratio := float_of_string (next ())
    | "--min-domains" -> min_domains := int_of_string (next ())
    | "--gated-diag" -> gated_diags := next () :: !gated_diags
    | _ -> usage ());
    incr i
  done;
  let baseline_path = match !baseline with Some p -> p | None -> usage () in
  let current_path = match !current with Some p -> p | None -> usage () in
  let base_cases = Gate.cases_of_file baseline_path in
  let cur_cases =
    List.map
      (fun (c : Gate.case) ->
        { c with Gate.median_s = c.Gate.median_s *. !inflate; min_s = c.Gate.min_s *. !inflate })
      (Gate.cases_of_file current_path)
  in
  let waivers =
    match !waiver_file with
    | Some p when Sys.file_exists p -> Gate.parse_waivers (Gate.load_file p)
    | _ -> []
  in
  Printf.printf "bench_gate: %s vs baseline %s (threshold +%.0f%%, min %d samples%s)\n"
    current_path baseline_path (100. *. !threshold) !min_samples
    (if !inflate <> 1.0 then Printf.sprintf ", medians inflated %.2fx" !inflate else "");
  let gated_diags =
    match !gated_diags with [] -> Gate.default_gated_diags | ds -> List.rev ds
  in
  let verdicts =
    Gate.compare_cases ~threshold:!threshold ~min_samples:!min_samples ~min_time:!min_time
      ~gated_diags ~waivers ~baseline:base_cases ~current:cur_cases ()
  in
  List.iter (Gate.pp_verdict stdout) verdicts;
  (* --inflate doctors wall clocks only, so it must not break the scaling
     ratio: the check reads the undoctored current file *)
  let scaling_failed =
    match !scaling with
    | None -> false
    | Some (slow, fast) ->
        let v =
          Gate.check_scaling ~max_ratio:!scaling_ratio ~min_domains:!min_domains ~slow ~fast
            (Gate.cases_of_file current_path)
        in
        Gate.pp_scaling stdout v;
        (match v with Gate.Scaling_failed _ -> true | _ -> false)
  in
  match (Gate.regressions verdicts, scaling_failed) with
  | [], false ->
      print_endline "bench_gate: PASS";
      exit 0
  | rs, sf ->
      Printf.printf "bench_gate: FAIL (%d unwaived regression(s)%s)\n" (List.length rs)
        (if sf then ", scaling assertion failed" else "");
      exit 1
