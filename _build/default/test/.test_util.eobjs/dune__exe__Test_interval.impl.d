test/test_interval.ml: Alcotest Array Coalescer Hashtbl Interval List QCheck QCheck_alcotest
