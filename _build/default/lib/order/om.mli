(** Order-maintenance list.

    Maintains a total order under [insert_after] with O(1)-amortized inserts
    and O(1) order queries, using the classic two-level labelling scheme
    (Dietz–Sleator / Bender et al.): records live in groups, groups carry
    widely spaced integer labels, records carry labels local to their group,
    and comparison is lexicographic on (group label, record label).  When a
    gap is exhausted, the group (or the whole group list) is relabelled;
    overfull groups are split.

    Concurrency contract (this is the WSP-Order substrate, see DESIGN.md §5):
    - [insert_after] takes the structure's mutex, so concurrent inserts from
      parallel workers are serialized;
    - [precedes] / [compare] are lock-free: they validate against a seqlock
      version counter that relabelling bumps, retrying on interference.  This
      gives linearizable queries without making readers take the lock. *)

type t
type record

(** Fresh list containing only its base record. *)
val create : unit -> t

(** The first record of the order; every inserted record is after it. *)
val base : t -> record

(** [insert_after t r] inserts a fresh record immediately after [r].
    Thread-safe. *)
val insert_after : t -> record -> record

(** [compare t a b] is negative / zero / positive as [a] is before / equal to
    / after [b] in the order.  Lock-free and safe against concurrent
    inserts. *)
val compare : t -> record -> record -> int

(** [precedes t a b] is [compare t a b < 0]. *)
val precedes : t -> record -> record -> bool

(** Number of records (including the base). *)
val length : t -> int

(** Number of relabelling events so far (amortization diagnostics). *)
val relabel_count : t -> int

(** Number of groups currently in the structure. *)
val group_count : t -> int

(** [validate t] checks every structural invariant (group sizes, label
    monotonicity, linkage consistency) and raises [Failure] describing the
    first violation.  Test-only; takes the lock. *)
val validate : t -> unit

(** [to_list t] returns records in order (test-only; takes the lock). *)
val to_list : t -> record list
