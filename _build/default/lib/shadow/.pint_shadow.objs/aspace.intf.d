lib/shadow/aspace.mli:
