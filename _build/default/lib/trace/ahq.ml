type reader = int

let l = 0
let r = 1

type t = {
  slots : Srec.t option array;
  cap : int;
  head : int Atomic.t; (* total enqueued; writer-owned *)
  cursors : int Atomic.t array; (* total processed, per reader *)
}

let create ?(capacity = 4096) ?(readers = 2) () =
  if capacity <= 0 then invalid_arg "Ahq.create: capacity must be positive";
  if readers < 1 then invalid_arg "Ahq.create: need at least one reader";
  {
    slots = Array.make capacity None;
    cap = capacity;
    head = Atomic.make 0;
    cursors = Array.init readers (fun _ -> Atomic.make 0);
  }

let n_readers t = Array.length t.cursors

let min_cursor t =
  Array.fold_left (fun m c -> min m (Atomic.get c)) max_int t.cursors

let try_enqueue t s =
  let h = Atomic.get t.head in
  if h - min_cursor t >= t.cap then false
  else begin
    t.slots.(h mod t.cap) <- Some s;
    Atomic.incr t.head;
    true
  end

let cursor t i =
  if i < 0 || i >= Array.length t.cursors then invalid_arg "Ahq: bad reader index";
  t.cursors.(i)

let peek t i =
  let pos = Atomic.get (cursor t i) in
  if pos >= Atomic.get t.head then None
  else
    match t.slots.(pos mod t.cap) with
    | Some _ as s -> s
    | None -> failwith "Ahq: published slot is empty"

let advance t i =
  let c = cursor t i in
  let pos = Atomic.get c in
  if pos >= Atomic.get t.head then failwith "Ahq.advance: nothing pending";
  (* Recycle the record reference if we are the last reader through this
     slot.  The clear must happen BEFORE our cursor advances: while our
     cursor still sits at [pos] the writer cannot reuse the slot (the ring
     occupancy check uses the minimum cursor), so the clear can never wipe a
     freshly enqueued record.  If two readers pass simultaneously, neither
     sees the other as "past" and the stale reference is simply overwritten
     by the writer on reuse — harmless. *)
  let everyone_else_past = ref true in
  Array.iteri
    (fun j other -> if j <> i && Atomic.get other <= pos then everyone_else_past := false)
    t.cursors;
  if !everyone_else_past then t.slots.(pos mod t.cap) <- None;
  Atomic.incr c

let enqueued t = Atomic.get t.head
let processed t i = Atomic.get (cursor t i)

let drained t =
  let h = Atomic.get t.head in
  Array.for_all (fun c -> Atomic.get c = h) t.cursors

let capacity t = t.cap
