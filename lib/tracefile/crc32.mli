(** CRC-32 (IEEE 802.3 polynomial, the zlib/PNG variant) for trace-file
    integrity checks.  Pure OCaml, table-driven. *)

(** [digest_sub s ~pos ~len] — CRC-32 of the substring. *)
val digest_sub : string -> pos:int -> len:int -> int32

(** [digest s] = [digest_sub s ~pos:0 ~len:(String.length s)]. *)
val digest : string -> int32

(** {2 Incremental interface}

    For streams seen one chunk at a time: [finalize (update (update init a
    …) b …)] equals [digest (a ^ b)].  The running value is the raw shift
    register (pre-inversion), so it is only comparable to stored checksums
    after {!finalize}. *)

(** The initial register value (all ones). *)
val init : int32

(** [update crc s ~pos ~len] folds a substring into the running register.
    @raise Invalid_argument on a bad range. *)
val update : int32 -> string -> pos:int -> len:int -> int32

(** Apply the final inversion, yielding the digest. *)
val finalize : int32 -> int32
