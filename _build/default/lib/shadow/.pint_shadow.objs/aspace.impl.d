lib/shadow/aspace.ml: Array Fun Hashtbl List Mutex Printf Vec
