(* Unit and property tests for Pint_util: Rng, Vec, Stats. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ Rng *)

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    check_int "same stream" (Rng.next a) (Rng.next b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Rng.next a = Rng.next b then incr same
  done;
  check_bool "different seeds diverge" true (!same < 4)

let test_rng_copy () =
  let a = Rng.create 7 in
  let _ = Rng.next a in
  let b = Rng.copy a in
  check_int "copy continues identically" (Rng.next a) (Rng.next b)

let test_rng_split_independent () =
  let a = Rng.create 5 in
  let b = Rng.split a in
  let matches = ref 0 in
  for _ = 1 to 64 do
    if Rng.next a = Rng.next b then incr matches
  done;
  check_bool "split streams differ" true (!matches < 4)

let test_rng_int_bounds () =
  let r = Rng.create 9 in
  for _ = 1 to 1000 do
    let v = Rng.int r 17 in
    check_bool "in range" true (v >= 0 && v < 17)
  done

let test_rng_int_invalid () =
  let r = Rng.create 1 in
  Alcotest.check_raises "zero bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int r 0))

let test_rng_float_range () =
  let r = Rng.create 3 in
  for _ = 1 to 1000 do
    let f = Rng.float r in
    check_bool "in [0,1)" true (f >= 0. && f < 1.)
  done

let test_rng_uniformity () =
  (* Coarse chi-square-ish sanity: 10 buckets, 10k draws. *)
  let r = Rng.create 11 in
  let buckets = Array.make 10 0 in
  for _ = 1 to 10_000 do
    let b = Rng.int r 10 in
    buckets.(b) <- buckets.(b) + 1
  done;
  Array.iter (fun c -> check_bool "bucket near uniform" true (c > 800 && c < 1200)) buckets

let test_rng_shuffle_permutation () =
  let r = Rng.create 13 in
  let a = Array.init 50 Fun.id in
  Rng.shuffle r a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 50 Fun.id) sorted

(* ------------------------------------------------------------------ Vec *)

let test_vec_push_get () =
  let v = Vec.create 0 in
  for i = 0 to 99 do
    Vec.push v (i * i)
  done;
  check_int "length" 100 (Vec.length v);
  for i = 0 to 99 do
    check_int "get" (i * i) (Vec.get v i)
  done

let test_vec_pop_lifo () =
  let v = Vec.create 0 in
  List.iter (Vec.push v) [ 1; 2; 3 ];
  check_int "peek" 3 (Vec.peek v);
  check_int "pop" 3 (Vec.pop v);
  check_int "pop" 2 (Vec.pop v);
  check_int "length" 1 (Vec.length v)

let test_vec_bounds () =
  let v = Vec.create 0 in
  Vec.push v 1;
  Alcotest.check_raises "get oob" (Invalid_argument "Vec.get: index out of bounds") (fun () ->
      ignore (Vec.get v 1));
  Alcotest.check_raises "set oob" (Invalid_argument "Vec.set: index out of bounds") (fun () ->
      Vec.set v (-1) 0)

let test_vec_pop_empty () =
  let v = Vec.create 0 in
  Alcotest.check_raises "pop empty" (Invalid_argument "Vec.pop: empty") (fun () ->
      ignore (Vec.pop v))

let test_vec_clear () =
  let v = Vec.create 0 in
  List.iter (Vec.push v) [ 1; 2; 3 ];
  Vec.clear v;
  check_int "cleared" 0 (Vec.length v);
  Vec.push v 9;
  check_int "reusable" 9 (Vec.get v 0)

let test_vec_sort_truncate () =
  let v = Vec.of_array ~dummy:0 [| 5; 1; 4; 2; 3 |] in
  Vec.sort compare v;
  Alcotest.(check (array int)) "sorted" [| 1; 2; 3; 4; 5 |] (Vec.to_array v);
  Vec.truncate v 2;
  Alcotest.(check (array int)) "truncated" [| 1; 2 |] (Vec.to_array v)

let test_vec_iter_fold () =
  let v = Vec.of_array ~dummy:0 [| 1; 2; 3; 4 |] in
  check_int "fold sum" 10 (Vec.fold_left ( + ) 0 v);
  let acc = ref [] in
  Vec.iteri (fun i x -> acc := (i, x) :: !acc) v;
  check_int "iteri count" 4 (List.length !acc)

let vec_model_prop =
  QCheck.Test.make ~name:"vec behaves like list" ~count:300
    QCheck.(list (pair bool small_int))
    (fun ops ->
      let v = Vec.create 0 in
      let model = ref [] in
      List.iter
        (fun (is_push, x) ->
          if is_push then begin
            Vec.push v x;
            model := x :: !model
          end
          else
            match !model with
            | [] -> ()
            | m :: rest ->
                let got = Vec.pop v in
                if got <> m then QCheck.Test.fail_reportf "pop %d <> %d" got m;
                model := rest)
        ops;
      List.rev !model = Array.to_list (Vec.to_array v))

(* ---------------------------------------------------------------- Stats *)

let test_stats_basic () =
  let s = Stats.create () in
  List.iter (Stats.add s) [ 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. ];
  check_int "count" 8 (Stats.count s);
  Alcotest.(check (float 1e-9)) "mean" 5.0 (Stats.mean s);
  Alcotest.(check (float 1e-9)) "stddev" 2.0 (Stats.stddev s);
  Alcotest.(check (float 1e-9)) "min" 2.0 (Stats.min s);
  Alcotest.(check (float 1e-9)) "max" 9.0 (Stats.max s)

let test_stats_empty () =
  let s = Stats.create () in
  Alcotest.(check (float 0.)) "mean empty" 0. (Stats.mean s);
  Alcotest.(check (float 0.)) "stddev empty" 0. (Stats.stddev s)

let test_stats_merge () =
  let a = Stats.create () and b = Stats.create () and whole = Stats.create () in
  List.iter
    (fun x ->
      Stats.add whole x;
      if x < 5. then Stats.add a x else Stats.add b x)
    [ 1.; 2.; 3.; 6.; 7.; 8.; 9. ];
  let m = Stats.merge a b in
  Alcotest.(check (float 1e-9)) "merged mean" (Stats.mean whole) (Stats.mean m);
  Alcotest.(check (float 1e-9)) "merged stddev" (Stats.stddev whole) (Stats.stddev m);
  check_int "merged count" (Stats.count whole) (Stats.count m)

let stats_merge_prop =
  QCheck.Test.make ~name:"stats merge = concat" ~count:200
    QCheck.(pair (list (float_bound_exclusive 100.)) (list (float_bound_exclusive 100.)))
    (fun (xs, ys) ->
      let a = Stats.create () and b = Stats.create () and whole = Stats.create () in
      List.iter
        (fun x ->
          Stats.add a x;
          Stats.add whole x)
        xs;
      List.iter
        (fun y ->
          Stats.add b y;
          Stats.add whole y)
        ys;
      let m = Stats.merge a b in
      Float.abs (Stats.mean m -. Stats.mean whole) < 1e-6
      && Float.abs (Stats.stddev m -. Stats.stddev whole) < 1e-6)

let () =
  Alcotest.run "pint_util"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
          Alcotest.test_case "copy" `Quick test_rng_copy;
          Alcotest.test_case "split independence" `Quick test_rng_split_independent;
          Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
          Alcotest.test_case "int invalid" `Quick test_rng_int_invalid;
          Alcotest.test_case "float range" `Quick test_rng_float_range;
          Alcotest.test_case "uniformity" `Quick test_rng_uniformity;
          Alcotest.test_case "shuffle permutation" `Quick test_rng_shuffle_permutation;
        ] );
      ( "vec",
        [
          Alcotest.test_case "push/get" `Quick test_vec_push_get;
          Alcotest.test_case "pop lifo" `Quick test_vec_pop_lifo;
          Alcotest.test_case "bounds" `Quick test_vec_bounds;
          Alcotest.test_case "pop empty" `Quick test_vec_pop_empty;
          Alcotest.test_case "clear" `Quick test_vec_clear;
          Alcotest.test_case "sort/truncate" `Quick test_vec_sort_truncate;
          Alcotest.test_case "iter/fold" `Quick test_vec_iter_fold;
          QCheck_alcotest.to_alcotest vec_model_prop;
        ] );
      ( "stats",
        [
          Alcotest.test_case "basic" `Quick test_stats_basic;
          Alcotest.test_case "empty" `Quick test_stats_empty;
          Alcotest.test_case "merge" `Quick test_stats_merge;
          QCheck_alcotest.to_alcotest stats_merge_prop;
        ] );
    ]
