lib/workloads/registry.ml: List Wl_chol Wl_fft Wl_heat Wl_mmul Wl_sort Wl_stra Workload
