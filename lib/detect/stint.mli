(** STINT (Xu et al., ALENEX'22): the serial interval-based race detector.

    Two treaps — last writer and (left-most) reader — updated synchronously
    at the end of each strand with the strand's coalesced intervals.  A
    single reader per location suffices because the computation executes in
    depth-first serial order (Feng–Leiserson); the left-most-reader policy
    plus SP pseudo-transitivity guarantees no race is missed.

    Must be run on the sequential executor; running it under a parallel
    executor is a usage error (its treaps are not synchronized) and is
    rejected at [driver] time when [ctx.n_workers > 1]. *)

(** [obs]: with a live session, each strand's treap processing is emitted
    as a span on the ["stint"] track (span arg = treap-node visits; on a
    virtual clock the visit count is also the duration). *)
val make : ?seed:int -> ?obs:Obs.t -> unit -> Detector.t
