test/test_treap.mli:
