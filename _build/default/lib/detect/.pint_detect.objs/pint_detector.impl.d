lib/detect/pint_detector.ml: Access Ahq Array Aspace Atomic Coalescer Detector Domain Events Hooks Interval Itreap List Mutex Policies Printf Report Sim_exec Sp_order Srec Trace Vec
