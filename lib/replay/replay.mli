(** Deterministic offline replay: drive any detector from a persisted trace.

    Replay reconstructs the run's strand DAG from a {!Tracefile.t} and pushes
    it through the {!Hooks} contract exactly as the sequential executor
    would, without re-executing any workload code: [Sp_order] is rebuilt by
    re-issuing the spawn protocol in canonical depth-first order, fresh
    [Srec]s are filled from the recorded interval sets, and every boundary
    event fires with Algorithm-1 bookkeeping applied.

    Canonicalization: whatever schedule produced the capture, replay
    linearizes it to the sequential (serial-elision) order — continuations
    are never stolen, every sync is trivial, and strand/sp ids are assigned
    in depth-first creation order.  By the paper's Theorem 5 the detectors'
    deduplicated race sets are invariant under this re-scheduling, which is
    what makes traces diffable artifacts: a trace captured under [par] and
    replayed serially must report the same races as a live sequential run of
    the same program (modulo address-layout differences the schedule itself
    introduces — racy workload accesses live on the schedule-independent
    heap prefix).

    Replay is single-threaded and deterministic: replaying the same trace
    twice through the same detector yields identical race sets and
    identical diagnostics.  The one opt-in exception is {!run}'s [pools],
    which moves the detector's {e pipeline} onto real micropool domains —
    the strand feed stays the deterministic serial elision, so race sets
    remain schedule-invariant (Theorem 5) while the consumer side
    genuinely runs cross-domain. *)

exception Corrupt of string

(** Replay summary for one detector. *)
type outcome = {
  detector : string;
  n_strands : int;  (** strands replayed (= trace entries) *)
  races : Report.race list;  (** deduplicated, ordered (see {!Report.races}) *)
  diagnostics : (string * float) list;
}

(** Per-strand observer for DAG extraction (see {!Predict}): called once per
    replayed strand, after its recorded effects have been pushed (so the
    record's interval sets are filled), with the replay's {!Sp_order.t}, the
    strand's {e observed-schedule position} — its index in the file's entry
    order, which, being the capture's finish order, is a linearization of the
    strand DAG — the trace entry, and the replay record carrying the strand's
    {!Sp_order.strand} and id. *)
type strand_observer = sp:Sp_order.t -> pos:int -> Tracefile.entry -> Srec.t -> unit

(** [drive ?aspace ?on_strand trace driver] — low-level: replay the trace
    through a raw hook driver (fires [on_start]/sink/[on_finish] per strand,
    then [on_done]).  Returns the number of strands replayed.  [aspace]
    defaults to a fresh address space; recorded frees are {!Aspace.reserve}d
    before being forwarded so the detectors' deferred-free handling runs as
    live.  [on_strand] observes every strand as it replays.
    @raise Corrupt if the trace's DAG links are inconsistent. *)
val drive : ?aspace:Aspace.t -> ?on_strand:strand_observer -> Tracefile.t -> Hooks.driver -> int

(** [run ?aspace ?wrap ?pools trace det] — replay through a detector
    instance and drain its pipeline.  The detector must be fresh (one
    instance per replay).  [wrap] (default identity) is applied to the
    detector's driver before replay — e.g. {!Obs_hooks.instrument} to
    profile a replay.  [pools] (default: none — the pipeline drains
    synchronously after the feed) runs the detector's stage groups on
    {!Micropool} domains concurrently with the strand feed, e.g.
    [Pint_detector.stage_pools] for a real-domain golden diff; pair it
    with {!Pint_detector.set_backpressure} so the collector waits out
    momentarily-full lanes instead of rejecting.  [on_strand] observes every
    strand as it replays (e.g. {!Predict.observer} to build the strand DAG
    for predictive detection in the same pass as observed detection). *)
val run :
  ?aspace:Aspace.t ->
  ?wrap:(Hooks.driver -> Hooks.driver) ->
  ?pools:Stage.t list list ->
  ?on_strand:strand_observer ->
  Tracefile.t ->
  Detector.t ->
  outcome

(** {2 Streaming sessions} *)

(** Push-driven replay over an incremental PINTRACE byte stream.

    A session owns one fresh detector and one {!Tracefile.Decoder}: callers
    {!Session.feed} socket-sized chunks as they arrive, and the session
    replays every strand whose entry (and whose DFS predecessors) have
    decoded — the same canonical serial-elision walk as {!run}, suspended
    wherever the stream is still short.  Race sets are bit-identical to the
    offline replay of the completed file at the Theorem-5 (kind, prior,
    current) granularity, because replay-side uid assignment follows the
    exact same depth-first order.

    Like {!run}'s [pools] mode, the detector's pipeline stages may run on
    real domains concurrently with the feed: create the session first (the
    detector's run is set up eagerly), then hand its stages to a
    {!Micropool}. *)
module Session : sig
  type t

  (** [create ?aspace ?wrap ?max_pending ?on_strand det] — a session at
      stream start.  [det] must be fresh; [wrap] (default identity) wraps its
      driver, e.g. {!Obs_hooks.instrument}; [max_pending] bounds the decoder
      (see {!Tracefile.Decoder.create}).  [on_strand] observes each strand as
      it replays; its [pos] is the entry's arrival order in the stream — the
      same observed-schedule position offline replay reads off the file. *)
  val create :
    ?aspace:Aspace.t ->
    ?wrap:(Hooks.driver -> Hooks.driver) ->
    ?max_pending:int ->
    ?on_strand:strand_observer ->
    Detector.t ->
    t

  (** [feed t chunk] — decode, replay as far as possible, and return the
      races newly reported since the last call (Theorem-5 keys, so a pair
      is returned once even if re-witnessed).
      @raise Tracefile.Error on a malformed stream.
      @raise Corrupt on inconsistent DAG links.
      @raise Invalid_argument after {!eof} or {!abort}. *)
  val feed : t -> ?pos:int -> ?len:int -> string -> Report.race list

  (** Declare end-of-stream: verifies the decoder consumed a complete,
      CRC-clean file, that every strand was replayed, and fires the
      detector's [on_done] (letting pipeline stages reach [`Done]).
      Returns the final batch of new races.
      @raise Tracefile.Error if the stream was truncated.
      @raise Corrupt if strands were missing, duplicated or unreachable. *)
  val eof : t -> Report.race list

  (** Races newly reported since the last {!feed}/{!eof}/{!poll_races} —
      with the pipeline on real pool domains, detection continues between
      and after feeds, so poll to stream late discoveries (and after the
      final drain, to flush the tail). *)
  val poll_races : t -> Report.race list

  (** Terminate a failed session: fires [on_done] (once) regardless of
      stream state, so shared pool domains driving this detector's stages
      are never wedged on a dead tenant.  Idempotent. *)
  val abort : t -> unit

  (** True after {!eof} or {!abort}. *)
  val finished : t -> bool

  (** Strands replayed so far — compare against the detector's
      ["collected"] diagnostic to estimate pipeline backlog. *)
  val fed_strands : t -> int

  val fed_bytes : t -> int

  (** Trace metadata, once the stream header has decoded. *)
  val meta : t -> (string * string) list option

  (** Final summary; call after {!eof} (and, with real pools, after the
      pool has joined and the detector drained). *)
  val outcome : t -> outcome
end

(** {2 Differential detection} *)

(** Races present in exactly one of two outcomes, compared at the Theorem-5
    granularity (kind, earlier strand, later strand) — witness intervals are
    ignored, since detectors legitimately report different witnesses for the
    same racing pair. *)
type divergence = { left_only : Report.race list; right_only : Report.race list }

val no_divergence : divergence -> bool

(** [diff_races a b] — symmetric difference at (kind, prior, current). *)
val diff_races : Report.race list -> Report.race list -> divergence

(** [differential trace detA detB] — replay the same trace through two fresh
    detectors (each on its own fresh address space) and diff their race
    sets. *)
val differential : Tracefile.t -> Detector.t -> Detector.t -> divergence

val pp_divergence : Format.formatter -> divergence -> unit
