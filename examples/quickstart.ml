(* Quickstart: write a fork-join computation against the Fj + Membuf API,
   run it under PINT on the simulated parallel runtime, and read the race
   report.

     dune exec examples/quickstart.exe *)

(* A parallel dot-product-ish kernel: each spawned task fills its own slice
   of [out] — race-free because slices are disjoint. *)
let fill_slices out n_tasks len () =
  for t = 0 to n_tasks - 1 do
    Fj.spawn (fun () ->
        for i = t * len to ((t + 1) * len) - 1 do
          Membuf.set_f out i (float_of_int i *. 2.0)
        done)
  done;
  Fj.sync ()

(* The buggy variant: every task also bumps a shared counter cell. *)
let fill_slices_buggy out counter n_tasks len () =
  for t = 0 to n_tasks - 1 do
    Fj.spawn (fun () ->
        for i = t * len to ((t + 1) * len) - 1 do
          Membuf.set_f out i (float_of_int i *. 2.0)
        done;
        (* read-modify-write on shared memory from parallel tasks: a race *)
        Membuf.set_f counter 0 (Membuf.get_f counter 0 +. 1.0))
  done;
  Fj.sync ()

let run_with_pint name prog =
  let p = Pint_detector.make () in
  let det = Pint_detector.detector p in
  let config =
    { Sim_exec.default_config with n_workers = 4; stages = Pint_detector.stages p }
  in
  let r = Sim_exec.run ~config ~driver:det.Detector.driver prog in
  let races = Detector.races det in
  Printf.printf "%s: %d strands, %d steals, %d race pair(s)\n" name r.Sim_exec.n_strands
    r.Sim_exec.n_steals (List.length races);
  List.iter (fun race -> Format.printf "  %a@." Report.pp_race race) races

let () =
  let n_tasks = 8 and len = 64 in
  run_with_pint "race-free version" (fun () ->
      let out = Fj.alloc_f (n_tasks * len) in
      fill_slices out n_tasks len ());
  run_with_pint "buggy version" (fun () ->
      let out = Fj.alloc_f (n_tasks * len) in
      let counter = Fj.alloc_f 1 in
      fill_slices_buggy out counter n_tasks len ())
