lib/shadow/access.ml: Domain
