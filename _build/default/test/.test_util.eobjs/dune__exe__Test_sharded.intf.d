test/test_sharded.mli:
