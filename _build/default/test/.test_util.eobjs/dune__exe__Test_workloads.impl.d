test/test_workloads.ml: Alcotest Cracer Detector Float List Nodetect Par_exec Pint_detector Printf Registry Seq_exec Sim_exec Stint Workload
