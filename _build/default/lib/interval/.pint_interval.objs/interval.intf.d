lib/interval/interval.mli: Format
