open Effect
open Effect.Deep

type config = {
  n_workers : int;
  seed : int;
  pools : Stage.t list list;
  obs : Obs.t;
}

type result = {
  elapsed_s : float;
  n_steals : int;
  n_steal_cas_failures : int;
  n_strands : int;
  n_spawns : int;
  n_nontrivial_syncs : int;
  n_domains : int;
  n_parks : int;
}

let default_config = { n_workers = 4; seed = 1; pools = []; obs = Obs.disabled }

(* ---------------------------------------------------------------- fibers *)

type _ Effect.t += E_spawn : (unit -> unit) -> unit Effect.t
type _ Effect.t += E_sync : unit Effect.t

type status = Finished | Spawned of (unit -> unit) * kont | Synced of kont
and kont = (unit, status) continuation

let run_fiber (g : unit -> unit) : status =
  match_with g ()
    {
      retc = (fun () -> Finished);
      exnc = raise;
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | E_spawn f -> Some (fun (k : (a, status) continuation) -> Spawned (f, k))
          | E_sync -> Some (fun (k : (a, status) continuation) -> Synced k)
          | _ -> None);
    }

(* ----------------------------------------------------------- structures *)

type frame = {
  parent : frame option;
  (* current-block fields: touched only by the logical thread executing the
     function body, so unsynchronized *)
  mutable sync_sp : Sp_order.strand option;
  mutable sync_rec : Srec.t option;
  (* join state: touched by returning children concurrently.  This lock
     arbitrates the join protocol only (outstanding counter + suspended
     continuation hand-off) — it is never taken on the steal path, which is
     the lock-free {!Cldeque}. *)
  lock : Mutex.t;
  mutable outstanding : int;
  stolen_in_block : bool Atomic.t;
  mutable suspended : susp option;
}

and susp = { sk : kont; sfiber : fiber_done; srec : Srec.t }

and fiber_done = Root | Child of child_info

and child_info = { cp_frame : frame; cp_sync : Srec.t; cp_item : ditem }

and ditem = { dk : kont; dframe : frame; drec : Srec.t; dfiber : fiber_done }

let new_frame ~parent =
  {
    parent;
    sync_sp = None;
    sync_rec = None;
    lock = Mutex.create ();
    outstanding = 0;
    stolen_in_block = Atomic.make false;
    suspended = None;
  }

type job = J_start of (unit -> unit) | J_resume of kont

type wstate = {
  wid : int;
  mutable job : job option;
  mutable fid : fiber_done;
  mutable frame : frame;
  mutable cur : Srec.t;
  deque : ditem Cldeque.t;
  rng : Rng.t;
  ring : Evring.t; (* this worker domain's obs track ("core<wid>") *)
  mutable parks : int; (* deep-backoff episodes while hunting for work *)
}

(* current worker state for the executing domain *)
let wkey : wstate option ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref None)

let self () =
  match !(Domain.DLS.get wkey) with
  | Some w -> w
  | None -> failwith "Par_exec: not on a worker domain"

(* -------------------------------------------------------------- the run *)

let run ?aspace ~config ~(driver : Hooks.driver) main =
  let aspace = match aspace with Some a -> a | None -> Aspace.create () in
  let nw = config.n_workers in
  if nw < 1 then invalid_arg "Par_exec: need at least one worker";
  if nw > Aspace.max_workers aspace then invalid_arg "Par_exec: more workers than stack regions";
  let sp, root_sp = Sp_order.create () in
  let next_uid = Atomic.make 1 in
  let fresh s = Srec.make ~uid:(Atomic.fetch_and_add next_uid 1) s in
  let root_rec = Srec.make ~uid:0 root_sp in
  (* The deques need an inert [ditem] to fill vacated slots (so the ring
     retains no stale continuation references).  A continuation cannot be
     fabricated, but it can be captured: suspend a throwaway fiber at a
     sync and never resume it. *)
  let dummy_ditem =
    match run_fiber (fun () -> perform E_sync) with
    | Synced k -> { dk = k; dframe = new_frame ~parent:None; drec = root_rec; dfiber = Root }
    | _ -> assert false
  in
  let workers =
    Array.init nw (fun wid ->
        {
          wid;
          job = None;
          fid = Root;
          frame = new_frame ~parent:None;
          cur = root_rec;
          deque = Cldeque.create ~dummy:dummy_ditem ();
          rng = Rng.create (config.seed + (wid * 7919));
          ring = Obs.track config.obs ("core" ^ string_of_int wid);
          parks = 0;
        })
  in
  let ctx = { Hooks.aspace; sp; n_workers = nw; current = (fun ~wid -> workers.(wid).cur) } in
  let hooks = driver ctx in
  let computation_done = Atomic.make false in
  let n_steals = Atomic.make 0 in
  let n_spawns = Atomic.make 0 in
  let n_nontrivial = Atomic.make 0 in

  let finish (w : wstate) kind = hooks.Hooks.on_finish ~wid:w.wid w.cur kind in
  let start (w : wstate) r kind =
    w.cur <- r;
    hooks.Hooks.on_start ~wid:w.wid r kind
  in

  (* engine operations; always re-resolve the executing worker because a
     fiber can migrate between domains across suspension points *)
  let e_sync () =
    let w = self () in
    match w.frame.sync_sp with None -> () | Some _ -> perform E_sync
  in
  let e_spawn f = perform (E_spawn f) in
  let e_scope f =
    let w = self () in
    let fr = new_frame ~parent:(Some w.frame) in
    w.frame <- fr;
    f ();
    e_sync ();
    (self ()).frame <- Option.get fr.parent
  in
  let e_with_frame ~words k =
    let w = self () in
    let push_wid = w.wid in
    Membuf.Frame.with_f_hooked aspace ~worker:push_wid ~words
      ~on_pop:(fun ~base ~len ->
        let w' = self () in
        if w'.wid <> push_wid then
          failwith
            "Par_exec: stack frame popped on a different worker — with_frame bodies must not \
             contain non-trivial syncs";
        w'.cur.Srec.clears <- (base, len) :: w'.cur.Srec.clears)
      k
  in

  let handle_spawn (w : wstate) f k =
    Atomic.incr n_spawns;
    let u = w.cur in
    let fr = w.frame in
    let first = Option.is_none fr.sync_sp in
    let child_sp, cont_sp, sync_sp = Sp_order.spawn sp ~sync_pre:fr.sync_sp u.Srec.sp in
    let cont_rec = fresh cont_sp in
    let sync_rec = if first then fresh sync_sp else Option.get fr.sync_rec in
    fr.sync_sp <- Some sync_sp;
    fr.sync_rec <- Some sync_rec;
    Book.at_spawn ~u ~cont:cont_rec ~sync:sync_rec ~first;
    finish w (Events.F_spawn { cont = cont_rec; sync = sync_rec; first_of_block = first });
    Mutex.lock fr.lock;
    fr.outstanding <- fr.outstanding + 1;
    Mutex.unlock fr.lock;
    let item = { dk = k; dframe = fr; drec = cont_rec; dfiber = w.fid } in
    Cldeque.push_bottom w.deque item;
    let child_rec = fresh child_sp in
    w.fid <- Child { cp_frame = fr; cp_sync = sync_rec; cp_item = item };
    w.frame <- new_frame ~parent:(Some fr);
    start w child_rec Events.S_child;
    w.job <-
      Some
        (J_start
           (fun () ->
             f ();
             e_sync ()))
  in
  let handle_sync (w : wstate) k =
    let fr = w.frame in
    let sync_rec = Option.get fr.sync_rec in
    let trivial = not (Atomic.get fr.stolen_in_block) in
    if not trivial then begin
      Atomic.incr n_nontrivial;
      Book.at_sync_nontrivial ~u:w.cur ~sync:sync_rec
    end;
    finish w (Events.F_sync { trivial; sync = sync_rec });
    fr.sync_sp <- None;
    fr.sync_rec <- None;
    Atomic.set fr.stolen_in_block false;
    if trivial then begin
      start w sync_rec (Events.S_after_sync { trivial = true });
      w.job <- Some (J_resume k)
    end
    else begin
      Mutex.lock fr.lock;
      if fr.outstanding = 0 then begin
        Mutex.unlock fr.lock;
        start w sync_rec (Events.S_after_sync { trivial = false });
        w.job <- Some (J_resume k)
      end
      else begin
        fr.suspended <- Some { sk = k; sfiber = w.fid; srec = sync_rec };
        Mutex.unlock fr.lock
      end
    end
  in
  let handle_fiber_end (w : wstate) =
    match w.fid with
    | Root ->
        finish w Events.F_root;
        Atomic.set computation_done true
    | Child ci -> begin
        let fr = ci.cp_frame in
        match Cldeque.pop_bottom w.deque with
        | Some item when item == ci.cp_item ->
            Mutex.lock fr.lock;
            fr.outstanding <- fr.outstanding - 1;
            Mutex.unlock fr.lock;
            finish w (Events.F_return { cont_stolen = false; parent_sync = Some ci.cp_sync });
            w.fid <- item.dfiber;
            w.frame <- item.dframe;
            start w item.drec (Events.S_cont { stolen = false });
            w.job <- Some (J_resume item.dk)
        | Some _ -> failwith "Par_exec: deque bottom is not this spawn's continuation"
        | None -> begin
            Book.at_return_cont_stolen ~u:w.cur ~parent_sync:ci.cp_sync;
            finish w (Events.F_return { cont_stolen = true; parent_sync = Some ci.cp_sync });
            Mutex.lock fr.lock;
            fr.outstanding <- fr.outstanding - 1;
            let resume =
              if fr.outstanding = 0 then begin
                let s = fr.suspended in
                fr.suspended <- None;
                s
              end
              else None
            in
            Mutex.unlock fr.lock;
            match resume with
            | Some susp ->
                w.fid <- susp.sfiber;
                w.frame <- fr;
                start w susp.srec (Events.S_after_sync { trivial = false });
                w.job <- Some (J_resume susp.sk)
            | None -> ()
          end
      end
  in
  let handle_status w = function
    | Finished -> handle_fiber_end w
    | Spawned (f, k) -> handle_spawn w f k
    | Synced k -> handle_sync w k
  in

  (* One steal attempt against a random victim; [true] iff a continuation
     was acquired.  A lost CAS (thief race) and an empty victim both report
     [false] — the caller's backoff ladder decides how hard to keep
     trying. *)
  let attempt_steal (w : wstate) =
    if nw <= 1 then false
    else begin
      let v = Rng.int w.rng (nw - 1) in
      let victim = workers.(if v >= w.wid then v + 1 else v) in
      match Cldeque.steal_top victim.deque with
      | Some item ->
          Atomic.incr n_steals;
          Evring.emit w.ring ~kind:Ev.steal ~arg:victim.wid;
          Atomic.set item.dframe.stolen_in_block true;
          w.fid <- item.dfiber;
          w.frame <- item.dframe;
          start w item.drec (Events.S_cont { stolen = true });
          w.job <- Some (J_resume item.dk);
          true
      | None -> false
    end
  in

  let worker_loop (w : wstate) =
    Domain.DLS.get wkey := Some w;
    Fj.install
      {
        Fj.e_spawn;
        e_sync;
        e_scope;
        e_with_frame;
        e_wid = (fun () -> w.wid);
        e_space = aspace;
      };
    Access.install (Hooks.with_counting (fun () -> w.cur) (hooks.Hooks.sink ~wid:w.wid));
    let idle_rounds = ref 0 in
    let rec loop () =
      match w.job with
      | Some j ->
          w.job <- None;
          idle_rounds := 0;
          let st = match j with J_start g -> run_fiber g | J_resume k -> continue k () in
          handle_status w st;
          loop ()
      | None ->
          if Atomic.get computation_done then ()
          else begin
            if attempt_steal w then idle_rounds := 0
            else begin
              incr idle_rounds;
              if !idle_rounds = Backoff.yield_round then begin
                w.parks <- w.parks + 1;
                Evring.emit w.ring ~kind:Ev.park ~arg:w.wid
              end;
              Backoff.relax !idle_rounds
            end;
            loop ()
          end
    in
    loop ();
    Access.uninstall ();
    Fj.uninstall ();
    Domain.DLS.get wkey := None
  in

  let t0 = Unix.gettimeofday () in
  workers.(0).job <-
    Some
      (J_start
         (fun () ->
           main ();
           e_sync ()));
  hooks.Hooks.on_start ~wid:0 root_rec Events.S_root;
  (* one pinned pool domain per stage group — for PINT, one per shard's
     {writer, lreader, rreader} triple — instead of the previous one
     domain per stage (3·shards domains), so [shards] means real cores *)
  let pool_rings =
    Array.of_list
      (List.mapi (fun i _ -> Obs.track config.obs ("pool" ^ string_of_int i)) config.pools)
  in
  let pools = Micropool.spawn ~rings:pool_rings config.pools in
  let core_domains =
    Array.to_list
      (Array.map (fun w -> Domain.spawn (fun () -> worker_loop w)) (Array.sub workers 1 (nw - 1)))
  in
  worker_loop workers.(0);
  List.iter Domain.join core_domains;
  hooks.Hooks.on_done ();
  Micropool.join pools;
  let elapsed_s = Unix.gettimeofday () -. t0 in
  Array.iter (fun w -> assert (Cldeque.is_empty w.deque)) workers;
  {
    elapsed_s;
    n_steals = Atomic.get n_steals;
    n_steal_cas_failures =
      Array.fold_left (fun acc w -> acc + Cldeque.steal_cas_failures w.deque) 0 workers;
    n_strands = Atomic.get next_uid;
    n_spawns = Atomic.get n_spawns;
    n_nontrivial_syncs = Atomic.get n_nontrivial;
    n_domains = nw + Micropool.n_pools pools;
    n_parks = Micropool.parks pools + Array.fold_left (fun acc w -> acc + w.parks) 0 workers;
  }
