lib/exec/sim_exec.mli: Aspace Events Hooks Srec
