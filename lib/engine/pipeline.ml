type t = { mutable stages : Stage.t list }

let create () = { stages = [] }
let of_stages stages = { stages }
let register t s = t.stages <- t.stages @ [ s ]
let stages t = t.stages

let drive t =
  match t.stages with
  | [] -> ()
  | stages ->
      let stages = Array.of_list stages in
      let n = Array.length stages in
      let finished = Array.make n false in
      let remaining = ref n in
      let idle_rounds = ref 0 in
      while !remaining > 0 do
        let progressed = ref false in
        Array.iteri
          (fun i s ->
            if not finished.(i) then begin
              let st = Stage.exec s in
              if Step.is_done st then begin
                finished.(i) <- true;
                decr remaining
              end
              else if Step.progressed st then progressed := true
            end)
          stages;
        if !remaining > 0 then
          if !progressed then idle_rounds := 0
          else begin
            incr idle_rounds;
            Backoff.relax !idle_rounds
          end
      done

let diagnostics t = List.concat_map Stage.diagnostics t.stages
