(** Algorithm 1's record bookkeeping, shared by every executor.

    These are the [u.child] / [pred] manipulations a core worker performs at
    strand boundaries so that the writer treap worker can later check strand
    readiness (Algorithm 2).  Kept in one place so the sequential, simulated
    and real-parallel executors cannot drift apart. *)

(** At a spawn: [u] is the spawn node, [cont]/[sync] the records created for
    the continuation and (if [first] spawn of the block) the sync node. *)
val at_spawn : u:Srec.t -> cont:Srec.t -> sync:Srec.t -> first:bool -> unit

(** At a spawned function's return whose spawn's continuation was stolen:
    register the return node as a counted predecessor of the block's sync. *)
val at_return_cont_stolen : u:Srec.t -> parent_sync:Srec.t -> unit

(** At a non-trivial sync: the strand leading into the sync is a counted
    predecessor of the sync node. *)
val at_sync_nontrivial : u:Srec.t -> sync:Srec.t -> unit
