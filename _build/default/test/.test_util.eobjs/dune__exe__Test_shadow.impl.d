test/test_shadow.ml: Access Alcotest Aspace Domain Fun List Membuf Printf
