lib/workloads/wl_fft.ml: Access Fj Float Membuf Workload
