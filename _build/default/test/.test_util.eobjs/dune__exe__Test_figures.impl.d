test/test_figures.ml: Alcotest Figures Float Lazy List Printf
