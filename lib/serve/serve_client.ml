type result = {
  session : int;
  races : (Report.kind * int * int * Interval.t) list;
  predicted : (Report.kind * int * int * Interval.t) list;
  n_strands : int;
  n_races : int;
  stats : (string * string) list;
}

let default_chunk = 65536

(* Blocking single-session client: handshake, stream the trace image in
   transport chunks, then read race batches until the final summary.  The
   server never blocks on us (its writes queue), so reading only after the
   full upload cannot deadlock: the upload drains because the server keeps
   reading, and race frames wait in its out queue. *)

let read_frame fd frames =
  let buf = Bytes.create 65536 in
  let rec go () =
    match Serve_proto.Frames.next frames with
    | Some payload -> Some (Serve_proto.decode_server payload)
    | None -> (
        match Unix.read fd buf 0 (Bytes.length buf) with
        | 0 -> None
        | n ->
            Serve_proto.Frames.feed frames ~len:n (Bytes.unsafe_to_string buf);
            go ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ())
  in
  go ()

let send_all fd s =
  let n = String.length s in
  let rec go off =
    if off < n then
      match Unix.write_substring fd s off (n - off) with
      | w -> go (off + w)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0

let run ?(chunk = default_chunk) ?(shards = 0) ?(predict = 0) ~addr trace_bytes =
  let fd = Unix.socket (Unix.domain_of_sockaddr addr) Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect fd addr;
      let frames = Serve_proto.Frames.create () in
      send_all fd
        (Serve_proto.encode_client
           (Serve_proto.Hello { version = Serve_proto.protocol_version; shards; predict }));
      match read_frame fd frames with
      | None -> Error "connection closed during handshake"
      | Some (Serve_proto.Reject msg) -> Error msg
      | Some (Serve_proto.Accepted { session }) -> (
          let n = String.length trace_bytes in
          let off = ref 0 in
          while !off < n do
            let len = min chunk (n - !off) in
            send_all fd
              (Serve_proto.encode_client (Serve_proto.Data (String.sub trace_bytes !off len)));
            off := !off + len
          done;
          send_all fd (Serve_proto.encode_client Serve_proto.End);
          let races = ref [] in
          let rec collect () =
            match read_frame fd frames with
            | None -> Error "connection closed before summary"
            | Some (Serve_proto.Races rs) ->
                races := List.rev_append rs !races;
                collect ()
            | Some (Serve_proto.Summary { n_strands; n_races; stats; predicted }) ->
                Ok { session; races = List.rev !races; predicted; n_strands; n_races; stats }
            | Some (Serve_proto.Reject msg) -> Error msg
            | Some (Serve_proto.Accepted _) -> Error "unexpected duplicate accept"
          in
          collect ())
      | Some _ -> Error "unexpected first frame")

(* Theorem-5 signature of a served race list, comparable with the offline
   replay's (see test/ and the CI serve smoke job). *)
let signature races =
  List.sort_uniq compare (List.map (fun (k, p, c, _) -> (k, p, c)) races)
