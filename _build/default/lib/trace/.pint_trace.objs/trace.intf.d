lib/trace/trace.mli: Srec
