
(* Nodes carry the interval endpoints as immediate [int] fields rather than
   a boxed [Interval.t]: a descent reads [lo]/[hi] straight out of the node
   block and touches no heap beyond the spine itself. *)
type 'o node =
  | Leaf
  | Node of { left : 'o node; right : 'o node; lo : int; hi : int; owner : 'o; prio : int }

(* Reusable slow-path buffer: parallel arrays instead of an entry record or
   tuple list, so pushing a piece allocates nothing once the arrays have
   grown to the working-set size.  Two live per treap ([ovl] for detached
   overlap entries, [pieces] for their replacement) — treaps are
   single-owner by design (paper §III: each treap worker owns exactly one
   treap, nothing here is thread-safe), so the buffers can never be in use
   by two operations at once. *)
type 'o scratch = {
  mutable s_lo : int array;
  mutable s_hi : int array;
  mutable s_own : 'o array;
  mutable s_len : int;
}

type 'o t = {
  mutable root : 'o node;
  mutable size : int;
  mutable visits : int;
  mutable covered : int;
  mutable fastpath_hits : int;
  mutable slowpath_hits : int;
  mutable scratch_reuse : int;
  ovl : 'o scratch;
  pieces : 'o scratch;
  rng : Rng.t;
  owner_eq : 'o -> 'o -> bool;
}

let scratch () = { s_lo = [||]; s_hi = [||]; s_own = [||]; s_len = 0 }

let create ~seed ~owner_eq () =
  {
    root = Leaf;
    size = 0;
    visits = 0;
    covered = 0;
    fastpath_hits = 0;
    slowpath_hits = 0;
    scratch_reuse = 0;
    ovl = scratch ();
    pieces = scratch ();
    rng = Rng.create seed;
    owner_eq;
  }

let size t = t.size
let visits t = t.visits
let covered t = t.covered
let fastpath_hits t = t.fastpath_hits
let slowpath_hits t = t.slowpath_hits
let scratch_reuse t = t.scratch_reuse

let visit t = t.visits <- t.visits + 1

(* ------------------------------------------------------- scratch buffers *)

let s_clear s = s.s_len <- 0

(* Growth needs no dummy element: the pushed [own] seeds the new array. *)
let s_push s lo hi own =
  let cap = Array.length s.s_lo in
  if s.s_len = cap then begin
    let ncap = if cap = 0 then 8 else 2 * cap in
    let nlo = Array.make ncap 0 and nhi = Array.make ncap 0 and nown = Array.make ncap own in
    Array.blit s.s_lo 0 nlo 0 s.s_len;
    Array.blit s.s_hi 0 nhi 0 s.s_len;
    Array.blit s.s_own 0 nown 0 s.s_len;
    s.s_lo <- nlo;
    s.s_hi <- nhi;
    s.s_own <- nown
  end;
  s.s_lo.(s.s_len) <- lo;
  s.s_hi.(s.s_len) <- hi;
  s.s_own.(s.s_len) <- own;
  s.s_len <- s.s_len + 1

(* Pieces are generated in address order and never overlap, so keeping them
   coalesced only needs an adjacency check against the top entry. *)
let s_push_coalesce t s lo hi own =
  if s.s_len > 0 && t.owner_eq s.s_own.(s.s_len - 1) own && s.s_hi.(s.s_len - 1) + 1 = lo then
    s.s_hi.(s.s_len - 1) <- hi
  else s_push s lo hi own

(* ---------------------------------------------------------- tree plumbing *)

(* [split t k n] partitions by low endpoint into (lo < k, lo >= k). *)
let rec split t k n =
  match n with
  | Leaf -> (Leaf, Leaf)
  | Node nd ->
      visit t;
      if nd.lo < k then begin
        let a, b = split t k nd.right in
        (Node { nd with right = a }, b)
      end
      else begin
        let a, b = split t k nd.left in
        (a, Node { nd with left = b })
      end

(* [join t a b] assumes every key in [a] is smaller than every key in [b]. *)
let rec join t a b =
  match (a, b) with
  | Leaf, x | x, Leaf -> x
  | Node na, Node nb ->
      visit t;
      if na.prio > nb.prio then Node { na with right = join t na.right b }
      else Node { nb with left = join t a nb.left }

let mk_node t lo hi owner = Node { left = Leaf; right = Leaf; lo; hi; owner; prio = Rng.next t.rng }

exception Overlap

(* [split_probe t qlo qhi k n] is [split t k n] fused with an intersection
   probe against [qlo, qhi]: it raises [Overlap] (before allocating any path
   copies) the moment a visited node intersects the probe range.  Reaching
   the leaf proves the whole treap is clear of [qlo, qhi]: stored intervals
   are disjoint, so at any non-intersecting node the subtree we skip lies
   entirely outside the probe range (went left => skipped keys all exceed
   [qhi]; went right => skipped intervals all end before the node, hence
   before [qlo]).  The probe and the insert-position split are therefore the
   same single descent. *)
let[@pint.hot] rec split_probe t qlo qhi k n =
  match n with
  | Leaf -> (Leaf, Leaf)
  | Node nd ->
      visit t;
      if nd.hi >= qlo && nd.lo <= qhi then raise_notrace Overlap;
      if nd.lo < k then begin
        let a, b = split_probe t qlo qhi k nd.right in
        (Node { nd with right = a }, b)
      end
      else begin
        let a, b = split_probe t qlo qhi k nd.left in
        (a, Node { nd with left = b })
      end

(* Three-way join: every key in [a] < [lo, hi] < every key in [b].  Descends
   from the higher-priority side until the fresh node's priority dominates,
   then roots it there with [a]/[b] remainders as children — the fresh node
   sinks straight to its heap position instead of two spine-walking
   two-way joins. *)
(* The descent is a toplevel function (not a closure over [prio]/[t]) so
   the fast path allocates nothing beyond the path copies themselves —
   pint_lint rule R1 checks this. *)
let[@pint.hot] rec join_mid_desc t prio lo hi owner a b =
  match (a, b) with
  | Node na, _ when na.prio > prio && (match b with Node nb -> na.prio > nb.prio | Leaf -> true)
    ->
      visit t;
      Node { na with right = join_mid_desc t prio lo hi owner na.right b }
  | _, Node nb when nb.prio > prio ->
      visit t;
      Node { nb with left = join_mid_desc t prio lo hi owner a nb.left }
  | _ ->
      visit t;
      Node { left = a; right = b; lo; hi; owner; prio }

let[@pint.hot] join_mid t a b lo hi owner = join_mid_desc t (Rng.next t.rng) lo hi owner a b

(* Does any stored interval intersect [qlo, qhi]?  Stored intervals are
   disjoint, so low and high endpoints induce the same order and a single
   find-style descent decides. *)
let rec intersects t qlo qhi n =
  match n with
  | Leaf -> false
  | Node nd ->
      visit t;
      if nd.lo > qhi then intersects t qlo qhi nd.left
      else if nd.hi < qlo then intersects t qlo qhi nd.right
      else true

(* Smallest low endpoint among nodes whose interval reaches [lo0] or beyond.
   Stored intervals are disjoint, so both endpoints increase with the key and
   a single descent suffices. *)
let rec first_overlap_lo t lo0 n =
  match n with
  | Leaf -> None
  | Node nd ->
      visit t;
      if nd.hi >= lo0 then begin
        match first_overlap_lo t lo0 nd.left with
        | Some _ as found -> found
        | None -> Some nd.lo
      end
      else first_overlap_lo t lo0 nd.right

(* Read-only boundary probes: return the extreme node itself (no removal,
   no path copying); [remove_max]/[remove_min] rebuild only when a boundary
   merge actually happens. *)
let rec max_node t n =
  match n with
  | Leaf -> Leaf
  | Node nd -> ( visit t; match nd.right with Leaf -> n | _ -> max_node t nd.right)

let rec min_node t n =
  match n with
  | Leaf -> Leaf
  | Node nd -> ( visit t; match nd.left with Leaf -> n | _ -> min_node t nd.left)

let rec remove_max t n =
  match n with
  | Leaf -> Leaf
  | Node nd -> (
      visit t;
      match nd.right with Leaf -> nd.left | _ -> Node { nd with right = remove_max t nd.right })

let rec remove_min t n =
  match n with
  | Leaf -> Leaf
  | Node nd -> (
      visit t;
      match nd.left with Leaf -> nd.right | _ -> Node { nd with left = remove_min t nd.left })

let rec in_order n acc =
  match n with
  | Leaf -> acc
  | Node nd ->
      in_order nd.left (({ Interval.lo = nd.lo; hi = nd.hi }, nd.owner) :: in_order nd.right acc)

let rec fill_ovl t n =
  match n with
  | Leaf -> ()
  | Node nd ->
      fill_ovl t nd.left;
      s_push t.ovl nd.lo nd.hi nd.owner;
      fill_ovl t nd.right

(* ---------------------------------------------------------- fast paths *)

(* Insert an interval the caller has just proven (via [split_probe]) to
   overlap nothing stored and to touch no same-owner neighbour: the probe
   descent already produced the split halves, so all that is left is the
   three-way join — no overlap bookkeeping, no extra descent. *)
let insert_disjoint t a b lo hi owner =
  t.fastpath_hits <- t.fastpath_hits + 1;
  t.root <- join_mid t a b lo hi owner;
  t.size <- t.size + 1;
  t.covered <- t.covered + (hi - lo + 1)

let note_slow t =
  t.slowpath_hits <- t.slowpath_hits + 1;
  if Array.length t.pieces.s_lo > 0 then t.scratch_reuse <- t.scratch_reuse + 1

(* ---------------------------------------------------------- slow path *)

(* Detach all stored intervals overlapping [lo, hi] into [t.ovl] (in address
   order); returns the trees of everything strictly left / strictly right. *)
let slow_extract t lo hi =
  let a, right = split t (hi + 1) t.root in
  s_clear t.ovl;
  match first_overlap_lo t lo a with
  | None -> (a, right)
  | Some flo ->
      let left, mid = split t flo a in
      fill_ovl t mid;
      (left, right)

(* Replace the overlap region between [left] and [right]: the detached
   entries sit in [t.ovl], their replacement (sorted, already internally
   coalesced) in [t.pieces].  Merges with the boundary neighbours when
   owners match and intervals touch.  Maintains the size/covered ledgers. *)
let commit t left right =
  let ovl = t.ovl and ps = t.pieces in
  let removed_w = ref 0 in
  for i = 0 to ovl.s_len - 1 do
    removed_w := !removed_w + (ovl.s_hi.(i) - ovl.s_lo.(i) + 1)
  done;
  let removed_n = ref ovl.s_len in
  let left = ref left and right = ref right in
  if ps.s_len > 0 then begin
    (match max_node t !left with
    | Node m when t.owner_eq m.owner ps.s_own.(0) && m.hi + 1 = ps.s_lo.(0) ->
        ps.s_lo.(0) <- m.lo;
        left := remove_max t !left;
        removed_w := !removed_w + (m.hi - m.lo + 1);
        incr removed_n
    | _ -> ());
    let lst = ps.s_len - 1 in
    match min_node t !right with
    | Node m when t.owner_eq m.owner ps.s_own.(lst) && ps.s_hi.(lst) + 1 = m.lo ->
        ps.s_hi.(lst) <- m.hi;
        right := remove_min t !right;
        removed_w := !removed_w + (m.hi - m.lo + 1);
        incr removed_n
    | _ -> ()
  end;
  let added_w = ref 0 and middle = ref Leaf in
  for i = 0 to ps.s_len - 1 do
    added_w := !added_w + (ps.s_hi.(i) - ps.s_lo.(i) + 1);
    middle := join t !middle (mk_node t ps.s_lo.(i) ps.s_hi.(i) ps.s_own.(i))
  done;
  t.root <- join t (join t !left !middle) !right;
  t.size <- t.size + ps.s_len - !removed_n;
  t.covered <- t.covered + !added_w - !removed_w

(* ---------------------------------------------------------- operations *)

let insert_replace t iv owner =
  let lo = iv.Interval.lo and hi = iv.Interval.hi in
  (* The probe extends one address each way: a hit on [lo-1] or [hi+1] means
     a neighbour touches the new interval and may have to coalesce with it,
     which only the general path handles. *)
  match split_probe t (lo - 1) (hi + 1) lo t.root with
  | a, b -> insert_disjoint t a b lo hi owner
  | exception Overlap ->
    note_slow t;
    let left, right = slow_extract t lo hi in
    let ovl = t.ovl and ps = t.pieces in
    s_clear ps;
    if ovl.s_len > 0 && ovl.s_lo.(0) < lo then s_push ps ovl.s_lo.(0) (lo - 1) ovl.s_own.(0);
    s_push_coalesce t ps lo hi owner;
    if ovl.s_len > 0 && ovl.s_hi.(ovl.s_len - 1) > hi then
      s_push_coalesce t ps (hi + 1) ovl.s_hi.(ovl.s_len - 1) ovl.s_own.(ovl.s_len - 1);
    commit t left right

let insert_merge t iv owner ~keep =
  let lo = iv.Interval.lo and hi = iv.Interval.hi in
  (* On the no-overlap path the whole range is one uncovered gap: it goes to
     the new strand, same as insert_replace. *)
  match split_probe t (lo - 1) (hi + 1) lo t.root with
  | a, b -> insert_disjoint t a b lo hi owner
  | exception Overlap ->
    note_slow t;
    let left, right = slow_extract t lo hi in
    let ovl = t.ovl and ps = t.pieces in
    s_clear ps;
    if ovl.s_len > 0 && ovl.s_lo.(0) < lo then s_push ps ovl.s_lo.(0) (lo - 1) ovl.s_own.(0);
    let cur = ref lo in
    for k = 0 to ovl.s_len - 1 do
      let clo = max ovl.s_lo.(k) lo and chi = min ovl.s_hi.(k) hi in
      if !cur < clo then s_push_coalesce t ps !cur (clo - 1) owner;
      let incumbent = ovl.s_own.(k) in
      let seg_owner = match keep ~incumbent with `Keep -> incumbent | `Replace -> owner in
      s_push_coalesce t ps clo chi seg_owner;
      cur := chi + 1
    done;
    if !cur <= hi then s_push_coalesce t ps !cur hi owner;
    if ovl.s_len > 0 && ovl.s_hi.(ovl.s_len - 1) > hi then
      s_push_coalesce t ps (hi + 1) ovl.s_hi.(ovl.s_len - 1) ovl.s_own.(ovl.s_len - 1);
    commit t left right

let clear_range t iv =
  let lo = iv.Interval.lo and hi = iv.Interval.hi in
  (* No extension here: an interval merely touching the cleared range is
     left alone, so "nothing stored intersects" means "nothing to do". *)
  if not (intersects t lo hi t.root) then t.fastpath_hits <- t.fastpath_hits + 1
  else begin
    note_slow t;
    let left, right = slow_extract t lo hi in
    let ovl = t.ovl and ps = t.pieces in
    s_clear ps;
    if ovl.s_len > 0 && ovl.s_lo.(0) < lo then s_push ps ovl.s_lo.(0) (lo - 1) ovl.s_own.(0);
    if ovl.s_len > 0 && ovl.s_hi.(ovl.s_len - 1) > hi then
      s_push ps (hi + 1) ovl.s_hi.(ovl.s_len - 1) ovl.s_own.(ovl.s_len - 1);
    commit t left right
  end

let query t iv ~f =
  let qlo = iv.Interval.lo and qhi = iv.Interval.hi in
  let rec go n =
    match n with
    | Leaf -> ()
    | Node nd ->
        visit t;
        if nd.lo > qhi then go nd.left
        else if nd.hi < qlo then go nd.right
        else begin
          go nd.left;
          f { Interval.lo = nd.lo; hi = nd.hi } nd.owner;
          go nd.right
        end
  in
  go t.root

let find t addr =
  let rec go n =
    match n with
    | Leaf -> None
    | Node nd ->
        visit t;
        if addr < nd.lo then go nd.left
        else if addr > nd.hi then go nd.right
        else Some ({ Interval.lo = nd.lo; hi = nd.hi }, nd.owner)
  in
  go t.root

let iter t ~f = List.iter (fun (iv, o) -> f iv o) (in_order t.root [])
let to_list t = in_order t.root []

let reset t =
  t.root <- Leaf;
  t.size <- 0;
  t.covered <- 0;
  s_clear t.ovl;
  s_clear t.pieces

let validate t =
  let fail fmt = Printf.ksprintf failwith fmt in
  let entries = to_list t in
  let n = List.length entries in
  if n <> t.size then fail "size ledger %d but %d entries" t.size n;
  let w = List.fold_left (fun w (iv, _) -> w + Interval.width iv) 0 entries in
  if w <> t.covered then fail "covered ledger %d but %d covered" t.covered w;
  let rec check_pairs = function
    | (iv1, o1) :: ((iv2, o2) :: _ as rest) ->
        if iv2.Interval.lo <= iv1.Interval.hi then
          fail "overlap: %s vs %s" (Interval.to_string iv1) (Interval.to_string iv2);
        if t.owner_eq o1 o2 && iv1.Interval.hi + 1 = iv2.Interval.lo then
          fail "uncoalesced same-owner neighbours at %d" iv2.Interval.lo;
        check_pairs rest
    | _ -> ()
  in
  check_pairs entries;
  (* Structural BST check with propagated bounds: the fast path inserts via
     split/join while the slow path rebuilds through commit, and both must
     land keys in the same positions for later descents to find them. *)
  let rec check_bst lo_b hi_b = function
    | Leaf -> ()
    | Node nd ->
        if nd.hi < nd.lo then fail "malformed interval [%d,%d]" nd.lo nd.hi;
        (match lo_b with
        | Some b when nd.lo <= b -> fail "BST violation (left bound) at %d" nd.lo
        | _ -> ());
        (match hi_b with
        | Some b when nd.lo >= b -> fail "BST violation (right bound) at %d" nd.lo
        | _ -> ());
        check_bst lo_b (Some nd.lo) nd.left;
        check_bst (Some nd.lo) hi_b nd.right
  in
  check_bst None None t.root;
  let rec check_heap = function
    | Leaf -> ()
    | Node nd ->
        (match nd.left with
        | Node l when l.prio > nd.prio -> fail "heap violation (left) at %d" nd.lo
        | _ -> ());
        (match nd.right with
        | Node r when r.prio > nd.prio -> fail "heap violation (right) at %d" nd.lo
        | _ -> ());
        check_heap nd.left;
        check_heap nd.right
  in
  check_heap t.root
