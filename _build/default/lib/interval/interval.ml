type t = { lo : int; hi : int }

let make lo hi =
  if hi < lo then invalid_arg "Interval.make: hi < lo";
  { lo; hi }

let point a = { lo = a; hi = a }
let width i = i.hi - i.lo + 1
let contains i a = i.lo <= a && a <= i.hi
let overlaps a b = a.lo <= b.hi && b.lo <= a.hi
let adjacent_or_overlapping a b = a.lo <= b.hi + 1 && b.lo <= a.hi + 1

let hull a b =
  if not (adjacent_or_overlapping a b) then invalid_arg "Interval.hull: disjoint";
  { lo = min a.lo b.lo; hi = max a.hi b.hi }

let inter a b =
  if not (overlaps a b) then invalid_arg "Interval.inter: disjoint";
  { lo = max a.lo b.lo; hi = min a.hi b.hi }

let compare a b =
  let c = Int.compare a.lo b.lo in
  if c <> 0 then c else Int.compare a.hi b.hi

let equal a b = a.lo = b.lo && a.hi = b.hi
let pp fmt i = Format.fprintf fmt "[%d,%d]" i.lo i.hi
let to_string i = Format.asprintf "%a" pp i
