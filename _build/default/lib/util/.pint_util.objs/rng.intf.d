lib/util/rng.mli:
