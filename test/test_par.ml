(* Real multi-domain executor tests.  The container may have a single
   physical core; domains still interleave preemptively, so these tests
   exercise genuine cross-domain synchronization (deque stealing, suspended
   syncs, SPSC traces, the seqlock in the order-maintenance lists). *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let config ?(n_workers = 4) ?(pools = []) () = { Par_exec.default_config with n_workers; pools }

let null_driver _ctx = Hooks.null_hooks

let fib_prog n out () =
  (* exponential spawn tree computing fib into per-call heap cells *)
  let rec fib n (dst : Membuf.f) di =
    if n < 2 then Membuf.set_f dst di (float_of_int n)
    else begin
      let tmp = Fj.alloc_f 2 in
      Fj.scope (fun () ->
          Fj.spawn (fun () -> fib (n - 1) tmp 0);
          fib (n - 2) tmp 1;
          Fj.sync ());
      Membuf.set_f dst di (Membuf.peek_f tmp 0 +. Membuf.peek_f tmp 1);
      Fj.free_f tmp
    end
  in
  let res = Fj.alloc_f 1 in
  fib n res 0;
  out := Membuf.peek_f res 0

let rec fib_ref n = if n < 2 then n else fib_ref (n - 1) + fib_ref (n - 2)

let test_fib_correct () =
  let out = ref 0. in
  let r = Par_exec.run ~config:(config ~n_workers:4 ()) ~driver:null_driver (fib_prog 15 out) in
  Alcotest.(check (float 0.)) "fib value" (float_of_int (fib_ref 15)) !out;
  check_bool "spawns happened" true (r.Par_exec.n_spawns > 100)

let test_single_worker () =
  let out = ref 0. in
  let r = Par_exec.run ~config:(config ~n_workers:1 ()) ~driver:null_driver (fib_prog 12 out) in
  Alcotest.(check (float 0.)) "fib value" (float_of_int (fib_ref 12)) !out;
  check_int "no steals on 1 worker" 0 r.Par_exec.n_steals

let test_steals_on_multiple_domains () =
  (* repeat a few times: steals are nondeterministic but overwhelmingly
     likely on an exponential tree *)
  let total_steals = ref 0 in
  for _ = 1 to 3 do
    let out = ref 0. in
    let r = Par_exec.run ~config:(config ~n_workers:4 ()) ~driver:null_driver (fib_prog 16 out) in
    total_steals := !total_steals + r.Par_exec.n_steals
  done;
  check_bool "steals observed across runs" true (!total_steals > 0)

let test_cracer_on_domains_race () =
  let d = Cracer.make () in
  let _ =
    Par_exec.run ~config:(config ~n_workers:4 ()) ~driver:d.Detector.driver (fun () ->
        let b = Fj.alloc_f 8 in
        Fj.spawn (fun () -> Membuf.set_f b 3 1.0);
        Fj.spawn (fun () -> Membuf.set_f b 3 2.0);
        Fj.sync ())
  in
  check_bool "cracer finds race on domains" true (Detector.races d <> [])

let test_cracer_on_domains_clean () =
  let d = Cracer.make () in
  let out = ref 0. in
  let _ = Par_exec.run ~config:(config ~n_workers:4 ()) ~driver:d.Detector.driver (fib_prog 13 out) in
  Alcotest.(check (float 0.)) "fib value" (float_of_int (fib_ref 13)) !out;
  check_int "race free" 0 (List.length (Detector.races d))

let test_pint_on_domains_race () =
  let p = Pint_detector.make () in
  let d = Pint_detector.detector p in
  let _ =
    Par_exec.run
      ~config:(config ~n_workers:4 ~pools:(Pint_detector.stage_pools p) ())
      ~driver:d.Detector.driver
      (fun () ->
        let b = Fj.alloc_f 8 in
        Fj.spawn (fun () -> Membuf.set_f b 3 1.0);
        Fj.spawn (fun () -> Membuf.set_f b 3 2.0);
        Fj.sync ())
  in
  check_bool "pint finds race on domains" true (Detector.races d <> [])

let test_pint_on_domains_clean () =
  let p = Pint_detector.make () in
  let d = Pint_detector.detector p in
  let out = ref 0. in
  let r =
    Par_exec.run
      ~config:(config ~n_workers:4 ~pools:(Pint_detector.stage_pools p) ())
      ~driver:d.Detector.driver (fib_prog 13 out)
  in
  Alcotest.(check (float 0.)) "fib value" (float_of_int (fib_ref 13)) !out;
  check_int "race free" 0 (List.length (Detector.races d));
  (* every strand fully pipelined across the three real treap-worker domains *)
  let diag = d.Detector.diagnostics () in
  let get k = int_of_float (List.assoc k diag) in
  check_int "writer strands" r.Par_exec.n_strands (get "writer_strands");
  check_int "lreader strands" r.Par_exec.n_strands (get "l_strands");
  check_int "rreader strands" r.Par_exec.n_strands (get "r_strands")

let test_pint_domains_random_equivalence () =
  (* random programs: PINT on real domains agrees with the STINT (serial)
     verdict *)
  let nbuf = 12 in
  for seed = 1 to 12 do
    let rng = Rng.create (seed * 97) in
    let actions = Test_sim_progs.random_program rng nbuf in
    let prog () =
      let buf = Fj.alloc_f nbuf in
      Test_sim_progs.interpret buf actions ()
    in
    let sd = Stint.make () in
    let _ = Seq_exec.run ~driver:sd.Detector.driver prog in
    let expected = Detector.races sd <> [] in
    let p = Pint_detector.make () in
    let d = Pint_detector.detector p in
    let _ =
      Par_exec.run ~config:(config ~n_workers:3 ~pools:(Pint_detector.stage_pools p) ()) ~driver:d.Detector.driver prog
    in
    if Detector.races d <> [] <> expected then
      Alcotest.failf "seed %d: pint-on-domains got %b want %b" seed (Detector.races d <> [])
        expected
  done

let test_par_heap_and_frames () =
  List.iter
    (fun n_workers ->
      let p = Pint_detector.make () in
      let d = Pint_detector.detector p in
      let _ =
        Par_exec.run
          ~config:(config ~n_workers ~pools:(Pint_detector.stage_pools p) ())
          ~driver:d.Detector.driver
          (fun () ->
            for _ = 1 to 6 do
              Fj.spawn (fun () ->
                  let x = Fj.alloc_f 16 in
                  Membuf.fill_f x 0 16 1.0;
                  Fj.free_f x;
                  Fj.with_frame ~words:8 (fun fr -> Membuf.set_f fr 0 1.0))
            done;
            Fj.sync ())
      in
      check_int "no false races" 0 (List.length (Detector.races d)))
    [ 1; 4 ]

let () =
  Alcotest.run "pint_par"
    [
      ( "executor",
        [
          Alcotest.test_case "fib correct" `Quick test_fib_correct;
          Alcotest.test_case "single worker" `Quick test_single_worker;
          Alcotest.test_case "steals happen" `Quick test_steals_on_multiple_domains;
        ] );
      ( "detectors",
        [
          Alcotest.test_case "cracer race" `Quick test_cracer_on_domains_race;
          Alcotest.test_case "cracer clean" `Quick test_cracer_on_domains_clean;
          Alcotest.test_case "pint race" `Quick test_pint_on_domains_race;
          Alcotest.test_case "pint clean" `Quick test_pint_on_domains_clean;
          Alcotest.test_case "pint random equivalence" `Quick test_pint_domains_random_equivalence;
          Alcotest.test_case "heap+frames" `Quick test_par_heap_and_frames;
        ] );
    ]
