type config = {
  detector : string;
  max_sessions : int;
  pool_workers : int;
  shards : int;
  bp_rounds : int;
  backlog_high : int;
  max_frame : int;
  max_pending : int;
  obs_capacity : int option;
  max_window : int;  (* largest per-session prediction window a Hello may request *)
}

let default_config =
  {
    detector = "pint";
    max_sessions = 4;
    pool_workers = 2;
    shards = 2;
    bp_rounds = 0;
    backlog_high = 4096;
    max_frame = Serve_proto.default_max_frame;
    max_pending = 16 * 1024 * 1024;
    obs_capacity = None;
    max_window = 16;
  }

(* One admitted tenant's detection state: its own fresh detector, its own
   replay session and obs session, and the lease its pipeline stages hold
   on the shared micropool. *)
type stream = {
  st_det : Detector.t;
  st_session : Replay.Session.t;
  st_lease : Micropool.lease;
  st_obs : Obs.t;
  st_feed_us : Histo.t; (* wall µs per Data-frame feed *)
  st_has_pipeline : bool;
  st_predict : int; (* prediction window; 0 = observed-only session *)
  st_builder : Predict.Builder.t option; (* strand DAG, built as the feed replays *)
  mutable st_bp_pauses : int; (* read pauses due to pipeline backlog *)
}

(* Connection state machine (DESIGN.md §14):
   Handshake → Streaming → Draining → Closing; rejects and stream errors
   jump straight to Closing with an ['X'] frame queued. *)
type phase =
  | Handshake
  | Streaming of stream
  | Draining of stream (* End seen; waiting for the lease, then summary *)
  | Closing (* flush the out queue, then close *)

type conn = {
  c_id : int;
  c_fd : Unix.file_descr;
  c_in : Serve_proto.Frames.t;
  c_out : string Queue.t;
  mutable c_out_off : int; (* bytes of the head frame already written *)
  mutable c_phase : phase;
}

type t = {
  cfg : config;
  listen_fd : Unix.file_descr;
  pool : Micropool.shared;
  stop : bool Atomic.t;
  mutable conns : conn list;
  mutable next_id : int;
  mutable accepted : int;
  mutable rejected : int;
  mutable completed : int;
  mutable failed : int;
}

let create ?(config = default_config) addr =
  let domain = Unix.domain_of_sockaddr addr in
  let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
  (match addr with
  | Unix.ADDR_INET _ -> Unix.setsockopt fd Unix.SO_REUSEADDR true
  | Unix.ADDR_UNIX path -> if Sys.file_exists path then Unix.unlink path);
  Unix.bind fd addr;
  Unix.listen fd (config.max_sessions * 2);
  Unix.set_nonblock fd;
  {
    cfg = config;
    listen_fd = fd;
    pool = Micropool.shared config.pool_workers;
    stop = Atomic.make false;
    conns = [];
    next_id = 0;
    accepted = 0;
    rejected = 0;
    completed = 0;
    failed = 0;
  }

let sockaddr t = Unix.getsockname t.listen_fd
let stop t = Atomic.set t.stop true

let stats t =
  [
    ("serve.accepted", float_of_int t.accepted);
    ("serve.rejected", float_of_int t.rejected);
    ("serve.completed", float_of_int t.completed);
    ("serve.failed", float_of_int t.failed);
    ("serve.pool_parks", float_of_int (Micropool.shared_parks t.pool));
  ]

let send c msg = Queue.push (Serve_proto.encode_server msg) c.c_out

let active_sessions t =
  List.length (List.filter (fun c -> c.c_phase <> Closing) t.conns)

(* ------------------------------------------------------------- per-conn IO *)

let close_conn t c =
  (try Unix.close c.c_fd with Unix.Unix_error _ -> ());
  t.conns <- List.filter (fun c' -> c' != c) t.conns

let fail_conn t c msg =
  (match c.c_phase with
  | Streaming st | Draining st ->
      Replay.Session.abort st.st_session;
      t.failed <- t.failed + 1
  | Handshake -> t.failed <- t.failed + 1
  | Closing -> ());
  send c (Serve_proto.Reject msg);
  c.c_phase <- Closing

let start_stream t c ~shards ~predict =
  let cfg = t.cfg in
  let shards = if shards = 0 then cfg.shards else shards in
  let obs =
    Obs.create ?capacity:cfg.obs_capacity ~clock:Clock.monotonic ()
  in
  match
    Systems.make_detector ~shards ~obs ~bp_rounds:cfg.bp_rounds cfg.detector
  with
  | None -> fail_conn t c (Printf.sprintf "unknown detector %S" cfg.detector)
  | Some (det, stages) ->
      (* session first (its driver sets up the detector's run), stages to
         the shared pool second — the ordering every executor guarantees *)
      let builder = if predict > 0 then Some (Predict.Builder.create ()) else None in
      let on_strand = Option.map Predict.Builder.observer builder in
      let session =
        Replay.Session.create ~wrap:(Obs_hooks.instrument obs)
          ~max_pending:cfg.max_pending ?on_strand det
      in
      let lease = Micropool.submit t.pool (Systems.micropools stages) in
      let st =
        {
          st_det = det;
          st_session = session;
          st_lease = lease;
          st_obs = obs;
          st_feed_us = Obs.histo obs "serve.feed_us";
          st_has_pipeline = stages <> [];
          st_predict = predict;
          st_builder = builder;
          st_bp_pauses = 0;
        }
      in
      c.c_phase <- Streaming st;
      t.accepted <- t.accepted + 1;
      send c (Serve_proto.Accepted { session = c.c_id })

let race_msg races =
  Serve_proto.Races
    (List.map
       (fun (r : Report.race) -> (r.Report.kind, r.Report.prior, r.Report.current, r.Report.where))
       races)

let handle_msg t c msg =
  match (c.c_phase, msg) with
  | Handshake, Serve_proto.Hello { version; shards; predict } ->
      (* version 1 speaks a strict subset of version 2 (no predict field,
         whose absence decodes as 0), so both are admitted *)
      if version < 1 || version > Serve_proto.protocol_version then
        fail_conn t c
          (Printf.sprintf "protocol version %d unsupported (server speaks %d)" version
             Serve_proto.protocol_version)
      else if predict < 0 || predict > t.cfg.max_window then
        fail_conn t c
          (Printf.sprintf "prediction window %d out of range (server allows 0..%d)" predict
             t.cfg.max_window)
      else start_stream t c ~shards ~predict
  | Streaming st, Serve_proto.Data chunk ->
      let t0 = Clock.now Clock.monotonic in
      let races = Replay.Session.feed st.st_session chunk in
      Histo.add st.st_feed_us (Clock.now Clock.monotonic - t0);
      if races <> [] then send c (race_msg races)
  | Streaming st, Serve_proto.End ->
      let t0 = Clock.now Clock.monotonic in
      let races = Replay.Session.eof st.st_session in
      Histo.add st.st_feed_us (Clock.now Clock.monotonic - t0);
      if races <> [] then send c (race_msg races);
      c.c_phase <- Draining st
  | (Handshake | Streaming _), _ -> fail_conn t c "unexpected message for this session state"
  | (Draining _ | Closing), _ -> fail_conn t c "message after end of stream"

(* A tenant whose pipeline lags its feed pauses reads: the unread socket
   fills, TCP/unix flow control pushes back on the client, and the shared
   pool catches up — per-session graceful degradation instead of unbounded
   lane rejects.  [collected] counts strands the collector has committed,
   so the difference is the in-flight backlog. *)
let conn_wants_read cfg c =
  match c.c_phase with
  | Handshake -> true
  | Streaming st ->
      let backlog =
        Replay.Session.fed_strands st.st_session
        - int_of_float (Detector.diag st.st_det "collected")
      in
      if st.st_has_pipeline && backlog > cfg.backlog_high then begin
        st.st_bp_pauses <- st.st_bp_pauses + 1;
        false
      end
      else true
  | Draining _ | Closing -> false

let read_chunk = Bytes.create 65536

let handle_readable t c =
  match Unix.read c.c_fd read_chunk 0 (Bytes.length read_chunk) with
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()
  | exception Unix.Unix_error _ -> fail_conn t c "read error"
  | 0 -> (
      (* peer closed: mid-stream this is an aborted session *)
      match c.c_phase with
      | Closing -> close_conn t c
      | Handshake -> close_conn t c
      | Streaming st | Draining st ->
          Replay.Session.abort st.st_session;
          t.failed <- t.failed + 1;
          c.c_phase <- Closing)
  | n -> (
      try
        Serve_proto.Frames.feed c.c_in ~len:n (Bytes.unsafe_to_string read_chunk);
        let continue = ref true in
        while !continue do
          match Serve_proto.Frames.next c.c_in with
          | Some payload -> handle_msg t c (Serve_proto.decode_client payload)
          | None -> continue := false
        done
      with
      | Serve_proto.Proto_error m -> fail_conn t c ("protocol error: " ^ m)
      | Tracefile.Error m -> fail_conn t c ("malformed trace stream: " ^ m)
      | Replay.Corrupt m -> fail_conn t c ("corrupt strand DAG: " ^ m))

let handle_writable t c =
  match Queue.peek_opt c.c_out with
  | None -> ()
  | Some s -> (
      let remaining = String.length s - c.c_out_off in
      match Unix.write_substring c.c_fd s c.c_out_off remaining with
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()
      | exception Unix.Unix_error _ ->
          Queue.clear c.c_out;
          c.c_phase <- Closing;
          close_conn t c
      | n ->
          if n = remaining then begin
            ignore (Queue.pop c.c_out);
            c.c_out_off <- 0
          end
          else c.c_out_off <- c.c_out_off + n)

(* Draining → Closing once the tenant's pipeline stages are all [`Done]:
   only then is it safe for this thread to drain the detector (stages are
   single-consumer, and the pool has stopped stepping them). *)
(* Detection runs on pool domains between feeds, so discoveries can land
   at any time: stream them as they appear rather than batching into the
   summary. *)
let poll_races c =
  match c.c_phase with
  | Streaming st | Draining st ->
      let late = Replay.Session.poll_races st.st_session in
      if late <> [] then send c (race_msg late)
  | Handshake | Closing -> ()

let finish_drained t c =
  match c.c_phase with
  | Draining st when Micropool.lease_done st.st_lease ->
      st.st_det.Detector.drain ();
      (try st.st_det.Detector.validate ()
       with Failure m -> prerr_endline ("pint_serve: validate failed: " ^ m));
      let late = Replay.Session.poll_races st.st_session in
      if late <> [] then send c (race_msg late);
      let o = Replay.Session.outcome st.st_session in
      (* predict sessions run the window-bounded reordering analysis over
         the DAG the feed built, after the observed outcome is final (the
         observed set suppresses already-reported pairs) *)
      let predicted, predict_diags =
        match st.st_builder with
        | None -> ([], [])
        | Some b -> (
            match Predict.Builder.dag b with
            | exception Failure m ->
                prerr_endline ("pint_serve: predict skipped: " ^ m);
                ([], [])
            | dag ->
                let pr =
                  Predict.predict ~window:st.st_predict ~observed:o.Replay.races dag
                in
                ( List.map
                    (fun (f : Predict.finding) -> (f.kind, f.prior, f.current, f.where))
                    pr.Predict.predicted,
                  pr.Predict.diagnostics ))
      in
      let stats =
        List.map
          (fun (k, v) -> (k, Printf.sprintf "%.17g" v))
          (o.Replay.diagnostics @ predict_diags
          @ [ ("serve.bp_pauses", float_of_int st.st_bp_pauses) ]
          @ Obs.summary st.st_obs)
      in
      send c
        (Serve_proto.Summary
           {
             n_strands = o.Replay.n_strands;
             n_races = List.length o.Replay.races;
             stats;
             predicted;
           });
      t.completed <- t.completed + 1;
      c.c_phase <- Closing
  | _ -> ()

let handle_accept t =
  match Unix.accept t.listen_fd with
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()
  | fd, _ ->
      Unix.set_nonblock fd;
      let c =
        {
          c_id = t.next_id;
          c_fd = fd;
          c_in = Serve_proto.Frames.create ~max_frame:t.cfg.max_frame ();
          c_out = Queue.create ();
          c_out_off = 0;
          c_phase = Handshake;
        }
      in
      t.next_id <- t.next_id + 1;
      t.conns <- c :: t.conns;
      if active_sessions t > t.cfg.max_sessions then begin
        (* admission control: over-capacity clients get a framed reject,
           never a hung or slow session *)
        t.rejected <- t.rejected + 1;
        send c
          (Serve_proto.Reject
             (Printf.sprintf "server at capacity (%d sessions)" t.cfg.max_sessions));
        c.c_phase <- Closing
      end

let once t ~timeout =
  let rds =
    t.listen_fd :: List.filter_map
                     (fun c -> if conn_wants_read t.cfg c then Some c.c_fd else None)
                     t.conns
  in
  let wrs = List.filter_map (fun c -> if Queue.is_empty c.c_out then None else Some c.c_fd) t.conns in
  let rd, wr, _ =
    try Unix.select rds wrs [] timeout
    with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
  in
  if List.mem t.listen_fd rd then handle_accept t;
  List.iter
    (fun c ->
      if List.mem c.c_fd rd then handle_readable t c;
      if List.mem c.c_fd wr then handle_writable t c)
    t.conns;
  List.iter poll_races t.conns;
  List.iter (fun c -> finish_drained t c) t.conns;
  List.iter
    (fun c -> if c.c_phase = Closing && Queue.is_empty c.c_out then close_conn t c)
    t.conns

(* Graceful shutdown: abort what is still streaming (firing each session's
   [on_done] so its lease can finish), flush rejects briefly, then stop the
   shared pool.  SIGTERM-safe end-to-end: the signal handler only flips the
   stop atomic. *)
let shutdown t =
  let addr = try Some (sockaddr t) with Unix.Unix_error _ -> None in
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  List.iter
    (fun c ->
      match c.c_phase with
      | Streaming st | Draining st ->
          Replay.Session.abort st.st_session;
          send c (Serve_proto.Reject "server shutting down");
          c.c_phase <- Closing
      | Handshake ->
          send c (Serve_proto.Reject "server shutting down");
          c.c_phase <- Closing
      | Closing -> ())
    t.conns;
  let deadline = Unix.gettimeofday () +. 1.0 in
  while t.conns <> [] && Unix.gettimeofday () < deadline do
    let wrs = List.filter_map (fun c -> if Queue.is_empty c.c_out then None else Some c.c_fd) t.conns in
    (match Unix.select [] wrs [] 0.05 with
    | _, wr, _ -> List.iter (fun c -> if List.mem c.c_fd wr then handle_writable t c) t.conns
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
    List.iter
      (fun c -> if Queue.is_empty c.c_out then close_conn t c)
      t.conns
  done;
  List.iter (fun c -> close_conn t c) t.conns;
  Micropool.shutdown t.pool;
  match addr with
  | Some (Unix.ADDR_UNIX path) when Sys.file_exists path -> (
      try Sys.remove path with Sys_error _ -> ())
  | _ -> ()

let serve ?(poll = 0.02) t =
  while not (Atomic.get t.stop) do
    once t ~timeout:poll
  done;
  shutdown t
