(** Strand-boundary event descriptions passed from executors to detectors. *)

(** Why a strand begins. *)
type start_kind =
  | S_root  (** the computation's initial strand *)
  | S_child  (** first strand of a spawned function *)
  | S_cont of { stolen : bool }  (** continuation of a spawn *)
  | S_after_sync of { trivial : bool }  (** the sync-node strand, after passing a sync *)

(** Why a strand ends.  The record references let detectors perform
    Algorithm 1's bookkeeping without owning scheduler state. *)
type finish_kind =
  | F_spawn of { cont : Srec.t; sync : Srec.t; first_of_block : bool }
      (** the strand is a {e spawn node}; [cont]/[sync] are the records for
          the continuation strand and the enclosing block's sync node
          ([sync] freshly created iff [first_of_block]) *)
  | F_return of { cont_stolen : bool; parent_sync : Srec.t option }
      (** the strand is the {e return node} of a spawned function;
          [cont_stolen] says whether the continuation of the spawn that
          created this function was stolen; [parent_sync] is that spawn's
          block sync record *)
  | F_sync of { trivial : bool; sync : Srec.t }
      (** the strand leads into a sync with at least one spawn in its block
          (a no-spawn sync is not a strand boundary at all) *)
  | F_root  (** final strand of the computation *)

val pp_start : Format.formatter -> start_kind -> unit
val pp_finish : Format.formatter -> finish_kind -> unit
