lib/shadow/membuf.mli: Aspace
