examples/find_a_race.mli:
