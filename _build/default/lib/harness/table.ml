let render ~title ~header rows =
  let all = header :: rows in
  let ncols = List.fold_left (fun m r -> max m (List.length r)) 0 all in
  let pad r = r @ List.init (ncols - List.length r) (fun _ -> "") in
  let all = List.map pad all in
  let widths = Array.make ncols 0 in
  List.iter
    (List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)))
    all;
  let buf = Buffer.create 1024 in
  Buffer.add_string buf title;
  Buffer.add_char buf '\n';
  let line r =
    List.iteri
      (fun i cell ->
        let w = widths.(i) in
        let s =
          if i = 0 then cell ^ String.make (w - String.length cell) ' '
          else String.make (w - String.length cell) ' ' ^ cell
        in
        Buffer.add_string buf s;
        if i < ncols - 1 then Buffer.add_string buf "  ")
      r;
    Buffer.add_char buf '\n'
  in
  line (List.hd all);
  Buffer.add_string buf (String.make (Array.fold_left ( + ) (2 * (ncols - 1)) widths) '-');
  Buffer.add_char buf '\n';
  List.iter line (List.tl all);
  Buffer.contents buf

let t2 v = Printf.sprintf "%.2f" v
let x1 v = Printf.sprintf "%.1fx" v
let x2p v = Printf.sprintf "(%.1fx)" v
let bracket v = Printf.sprintf "[%.1fx]" v
