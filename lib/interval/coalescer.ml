
type side = {
  buf : Interval.t Vec.t;
  mutable raw : int;
  (* True while the buffer is already in canonical form: sorted by [lo] with
     pairwise-disjoint, non-adjacent entries.  Holds as long as every access
     lands at or after the last recorded interval (the monotone sweep of a
     loop nest): merges then only ever extend the last entry's [hi], and an
     entry's gap to its predecessor is fixed at push time.  The flag drops
     the moment an access starts before the last entry's [lo] — a merge that
     extends [lo] leftwards can create adjacency with the predecessor, and an
     out-of-order push breaks sortedness outright. *)
  mutable canonical : bool;
}

type t = {
  reads : side;
  writes : side;
  mutable sorts : int;
  mutable sort_skips : int;
}

let dummy = Interval.point 0

let create () =
  {
    reads = { buf = Vec.create ~capacity:64 dummy; raw = 0; canonical = true };
    writes = { buf = Vec.create ~capacity:64 dummy; raw = 0; canonical = true };
    sorts = 0;
    sort_skips = 0;
  }

let[@pint.hot] add side ~addr ~len =
  if len <= 0 then invalid_arg "Coalescer.add: len must be positive";
  side.raw <- side.raw + 1;
  let iv = Interval.make addr (addr + len - 1) in
  if Vec.is_empty side.buf then Vec.push side.buf iv
  else begin
    let last = Vec.peek side.buf in
    if iv.Interval.lo < last.Interval.lo then side.canonical <- false;
    if Interval.adjacent_or_overlapping last iv then
      Vec.set side.buf (Vec.length side.buf - 1) (Interval.hull last iv)
    else Vec.push side.buf iv
  end

let add_read t = add t.reads
let add_write t = add t.writes

let raw_counts t = (t.reads.raw, t.writes.raw)

let canonicalize t side =
  let n = Vec.length side.buf in
  if n = 0 then [||]
  else if side.canonical then begin
    (* Already sorted, disjoint and non-adjacent — the monotone common case
       skips both the sort and the re-merge pass. *)
    t.sort_skips <- t.sort_skips + 1;
    Vec.to_array side.buf
  end
  else begin
    t.sorts <- t.sorts + 1;
    Vec.sort Interval.compare side.buf;
    let out = Vec.create ~capacity:n dummy in
    Vec.iter
      (fun iv ->
        if Vec.is_empty out then Vec.push out iv
        else
          let last = Vec.peek out in
          if Interval.adjacent_or_overlapping last iv then
            Vec.set out (Vec.length out - 1) (Interval.hull last iv)
          else Vec.push out iv)
      side.buf;
    Vec.to_array out
  end

let finish t =
  let reads = canonicalize t t.reads in
  let writes = canonicalize t t.writes in
  Vec.clear t.reads.buf;
  Vec.clear t.writes.buf;
  t.reads.raw <- 0;
  t.writes.raw <- 0;
  t.reads.canonical <- true;
  t.writes.canonical <- true;
  (reads, writes)

let sort_stats t = (t.sort_skips, t.sorts)

let pending t = (Vec.length t.reads.buf, Vec.length t.writes.buf)
