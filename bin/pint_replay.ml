(* pint_replay — capture, inspect, replay and differentially check traces.

   Subcommands:
     capture   run a workload under an executor and record a trace file
     stats     print a trace's metadata and summary counts
     replay    drive one detector from a trace (no workload execution)
     diff      replay two detectors from the same trace and diff race sets
     profile   replay with pipeline tracing and export a Chrome trace

   Examples:
     pint_replay capture -w heat -n 32 -b 8 --racy -o heat.trace
     pint_replay stats heat.trace
     pint_replay replay heat.trace -d pint
     pint_replay diff heat.trace --left pint --right stint

   [diff] exits 1 when the detectors disagree — by Theorem 5 the three
   detectors must report the same deduplicated (earlier, later, kind) race
   set for any trace, so a non-empty divergence is a detector bug. *)

open Cmdliner

let load_trace path =
  try Tracefile.load path
  with
  | Tracefile.Error msg ->
      Printf.eprintf "%s: corrupt trace: %s\n" path msg;
      exit 2
  | Sys_error msg ->
      Printf.eprintf "cannot read trace: %s\n" msg;
      exit 2

let make_detector ?obs ?(shards = 1) name =
  match Systems.make_detector ~shards ?obs name with
  | Some ds -> ds
  | None ->
      Printf.eprintf "unknown detector %S (%s)\n" name (String.concat "|" Systems.detector_names);
      exit 2

let shards_arg ?(names = [ "shards" ]) ~doc () = Arg.(value & opt int 1 & info names ~doc)

(* -- capture ------------------------------------------------------------- *)

let capture_cmd =
  let run workload size base racy exec workers seed detector shards out =
    let w =
      try Registry.find workload
      with Not_found ->
        Printf.eprintf "unknown workload %S; available: %s\n" workload
          (String.concat ", " (List.map (fun w -> w.Workload.name) (Registry.all ())));
        exit 2
    in
    let size = Option.value size ~default:w.Workload.default_size in
    let base = Option.value base ~default:w.Workload.default_base in
    let inst =
      if racy then
        match w.Workload.racy with
        | Some f -> f ~size ~base
        | None ->
            Printf.eprintf "workload %s has no racy variant\n" workload;
            exit 2
      else w.Workload.make ~size ~base
    in
    let det, stages = make_detector ~shards detector in
    let meta =
      [
        ("workload", workload);
        ("size", string_of_int size);
        ("base", string_of_int base);
        ("racy", string_of_bool racy);
        ("detector", detector);
        ("exec", exec);
        ("seed", string_of_int seed);
      ]
    in
    let driver = Tracefile.capture ~meta ~path:out det.Detector.driver in
    let strands =
      match exec with
      | "seq" ->
          let r = Seq_exec.run ~driver inst.Workload.run in
          r.Seq_exec.n_strands
      | "sim" ->
          let config = { Sim_exec.default_config with n_workers = workers; seed; stages } in
          let r = Sim_exec.run ~config ~driver inst.Workload.run in
          r.Sim_exec.n_strands
      | "par" ->
          let config =
            {
              Par_exec.n_workers = workers;
              seed;
              pools = Systems.micropools stages;
              obs = Obs.disabled;
            }
          in
          let r = Par_exec.run ~config ~driver inst.Workload.run in
          r.Par_exec.n_strands
      | e ->
          Printf.eprintf "unknown executor %S (seq|sim|par)\n" e;
          exit 2
    in
    let races = Detector.races det in
    Printf.printf "captured %d strand(s) to %s (detector=%s races=%d)\n" strands out detector
      (List.length races)
  in
  let workload = Arg.(value & opt string "sort" & info [ "w"; "workload" ] ~doc:"Benchmark.") in
  let size = Arg.(value & opt (some int) None & info [ "n"; "size" ] ~doc:"Problem size.") in
  let base = Arg.(value & opt (some int) None & info [ "b"; "base" ] ~doc:"Base-case size.") in
  let racy = Arg.(value & flag & info [ "racy" ] ~doc:"Capture the race-injected variant.") in
  let exec =
    Arg.(value & opt string "seq" & info [ "e"; "exec" ] ~doc:"Executor: seq, sim or par.")
  in
  let workers = Arg.(value & opt int 4 & info [ "p"; "workers" ] ~doc:"Core workers (sim/par).") in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Scheduler seed (sim/par).") in
  let detector =
    Arg.(
      value
      & opt string "none"
      & info [ "d"; "detector" ] ~doc:"Detector to run during capture (none|stint|cracer|pint).")
  in
  let out =
    Arg.(
      required
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Trace file to write.")
  in
  let shards =
    shards_arg ~doc:"Address-range shards for the capture-time detector (pint only)." ()
  in
  Cmd.v
    (Cmd.info "capture" ~doc:"Run a workload and record its trace")
    Term.(
      const run $ workload $ size $ base $ racy $ exec $ workers $ seed $ detector $ shards $ out)

(* -- stats --------------------------------------------------------------- *)

let trace_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"TRACE" ~doc:"Trace file.")

let stats_cmd =
  let run path =
    let t = load_trace path in
    Printf.printf "trace: %s\n" path;
    Printf.printf "version: %d\n" t.Tracefile.version;
    List.iter (fun (k, v) -> Printf.printf "meta %s = %s\n" k v) t.Tracefile.meta;
    let reads, writes = Tracefile.interval_totals t in
    Printf.printf "strands: %d\n" (Tracefile.entry_count t);
    Printf.printf "trace boundaries: %d\n" (Tracefile.boundary_count t);
    Printf.printf "intervals: %d read, %d write\n" reads writes;
    Printf.printf "bytes: %d\n" (String.length (Tracefile.to_bytes t))
  in
  Cmd.v (Cmd.info "stats" ~doc:"Print a trace's metadata and counts") Term.(const run $ trace_arg)

(* -- replay -------------------------------------------------------------- *)

let max_report_arg = Arg.(value & opt int 10 & info [ "max-report" ] ~doc:"Races to print.")

let replay_cmd =
  let run path detector shards max_report =
    let t = load_trace path in
    let det, _ = make_detector ~shards detector in
    let o =
      try Replay.run t det
      with Replay.Corrupt msg ->
        Printf.eprintf "%s: inconsistent trace: %s\n" path msg;
        exit 2
    in
    Printf.printf "replayed %d strand(s) through %s\n" o.Replay.n_strands o.Replay.detector;
    Printf.printf "races: %d distinct pair(s)\n" (List.length o.Replay.races);
    List.iteri
      (fun i r ->
        if i < max_report then Format.printf "  %a@." Report.pp_race r
        else if i = max_report then
          Printf.printf "  ... (%d more)\n" (List.length o.Replay.races - max_report))
      o.Replay.races;
    List.iter (fun (k, v) -> Printf.printf "diag %s = %g\n" k v) o.Replay.diagnostics
  in
  Cmd.v
    (Cmd.info "replay" ~doc:"Drive one detector from a trace")
    Term.(
      const run $ trace_arg
      $ Arg.(value & opt string "pint" & info [ "d"; "detector" ] ~doc:"none|stint|cracer|pint.")
      $ shards_arg ~doc:"Address-range shards for the replayed detector (pint only)." ()
      $ max_report_arg)

(* -- profile ------------------------------------------------------------- *)

let profile_cmd =
  let run path detector shards out =
    let t = load_trace path in
    (* counter clock: replay has no meaningful timeline; ticks give each
       track a monotone, deterministic time base *)
    let obs = Obs.create ~clock:(Clock.counter ()) () in
    let det, _ = make_detector ~obs ~shards detector in
    let o =
      try Replay.run ~wrap:(Obs_hooks.instrument obs) t det
      with Replay.Corrupt msg ->
        Printf.eprintf "%s: inconsistent trace: %s\n" path msg;
        exit 2
    in
    let meta = ("trace", path) :: ("detector", detector) :: t.Tracefile.meta in
    Obs.write_chrome ~meta obs ~path:out;
    Printf.printf "replayed %d strand(s) through %s; %d race(s)\n" o.Replay.n_strands
      o.Replay.detector
      (List.length o.Replay.races);
    Printf.printf "profile written to %s (%d event(s), %d dropped)\n" out (Obs.events obs)
      (Obs.dropped obs);
    List.iter (fun (k, v) -> Printf.printf "  %s = %g\n" k v) (Obs.summary obs)
  in
  Cmd.v
    (Cmd.info "profile" ~doc:"Replay a trace with pipeline tracing and export a Chrome trace")
    Term.(
      const run $ trace_arg
      $ Arg.(value & opt string "pint" & info [ "d"; "detector" ] ~doc:"none|stint|cracer|pint.")
      $ shards_arg ~doc:"Address-range shards for the profiled detector (pint only)." ()
      $ Arg.(
          value
          & opt string "profile.trace.json"
          & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Chrome trace-event JSON to write."))

(* -- predict ------------------------------------------------------------- *)

(* Exit-code contract matches pint_lint: 0 = clean, 1 = findings (observed
   or predicted races), 2 = error (corrupt trace, bad arguments, or a
   predict/oracle divergence under --oracle, which is a tool bug). *)
let predict_cmd =
  let json_escape s =
    let b = Buffer.create (String.length s + 8) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string b "\\\""
        | '\\' -> Buffer.add_string b "\\\\"
        | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char b c)
      s;
    Buffer.contents b
  in
  let race_json ~origin kind ~prior ~current (where : Interval.t) =
    Printf.sprintf "{\"kind\":\"%s\",\"prior\":%d,\"current\":%d,\"lo\":%d,\"hi\":%d,\"origin\":\"%s\"}"
      (Report.kind_to_string kind) prior current where.Interval.lo where.Interval.hi
      (Report.origin_to_string origin)
  in
  let run path window detector shards oracle json max_report =
    if window < 0 then begin
      Printf.eprintf "--window must be >= 0\n";
      exit 2
    end;
    let t = load_trace path in
    let det, _ = make_detector ~shards detector in
    let builder = Predict.Builder.create () in
    let o =
      try Replay.run ~on_strand:(Predict.Builder.observer builder) t det
      with Replay.Corrupt msg ->
        Printf.eprintf "%s: inconsistent trace: %s\n" path msg;
        exit 2
    in
    let dag =
      try Predict.Builder.dag builder
      with Failure msg ->
        Printf.eprintf "%s: cannot build strand DAG: %s\n" path msg;
        exit 2
    in
    let observed = o.Replay.races in
    let r = Predict.predict ~shards ~window ~observed dag in
    if oracle then begin
      let reference =
        try Predict.oracle ~window ~observed dag
        with Invalid_argument msg ->
          Printf.eprintf "oracle unavailable: %s\n" msg;
          exit 2
      in
      if not (Predict.equal_findings r.Predict.predicted reference) then begin
        Printf.eprintf "%s: PREDICT/ORACLE DIVERGENCE at window %d\n" path window;
        Printf.eprintf "  predict reported %d finding(s), oracle %d:\n"
          (List.length r.Predict.predicted) (List.length reference);
        List.iter (fun f -> Format.eprintf "  predict: %a@." Predict.pp_finding f) r.Predict.predicted;
        List.iter (fun f -> Format.eprintf "  oracle:  %a@." Predict.pp_finding f) reference;
        exit 2
      end
    end;
    Printf.printf "replayed %d strand(s) through %s (window=%d%s)\n" o.Replay.n_strands
      o.Replay.detector window
      (if oracle then ", oracle-certified" else "");
    Printf.printf "observed: %d distinct pair(s)\n" (List.length observed);
    Printf.printf "predicted: %d pair(s)\n" (List.length r.Predict.predicted);
    List.iteri
      (fun i f ->
        if i < max_report then Format.printf "  %a@." Predict.pp_finding f
        else if i = max_report then
          Printf.printf "  ... (%d more)\n" (List.length r.Predict.predicted - max_report))
      r.Predict.predicted;
    List.iter (fun (k, v) -> Printf.printf "diag %s = %g\n" k v) r.Predict.diagnostics;
    (match json with
    | None -> ()
    | Some out ->
        let b = Buffer.create 1024 in
        Buffer.add_string b
          (Printf.sprintf "{\n  \"trace\": \"%s\",\n  \"window\": %d,\n  \"detector\": \"%s\",\n"
             (json_escape (Filename.basename path)) window (json_escape detector));
        Buffer.add_string b (Printf.sprintf "  \"strands\": %d,\n" o.Replay.n_strands);
        let add_races key races =
          Buffer.add_string b (Printf.sprintf "  \"%s\": [" key);
          List.iteri
            (fun i r ->
              if i > 0 then Buffer.add_string b ", ";
              Buffer.add_string b r)
            races;
          Buffer.add_string b "]"
        in
        add_races "observed"
          (List.map
             (fun (r : Report.race) ->
               race_json ~origin:Report.Observed r.Report.kind ~prior:r.Report.prior
                 ~current:r.Report.current r.Report.where)
             observed);
        Buffer.add_string b ",\n";
        add_races "predicted"
          (List.map
             (fun (f : Predict.finding) ->
               race_json ~origin:Report.Predicted f.Predict.kind ~prior:f.Predict.prior
                 ~current:f.Predict.current f.Predict.where)
             r.Predict.predicted);
        Buffer.add_string b ",\n  \"diagnostics\": {";
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_string b ", ";
            Buffer.add_string b (Printf.sprintf "\"%s\": %d" (json_escape k) (int_of_float v)))
          r.Predict.diagnostics;
        Buffer.add_string b "}\n}\n";
        let oc = open_out out in
        output_string oc (Buffer.contents b);
        close_out oc;
        Printf.printf "report written to %s\n" out);
    if observed <> [] || r.Predict.predicted <> [] then exit 1
  in
  Cmd.v
    (Cmd.info "predict"
       ~doc:
         "Replay a trace, then report races predictable in sync-preserving window-bounded \
          reorderings of it")
    Term.(
      const run $ trace_arg
      $ Arg.(
          value & opt int 4 & info [ "window" ] ~docv:"W" ~doc:"Reordering window: no strand moves more than W positions.")
      $ Arg.(value & opt string "pint" & info [ "d"; "detector" ] ~doc:"none|stint|cracer|pint.")
      $ shards_arg
          ~doc:"Address-range shards for both the replayed detector (pint only) and candidate generation."
          ()
      $ Arg.(value & flag & info [ "oracle" ] ~doc:"Certify against the brute-force reordering oracle (small traces/windows; exit 2 on divergence).")
      $ Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE" ~doc:"Write a JSON report.")
      $ max_report_arg)

(* -- diff ---------------------------------------------------------------- *)

let diff_cmd =
  let run path left left_shards right right_shards =
    let t = load_trace path in
    let dl, _ = make_detector ~shards:left_shards left
    and dr, _ = make_detector ~shards:right_shards right in
    let d =
      try Replay.differential t dl dr
      with Replay.Corrupt msg ->
        Printf.eprintf "%s: inconsistent trace: %s\n" path msg;
        exit 2
    in
    if Replay.no_divergence d then Printf.printf "%s: %s and %s agree\n" path left right
    else begin
      Printf.printf "%s: %s and %s DIVERGE\n" path left right;
      Format.printf "%a@." Replay.pp_divergence d;
      exit 1
    end
  in
  Cmd.v
    (Cmd.info "diff" ~doc:"Replay two detectors from one trace and diff their race sets")
    Term.(
      const run $ trace_arg
      $ Arg.(value & opt string "pint" & info [ "left" ] ~doc:"Left detector.")
      $ shards_arg ~names:[ "left-shards" ] ~doc:"Shards for the left detector (pint only)." ()
      $ Arg.(value & opt string "stint" & info [ "right" ] ~doc:"Right detector.")
      $ shards_arg ~names:[ "right-shards" ] ~doc:"Shards for the right detector (pint only)." ())

let () =
  let info =
    Cmd.info "pint_replay" ~doc:"Capture, replay and differentially check run traces"
  in
  exit
    (Cmd.eval
       (Cmd.group info [ capture_cmd; stats_cmd; replay_cmd; predict_cmd; diff_cmd; profile_cmd ]))
