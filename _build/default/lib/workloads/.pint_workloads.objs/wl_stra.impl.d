lib/workloads/wl_stra.ml: Access Array Fj Float Matview Rng Workload
