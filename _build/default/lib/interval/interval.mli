(** Closed integer intervals of memory addresses.

    An interval [{lo; hi}] covers every address [a] with [lo <= a <= hi]
    (both inclusive, matching the paper's [\[1,4\]], [\[6,10\]] examples).
    Addresses are word-granular virtual addresses from [Pint_shadow]. *)

type t = { lo : int; hi : int }

(** [make lo hi].
    @raise Invalid_argument if [hi < lo]. *)
val make : int -> int -> t

(** Single-address interval. *)
val point : int -> t

(** Number of addresses covered. *)
val width : t -> int

val contains : t -> int -> bool

(** [overlaps a b] — the intersection is non-empty. *)
val overlaps : t -> t -> bool

(** [adjacent_or_overlapping a b] — they overlap or touch ([a.hi + 1 =
    b.lo] or symmetric), i.e. their union is a single interval. *)
val adjacent_or_overlapping : t -> t -> bool

(** Union of two adjacent-or-overlapping intervals.
    @raise Invalid_argument otherwise. *)
val hull : t -> t -> t

(** Intersection.
    @raise Invalid_argument if disjoint. *)
val inter : t -> t -> t

(** Order by [lo], ties by [hi]. *)
val compare : t -> t -> int

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
