lib/interval/coalescer.mli: Interval
