lib/harness/systems.mli: Cost_model Workload
